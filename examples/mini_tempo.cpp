// The paper's realistic application, played end to end as the specializer
// it models: analyze the image program (side-effect, binding-time,
// evaluation-time — checkpointing the annotation state after every fixpoint
// iteration, the paper's §4 scenario), then *use* the analyses: residualize
// the program with respect to its static inputs and verify the specialized
// program computes the same results as the original on dynamic inputs.
//
// Build: cmake --build build && ./build/examples/mini_tempo
#include <cstdio>

#include "analysis/engine.hpp"
#include "analysis/interp.hpp"
#include "analysis/parser.hpp"
#include "analysis/printer.hpp"
#include "analysis/program_gen.hpp"
#include "analysis/residualize.hpp"
#include "core/manager.hpp"

using namespace ickpt;

int main() {
  const std::string log_path = "/tmp/ickpt_mini_tempo.log";
  std::remove(log_path.c_str());

  // dim=8 keeps interpretation fast; the analyses are size-independent.
  std::string source = analysis::generate_image_program(1, /*dim=*/8);
  auto program = analysis::parse_program(source);
  std::printf("input: %zu statements, %zu functions\n",
              program->statements.size(), program->functions.size());

  // --- analyze, checkpointing each iteration (paper Table 1 scenario) ------
  core::Heap heap;
  analysis::AnalysisEngine engine(*program, heap);
  core::ManagerOptions mopts;
  mopts.full_interval = 4;
  core::CheckpointManager manager(log_path, mopts);
  std::vector<core::Checkpointable*> roots(engine.attr_bases().begin(),
                                           engine.attr_bases().end());
  auto hook = [&](int iter) {
    auto take = manager.take(roots);
    std::printf("    iteration %d: %s checkpoint, %zu bytes, %llu records\n",
                iter, take.mode == core::Mode::kFull ? "full" : "incr",
                take.bytes,
                (unsigned long long)take.stats.objects_recorded);
  };
  std::printf("  side-effect analysis:\n");
  engine.run_side_effect(hook);
  std::printf("  binding-time analysis:\n");
  engine.run_binding_time(analysis::default_bta_config(), hook);
  std::printf("  evaluation-time analysis:\n");
  engine.run_eval_time(hook);

  int dynamic_stmts = 0;
  int residual_stmts = 0;
  for (const analysis::Attributes* attrs : engine.attributes()) {
    if (attrs->bt()->leaf()->annotation() == analysis::kDynamic)
      ++dynamic_stmts;
    if (attrs->et()->leaf()->annotation() == analysis::kResidual)
      ++residual_stmts;
  }
  std::printf("  => %d dynamic / %d residual of %zu statements\n",
              dynamic_stmts, residual_stmts, program->statements.size());

  // --- specialize -------------------------------------------------------------
  analysis::ResidualizeOptions ropts;
  ropts.dynamic_globals = analysis::default_bta_config().dynamic_globals;
  auto residual = analysis::residualize(*program, ropts);
  std::printf("\nresidualized: %zu expressions folded (%zu calls), %zu "
              "branches resolved, %zu loops removed; %zu -> %zu statements\n",
              residual.stats.expressions_folded, residual.stats.calls_folded,
              residual.stats.branches_resolved, residual.stats.loops_removed,
              residual.stats.statements_in, residual.stats.statements_out);

  // --- verify: the residual program equals the original on dynamic input ----
  bool all_equal = true;
  for (std::int32_t seed : {12345, 42, 31337}) {
    analysis::Interpreter original(*program);
    original.set_global("seed", seed);
    analysis::Interpreter specialized(*residual.program);
    specialized.set_global("seed", seed);
    auto a = original.run();
    auto b = specialized.run();
    bool equal = a.exit_value == b.exit_value;
    all_equal = all_equal && equal;
    std::printf("seed %6d: original=%d (%llu steps) residual=%d (%llu "
                "steps) %s\n",
                seed, a.exit_value, (unsigned long long)a.steps, b.exit_value,
                (unsigned long long)b.steps, equal ? "match" : "MISMATCH");
  }

  // A taste of the annotated view (first statements of main).
  analysis::PrintOptions popts;
  popts.annotate = true;
  std::string annotated = analysis::print_program(*program, popts);
  std::printf("\nannotated main() excerpt:\n");
  std::size_t pos = annotated.find("int main()");
  if (pos != std::string::npos) {
    std::size_t end = pos;
    for (int lines = 0; lines < 8 && end != std::string::npos; ++lines)
      end = annotated.find('\n', end + 1);
    std::fwrite(annotated.data() + pos, 1, end - pos, stdout);
    std::printf("\n  ...\n");
  }

  std::remove(log_path.c_str());
  return all_equal ? 0 : 1;
}
