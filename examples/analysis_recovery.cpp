// The paper's realistic application, end to end: run the program analysis
// engine over the generated ~750-line image-manipulation program,
// checkpointing the per-statement Attributes structures after every fixpoint
// iteration with a *phase-specialized* plan; crash mid-BTA (torn log tail);
// recover; verify the recovered annotations; re-run to convergence.
//
// Build: cmake --build build && ./build/examples/analysis_recovery
#include <cstdio>

#include "analysis/engine.hpp"
#include "analysis/parser.hpp"
#include "analysis/program_gen.hpp"
#include "analysis/shapes.hpp"
#include "core/manager.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"
#include "spec/compiler.hpp"
#include "spec/executor.hpp"

using namespace ickpt;

namespace {

/// Checkpoint the Attributes roots with the phase-specialized plan and
/// append the stream to stable storage.
std::size_t take_specialized(io::StableStorage& storage,
                             analysis::AnalysisEngine& engine,
                             const spec::PlanExecutor& exec, Epoch epoch,
                             core::Mode mode) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    if (mode == core::Mode::kFull) {
      // Full checkpoints use the generic driver (they must record clean
      // objects too, which a phase plan by design does not).
      core::CheckpointOptions opts;
      opts.mode = core::Mode::kFull;
      core::Checkpoint::run(writer, epoch, engine.attr_bases(), opts);
    } else {
      spec::run_plan_checkpoint(writer, epoch, engine.attr_ptrs(), exec);
    }
    writer.flush();
  }
  std::size_t bytes = sink.size();
  storage.append(sink.bytes());
  return bytes;
}

int count_dynamic(const analysis::AnalysisEngine& engine) {
  int n = 0;
  for (const analysis::Attributes* a : engine.attributes())
    if (a->bt()->leaf()->annotation() == analysis::kDynamic) ++n;
  return n;
}

}  // namespace

int main() {
  const std::string log_path = "/tmp/ickpt_analysis_recovery.log";
  std::remove(log_path.c_str());

  auto program =
      analysis::parse_program(analysis::generate_image_program());
  std::printf("analyzing generated image program: %zu statements, %zu "
              "functions\n",
              program->statements.size(), program->functions.size());

  core::Heap heap;
  analysis::AnalysisEngine engine(*program, heap);

  analysis::AnalysisShapes shapes = analysis::AnalysisShapes::make();
  spec::Plan bta_plan = spec::PlanCompiler().compile(
      *shapes.attributes,
      analysis::make_phase_pattern(analysis::Phase::kBindingTime));
  spec::PlanExecutor bta_exec(bta_plan);
  std::printf("BTA phase plan: %zu ops (structure plan would be %zu)\n",
              bta_plan.size(),
              spec::PlanCompiler()
                  .compile(*shapes.attributes,
                           analysis::make_phase_pattern(
                               analysis::Phase::kStructureOnly))
                  .size());

  {
    io::StableStorage storage(log_path);

    // Side-effect phase, then one full checkpoint as the recovery base.
    int sea_iters = engine.run_side_effect();
    Epoch epoch = 0;
    std::size_t bytes = take_specialized(storage, engine, bta_exec, epoch++,
                                         core::Mode::kFull);
    engine.reset_flags();
    std::printf("SEA done in %d iterations; full checkpoint: %zu bytes\n",
                sea_iters, bytes);

    // BTA with a specialized incremental checkpoint per iteration.
    engine.run_binding_time(analysis::default_bta_config(), [&](int iter) {
      std::size_t n = take_specialized(storage, engine, bta_exec, epoch++,
                                       core::Mode::kIncremental);
      engine.reset_flags();
      std::printf("  BTA iteration %d: specialized incremental checkpoint "
                  "%zu bytes\n",
                  iter, n);
    });
    std::printf("live dynamic statements: %d\n", count_dynamic(engine));
  }

  // --- crash: tear the last frame -------------------------------------------
  {
    auto bytes = io::read_file(log_path);
    bytes.resize(bytes.size() - 5);
    io::write_file(log_path, bytes);
    std::printf("\nsimulated crash: tore %d bytes off the log tail\n", 5);
  }

  // --- recover ----------------------------------------------------------------
  core::TypeRegistry registry;
  analysis::register_types(registry);
  auto recovered = core::CheckpointManager::recover(log_path, registry);
  std::printf("recovered %zu objects from %zu checkpoints (log %s)\n",
              recovered.state.by_id.size(), recovered.checkpoints_applied,
              recovered.log_clean ? "clean" : "torn tail dropped");

  // Re-attach the recovered Attributes to the program: checkpoint roots are
  // in statement order.
  int dynamic_recovered = 0;
  for (std::size_t i = 0; i < recovered.state.roots.size(); ++i) {
    auto* attrs = recovered.state.root_as<analysis::Attributes>(i);
    program->statements[i]->attrs = attrs;
    if (attrs->bt()->leaf()->annotation() == analysis::kDynamic)
      ++dynamic_recovered;
  }
  std::printf("recovered dynamic statements: %d (one iteration earlier than "
              "the crash point)\n",
              dynamic_recovered);

  // Resume: re-run BTA over the recovered annotations. Unchanged
  // annotations stay clean (compare-and-set mutators), so the first
  // post-recovery incremental checkpoint records only what the lost
  // iteration(s) re-derive.
  analysis::BindingTimeAnalysis bta(*program, analysis::default_bta_config());
  while (bta.iterate()) {
  }
  int changed = 0;
  for (analysis::Stmt* stmt : program->statements) {
    auto* leaf = stmt->attrs->bt()->leaf();
    std::uint8_t before = leaf->annotation();
    leaf->set_annotation(bta.statement_bt(stmt->index));
    if (leaf->annotation() != before) ++changed;
  }
  std::printf("re-converged BTA: %d annotations changed since the surviving "
              "checkpoint\n",
              changed);
  std::printf("final dynamic statements: %d\n", dynamic_recovered + changed);

  std::remove(log_path.c_str());
  return 0;
}
