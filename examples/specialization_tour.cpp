// A guided tour of the specializer: shape descriptors, the four
// specialization levels of the synthetic benchmark, the residual plans they
// compile to (disassembled), and what each level removes — a runnable
// companion to paper §3/§5 and DESIGN.md.
//
// Build: cmake --build build && ./build/examples/specialization_tour
#include <cstdio>

#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "synth/shapes.hpp"
#include "synth/workload.hpp"

using namespace ickpt;

namespace {

void show(const char* title, const spec::Plan& plan) {
  std::printf("\n--- %s ---\n%s", title, plan.disassemble().c_str());
}

std::size_t count_ops(const spec::Plan& plan, spec::OpCode code) {
  std::size_t n = 0;
  for (const spec::Op& op : plan.ops)
    if (op.code == code) ++n;
  return n;
}

}  // namespace

int main() {
  synth::SynthShapes shapes = synth::SynthShapes::make();
  std::printf("shapes: %s (%zu fields), %s (%zu fields)\n",
              shapes.compound->name.c_str(), shapes.compound->fields.size(),
              shapes.elem->name.c_str(), shapes.elem->fields.size());

  const int L = 3;   // short lists so the disassembly stays readable
  const int V = 2;

  spec::PlanCompiler compiler;

  // Level 1 — structure only (paper Fig. 8): the traversal of the declared
  // shape is unrolled and devirtualized; every modified-test survives.
  spec::Plan structure = compiler.compile(
      *shapes.compound,
      synth::make_synth_pattern(synth::SpecLevel::kStructure, L, V, 5));
  show("structure only (all tests kept)", structure);

  // Level 2 — + the set of lists that may contain modified elements
  // (paper Fig. 9): lists 2..4 vanish from the plan entirely.
  spec::Plan modlists = compiler.compile(
      *shapes.compound,
      synth::make_synth_pattern(synth::SpecLevel::kModifiedLists, L, V, 2));
  show("+ possibly-modified lists = {0,1}", modlists);

  // Level 3 — + positions (paper Fig. 10): interior elements lose their
  // tests and records; the compiler fuses the walk into `follow` hops.
  spec::Plan positions = compiler.compile(
      *shapes.compound,
      synth::make_synth_pattern(synth::SpecLevel::kPositions, L, V, 2));
  show("+ modified object only as last element", positions);

  std::printf("\nwhat each level removed:\n");
  std::printf("  %-28s %6s %12s %12s\n", "plan", "ops", "tests",
              "traversals");
  for (const auto& [name, plan] :
       {std::pair<const char*, const spec::Plan*>{"structure", &structure},
        {"modified-lists", &modlists},
        {"positions", &positions}}) {
    std::printf("  %-28s %6zu %12zu %12zu\n", name, plan->size(),
                count_ops(*plan, spec::OpCode::kTestSkip),
                count_ops(*plan, spec::OpCode::kPushChild) +
                    count_ops(*plan, spec::OpCode::kFollow));
  }

  // Sanity: all three emit byte-identical checkpoints on a conforming
  // workload (the less specialized plans are valid supersets).
  synth::SynthConfig config;
  config.num_structures = 100;
  config.list_length = L;
  config.values_per_elem = V;
  config.modified_lists = 2;
  config.last_element_only = true;
  core::Heap heap;
  synth::SynthWorkload workload(heap, config);
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();

  std::vector<std::uint8_t> reference;
  bool all_equal = true;
  for (const spec::Plan* plan : {&structure, &modlists, &positions}) {
    workload.restore_flags(flags);
    spec::PlanExecutor exec(*plan);
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      spec::run_plan_checkpoint(writer, 0, workload.root_ptrs(), exec);
      writer.flush();
    }
    if (reference.empty())
      reference = sink.take();
    else
      all_equal = all_equal && sink.bytes() == reference;
  }
  std::printf("\nall three plans emit byte-identical checkpoints: %s\n",
              all_equal ? "yes" : "NO (bug!)");
  return 0;
}
