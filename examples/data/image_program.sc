// Synthetic image-manipulation program (simplified-C subset).
// Generated input for the analysis engine; see program_gen.cpp.

int width = 64;
int height = 64;
int npixels = 4096;
int maxval = 255;
int gain = 3;
int bias = 7;
int threshold = 128;
int levels = 4;
int edge_lo = 32;
int edge_hi = 224;
int img[4096];
int tmp[4096];
int out_img[4096];
int hist[256];
int lut[256];
int seed = 12345;
int checksum = 0;

int mini(int a, int b) {
  if (a < b) {
    return a;
  }
  return b;
}

int maxi(int a, int b) {
  if (a > b) {
    return a;
  }
  return b;
}

int clamp(int v, int lo, int hi) {
  return maxi(lo, mini(v, hi));
}

int absi(int v) {
  if (v < 0) {
    return 0 - v;
  }
  return v;
}

int idx(int x, int y) {
  return y * width + x;
}

int get_pixel(int x, int y) {
  return img[idx(clamp(x, 0, width - 1), clamp(y, 0, height - 1))];
}

int put_tmp(int x, int y, int v) {
  tmp[idx(x, y)] = v;
  return v;
}

int rand_next() {
  seed = seed * 1103 + 12345;
  seed = seed % 65536;
  if (seed < 0) {
    seed = seed + 65536;
  }
  return seed % 256;
}

int lerp(int a, int b, int t) {
  return a + ((b - a) * t) / 256;
}

int brightness() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = v + bias;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int darken() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = v - bias;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int contrast_scale() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = ((v - 128) * gain) / 2 + 128;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int invert() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = maxval - v;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int threshold_filter() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = (v >= threshold) * maxval;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int quantize() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = (v / (256 / levels)) * (256 / levels);
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int gamma_approx() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = (v * v) / maxval;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int soft_clip() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = mini(maxval, (v * 3) / 2);
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int blur3() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + 1 * img[idx(x + -1, y + -1)];
      acc = acc + 1 * img[idx(x + 0, y + -1)];
      acc = acc + 1 * img[idx(x + 1, y + -1)];
      acc = acc + 1 * img[idx(x + -1, y + 0)];
      acc = acc + 1 * img[idx(x + 0, y + 0)];
      acc = acc + 1 * img[idx(x + 1, y + 0)];
      acc = acc + 1 * img[idx(x + -1, y + 1)];
      acc = acc + 1 * img[idx(x + 0, y + 1)];
      acc = acc + 1 * img[idx(x + 1, y + 1)];
      tmp[idx(x, y)] = acc / 9;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int sharpen3() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + -1 * img[idx(x + 0, y + -1)];
      acc = acc + -1 * img[idx(x + -1, y + 0)];
      acc = acc + 8 * img[idx(x + 0, y + 0)];
      acc = acc + -1 * img[idx(x + 1, y + 0)];
      acc = acc + -1 * img[idx(x + 0, y + 1)];
      tmp[idx(x, y)] = acc / 4;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int sobel_x() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + -1 * img[idx(x + -1, y + -1)];
      acc = acc + 1 * img[idx(x + 1, y + -1)];
      acc = acc + -2 * img[idx(x + -1, y + 0)];
      acc = acc + 2 * img[idx(x + 1, y + 0)];
      acc = acc + -1 * img[idx(x + -1, y + 1)];
      acc = acc + 1 * img[idx(x + 1, y + 1)];
      tmp[idx(x, y)] = acc / 1;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int sobel_y() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + -1 * img[idx(x + -1, y + -1)];
      acc = acc + -2 * img[idx(x + 0, y + -1)];
      acc = acc + -1 * img[idx(x + 1, y + -1)];
      acc = acc + 1 * img[idx(x + -1, y + 1)];
      acc = acc + 2 * img[idx(x + 0, y + 1)];
      acc = acc + 1 * img[idx(x + 1, y + 1)];
      tmp[idx(x, y)] = acc / 1;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int emboss() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + -2 * img[idx(x + -1, y + -1)];
      acc = acc + -1 * img[idx(x + 0, y + -1)];
      acc = acc + -1 * img[idx(x + -1, y + 0)];
      acc = acc + 1 * img[idx(x + 0, y + 0)];
      acc = acc + 1 * img[idx(x + 1, y + 0)];
      acc = acc + 1 * img[idx(x + 0, y + 1)];
      acc = acc + 2 * img[idx(x + 1, y + 1)];
      tmp[idx(x, y)] = acc / 1;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int posterize2() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = (v / 64) * 64;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int gain_up() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = (v * (gain + 1)) / gain;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int gain_down() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = (v * gain) / (gain + 1);
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int bias_shift() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = v + bias - 3;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int clip_low() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = maxi(v, edge_lo);
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int clip_high() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = mini(v, edge_hi);
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int stretch() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = ((v - edge_lo) * maxval) / maxi(1, edge_hi - edge_lo);
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int fold_mid() {
  int x;
  int v;
  for (x = 0; x < npixels; x = x + 1) {
    v = img[x];
    tmp[x] = absi(v - 128) * 2;
  }
  for (x = 0; x < npixels; x = x + 1) {
    img[x] = clamp(tmp[x], 0, maxval);
  }
  return 0;
}

int laplacian() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + 1 * img[idx(x + 0, y + -1)];
      acc = acc + 1 * img[idx(x + -1, y + 0)];
      acc = acc + -4 * img[idx(x + 0, y + 0)];
      acc = acc + 1 * img[idx(x + 1, y + 0)];
      acc = acc + 1 * img[idx(x + 0, y + 1)];
      tmp[idx(x, y)] = acc / 1;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int motion_blur() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + 1 * img[idx(x + -1, y + -1)];
      acc = acc + 1 * img[idx(x + 0, y + 0)];
      acc = acc + 1 * img[idx(x + 1, y + 1)];
      tmp[idx(x, y)] = acc / 3;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int box_top() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + 1 * img[idx(x + -1, y + -1)];
      acc = acc + 1 * img[idx(x + 0, y + -1)];
      acc = acc + 1 * img[idx(x + 1, y + -1)];
      acc = acc + 1 * img[idx(x + -1, y + 0)];
      acc = acc + 1 * img[idx(x + 0, y + 0)];
      acc = acc + 1 * img[idx(x + 1, y + 0)];
      tmp[idx(x, y)] = acc / 6;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int box_bottom() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + 1 * img[idx(x + -1, y + 0)];
      acc = acc + 1 * img[idx(x + 0, y + 0)];
      acc = acc + 1 * img[idx(x + 1, y + 0)];
      acc = acc + 1 * img[idx(x + -1, y + 1)];
      acc = acc + 1 * img[idx(x + 0, y + 1)];
      acc = acc + 1 * img[idx(x + 1, y + 1)];
      tmp[idx(x, y)] = acc / 6;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int cross_blur() {
  int x;
  int y;
  int acc;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      acc = 0;
      acc = acc + 1 * img[idx(x + 0, y + -1)];
      acc = acc + 1 * img[idx(x + -1, y + 0)];
      acc = acc + 1 * img[idx(x + 0, y + 0)];
      acc = acc + 1 * img[idx(x + 1, y + 0)];
      acc = acc + 1 * img[idx(x + 0, y + 1)];
      tmp[idx(x, y)] = acc / 5;
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int min_filter() {
  int x;
  int y;
  int m;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      m = get_pixel(x, y);
      m = mini(m, get_pixel(x - 1, y));
      m = mini(m, get_pixel(x + 1, y));
      m = mini(m, get_pixel(x, y - 1));
      m = mini(m, get_pixel(x, y + 1));
      put_tmp(x, y, m);
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = tmp[idx(x, y)];
    }
  }
  return 0;
}

int max_filter() {
  int x;
  int y;
  int m;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      m = get_pixel(x, y);
      m = maxi(m, get_pixel(x - 1, y));
      m = maxi(m, get_pixel(x + 1, y));
      m = maxi(m, get_pixel(x, y - 1));
      m = maxi(m, get_pixel(x, y + 1));
      put_tmp(x, y, m);
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      img[idx(x, y)] = tmp[idx(x, y)];
    }
  }
  return 0;
}

int gradient_magnitude() {
  int x;
  int y;
  int gx;
  int gy;
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      gx = get_pixel(x + 1, y) - get_pixel(x - 1, y);
      gy = get_pixel(x, y + 1) - get_pixel(x, y - 1);
      tmp[idx(x, y)] = absi(gx) + absi(gy);
    }
  }
  for (y = 1; y < height - 1; y = y + 1) {
    for (x = 1; x < width - 1; x = x + 1) {
      out_img[idx(x, y)] = clamp(tmp[idx(x, y)], 0, maxval);
    }
  }
  return 0;
}

int row_normalize() {
  int x;
  int y;
  int lo;
  int hi;
  for (y = 0; y < height; y = y + 1) {
    lo = maxval;
    hi = 0;
    for (x = 0; x < width; x = x + 1) {
      lo = mini(lo, img[idx(x, y)]);
      hi = maxi(hi, img[idx(x, y)]);
    }
    if (hi > lo) {
      for (x = 0; x < width; x = x + 1) {
        img[idx(x, y)] = ((img[idx(x, y)] - lo) * maxval) / (hi - lo);
      }
    }
  }
  return 0;
}

int column_sum_profile() {
  int x;
  int y;
  int acc;
  for (x = 0; x < width; x = x + 1) {
    acc = 0;
    for (y = 0; y < height; y = y + 1) {
      acc = acc + img[idx(x, y)];
    }
    hist[x % 256] = acc / height;
  }
  return 0;
}

int dither_ordered() {
  int x;
  int y;
  int t;
  for (y = 0; y < height; y = y + 1) {
    for (x = 0; x < width; x = x + 1) {
      t = ((x % 2) * 2 + (y % 2)) * 64;
      if (img[idx(x, y)] > t) {
        img[idx(x, y)] = maxval;
      } else {
        img[idx(x, y)] = 0;
      }
    }
  }
  return 0;
}

int histogram_build() {
  int i;
  for (i = 0; i < 256; i = i + 1) {
    hist[i] = 0;
  }
  for (i = 0; i < npixels; i = i + 1) {
    hist[clamp(img[i], 0, maxval)] = hist[clamp(img[i], 0, maxval)] + 1;
  }
  return 0;
}

int histogram_equalize_lut() {
  int i;
  int cum;
  cum = 0;
  for (i = 0; i < 256; i = i + 1) {
    cum = cum + hist[i];
    lut[i] = clamp((cum * maxval) / npixels, 0, maxval);
  }
  return 0;
}

int apply_lut() {
  int i;
  for (i = 0; i < npixels; i = i + 1) {
    img[i] = lut[clamp(img[i], 0, maxval)];
  }
  return 0;
}

int mirror_horizontal() {
  int x;
  int y;
  for (y = 0; y < height; y = y + 1) {
    for (x = 0; x < width; x = x + 1) {
      tmp[idx(x, y)] = img[idx(width - 1 - x, y)];
    }
  }
  for (y = 0; y < height; y = y + 1) {
    for (x = 0; x < width; x = x + 1) {
      img[idx(x, y)] = tmp[idx(x, y)];
    }
  }
  return 0;
}

int mirror_vertical() {
  int x;
  int y;
  for (y = 0; y < height; y = y + 1) {
    for (x = 0; x < width; x = x + 1) {
      tmp[idx(x, y)] = img[idx(x, height - 1 - y)];
    }
  }
  for (y = 0; y < height; y = y + 1) {
    for (x = 0; x < width; x = x + 1) {
      img[idx(x, y)] = tmp[idx(x, y)];
    }
  }
  return 0;
}

int rotate180() {
  int i;
  for (i = 0; i < npixels; i = i + 1) {
    tmp[i] = img[npixels - 1 - i];
  }
  for (i = 0; i < npixels; i = i + 1) {
    img[i] = tmp[i];
  }
  return 0;
}

int downscale_half() {
  int x;
  int y;
  int acc;
  for (y = 0; y < height / 2; y = y + 1) {
    for (x = 0; x < width / 2; x = x + 1) {
      acc = get_pixel(2 * x, 2 * y) + get_pixel(2 * x + 1, 2 * y)
          + get_pixel(2 * x, 2 * y + 1) + get_pixel(2 * x + 1, 2 * y + 1);
      out_img[idx(x, y)] = acc / 4;
    }
  }
  return 0;
}

int add_noise() {
  int i;
  int n;
  for (i = 0; i < npixels; i = i + 1) {
    n = rand_next() / 16;
    img[i] = clamp(img[i] + n - 8, 0, maxval);
  }
  return 0;
}

int edge_mask() {
  int i;
  int v;
  for (i = 0; i < npixels; i = i + 1) {
    v = img[i];
    if (v < edge_lo) {
      out_img[i] = 0;
    } else {
      if (v > edge_hi) {
        out_img[i] = maxval;
      } else {
        out_img[i] = v;
      }
    }
  }
  return 0;
}

int blend_with_out(int t) {
  int i;
  for (i = 0; i < npixels; i = i + 1) {
    img[i] = lerp(img[i], out_img[i], t);
  }
  return 0;
}

int image_checksum() {
  int i;
  int sum;
  sum = 0;
  for (i = 0; i < npixels; i = i + 1) {
    sum = (sum + img[i]) % 1000000007;
  }
  checksum = sum;
  return sum;
}

int init_image() {
  int x;
  int y;
  for (y = 0; y < height; y = y + 1) {
    for (x = 0; x < width; x = x + 1) {
      img[idx(x, y)] = (x * 255) / maxi(1, width - 1);
    }
  }
  return 0;
}

int pipeline_stage(int strength) {
  brightness();
  blur3();
  contrast_scale();
  sharpen3();
  if (strength > 1) {
    sobel_x();
    sobel_y();
    emboss();
  }
  histogram_build();
  histogram_equalize_lut();
  apply_lut();
  return image_checksum();
}

int main() {
  int stage;
  int total;
  total = 0;
  init_image();
  add_noise();
  for (stage = 0; stage < 3; stage = stage + 1) {
    total = total + pipeline_stage(stage);
  }
  laplacian();
  motion_blur();
  box_top();
  box_bottom();
  cross_blur();
  min_filter();
  max_filter();
  gradient_magnitude();
  row_normalize();
  column_sum_profile();
  dither_ordered();
  posterize2();
  gain_up();
  gain_down();
  bias_shift();
  clip_low();
  clip_high();
  stretch();
  fold_mid();
  mirror_horizontal();
  quantize();
  gamma_approx();
  mirror_vertical();
  rotate180();
  threshold_filter();
  invert();
  soft_clip();
  darken();
  edge_mask();
  blend_with_out(128);
  downscale_half();
  return total + image_checksum();
}
