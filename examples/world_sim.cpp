// A long-running "world simulation" with distinct phases — the kind of
// complex, phase-structured program the paper targets — checkpointed with
// the full ickpt stack: intrusive tracking, an adaptive per-phase
// specializer, asynchronous stable storage, log inspection, compaction, and
// crash recovery.
//
// World model: a fixed roster of settlements, each holding a market (price
// table) and a chain of caravans. The simulation alternates phases:
//   * trade phase    — only market prices change
//   * travel phase   — only caravan positions change
//   * census phase   — only settlement populations change
// Each phase gets its own adaptive checkpointer, which learns the phase's
// modification pattern and compiles a residual plan for it.
//
// Build: cmake --build build && ./build/examples/world_sim
#include <cstdio>
#include <random>

#include "core/checkpointable.hpp"
#include "core/inspect.hpp"
#include "core/manager.hpp"
#include "io/stable_storage.hpp"
#include "spec/adaptive.hpp"
#include "spec/shape.hpp"

using namespace ickpt;

namespace {

// --- world classes ------------------------------------------------------------

class Market final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 1101;
  static constexpr const char* kTypeName = "world.Market";
  static constexpr int kGoods = 8;

  Market() = default;
  Market(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  void set_price(int good, std::int32_t price) {
    if (prices_[static_cast<std::size_t>(good)] == price) return;
    prices_[static_cast<std::size_t>(good)] = price;
    info_.set_modified();
  }
  [[nodiscard]] std::int32_t price(int good) const {
    return prices_[static_cast<std::size_t>(good)];
  }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }
  void record(io::DataWriter& d) const override {
    d.write_i32(ngoods_);
    for (std::int32_t i = 0; i < ngoods_; ++i)
      d.write_i32(prices_[static_cast<std::size_t>(i)]);
  }
  void fold(core::Checkpoint&) override {}
  void restore_record(io::DataReader& d, core::Recovery&) override {
    ngoods_ = d.read_i32();
    for (std::int32_t i = 0; i < ngoods_; ++i)
      prices_[static_cast<std::size_t>(i)] = d.read_i32();
  }

 private:
  friend struct WorldShapes;
  std::int32_t ngoods_ = kGoods;
  std::int32_t prices_[kGoods] = {};
};

class Caravan final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 1102;
  static constexpr const char* kTypeName = "world.Caravan";

  Caravan() = default;
  Caravan(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  void move_to(std::int32_t x, std::int32_t y) {
    if (x_ == x && y_ == y) return;
    x_ = x;
    y_ = y;
    info_.set_modified();
  }
  void set_next(Caravan* next) {
    next_ = next;
    info_.set_modified();
  }
  [[nodiscard]] Caravan* next() const { return next_; }
  [[nodiscard]] std::int32_t x() const { return x_; }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }
  void record(io::DataWriter& d) const override {
    d.write_i32(x_);
    d.write_i32(y_);
    core::write_child_id(d, next_);
  }
  void fold(core::Checkpoint& c) override {
    if (next_ != nullptr) c.checkpoint(*next_);
  }
  void restore_record(io::DataReader& d, core::Recovery& r) override {
    x_ = d.read_i32();
    y_ = d.read_i32();
    r.link(d, next_);
  }

 private:
  friend struct WorldShapes;
  std::int32_t x_ = 0;
  std::int32_t y_ = 0;
  Caravan* next_ = nullptr;
};

class Settlement final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 1103;
  static constexpr const char* kTypeName = "world.Settlement";

  Settlement() = default;
  Settlement(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  void set_population(std::int32_t p) {
    if (population_ == p) return;
    population_ = p;
    info_.set_modified();
  }
  void set_market(Market* market) {
    market_ = market;
    info_.set_modified();
  }
  void set_caravans(Caravan* head) {
    caravans_ = head;
    info_.set_modified();
  }
  [[nodiscard]] std::int32_t population() const { return population_; }
  [[nodiscard]] Market* market() const { return market_; }
  [[nodiscard]] Caravan* caravans() const { return caravans_; }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }
  void record(io::DataWriter& d) const override {
    d.write_i32(population_);
    core::write_child_id(d, market_);
    core::write_child_id(d, caravans_);
  }
  void fold(core::Checkpoint& c) override {
    if (market_ != nullptr) c.checkpoint(*market_);
    if (caravans_ != nullptr) c.checkpoint(*caravans_);
  }
  void restore_record(io::DataReader& d, core::Recovery& r) override {
    population_ = d.read_i32();
    r.link(d, market_);
    r.link(d, caravans_);
  }

 private:
  friend struct WorldShapes;
  std::int32_t population_ = 100;
  Market* market_ = nullptr;
  Caravan* caravans_ = nullptr;
};

struct WorldShapes {
  std::unique_ptr<spec::ShapeDescriptor> market;
  std::unique_ptr<spec::ShapeDescriptor> caravan;
  std::unique_ptr<spec::ShapeDescriptor> settlement;

  static WorldShapes make() {
    WorldShapes shapes;
    {
      Market sample;
      spec::ShapeBuilder<Market> b("world.Market", sample);
      b.i32(&Market::ngoods_);
      b.i32_array(&Market::prices_, &Market::ngoods_);
      shapes.market = b.build();
    }
    {
      Caravan sample;
      spec::ShapeBuilder<Caravan> b("world.Caravan", sample);
      b.i32(&Caravan::x_).i32(&Caravan::y_).self_child(&Caravan::next_);
      shapes.caravan = b.build();
    }
    {
      Settlement sample;
      spec::ShapeBuilder<Settlement> b("world.Settlement", sample);
      b.i32(&Settlement::population_);
      b.child(&Settlement::market_, *shapes.market);
      b.child(&Settlement::caravans_, *shapes.caravan);
      shapes.settlement = b.build();
    }
    return shapes;
  }
};

struct World {
  core::Heap heap;
  std::vector<Settlement*> settlements;
  std::vector<core::Checkpointable*> bases;
  std::vector<void*> concretes;
  std::mt19937_64 rng{7};

  explicit World(int n, int caravans_per) {
    for (int s = 0; s < n; ++s) {
      auto* settlement = heap.make<Settlement>();
      settlement->set_market(heap.make<Market>());
      Caravan* head = nullptr;
      for (int c = 0; c < caravans_per; ++c) {
        auto* caravan = heap.make<Caravan>();
        caravan->set_next(head);
        head = caravan;
      }
      settlement->set_caravans(head);
      settlements.push_back(settlement);
      bases.push_back(settlement);
      concretes.push_back(settlement);
    }
  }

  void reset_flags() {
    for (Settlement* s : settlements) {
      s->info().reset_modified();
      s->market()->info().reset_modified();
      for (Caravan* c = s->caravans(); c != nullptr; c = c->next())
        c->info().reset_modified();
    }
  }

  void trade_tick() {
    std::uniform_int_distribution<std::int32_t> price(1, 500);
    for (Settlement* s : settlements)
      for (int g = 0; g < Market::kGoods; ++g)
        if (rng() % 4 == 0) s->market()->set_price(g, price(rng));
  }

  void travel_tick() {
    std::uniform_int_distribution<std::int32_t> coord(0, 1000);
    for (Settlement* s : settlements)
      for (Caravan* c = s->caravans(); c != nullptr; c = c->next())
        if (rng() % 2 == 0) c->move_to(coord(rng), coord(rng));
  }

  void census_tick() {
    for (Settlement* s : settlements)
      if (rng() % 3 == 0)
        s->set_population(s->population() + static_cast<int>(rng() % 11) - 5);
  }
};

}  // namespace

int main() {
  const std::string log_path = "/tmp/ickpt_world_sim.log";
  std::remove(log_path.c_str());

  World world(/*settlements=*/2000, /*caravans_per=*/4);
  world.reset_flags();
  WorldShapes shapes = WorldShapes::make();

  core::TypeRegistry registry;
  registry.register_type<Settlement>();
  registry.register_type<Market>();
  registry.register_type<Caravan>();

  io::StableStorage storage(log_path);
  core::AsyncLog async(storage);

  // One adaptive checkpointer per phase: each learns its phase's pattern.
  spec::AdaptiveCheckpointer::Options aopts;
  aopts.observe_epochs = 2;
  spec::AdaptiveCheckpointer trade_ckpt(*shapes.settlement, aopts);
  spec::AdaptiveCheckpointer travel_ckpt(*shapes.settlement, aopts);
  spec::AdaptiveCheckpointer census_ckpt(*shapes.settlement, aopts);
  spec::AdaptiveCheckpointer::Roots roots{world.bases, world.concretes};

  // Epoch 0: one generic full checkpoint as the recovery base.
  Epoch epoch = 0;
  {
    io::VectorSink sink;
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = core::Mode::kFull;
    core::Checkpoint::run(writer, epoch++, world.bases, opts);
    writer.flush();
    async.submit(sink.take());
  }

  auto run_phase = [&](const char* name, spec::AdaptiveCheckpointer& ckpt,
                       auto&& tick, int epochs) {
    for (int e = 0; e < epochs; ++e) {
      tick();
      io::VectorSink sink;
      io::DataWriter writer(sink);
      auto result = ckpt.checkpoint(writer, epoch++, roots);
      writer.flush();
      async.submit(sink.take());
      std::printf("  %-7s epoch %3llu: %7zu bytes (%s)\n", name,
                  (unsigned long long)(epoch - 1), result.bytes,
                  result.stage_used ==
                          spec::AdaptiveCheckpointer::Stage::kSpecialized
                      ? "specialized"
                      : "observing");
    }
    if (ckpt.plan() != nullptr)
      std::printf("  %-7s learned plan: %zu ops\n", name,
                  ckpt.plan()->size());
  };

  std::printf("simulating 3 phases x 5 epochs over %zu settlements "
              "(%zu objects)\n",
              world.settlements.size(), world.heap.size());
  run_phase("trade", trade_ckpt, [&] { world.trade_tick(); }, 5);
  run_phase("travel", travel_ckpt, [&] { world.travel_tick(); }, 5);
  run_phase("census", census_ckpt, [&] { world.census_tick(); }, 5);

  async.drain();

  // Inspect what ended up on disk.
  auto report = core::inspect_log(log_path, registry);
  std::printf("\nlog: %zu checkpoints, %zu bytes total\n",
              report.frames.size(), report.total_bytes);
  std::printf("last frame: %s\n",
              report.frames.back().records_by_type.empty()
                  ? "(no records)"
                  : (report.frames.back().records_by_type[0].first + ":" +
                     std::to_string(
                         report.frames.back().records_by_type[0].second))
                        .c_str());

  // Crash and recover.
  std::int32_t live_population = 0;
  for (Settlement* s : world.settlements) live_population += s->population();

  auto recovered = core::CheckpointManager::recover(log_path, registry);
  std::int32_t recovered_population = 0;
  for (std::size_t i = 0; i < recovered.state.roots.size(); ++i)
    recovered_population +=
        recovered.state.root_as<Settlement>(i)->population();
  std::printf("\nrecovered %zu objects; population live=%d recovered=%d %s\n",
              recovered.state.by_id.size(), live_population,
              recovered_population,
              live_population == recovered_population ? "(match)"
                                                      : "(MISMATCH!)");

  // Compact the 16-checkpoint log down to one full checkpoint.
  auto compacted = core::CheckpointManager::compact(log_path, registry);
  std::printf("compacted log: %zu -> %zu bytes\n", compacted.bytes_before,
              compacted.bytes_after);

  std::remove(log_path.c_str());
  return live_population == recovered_population ? 0 : 1;
}
