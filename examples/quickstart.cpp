// Quickstart: make your own classes checkpointable, take full and
// incremental checkpoints to a stable-storage log, crash, and recover.
//
// Build: cmake --build build && ./build/examples/quickstart
//
// The example models a tiny banking ledger: a Ledger owns (by reference —
// objects live on the ickpt::core::Heap) a chain of Accounts. Mutators set
// the intrusive modified flag; incremental checkpoints record only dirty
// objects.
#include <cstdio>
#include <string>

#include "core/checkpoint.hpp"
#include "core/checkpointable.hpp"
#include "core/manager.hpp"
#include "core/recovery.hpp"
#include "core/type_registry.hpp"

using namespace ickpt;

namespace {

// --- 1. Define checkpointable classes ---------------------------------------
//
// Each class: unique kTypeId/kTypeName, a RestoreTag constructor, record()
// (scalars directly, children by id), fold() (visit children),
// restore_record() (exact mirror of record()), and mutators that call
// info().set_modified().

class Account final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 1001;
  static constexpr const char* kTypeName = "quickstart.Account";

  Account() = default;
  Account(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  void deposit(std::int64_t amount) {
    balance_ += amount;
    info_.set_modified();
  }

  void set_owner(std::string owner) {
    owner_ = std::move(owner);
    info_.set_modified();
  }

  void set_next(Account* next) {
    next_ = next;
    info_.set_modified();
  }

  [[nodiscard]] std::int64_t balance() const noexcept { return balance_; }
  [[nodiscard]] const std::string& owner() const noexcept { return owner_; }
  [[nodiscard]] Account* next() const noexcept { return next_; }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    d.write_i64(balance_);
    d.write_string(owner_);
    core::write_child_id(d, next_);
  }

  void fold(core::Checkpoint& c) override {
    if (next_ != nullptr) c.checkpoint(*next_);
  }

  void restore_record(io::DataReader& d, core::Recovery& r) override {
    balance_ = d.read_i64();
    owner_ = d.read_string();
    r.link(d, next_);
  }

 private:
  std::int64_t balance_ = 0;
  std::string owner_;
  Account* next_ = nullptr;
};

class Ledger final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 1002;
  static constexpr const char* kTypeName = "quickstart.Ledger";

  Ledger() = default;
  Ledger(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  void set_head(Account* head) {
    head_ = head;
    info_.set_modified();
  }
  void bump_epoch() {
    ++epoch_;
    info_.set_modified();
  }

  [[nodiscard]] Account* head() const noexcept { return head_; }
  [[nodiscard]] std::int32_t epoch() const noexcept { return epoch_; }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    d.write_i32(epoch_);
    core::write_child_id(d, head_);
  }
  void fold(core::Checkpoint& c) override {
    if (head_ != nullptr) c.checkpoint(*head_);
  }
  void restore_record(io::DataReader& d, core::Recovery& r) override {
    epoch_ = d.read_i32();
    r.link(d, head_);
  }

 private:
  std::int32_t epoch_ = 0;
  Account* head_ = nullptr;
};

}  // namespace

int main() {
  const std::string log_path = "/tmp/ickpt_quickstart.log";
  std::remove(log_path.c_str());

  // --- 2. Build a live object graph on a heap -------------------------------
  {
    core::Heap heap;
    Ledger* ledger = heap.make<Ledger>();
    Account* alice = heap.make<Account>();
    Account* bob = heap.make<Account>();
    alice->set_owner("alice");
    bob->set_owner("bob");
    alice->set_next(bob);
    ledger->set_head(alice);
    alice->deposit(100);
    bob->deposit(250);

    // --- 3. Checkpoint through the manager ----------------------------------
    core::ManagerOptions opts;
    opts.full_interval = 8;  // full checkpoint every 8th epoch
    core::CheckpointManager manager(log_path, opts);

    auto first = manager.take(*ledger);  // epoch 0: full
    std::printf("epoch %llu: %s, %llu objects, %zu bytes\n",
                (unsigned long long)first.epoch,
                first.mode == core::Mode::kFull ? "full" : "incremental",
                (unsigned long long)first.stats.objects_recorded, first.bytes);

    // Only Bob changes: the next checkpoint records exactly one object.
    bob->deposit(-75);
    ledger->bump_epoch();
    auto second = manager.take(*ledger);
    std::printf("epoch %llu: %s, %llu objects, %zu bytes\n",
                (unsigned long long)second.epoch,
                second.mode == core::Mode::kFull ? "full" : "incremental",
                (unsigned long long)second.stats.objects_recorded,
                second.bytes);
    std::printf("live state: alice=%lld bob=%lld ledger-epoch=%d\n",
                (long long)alice->balance(), (long long)bob->balance(),
                ledger->epoch());
  }  // <- the process "crashes" here: heap and manager destroyed

  // --- 4. Recover in a fresh process -----------------------------------------
  core::TypeRegistry registry;
  registry.register_type<Account>();
  registry.register_type<Ledger>();
  auto recovered = core::CheckpointManager::recover(log_path, registry);

  Ledger* ledger = recovered.state.root_as<Ledger>();
  std::printf("recovered (%zu checkpoints applied, log %s):\n",
              recovered.checkpoints_applied,
              recovered.log_clean ? "clean" : "had a torn tail");
  for (Account* a = ledger->head(); a != nullptr; a = a->next())
    std::printf("  %-6s balance=%lld\n", a->owner().c_str(),
                (long long)a->balance());
  std::printf("ledger epoch=%d\n", ledger->epoch());

  std::remove(log_path.c_str());
  return 0;
}
