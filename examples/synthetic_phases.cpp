// Phase-specific specialization on the synthetic workload, including
// automatic pattern inference (the paper's proposed future work): a program
// runs through phases with different modification behaviour; the library
// *observes* each phase, infers its modification pattern, compiles a
// specialized plan, and checkpoints with it — verifying byte-for-byte
// equivalence with the generic driver and reporting the speedup.
//
// Build: cmake --build build && ./build/examples/synthetic_phases
#include <chrono>
#include <cstdio>

#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "spec/inference.hpp"
#include "synth/shapes.hpp"
#include "synth/workload.hpp"

using namespace ickpt;

namespace {

double seconds_of(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::vector<std::uint8_t> generic_checkpoint(synth::SynthWorkload& workload,
                                             Epoch epoch) {
  io::VectorSink sink;
  io::DataWriter writer(sink);
  core::CheckpointOptions opts;
  opts.mode = core::Mode::kIncremental;
  core::Checkpoint::run(writer, epoch, workload.root_bases(), opts);
  writer.flush();
  return sink.take();
}

std::vector<std::uint8_t> plan_checkpoint(synth::SynthWorkload& workload,
                                          const spec::PlanExecutor& exec,
                                          Epoch epoch) {
  io::VectorSink sink;
  io::DataWriter writer(sink);
  spec::run_plan_checkpoint(writer, epoch, workload.root_ptrs(), exec);
  writer.flush();
  return sink.take();
}

void run_phase(const char* name, synth::SynthConfig config,
               const synth::SynthShapes& shapes, int observe_epochs,
               int run_epochs) {
  std::printf("\n--- phase: %s ---\n", name);
  core::Heap heap;
  synth::SynthWorkload workload(heap, config);
  std::printf("workload: %zu structures, %zu objects; %zu elements may be "
              "modified per epoch\n",
              config.num_structures, workload.total_objects(),
              workload.possibly_modified_population());

  // 1. Observe the phase's behaviour for a few epochs.
  spec::PatternInferencer inferencer(*shapes.compound);
  for (int e = 0; e < observe_epochs; ++e) {
    workload.reset_flags();
    workload.mutate();
    for (const void* root : workload.root_ptrs()) inferencer.observe(root);
  }
  spec::PatternNode pattern = inferencer.infer();

  // 2. Compile the phase-specialized plan.
  spec::Plan plan = spec::PlanCompiler().compile(*shapes.compound, pattern);
  spec::PlanExecutor exec(plan);
  spec::Plan structure_plan = spec::PlanCompiler().compile(
      *shapes.compound,
      synth::make_synth_pattern(synth::SpecLevel::kStructure,
                                config.list_length, config.values_per_elem,
                                config.modified_lists));
  std::printf("inferred plan: %zu ops (structure-only plan: %zu ops)\n",
              plan.size(), structure_plan.size());

  // 3. Checkpoint the phase with both engines and compare.
  double generic_total = 0;
  double plan_total = 0;
  for (int e = 0; e < run_epochs; ++e) {
    workload.reset_flags();
    workload.mutate();
    auto flags = workload.save_flags();

    std::vector<std::uint8_t> generic_bytes;
    generic_total += seconds_of(
        [&] { generic_bytes = generic_checkpoint(workload, e); });

    workload.restore_flags(flags);
    std::vector<std::uint8_t> plan_bytes;
    plan_total +=
        seconds_of([&] { plan_bytes = plan_checkpoint(workload, exec, e); });

    if (plan_bytes != generic_bytes) {
      std::printf("ERROR: specialized checkpoint diverged from generic!\n");
      return;
    }
  }
  std::printf("%d epochs, byte-identical checkpoints: generic %.2fms, "
              "specialized %.2fms (%.2fx)\n",
              run_epochs, generic_total * 1e3, plan_total * 1e3,
              generic_total / plan_total);
}

}  // namespace

int main() {
  synth::SynthShapes shapes = synth::SynthShapes::make();

  synth::SynthConfig init;
  init.num_structures = 10000;
  init.list_length = 5;
  init.values_per_elem = 10;
  init.modified_lists = 5;
  init.percent_modified = 100;
  run_phase("initialization (everything modified)", init, shapes, 2, 5);

  synth::SynthConfig update;
  update.num_structures = 10000;
  update.list_length = 5;
  update.values_per_elem = 10;
  update.modified_lists = 2;
  update.percent_modified = 50;
  run_phase("update (two lists, half modified)", update, shapes, 3, 5);

  synth::SynthConfig append;
  append.num_structures = 10000;
  append.list_length = 5;
  append.values_per_elem = 10;
  append.modified_lists = 1;
  append.last_element_only = true;
  append.percent_modified = 100;
  run_phase("append (only list 0 tails)", append, shapes, 3, 5);

  std::printf(
      "\nEach phase got its own residual checkpointing routine, inferred\n"
      "from observed behaviour — the paper's per-phase specialization\n"
      "(Fig. 6) without hand-written specialization classes.\n");
  return 0;
}
