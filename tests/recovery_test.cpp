// Recovery tests: full round trips, incremental chains, last-writer-wins,
// link resolution, and corruption/type-error paths.
#include <gtest/gtest.h>

#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

using core::Mode;
using core::RecoveredState;
using core::Recovery;
using core::TypeRegistry;

TypeRegistry make_registry() {
  TypeRegistry registry;
  register_test_types(registry);
  return registry;
}

RecoveredState recover_from(const TypeRegistry& registry,
                            std::span<const std::vector<std::uint8_t>> ckpts) {
  Recovery recovery(registry);
  for (const auto& bytes : ckpts) {
    io::DataReader reader(bytes);
    recovery.apply(reader);
  }
  return recovery.finish();
}

TEST(Recovery, FullRoundTripPreservesStateAndWiring) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  Inner* mid = heap.make<Inner>();
  Inner* root = heap.make<Inner>();
  leaf->set_i32(123);
  leaf->set_i64(-9);
  leaf->set_f64(0.5);
  leaf->set_flag(true);
  mid->set_left(leaf);
  mid->set_tag(7);
  root->set_right(mid);
  root->set_tag(1);

  std::vector<core::Checkpointable*> roots{root};
  auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);

  auto registry = make_registry();
  std::vector<std::vector<std::uint8_t>> ckpts{bytes};
  RecoveredState state = recover_from(registry, ckpts);

  ASSERT_EQ(state.roots.size(), 1u);
  Inner* new_root = state.root_as<Inner>();
  EXPECT_EQ(new_root->info().id(), root->info().id());
  EXPECT_EQ(new_root->tag, 1);
  ASSERT_NE(new_root->right, nullptr);
  EXPECT_EQ(new_root->right->tag, 7);
  EXPECT_EQ(new_root->left, nullptr);
  ASSERT_NE(new_root->right->left, nullptr);
  Leaf* new_leaf = new_root->right->left;
  EXPECT_EQ(new_leaf->info().id(), leaf->info().id());
  EXPECT_TRUE(new_leaf->state_equals(*leaf));
}

TEST(Recovery, IncrementalChainLastWriterWins) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  Inner* root = heap.make<Inner>();
  root->set_left(leaf);
  leaf->set_i32(1);

  std::vector<core::Checkpointable*> roots{root};
  std::vector<std::vector<std::uint8_t>> ckpts;
  ckpts.push_back(checkpoint_bytes(roots, 0, Mode::kFull));

  leaf->set_i32(2);
  ckpts.push_back(checkpoint_bytes(roots, 1, Mode::kIncremental));
  leaf->set_i32(3);
  ckpts.push_back(checkpoint_bytes(roots, 2, Mode::kIncremental));

  auto registry = make_registry();
  RecoveredState state = recover_from(registry, ckpts);
  EXPECT_EQ(state.epoch, 2u);
  EXPECT_EQ(state.root_as<Inner>()->left->i32, 3);
}

TEST(Recovery, ObjectCreatedBetweenCheckpointsMaterializes) {
  core::Heap heap;
  Inner* root = heap.make<Inner>();
  std::vector<core::Checkpointable*> roots{root};
  std::vector<std::vector<std::uint8_t>> ckpts;
  ckpts.push_back(checkpoint_bytes(roots, 0, Mode::kFull));

  Leaf* late = heap.make<Leaf>();  // born dirty
  late->set_i32(77);
  root->set_left(late);
  ckpts.push_back(checkpoint_bytes(roots, 1, Mode::kIncremental));

  auto registry = make_registry();
  RecoveredState state = recover_from(registry, ckpts);
  ASSERT_NE(state.root_as<Inner>()->left, nullptr);
  EXPECT_EQ(state.root_as<Inner>()->left->i32, 77);
}

TEST(Recovery, RecoveredFlagsAreClean) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  leaf->set_i32(5);
  std::vector<core::Checkpointable*> roots{leaf};
  auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);
  auto registry = make_registry();
  std::vector<std::vector<std::uint8_t>> ckpts{bytes};
  RecoveredState state = recover_from(registry, ckpts);
  EXPECT_FALSE(state.root_as<Leaf>()->info().modified());
}

TEST(Recovery, VariableLengthRecords) {
  core::Heap heap;
  Named* named = heap.make<Named>();
  named->set_name("incremental checkpointing of java programs");
  std::vector<core::Checkpointable*> roots{named};
  auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);
  auto registry = make_registry();
  std::vector<std::vector<std::uint8_t>> ckpts{bytes};
  RecoveredState state = recover_from(registry, ckpts);
  EXPECT_EQ(state.root_as<Named>()->name,
            "incremental checkpointing of java programs");
}

TEST(Recovery, SelfReferentialGraphNeedsNoForwardDeclarations) {
  // A record can reference an object whose record appears later in the same
  // stream; links resolve in finish().
  core::Heap heap;
  Inner* a = heap.make<Inner>();
  Inner* b = heap.make<Inner>();
  a->set_right(b);  // a recorded before b, references b's id
  std::vector<core::Checkpointable*> roots{a};
  auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);
  auto registry = make_registry();
  std::vector<std::vector<std::uint8_t>> ckpts{bytes};
  RecoveredState state = recover_from(registry, ckpts);
  EXPECT_EQ(state.root_as<Inner>()->right->info().id(), b->info().id());
}

TEST(Recovery, UnregisteredTypeThrows) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  std::vector<core::Checkpointable*> roots{leaf};
  auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);
  TypeRegistry empty;
  Recovery recovery(empty);
  io::DataReader reader(bytes);
  EXPECT_THROW(recovery.apply(reader), TypeError);
}

TEST(Recovery, TruncatedStreamThrows) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  std::vector<core::Checkpointable*> roots{leaf};
  auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);
  bytes.resize(bytes.size() - 2);  // drop end tag and a byte
  auto registry = make_registry();
  Recovery recovery(registry);
  io::DataReader reader(bytes);
  EXPECT_THROW(recovery.apply(reader), CorruptionError);
}

TEST(Recovery, TrailingGarbageThrows) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  std::vector<core::Checkpointable*> roots{leaf};
  auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);
  bytes.push_back(0x42);
  auto registry = make_registry();
  Recovery recovery(registry);
  io::DataReader reader(bytes);
  EXPECT_THROW(recovery.apply(reader), CorruptionError);
}

TEST(Recovery, BadMagicThrows) {
  std::vector<std::uint8_t> bytes{0x00, 0x01, 0x00};
  auto registry = make_registry();
  Recovery recovery(registry);
  io::DataReader reader(bytes);
  EXPECT_THROW(recovery.apply(reader), CorruptionError);
}

TEST(Recovery, MissingRootThrows) {
  auto registry = make_registry();
  Recovery recovery(registry);
  // Handcraft a checkpoint naming a root that has no record: header only.
  io::VectorSink sink;
  {
    io::DataWriter w(sink);
    w.write_u8(core::kStreamMagic);
    w.write_u8(core::kFormatVersion);
    w.write_u8(static_cast<std::uint8_t>(Mode::kFull));
    w.write_u64(0);
    w.write_varint(1);
    w.write_varint(424242);
    w.write_u8(core::kEndTag);
    w.flush();
  }
  io::DataReader reader(sink.bytes());
  recovery.apply(reader);
  auto state = recovery.finish();
  EXPECT_THROW((void)state.root_as<Leaf>(), CorruptionError);
}

TEST(Recovery, FinishWithoutApplyThrows) {
  auto registry = make_registry();
  Recovery recovery(registry);
  EXPECT_THROW(recovery.finish(), Error);
}

TEST(Recovery, RootTypeMismatchThrows) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  std::vector<core::Checkpointable*> roots{leaf};
  auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);
  auto registry = make_registry();
  std::vector<std::vector<std::uint8_t>> ckpts{bytes};
  RecoveredState state = recover_from(registry, ckpts);
  EXPECT_THROW((void)state.root_as<Inner>(), TypeError);
}

}  // namespace
}  // namespace ickpt::testing
