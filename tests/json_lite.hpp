// json_lite: a minimal recursive-descent JSON parser for test assertions.
//
// The repo's exporters (Chrome trace_event JSON, the stats --json
// exposition, BENCH_*.json reports) must produce output that real tools can
// parse, so the tests that gate them need an independent parser — not a
// substring check that would pass on malformed output. This one supports
// the full JSON grammar the exporters can emit (objects, arrays, strings
// with escapes, numbers, booleans, null) and throws std::runtime_error
// with a byte offset on the first violation. It is a *test* helper:
// correctness and error locality over speed, no production use.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace ickpt::testjson {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) != 0;
  }
  /// Object member access; throws on a missing key so a test failure names
  /// the key instead of dereferencing null.
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (kind != Kind::kObject)
      throw std::runtime_error("json_lite: .at(\"" + key +
                               "\") on a non-object");
    auto it = object.find(key);
    if (it == object.end())
      throw std::runtime_error("json_lite: missing key \"" + key + "\"");
    return *it->second;
  }
  [[nodiscard]] const std::string& str() const {
    if (kind != Kind::kString)
      throw std::runtime_error("json_lite: .str() on a non-string");
    return string;
  }
  [[nodiscard]] double num() const {
    if (kind != Kind::kNumber)
      throw std::runtime_error("json_lite: .num() on a non-number");
    return number;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parse the whole input as one JSON document; trailing non-whitespace
  /// is an error (a truncated or doubled document must not pass).
  ValuePtr parse() {
    ValuePtr v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json_lite: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  ValuePtr value() {
    skip_ws();
    auto v = std::make_shared<Value>();
    switch (peek()) {
      case '{':
        parse_object(*v);
        return v;
      case '[':
        parse_array(*v);
        return v;
      case '"':
        v->kind = Value::Kind::kString;
        v->string = parse_string();
        return v;
      case 't':
        if (!consume_word("true")) fail("bad literal");
        v->kind = Value::Kind::kBool;
        v->boolean = true;
        return v;
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        v->kind = Value::Kind::kBool;
        return v;
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return v;
      default:
        v->kind = Value::Kind::kNumber;
        v->number = parse_number();
        return v;
    }
  }

  void parse_object(Value& v) {
    v.kind = Value::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(Value& v) {
    v.kind = Value::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // The exporters only escape ASCII; encode the BMP code point as
          // UTF-8 so comparisons still work if that ever changes.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("bad fraction");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("bad exponent");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    return std::stod(text_.substr(start, pos_ - start));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline ValuePtr parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace ickpt::testjson
