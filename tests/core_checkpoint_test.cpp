// Generic checkpoint driver tests (paper Fig. 1 semantics): full vs
// incremental recording, flag reset discipline, dry runs, stats, and the
// stream framing.
#include <gtest/gtest.h>

#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

using core::Checkpoint;
using core::CheckpointOptions;
using core::Mode;

struct Graph {
  core::Heap heap;
  Inner* root = nullptr;
  Inner* mid = nullptr;
  Leaf* leaf_a = nullptr;
  Leaf* leaf_b = nullptr;

  static Graph make() {
    Graph g;
    g.leaf_a = g.heap.make<Leaf>();
    g.leaf_b = g.heap.make<Leaf>();
    g.mid = g.heap.make<Inner>();
    g.root = g.heap.make<Inner>();
    g.leaf_a->set_i32(11);
    g.leaf_b->set_i32(22);
    g.mid->set_left(g.leaf_b);
    g.root->set_left(g.leaf_a);
    g.root->set_right(g.mid);
    return g;
  }

  std::vector<core::Checkpointable*> roots() { return {root}; }

  void reset_flags() {
    for (auto* obj : std::initializer_list<core::Checkpointable*>{
             root, mid, leaf_a, leaf_b})
      obj->info().reset_modified();
  }
};

TEST(CheckpointDriver, FullRecordsEveryObject) {
  Graph g = Graph::make();
  g.reset_flags();  // even clean objects are recorded in full mode
  auto roots = g.roots();
  io::VectorSink sink;
  io::DataWriter w(sink);
  auto stats = Checkpoint::run(w, 0, roots, {.mode = Mode::kFull});
  EXPECT_EQ(stats.objects_visited, 4u);
  EXPECT_EQ(stats.objects_recorded, 4u);
}

TEST(CheckpointDriver, IncrementalRecordsOnlyModified) {
  Graph g = Graph::make();
  g.reset_flags();
  g.leaf_b->set_i32(99);
  auto roots = g.roots();
  io::VectorSink sink;
  io::DataWriter w(sink);
  auto stats = Checkpoint::run(w, 1, roots, {.mode = Mode::kIncremental});
  EXPECT_EQ(stats.objects_visited, 4u);
  EXPECT_EQ(stats.objects_recorded, 1u);
}

TEST(CheckpointDriver, NewObjectsStartModified) {
  Graph g = Graph::make();
  auto roots = g.roots();
  io::VectorSink sink;
  io::DataWriter w(sink);
  auto stats = Checkpoint::run(w, 0, roots, {.mode = Mode::kIncremental});
  // Freshly constructed objects carry a set flag (paper Fig. 1 constructor).
  EXPECT_EQ(stats.objects_recorded, 4u);
}

TEST(CheckpointDriver, RecordingResetsFlags) {
  Graph g = Graph::make();
  auto roots = g.roots();
  io::VectorSink sink;
  io::DataWriter w(sink);
  Checkpoint::run(w, 0, roots, {.mode = Mode::kIncremental});
  EXPECT_FALSE(g.root->info().modified());
  EXPECT_FALSE(g.mid->info().modified());
  EXPECT_FALSE(g.leaf_a->info().modified());
  EXPECT_FALSE(g.leaf_b->info().modified());

  // Second incremental checkpoint is records-free.
  io::VectorSink sink2;
  io::DataWriter w2(sink2);
  auto stats = Checkpoint::run(w2, 1, roots, {.mode = Mode::kIncremental});
  EXPECT_EQ(stats.objects_recorded, 0u);
}

TEST(CheckpointDriver, FullModeAlsoResetsFlags) {
  Graph g = Graph::make();
  auto roots = g.roots();
  io::VectorSink sink;
  io::DataWriter w(sink);
  Checkpoint::run(w, 0, roots, {.mode = Mode::kFull});
  EXPECT_FALSE(g.root->info().modified());
  EXPECT_FALSE(g.leaf_b->info().modified());
}

TEST(CheckpointDriver, UnmodifiedSubtreeStillTraversed) {
  // Incremental checkpointing must visit clean objects to find dirty ones
  // below them — the overhead the paper's traversal-pruning removes.
  Graph g = Graph::make();
  g.reset_flags();
  g.leaf_b->set_i32(5);  // dirty leaf under clean root/mid
  auto roots = g.roots();
  io::VectorSink sink;
  io::DataWriter w(sink);
  auto stats = Checkpoint::run(w, 1, roots, {.mode = Mode::kIncremental});
  EXPECT_EQ(stats.objects_visited, 4u);
  EXPECT_EQ(stats.objects_recorded, 1u);
}

TEST(CheckpointDriver, DryRunWritesNothingAndKeepsFlags) {
  Graph g = Graph::make();
  auto roots = g.roots();
  io::VectorSink sink;
  io::DataWriter w(sink);
  CheckpointOptions opts;
  opts.mode = Mode::kIncremental;
  opts.dry_run = true;
  auto stats = Checkpoint::run(w, 0, roots, opts);
  w.flush();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(stats.objects_visited, 4u);
  EXPECT_TRUE(g.root->info().modified());  // flags untouched
}

TEST(CheckpointDriver, StreamHeaderLayout) {
  Graph g = Graph::make();
  auto roots = g.roots();
  io::VectorSink sink;
  io::DataWriter w(sink);
  Checkpoint::run(w, 7, roots, {.mode = Mode::kIncremental});
  w.flush();
  io::DataReader r(sink.bytes());
  EXPECT_EQ(r.read_u8(), core::kStreamMagic);
  EXPECT_EQ(r.read_u8(), core::kFormatVersion);
  EXPECT_EQ(r.read_u8(), static_cast<std::uint8_t>(Mode::kIncremental));
  EXPECT_EQ(r.read_u64(), 7u);
  EXPECT_EQ(r.read_varint(), 1u);  // one root
  EXPECT_EQ(r.read_varint(), g.root->info().id());
}

TEST(CheckpointDriver, EndTagTerminatesStream) {
  Graph g = Graph::make();
  g.reset_flags();
  auto roots = g.roots();
  auto bytes = checkpoint_bytes(roots, 0, Mode::kIncremental);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes.back(), core::kEndTag);
}

TEST(CheckpointDriver, EndTwiceThrows) {
  Graph g = Graph::make();
  auto roots = g.roots();
  io::VectorSink sink;
  io::DataWriter w(sink);
  Checkpoint c(w, 0, std::span<core::Checkpointable* const>(roots),
               {.mode = Mode::kFull});
  c.checkpoint(*g.root);
  c.end();
  EXPECT_THROW(c.end(), Error);
}

TEST(CheckpointDriver, MultipleRootsInOrder) {
  core::Heap heap;
  Leaf* a = heap.make<Leaf>();
  Leaf* b = heap.make<Leaf>();
  a->set_i32(1);
  b->set_i32(2);
  std::vector<core::Checkpointable*> roots{a, b};
  io::VectorSink sink;
  io::DataWriter w(sink);
  Checkpoint::run(w, 0, roots, {.mode = Mode::kFull});
  w.flush();
  io::DataReader r(sink.bytes());
  r.read_u8();
  r.read_u8();
  r.read_u8();
  r.read_u64();
  EXPECT_EQ(r.read_varint(), 2u);
  EXPECT_EQ(r.read_varint(), a->info().id());
  EXPECT_EQ(r.read_varint(), b->info().id());
}

TEST(CheckpointDriver, CycleGuardTerminatesOnSharedStructure) {
  core::Heap heap;
  Inner* x = heap.make<Inner>();
  Inner* y = heap.make<Inner>();
  x->set_right(y);
  y->set_right(x);  // cycle
  std::vector<core::Checkpointable*> roots{x};
  io::VectorSink sink;
  io::DataWriter w(sink);
  CheckpointOptions opts;
  opts.mode = Mode::kFull;
  opts.cycle_guard = true;
  auto stats = Checkpoint::run(w, 0, roots, opts);
  EXPECT_EQ(stats.objects_visited, 2u);
  EXPECT_EQ(stats.objects_recorded, 2u);
}

TEST(CheckpointDriver, SharedChildRecordedOnceWithGuard) {
  core::Heap heap;
  Leaf* shared = heap.make<Leaf>();
  Inner* left = heap.make<Inner>();
  Inner* root = heap.make<Inner>();
  left->set_left(shared);
  root->set_left(shared);
  root->set_right(left);
  std::vector<core::Checkpointable*> roots{root};
  io::VectorSink sink;
  io::DataWriter w(sink);
  CheckpointOptions opts;
  opts.mode = Mode::kFull;
  opts.cycle_guard = true;
  auto stats = Checkpoint::run(w, 0, roots, opts);
  EXPECT_EQ(stats.objects_recorded, 3u);
}

// The hook dispatch is bound once at construction (one pointer test per
// hook per visit); this pins down that binding neither drops events nor
// perturbs the walk: hook fire counts match the stats, and the stats and
// bytes are identical with and without hooks installed.
TEST(CheckpointDriver, HooksFireOncePerVisitAndLeaveWalkUnchanged) {
  core::Heap heap;
  Leaf* shared = heap.make<Leaf>();
  Inner* left = heap.make<Inner>();
  Inner* root = heap.make<Inner>();
  left->set_left(shared);
  root->set_left(shared);
  root->set_right(left);
  std::vector<core::Checkpointable*> roots{root};

  CheckpointOptions opts;
  opts.mode = Mode::kFull;
  opts.cycle_guard = true;

  io::VectorSink bare_sink;
  core::CheckpointStats bare;
  {
    io::DataWriter w(bare_sink);
    bare = Checkpoint::run(w, 0, roots, opts);
    w.flush();
  }

  std::size_t enters = 0, leaves = 0, revisits = 0;
  core::VisitHooks hooks;
  hooks.enter = [&](core::Checkpointable&) { ++enters; };
  hooks.leave = [&](core::Checkpointable&) { ++leaves; };
  hooks.revisit = [&](core::Checkpointable&) { ++revisits; };
  opts.hooks = &hooks;
  io::VectorSink hooked_sink;
  core::CheckpointStats hooked;
  {
    io::DataWriter w(hooked_sink);
    hooked = Checkpoint::run(w, 0, roots, opts);
    w.flush();
  }

  // enter/leave fire exactly once per visited object; revisit fires for the
  // one extra edge into the shared leaf.
  EXPECT_EQ(enters, hooked.objects_visited);
  EXPECT_EQ(leaves, hooked.objects_visited);
  EXPECT_EQ(revisits, 1u);
  // Observation must not perturb the walk or the stream.
  EXPECT_EQ(hooked.objects_visited, bare.objects_visited);
  EXPECT_EQ(hooked.objects_recorded, bare.objects_recorded);
  EXPECT_EQ(hooked_sink.bytes(), bare_sink.bytes());

  // A partially populated hook set binds only the hooks that exist.
  core::VisitHooks only_enter;
  std::size_t enters2 = 0;
  only_enter.enter = [&](core::Checkpointable&) { ++enters2; };
  opts.hooks = &only_enter;
  io::VectorSink sink3;
  {
    io::DataWriter w(sink3);
    auto stats = Checkpoint::run(w, 0, roots, opts);
    EXPECT_EQ(enters2, stats.objects_visited);
  }
}

TEST(CheckpointInfo, IdsAreUniqueAndNonNull) {
  core::CheckpointInfo a;
  core::CheckpointInfo b;
  EXPECT_NE(a.id(), kNullObjectId);
  EXPECT_NE(a.id(), b.id());
}

TEST(CheckpointInfo, RestoreConstructorBumpsAllocator) {
  core::CheckpointInfo preserved(core::IdAllocator::next() + 1000);
  core::CheckpointInfo fresh;
  EXPECT_GT(fresh.id(), preserved.id());
}

TEST(CheckpointInfo, ModifiedFlagLifecycle) {
  core::CheckpointInfo info;
  EXPECT_TRUE(info.modified());  // fresh objects are dirty
  info.reset_modified();
  EXPECT_FALSE(info.modified());
  info.set_modified();
  EXPECT_TRUE(info.modified());
}

}  // namespace
}  // namespace ickpt::testing
