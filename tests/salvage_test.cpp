// Salvage recovery and repair: mid-log corruption costs one checkpoint
// window instead of the whole suffix, a corrupt most-recent full falls back
// to the prior window (or a clean CorruptionError — never a partial graph),
// FrameIterator streams frames with byte offsets, and
// StableStorage::repair / reopen-time auto-repair truncate only the
// unreadable tail (settled frames beyond mid-log damage are preserved)
// with the removed bytes saved to .bak.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/manager.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"
#include "tests/test_types.hpp"
#include "verify/fsck.hpp"

namespace ickpt::testing {
namespace {

using core::CheckpointManager;
using core::ManagerOptions;
using core::RecoverOptions;
using core::TypeRegistry;
using io::StableStorage;

// Raw-log helpers: 16-byte payloads => every frame is 20 + 16 = 36 bytes.
constexpr std::size_t kFrameBytes = 36;

std::vector<std::uint8_t> payload_of(std::uint8_t fill) {
  return std::vector<std::uint8_t>(16, fill);
}

class SalvageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ickpt_salvage_test.log";
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
    register_test_types(registry_);
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
  }

  /// Take `n` checkpoints of one leaf (value 10+i at epoch i) and return
  /// the frame table of the resulting clean log.
  std::vector<io::Frame> build_manager_log(unsigned full_interval, int n) {
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    ManagerOptions opts;
    opts.full_interval = full_interval;
    CheckpointManager manager(path_, opts);
    for (int i = 0; i < n; ++i) {
      leaf->set_i32(10 + i);
      manager.take(*leaf);
    }
    auto scan = StableStorage::scan(path_);
    EXPECT_TRUE(scan.clean);
    EXPECT_EQ(scan.frames.size(), static_cast<std::size_t>(n));
    return scan.frames;
  }

  /// Flip the first payload byte of the frame starting at `frame_offset`.
  void corrupt_payload_at(std::uint64_t frame_offset) {
    auto bytes = io::read_file(path_);
    ASSERT_LT(frame_offset + 20, bytes.size());
    bytes[frame_offset + 20] ^= 0xFF;
    io::write_file(path_, bytes);
  }

  std::string path_;
  TypeRegistry registry_;
};

TEST_F(SalvageTest, SalvageScanResyncsPastMidLogCorruption) {
  {
    StableStorage storage(path_);
    for (std::uint8_t i = 0; i < 4; ++i) storage.append(payload_of(i));
  }
  corrupt_payload_at(kFrameBytes);  // frame 1

  auto plain = StableStorage::scan(path_);
  EXPECT_FALSE(plain.clean);
  ASSERT_EQ(plain.frames.size(), 1u);
  EXPECT_EQ(plain.stop_offset, kFrameBytes);
  EXPECT_EQ(plain.valid_prefix_bytes, kFrameBytes);

  auto salvaged = StableStorage::scan(path_, {.salvage = true});
  EXPECT_FALSE(salvaged.clean);
  ASSERT_EQ(salvaged.frames.size(), 3u);
  EXPECT_EQ(salvaged.frames[0].seq, 0u);
  EXPECT_EQ(salvaged.frames[1].seq, 2u);
  EXPECT_EQ(salvaged.frames[2].seq, 3u);
  EXPECT_FALSE(salvaged.frames[0].resync);
  EXPECT_TRUE(salvaged.frames[1].resync);
  EXPECT_FALSE(salvaged.frames[2].resync);
  EXPECT_EQ(salvaged.frames[1].offset, 2 * kFrameBytes);
  EXPECT_EQ(salvaged.stop_offset, kFrameBytes);
  EXPECT_EQ(salvaged.regions_skipped, 1u);
  EXPECT_EQ(salvaged.bytes_skipped, kFrameBytes);
}

TEST_F(SalvageTest, FrameIteratorStreamsFramesWithOffsets) {
  {
    StableStorage storage(path_);
    for (std::uint8_t i = 0; i < 3; ++i) storage.append(payload_of(i));
  }
  io::FrameIterator it(path_);
  io::Frame frame;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(it.next(frame));
    EXPECT_EQ(frame.seq, i);
    EXPECT_EQ(frame.offset, i * kFrameBytes);
    EXPECT_EQ(frame.payload, payload_of(static_cast<std::uint8_t>(i)));
  }
  EXPECT_FALSE(it.next(frame));
  EXPECT_TRUE(it.clean());
  EXPECT_EQ(it.valid_prefix_bytes(), 3 * kFrameBytes);

  // The in-memory iterator sees the identical stream.
  auto bytes = io::read_file(path_);
  io::FrameIterator mem(bytes.data(), bytes.size());
  std::size_t count = 0;
  while (mem.next(frame)) ++count;
  EXPECT_EQ(count, 3u);
  EXPECT_TRUE(mem.clean());

  // A missing file is an empty, clean log.
  io::FrameIterator missing(path_ + ".does-not-exist");
  EXPECT_FALSE(missing.next(frame));
  EXPECT_TRUE(missing.clean());
  EXPECT_EQ(missing.valid_prefix_bytes(), 0u);
}

// Regression for the pre-salvage behavior: the same damaged log recovered
// with salvage off (old truncation semantics) and on (new), asserting both
// counts. One corrupt incremental used to cost every later checkpoint,
// including two fulls that supersede it.
TEST_F(SalvageTest, RecoverSalvagesSuffixAfterMidLogCorruption) {
  auto frames = build_manager_log(/*full_interval=*/2, /*n=*/6);
  corrupt_payload_at(frames[1].offset);  // incremental at epoch 1

  auto truncated = CheckpointManager::recover(path_, registry_,
                                              RecoverOptions{.salvage = false});
  EXPECT_FALSE(truncated.log_clean);
  EXPECT_EQ(truncated.checkpoints_applied, 1u);  // only the epoch-0 full
  EXPECT_EQ(truncated.state.root_as<Leaf>()->i32, 10);
  EXPECT_EQ(truncated.state.epoch, 0u);

  auto salvaged = CheckpointManager::recover(path_, registry_);
  EXPECT_FALSE(salvaged.log_clean);
  // Resync found frames 2..5; the newest window is the epoch-4 full plus
  // the epoch-5 incremental.
  EXPECT_EQ(salvaged.checkpoints_applied, 2u);
  EXPECT_EQ(salvaged.state.root_as<Leaf>()->i32, 15);
  EXPECT_EQ(salvaged.state.epoch, 5u);
  EXPECT_EQ(salvaged.frames_total, 5u);
  EXPECT_EQ(salvaged.frames_dropped, 3u);
  EXPECT_EQ(salvaged.corrupt_regions, 1u);
  EXPECT_EQ(salvaged.damage_offset, frames[1].offset);
  EXPECT_GT(salvaged.bytes_skipped, 0u);
  EXPECT_FALSE(salvaged.log_note.empty());
  EXPECT_NE(salvaged.log_note.find("at byte"), std::string::npos)
      << salvaged.log_note;
}

TEST_F(SalvageTest, CorruptMostRecentFullFallsBackToPriorWindow) {
  auto frames = build_manager_log(/*full_interval=*/3, /*n=*/7);
  // Fulls at epochs 0, 3, 6; kill the most recent one.
  corrupt_payload_at(frames[6].offset);

  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_FALSE(result.log_clean);
  // Falls back to the epoch-3 full plus incrementals 4 and 5.
  EXPECT_EQ(result.checkpoints_applied, 3u);
  EXPECT_EQ(result.state.root_as<Leaf>()->i32, 15);
  EXPECT_EQ(result.state.epoch, 5u);
}

TEST_F(SalvageTest, CorruptOnlyFullThrowsCorruptionError) {
  auto frames = build_manager_log(/*full_interval=*/100, /*n=*/5);
  corrupt_payload_at(frames[0].offset);  // the only full checkpoint
  // Incrementals alone cannot reconstruct the graph: a clean error, never a
  // partial state.
  try {
    CheckpointManager::recover(path_, registry_);
    FAIL() << "recovery without a usable full checkpoint must throw";
  } catch (const CorruptionError& e) {
    EXPECT_NE(std::string(e.what()).find("full checkpoint"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(SalvageTest, RepairTruncatesTornTailAndFsckGoesClean) {
  auto frames = build_manager_log(/*full_interval=*/100, /*n=*/4);
  auto bytes = io::read_file(path_);
  const std::uint64_t torn_at = frames[3].offset;
  const std::uint64_t torn_bytes = bytes.size() - torn_at - 7;
  bytes.resize(bytes.size() - 7);  // tear the final frame
  io::write_file(path_, bytes);

  auto before = verify::fsck_log(path_, registry_);
  EXPECT_FALSE(before.clean());
  const auto* tail = before.first("log-tail");
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(tail->byte_offset, static_cast<std::int64_t>(torn_at));

  auto repaired = StableStorage::repair(path_);
  EXPECT_TRUE(repaired.repaired);
  EXPECT_EQ(repaired.frames_kept, 3u);
  EXPECT_EQ(repaired.bytes_removed, torn_bytes);
  EXPECT_FALSE(repaired.reason.empty());
  EXPECT_EQ(repaired.bak_path, path_ + ".bak");
  EXPECT_EQ(io::read_file(repaired.bak_path).size(), torn_bytes);

  auto after = verify::fsck_log(path_, registry_);
  EXPECT_TRUE(after.clean()) << after.to_string();
  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_TRUE(result.log_clean);
  EXPECT_EQ(result.state.epoch, 2u);
  EXPECT_EQ(result.state.root_as<Leaf>()->i32, 12);
}

TEST_F(SalvageTest, RepairOnCleanLogIsNoOp) {
  auto size_before = [&] {
    build_manager_log(/*full_interval=*/4, /*n=*/3);
    return io::read_file(path_).size();
  }();
  auto repaired = StableStorage::repair(path_);
  EXPECT_FALSE(repaired.repaired);
  EXPECT_EQ(repaired.bytes_removed, 0u);
  EXPECT_EQ(io::read_file(path_).size(), size_before);
}

TEST_F(SalvageTest, ReopenAfterMidLogDamagePreservesLaterFramesAndSeqs) {
  {
    StableStorage storage(path_);
    for (std::uint8_t i = 0; i < 3; ++i) storage.append(payload_of(i));
  }
  // Corrupt frame 1: the plain-scan prefix ends at frame 0, but frame 2
  // (seq 2) is settled state beyond the damage. Reopen must keep it in the
  // log — the damage is mid-log, not an unreadable tail — and resume seq
  // numbering above it so new frames can never collide.
  corrupt_payload_at(kFrameBytes);

  StableStorage reopened(path_);
  EXPECT_EQ(reopened.next_seq(), 3u);
  EXPECT_EQ(reopened.append(payload_of(9)), 3u);

  // Nothing was truncated or moved aside: mid-log damage stays in place
  // for salvage readers, and appends land after the clean tail boundary.
  EXPECT_FALSE(io::file_exists(path_ + ".bak"));
  EXPECT_FALSE(StableStorage::scan(path_).clean);
  auto salvaged = StableStorage::scan(path_, {.salvage = true});
  ASSERT_EQ(salvaged.frames.size(), 3u);
  EXPECT_EQ(salvaged.frames[0].seq, 0u);
  EXPECT_EQ(salvaged.frames[1].seq, 2u);
  EXPECT_EQ(salvaged.frames[2].seq, 3u);
}

TEST_F(SalvageTest, RepairOnMidLogDamageOnlyIsNoOp) {
  auto frames = build_manager_log(/*full_interval=*/100, /*n=*/4);
  const auto size_before = io::read_file(path_).size();
  corrupt_payload_at(frames[1].offset);

  auto repaired = StableStorage::repair(path_);
  EXPECT_FALSE(repaired.repaired);
  EXPECT_EQ(repaired.bytes_removed, 0u);
  EXPECT_EQ(repaired.frames_kept, 3u);
  EXPECT_NE(repaired.reason.find("mid-log"), std::string::npos)
      << repaired.reason;
  EXPECT_EQ(io::read_file(path_).size(), size_before);
}

TEST_F(SalvageTest, RepairKeepsSettledFramesBehindMidLogDamage) {
  // The chaos-soak data-loss scenario: a bit flip lands in one frame
  // (silent at write time, CRC-bad at read time), later epochs — including
  // a fresh full checkpoint — append fine after it, then a crash tears the
  // tail. Repair must remove only the torn bytes; truncating at the first
  // damage would destroy the settled suffix.
  auto frames = build_manager_log(/*full_interval=*/3, /*n=*/7);
  corrupt_payload_at(frames[1].offset);  // flip an early incremental
  auto bytes = io::read_file(path_);
  bytes.resize(bytes.size() - 7);  // tear the final frame (the epoch-6 full)
  io::write_file(path_, bytes);
  const std::uint64_t torn_bytes = bytes.size() - frames[6].offset;

  auto repaired = StableStorage::repair(path_);
  EXPECT_TRUE(repaired.repaired);
  EXPECT_EQ(repaired.frames_kept, 5u);  // frames 0,2,3,4,5 survive
  EXPECT_EQ(repaired.bytes_removed, torn_bytes);
  EXPECT_NE(repaired.reason.find("damaged tail"), std::string::npos)
      << repaired.reason;
  EXPECT_EQ(io::read_file(path_).size(), frames[6].offset);

  // Recovery chains the epoch-3 full with incrementals 4 and 5.
  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_EQ(result.state.epoch, 5u);
  EXPECT_EQ(result.state.root_as<Leaf>()->i32, 15);
}

}  // namespace
}  // namespace ickpt::testing
