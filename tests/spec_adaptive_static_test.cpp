// The verify loop closed end to end: a workload whose observation epochs
// never exercise a position the write set proves writable yields a dynamic
// pattern the checker refutes, while the statically inferred pattern
// compiles through the verifying gate and records correctly from epoch one
// inside AdaptiveCheckpointer (Stage::kStatic), with dynamic observation as
// the cross-check and the fallback.
#include <gtest/gtest.h>

#include "analysis/attributes.hpp"
#include "analysis/shapes.hpp"
#include "core/recovery.hpp"
#include "obs/metrics.hpp"
#include "spec/adaptive.hpp"
#include "spec/inference.hpp"
#include "verify/infer.hpp"
#include "verify/pattern_check.hpp"

namespace ickpt::testing {
namespace {

using analysis::Phase;
using spec::AdaptiveCheckpointer;
using spec::PatternNode;
using Stage = AdaptiveCheckpointer::Stage;

/// A forest of Attributes trees (the paper's per-statement annotation
/// structure), with direct flag control.
struct AttrGraph {
  core::Heap heap;
  std::vector<analysis::Attributes*> attrs;
  std::vector<core::Checkpointable*> bases;
  std::vector<void*> ptrs;
  std::vector<core::CheckpointInfo*> infos;

  explicit AttrGraph(int n) {
    for (int i = 0; i < n; ++i) {
      auto* se = heap.make<analysis::SEEntry>();
      auto* bt_leaf = heap.make<analysis::BT>();
      auto* bt = heap.make<analysis::BTEntry>(bt_leaf);
      auto* et_leaf = heap.make<analysis::ET>();
      auto* et = heap.make<analysis::ETEntry>(et_leaf);
      auto* attr = heap.make<analysis::Attributes>(se, bt, et);
      attrs.push_back(attr);
      bases.push_back(attr);
      ptrs.push_back(attr);
      for (core::CheckpointInfo* info :
           {&attr->info(), &se->info(), &bt->info(), &bt_leaf->info(),
            &et->info(), &et_leaf->info()})
        infos.push_back(info);
    }
  }

  void reset_flags() {
    for (core::CheckpointInfo* info : infos) info->reset_modified();
  }

  std::vector<bool> save_flags() const {
    std::vector<bool> flags;
    flags.reserve(infos.size());
    for (const core::CheckpointInfo* info : infos)
      flags.push_back(info->modified());
    return flags;
  }

  void restore_flags(const std::vector<bool>& flags) {
    for (std::size_t i = 0; i < infos.size(); ++i) {
      if (flags[i])
        infos[i]->set_modified();
      else
        infos[i]->reset_modified();
    }
  }

  /// BTA behaviour: rewrite the BT annotation of every third tree
  /// (compare-and-set, so alternating values dirty each call).
  void dirty_bt(int epoch) {
    for (std::size_t i = 0; i < attrs.size(); i += 3)
      if (analysis::BT* leaf = attrs[i]->bt()->leaf(); leaf != nullptr)
        leaf->set_annotation(epoch % 2 == 0 ? analysis::kDynamic
                                            : analysis::kStatic);
  }

  /// Side-effect churn that never touches the BT/ET subtrees.
  void dirty_se(int epoch) {
    for (std::size_t i = 0; i < attrs.size(); i += 2) {
      std::int32_t v = epoch + static_cast<std::int32_t>(i);
      attrs[i]->se()->set_sets(std::span(&v, 1), std::span(&v, 1));
    }
  }

  AdaptiveCheckpointer::Roots roots() { return {bases, ptrs}; }
};

std::vector<std::uint8_t> generic_bytes(AttrGraph& g, Epoch epoch) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = core::Mode::kIncremental;
    core::Checkpoint::run(writer, epoch,
                          std::span<core::Checkpointable* const>(g.bases),
                          opts);
    writer.flush();
  }
  return sink.take();
}

AdaptiveCheckpointer::Result adaptive_step(AdaptiveCheckpointer& adaptive,
                                           AttrGraph& g, Epoch epoch,
                                           std::vector<std::uint8_t>* out =
                                               nullptr) {
  io::VectorSink sink;
  io::DataWriter writer(sink);
  auto result = adaptive.checkpoint(writer, epoch, g.roots());
  writer.flush();
  if (out != nullptr) *out = sink.take();
  return result;
}

TEST(AdaptiveStatic, UnderExercisedEpochsLearnARefutablePattern) {
  // The BTA write set proves bt_annot writable, but these observation
  // epochs only churn the SE sets: the learned pattern skips the BT subtree
  // — exactly the unsound-learning hazard static inference removes.
  AttrGraph g(12);
  g.reset_flags();
  auto shapes = analysis::AnalysisShapes::make();
  spec::PatternInferencer inferencer(*shapes.attributes);
  for (int epoch = 0; epoch < 4; ++epoch) {
    g.dirty_se(epoch);
    for (void* root : g.ptrs) inferencer.observe(root);
    g.reset_flags();
  }
  PatternNode learned = inferencer.infer();
  ASSERT_EQ(learned.children.size(), 3u);
  EXPECT_TRUE(learned.children[1].skip);  // BT subtree never seen dirty

  auto report = verify::check_attributes_pattern(Phase::kBindingTime,
                                                 learned);
  EXPECT_FALSE(report.clean()) << report.to_string();
  const verify::Finding* finding = report.first("unsound-skip");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_NE(finding->message.find("bt_annot"), std::string::npos)
      << finding->message;

  // The static pattern for the same phase survives the same checker.
  auto inferred = verify::infer_attributes_pattern(Phase::kBindingTime);
  auto static_report =
      verify::check_attributes_pattern(Phase::kBindingTime, inferred.pattern);
  EXPECT_TRUE(static_report.findings.empty()) << static_report.to_string();
}

TEST(AdaptiveStatic, StaticPlanRecordsCorrectlyFromEpochOne) {
  AttrGraph g(12);
  g.reset_flags();
  auto shapes = analysis::AnalysisShapes::make();
  AdaptiveCheckpointer::Options opts;
  opts.observe_epochs = 2;
  opts.static_pattern =
      verify::infer_attributes_pattern(Phase::kBindingTime).pattern;
  AdaptiveCheckpointer adaptive(*shapes.attributes, opts);
  ASSERT_EQ(adaptive.stage(), Stage::kStatic);
  ASSERT_NE(adaptive.plan(), nullptr);  // compiled up front, no learning lag

  for (int epoch = 0; epoch < 5; ++epoch) {
    g.dirty_bt(epoch);
    auto flags = g.save_flags();
    auto generic = generic_bytes(g, static_cast<Epoch>(epoch));
    g.restore_flags(flags);
    std::vector<std::uint8_t> bytes;
    auto result =
        adaptive_step(adaptive, g, static_cast<Epoch>(epoch), &bytes);
    EXPECT_EQ(result.stage_used, Stage::kStatic) << "epoch " << epoch;
    EXPECT_FALSE(result.fell_back);
    EXPECT_EQ(bytes, generic) << "epoch " << epoch;
  }
  EXPECT_EQ(adaptive.fallbacks(), 0u);

  // The cross-check ran during the first observe_epochs epochs, and this
  // workload behaves exactly as the analysis proves, so the learned and
  // static patterns coincide.
  EXPECT_TRUE(adaptive.crosschecked());
  EXPECT_EQ(adaptive.disagreements(), 0u);
}

TEST(AdaptiveStatic, CrosscheckCountsDisagreements) {
  // Epochs that dirty nothing at all teach the inferencer to skip the whole
  // structure; the cross-check must count every position where that learned
  // claim is stronger than the proven one.
  AttrGraph g(6);
  g.reset_flags();
  auto shapes = analysis::AnalysisShapes::make();
  AdaptiveCheckpointer::Options opts;
  opts.observe_epochs = 2;
  opts.static_pattern =
      verify::infer_attributes_pattern(Phase::kBindingTime).pattern;
  AdaptiveCheckpointer adaptive(*shapes.attributes, opts);

  auto first = adaptive_step(adaptive, g, 0);
  EXPECT_EQ(first.stage_used, Stage::kStatic);
  EXPECT_FALSE(adaptive.crosschecked());
  EXPECT_EQ(adaptive.disagreements(), 0u);

  adaptive_step(adaptive, g, 1);
  EXPECT_TRUE(adaptive.crosschecked());
  EXPECT_GT(adaptive.disagreements(), 0u);
  EXPECT_EQ(adaptive.stage(), Stage::kStatic);  // informative, not fatal
}

TEST(AdaptiveStatic, StructuralDriftFallsBackToDynamicLearning) {
  AttrGraph g(8);
  g.reset_flags();
  auto shapes = analysis::AnalysisShapes::make();
  AdaptiveCheckpointer::Options opts;
  opts.observe_epochs = 2;
  opts.static_pattern =
      verify::infer_attributes_pattern(Phase::kBindingTime).pattern;
  AdaptiveCheckpointer adaptive(*shapes.attributes, opts);

  g.dirty_bt(0);
  auto ok = adaptive_step(adaptive, g, 0);
  EXPECT_EQ(ok.stage_used, Stage::kStatic);

  // Structural drift: a BT leaf disappears. The static plan follows that
  // pointer test-free, so the run aborts and the checkpoint is re-issued
  // generically; the stale static pattern is dropped for dynamic learning.
  g.attrs[0]->bt()->set_leaf(nullptr);
  std::vector<std::uint8_t> bytes;
  auto fell = adaptive_step(adaptive, g, 1, &bytes);
  EXPECT_TRUE(fell.fell_back);
  EXPECT_EQ(fell.stage_used, Stage::kObserving);
  EXPECT_EQ(adaptive.stage(), Stage::kObserving);
  EXPECT_EQ(adaptive.fallbacks(), 1u);

  // The fallback stream is a complete, recoverable full checkpoint.
  core::TypeRegistry registry;
  analysis::register_types(registry);
  core::Recovery recovery(registry);
  io::DataReader reader(bytes);
  auto header = recovery.apply(reader);
  EXPECT_EQ(header.mode, core::Mode::kFull);
  auto state = recovery.finish();
  EXPECT_EQ(state.by_id.size(), g.infos.size() - 1);  // nulled leaf dropped

  // The fallback is to *dynamic* observation: after the learning window the
  // checkpointer specializes from observations, not from the stale pattern.
  for (int epoch = 2; epoch < 4; ++epoch) {
    g.dirty_bt(epoch);
    adaptive_step(adaptive, g, static_cast<Epoch>(epoch));
  }
  EXPECT_EQ(adaptive.stage(), Stage::kSpecialized);
}

TEST(AdaptiveStatic, RollingReobservationCatchesBehaviouralDrift) {
  // The one-shot cross-check proves the workload as it behaved during the
  // first epochs. Behavioural drift afterwards — the workload starts
  // dirtying the SE subtree the binding-time plan skips — is invisible to
  // the plan's structural assertions: the skip means those objects are never
  // visited, so their records are silently dropped forever. The rolling
  // re-observation window must catch it and fall back.
  obs::Registry registry;
  obs::Registry::install(&registry);

  AttrGraph g(12);
  g.reset_flags();
  auto shapes = analysis::AnalysisShapes::make();
  AdaptiveCheckpointer::Options opts;
  opts.observe_epochs = 2;
  opts.reobserve_interval = 2;
  opts.static_pattern =
      verify::infer_attributes_pattern(Phase::kBindingTime).pattern;
  AdaptiveCheckpointer adaptive(*shapes.attributes, opts);

  // Epochs 0-1: initial cross-check; 2: quiet interval; 3-4: window.
  for (int epoch = 0; epoch < 3; ++epoch) {
    g.dirty_bt(epoch);
    auto result = adaptive_step(adaptive, g, static_cast<Epoch>(epoch));
    EXPECT_EQ(result.stage_used, Stage::kStatic) << "epoch " << epoch;
    EXPECT_FALSE(result.fell_back);
  }
  EXPECT_TRUE(adaptive.crosschecked());
  EXPECT_EQ(adaptive.disagreements(), 0u);

  g.dirty_bt(3);
  g.dirty_se(3);  // drift begins: the plan neither tests nor records SE
  auto mid = adaptive_step(adaptive, g, 3);
  EXPECT_EQ(mid.stage_used, Stage::kStatic);
  EXPECT_FALSE(mid.fell_back);

  g.dirty_bt(4);
  g.dirty_se(4);
  std::vector<std::uint8_t> bytes;
  auto fell = adaptive_step(adaptive, g, 4, &bytes);
  EXPECT_TRUE(fell.fell_back);
  EXPECT_EQ(fell.stage_used, Stage::kObserving);
  EXPECT_EQ(adaptive.stage(), Stage::kObserving);
  EXPECT_EQ(adaptive.fallbacks(), 1u);
  EXPECT_EQ(adaptive.reobservations(), 1u);
  EXPECT_FALSE(bytes.empty());  // sound generic epoch, flags were intact

  obs::Snapshot snap = registry.snapshot();
  obs::Registry::install(nullptr);
  EXPECT_EQ(snap.counter_sum("ickpt_reobservation_epochs_total"), 2u);
  EXPECT_EQ(snap.counter_sum("ickpt_adaptive_fallbacks_total"), 1u);
}

TEST(AdaptiveStatic, RollingReobservationCleanWindowKeepsPlan) {
  // A workload that keeps behaving as proven completes its windows without
  // fallback; re-observation costs flag walks, never a generic epoch.
  AttrGraph g(12);
  g.reset_flags();
  auto shapes = analysis::AnalysisShapes::make();
  AdaptiveCheckpointer::Options opts;
  opts.observe_epochs = 2;
  opts.reobserve_interval = 2;
  opts.static_pattern =
      verify::infer_attributes_pattern(Phase::kBindingTime).pattern;
  AdaptiveCheckpointer adaptive(*shapes.attributes, opts);

  for (int epoch = 0; epoch < 9; ++epoch) {
    g.dirty_bt(epoch);
    auto result = adaptive_step(adaptive, g, static_cast<Epoch>(epoch));
    EXPECT_EQ(result.stage_used, Stage::kStatic) << "epoch " << epoch;
    EXPECT_FALSE(result.fell_back) << "epoch " << epoch;
  }
  EXPECT_EQ(adaptive.fallbacks(), 0u);
  EXPECT_GE(adaptive.reobservations(), 1u);
  EXPECT_EQ(adaptive.stage(), Stage::kStatic);
}

}  // namespace
}  // namespace ickpt::testing
