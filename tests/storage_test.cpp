// StableStorage tests: framing, sequence numbering, resume-after-reopen, and
// fault injection (torn writes at every byte boundary, CRC corruption at
// every byte position of a frame).
#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"

namespace ickpt::io {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> payload_of(char fill, std::size_t n) {
  return std::vector<std::uint8_t>(n, static_cast<std::uint8_t>(fill));
}

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_path("ickpt_storage_test.log");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(StorageTest, AppendAndScan) {
  {
    StableStorage storage(path_);
    EXPECT_EQ(storage.append(payload_of('a', 10)), 0u);
    EXPECT_EQ(storage.append(payload_of('b', 0)), 1u);  // empty payload ok
    EXPECT_EQ(storage.append(payload_of('c', 100000)), 2u);
  }
  ScanResult scan = StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 3u);
  EXPECT_EQ(scan.frames[0].seq, 0u);
  EXPECT_EQ(scan.frames[0].payload, payload_of('a', 10));
  EXPECT_TRUE(scan.frames[1].payload.empty());
  EXPECT_EQ(scan.frames[2].payload.size(), 100000u);
}

TEST_F(StorageTest, MissingFileScansEmpty) {
  ScanResult scan = StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  EXPECT_TRUE(scan.frames.empty());
}

TEST_F(StorageTest, SequenceResumesAcrossReopen) {
  {
    StableStorage storage(path_);
    storage.append(payload_of('a', 4));
    storage.append(payload_of('b', 4));
  }
  {
    StableStorage storage(path_);
    EXPECT_EQ(storage.next_seq(), 2u);
    EXPECT_EQ(storage.append(payload_of('c', 4)), 2u);
  }
  ScanResult scan = StableStorage::scan(path_);
  ASSERT_EQ(scan.frames.size(), 3u);
  EXPECT_EQ(scan.frames[2].seq, 2u);
}

TEST_F(StorageTest, ResetTruncates) {
  StableStorage storage(path_);
  storage.append(payload_of('a', 8));
  storage.reset();
  storage.append(payload_of('b', 8));
  ScanResult scan = StableStorage::scan(path_);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0].payload, payload_of('b', 8));
  // Numbering continued, which keeps seq strictly increasing for consumers
  // that saw the earlier frames.
  EXPECT_EQ(scan.frames[0].seq, 1u);
}

TEST_F(StorageTest, DurableModeWrites) {
  StableStorage storage(path_, /*durable=*/true);
  storage.append(payload_of('d', 64));
  ScanResult scan = StableStorage::scan(path_);
  ASSERT_EQ(scan.frames.size(), 1u);
}

TEST_F(StorageTest, OversizedPayloadRejected) {
  StableStorage storage(path_);
  std::vector<std::uint8_t> big((1u << 30) + 1);
  EXPECT_THROW(storage.append(big), IoError);
}

// --- fault injection --------------------------------------------------------

class TornWriteTest : public ::testing::TestWithParam<std::size_t> {};

const std::vector<std::uint8_t>& three_frame_log() {
  static const std::vector<std::uint8_t> bytes = [] {
    std::string path = temp_path("ickpt_torn.log");
    std::remove(path.c_str());
    {
      StableStorage storage(path);
      storage.append(payload_of('a', 37));
      storage.append(payload_of('b', 53));
      storage.append(payload_of('c', 41));
    }
    auto data = read_file(path);
    std::remove(path.c_str());
    return data;
  }();
  return bytes;
}

TEST_P(TornWriteTest, TruncatedTailDropsOnlyLastFrame) {
  // Two good frames then a third torn at an arbitrary byte count.
  auto bytes = three_frame_log();
  const std::size_t full = bytes.size();
  const std::size_t frame3 = 20 + 41;  // header + payload
  const std::size_t keep = full - frame3 + GetParam() % frame3;
  bytes.resize(keep);

  ScanResult scan = StableStorage::scan_bytes(bytes);
  EXPECT_FALSE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 2u) << "torn at offset " << keep;
  EXPECT_EQ(scan.frames[0].payload, payload_of('a', 37));
  EXPECT_EQ(scan.frames[1].payload, payload_of('b', 53));
}

// Tear point 0 would be a clean two-frame file, so start at 1.
INSTANTIATE_TEST_SUITE_P(EveryTearPoint, TornWriteTest,
                         ::testing::Range<std::size_t>(1, 61, 1));

class CorruptByteTest : public ::testing::TestWithParam<std::size_t> {};

const std::vector<std::uint8_t>& two_frame_log() {
  static const std::vector<std::uint8_t> bytes = [] {
    std::string path = temp_path("ickpt_corrupt.log");
    std::remove(path.c_str());
    {
      StableStorage storage(path);
      storage.append(payload_of('a', 29));  // frame 0: bytes [0, 49)
      storage.append(payload_of('b', 29));  // frame 1
    }
    auto data = read_file(path);
    std::remove(path.c_str());
    return data;
  }();
  return bytes;
}

TEST_P(CorruptByteTest, FlippedByteStopsScanAtCorruptFrame) {
  auto bytes = two_frame_log();
  const std::size_t frame_size = 20 + 29;
  const std::size_t pos = frame_size + (GetParam() % frame_size);  // in frame 1
  bytes[pos] ^= 0xFF;

  ScanResult scan = StableStorage::scan_bytes(bytes);
  EXPECT_FALSE(scan.clean);
  ASSERT_LE(scan.frames.size(), 1u);
  if (!scan.frames.empty()) {
    EXPECT_EQ(scan.frames[0].payload, payload_of('a', 29));
  }
}

INSTANTIATE_TEST_SUITE_P(EveryBytePosition, CorruptByteTest,
                         ::testing::Range<std::size_t>(0, 49, 1));

TEST(StorageScan, NonIncreasingSequenceStopsScan) {
  std::string path = temp_path("ickpt_seq.log");
  std::remove(path.c_str());
  {
    StableStorage a(path);
    a.append(payload_of('a', 8));
  }
  // Append a second storage writing seq 0 again by recreating the file
  // contents manually: duplicate the first frame.
  auto bytes = read_file(path);
  auto doubled = bytes;
  doubled.insert(doubled.end(), bytes.begin(), bytes.end());
  ScanResult scan = StableStorage::scan_bytes(doubled);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.stop_reason, "non-increasing sequence number");
  std::remove(path.c_str());
}

TEST(StorageScan, GarbagePrefixYieldsNothing) {
  std::vector<std::uint8_t> garbage(64, 0x77);
  ScanResult scan = StableStorage::scan_bytes(garbage);
  EXPECT_FALSE(scan.clean);
  EXPECT_TRUE(scan.frames.empty());
  EXPECT_EQ(scan.stop_reason, "bad frame magic");
}

}  // namespace
}  // namespace ickpt::io
