// Edge-case coverage for core primitives: Heap ownership, stream-header
// validation, epoch resume across restart and compaction, and the
// write_child_id null convention.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/manager.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

TEST(Heap, MakeAdoptRetainClear) {
  core::Heap heap;
  Leaf* a = heap.make<Leaf>();
  heap.make<Leaf>();
  EXPECT_EQ(heap.size(), 2u);
  auto extra = std::make_unique<Leaf>();
  Leaf* raw = extra.get();
  EXPECT_EQ(heap.adopt(std::move(extra)), raw);
  EXPECT_EQ(heap.size(), 3u);
  std::size_t dropped = heap.retain_if([&](const core::Checkpointable& obj) {
    return obj.info().id() == a->info().id();
  });
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(heap.size(), 1u);
  heap.clear();
  EXPECT_EQ(heap.size(), 0u);
}

TEST(Heap, MoveTransfersOwnership) {
  core::Heap heap;
  heap.make<Leaf>();
  core::Heap moved(std::move(heap));
  EXPECT_EQ(moved.size(), 1u);
}

TEST(StreamHeader, PeekRejectsBadVersionAndMode) {
  auto make_payload = [](std::uint8_t version, std::uint8_t mode) {
    io::VectorSink sink;
    io::DataWriter w(sink);
    w.write_u8(core::kStreamMagic);
    w.write_u8(version);
    w.write_u8(mode);
    w.write_u64(0);
    w.write_varint(0);
    w.write_u8(core::kEndTag);
    w.flush();
    return sink.take();
  };
  EXPECT_NO_THROW(core::peek_header(make_payload(core::kFormatVersion, 0)));
  EXPECT_THROW(core::peek_header(make_payload(99, 0)), CorruptionError);
  EXPECT_THROW(core::peek_header(make_payload(core::kFormatVersion, 7)),
               CorruptionError);
}

TEST(StreamHeader, NullRootIdAllowedInHeader) {
  // A null root pointer records id 0 in the header; recovery's root_as
  // reports it as missing rather than crashing.
  io::VectorSink sink;
  io::DataWriter w(sink);
  std::vector<core::Checkpointable*> roots{nullptr};
  core::Checkpoint::run(w, 0, roots, {.mode = core::Mode::kFull});
  w.flush();
  auto header = core::peek_header(sink.bytes());
  ASSERT_EQ(header.roots.size(), 1u);
  EXPECT_EQ(header.roots[0], kNullObjectId);
}

TEST(ManagerEpochs, ResumeAfterRestartAndCompaction) {
  std::string path = ::testing::TempDir() + "/ickpt_epochs.log";
  std::remove(path.c_str());
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  core::TypeRegistry registry;
  register_test_types(registry);

  {
    core::CheckpointManager manager(path);
    leaf->set_i32(1);
    EXPECT_EQ(manager.take(*leaf).epoch, 0u);
    leaf->set_i32(2);
    EXPECT_EQ(manager.take(*leaf).epoch, 1u);
  }
  {
    // Restart: epochs continue from the log.
    core::CheckpointManager manager(path);
    EXPECT_EQ(manager.next_epoch(), 2u);
    leaf->set_i32(3);
    EXPECT_EQ(manager.take(*leaf).epoch, 2u);
  }

  core::CheckpointManager::compact(path, registry);
  {
    // After compaction the log holds one frame; a new manager keeps going
    // and recovery still yields the latest state.
    core::CheckpointManager manager(path);
    auto recovered = core::CheckpointManager::recover(path, registry);
    EXPECT_EQ(recovered.state.root_as<Leaf>()->i32, 3);
    Leaf* live = recovered.state.root_as<Leaf>();
    live->set_i32(4);
    manager.take(*live);
  }
  auto final_state = core::CheckpointManager::recover(path, registry);
  EXPECT_EQ(final_state.state.root_as<Leaf>()->i32, 4);
  std::remove(path.c_str());
}

TEST(CycleGuard, SharedSubobjectAcrossRootsRecordedOncePerSession) {
  // The visited set lives for the whole checkpoint session, not per root
  // (see CheckpointOptions::cycle_guard): a Leaf reachable from two roots is
  // recorded under the first root only, and recovery re-links both parents
  // to the single record.
  core::Heap heap;
  Inner* a = heap.make<Inner>();
  Inner* b = heap.make<Inner>();
  Leaf* shared = heap.make<Leaf>();
  a->set_left(shared);
  b->set_left(shared);
  shared->set_i32(41);
  std::vector<core::Checkpointable*> roots{a, b};

  io::VectorSink sink;
  io::DataWriter writer(sink);
  core::CheckpointOptions opts;
  opts.mode = core::Mode::kFull;
  opts.cycle_guard = true;
  auto stats = core::Checkpoint::run(writer, 0, roots, opts);
  writer.flush();
  EXPECT_EQ(stats.objects_visited, 3u);
  EXPECT_EQ(stats.objects_recorded, 3u);

  // Without the guard the shared Leaf is double-recorded.
  io::VectorSink unguarded_sink;
  io::DataWriter unguarded_writer(unguarded_sink);
  opts.cycle_guard = false;
  auto unguarded = core::Checkpoint::run(unguarded_writer, 1, roots, opts);
  EXPECT_EQ(unguarded.objects_recorded, 4u);

  // Recovery of the guarded stream rebuilds the sharing.
  core::TypeRegistry registry;
  register_test_types(registry);
  core::Recovery recovery(registry);
  io::DataReader reader(sink.bytes());
  recovery.apply(reader);
  auto state = recovery.finish();
  EXPECT_EQ(state.by_id.size(), 3u);
  auto* ra = dynamic_cast<Inner*>(state.by_id.at(a->info().id()));
  auto* rb = dynamic_cast<Inner*>(state.by_id.at(b->info().id()));
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  ASSERT_NE(ra->left, nullptr);
  EXPECT_EQ(ra->left, rb->left);
  EXPECT_EQ(ra->left->i32, 41);
}

TEST(WriteChildId, NullChildEncodesZero) {
  io::VectorSink sink;
  io::DataWriter w(sink);
  core::write_child_id(w, nullptr);
  w.flush();
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.bytes()[0], 0);
}

}  // namespace
}  // namespace ickpt::testing
