// FlightRecorder: ring semantics, torn-slot safety under concurrent
// writers, the serialized image, and the acceptance property — the recorder
// reconstructs the full event timeline of an induced rotation + rebase
// episode driven through the healing manager, and dumps itself to disk when
// the ladder reaches terminal kFailed.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/manager.hpp"
#include "io/fault.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"
#include "obs/flightrec.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

using core::CheckpointManager;
using core::Health;
using core::ManagerOptions;
using io::FaultKind;
using io::ScriptedFaultPolicy;
using io::StableStorage;
using obs::FlightEvent;
using obs::FlightEventType;
using obs::FlightRecorder;

TEST(FlightRecorderTest, RetainsTheLastCapacityEvents) {
  FlightRecorder rec(4);
  EXPECT_EQ(rec.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i)
    rec.record(FlightEventType::kNote, /*epoch=*/i, /*v0=*/i * 100);
  EXPECT_EQ(rec.total_recorded(), 10u);
  std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive the wrap.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].epoch, 6 + i);
    EXPECT_EQ(events[i].v0, (6 + i) * 100);
  }
}

TEST(FlightRecorderTest, CapacityRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 1u);
  EXPECT_EQ(FlightRecorder(3).capacity(), 4u);
  EXPECT_EQ(FlightRecorder(200).capacity(), 256u);
}

TEST(FlightRecorderTest, DetailIsTruncatedNotOverrun) {
  FlightRecorder rec(4);
  const std::string longdetail(300, 'x');
  rec.record(FlightEventType::kNote, 0, 0, 0, longdetail);
  std::vector<FlightEvent> events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  const std::size_t len = std::string(events[0].detail).size();
  EXPECT_LT(len, FlightEvent::kDetailCap);
  EXPECT_EQ(std::string(events[0].detail), std::string(len, 'x'));
}

TEST(FlightRecorderTest, ConcurrentWritersNeverYieldTornEvents) {
  // Writers record events whose fields are all derived from one value; a
  // torn slot returned to the reader would mix derivations. Readers snapshot
  // concurrently the whole time.
  FlightRecorder rec(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightEvent& e : rec.events()) {
        if (e.v1 != e.v0 * 2 || e.epoch != e.v0 % 97)
          torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w)
      writers.emplace_back([&rec, w] {
        for (std::uint64_t i = 0; i < kPerWriter; ++i) {
          const std::uint64_t v = static_cast<std::uint64_t>(w) * kPerWriter + i;
          rec.record(FlightEventType::kNote, v % 97, v, v * 2);
        }
      });
    for (std::thread& t : writers) t.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(rec.total_recorded(), kWriters * kPerWriter);
  // The final snapshot is quiescent: a full ring of coherent events.
  std::vector<FlightEvent> events = rec.events();
  EXPECT_EQ(events.size(), rec.capacity());
  for (const FlightEvent& e : events) {
    EXPECT_EQ(e.v1, e.v0 * 2);
    EXPECT_EQ(e.epoch, e.v0 % 97);
  }
}

TEST(FlightRecorderTest, SerializeRoundTripsThroughDeserialize) {
  FlightRecorder rec(8);
  rec.record(FlightEventType::kEpochBegin, 7, 3, 0, "begin", /*aux=*/1);
  rec.record(FlightEventType::kRotation, 7, 2, 0,
             "/tmp/some.log.quarantine.2");
  rec.record(FlightEventType::kEpochEnd, 7, 12345, 678, nullptr, 1);

  std::vector<std::uint8_t> image = rec.serialize();
  std::uint64_t total = 0;
  std::vector<FlightEvent> events =
      FlightRecorder::deserialize(image.data(), image.size(), &total);
  EXPECT_EQ(total, 3u);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, FlightEventType::kEpochBegin);
  EXPECT_EQ(events[0].epoch, 7u);
  EXPECT_EQ(events[0].aux, 1);
  EXPECT_EQ(std::string(events[0].detail), "begin");
  EXPECT_EQ(events[1].type, FlightEventType::kRotation);
  EXPECT_EQ(std::string(events[1].detail), "/tmp/some.log.quarantine.2");
  EXPECT_EQ(events[2].v0, 12345u);
  EXPECT_EQ(events[2].v1, 678u);

  // Damage is detected, not misparsed: truncation and a bad magic both
  // throw CorruptionError.
  EXPECT_THROW(
      FlightRecorder::deserialize(image.data(), image.size() - 5),
      CorruptionError);
  std::vector<std::uint8_t> bad = image;
  bad[0] ^= 0xFF;
  EXPECT_THROW(FlightRecorder::deserialize(bad.data(), bad.size()),
               CorruptionError);
}

TEST(FlightRecorderTest, DumpAndLoadFileRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/ickpt_flightrec_roundtrip.bin";
  std::remove(path.c_str());
  FlightRecorder rec(8);
  rec.record(FlightEventType::kFault, 3, 100, 4, "torn_write");
  rec.record(FlightEventType::kRetry, 3, 1);
  rec.dump_to_file(path);

  std::uint64_t total = 0;
  std::vector<FlightEvent> events = FlightRecorder::load_file(path, &total);
  EXPECT_EQ(total, 2u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, FlightEventType::kFault);
  EXPECT_EQ(std::string(events[0].detail), "torn_write");
  EXPECT_EQ(events[1].type, FlightEventType::kRetry);

  const std::string timeline = FlightRecorder::render_timeline(events, total);
  EXPECT_NE(timeline.find("fault"), std::string::npos);
  EXPECT_NE(timeline.find("retry"), std::string::npos);
  EXPECT_NE(timeline.find("torn_write"), std::string::npos);
  std::remove(path.c_str());
}

// --- the acceptance property: timeline of a healing episode ---------------

class FlightRecorderManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ickpt_flightrec_mgr_test.log";
    clean_chain();
    register_test_types(registry_);
  }
  void TearDown() override { clean_chain(); }

  void clean_chain() {
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
    std::remove(FlightRecorder::default_path(path_).c_str());
    for (unsigned n = 1; n <= 8; ++n) {
      const std::string q = StableStorage::quarantine_path(path_, n);
      std::remove(q.c_str());
      std::remove((q + ".bak").c_str());
    }
  }

  static ManagerOptions heal_opts(io::FaultPolicy* fault) {
    ManagerOptions opts;
    opts.full_interval = 3;
    opts.fault_policy = fault;
    opts.retry.max_attempts = 2;
    opts.retry.initial_backoff = std::chrono::microseconds{0};
    opts.heal.enabled = true;
    opts.heal.reheal_after = 2;
    opts.heal.append_retries = 1;
    opts.heal.rotate_attempts = 3;
    return opts;
  }

  std::uint64_t calibrate(int takes) {
    clean_chain();
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    CheckpointManager manager(path_, heal_opts(nullptr));
    for (int i = 0; i < takes; ++i) {
      leaf->set_i32(10 + i);
      manager.take(*leaf);
    }
    const std::uint64_t size = io::read_file(path_).size();
    clean_chain();
    return size;
  }

  static std::size_t count(const std::vector<FlightEvent>& events,
                           FlightEventType type) {
    std::size_t n = 0;
    for (const FlightEvent& e : events)
      if (e.type == type) ++n;
    return n;
  }

  static std::size_t first_index(const std::vector<FlightEvent>& events,
                                 FlightEventType type) {
    for (std::size_t i = 0; i < events.size(); ++i)
      if (events[i].type == type) return i;
    return events.size();
  }

  std::string path_;
  core::TypeRegistry registry_;
};

TEST_F(FlightRecorderManagerTest, ReconstructsARotationRebaseEpisode) {
  const std::uint64_t size2 = calibrate(2);
  // Same schedule as the health tests: epoch 2's append hits persistent
  // ENOSPC, in-place retries burn out, the ladder rotates + rebases, and
  // two clean epochs reheal.
  ScriptedFaultPolicy policy(FaultKind::kTransient, size2 + 10, ENOSPC, 6);
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  CheckpointManager manager(path_, heal_opts(&policy));
  for (int i = 0; i < 5; ++i) {
    leaf->set_i32(10 + i);
    manager.take(*leaf);
  }
  ASSERT_EQ(manager.health(), Health::kHealthy);

  const std::vector<FlightEvent> events = manager.flight_recorder().events();
  // Nothing wrapped: the whole episode is on the timeline.
  EXPECT_EQ(manager.flight_recorder().total_recorded(), events.size());

  // Every epoch bracketed, in order, with matching epoch numbers.
  EXPECT_EQ(count(events, FlightEventType::kEpochBegin), 5u);
  EXPECT_EQ(count(events, FlightEventType::kEpochEnd), 5u);
  std::uint64_t next_epoch = 0;
  for (const FlightEvent& e : events)
    if (e.type == FlightEventType::kEpochBegin) {
      EXPECT_EQ(e.epoch, next_epoch);
      ++next_epoch;
    }

  // The episode itself: faults recorded by the sink, the in-place retry,
  // exactly one rotation and one rebase, the reheal, and the health walk
  // healthy -> degraded (-> rebasing -> degraded) -> healthy.
  EXPECT_GE(count(events, FlightEventType::kFault), 1u);
  EXPECT_GE(count(events, FlightEventType::kRetry), 1u);
  EXPECT_EQ(count(events, FlightEventType::kRotation), 1u);
  EXPECT_EQ(count(events, FlightEventType::kRebase), 1u);
  EXPECT_EQ(count(events, FlightEventType::kReheal), 1u);
  EXPECT_GE(count(events, FlightEventType::kHealthTransition), 3u);

  const std::size_t i_retry = first_index(events, FlightEventType::kRetry);
  const std::size_t i_rot = first_index(events, FlightEventType::kRotation);
  const std::size_t i_reb = first_index(events, FlightEventType::kRebase);
  const std::size_t i_heal = first_index(events, FlightEventType::kReheal);
  EXPECT_LT(i_retry, i_rot);
  EXPECT_LT(i_rot, i_reb);
  EXPECT_LT(i_reb, i_heal);

  // The rotation and rebase name the quarantined generation.
  EXPECT_EQ(std::string(events[i_rot].detail),
            StableStorage::quarantine_path(path_, 1));
  // Timestamps are monotone non-decreasing (events() is oldest-first).
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns) << "event " << i;

  // And the on-demand dump round-trips the same timeline through disk.
  manager.dump_flight_recorder();
  std::uint64_t total = 0;
  std::vector<FlightEvent> loaded =
      FlightRecorder::load_file(manager.flightrec_path(), &total);
  ASSERT_GE(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i].type, events[i].type) << "event " << i;
    EXPECT_EQ(loaded[i].epoch, events[i].epoch) << "event " << i;
  }
}

TEST_F(FlightRecorderManagerTest, TerminalFailureDumpsTheRecorder) {
  // A bottomless ENOSPC from byte 0 exhausts in-place retries and all three
  // rotation attempts: the manager lands in kFailed — and before throwing
  // it serializes the flight recorder next to the log, so the post-mortem
  // survives the process.
  ScriptedFaultPolicy policy(FaultKind::kTransient, 0, ENOSPC, 100000);
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  CheckpointManager manager(path_, heal_opts(&policy));
  leaf->set_i32(10);
  EXPECT_THROW(manager.take(*leaf), IoError);
  ASSERT_EQ(manager.health(), Health::kFailed);

  const std::string frpath = manager.flightrec_path();
  ASSERT_TRUE(io::file_exists(frpath)) << frpath;
  std::vector<FlightEvent> events = FlightRecorder::load_file(frpath);
  EXPECT_GE(count(events, FlightEventType::kRotation), 3u);
  EXPECT_EQ(count(events, FlightEventType::kDump), 1u);
  // The terminal transition (-> kFailed) is on the dumped timeline.
  bool failed_seen = false;
  for (const FlightEvent& e : events)
    if (e.type == FlightEventType::kHealthTransition &&
        e.v1 == static_cast<std::uint64_t>(Health::kFailed))
      failed_seen = true;
  EXPECT_TRUE(failed_seen);
}

}  // namespace
}  // namespace ickpt::testing
