// Tests of the compile-time specializer: byte-equivalence with the generic
// driver on the test class family (including string fields and recursive
// specs), pattern-driven pruning, and structural assertions.
#include <gtest/gtest.h>

#include "spec/static_ckpt.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

namespace st = spec::st;
using spec::ModStatus;

// --- static specs for the test classes -----------------------------------------

struct LeafSpec {
  using object_type = Leaf;
  static constexpr TypeId type_id = Leaf::kTypeId;
  using fields = st::Fields<st::I32<&Leaf::i32>, st::I64<&Leaf::i64>,
                            st::F64<&Leaf::f64>, st::Bool<&Leaf::flag>>;
};

struct NamedSpec {
  using object_type = Named;
  static constexpr TypeId type_id = Named::kTypeId;
  using fields = st::Fields<st::Str<&Named::name>>;
};

struct InnerSpec {
  using object_type = Inner;
  static constexpr TypeId type_id = Inner::kTypeId;
  using fields = st::Fields<st::I32<&Inner::tag>,
                            st::Child<&Inner::left, LeafSpec>,
                            st::Child<&Inner::right, InnerSpec>>;  // recursive
};

/// Pattern for an Inner chain of the given depth (explicit, as recursive
/// specs require): every node and leaf tested.
template <int Depth>
struct ChainPattern {
  using type = st::Node<ModStatus::kMaybeModified, st::Maybe,
                        typename ChainPattern<Depth - 1>::type>;
};
template <>
struct ChainPattern<0> {
  using type = st::Absent;
};

struct Graph {
  core::Heap heap;
  std::vector<Inner*> inners;
  std::vector<core::Checkpointable*> bases;
  std::vector<Inner*> roots;

  /// A right-chain of `depth` Inners, each with a Leaf on the left.
  explicit Graph(int depth) {
    Inner* prev = nullptr;
    for (int i = 0; i < depth; ++i) {
      Inner* inner = heap.make<Inner>();
      inner->set_tag(i);
      Leaf* leaf = heap.make<Leaf>();
      leaf->set_i32(100 + i);
      leaf->set_f64(i / 2.0);
      inner->set_left(leaf);
      if (prev != nullptr) prev->set_right(inner);
      inners.push_back(inner);
      prev = inner;
    }
    roots.push_back(inners.front());
    bases.push_back(inners.front());
  }

  void reset_flags() {
    for (Inner* inner : inners) {
      inner->info().reset_modified();
      if (inner->left != nullptr) inner->left->info().reset_modified();
    }
  }
};

template <class Pattern>
std::vector<std::uint8_t> static_bytes(Graph& g, Epoch epoch) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    st::run_static_checkpoint<InnerSpec, Pattern>(writer, epoch, g.roots);
    writer.flush();
  }
  return sink.take();
}

TEST(StaticCkpt, MatchesGenericOnFreshGraph) {
  Graph g(3);
  auto generic = checkpoint_bytes(g.bases, 4, core::Mode::kIncremental);
  // Rebuild identical dirty state: fresh objects are all dirty again after
  // the generic pass reset them.
  for (Inner* inner : g.inners) {
    inner->info().set_modified();
    inner->left->info().set_modified();
  }
  auto specialized = static_bytes<ChainPattern<3>::type>(g, 4);
  EXPECT_EQ(specialized, generic);
}

TEST(StaticCkpt, MatchesGenericOnPartialModification) {
  Graph g(4);
  g.reset_flags();
  g.inners[2]->left->set_i32(-5);
  g.inners[3]->set_tag(99);
  auto generic = checkpoint_bytes(g.bases, 9, core::Mode::kIncremental);
  g.reset_flags();
  g.inners[2]->left->set_i32(-5);
  g.inners[3]->set_tag(99);
  auto specialized = static_bytes<ChainPattern<4>::type>(g, 9);
  EXPECT_EQ(specialized, generic);
}

TEST(StaticCkpt, SkipPrunesSubtrees) {
  // Pattern: test the root, skip the leaf, skip the whole right chain.
  using Pruned = st::Node<ModStatus::kMaybeModified, st::Skip, st::Skip>;
  Graph g(3);
  g.reset_flags();
  g.inners[0]->set_tag(7);
  g.inners[1]->set_tag(8);  // dirty, but the pattern skips it — by design
  auto bytes = static_bytes<Pruned>(g, 0);

  // Only the root was recorded: flags prove it.
  EXPECT_FALSE(g.inners[0]->info().modified());
  EXPECT_TRUE(g.inners[1]->info().modified());
  EXPECT_GT(bytes.size(), 0u);
}

TEST(StaticCkpt, UnmodifiedSelfSkipsRecordKeepsTraversal) {
  using P = st::Node<ModStatus::kUnmodified, st::Maybe,
                     st::Node<ModStatus::kMaybeModified, st::Maybe,
                              st::Absent>>;
  Graph g(2);
  g.reset_flags();
  g.inners[1]->left->set_i32(1234);
  auto generic = checkpoint_bytes(g.bases, 1, core::Mode::kIncremental);
  g.reset_flags();
  g.inners[1]->left->set_i32(1234);
  auto specialized = static_bytes<P>(g, 1);
  EXPECT_EQ(specialized, generic);
}

TEST(StaticCkpt, AbsentAssertionFires) {
  Graph g(4);  // deeper than the declared depth
  g.reset_flags();
  io::VectorSink sink;
  io::DataWriter writer(sink);
  EXPECT_THROW(
      (st::run_static_checkpoint<InnerSpec, ChainPattern<2>::type>(writer, 0,
                                                                   g.roots)),
      SpecError);
}

TEST(StaticCkpt, StringFieldsRoundTripThroughRecovery) {
  core::Heap heap;
  Named* named = heap.make<Named>();
  named->set_name("static residuals handle strings");
  std::vector<Named*> roots{named};
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    st::run_static_checkpoint<NamedSpec, st::Maybe>(writer, 0, roots,
                                                    core::Mode::kFull);
    writer.flush();
  }
  core::TypeRegistry registry;
  register_test_types(registry);
  core::Recovery recovery(registry);
  io::DataReader reader(sink.bytes());
  recovery.apply(reader);
  auto state = recovery.finish();
  EXPECT_EQ(state.root_as<Named>()->name,
            "static residuals handle strings");
}

TEST(StaticCkpt, AlwaysModifiedRecordsWithoutTesting) {
  using P = st::Node<ModStatus::kModified, st::Skip, st::Skip>;
  Graph g(1);
  g.reset_flags();  // root is clean — kModified records it anyway
  auto bytes = static_bytes<P>(g, 0);
  core::TypeRegistry registry;
  register_test_types(registry);
  core::Recovery recovery(registry);
  io::DataReader reader(bytes);
  core::ApplyStats stats;
  recovery.apply(reader, &stats);
  EXPECT_EQ(stats.records, 1u);
}

}  // namespace
}  // namespace ickpt::testing
