// Race smoke for sharded capture, meant to run under ThreadSanitizer (the
// `parallel` ctest label is included in the obs-tsan preset).
//
// Two scenarios TSan must certify:
//  - worker/worker: repeated multi-threaded captures with the cycle guard's
//    striped claim table engaged (cross-shard sharing forces real claim
//    contention) — workers race on shard cursors, steal from each other,
//    and contend on claim stripes.
//  - capture/mutator: a parallel capture over the first half of the root
//    set while mutator threads flip modified flags on the *disjoint*
//    second half. Disjointness is the documented contract (flags are plain
//    bools; capturing an object concurrently with its mutation is a race
//    by design, exactly as in the serial driver) — this pins down that the
//    capture machinery itself introduces no sharing beyond it.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/parallel_checkpoint.hpp"
#include "core/recovery.hpp"
#include "core/type_registry.hpp"
#include "io/byte_sink.hpp"
#include "synth/structures.hpp"
#include "synth/workload.hpp"

namespace ickpt::testing {
namespace {

using core::ParallelCheckpoint;
using core::ParallelOptions;

TEST(ParallelRace, WorkersContendOnClaimTable) {
  synth::SynthConfig config;
  config.num_structures = 200;
  config.list_length = 4;
  config.values_per_elem = 3;
  core::Heap heap;
  synth::SynthWorkload workload(heap, config);
  auto roots = workload.roots();
  // Dense cross-root sharing: each compound also points at its far
  // neighbor's list, so nearly every shard boundary has contended claims.
  const std::size_t n = roots.size();
  for (std::size_t i = 0; i < n; ++i)
    roots[i]->set_list(4, roots[(i + n / 2) % n]->list(0));
  // Each compound's original list 4 is now unreachable: the live graph is
  // n compounds plus 4 owned lists each, with list(0) doubly shared.
  const std::size_t reachable =
      n * (1 + 4 * static_cast<std::size_t>(config.list_length));

  ParallelOptions popts;
  popts.threads = 4;
  popts.cycle_guard = true;
  popts.mode = core::Mode::kFull;
  std::vector<std::uint8_t> first;
  for (int round = 0; round < 8; ++round) {
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      auto stats =
          ParallelCheckpoint::run(writer, round, workload.root_bases(), popts);
      writer.flush();
      // Every reachable object is claimed exactly once despite contention.
      EXPECT_EQ(stats.totals.objects_visited, reachable);
    }
    // The payload size is claim-placement dependent only in record *order*,
    // never in record count, so the byte count is stable across rounds.
    if (round == 0)
      first = sink.take();
    else
      EXPECT_EQ(sink.size(), first.size()) << "round " << round;
  }
}

TEST(ParallelRace, CaptureRacesMutatorsOnDisjointShards) {
  synth::SynthConfig config;
  config.num_structures = 240;
  config.list_length = 3;
  config.values_per_elem = 4;
  core::Heap heap;
  synth::SynthWorkload workload(heap, config);
  auto roots = workload.roots();
  const std::size_t half = roots.size() / 2;
  std::span<core::Checkpointable* const> captured =
      workload.root_bases().subspan(0, half);

  std::atomic<bool> stop{false};
  // Mutators flip flags and values on the second half only — objects the
  // capture never touches. Each mutator owns a disjoint slice of that half:
  // the contract under test is capture-vs-mutator disjointness, so the
  // mutators must not race *each other* on the plain (non-atomic) fields.
  std::vector<std::thread> mutators;
  const std::size_t slice = (roots.size() - half) / 2;
  for (int m = 0; m < 2; ++m) {
    mutators.emplace_back([&, m] {
      const std::size_t begin = half + static_cast<std::size_t>(m) * slice;
      std::uint64_t x = 0x9E3779B97F4A7C15ull * (m + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        synth::Compound* c = roots[begin + (x >> 33) % slice];
        synth::ListElem* e = c->list(static_cast<int>(x % 5));
        if (e != nullptr)
          e->set_value(0, static_cast<std::int32_t>(x));
        else
          c->set_list(static_cast<int>(x % 5), nullptr);
      }
    });
  }

  ParallelOptions popts;
  popts.threads = 4;
  popts.mode = core::Mode::kFull;
  std::vector<std::uint8_t> payload;
  for (int round = 0; round < 6; ++round) {
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      ParallelCheckpoint::run(writer, round, captured, popts);
      writer.flush();
    }
    payload = sink.take();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : mutators) t.join();

  // The last capture must still be a well-formed stream of the first half.
  core::TypeRegistry registry;
  synth::register_types(registry);
  core::Recovery recovery(registry);
  io::DataReader reader(payload);
  recovery.apply(reader);
  auto state = recovery.finish();
  ASSERT_EQ(state.roots.size(), half);
  for (std::size_t i = 0; i < half; ++i)
    EXPECT_EQ(state.roots[i], roots[i]->info().id());
}

}  // namespace
}  // namespace ickpt::testing
