// Helpers shared by the spec/synth test files: run each of the three
// execution engines over a synthetic workload and capture the checkpoint
// bytes, replaying flag snapshots so every engine sees identical state.
#pragma once

#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "synth/residual_dispatch.hpp"
#include "synth/shapes.hpp"
#include "synth/workload.hpp"

namespace ickpt::testing {

inline std::vector<std::uint8_t> generic_bytes(synth::SynthWorkload& workload,
                                               Epoch epoch) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = core::Mode::kIncremental;
    core::Checkpoint::run(writer, epoch, workload.root_bases(), opts);
    writer.flush();
  }
  return sink.take();
}

inline std::vector<std::uint8_t> plan_bytes(synth::SynthWorkload& workload,
                                            const spec::PlanExecutor& exec,
                                            Epoch epoch) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    spec::run_plan_checkpoint(writer, epoch, workload.root_ptrs(), exec);
    writer.flush();
  }
  return sink.take();
}

inline std::vector<std::uint8_t> residual_bytes(
    synth::SynthWorkload& workload, synth::residual::ResidualFn fn,
    Epoch epoch) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    synth::residual::run_residual_checkpoint(
        writer, epoch, workload.roots(),
        [fn](synth::Compound& c, io::DataWriter& d) { fn(c, d); });
    writer.flush();
  }
  return sink.take();
}

/// Compile a plan for the workload's configuration at the given level.
inline spec::Plan compile_synth_plan(const synth::SynthShapes& shapes,
                                     const synth::SynthConfig& config,
                                     synth::SpecLevel level,
                                     spec::CompileOptions opts = {}) {
  spec::PatternNode pattern = synth::make_synth_pattern(
      level, config.list_length, config.values_per_elem,
      config.modified_lists);
  return spec::PlanCompiler(opts).compile(*shapes.compound, pattern);
}

}  // namespace ickpt::testing
