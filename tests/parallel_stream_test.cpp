// Streaming-merge behavior tests for core::ParallelCheckpoint: forced
// out-of-order completion (the frontier stalls while every later item
// publishes), header deferral on worker throw (zero bytes in the caller's
// sink, strictly cleaner than the serial torn prefix), the all-null-roots
// imbalance-histogram regression, and intra-root splitting byte/value
// identity. Companion to tests/parallel_equiv_test.cpp, which covers the
// randomized equivalence sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/parallel_checkpoint.hpp"
#include "io/byte_sink.hpp"
#include "obs/metrics.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

using core::ParallelCheckpoint;
using core::ParallelOptions;
using core::ParallelStats;

/// Leaf whose record() blocks on an external gate — placed at root 0 it
/// pins the merge frontier while every later item publishes, forcing the
/// maximum possible out-of-order backlog. A null gate records immediately
/// (the serial-reference configuration). The 20s failsafe turns a scheduling
/// bug into failed assertions instead of a hung test.
class StallLeaf final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 941;

  explicit StallLeaf(std::atomic<bool>* gate) : gate_(gate) {}

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    if (gate_ != nullptr) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (!gate_->load(std::memory_order_acquire)) {
        if (std::chrono::steady_clock::now() > deadline) break;
        std::this_thread::yield();
      }
    }
    d.write_i32(payload);
  }

  void fold(core::Checkpoint&) override {}
  void restore_record(io::DataReader& d, core::Recovery&) override {
    payload = d.read_i32();
  }

  std::int32_t payload = 7;

 private:
  std::atomic<bool>* gate_;
};

/// Leaf whose record() throws: lands in work item 0, so the merge frontier
/// never advances and the stream header is never emitted.
class ThrowLeaf final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 942;
  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }
  void record(io::DataWriter&) const override {
    throw std::runtime_error("record failed mid-capture");
  }
  void fold(core::Checkpoint&) override {}
  void restore_record(io::DataReader&, core::Recovery&) override {}
};

/// Compound root with a flat fan-out of leaves — the shape intra-root
/// splitting exists for: few roots, each hiding a large fold.
class Wide final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 943;

  std::int32_t tag = 0;
  std::vector<Leaf*> kids;

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    d.write_i32(tag);
    d.write_varint(kids.size());
    for (const Leaf* k : kids) core::write_child_id(d, k);
  }

  void fold(core::Checkpoint& c) override {
    for (Leaf* k : kids)
      if (k != nullptr) c.checkpoint(*k);
  }

  void restore_record(io::DataReader& d, core::Recovery&) override {
    tag = d.read_i32();
    const std::uint64_t n = d.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) (void)d.read_varint();
  }
};

std::vector<std::uint8_t> parallel_bytes(
    std::span<core::Checkpointable* const> roots, Epoch epoch,
    const ParallelOptions& popts, ParallelStats* out = nullptr) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    ParallelStats stats = ParallelCheckpoint::run(writer, epoch, roots, popts);
    writer.flush();
    if (out != nullptr) *out = stats;
  }
  return sink.take();
}

/// Frontier stalled at item 0 while every other item publishes: the merged
/// stream must still be byte-identical to serial, nothing may take the
/// direct path (the header arrives after all recording is done), and the
/// buffered high-water must equal exactly the out-of-order volume — the sum
/// of every non-frontier item's segment.
TEST(ParallelStream, OutOfOrderCompletionStreamsInOrderAndBoundsBacklog) {
  constexpr std::size_t kRoots = 64;
  core::Heap heap;
  std::atomic<bool> gate{true};
  std::vector<core::Checkpointable*> roots;
  roots.push_back(heap.make<StallLeaf>(&gate));
  for (std::size_t i = 1; i < kRoots; ++i) {
    Leaf* leaf = heap.make<Leaf>();
    leaf->set_i32(static_cast<std::int32_t>(i));
    leaf->set_i64(static_cast<std::int64_t>(i) * 1000003);
    roots.push_back(leaf);
  }

  const auto serial = checkpoint_bytes(roots, 5, core::Mode::kFull);
  ASSERT_FALSE(serial.empty());

  for (unsigned threads : {2u, 4u, 8u}) {
    // kRoots >= threads*4 for every tested count, so range mode deals
    // exactly threads*4 items and the staller owns item 0 alone.
    const std::size_t nitems = static_cast<std::size_t>(threads) * 4;
    ASSERT_GE(kRoots, nitems);
    gate.store(false, std::memory_order_release);
    std::atomic<std::size_t> published{0};

    ParallelOptions popts;
    popts.mode = core::Mode::kFull;
    popts.threads = threads;
    // Explicit large budget: the auto policy on an oversubscribed box
    // forbids buffering ahead of the frontier, which is exactly what this
    // test must force.
    popts.merge_backlog_bytes = std::size_t{1} << 30;
    popts.test_item_hook = [&](std::size_t item) {
      if (item != 0 &&
          published.fetch_add(1, std::memory_order_acq_rel) + 1 == nitems - 1)
        gate.store(true, std::memory_order_release);
    };

    ParallelStats stats;
    const auto parallel = parallel_bytes(roots, 5, popts, &stats);
    const std::string context = "threads " + std::to_string(threads);

    EXPECT_EQ(parallel, serial) << context;
    ASSERT_EQ(stats.shards, nitems) << context;
    EXPECT_EQ(stats.direct_items, 0u) << context;
    std::size_t out_of_order = 0;
    for (std::size_t i = 1; i < stats.shard_stats.size(); ++i) {
      EXPECT_FALSE(stats.shard_stats[i].streamed_direct) << context;
      out_of_order += stats.shard_stats[i].bytes;
    }
    EXPECT_GT(out_of_order, 0u) << context;
    EXPECT_EQ(stats.merge_buffered_peak_bytes, out_of_order) << context;
  }
}

/// A worker throw before anything streamed must leave the caller's sink
/// completely untouched — the header is deferred behind the first merge
/// flush. The serial driver, by contrast, has already written its header
/// (and possibly a record prefix) when the same throw lands.
TEST(ParallelStream, WorkerThrowBeforeStreamingLeavesZeroBytes) {
  constexpr std::size_t kRoots = 64;
  core::Heap heap;
  std::vector<core::Checkpointable*> roots;
  roots.push_back(heap.make<ThrowLeaf>());
  for (std::size_t i = 1; i < kRoots; ++i) roots.push_back(heap.make<Leaf>());

  // Serial contrast: header + prefix are already torn into the sink.
  {
    io::VectorSink sink;
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = core::Mode::kFull;
    EXPECT_THROW(core::Checkpoint::run(writer, 9, roots, opts),
                 std::runtime_error);
    writer.flush();
    EXPECT_GT(sink.size(), 0u);
  }

  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    ParallelOptions popts;
    popts.mode = core::Mode::kFull;
    popts.threads = 4;
    EXPECT_THROW(ParallelCheckpoint::run(writer, 9, roots, popts),
                 std::runtime_error);
    writer.flush();
  }
  EXPECT_EQ(sink.bytes().size(), 0u);
}

/// All-null root sets visit nothing, so max/mean worker load is undefined:
/// the imbalance histogram must record no sample (the NaN-observation
/// regression), while a real capture still feeds it.
TEST(ParallelStream, AllNullRootsSkipImbalanceObservation) {
  obs::Registry registry;
  obs::Registry::install(&registry);

  // 64 null roots with threads=4 is range mode: the pool genuinely runs
  // (fewer roots would collapse to zero items and delegate to serial,
  // bypassing the observation site entirely).
  std::vector<core::Checkpointable*> nulls(64, nullptr);
  ParallelOptions popts;
  popts.mode = core::Mode::kFull;
  popts.threads = 4;
  ParallelStats stats;
  const auto parallel = parallel_bytes(nulls, 3, popts, &stats);
  EXPECT_GT(stats.shards, 1u);
  EXPECT_EQ(stats.totals.objects_visited, 0u);
  // The stream itself is still well-formed and serial-identical.
  EXPECT_EQ(parallel, checkpoint_bytes(nulls, 3, core::Mode::kFull));

  obs::Snapshot snap = registry.snapshot();
  const obs::MetricSnapshot* m = snap.find("ickpt_capture_imbalance_ratio");
  if (m != nullptr) {
    EXPECT_EQ(m->count, 0u);
  }

  // A normal capture on the same registry does observe exactly one sample.
  core::Heap heap;
  std::vector<core::Checkpointable*> roots;
  for (std::size_t i = 0; i < 64; ++i) roots.push_back(heap.make<Leaf>());
  (void)parallel_bytes(roots, 4, popts);
  snap = registry.snapshot();
  m = snap.find("ickpt_capture_imbalance_ratio");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 1u);

  obs::Registry::install(nullptr);
}

/// Few roots, huge folds: split mode must break each root into more items
/// than there are roots, and guard-off concatenation must stay
/// byte-identical to serial at every thread count.
TEST(ParallelStream, IntraRootSplittingIsByteIdenticalWithoutSharing) {
  core::Heap heap;
  std::vector<core::Checkpointable*> roots;
  for (int r = 0; r < 3; ++r) {
    Wide* w = heap.make<Wide>();
    w->tag = r;
    for (int k = 0; k < 100; ++k) {
      Leaf* leaf = heap.make<Leaf>();
      leaf->set_i32(r * 1000 + k);
      w->kids.push_back(leaf);
    }
    roots.push_back(w);
  }

  const auto serial = checkpoint_bytes(roots, 11, core::Mode::kFull);

  for (unsigned threads = 2; threads <= 8; ++threads) {
    ParallelOptions popts;
    popts.mode = core::Mode::kFull;
    popts.threads = threads;
    ParallelStats stats;
    const auto parallel = parallel_bytes(roots, 11, popts, &stats);
    const std::string context = "threads " + std::to_string(threads);
    EXPECT_EQ(parallel, serial) << context;
    // The whole point: one giant root no longer pins the item count to the
    // root count.
    EXPECT_GT(stats.shards, roots.size()) << context;
    EXPECT_EQ(stats.totals.objects_visited, 303u) << context;
  }
}

/// Split mode under cycle_guard with children shared across roots: record
/// placement may move between segments, but the claim table keeps every
/// shared leaf recorded exactly once — same stats totals and same total
/// byte count as the serial guarded walk.
TEST(ParallelStream, IntraRootSplittingResolvesSharingThroughClaims) {
  core::Heap heap;
  std::vector<Leaf*> shared;
  for (int k = 0; k < 50; ++k) shared.push_back(heap.make<Leaf>());
  std::vector<core::Checkpointable*> roots;
  for (int r = 0; r < 3; ++r) {
    Wide* w = heap.make<Wide>();
    w->tag = 100 + r;
    for (int k = 0; k < 60; ++k) w->kids.push_back(heap.make<Leaf>());
    // Every root also folds the full shared set, so split items from
    // different roots race to claim the same leaves.
    for (Leaf* s : shared) w->kids.push_back(s);
    roots.push_back(w);
  }

  core::CheckpointStats serial_stats;
  std::vector<std::uint8_t> serial;
  {
    io::VectorSink sink;
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = core::Mode::kFull;
    opts.cycle_guard = true;
    serial_stats = core::Checkpoint::run(writer, 13, roots, opts);
    writer.flush();
    serial = sink.take();
  }

  for (unsigned threads = 2; threads <= 8; ++threads) {
    ParallelOptions popts;
    popts.mode = core::Mode::kFull;
    popts.cycle_guard = true;
    popts.threads = threads;
    ParallelStats stats;
    const auto parallel = parallel_bytes(roots, 13, popts, &stats);
    const std::string context = "threads " + std::to_string(threads);
    EXPECT_EQ(parallel.size(), serial.size()) << context;
    EXPECT_GT(stats.shards, roots.size()) << context;
    EXPECT_EQ(stats.totals.objects_visited, serial_stats.objects_visited)
        << context;
    EXPECT_EQ(stats.totals.objects_recorded, serial_stats.objects_recorded)
        << context;
  }
}

}  // namespace
}  // namespace ickpt::testing
