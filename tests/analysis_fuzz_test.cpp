// Randomized cross-validation of the whole simplified-C toolchain: generate
// random (terminating, fault-free by construction) programs and check, for
// each one:
//   * print -> reparse -> print is a fixpoint (printer/parser agree);
//   * the interpreter computes identical results on original and reparsed;
//   * residualization preserves semantics for random dynamic inputs;
//   * SEA sets contain all dynamically observed effects.
//
// Program construction rules that guarantee termination and fault-freedom:
// loops are only `for i = 0..K` with literal K and untouched induction
// variables; there are no calls (no recursion), no division/modulo except
// by positive literals, and array indices are `expr % <array size>` folded
// through absi-style guards.
#include <gtest/gtest.h>

#include <random>

#include "analysis/interp.hpp"
#include "analysis/parser.hpp"
#include "analysis/printer.hpp"
#include "analysis/residualize.hpp"
#include "analysis/side_effect.hpp"

namespace ickpt::analysis {
namespace {

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    out_.clear();
    globals_ = {"d0", "d1", "g0", "g1", "g2"};
    out_ += "int d0; int d1;\n";
    out_ += "int g0 = " + std::to_string(literal()) + ";\n";
    out_ += "int g1 = " + std::to_string(literal()) + ";\n";
    out_ += "int g2;\n";
    out_ += "int arr[16];\n";
    out_ += "int main() {\n";
    locals_ = 0;
    scope_vars_ = {"d0", "d1", "g0", "g1", "g2"};
    block(1, 3);
    out_ += "  return " + expr(2) + ";\n}\n";
    return out_;
  }

 private:
  int literal() { return static_cast<int>(rng_() % 200) - 100; }

  std::string var() {
    return scope_vars_[rng_() % scope_vars_.size()];
  }

  /// Arithmetic-only expression of bounded depth; never faults.
  std::string expr(int depth) {
    if (depth == 0 || rng_() % 3 == 0) {
      switch (rng_() % 3) {
        case 0: return std::to_string(static_cast<int>(rng_() % 100));
        case 1: return var();
        default: return "arr[" + index_expr() + "]";
      }
    }
    static const char* ops[] = {"+", "-", "*", "<", "<=", "==", "!=", ">"};
    std::string op = ops[rng_() % 8];
    return "(" + expr(depth - 1) + " " + op + " " + expr(depth - 1) + ")";
  }

  /// Always in [0, 16): ((e % 16) + 16) % 16 via the subset's semantics.
  std::string index_expr() {
    return "(((" + var() + " % 16) + 16) % 16)";
  }

  void statement(int indent, int depth) {
    std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    switch (rng_() % 5) {
      case 0: {  // new local
        std::string name = "t" + std::to_string(locals_++);
        out_ += pad + "int " + name + " = " + expr(2) + ";\n";
        scope_vars_.push_back(name);
        return;
      }
      case 1:  // scalar assignment
        out_ += pad + pick_assignable() + " = " + expr(2) + ";\n";
        return;
      case 2:  // array store
        out_ += pad + "arr[" + index_expr() + "] = " + expr(2) + ";\n";
        return;
      case 3: {  // bounded for loop
        if (depth == 0) {
          out_ += pad + "g2 = g2 + 1;\n";
          return;
        }
        std::string iv = "i" + std::to_string(locals_++);
        out_ += pad + "int " + iv + ";\n";
        out_ += pad + "for (" + iv + " = 0; " + iv + " < " +
                std::to_string(2 + rng_() % 6) + "; " + iv + " = " + iv +
                " + 1) {\n";
        // The induction variable is visible but never reassigned inside.
        scope_vars_.push_back(iv);
        block(indent + 1, depth - 1);
        scope_vars_.pop_back();
        out_ += pad + "}\n";
        return;
      }
      default: {  // if/else
        if (depth == 0) {
          out_ += pad + "g0 = " + expr(1) + ";\n";
          return;
        }
        out_ += pad + "if (" + expr(2) + ") {\n";
        block(indent + 1, depth - 1);
        if (rng_() % 2 == 0) {
          out_ += pad + "} else {\n";
          block(indent + 1, depth - 1);
        }
        out_ += pad + "}\n";
        return;
      }
    }
  }

  std::string pick_assignable() {
    // Globals only (locals may be shadowed out of scope by blocks).
    static const char* writable[] = {"g0", "g1", "g2", "d0"};
    return writable[rng_() % 4];
  }

  void block(int indent, int depth) {
    const int n = 2 + static_cast<int>(rng_() % 4);
    const std::size_t scope_mark = scope_vars_.size();
    for (int i = 0; i < n; ++i) statement(indent, depth);
    scope_vars_.resize(scope_mark);  // locals fall out of scope
  }

  std::mt19937_64 rng_;
  std::string out_;
  std::vector<std::string> globals_;
  std::vector<std::string> scope_vars_;
  int locals_ = 0;
};

class FuzzCase : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCase, PrinterParserInterpreterResidualizerAgree) {
  ProgramFuzzer fuzzer(GetParam() * 2654435761u + 17);
  std::string source = fuzzer.generate();
  std::unique_ptr<Program> program;
  ASSERT_NO_THROW(program = parse_program(source)) << source;

  // Printer fixpoint.
  std::string printed = print_program(*program);
  auto reparsed = parse_program(printed);
  EXPECT_EQ(print_program(*reparsed), printed) << source;

  // Interpreter agreement + residual equivalence over dynamic inputs.
  ResidualizeOptions ropts;
  ropts.dynamic_globals = {"d0", "d1"};
  ropts.max_fold_steps = 100000;
  auto residual = residualize(*program, ropts);

  for (std::int32_t d : {0, 13, -100}) {
    auto run = [&](const Program& p) {
      Interpreter interp(p, InterpOptions{.max_steps = 2'000'000});
      interp.set_global("d0", d);
      interp.set_global("d1", -d);
      auto result = interp.run();
      // Compare exit value and all global scalars.
      std::vector<std::int32_t> state{result.exit_value};
      for (int id : p.globals)
        if (!p.symbols.at(id).is_array) state.push_back(interp.global_value(id));
      return state;
    };
    EXPECT_EQ(run(*program), run(*reparsed)) << source;
    EXPECT_EQ(run(*program), run(*residual.program)) << source;
  }

  // SEA soundness against observed effects.
  SideEffectAnalysis sea(*program);
  while (sea.iterate()) {
  }
  Interpreter tracked(*program, InterpOptions{.max_steps = 2'000'000,
                                              .track_effects = true});
  tracked.run();
  VarSet reads;
  VarSet writes;
  for (const Stmt* stmt : program->statements) {
    sea.statement_effect(*stmt, reads, writes);
    const VarSet& seen_r = tracked.observed_reads(stmt->index);
    const VarSet& seen_w = tracked.observed_writes(stmt->index);
    ASSERT_TRUE(std::includes(reads.begin(), reads.end(), seen_r.begin(),
                              seen_r.end()))
        << source;
    ASSERT_TRUE(std::includes(writes.begin(), writes.end(), seen_w.begin(),
                              seen_w.end()))
        << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCase,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace ickpt::analysis
