// The degradation ladder in isolation: healthy -> degraded -> rebasing ->
// failed, each transition driven by a scripted fault and observed through
// health()/health_status(), the generation chain on disk, and the metrics
// registry. The chaos soak (chaos_soak_test.cpp) exercises the same ladder
// under random fault schedules; these tests pin each rung deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/manager.hpp"
#include "io/fault.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"
#include "obs/metrics.hpp"
#include "tests/test_types.hpp"
#include "verify/fsck.hpp"

namespace ickpt::testing {
namespace {

using core::CheckpointManager;
using core::Health;
using core::ManagerOptions;
using core::Mode;
using core::TypeRegistry;
using io::FaultKind;
using io::ScriptedFaultPolicy;
using io::StableStorage;

class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ickpt_health_test.log";
    clean_chain();
    register_test_types(registry_);
  }
  void TearDown() override { clean_chain(); }

  void clean_chain() {
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
    for (unsigned n = 1; n <= 8; ++n) {
      const std::string q = StableStorage::quarantine_path(path_, n);
      std::remove(q.c_str());
      std::remove((q + ".bak").c_str());
    }
  }

  /// Healing options every test starts from: fast retries (no backoff
  /// sleeping), one in-place retry, three rotation attempts, reheal after
  /// two clean epochs.
  static ManagerOptions heal_opts(io::FaultPolicy* fault,
                                  unsigned full_interval = 3) {
    ManagerOptions opts;
    opts.full_interval = full_interval;
    opts.fault_policy = fault;
    opts.retry.max_attempts = 2;
    opts.retry.initial_backoff = std::chrono::microseconds{0};
    opts.heal.enabled = true;
    opts.heal.reheal_after = 2;
    opts.heal.append_retries = 1;
    opts.heal.rotate_attempts = 3;
    return opts;
  }

  /// Byte size of the log after `takes` clean epochs of the reference
  /// workload (leaf->i32 = 10 + epoch) — used to aim scripted faults at a
  /// specific epoch's append.
  std::uint64_t calibrate(int takes) {
    clean_chain();
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    CheckpointManager manager(path_, heal_opts(nullptr));
    for (int i = 0; i < takes; ++i) {
      leaf->set_i32(10 + i);
      manager.take(*leaf);
    }
    const std::uint64_t size = io::read_file(path_).size();
    clean_chain();
    return size;
  }

  std::string path_;
  TypeRegistry registry_;
};

TEST_F(HealthTest, HealDisabledKeepsFailStopSemantics) {
  const std::uint64_t size2 = calibrate(2);
  ScriptedFaultPolicy policy(FaultKind::kTransient, size2 + 10, ENOSPC, 100);
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  ManagerOptions opts = heal_opts(&policy);
  opts.heal.enabled = false;
  CheckpointManager manager(path_, opts);
  for (int i = 0; i < 2; ++i) {
    leaf->set_i32(10 + i);
    manager.take(*leaf);
  }
  leaf->set_i32(12);
  EXPECT_THROW(manager.take(*leaf), IoError);
  // The ladder never engages: no rotation, no quarantine, still "healthy"
  // (the manager simply rethrows, exactly the seed behavior).
  EXPECT_EQ(manager.health(), Health::kHealthy);
  EXPECT_FALSE(io::file_exists(StableStorage::quarantine_path(path_, 1)));
}

TEST_F(HealthTest, PersistentAppendFailureRotatesAndQuarantines) {
  const std::uint64_t size2 = calibrate(2);
  // Budget = initial append (max_attempts+1 = 3 decisions) + one in-place
  // retry (3 more); the rebase then writes at the front of the fresh
  // generation, below the trigger, and succeeds.
  ScriptedFaultPolicy policy(FaultKind::kTransient, size2 + 10, ENOSPC, 6);
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  CheckpointManager manager(path_, heal_opts(&policy));
  core::TakeResult last{};
  for (int i = 0; i < 3; ++i) {
    leaf->set_i32(10 + i);
    last = manager.take(*leaf);
  }
  EXPECT_TRUE(policy.fired());
  // Epoch 2 would have been incremental; the rotation rebased it to a full
  // so the new generation stands alone.
  EXPECT_EQ(last.epoch, 2u);
  EXPECT_EQ(last.mode, Mode::kFull);
  EXPECT_EQ(manager.health(), Health::kDegraded);

  auto status = manager.health_status();
  EXPECT_EQ(status.rotations, 1u);
  EXPECT_EQ(status.reheals, 0u);
  EXPECT_TRUE(status.any_settled);
  EXPECT_EQ(status.last_settled_epoch, 2u);
  EXPECT_TRUE(io::file_exists(StableStorage::quarantine_path(path_, 1)));

  // Two clean epochs re-arm the configured pipeline.
  for (int i = 3; i < 5; ++i) {
    leaf->set_i32(10 + i);
    manager.take(*leaf);
  }
  EXPECT_EQ(manager.health(), Health::kHealthy);
  status = manager.health_status();
  EXPECT_EQ(status.reheals, 1u);
  EXPECT_EQ(status.degraded_epochs, 3u);  // epochs 2, 3, 4

  // The chain fscks clean: quarantine holds epochs 0..1, the live log
  // starts with the rebase full at epoch 2.
  auto chain = verify::fsck_chain(path_, registry_);
  EXPECT_TRUE(chain.clean()) << chain.to_string();
  ASSERT_EQ(chain.generations.size(), 2u);
  EXPECT_FALSE(chain.generations[0].live);
  EXPECT_EQ(chain.generations[0].last_epoch, 1u);
  EXPECT_TRUE(chain.generations[1].live);
  EXPECT_TRUE(chain.generations[1].starts_full);
  EXPECT_EQ(chain.generations[1].first_epoch, 2u);

  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_EQ(result.state.epoch, 4u);
  EXPECT_EQ(result.state.root_as<Leaf>()->i32, 14);
  EXPECT_EQ(result.recovered_path, path_);
}

TEST_F(HealthTest, AsyncPoisonDegradesToSyncThenReheals) {
  const std::uint64_t size2 = calibrate(2);
  ScriptedFaultPolicy policy(FaultKind::kTornWrite, size2 + 10);
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  ManagerOptions opts = heal_opts(&policy);
  opts.async_io = true;
  CheckpointManager manager(path_, opts);
  std::vector<Health> seen;
  for (int i = 0; i < 7; ++i) {
    leaf->set_i32(10 + i);
    manager.take(*leaf);
    manager.flush();  // surface the background failure deterministically
    seen.push_back(manager.health());
  }
  EXPECT_TRUE(policy.fired());
  // Epoch 2's background append tore and poisoned the log; the flush after
  // it degraded the manager instead of leaving it wedged, the next take
  // rebased with a sync full, and two clean epochs re-armed async I/O.
  EXPECT_EQ(seen[1], Health::kHealthy);
  EXPECT_EQ(seen[2], Health::kDegraded);
  EXPECT_EQ(manager.health(), Health::kHealthy);

  auto status = manager.health_status();
  EXPECT_TRUE(status.async_armed);
  EXPECT_EQ(status.lost_epochs, 1u);  // exactly the poisoned epoch
  EXPECT_EQ(status.rotations, 0u);    // poisoning heals without rotation
  EXPECT_EQ(status.reheals, 1u);

  manager.flush();
  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_EQ(result.state.epoch, 6u);
  EXPECT_EQ(result.state.root_as<Leaf>()->i32, 16);
  EXPECT_EQ(result.generations_tried, 1u);
}

TEST_F(HealthTest, RotationExhaustionEntersFailedState) {
  // Every write fails from byte 0 with a bottomless ENOSPC: the in-place
  // retries and all three rotation rebases burn out.
  ScriptedFaultPolicy policy(FaultKind::kTransient, 0, ENOSPC, 100000);
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  CheckpointManager manager(path_, heal_opts(&policy));
  leaf->set_i32(10);
  try {
    manager.take(*leaf);
    FAIL() << "take() must throw once the ladder is exhausted";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("rotation attempt"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(manager.health(), Health::kFailed);
  EXPECT_EQ(manager.health_status().rotations, 3u);
  EXPECT_FALSE(manager.health_status().any_settled);

  // A failed manager refuses further work with an actionable error instead
  // of corrupting the chain.
  try {
    manager.take(*leaf);
    FAIL() << "take() must refuse in the failed state";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("failed state"), std::string::npos)
        << e.what();
  }
}

TEST_F(HealthTest, ReopenOfNonEmptyLogForcesFullRebase) {
  {
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    CheckpointManager manager(path_, heal_opts(nullptr, 100));
    for (int i = 0; i < 2; ++i) {
      leaf->set_i32(10 + i);
      manager.take(*leaf);
    }
  }
  // A healing manager reopening an existing log cannot know the on-disk
  // tail matches the caller's in-memory state, so its first checkpoint is a
  // full one even though policy says incremental.
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  leaf->set_i32(12);
  CheckpointManager manager(path_, heal_opts(nullptr, 100));
  EXPECT_EQ(manager.next_epoch(), 2u);
  auto result = manager.take(*leaf);
  EXPECT_EQ(result.epoch, 2u);
  EXPECT_EQ(result.mode, Mode::kFull);
  // Policy resumes afterwards.
  EXPECT_EQ(manager.take(*leaf).mode, Mode::kIncremental);
}

TEST_F(HealthTest, EpochsNeverReuseAcrossQuarantinedGenerations) {
  const std::uint64_t size2 = calibrate(2);
  {
    ScriptedFaultPolicy policy(FaultKind::kTransient, size2 + 10, ENOSPC, 6);
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    CheckpointManager manager(path_, heal_opts(&policy));
    for (int i = 0; i < 3; ++i) {
      leaf->set_i32(10 + i);
      manager.take(*leaf);
    }
    ASSERT_EQ(manager.health_status().rotations, 1u);
  }
  // Live log holds epoch 2 only; the quarantine holds 0..1. A reopened
  // manager must resume past ALL of them — epoch numbers are never reused
  // anywhere on the chain.
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  CheckpointManager manager(path_, heal_opts(nullptr));
  EXPECT_EQ(manager.next_epoch(), 3u);
  leaf->set_i32(13);
  EXPECT_EQ(manager.take(*leaf).epoch, 3u);

  auto chain = verify::fsck_chain(path_, registry_);
  EXPECT_TRUE(chain.clean()) << chain.to_string();
}

TEST_F(HealthTest, LadderFeedsMetricsRegistry) {
  const std::uint64_t size2 = calibrate(2);
  obs::Registry registry;
  obs::Registry::install(&registry);
  {
    ScriptedFaultPolicy policy(FaultKind::kTransient, size2 + 10, ENOSPC, 6);
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    CheckpointManager manager(path_, heal_opts(&policy));
    for (int i = 0; i < 5; ++i) {
      leaf->set_i32(10 + i);
      manager.take(*leaf);
    }
    EXPECT_EQ(manager.health(), Health::kHealthy);
  }
  auto snapshot = registry.snapshot();
  obs::Registry::install(nullptr);
  EXPECT_EQ(snapshot.counter_sum("ickpt_log_rotations_total"), 1u);
  EXPECT_EQ(snapshot.counter_sum("ickpt_reheals_total"), 1u);
  EXPECT_EQ(snapshot.counter_sum("ickpt_degraded_epochs_total"), 3u);
  const auto* health = snapshot.find("ickpt_health");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->gauge_value, 0);  // back to kHealthy
}

TEST_F(HealthTest, RecoverFallsBackAcrossGenerations) {
  const std::uint64_t size2 = calibrate(2);
  {
    ScriptedFaultPolicy policy(FaultKind::kTransient, size2 + 10, ENOSPC, 6);
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    CheckpointManager manager(path_, heal_opts(&policy));
    for (int i = 0; i < 3; ++i) {
      leaf->set_i32(10 + i);
      manager.take(*leaf);
    }
  }
  // Wreck the live (post-rotation) log beyond use: the chain walk must
  // surface the quarantined generation's state instead of failing.
  io::write_file(path_, std::vector<std::uint8_t>(64, 0xEE));
  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_EQ(result.recovered_path, StableStorage::quarantine_path(path_, 1));
  EXPECT_EQ(result.generations_tried, 2u);
  EXPECT_FALSE(result.log_clean);
  EXPECT_EQ(result.state.epoch, 1u);
  EXPECT_EQ(result.state.root_as<Leaf>()->i32, 11);

  // Opting out restores the strict single-file behavior.
  core::RecoverOptions opts;
  opts.walk_generations = false;
  EXPECT_THROW(CheckpointManager::recover(path_, registry_, opts),
               CorruptionError);
}

}  // namespace
}  // namespace ickpt::testing
