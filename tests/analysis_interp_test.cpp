// Interpreter and pretty-printer tests, including the dynamic-validation
// properties that tie the analyses to real executions:
//   * SEA soundness: observed global effects ⊆ SEA per-statement sets;
//   * BTA soundness: a global whose final value depends on a dynamic input
//     must be classified dynamic;
//   * printer round trip: parse(print(p)) is structurally identical to p.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/binding_time.hpp"
#include "analysis/engine.hpp"
#include "analysis/interp.hpp"
#include "analysis/parser.hpp"
#include "analysis/printer.hpp"
#include "analysis/program_gen.hpp"
#include "analysis/side_effect.hpp"
#include "common/error.hpp"

namespace ickpt::analysis {
namespace {

std::int32_t run_main(const char* src) {
  auto program = parse_program(src);
  Interpreter interp(*program);
  return interp.run().exit_value;
}

TEST(Interpreter, ArithmeticAndCalls) {
  EXPECT_EQ(run_main("int main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(run_main("int main() { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(run_main("int main() { return 17 % 5; }"), 2);
  EXPECT_EQ(run_main("int main() { return -7 / 2; }"), -3);
  EXPECT_EQ(run_main("int sq(int x) { return x * x; }\n"
                     "int main() { return sq(sq(2)); }"),
            16);
}

TEST(Interpreter, ControlFlow) {
  EXPECT_EQ(run_main("int main() { int s; int i; s = 0;\n"
                     "  for (i = 1; i <= 10; i = i + 1) { s = s + i; }\n"
                     "  return s; }"),
            55);
  EXPECT_EQ(run_main("int main() { int n; int r; n = 10; r = 1;\n"
                     "  while (n > 1) { r = r * n; n = n - 1; }\n"
                     "  return r; }"),
            3628800);
  EXPECT_EQ(run_main("int main() { if (1 < 2) { return 7; } else "
                     "{ return 8; } }"),
            7);
}

TEST(Interpreter, ShortCircuitEvaluation) {
  // The right operand of && must not run when the left is false; division
  // by zero there would abort otherwise.
  EXPECT_EQ(run_main("int main() { int z; z = 0;\n"
                     "  if (z != 0 && (1 / z) > 0) { return 1; }\n"
                     "  return 2; }"),
            2);
  EXPECT_EQ(run_main("int main() { int z; z = 0;\n"
                     "  if (1 == 1 || (1 / z) > 0) { return 3; }\n"
                     "  return 4; }"),
            3);
}

TEST(Interpreter, Recursion) {
  EXPECT_EQ(run_main("int fib(int n) { if (n < 2) { return n; }\n"
                     "  return fib(n - 1) + fib(n - 2); }\n"
                     "int main() { return fib(15); }"),
            610);
}

TEST(Interpreter, GlobalsAndArrays) {
  EXPECT_EQ(run_main("int buf[10]; int g = 5;\n"
                     "int main() { int i;\n"
                     "  for (i = 0; i < 10; i = i + 1) { buf[i] = i * g; }\n"
                     "  return buf[7]; }"),
            35);
}

TEST(Interpreter, ErrorPaths) {
  EXPECT_THROW(run_main("int main() { return 1 / 0; }"), AnalysisError);
  EXPECT_THROW(run_main("int main() { return 1 % 0; }"), AnalysisError);
  EXPECT_THROW(run_main("int buf[4]; int main() { return buf[9]; }"),
               AnalysisError);
  EXPECT_THROW(run_main("int buf[4]; int main() { buf[0 - 1] = 1; "
                        "return 0; }"),
               AnalysisError);
  EXPECT_THROW(run_main("int loop() { return loop(); }\n"
                        "int main() { return loop(); }"),
               AnalysisError);  // call depth
}

TEST(Interpreter, StepBudgetStopsInfiniteLoops) {
  auto program = parse_program(
      "int main() { int x; x = 1; while (x > 0) { x = 1; } return x; }");
  InterpOptions opts;
  opts.max_steps = 10000;
  Interpreter interp(*program, opts);
  EXPECT_THROW(interp.run(), AnalysisError);
}

TEST(Interpreter, SetGlobalOverridesInitialValue) {
  auto program = parse_program("int k = 3; int main() { return k * 2; }");
  Interpreter interp(*program);
  interp.set_global("k", 21);
  EXPECT_EQ(interp.run().exit_value, 42);
}

TEST(Interpreter, RunTwiceRejected) {
  auto program = parse_program("int main() { return 0; }");
  Interpreter interp(*program);
  interp.run();
  EXPECT_THROW(interp.run(), AnalysisError);
}

TEST(Interpreter, ImageProgramRunsDeterministically) {
  std::string src = generate_image_program(1, /*dim=*/8);
  auto p1 = parse_program(src);
  auto p2 = parse_program(src);
  Interpreter a(*p1);
  Interpreter b(*p2);
  auto ra = a.run();
  auto rb = b.run();
  EXPECT_EQ(ra.exit_value, rb.exit_value);
  EXPECT_GT(ra.steps, 10000u);
}

// --- dynamic validation of the analyses ---------------------------------------

TEST(DynamicValidation, ObservedEffectsWithinSeaSets) {
  auto program = parse_program(generate_image_program(1, /*dim=*/8));
  SideEffectAnalysis sea(*program);
  while (sea.iterate()) {
  }

  InterpOptions opts;
  opts.track_effects = true;
  Interpreter interp(*program, opts);
  interp.run();

  VarSet reads;
  VarSet writes;
  for (const Stmt* stmt : program->statements) {
    sea.statement_effect(*stmt, reads, writes);
    const VarSet& seen_r = interp.observed_reads(stmt->index);
    const VarSet& seen_w = interp.observed_writes(stmt->index);
    EXPECT_TRUE(std::includes(reads.begin(), reads.end(), seen_r.begin(),
                              seen_r.end()))
        << "SEA under-approximated reads at line " << stmt->line;
    EXPECT_TRUE(std::includes(writes.begin(), writes.end(), seen_w.begin(),
                              seen_w.end()))
        << "SEA under-approximated writes at line " << stmt->line;
  }
}

TEST(DynamicValidation, SeedSensitiveGlobalsAreBtaDynamic) {
  auto program = parse_program(generate_image_program(1, /*dim=*/8));
  BindingTimeAnalysis bta(*program, default_bta_config());
  while (bta.iterate()) {
  }

  Interpreter run_a(*program);
  run_a.set_global("seed", 12345);
  run_a.run();
  Interpreter run_b(*program);
  run_b.set_global("seed", 999);
  run_b.run();

  int sensitive = 0;
  for (int id : program->globals) {
    const Symbol& symbol = program->symbols.at(id);
    bool differs = symbol.is_array
                       ? run_a.global_array(id) != run_b.global_array(id)
                       : run_a.global_value(id) != run_b.global_value(id);
    if (differs) {
      ++sensitive;
      EXPECT_EQ(bta.symbol_bt(id), kDynamic)
          << "global '" << symbol.name
          << "' depends on the dynamic seed but BTA calls it static";
    }
  }
  EXPECT_GT(sensitive, 2);  // the property must actually bite
}

// --- pretty printer -------------------------------------------------------------

void expect_structurally_equal(const Program& a, const Program& b) {
  ASSERT_EQ(a.statements.size(), b.statements.size());
  ASSERT_EQ(a.functions.size(), b.functions.size());
  ASSERT_EQ(a.globals.size(), b.globals.size());
  for (std::size_t i = 0; i < a.statements.size(); ++i) {
    EXPECT_EQ(a.statements[i]->kind, b.statements[i]->kind) << "stmt " << i;
    EXPECT_EQ(a.statements[i]->is_array_target,
              b.statements[i]->is_array_target);
  }
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    EXPECT_EQ(a.functions[i].name, b.functions[i].name);
    EXPECT_EQ(a.functions[i].params.size(), b.functions[i].params.size());
  }
}

TEST(Printer, RoundTripSmallProgram) {
  const char* src =
      "int g = -4; int buf[8];\n"
      "int f(int a, int b) { if (a < b) { return a; } return b; }\n"
      "int main() { int i; for (i = 0; i < 8; i = i + 1) "
      "{ buf[i] = f(i, g); } while (g < 0) { g = g + 1; } return buf[3]; }";
  auto original = parse_program(src);
  std::string printed = print_program(*original);
  auto reparsed = parse_program(printed);
  expect_structurally_equal(*original, *reparsed);

  // Semantics preserved too: both interpret to the same exit value.
  Interpreter a(*original);
  Interpreter b(*reparsed);
  EXPECT_EQ(a.run().exit_value, b.run().exit_value);
}

TEST(Printer, RoundTripImageProgram) {
  auto original = parse_program(generate_image_program(2, /*dim=*/8));
  std::string printed = print_program(*original);
  auto reparsed = parse_program(printed);
  expect_structurally_equal(*original, *reparsed);
  Interpreter a(*original);
  Interpreter b(*reparsed);
  EXPECT_EQ(a.run().exit_value, b.run().exit_value);
}

TEST(Printer, AnnotationsAppearWhenRequested) {
  auto program = parse_program(
      "int d; int main() { int x = d; return x; }");
  core::Heap heap;
  // Attach attributes via the engine to get annotations.
  AnalysisEngine engine(*program, heap);
  engine.run_side_effect();
  engine.run_binding_time(BtaConfig{{"d"}});
  engine.run_eval_time();
  PrintOptions opts;
  opts.annotate = true;
  std::string printed = print_program(*program, opts);
  EXPECT_NE(printed.find("// bt:D"), std::string::npos);
  EXPECT_NE(printed.find("et:R"), std::string::npos);
}

TEST(Printer, ExprPrinting) {
  auto program = parse_program("int g; int main() { return (g + 1) * 2; }");
  const Expr& e = *program->functions[0].body[0]->expr1;
  EXPECT_EQ(print_expr(e, *program), "((g + 1) * 2)");
}

}  // namespace
}  // namespace ickpt::analysis
