// Write-set extraction: the three-way proof that the verify layer's phase
// model matches the engine that actually runs — declared manifests contain
// the recorded witness, the generated model matches the manifests in both
// directions, and injected drift in any arrow is reported as exactly the
// injected inconsistency.
#include <gtest/gtest.h>

#include "analysis/write_witness.hpp"
#include "verify/extract/extract.hpp"
#include "verify/extract/model_gen.hpp"
#include "verify/pattern_check.hpp"

namespace ickpt::testing {
namespace {

using analysis::AttrField;
using analysis::FieldSet;
using analysis::WriteManifest;
using verify::extract::check_extraction;
using verify::extract::engine_manifests;
using verify::extract::generate_phase_model;
using verify::extract::PhaseWitnessRow;
using verify::extract::record_witness;
using verify::extract::WitnessReport;

/// One corpus run shared by the suite: recording is deterministic, and
/// driving the engine is the expensive part of these tests.
const WitnessReport& shared_witness() {
  static const WitnessReport witness = record_witness({});
  return witness;
}

TEST(Extract, WitnessIsSubsetOfEveryManifest) {
  const WitnessReport& witness = shared_witness();
  ASSERT_EQ(witness.rows.size(), 4u);
  EXPECT_GT(witness.programs, 0u);
  EXPECT_GT(witness.statements, 0u);
  EXPECT_EQ(witness.unattributed, 0u);
  for (const PhaseWitnessRow& row : witness.rows) {
    EXPECT_TRUE(row.witnessed.subset_of(row.declared))
        << "phase " << row.phase << " stored a position its manifest does "
        << "not declare";
    // The corpus exercises every declared position, so the proof covers the
    // full footprint, not a slice of it.
    EXPECT_EQ(row.witnessed, row.declared) << "phase " << row.phase;
  }
}

TEST(Extract, PhaseAttributionIsExact) {
  const WitnessReport& witness = shared_witness();
  // Build stores every position; each analysis phase stores exactly its own
  // annotation and nothing else.
  const PhaseWitnessRow& build = witness.rows[0];
  EXPECT_STREQ(build.phase, "build");
  for (std::size_t f = 0; f < analysis::kAttrFieldCount; ++f)
    EXPECT_GT(build.stores[f], 0u) << "field " << f;

  struct Expected {
    std::size_t row;
    AttrField only;
  };
  for (Expected e : {Expected{1, AttrField::kSe}, Expected{2, AttrField::kBt},
                     Expected{3, AttrField::kEt}}) {
    const PhaseWitnessRow& row = witness.rows[e.row];
    for (std::size_t f = 0; f < analysis::kAttrFieldCount; ++f) {
      if (f == static_cast<std::size_t>(e.only)) {
        EXPECT_GT(row.stores[f], 0u) << row.phase;
      } else {
        EXPECT_EQ(row.stores[f], 0u) << row.phase << " field " << f;
      }
    }
  }
}

TEST(Extract, SelfCheckIsClean) {
  verify::Report report = verify::extract::self_check({});
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.warnings(), 0u) << report.to_string();
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

TEST(Extract, PhaseModelSourceIsGenerated) {
  // The model the pattern checker and static inference consume is the
  // generator's output for the engine manifests — no hand-written phase
  // body survives anywhere.
  auto manifests = engine_manifests();
  EXPECT_EQ(verify::phase_model_source(), generate_phase_model(manifests));
}

TEST(Extract, DriftWitnessNotInManifestIsReported) {
  // Injected drift, arrow 1: strip the side-effect phase's declaration. The
  // real witness still stores SE sets, so the checker must report exactly
  // one undeclared-write — and nothing else, since the model is generated
  // from the same (mutated) manifests.
  auto manifests = engine_manifests();
  manifests[1].fields = FieldSet{};
  verify::Report report = check_extraction(manifests, shared_witness(),
                                           generate_phase_model(manifests));
  EXPECT_EQ(report.errors(), 1u) << report.to_string();
  EXPECT_EQ(report.count("undeclared-write"), 1u) << report.to_string();
  const verify::Finding* finding = report.first("undeclared-write");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->position, "/0");
  EXPECT_NE(finding->message.find("run_side_effect"), std::string::npos);
}

TEST(Extract, DriftManifestNotInModelIsReported) {
  // Injected drift, arrow 2, missing direction: the model is generated from
  // a mutated set whose binding-time phase lost its annotation, then
  // checked against the true manifests. Exactly one model-missing-write.
  auto true_manifests = engine_manifests();
  auto mutated = true_manifests;
  mutated[2].fields = FieldSet{};
  verify::Report report = check_extraction(true_manifests, shared_witness(),
                                           generate_phase_model(mutated));
  EXPECT_EQ(report.errors(), 1u) << report.to_string();
  EXPECT_EQ(report.count("model-missing-write"), 1u) << report.to_string();
  const verify::Finding* finding = report.first("model-missing-write");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->position, "/1/0");
  EXPECT_NE(finding->message.find("run_binding_time"), std::string::npos);
}

TEST(Extract, DriftModelExtraWriteIsReported) {
  // Injected drift, arrow 2, extra direction: the generated model writes a
  // position the true manifest never declared.
  auto true_manifests = engine_manifests();
  auto mutated = true_manifests;
  mutated[2].fields.insert(AttrField::kEt);
  verify::Report report = check_extraction(true_manifests, shared_witness(),
                                           generate_phase_model(mutated));
  EXPECT_EQ(report.errors(), 1u) << report.to_string();
  EXPECT_EQ(report.count("model-extra-write"), 1u) << report.to_string();
  const verify::Finding* finding = report.first("model-extra-write");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->position, "/2/0");
}

TEST(Extract, NoWitnessInstalledCostsNothingAndRecordsNothing) {
  // The setter hook must be inert between extractions: with no witness
  // installed a fresh recording still starts from zero.
  ASSERT_EQ(analysis::WriteWitness::current(), nullptr);
  WitnessReport again = record_witness({.stages = {1}, .dim = 4});
  EXPECT_EQ(again.unattributed, 0u);
  EXPECT_EQ(analysis::WriteWitness::current(), nullptr);
  for (const PhaseWitnessRow& row : again.rows)
    EXPECT_TRUE(row.witnessed.subset_of(row.declared)) << row.phase;
}

}  // namespace
}  // namespace ickpt::testing
