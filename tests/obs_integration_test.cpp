// End-to-end telemetry: run real take/flush/recover/compact cycles with the
// registry and collector installed and assert the counter deltas every layer
// must produce, the span tree shape, and the async poison/unobserved-error
// events of satellite instrumentation.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "io/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/structures.hpp"
#include "synth/workload.hpp"

using namespace ickpt;

namespace {

std::string temp_log(const char* name) {
  return std::string("/tmp/ickpt_obs_itest_") + name + ".log";
}

core::TypeRegistry synth_registry() {
  core::TypeRegistry registry;
  synth::register_types(registry);
  return registry;
}

std::size_t count_events(const std::vector<obs::TraceEvent>& events,
                         const char* name) {
  std::size_t n = 0;
  for (const obs::TraceEvent& ev : events)
    if (std::string(ev.name) == name) ++n;
  return n;
}

struct ScopedObs {
  obs::Registry registry;
  obs::TraceCollector collector;
  ScopedObs() {
    obs::Registry::install(&registry);
    obs::TraceCollector::install(&collector);
    (void)collector.drain();
  }
  ~ScopedObs() {
    obs::TraceCollector::install(nullptr);
    obs::Registry::install(nullptr);
  }
};

TEST(ObsIntegration, TakeFlushRecoverCounterDeltas) {
  const std::string path = temp_log("deltas");
  std::remove(path.c_str());
  ScopedObs obs_scope;

  core::Heap heap;
  synth::SynthConfig config;
  config.num_structures = 32;
  synth::SynthWorkload workload(heap, config);

  constexpr unsigned kEpochs = 6;
  constexpr unsigned kFullInterval = 3;  // epochs 0 and 3 are full
  {
    core::ManagerOptions mopts;
    mopts.full_interval = kFullInterval;
    mopts.async_io = true;
    core::CheckpointManager manager(path, mopts);
    for (unsigned e = 0; e < kEpochs; ++e) {
      manager.take(workload.root_bases());
      workload.mutate();
    }
    manager.flush();
  }

  obs::Snapshot mid = obs_scope.registry.snapshot();
  const auto* full =
      mid.find("ickpt_checkpoints_total", {{"mode", "full"}});
  const auto* incr =
      mid.find("ickpt_checkpoints_total", {{"mode", "incremental"}});
  ASSERT_NE(full, nullptr);
  ASSERT_NE(incr, nullptr);
  EXPECT_EQ(full->counter_value, 2u);   // epochs 0, 3
  EXPECT_EQ(incr->counter_value, 4u);
  EXPECT_EQ(mid.counter_sum("ickpt_async_appends_total"), kEpochs);
  EXPECT_EQ(mid.counter_sum("ickpt_storage_appends_total"), kEpochs);
  EXPECT_GT(mid.counter_sum("ickpt_storage_bytes_written_total"), 0u);
  EXPECT_GT(mid.counter_sum("ickpt_checkpoint_bytes_total"), 0u);

  // Every take visits every object; the full epochs record all of them.
  const std::size_t objects = workload.total_objects();
  const auto* visited = mid.find("ickpt_checkpoint_objects_total",
                                 {{"result", "visited"}});
  ASSERT_NE(visited, nullptr);
  EXPECT_EQ(visited->counter_value, kEpochs * objects);
  const auto* recorded = mid.find("ickpt_checkpoint_objects_total",
                                  {{"result", "recorded"}});
  const auto* skipped = mid.find("ickpt_checkpoint_objects_total",
                                 {{"result", "skipped"}});
  ASSERT_NE(recorded, nullptr);
  ASSERT_NE(skipped, nullptr);
  EXPECT_EQ(recorded->counter_value + skipped->counter_value,
            visited->counter_value);
  EXPECT_GE(recorded->counter_value, 2u * objects);  // the two full epochs

  const auto* epoch_gauge = mid.find("ickpt_epoch");
  ASSERT_NE(epoch_gauge, nullptr);
  EXPECT_EQ(epoch_gauge->gauge_value,
            static_cast<std::int64_t>(kEpochs - 1));
  const auto* depth = mid.find("ickpt_async_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->gauge_value, 0);  // flushed and joined

  // Recover: one clean recovery applying the window [last full, end).
  auto registry = synth_registry();
  auto result = core::CheckpointManager::recover(path, registry);
  EXPECT_TRUE(result.log_clean);
  EXPECT_EQ(result.checkpoints_applied, kEpochs - kFullInterval);

  obs::Snapshot after = obs_scope.registry.snapshot();
  const auto* clean =
      after.find("ickpt_recoveries_total", {{"log", "clean"}});
  ASSERT_NE(clean, nullptr);
  EXPECT_EQ(clean->counter_value, 1u);
  const auto* applied =
      after.find("ickpt_recover_frames_total", {{"result", "applied"}});
  const auto* dropped =
      after.find("ickpt_recover_frames_total", {{"result", "dropped"}});
  ASSERT_NE(applied, nullptr);
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(applied->counter_value, kEpochs - kFullInterval);
  EXPECT_EQ(dropped->counter_value, kFullInterval);
  EXPECT_GT(after.counter_sum("ickpt_recover_records_total"), 0u);
  // Opening storage publishes three scans (repair pass, prefix, .bak) —
  // all of an absent file here — and recover() adds the one that matters.
  EXPECT_EQ(after.counter_sum("ickpt_scans_total"), 4u);
  EXPECT_EQ(after.counter_sum("ickpt_scan_frames_total"), kEpochs);
  // Clean log: no salvage, no faults, no retries.
  EXPECT_EQ(after.counter_sum("ickpt_recover_salvage_regions_total"), 0u);
  EXPECT_EQ(after.counter_sum("ickpt_storage_faults_total"), 0u);

  // Compact rewrites to one full checkpoint and counts it.
  (void)core::CheckpointManager::compact(path, registry);
  obs::Snapshot compacted = obs_scope.registry.snapshot();
  EXPECT_EQ(compacted.counter_sum("ickpt_compacts_total"), 1u);
  EXPECT_GT(compacted.counter_sum("ickpt_storage_fsyncs_total"), 0u);

  std::remove(path.c_str());
}

TEST(ObsIntegration, SpanTreeShape) {
  const std::string path = temp_log("spans");
  std::remove(path.c_str());
  ScopedObs obs_scope;

  core::Heap heap;
  synth::SynthConfig config;
  config.num_structures = 8;
  synth::SynthWorkload workload(heap, config);
  {
    core::CheckpointManager manager(path, {.full_interval = 2});
    for (int e = 0; e < 4; ++e) {
      manager.take(workload.root_bases());
      workload.mutate();
    }
  }
  auto registry = synth_registry();
  (void)core::CheckpointManager::recover(path, registry);

  std::vector<obs::TraceEvent> events = obs_scope.collector.drain();
  EXPECT_EQ(count_events(events, "checkpoint.take"), 4u);
  EXPECT_EQ(count_events(events, "storage.append"), 4u);
  EXPECT_EQ(count_events(events, "checkpoint.recover"), 1u);
  // Three scans from opening the log (repair pass, prefix, .bak) plus the
  // one recover() runs.
  EXPECT_EQ(count_events(events, "storage.scan"), 4u);
  EXPECT_EQ(count_events(events, "recover.apply_window"), 1u);

  // Tree shape: each storage.append nests inside a checkpoint.take
  // (synchronous manager), and scan + apply_window nest inside the recover
  // span. All on one thread, so interval containment is the tree.
  auto find_all = [&](const char* name) {
    std::vector<const obs::TraceEvent*> out;
    for (const obs::TraceEvent& ev : events)
      if (std::string(ev.name) == name) out.push_back(&ev);
    return out;
  };
  auto contains = [](const obs::TraceEvent& parent,
                     const obs::TraceEvent& child) {
    return parent.ts_ns <= child.ts_ns &&
           child.ts_ns + child.dur_ns <= parent.ts_ns + parent.dur_ns;
  };
  auto takes = find_all("checkpoint.take");
  for (const obs::TraceEvent* append : find_all("storage.append")) {
    bool nested = false;
    for (const obs::TraceEvent* take : takes)
      if (contains(*take, *append)) nested = true;
    EXPECT_TRUE(nested) << "storage.append outside every checkpoint.take";
  }
  const obs::TraceEvent* recover = find_all("checkpoint.recover")[0];
  bool scan_in_recover = false;
  for (const obs::TraceEvent* scan : find_all("storage.scan"))
    if (contains(*recover, *scan)) scan_in_recover = true;
  EXPECT_TRUE(scan_in_recover) << "no storage.scan inside checkpoint.recover";
  EXPECT_TRUE(contains(*recover, *find_all("recover.apply_window")[0]));
  // take spans carry the mode/epoch note.
  EXPECT_NE(std::string(takes[0]->note).find("full epoch 0"),
            std::string::npos);

  std::remove(path.c_str());
}

TEST(ObsIntegration, AsyncPoisonAndUnobservedErrorCounted) {
  const std::string path = temp_log("poison");
  std::remove(path.c_str());
  ScopedObs obs_scope;

  // Fail the very first append (the header write covers offset 1) with more
  // transient faults than the retry budget, and never drain: the destructor
  // must route the unobserved error through the counters. One take only —
  // a second take() could race the poisoning and observe the error itself.
  io::ScriptedFaultPolicy fault(io::FaultKind::kTransient, 1,
                                /*transient_errno=*/EIO,
                                /*transient_count=*/100);
  core::Heap heap;
  synth::SynthConfig config;
  config.num_structures = 4;
  synth::SynthWorkload workload(heap, config);
  {
    core::ManagerOptions mopts;
    mopts.async_io = true;
    mopts.fault_policy = &fault;
    mopts.retry.max_attempts = 2;
    mopts.retry.initial_backoff = std::chrono::microseconds(0);
    core::CheckpointManager manager(path, mopts);
    manager.take(workload.root_bases());  // append fails in the background
    // Destroy with the error unobserved; the destructor joins the worker
    // first, so the failure is always recorded before the AsyncLog dies.
  }

  obs::Snapshot snap = obs_scope.registry.snapshot();
  EXPECT_EQ(snap.counter_sum("ickpt_async_poisoned_total"), 1u);
  EXPECT_EQ(snap.counter_sum("ickpt_async_unobserved_errors_total"), 1u);
  const auto* retries =
      snap.find("ickpt_storage_retries_total", {{"errno", "EIO"}});
  ASSERT_NE(retries, nullptr);
  EXPECT_GT(retries->counter_value, 0u);
  EXPECT_GT(snap.counter_sum("ickpt_storage_faults_total"), 0u);

  std::vector<obs::TraceEvent> events = obs_scope.collector.drain();
  EXPECT_GE(count_events(events, "async.poisoned"), 1u);
  EXPECT_GE(count_events(events, "async.unobserved_error"), 1u);
  EXPECT_GE(count_events(events, "storage.fault"), 1u);

  std::remove(path.c_str());
}

}  // namespace
