// Span tracing: inertness without a collector, ring overflow (drop-oldest),
// multi-thread collection, and Chrome trace_event JSON well-formedness.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.hpp"

using namespace ickpt;

namespace {

struct ScopedCollector {
  explicit ScopedCollector(obs::TraceCollector& c) {
    obs::TraceCollector::install(&c);
  }
  ~ScopedCollector() { obs::TraceCollector::install(nullptr); }
};

TEST(ObsTrace, InertWithoutCollector) {
  ASSERT_EQ(obs::TraceCollector::installed(), nullptr);
  {
    obs::Span span("nothing");
    EXPECT_FALSE(span.active());
    span.note("ignored");
  }
  obs::instant("also.nothing");
  // A collector installed afterwards must not see the pre-install events.
  obs::TraceCollector collector;
  ScopedCollector scoped(collector);
  for (const obs::TraceEvent& ev : collector.drain())
    EXPECT_STRNE(ev.name, "nothing");
}

TEST(ObsTrace, SpansAndInstantsRecorded) {
  obs::TraceCollector collector;
  ScopedCollector scoped(collector);
  (void)collector.drain();  // shed any leftovers from earlier tests
  {
    obs::Span span("outer", "test");
    EXPECT_TRUE(span.active());
    span.note("hello \"quoted\" note");
    obs::instant("marker", "test", "tick");
  }
  std::vector<obs::TraceEvent> events = collector.drain();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: the span started before the instant fired.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_STREQ(events[0].note, "hello \"quoted\" note");
  EXPECT_STREQ(events[1].name, "marker");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[1].dur_ns, 0u);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);

  // Drain clears the rings.
  EXPECT_TRUE(collector.drain().empty());
}

TEST(ObsTrace, RingOverflowDropsOldest) {
  obs::TraceCollector collector({.ring_capacity = 8});
  ScopedCollector scoped(collector);
  (void)collector.drain();
  // A fresh thread gets a fresh ring sized from the installed collector
  // (this process's main-thread ring may predate it with a larger size).
  std::thread emitter([] {
    for (int i = 0; i < 20; ++i)
      obs::instant(("ev" + std::to_string(i)).c_str(), "test");
  });
  emitter.join();
  std::vector<obs::TraceEvent> events = collector.drain();
  ASSERT_EQ(events.size(), 8u);
  // Drop-oldest: the survivors are the newest 8, in order.
  for (int i = 0; i < 8; ++i)
    EXPECT_STREQ(events[i].name, ("ev" + std::to_string(12 + i)).c_str());
  EXPECT_GE(collector.dropped(), 12u);
}

TEST(ObsTrace, CollectsAcrossThreadsWithDistinctTids) {
  obs::TraceCollector collector;
  ScopedCollector scoped(collector);
  (void)collector.drain();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t)
    threads.emplace_back([t] {
      obs::Span span(("thread" + std::to_string(t)).c_str(), "test");
    });
  for (std::thread& t : threads) t.join();
  std::vector<obs::TraceEvent> events = collector.drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_NE(events[1].tid, events[2].tid);
  EXPECT_NE(events[0].tid, events[2].tid);
  for (const obs::TraceEvent& ev : events) EXPECT_EQ(ev.phase, 'X');
}

/// Minimal structural JSON validation: balanced braces/brackets outside
/// strings, all strings closed, no raw control characters.
void expect_well_formed_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      ASSERT_GE(static_cast<unsigned char>(c), 0x20)
          << "raw control character inside a JSON string";
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"')
      in_string = true;
    else if (c == '{' || c == '[')
      ++depth;
    else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced close";
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string";
  EXPECT_EQ(depth, 0) << "unbalanced braces";
}

TEST(ObsTrace, ChromeJsonWellFormed) {
  obs::TraceCollector collector;
  ScopedCollector scoped(collector);
  (void)collector.drain();
  {
    obs::Span span("span \"with\" quotes", "cat\\slash");
    span.note("note\nnewline and \"quote\"");
  }
  obs::instant("tick", "test", "instant note");
  std::string json =
      obs::TraceCollector::to_chrome_json(collector.drain());

  expect_well_formed_json(json);
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("span \\\"with\\\" quotes"), std::string::npos);
  EXPECT_NE(json.find("cat\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("note\\nnewline"), std::string::npos);
  // Instants carry a scope and no dur.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(ObsTrace, ChromeJsonOfNothingIsStillValid) {
  std::string json = obs::TraceCollector::to_chrome_json({});
  expect_well_formed_json(json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

}  // namespace
