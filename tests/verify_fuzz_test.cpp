// Fault-injection fuzzing of the offline fsck: deterministic mutations of a
// valid checkpoint log — single-bit flips, truncations, duplicated frames and
// records — must always produce at least one finding and must never crash or
// throw out of fsck_bytes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <set>

#include "core/manager.hpp"
#include "io/stable_storage.hpp"
#include "tests/test_types.hpp"
#include "verify/fsck.hpp"

namespace ickpt::testing {
namespace {

constexpr std::size_t kFrameHeaderSize = 20;  // magic + seq + len + crc

core::TypeRegistry test_registry() {
  core::TypeRegistry registry;
  register_test_types(registry);
  return registry;
}

/// Bytes of a valid multi-frame full+incremental chain.
std::vector<std::uint8_t> valid_log_bytes() {
  std::string path = ::testing::TempDir() + "/ickpt_fuzz_seed.log";
  std::remove(path.c_str());
  {
    core::Heap heap;
    Inner* root = heap.make<Inner>();
    Leaf* leaf = heap.make<Leaf>();
    root->set_left(leaf);
    root->set_right(heap.make<Inner>());
    core::CheckpointManager manager(path, {.full_interval = 3});
    for (int i = 0; i < 5; ++i) {
      leaf->set_i32(i);
      manager.take(*root);
    }
  }
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  std::remove(path.c_str());
  return bytes;
}

/// Offsets at which a frame ends (truncating exactly there leaves a shorter
/// but still well-formed log, so those cuts prove nothing).
std::set<std::size_t> frame_boundaries(const std::vector<std::uint8_t>& bytes) {
  std::set<std::size_t> boundaries;
  std::size_t offset = 0;
  while (offset + kFrameHeaderSize <= bytes.size()) {
    std::size_t len = (std::size_t(bytes[offset + 12]) << 24) |
                      (std::size_t(bytes[offset + 13]) << 16) |
                      (std::size_t(bytes[offset + 14]) << 8) |
                      std::size_t(bytes[offset + 15]);
    offset += kFrameHeaderSize + len;
    boundaries.insert(offset);
  }
  return boundaries;
}

TEST(VerifyFuzz, BaselineLogIsClean) {
  auto registry = test_registry();
  auto report = verify::fsck_bytes(valid_log_bytes(), registry);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

TEST(VerifyFuzz, SingleBitFlipsAlwaysReported) {
  // Every byte of every frame is covered by the magic check or the CRC, so
  // any single-bit flip must surface as a finding.
  auto registry = test_registry();
  const auto bytes = valid_log_bytes();
  ASSERT_FALSE(bytes.empty());
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 256; ++trial) {
    auto mutated = bytes;
    std::size_t pos = rng() % mutated.size();
    mutated[pos] ^= std::uint8_t(1u << (rng() % 8));
    verify::Report report;
    ASSERT_NO_THROW(report = verify::fsck_bytes(mutated, registry))
        << "bit flip at byte " << pos;
    EXPECT_FALSE(report.findings.empty()) << "bit flip at byte " << pos
                                          << " went undetected";
  }
}

TEST(VerifyFuzz, TruncationsAlwaysReported) {
  auto registry = test_registry();
  const auto bytes = valid_log_bytes();
  const auto boundaries = frame_boundaries(bytes);
  std::mt19937 rng(42);
  int tested = 0;
  while (tested < 64) {
    std::size_t cut = 1 + rng() % (bytes.size() - 1);
    if (boundaries.count(cut) != 0) continue;  // a boundary cut is a valid log
    ++tested;
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + long(cut));
    verify::Report report;
    ASSERT_NO_THROW(report = verify::fsck_bytes(truncated, registry))
        << "truncated at byte " << cut;
    EXPECT_FALSE(report.findings.empty())
        << "truncation at byte " << cut << " went undetected";
  }
}

TEST(VerifyFuzz, DuplicatedFrameIsReported) {
  auto registry = test_registry();
  const auto bytes = valid_log_bytes();
  const auto boundaries = frame_boundaries(bytes);
  // Re-append each frame's raw bytes at the end: the repeated sequence
  // number breaks monotonicity and the scan flags the tail.
  std::size_t start = 0;
  for (std::size_t end : boundaries) {
    auto mutated = bytes;
    mutated.insert(mutated.end(), bytes.begin() + long(start),
                   bytes.begin() + long(end));
    verify::Report report;
    ASSERT_NO_THROW(report = verify::fsck_bytes(mutated, registry));
    EXPECT_FALSE(report.findings.empty())
        << "duplicated frame [" << start << ", " << end << ") undetected";
    start = end;
  }
}

TEST(VerifyFuzz, DuplicatedRecordIsReported) {
  // Rebuild the first frame's payload with its first record appended twice;
  // fsck must flag the duplicate id (and must not crash on the re-framed
  // log, which is CRC-valid by construction).
  auto registry = test_registry();
  auto scan = io::StableStorage::scan_bytes(valid_log_bytes());
  ASSERT_FALSE(scan.frames.empty());
  const auto& payload = scan.frames.front().payload;

  // Locate the first record: parse the header, then copy up to the second
  // record tag (frame 0 of the chain is full, so it has several records).
  auto header_end = [&] {
    io::DataReader r(payload);
    r.read_u8();  // magic
    r.read_u8();  // version
    r.read_u8();  // mode
    r.read_u64();
    std::uint64_t nroots = r.read_varint();
    for (std::uint64_t i = 0; i < nroots; ++i) r.read_varint();
    return payload.size() - r.remaining();
  }();
  // Decode the first record to find where it ends.
  io::DataReader r(payload.data() + header_end, payload.size() - header_end);
  ASSERT_EQ(r.read_u8(), core::kRecordTag);
  std::uint64_t type = r.read_varint();
  r.read_varint();  // id
  if (type == Inner::kTypeId) {
    r.read_i32();
    r.read_varint();
    r.read_varint();
  } else {
    ASSERT_EQ(type, Leaf::kTypeId);
    r.read_i32();
    r.read_i64();
    r.read_f64();
    r.read_bool();
  }
  std::size_t first_record_end = payload.size() - r.remaining();

  std::vector<std::uint8_t> doubled(payload.begin(),
                                    payload.begin() + long(first_record_end));
  doubled.insert(doubled.end(), payload.begin() + long(header_end),
                 payload.begin() + long(first_record_end));
  doubled.insert(doubled.end(), payload.begin() + long(first_record_end),
                 payload.end());

  std::string path = ::testing::TempDir() + "/ickpt_fuzz_dup.log";
  std::remove(path.c_str());
  {
    io::StableStorage storage(path);
    storage.append(doubled);
  }
  verify::Report report;
  ASSERT_NO_THROW(report = verify::fsck_log(path, registry));
  EXPECT_EQ(report.count("dup-record"), 1u) << report.to_string();
  std::remove(path.c_str());
}

TEST(VerifyFuzz, GarbageBytesNeverCrash) {
  auto registry = test_registry();
  std::mt19937 rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::uint8_t> garbage(rng() % 4096);
    for (auto& b : garbage) b = std::uint8_t(rng());
    ASSERT_NO_THROW((void)verify::fsck_bytes(garbage, registry));
  }
}

}  // namespace
}  // namespace ickpt::testing
