// Epoch-history oracle for time-travel recovery.
//
// A randomized synthetic workload mutates an Inner-chain graph and records
// the *entire* live state at every epoch it checkpoints. The oracle then
// proves, state-for-state, that recover_to_epoch(N) reproduces exactly the
// recorded snapshot for every epoch still on the log — across sync, async,
// and parallel capture, before and after each binomial compaction, and
// across a process restart. Epochs the retention policy dropped must fail
// with EpochNotRetainedError naming the nearest retained neighbors — a
// wrong-state success anywhere here is the one unforgivable outcome.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "core/retention.hpp"
#include "io/file_io.hpp"
#include "tests/test_types.hpp"
#include "verify/fsck.hpp"

namespace ickpt::testing {
namespace {

using core::CheckpointManager;
using core::CompactOptions;
using core::CompactPolicy;
using core::EpochNotRetainedError;
using core::ManagerOptions;
using core::Mode;
using core::RetentionManifest;
using core::RetentionPolicy;
using core::TypeRegistry;

constexpr std::size_t kInners = 6;

/// Everything observable about the workload graph at one moment.
struct Snapshot {
  std::vector<std::int32_t> tags;
  std::vector<std::int32_t> i32s;
  std::vector<std::int64_t> i64s;
  std::vector<double> f64s;
  std::vector<bool> flags;

  bool operator==(const Snapshot&) const = default;
};

/// The synthetic workload: a right-chain of Inners, each holding one Leaf.
struct Workload {
  core::Heap heap;
  std::vector<Inner*> inners;
  std::vector<Leaf*> leaves;

  Workload() {
    for (std::size_t i = 0; i < kInners; ++i) {
      Inner* inner = heap.make<Inner>();
      Leaf* leaf = heap.make<Leaf>();
      inner->set_left(leaf);
      inners.push_back(inner);
      leaves.push_back(leaf);
      if (i > 0) inners[i - 1]->set_right(inner);
    }
  }

  Inner* root() { return inners.front(); }

  /// Mutate a random nonempty subset of the graph.
  void mutate(std::mt19937_64& rng) {
    bool touched = false;
    for (std::size_t i = 0; i < kInners; ++i) {
      if ((rng() & 3) == 0) {
        inners[i]->set_tag(static_cast<std::int32_t>(rng() % 100000));
        touched = true;
      }
      if ((rng() & 1) == 0) {
        leaves[i]->set_i32(static_cast<std::int32_t>(rng()));
        leaves[i]->set_i64(static_cast<std::int64_t>(rng()));
        leaves[i]->set_f64(static_cast<double>(rng() % 100000) / 13.0);
        leaves[i]->set_flag((rng() & 1) != 0);
        touched = true;
      }
    }
    if (!touched) leaves[0]->set_i32(static_cast<std::int32_t>(rng()));
  }

  Snapshot snap() const {
    Snapshot s;
    for (std::size_t i = 0; i < kInners; ++i) {
      s.tags.push_back(inners[i]->tag);
      s.i32s.push_back(leaves[i]->i32);
      s.i64s.push_back(leaves[i]->i64);
      s.f64s.push_back(leaves[i]->f64);
      s.flags.push_back(leaves[i]->flag);
    }
    return s;
  }
};

/// Snapshot a *recovered* graph by walking the Inner right-chain.
Snapshot snap_recovered(Inner* root) {
  Snapshot s;
  for (Inner* inner = root; inner != nullptr; inner = inner->right) {
    s.tags.push_back(inner->tag);
    EXPECT_NE(inner->left, nullptr);
    if (inner->left == nullptr) break;
    s.i32s.push_back(inner->left->i32);
    s.i64s.push_back(inner->left->i64);
    s.f64s.push_back(inner->left->f64);
    s.flags.push_back(inner->left->flag);
  }
  return s;
}

using Oracle = std::map<Epoch, Snapshot>;

class TimeTravelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ickpt_timetravel_test.log";
    clean_files();
    register_test_types(registry_);
  }
  void TearDown() override { clean_files(); }

  void clean_files() {
    std::remove(path_.c_str());
    std::remove((path_ + ".retain").c_str());
    std::remove((path_ + ".compact").c_str());
    std::remove((path_ + ".bak").c_str());
    for (int i = 0; i < 8; ++i)
      std::remove((path_ + ".quarantine." + std::to_string(i)).c_str());
  }

  /// Run `epochs` checkpoints of a fresh workload, recording the oracle.
  Oracle run_workload(Workload& w, ManagerOptions opts, unsigned epochs,
                      std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    Oracle oracle;
    CheckpointManager manager(path_, opts);
    for (unsigned i = 0; i < epochs; ++i) {
      w.mutate(rng);
      auto take = manager.take(*w.root());
      oracle[take.epoch] = w.snap();
    }
    manager.flush();
    return oracle;
  }

  /// recover_to_epoch(e) must reproduce oracle[e] exactly — state equality,
  /// the frame's own epoch, never a neighbor's state.
  void expect_epoch_matches(Epoch e, const Oracle& oracle) {
    auto result = CheckpointManager::recover_to_epoch(path_, registry_, e);
    ASSERT_EQ(result.state.epoch, e);
    ASSERT_TRUE(oracle.count(e)) << "oracle has no snapshot for epoch " << e;
    EXPECT_EQ(snap_recovered(result.state.root_as<Inner>()), oracle.at(e))
        << "state mismatch at epoch " << e;
  }

  std::string path_;
  TypeRegistry registry_;
};

// --- every epoch, every capture mode ---------------------------------------

// Before any compaction the whole history is on the log: every epoch ever
// taken must recover to exactly its oracle snapshot. Run under all three
// capture pipelines — the retention machinery must not care how the frames
// were produced.
TEST_F(TimeTravelTest, EveryEpochMatchesOracleSyncCapture) {
  Workload w;
  ManagerOptions opts;
  opts.full_interval = 4;
  Oracle oracle = run_workload(w, opts, 20, 0x71ABE001);
  for (const auto& entry : oracle) expect_epoch_matches(entry.first, oracle);
}

TEST_F(TimeTravelTest, EveryEpochMatchesOracleAsyncCapture) {
  Workload w;
  ManagerOptions opts;
  opts.full_interval = 5;
  opts.async_io = true;
  Oracle oracle = run_workload(w, opts, 17, 0x71ABE002);
  for (const auto& entry : oracle) expect_epoch_matches(entry.first, oracle);
}

TEST_F(TimeTravelTest, EveryEpochMatchesOracleParallelCapture) {
  Workload w;
  ManagerOptions opts;
  opts.full_interval = 3;
  opts.capture_threads = 4;
  Oracle oracle = run_workload(w, opts, 15, 0x71ABE003);
  for (const auto& entry : oracle) expect_epoch_matches(entry.first, oracle);
}

// --- compaction -------------------------------------------------------------

// After a binomial compaction, every *retained* epoch still matches its
// oracle snapshot, every dropped epoch fails with EpochNotRetainedError
// naming the nearest retained neighbors, and fsck finds a log that honors
// its own declaration.
TEST_F(TimeTravelTest, PolicyCompactionPreservesRetainedHistory) {
  Workload w;
  ManagerOptions opts;
  opts.full_interval = 4;
  Oracle oracle = run_workload(w, opts, 24, 0x71ABE004);
  const Epoch newest = oracle.rbegin()->first;

  auto compacted = CheckpointManager::compact(
      path_, registry_, CompactOptions{CompactPolicy::kBinomial});
  EXPECT_EQ(compacted.epochs_dropped, 0u);
  EXPECT_EQ(compacted.retained, RetentionPolicy::schedule(newest));

  // The manifest is published and declares exactly what was written.
  auto manifest = RetentionManifest::load(path_);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->newest, newest);
  EXPECT_EQ(manifest->epochs, compacted.retained);

  for (Epoch e = 0; e <= newest; ++e) {
    if (RetentionPolicy::retained(e, newest)) {
      expect_epoch_matches(e, oracle);
    } else {
      try {
        CheckpointManager::recover_to_epoch(path_, registry_, e);
        FAIL() << "dropped epoch " << e << " recovered — wrong-state success";
      } catch (const EpochNotRetainedError& err) {
        EXPECT_EQ(err.target(), e);
        // Nearest neighbors straight off the schedule.
        const auto& sched = compacted.retained;
        auto above = std::upper_bound(sched.begin(), sched.end(), e);
        ASSERT_NE(above, sched.begin());
        ASSERT_NE(above, sched.end());
        ASSERT_TRUE(err.below().has_value());
        ASSERT_TRUE(err.above().has_value());
        EXPECT_EQ(*err.below(), *(above - 1));
        EXPECT_EQ(*err.above(), *above);
        EXPECT_NE(std::string(err.what()).find("not retained"),
                  std::string::npos)
            << err.what();
      }
    }
  }

  auto report = verify::fsck_log(path_, registry_);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// Retention survives *repeated* compaction with live epochs in between:
// monotonicity guarantees compaction N+1 finds every epoch it wants still
// present after compaction N.
TEST_F(TimeTravelTest, RepeatedCompactionStaysConsistentWithOracle) {
  Workload w;
  std::mt19937_64 rng(0x71ABE005);
  Oracle oracle;
  ManagerOptions opts;
  opts.full_interval = 4;
  Epoch newest = 0;
  for (int round = 0; round < 3; ++round) {
    {
      CheckpointManager manager(path_, opts);
      for (int i = 0; i < 9; ++i) {
        w.mutate(rng);
        auto take = manager.take(*w.root());
        oracle[take.epoch] = w.snap();
        newest = take.epoch;
      }
    }
    auto compacted = CheckpointManager::compact(
        path_, registry_, CompactOptions{CompactPolicy::kBinomial});
    EXPECT_EQ(compacted.epochs_dropped, 0u)
        << "round " << round << ": an epoch the schedule wanted was missing";
    EXPECT_EQ(compacted.retained, RetentionPolicy::schedule(newest));
    for (Epoch e : compacted.retained) expect_epoch_matches(e, oracle);
    auto report = verify::fsck_log(path_, registry_);
    EXPECT_TRUE(report.clean()) << report.to_string();
  }
}

// The epoch counter must keep advancing across a compaction: retained
// frames carry seq == epoch, so a fresh manager resumes after the newest.
TEST_F(TimeTravelTest, EpochsResumeAfterCompaction) {
  Workload w;
  ManagerOptions opts;
  opts.full_interval = 4;
  Oracle oracle = run_workload(w, opts, 10, 0x71ABE006);
  const Epoch newest = oracle.rbegin()->first;
  CheckpointManager::compact(path_, registry_,
                             CompactOptions{CompactPolicy::kBinomial});
  CheckpointManager manager(path_, opts);
  EXPECT_EQ(manager.next_epoch(), newest + 1);
  w.leaves[0]->set_i32(777);
  EXPECT_EQ(manager.take(*w.root()).epoch, newest + 1);
}

// --- restart ----------------------------------------------------------------

// Kill the process (destroy manager + heap), recover the newest state into
// a fresh heap, keep checkpointing, compact — the oracle must hold across
// the whole lifetime, including epochs taken before the restart.
TEST_F(TimeTravelTest, OracleHoldsAcrossRestartAndCompaction) {
  std::mt19937_64 rng(0x71ABE007);
  Oracle oracle;
  ManagerOptions opts;
  opts.full_interval = 4;
  {
    Workload w;
    CheckpointManager manager(path_, opts);
    for (int i = 0; i < 13; ++i) {
      w.mutate(rng);
      auto take = manager.take(*w.root());
      oracle[take.epoch] = w.snap();
    }
  }  // crash

  // Second life: recover newest, mutate the recovered graph directly.
  auto recovered = CheckpointManager::recover(path_, registry_);
  Inner* root = recovered.state.root_as<Inner>();
  ASSERT_EQ(snap_recovered(root), oracle.rbegin()->second);
  {
    CheckpointManager manager(path_, opts);
    std::mt19937_64 rng2(0x71ABE008);
    for (int i = 0; i < 8; ++i) {
      // Mutate the recovered chain the same way the workload would.
      for (Inner* inner = root; inner != nullptr; inner = inner->right) {
        if ((rng2() & 1) == 0)
          inner->left->set_i32(static_cast<std::int32_t>(rng2()));
        if ((rng2() & 3) == 0)
          inner->set_tag(static_cast<std::int32_t>(rng2() % 100000));
      }
      auto take = manager.take(*root);
      oracle[take.epoch] = snap_recovered(root);
    }
  }

  // Pre-restart epochs are still addressable...
  for (Epoch e : {Epoch{0}, Epoch{5}, Epoch{12}}) expect_epoch_matches(e, oracle);
  // ...and stay addressable (when retained) after a policy compaction.
  const Epoch newest = oracle.rbegin()->first;
  auto compacted = CheckpointManager::compact(
      path_, registry_, CompactOptions{CompactPolicy::kBinomial});
  EXPECT_EQ(compacted.epochs_dropped, 0u);
  for (Epoch e : compacted.retained) expect_epoch_matches(e, oracle);
  EXPECT_EQ(compacted.retained, RetentionPolicy::schedule(newest));
}

// --- history ----------------------------------------------------------------

TEST_F(TimeTravelTest, HistoryListsEveryEpochThenOnlyRetained) {
  Workload w;
  ManagerOptions opts;
  opts.full_interval = 4;
  Oracle oracle = run_workload(w, opts, 12, 0x71ABE009);
  const Epoch newest = oracle.rbegin()->first;

  auto history = CheckpointManager::history(path_);
  ASSERT_EQ(history.size(), oracle.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].epoch, static_cast<Epoch>(i));
    EXPECT_TRUE(history[i].live);
    EXPECT_FALSE(history[i].resync);
    EXPECT_EQ(history[i].mode,
              i % opts.full_interval == 0 ? Mode::kFull : Mode::kIncremental);
  }

  CheckpointManager::compact(path_, registry_,
                             CompactOptions{CompactPolicy::kBinomial});
  history = CheckpointManager::history(path_);
  std::vector<Epoch> listed;
  for (const auto& entry : history) {
    listed.push_back(entry.epoch);
    EXPECT_EQ(entry.mode, Mode::kFull) << "epoch " << entry.epoch;
    EXPECT_EQ(entry.seq, entry.epoch) << "epoch " << entry.epoch;
  }
  EXPECT_EQ(listed, RetentionPolicy::schedule(newest));
}

// --- fsck: a half-applied policy is damage, not tidiness --------------------

// Doctor the manifest to declare a *subset* of what the log carries: fsck
// must flag every undeclared epoch (retention-undeclared, error), because a
// policy compaction that died halfway looks exactly like this.
TEST_F(TimeTravelTest, FsckFlagsUndeclaredEpochs) {
  Workload w;
  ManagerOptions opts;
  opts.full_interval = 4;
  run_workload(w, opts, 12, 0x71ABE00A);

  CheckpointManager::compact(path_, registry_,
                             CompactOptions{CompactPolicy::kBinomial});
  auto manifest = RetentionManifest::load(path_);
  ASSERT_TRUE(manifest.has_value());
  ASSERT_GE(manifest->epochs.size(), 3u);
  // Drop one interior declared epoch: the frame is now "undeclared".
  const Epoch dropped = manifest->epochs[1];
  manifest->epochs.erase(manifest->epochs.begin() + 1);
  manifest->save(path_);

  auto report = verify::fsck_log(path_, registry_);
  EXPECT_FALSE(report.clean());
  const auto* finding = report.first("retention-undeclared");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->severity, verify::Severity::kError);
  EXPECT_NE(finding->message.find(std::to_string(dropped)),
            std::string::npos)
      << finding->message;
}

// The converse damage: the manifest declares an epoch the log lost.
TEST_F(TimeTravelTest, FsckFlagsMissingDeclaredEpochs) {
  Workload w;
  ManagerOptions opts;
  opts.full_interval = 4;
  run_workload(w, opts, 12, 0x71ABE00B);
  CheckpointManager::compact(path_, registry_,
                             CompactOptions{CompactPolicy::kBinomial});
  auto manifest = RetentionManifest::load(path_);
  ASSERT_TRUE(manifest.has_value());
  // Declare an epoch that is on the schedule for `newest` but (being on the
  // schedule already) exists — so instead declare one off-schedule: both
  // retention-policy and retention-missing must fire.
  manifest->epochs.insert(
      std::upper_bound(manifest->epochs.begin(), manifest->epochs.end(),
                       Epoch{3}),
      Epoch{3});
  manifest->save(path_);

  auto report = verify::fsck_log(path_, registry_);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.first("retention-missing"), nullptr) << report.to_string();
}

// An unparseable manifest is itself a finding, not an excuse to skip the
// audit silently.
TEST_F(TimeTravelTest, FsckFlagsGarbageManifest) {
  Workload w;
  ManagerOptions opts;
  run_workload(w, opts, 6, 0x71ABE00C);
  io::write_file(path_ + ".retain", {'j', 'u', 'n', 'k', '\n'});
  auto report = verify::fsck_log(path_, registry_);
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.first("retention-policy"), nullptr) << report.to_string();
}

// --- manifest round-trip ----------------------------------------------------

TEST_F(TimeTravelTest, ManifestRoundTrips) {
  EXPECT_FALSE(RetentionManifest::load(path_).has_value());
  RetentionManifest m;
  m.newest = 24;
  m.epochs = RetentionPolicy::schedule(24);
  m.save(path_);
  auto loaded = RetentionManifest::load(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->newest, m.newest);
  EXPECT_EQ(loaded->epochs, m.epochs);
  EXPECT_TRUE(loaded->declares(24));
  EXPECT_TRUE(loaded->declares(0));
  EXPECT_FALSE(loaded->declares(21));
  RetentionManifest::remove(path_);
  EXPECT_FALSE(RetentionManifest::load(path_).has_value());
}

// A squash compaction drops the history — and must drop the declaration
// with it, or fsck would flag the squashed log as damaged.
TEST_F(TimeTravelTest, SquashCompactionRemovesManifest) {
  Workload w;
  ManagerOptions opts;
  opts.full_interval = 4;
  Oracle oracle = run_workload(w, opts, 10, 0x71ABE00D);
  CheckpointManager::compact(path_, registry_,
                             CompactOptions{CompactPolicy::kBinomial});
  ASSERT_TRUE(RetentionManifest::load(path_).has_value());
  CheckpointManager::compact(path_, registry_);  // kSquashAll shorthand
  EXPECT_FALSE(RetentionManifest::load(path_).has_value());
  auto report = verify::fsck_log(path_, registry_);
  EXPECT_TRUE(report.clean()) << report.to_string();
  // Newest state survives the squash.
  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_EQ(snap_recovered(result.state.root_as<Inner>()),
            oracle.rbegin()->second);
}

}  // namespace
}  // namespace ickpt::testing
