// Unit tests for the io substrate: typed writer/reader round-trips, buffer
// boundary behaviour, varints, CRC-32 vectors, and file sinks.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <random>

#include "io/byte_sink.hpp"
#include "io/crc32.hpp"
#include "io/data_reader.hpp"
#include "io/data_writer.hpp"
#include "io/file_io.hpp"

namespace ickpt::io {
namespace {

TEST(DataWriter, ScalarRoundTrip) {
  VectorSink sink;
  {
    DataWriter w(sink);
    w.write_u8(0xAB);
    w.write_bool(true);
    w.write_bool(false);
    w.write_u16(0xBEEF);
    w.write_u32(0xDEADBEEF);
    w.write_u64(0x0123456789ABCDEFull);
    w.write_i32(-42);
    w.write_i64(-1234567890123LL);
    w.write_f32(3.5F);
    w.write_f64(-2.25);
    w.flush();
  }
  DataReader r(sink.bytes());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_EQ(r.read_u16(), 0xBEEF);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_i64(), -1234567890123LL);
  EXPECT_EQ(r.read_f32(), 3.5F);
  EXPECT_EQ(r.read_f64(), -2.25);
  EXPECT_TRUE(r.at_end());
}

TEST(DataWriter, BigEndianLayout) {
  VectorSink sink;
  {
    DataWriter w(sink);
    w.write_u32(0x01020304);
    w.flush();
  }
  ASSERT_EQ(sink.bytes().size(), 4u);
  EXPECT_EQ(sink.bytes()[0], 0x01);
  EXPECT_EQ(sink.bytes()[1], 0x02);
  EXPECT_EQ(sink.bytes()[2], 0x03);
  EXPECT_EQ(sink.bytes()[3], 0x04);
}

TEST(DataWriter, StringRoundTrip) {
  VectorSink sink;
  {
    DataWriter w(sink);
    w.write_string("");
    w.write_string("hello");
    w.write_string(std::string(1000, 'x'));
    w.flush();
  }
  DataReader r(sink.bytes());
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), std::string(1000, 'x'));
  EXPECT_TRUE(r.at_end());
}

TEST(DataWriter, BufferBoundarySpill) {
  // Tiny buffer: every write crosses the boundary at some point.
  VectorSink sink;
  {
    DataWriter w(sink, 16);
    for (std::uint32_t i = 0; i < 1000; ++i) w.write_u32(i);
    w.flush();
  }
  DataReader r(sink.bytes());
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(r.read_u32(), i);
  EXPECT_TRUE(r.at_end());
}

TEST(DataWriter, LargeBlockBypassesBuffer) {
  VectorSink sink;
  std::vector<std::uint8_t> block(200000, 0x5A);
  {
    DataWriter w(sink, 1024);
    w.write_u8(1);
    w.write_bytes(block.data(), block.size());
    w.write_u8(2);
    w.flush();
  }
  ASSERT_EQ(sink.bytes().size(), block.size() + 2);
  EXPECT_EQ(sink.bytes().front(), 1);
  EXPECT_EQ(sink.bytes()[1], 0x5A);
  EXPECT_EQ(sink.bytes().back(), 2);
}

TEST(DataWriter, BytesWrittenCountsBuffered) {
  VectorSink sink;
  DataWriter w(sink);
  EXPECT_EQ(w.bytes_written(), 0u);
  w.write_u32(7);
  EXPECT_EQ(w.bytes_written(), 4u);  // still buffered
  w.flush();
  EXPECT_EQ(w.bytes_written(), 4u);
}

TEST(Varint, RoundTripEdgeValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  VectorSink sink;
  {
    DataWriter w(sink);
    for (std::uint64_t v : cases) w.write_varint(v);
    w.flush();
  }
  DataReader r(sink.bytes());
  for (std::uint64_t v : cases) EXPECT_EQ(r.read_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Varint, SignedZigzagRoundTrip) {
  const std::int64_t cases[] = {0,
                                -1,
                                1,
                                -64,
                                64,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  VectorSink sink;
  {
    DataWriter w(sink);
    for (std::int64_t v : cases) w.write_varint_i64(v);
    w.flush();
  }
  DataReader r(sink.bytes());
  for (std::int64_t v : cases) EXPECT_EQ(r.read_varint_i64(), v);
}

TEST(Varint, SmallValuesAreOneByte) {
  VectorSink sink;
  DataWriter w(sink);
  w.write_varint(127);
  w.flush();
  EXPECT_EQ(sink.size(), 1u);
}

TEST(DataReader, UnderflowThrows) {
  std::vector<std::uint8_t> three{1, 2, 3};
  DataReader r(three);
  EXPECT_THROW(r.read_u32(), CorruptionError);
}

TEST(DataReader, TruncatedVarintThrows) {
  std::vector<std::uint8_t> bytes{0x80, 0x80};  // continuation, then EOF
  DataReader r(bytes);
  EXPECT_THROW(r.read_varint(), CorruptionError);
}

TEST(DataReader, OverlongVarintThrows) {
  std::vector<std::uint8_t> bytes(11, 0x80);
  DataReader r(bytes);
  EXPECT_THROW(r.read_varint(), CorruptionError);
}

TEST(DataReader, RemainingTracksConsumption) {
  std::vector<std::uint8_t> bytes{0, 0, 0, 0, 0, 0, 0, 0};
  DataReader r(bytes);
  EXPECT_EQ(r.remaining(), 8u);
  r.read_u32();
  EXPECT_EQ(r.remaining(), 4u);
  r.read_u32();
  EXPECT_TRUE(r.at_end());
}

TEST(Crc32, KnownVectors) {
  // "123456789" -> 0xCBF43926 (standard CRC-32 check value).
  const char* check = "123456789";
  EXPECT_EQ(Crc32::compute(reinterpret_cast<const std::uint8_t*>(check), 9),
            0xCBF43926u);
  EXPECT_EQ(Crc32::compute(nullptr, 0), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::mt19937 rng(7);
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  Crc32 crc;
  std::size_t off = 0;
  while (off < data.size()) {
    std::size_t n = std::min<std::size_t>(rng() % 257, data.size() - off);
    crc.update(data.data() + off, n);
    off += n;
  }
  EXPECT_EQ(crc.value(), Crc32::compute(data.data(), data.size()));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(128, 0x33);
  std::uint32_t original = Crc32::compute(data.data(), data.size());
  data[64] ^= 0x01;
  EXPECT_NE(Crc32::compute(data.data(), data.size()), original);
}

TEST(CountingSink, CountsWithoutStoring) {
  CountingSink sink;
  DataWriter w(sink);
  for (int i = 0; i < 100; ++i) w.write_u64(static_cast<std::uint64_t>(i));
  w.flush();
  EXPECT_EQ(sink.count(), 800u);
}

TEST(FileIo, SinkRoundTrip) {
  std::string path = ::testing::TempDir() + "/ickpt_io_test.bin";
  {
    FileSink sink(path);
    DataWriter w(sink);
    w.write_u32(0xCAFEBABE);
    w.write_string("stable");
    w.flush();
  }
  auto bytes = read_file(path);
  DataReader r(bytes);
  EXPECT_EQ(r.read_u32(), 0xCAFEBABEu);
  EXPECT_EQ(r.read_string(), "stable");
  std::remove(path.c_str());
}

TEST(FileIo, AppendMode) {
  std::string path = ::testing::TempDir() + "/ickpt_io_append.bin";
  std::remove(path.c_str());
  {
    FileSink sink(path, FileSink::Mode::kAppend);
    std::uint8_t a = 1;
    sink.write(&a, 1);
  }
  {
    FileSink sink(path, FileSink::Mode::kAppend);
    std::uint8_t b = 2;
    sink.write(&b, 1);
  }
  auto bytes = read_file(path);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[1], 2);
  std::remove(path.c_str());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/ickpt/nope.bin"), IoError);
}

}  // namespace
}  // namespace ickpt::io
