// Pattern soundness checker: the paper's phase patterns are provably sound
// against the phase model, deliberately unsound patterns are refuted with a
// witness statement, over-conservative patterns are flagged as perf notes,
// and the compiler's verify_pattern gate refuses structurally inconsistent
// patterns.
#include <gtest/gtest.h>

#include "analysis/parser.hpp"
#include "analysis/shapes.hpp"
#include "spec/compiler.hpp"
#include "verify/pattern_check.hpp"

namespace ickpt::testing {
namespace {

using analysis::Phase;
using spec::ModStatus;
using spec::PatternNode;

TEST(PatternCheck, PaperPhasePatternsAreSound) {
  for (Phase phase : {Phase::kStructureOnly, Phase::kSideEffect,
                      Phase::kBindingTime, Phase::kEvalTime}) {
    auto report = verify::check_phase_pattern(phase);
    EXPECT_TRUE(report.clean()) << report.to_string();
    EXPECT_EQ(report.count("unsound-skip"), 0u);
    EXPECT_EQ(report.count("unsound-unmodified"), 0u);
  }
}

TEST(PatternCheck, StructureOnlyPatternHasNoFindingsForMain) {
  // main() transitively writes every global, so the all-tests pattern is
  // neither unsound nor conservative.
  auto report = verify::check_phase_pattern(Phase::kStructureOnly);
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

TEST(PatternCheck, SkipOverWrittenGlobalIsRefutedWithWitness) {
  // The binding-time pattern skips the SE subtree; against the side-effect
  // phase (which rewrites the SE sets) that skip silently drops
  // modifications.
  auto report = verify::check_attributes_pattern(
      Phase::kSideEffect, analysis::make_phase_pattern(Phase::kBindingTime));
  EXPECT_FALSE(report.clean()) << report.to_string();
  const verify::Finding* finding = report.first("unsound-skip");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->position, "/0");
  EXPECT_GE(finding->witness_stmt, 0);
  EXPECT_GT(finding->witness_line, 0);
  EXPECT_NE(finding->message.find("se_sets"), std::string::npos);
}

TEST(PatternCheck, UnmodifiedOverWrittenGlobalIsRefuted) {
  // Claim the BT leaf provably unmodified during the binding-time phase.
  PatternNode pattern = analysis::make_phase_pattern(Phase::kBindingTime);
  pattern.children[1].children[0] = PatternNode::leaf(ModStatus::kUnmodified);
  auto report = verify::check_attributes_pattern(Phase::kBindingTime, pattern);
  EXPECT_FALSE(report.clean()) << report.to_string();
  const verify::Finding* finding = report.first("unsound-unmodified");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->position, "/1/0");
  EXPECT_GE(finding->witness_stmt, 0);
}

TEST(PatternCheck, OverConservativePatternFlaggedAsPerfNote) {
  // The all-tests pattern against the side-effect phase keeps runtime tests
  // on the BT/ET subtrees the phase provably never touches.
  auto report = verify::check_attributes_pattern(
      Phase::kSideEffect, analysis::make_phase_pattern(Phase::kStructureOnly));
  EXPECT_TRUE(report.clean()) << report.to_string();  // perf bug, not safety
  EXPECT_GE(report.count("over-conservative"), 2u) << report.to_string();
  const verify::Finding* finding = report.first("over-conservative");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, verify::Severity::kNote);
}

TEST(PatternCheck, RedundantRecordFlaggedAsPerfNote) {
  PatternNode pattern = analysis::make_phase_pattern(Phase::kBindingTime);
  pattern.children[2] = PatternNode::leaf(ModStatus::kModified);
  pattern.children[2].children.push_back(
      PatternNode::leaf(ModStatus::kMaybeModified));
  auto report = verify::check_attributes_pattern(Phase::kBindingTime, pattern);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.count("redundant-record"), 1u) << report.to_string();
}

TEST(PatternCheck, RedundantRecordNoteCarriesWriterWitness) {
  // et_entry is written by build (not by the binding-time phase): the
  // record is stale-but-live data, so the note must name the writing
  // function and point at the refuting assignment.
  PatternNode pattern = analysis::make_phase_pattern(Phase::kBindingTime);
  pattern.children[2] = PatternNode::leaf(ModStatus::kModified);
  pattern.children[2].children.push_back(
      PatternNode::leaf(ModStatus::kMaybeModified));
  auto report = verify::check_attributes_pattern(Phase::kBindingTime, pattern);
  EXPECT_TRUE(report.clean()) << report.to_string();
  const verify::Finding* finding = report.first("redundant-record");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->severity, verify::Severity::kNote);
  EXPECT_GE(finding->witness_stmt, 0);
  EXPECT_GT(finding->witness_line, 0);
  EXPECT_NE(finding->message.find("build"), std::string::npos)
      << finding->message;
}

TEST(PatternCheck, RedundantRecordPromotedToWarningWhenNothingWrites) {
  // In a program where no function at all writes the ET subtree's globals,
  // an unconditional record of them can never change across any checkpoint
  // of any phase: promoted from perf note to warning.
  static constexpr const char* kSource = R"(
int attr = 0;
int se_sets = 0;
int bt_entry = 0;
int bt_annot = 0;
int et_entry = 0;
int et_annot = 0;

int run_binding_time(int n) {
  bt_annot = n;
  return n;
}

int main() {
  return run_binding_time(1);
}
)";
  auto program = analysis::parse_program(kSource);
  auto shapes = analysis::AnalysisShapes::make();
  PatternNode pattern = analysis::make_phase_pattern(Phase::kBindingTime);
  pattern.children[2] = PatternNode::leaf(ModStatus::kModified);
  pattern.children[2].children.push_back(
      PatternNode::leaf(ModStatus::kModified));
  auto report =
      verify::check_pattern(*program, "run_binding_time", *shapes.attributes,
                            pattern, verify::attributes_binding());
  EXPECT_TRUE(report.clean()) << report.to_string();  // warning, not error
  ASSERT_GE(report.count("redundant-record"), 2u) << report.to_string();
  const verify::Finding* finding = report.first("redundant-record");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->severity, verify::Severity::kWarning);
  EXPECT_NE(finding->message.find("no function"), std::string::npos)
      << finding->message;
}

TEST(PatternCheck, MissingPhaseFunctionReported) {
  auto program = analysis::parse_program(verify::phase_model_source());
  auto shapes = analysis::AnalysisShapes::make();
  auto report = verify::check_pattern(
      *program, "no_such_phase", *shapes.attributes,
      analysis::make_phase_pattern(Phase::kSideEffect),
      verify::attributes_binding());
  EXPECT_FALSE(report.clean());
  EXPECT_NE(report.first("no-phase-function"), nullptr);
}

TEST(PatternCheck, UnknownGlobalBindingIsWarnedNotJudged) {
  auto program = analysis::parse_program(verify::phase_model_source());
  auto shapes = analysis::AnalysisShapes::make();
  verify::PatternBinding binding;
  binding.bind({0}, "no_such_global");
  auto report = verify::check_pattern(
      *program, "run_side_effect", *shapes.attributes,
      analysis::make_phase_pattern(Phase::kSideEffect), binding);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.count("unknown-global"), 1u);
}

TEST(ValidatePattern, StructuralIssuesAreEnumerated) {
  auto shapes = analysis::AnalysisShapes::make();

  // Wrong child arity.
  PatternNode bad_arity;
  bad_arity.children.push_back(PatternNode::skipped());
  auto issues = spec::validate_pattern(*shapes.attributes, bad_arity);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("1 child pattern(s)"), std::string::npos);

  // expect_absent contradictions.
  PatternNode bad_absent = analysis::make_phase_pattern(Phase::kBindingTime);
  bad_absent.children[0] = PatternNode::absent();
  bad_absent.children[0].children.push_back(PatternNode::skipped());
  bad_absent.children[0].skip = true;
  issues = spec::validate_pattern(*shapes.attributes, bad_absent);
  EXPECT_EQ(issues.size(), 2u);

  // array_count on a shape with no runtime-counted array.
  PatternNode bad_array = analysis::make_phase_pattern(Phase::kBindingTime);
  bad_array.array_count = 7;  // Attributes has only child fields
  issues = spec::validate_pattern(*shapes.attributes, bad_array);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("array_count"), std::string::npos);

  // The paper's patterns are structurally valid.
  for (Phase phase : {Phase::kStructureOnly, Phase::kSideEffect,
                      Phase::kBindingTime, Phase::kEvalTime}) {
    EXPECT_TRUE(spec::validate_pattern(*shapes.attributes,
                                       analysis::make_phase_pattern(phase))
                    .empty());
  }
}

TEST(CompilerVerifyGate, RefusesInconsistentPatternAcceptsValidOne) {
  auto shapes = analysis::AnalysisShapes::make();
  // An absent child carrying a child pattern: the ungated compiler silently
  // ignores the contradiction (kAssertNull wins), the gate refuses it.
  PatternNode fishy = analysis::make_phase_pattern(Phase::kBindingTime);
  fishy.children[2] = PatternNode::absent();
  fishy.children[2].children.push_back(PatternNode::skipped());

  spec::PlanCompiler ungated;
  EXPECT_NO_THROW(ungated.compile(*shapes.attributes, fishy));

  spec::CompileOptions gated_opts;
  gated_opts.verify_pattern = true;
  spec::PlanCompiler gated(gated_opts);
  EXPECT_THROW(gated.compile(*shapes.attributes, fishy), SpecError);
  EXPECT_NO_THROW(gated.compile(
      *shapes.attributes, analysis::make_phase_pattern(Phase::kBindingTime)));
}

}  // namespace
}  // namespace ickpt::testing
