// Crash matrix: sweep every injected fault point across a multi-checkpoint
// run and assert that recovery always yields a consistent prefix.
//
// The consistency oracle: the leaf is set to 10+i before the take at epoch
// i, so ANY consistent recovered state satisfies leaf->i32 == 10 + epoch.
// For crash-at-offset during append the matrix demands more: everything
// fully appended before the crash survives (epoch == completed - 1). For a
// crash during compact() the original log must recover identically — a
// crash anywhere inside compaction loses at most the compaction itself.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/manager.hpp"
#include "core/retention.hpp"
#include "io/fault.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"
#include "tests/test_types.hpp"
#include "verify/fsck.hpp"

namespace ickpt::testing {
namespace {

using core::CheckpointManager;
using core::ManagerOptions;
using core::TypeRegistry;
using io::FaultKind;
using io::ScriptedFaultPolicy;
using io::StableStorage;

constexpr int kTakes = 8;
constexpr unsigned kFullInterval = 3;  // fulls at epochs 0, 3, 6

class CrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ickpt_crash_matrix_test.log";
    clean_files();
    register_test_types(registry_);
  }
  void TearDown() override { clean_files(); }

  void clean_files() {
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
    std::remove((path_ + ".compact").c_str());
    std::remove((path_ + ".retain").c_str());
    for (unsigned n = 1; n <= 4; ++n) {
      const std::string q = StableStorage::quarantine_path(path_, n);
      std::remove(q.c_str());
      std::remove((q + ".bak").c_str());
      std::remove((q + ".retain").c_str());
    }
  }

  /// Run the reference workload; returns the number of takes that returned
  /// (all of them when `fault` is null). CrashFaults escape to the caller.
  int run_workload(io::FaultPolicy* fault,
                   bool swallow_io_errors = false) {
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    ManagerOptions opts;
    opts.full_interval = kFullInterval;
    opts.fault_policy = fault;
    CheckpointManager manager(path_, opts);
    int completed = 0;
    for (int i = 0; i < kTakes; ++i) {
      leaf->set_i32(10 + i);
      try {
        manager.take(*leaf);
      } catch (const IoError&) {
        if (!swallow_io_errors) throw;
        continue;  // rolled back; the log is still clean
      }
      ++completed;
    }
    return completed;
  }

  /// The oracle: a recovered state is consistent iff the leaf carries the
  /// value written at the recovered epoch.
  static void expect_consistent(const core::RecoverResult& result,
                                const std::string& context) {
    EXPECT_LT(result.state.epoch, static_cast<Epoch>(kTakes)) << context;
    EXPECT_EQ(result.state.root_as<Leaf>()->i32,
              10 + static_cast<int>(result.state.epoch))
        << context;
  }

  std::string path_;
  TypeRegistry registry_;
};

TEST_F(CrashMatrixTest, CrashAtEveryOffsetDuringAppend) {
  const std::uint64_t total = [&] {
    run_workload(nullptr);
    return io::read_file(path_).size();
  }();
  ASSERT_GT(total, 0u);

  for (std::uint64_t off = 0; off < total; off += 3) {
    clean_files();
    const std::string context = "crash offset " + std::to_string(off);
    ScriptedFaultPolicy policy(FaultKind::kCrash, off);
    bool crashed = false;
    try {
      run_workload(&policy);
    } catch (const io::CrashFault&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << context;
    // Takes that finished before the crash == complete frames on disk (the
    // frame containing `off` is torn, everything before it is intact).
    const int completed =
        static_cast<int>(StableStorage::scan(path_).frames.size());

    // Post-crash protocol: repair the tail, then fsck must report zero
    // errors, then recovery must surface exactly the pre-crash prefix.
    StableStorage::repair(path_);
    auto report = verify::fsck_log(path_, registry_);
    EXPECT_TRUE(report.clean()) << context << "\n" << report.to_string();

    if (completed == 0) {
      EXPECT_THROW(CheckpointManager::recover(path_, registry_),
                   CorruptionError)
          << context;
      continue;
    }
    auto result = CheckpointManager::recover(path_, registry_);
    expect_consistent(result, context);
    EXPECT_EQ(result.state.epoch, static_cast<Epoch>(completed - 1))
        << context;
  }
}

// The sharded-capture variant of the append sweep: capture_threads=3 over a
// multi-root set drives every frame through the shard-merge + append path.
// The crash-consistency argument must be unchanged — the manager only
// appends fully merged payloads, so a crash mid-append tears at most one
// frame and repair/fsck/recover behave exactly as in the serial matrix.
TEST_F(CrashMatrixTest, CrashAtEveryOffsetWithShardedCapture) {
  constexpr int kRoots = 6;
  auto run_parallel_workload = [&](io::FaultPolicy* fault) {
    core::Heap heap;
    std::vector<Leaf*> leaves;
    std::vector<core::Checkpointable*> roots;
    for (int j = 0; j < kRoots; ++j) {
      leaves.push_back(heap.make<Leaf>());
      roots.push_back(leaves.back());
    }
    ManagerOptions opts;
    opts.full_interval = kFullInterval;
    opts.fault_policy = fault;
    opts.capture_threads = 3;
    CheckpointManager manager(path_, opts);
    for (int i = 0; i < kTakes; ++i) {
      for (int j = 0; j < kRoots; ++j) leaves[j]->set_i32(10 + i + j);
      manager.take(roots);
    }
  };
  // Oracle: every root j carries the value written at the recovered epoch.
  auto expect_consistent_multi = [&](const core::RecoverResult& result,
                                     const std::string& context) {
    EXPECT_LT(result.state.epoch, static_cast<Epoch>(kTakes)) << context;
    ASSERT_EQ(result.state.roots.size(), static_cast<std::size_t>(kRoots))
        << context;
    for (int j = 0; j < kRoots; ++j)
      EXPECT_EQ(result.state.root_as<Leaf>(j)->i32,
                10 + static_cast<int>(result.state.epoch) + j)
          << context << " root " << j;
  };

  const std::uint64_t total = [&] {
    run_parallel_workload(nullptr);
    return io::read_file(path_).size();
  }();
  ASSERT_GT(total, 0u);

  for (std::uint64_t off = 0; off < total; off += 5) {
    clean_files();
    const std::string context =
        "sharded crash offset " + std::to_string(off);
    ScriptedFaultPolicy policy(FaultKind::kCrash, off);
    bool crashed = false;
    try {
      run_parallel_workload(&policy);
    } catch (const io::CrashFault&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << context;
    const int completed =
        static_cast<int>(StableStorage::scan(path_).frames.size());

    StableStorage::repair(path_);
    auto report = verify::fsck_log(path_, registry_);
    EXPECT_TRUE(report.clean()) << context << "\n" << report.to_string();

    if (completed == 0) {
      EXPECT_THROW(CheckpointManager::recover(path_, registry_),
                   CorruptionError)
          << context;
      continue;
    }
    auto result = CheckpointManager::recover(path_, registry_);
    expect_consistent_multi(result, context);
    EXPECT_EQ(result.state.epoch, static_cast<Epoch>(completed - 1))
        << context;
  }
}

TEST_F(CrashMatrixTest, TornWriteAtEveryOffsetDuringAppend) {
  const std::uint64_t total = [&] {
    run_workload(nullptr);
    return io::read_file(path_).size();
  }();

  for (std::uint64_t off = 0; off < total; off += 7) {
    clean_files();
    const std::string context = "torn-write offset " + std::to_string(off);
    ScriptedFaultPolicy policy(FaultKind::kTornWrite, off);
    int completed = run_workload(&policy, /*swallow_io_errors=*/true);
    EXPECT_TRUE(policy.fired()) << context;
    EXPECT_EQ(completed, kTakes - 1) << context;

    // A torn write in a surviving process is rolled back: the log never
    // even needs repair.
    auto scan = StableStorage::scan(path_);
    EXPECT_TRUE(scan.clean) << context;
    auto report = verify::fsck_log(path_, registry_);
    EXPECT_TRUE(report.clean()) << context << "\n" << report.to_string();
    expect_consistent(CheckpointManager::recover(path_, registry_), context);
  }
}

TEST_F(CrashMatrixTest, BitFlipAtEveryOffsetOfACompleteLog) {
  run_workload(nullptr);
  const auto pristine = io::read_file(path_);

  for (std::size_t pos = 0; pos < pristine.size(); pos += 5) {
    const std::string context = "bit flip at byte " + std::to_string(pos);
    auto bytes = pristine;
    bytes[pos] ^= 0x04;
    io::write_file(path_, bytes);
    std::remove((path_ + ".bak").c_str());

    // fsck must terminate with a report (damaged, but never crash) ...
    auto report = verify::fsck_log(path_, registry_);
    (void)report;
    // ... and recovery either salvages a consistent prefix or refuses with
    // a structured error — never a partial or inconsistent graph.
    try {
      auto result = CheckpointManager::recover(path_, registry_);
      expect_consistent(result, context);
    } catch (const CorruptionError&) {
      // acceptable: the flip may take out the only usable full checkpoint
    }
  }
}

// Rotation crash points: kill the "process" between each step of a log
// rotation (before the quarantine rename, after it, after the fresh
// generation is opened, and after the rebase full landed) and prove a crash
// mid-rotation loses at most the in-flight epoch — the generation chain
// always recovers a consistent settled prefix, and a restarted healing
// manager resumes with fresh epoch numbers and a clean chain.
TEST_F(CrashMatrixTest, CrashAtEveryRotationStage) {
  // Calibrate: log size after two clean epochs, so a scripted ENOSPC lands
  // inside epoch 2's append and drives the ladder into rotation.
  auto heal_opts = [](io::FaultPolicy* fault) {
    ManagerOptions opts;
    opts.full_interval = kFullInterval;
    opts.fault_policy = fault;
    opts.retry.max_attempts = 2;
    opts.retry.initial_backoff = std::chrono::microseconds{0};
    opts.heal.enabled = true;
    opts.heal.append_retries = 1;
    opts.heal.rotate_attempts = 3;
    return opts;
  };
  const std::uint64_t size2 = [&] {
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    CheckpointManager manager(path_, heal_opts(nullptr));
    for (int i = 0; i < 2; ++i) {
      leaf->set_i32(10 + i);
      manager.take(*leaf);
    }
    return io::read_file(path_).size();
  }();

  struct Case {
    io::RotateStage stage;
    const char* name;
    Epoch recovered_epoch;  // the settled prefix a crash here leaves behind
  };
  const Case kCases[] = {
      // Epoch 2 was in flight and never reached disk: at most it is lost.
      {io::RotateStage::kBeforeQuarantine, "before-quarantine", 1},
      {io::RotateStage::kAfterQuarantine, "after-quarantine", 1},
      {io::RotateStage::kAfterReopen, "after-reopen", 1},
      // The rebase full settled before this point fires: nothing is lost.
      {io::RotateStage::kAfterRebase, "after-rebase", 2},
  };

  for (const Case& c : kCases) {
    clean_files();
    const std::string context = std::string("rotation crash ") + c.name;

    // Budget: initial append (3 decisions) + one in-place retry (3) fail;
    // the rotation rebase writes below the trigger and would succeed.
    ScriptedFaultPolicy policy(FaultKind::kTransient, size2 + 10, ENOSPC, 6);
    ManagerOptions opts = heal_opts(&policy);
    opts.heal.rotate_hook = [&](io::RotateStage stage) {
      if (stage == c.stage)
        throw io::CrashFault(std::string("rotation stage ") + c.name);
    };
    bool crashed = false;
    try {
      core::Heap heap;
      Leaf* leaf = heap.make<Leaf>();
      CheckpointManager manager(path_, opts);
      for (int i = 0; i < kTakes; ++i) {
        leaf->set_i32(10 + i);
        manager.take(*leaf);
      }
    } catch (const io::CrashFault&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << context;

    // The chain recovers exactly the settled prefix.
    auto result = CheckpointManager::recover(path_, registry_);
    expect_consistent(result, context);
    EXPECT_EQ(result.state.epoch, c.recovered_epoch) << context;

    // Restart protocol: a fresh healing manager resumes past every epoch on
    // the chain (never reusing a number that reached disk), rebases with a
    // full, and leaves a chain with zero fsck errors.
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    CheckpointManager manager(path_, heal_opts(nullptr));
    EXPECT_EQ(manager.next_epoch(), c.recovered_epoch + 1) << context;
    leaf->set_i32(10 + static_cast<int>(c.recovered_epoch) + 1);
    auto take = manager.take(*leaf);
    EXPECT_EQ(take.mode, core::Mode::kFull) << context;
    EXPECT_EQ(take.epoch, c.recovered_epoch + 1) << context;

    auto chain = verify::fsck_chain(path_, registry_);
    EXPECT_TRUE(chain.clean()) << context << "\n" << chain.to_string();
  }
}

TEST_F(CrashMatrixTest, CrashAtEveryOffsetDuringCompact) {
  run_workload(nullptr);
  const auto pristine = io::read_file(path_);
  const auto reference = CheckpointManager::recover(path_, registry_);
  ASSERT_EQ(reference.state.epoch, static_cast<Epoch>(kTakes - 1));

  std::uint64_t off = 0;
  int crashes = 0;
  for (;; off += 3) {
    io::write_file(path_, pristine);
    const std::string context = "compact crash offset " + std::to_string(off);
    ScriptedFaultPolicy policy(FaultKind::kCrash, off);
    bool crashed = false;
    try {
      CheckpointManager::compact(path_, registry_, &policy);
    } catch (const io::CrashFault&) {
      crashed = true;
    }
    if (!crashed) {
      // The offset lies beyond everything compaction writes: done sweeping.
      // (Note the previous iteration left a stale .compact behind, so this
      // pass also proves a crashed compaction does not block the next one.)
      EXPECT_FALSE(policy.fired()) << context;
      break;
    }
    ++crashes;
    // A crash inside compact loses at most the compaction: the original
    // log's bytes are untouched and recover identically.
    EXPECT_EQ(io::read_file(path_), pristine) << context;
    auto result = CheckpointManager::recover(path_, registry_);
    EXPECT_EQ(result.state.epoch, reference.state.epoch) << context;
    expect_consistent(result, context);
  }
  EXPECT_GT(crashes, 0);

  // The sweep ends on a successful compaction: same state, single full
  // frame, clean fsck.
  auto compacted = CheckpointManager::recover(path_, registry_);
  EXPECT_TRUE(compacted.log_clean);
  EXPECT_EQ(compacted.checkpoints_applied, 1u);
  EXPECT_EQ(compacted.state.epoch, reference.state.epoch);
  expect_consistent(compacted, "after successful compact");
  auto report = verify::fsck_log(path_, registry_);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// The schedule-driven variant: crash at every offset of a *policy*
// compaction (kBinomial rewrites O(log n) full frames plus a manifest, so
// it has many more write fault points than the single-frame squash). The
// invariant is strictly stronger than "newest state survives": the entire
// pre-compaction history — every epoch, since nothing was ever dropped —
// must still be recoverable to exactly its oracle value after the crash.
// The old log or its untouched bytes win; a half-rewritten history never
// becomes visible.
TEST_F(CrashMatrixTest, CrashAtEveryOffsetDuringPolicyCompact) {
  run_workload(nullptr);
  const auto pristine = io::read_file(path_);

  std::uint64_t off = 0;
  int crashes = 0;
  for (;; off += 3) {
    io::write_file(path_, pristine);
    std::remove((path_ + ".retain").c_str());
    const std::string context =
        "policy compact crash offset " + std::to_string(off);
    ScriptedFaultPolicy policy(FaultKind::kCrash, off);
    bool crashed = false;
    try {
      CheckpointManager::compact(
          path_, registry_,
          core::CompactOptions{core::CompactPolicy::kBinomial, &policy});
    } catch (const io::CrashFault&) {
      crashed = true;
    }
    if (!crashed) {
      EXPECT_FALSE(policy.fired()) << context;
      break;
    }
    ++crashes;
    // The original log is byte-for-byte untouched, no manifest was
    // published (it only lands after the rename), and every pre-crash
    // epoch still time-travels to its oracle state.
    EXPECT_EQ(io::read_file(path_), pristine) << context;
    auto manifest = core::RetentionManifest::load(path_);
    EXPECT_FALSE(manifest.has_value()) << context;
    for (int e = 0; e < kTakes; ++e) {
      auto result = CheckpointManager::recover_to_epoch(
          path_, registry_, static_cast<Epoch>(e));
      EXPECT_EQ(result.state.epoch, static_cast<Epoch>(e)) << context;
      EXPECT_EQ(result.state.root_as<Leaf>()->i32, 10 + e)
          << context << " epoch " << e;
    }
  }
  EXPECT_GT(crashes, 0);

  // The sweep ends on a successful policy compaction: the retained set is
  // exactly the schedule, every retained epoch matches the oracle, and the
  // rewritten log + manifest pass fsck (including the retention audit).
  const Epoch newest = static_cast<Epoch>(kTakes - 1);
  const auto schedule = core::RetentionPolicy::schedule(newest);
  auto manifest = core::RetentionManifest::load(path_);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->newest, newest);
  EXPECT_EQ(manifest->epochs, schedule);
  for (Epoch e : schedule) {
    auto result = CheckpointManager::recover_to_epoch(path_, registry_, e);
    EXPECT_EQ(result.state.epoch, e);
    EXPECT_EQ(result.state.root_as<Leaf>()->i32, 10 + static_cast<int>(e));
  }
  auto report = verify::fsck_log(path_, registry_);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

}  // namespace
}  // namespace ickpt::testing
