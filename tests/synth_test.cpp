// Synthetic workload tests: construction geometry, mutation constraints,
// deterministic seeding, and the checkpoint round trip of synth structures.
#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "tests/synth_helpers.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

using synth::Compound;
using synth::ListElem;
using synth::SynthConfig;
using synth::SynthWorkload;

TEST(SynthWorkload, BuildsRequestedGeometry) {
  SynthConfig config;
  config.num_structures = 10;
  config.list_length = 4;
  config.values_per_elem = 3;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  EXPECT_EQ(workload.roots().size(), 10u);
  EXPECT_EQ(workload.total_objects(), 10u * (1 + 5 * 4));
  for (Compound* compound : workload.roots()) {
    for (int i = 0; i < Compound::kLists; ++i) {
      int length = 0;
      for (ListElem* e = compound->list(i); e != nullptr; e = e->next()) {
        EXPECT_EQ(e->nvals(), 3);
        ++length;
      }
      EXPECT_EQ(length, 4);
    }
  }
}

TEST(SynthWorkload, MutatePercentagesApproximatelyHold) {
  SynthConfig config;
  config.num_structures = 2000;
  config.list_length = 5;
  config.percent_modified = 25;
  config.modified_lists = 3;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  workload.reset_flags();
  std::size_t modified = workload.mutate();
  std::size_t population = workload.possibly_modified_population();
  EXPECT_EQ(population, 2000u * 3 * 5);
  double rate = static_cast<double>(modified) / static_cast<double>(population);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(SynthWorkload, LastElementOnlyTouchesOnlyTails) {
  SynthConfig config;
  config.num_structures = 50;
  config.last_element_only = true;
  config.modified_lists = 2;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  workload.reset_flags();
  workload.mutate();
  for (Compound* compound : workload.roots()) {
    EXPECT_FALSE(compound->info().modified());
    for (int i = 0; i < Compound::kLists; ++i) {
      ListElem* e = compound->list(i);
      while (e->next() != nullptr) {
        EXPECT_FALSE(e->info().modified());
        e = e->next();
      }
      if (i >= config.modified_lists) {
        EXPECT_FALSE(e->info().modified());
      }
    }
  }
}

TEST(SynthWorkload, ModifiedListsConstraintRespected) {
  SynthConfig config;
  config.num_structures = 50;
  config.modified_lists = 1;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  workload.reset_flags();
  workload.mutate();
  for (Compound* compound : workload.roots()) {
    for (int i = 1; i < Compound::kLists; ++i) {
      for (ListElem* e = compound->list(i); e != nullptr; e = e->next())
        EXPECT_FALSE(e->info().modified());
    }
  }
}

TEST(SynthWorkload, SameSeedSameModificationSet) {
  SynthConfig config;
  config.num_structures = 64;
  config.percent_modified = 50;
  core::Heap heap_a;
  SynthWorkload a(heap_a, config);
  core::Heap heap_b;
  SynthWorkload b(heap_b, config);
  a.reset_flags();
  b.reset_flags();
  a.mutate();
  b.mutate();
  EXPECT_EQ(a.save_flags(), b.save_flags());
}

TEST(SynthWorkload, InvalidConfigRejected) {
  core::Heap heap;
  SynthConfig bad;
  bad.list_length = 0;
  EXPECT_THROW(SynthWorkload(heap, bad), Error);
  bad = SynthConfig{};
  bad.values_per_elem = 11;
  EXPECT_THROW(SynthWorkload(heap, bad), Error);
  bad = SynthConfig{};
  bad.modified_lists = 6;
  EXPECT_THROW(SynthWorkload(heap, bad), Error);
  bad = SynthConfig{};
  bad.percent_modified = 101;
  EXPECT_THROW(SynthWorkload(heap, bad), Error);
}

TEST(SynthRoundTrip, RecoverRebuildsIdenticalStructures) {
  std::string path = ::testing::TempDir() + "/ickpt_synth_roundtrip.log";
  std::remove(path.c_str());
  SynthConfig config;
  config.num_structures = 20;
  config.list_length = 3;
  config.values_per_elem = 4;
  core::Heap heap;
  SynthWorkload workload(heap, config);

  core::CheckpointManager manager(path);
  std::vector<core::Checkpointable*> roots(workload.root_bases().begin(),
                                           workload.root_bases().end());
  manager.take(roots);  // full
  workload.mutate();
  manager.take(roots);  // incremental

  core::TypeRegistry registry;
  synth::register_types(registry);
  auto result = core::CheckpointManager::recover(path, registry);
  ASSERT_EQ(result.state.roots.size(), 20u);

  for (std::size_t s = 0; s < workload.roots().size(); ++s) {
    Compound* original = workload.roots()[s];
    auto* recovered = result.state.root_as<Compound>(s);
    ASSERT_NE(recovered, nullptr);
    for (int i = 0; i < Compound::kLists; ++i) {
      ListElem* oe = original->list(i);
      ListElem* re = recovered->list(i);
      while (oe != nullptr) {
        ASSERT_NE(re, nullptr);
        EXPECT_EQ(re->info().id(), oe->info().id());
        EXPECT_EQ(re->nvals(), oe->nvals());
        for (int v = 0; v < oe->nvals(); ++v)
          EXPECT_EQ(re->value(v), oe->value(v));
        oe = oe->next();
        re = re->next();
      }
      EXPECT_EQ(re, nullptr);
    }
  }
  std::remove(path.c_str());
}

TEST(SynthRoundTrip, SpecializedCheckpointIsRecoverable) {
  // A checkpoint written by the plan executor must be readable by the same
  // Recovery code that reads generic checkpoints.
  SynthConfig config;
  config.num_structures = 6;
  config.list_length = 5;
  config.values_per_elem = 2;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  synth::SynthShapes shapes = synth::SynthShapes::make();

  // Full checkpoint via generic driver, then a specialized incremental.
  auto full = checkpoint_bytes(workload.root_bases(), 0, core::Mode::kFull);
  workload.mutate();
  spec::Plan plan =
      compile_synth_plan(shapes, config, synth::SpecLevel::kStructure);
  spec::PlanExecutor exec(plan);
  auto incr = plan_bytes(workload, exec, 1);

  core::TypeRegistry registry;
  synth::register_types(registry);
  core::Recovery recovery(registry);
  io::DataReader full_reader(full);
  recovery.apply(full_reader);
  io::DataReader incr_reader(incr);
  recovery.apply(incr_reader);
  auto state = recovery.finish();
  auto* compound = state.root_as<Compound>(0);
  ListElem* oe = workload.roots()[0]->list(0);
  ListElem* re = compound->list(0);
  for (; oe != nullptr; oe = oe->next(), re = re->next()) {
    ASSERT_NE(re, nullptr);
    EXPECT_EQ(re->value(0), oe->value(0));
  }
}

}  // namespace
}  // namespace ickpt::testing
