// Specializer tests: compiled plans must emit byte-identical checkpoints to
// the generic driver for every valid pattern, prune exactly what the pattern
// proves unnecessary, and fail loudly on structure violations.
#include <gtest/gtest.h>

#include "tests/synth_helpers.hpp"

namespace ickpt::testing {
namespace {

using spec::CompileOptions;
using spec::ModStatus;
using spec::PatternNode;
using spec::Plan;
using spec::PlanCompiler;
using spec::PlanExecutor;
using synth::SpecLevel;
using synth::SynthConfig;
using synth::SynthShapes;
using synth::SynthWorkload;

struct GridParam {
  int list_length;
  int values_per_elem;
  int modified_lists;
  bool last_element_only;
  int percent_modified;
};

std::ostream& operator<<(std::ostream& os, const GridParam& p) {
  return os << "L" << p.list_length << "_v" << p.values_per_elem << "_m"
            << p.modified_lists << (p.last_element_only ? "_last" : "_any")
            << "_p" << p.percent_modified;
}

SynthConfig small_config(const GridParam& p) {
  SynthConfig config;
  config.num_structures = 64;
  config.list_length = p.list_length;
  config.values_per_elem = p.values_per_elem;
  config.modified_lists = p.modified_lists;
  config.last_element_only = p.last_element_only;
  config.percent_modified = p.percent_modified;
  config.seed = 1234;
  return config;
}

class PlanEquivalence : public ::testing::TestWithParam<GridParam> {};

TEST_P(PlanEquivalence, AllLevelsMatchGenericBytes) {
  SynthConfig config = small_config(GetParam());
  core::Heap heap;
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();

  auto generic = generic_bytes(workload, 3);

  const SpecLevel levels[] = {SpecLevel::kStructure, SpecLevel::kModifiedLists,
                              SpecLevel::kPositions};
  for (SpecLevel level : levels) {
    if (level == SpecLevel::kPositions && !config.last_element_only)
      continue;  // pattern would be unsound for anywhere-modification
    workload.restore_flags(flags);
    Plan plan = compile_synth_plan(shapes, config, level);
    PlanExecutor exec(plan);
    auto bytes = plan_bytes(workload, exec, 3);
    EXPECT_EQ(bytes, generic)
        << "level " << static_cast<int>(level) << " diverged";
  }
}

TEST_P(PlanEquivalence, ResidualMatchesGenericBytes) {
  GridParam p = GetParam();
  if ((p.list_length != 1 && p.list_length != 5) ||
      (p.values_per_elem != 1 && p.values_per_elem != 10))
    GTEST_SKIP() << "no residual instantiated off the paper's grid";
  SynthConfig config = small_config(p);
  core::Heap heap;
  SynthWorkload workload(heap, config);
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();
  auto generic = generic_bytes(workload, 9);

  workload.restore_flags(flags);
  auto uniform =
      synth::residual::uniform_fn(p.list_length, p.values_per_elem);
  EXPECT_EQ(residual_bytes(workload, uniform, 9), generic);

  workload.restore_flags(flags);
  auto specialized = synth::residual::specialized_fn(
      p.list_length, p.values_per_elem, p.modified_lists,
      p.last_element_only);
  EXPECT_EQ(residual_bytes(workload, specialized, 9), generic);
}

TEST_P(PlanEquivalence, PlanResetsFlagsLikeGeneric) {
  SynthConfig config = small_config(GetParam());
  core::Heap heap;
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  workload.reset_flags();
  workload.mutate();
  auto dirty = workload.save_flags();

  generic_bytes(workload, 0);
  auto after_generic = workload.save_flags();

  workload.restore_flags(dirty);
  Plan plan = compile_synth_plan(shapes, config, SpecLevel::kModifiedLists);
  PlanExecutor exec(plan);
  plan_bytes(workload, exec, 0);
  EXPECT_EQ(workload.save_flags(), after_generic);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PlanEquivalence,
    ::testing::Values(GridParam{1, 1, 5, false, 100},
                      GridParam{1, 10, 5, false, 50},
                      GridParam{5, 1, 5, false, 25},
                      GridParam{5, 10, 5, false, 100},
                      GridParam{5, 1, 3, false, 50},
                      GridParam{5, 10, 1, false, 100},
                      GridParam{5, 1, 1, true, 100},
                      GridParam{5, 10, 3, true, 50},
                      GridParam{5, 10, 5, true, 25},
                      GridParam{1, 1, 1, true, 100},
                      GridParam{1, 10, 3, true, 0},
                      GridParam{5, 5, 5, false, 75},
                      GridParam{2, 3, 4, false, 60},
                      GridParam{4, 10, 2, true, 100},
                      GridParam{3, 1, 0, false, 100},
                      GridParam{1, 1, 5, true, 50},
                      GridParam{5, 10, 0, true, 100},
                      GridParam{5, 1, 4, true, 25}));

TEST(PlanCompilerTest, PruningShrinksThePlan) {
  SynthShapes shapes = SynthShapes::make();
  PlanCompiler compiler;
  auto ops_at = [&](SpecLevel level, int mod_lists) {
    return compiler
        .compile(*shapes.compound,
                 synth::make_synth_pattern(level, 5, 10, mod_lists))
        .size();
  };
  // Fewer possibly-modified lists -> fewer ops.
  EXPECT_LT(ops_at(SpecLevel::kModifiedLists, 1),
            ops_at(SpecLevel::kModifiedLists, 3));
  EXPECT_LT(ops_at(SpecLevel::kModifiedLists, 3),
            ops_at(SpecLevel::kModifiedLists, 5));
  // Position knowledge removes tests (but keeps traversal): fewer ops still.
  EXPECT_LT(ops_at(SpecLevel::kPositions, 5),
            ops_at(SpecLevel::kModifiedLists, 5));
}

TEST(PlanCompilerTest, RecursiveShapeWithoutPatternDepthFails) {
  SynthShapes shapes = SynthShapes::make();
  CompileOptions opts;
  opts.max_depth = 32;
  PlanCompiler compiler(opts);
  PatternNode unbounded;  // empty children => implicit recursion forever
  EXPECT_THROW(compiler.compile(*shapes.elem, unbounded), SpecError);
}

TEST(PlanCompilerTest, ChildPatternArityMismatchFails) {
  SynthShapes shapes = SynthShapes::make();
  PatternNode pattern;
  pattern.children.push_back(PatternNode::skipped());  // compound has 5
  EXPECT_THROW(PlanCompiler().compile(*shapes.compound, pattern), SpecError);
}

TEST(PlanCompilerTest, UniformPatternBoundsRecursion) {
  SynthShapes shapes = SynthShapes::make();
  PatternNode pattern = PlanCompiler::uniform_pattern(*shapes.elem, 3);
  Plan plan = PlanCompiler().compile(*shapes.elem, pattern);
  EXPECT_GT(plan.size(), 0u);
  EXPECT_LE(plan.max_depth, 3u);
}

TEST(PlanExecutorTest, AssertNullCatchesOverlongList) {
  SynthConfig config;
  config.num_structures = 1;
  config.list_length = 6;  // structure longer than the declared pattern
  config.values_per_elem = 1;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  config.list_length = 5;  // declare 5 to the specializer
  spec::Plan plan = compile_synth_plan(shapes, config, SpecLevel::kStructure);
  PlanExecutor exec(plan);
  io::VectorSink sink;
  io::DataWriter writer(sink);
  EXPECT_THROW(exec.run(workload.roots()[0], writer), SpecError);
}

TEST(PlanExecutorTest, ShorterListIsToleratedByNullChecks) {
  // A 3-element list under a 5-element pattern simply stops at the null.
  SynthConfig build;
  build.num_structures = 8;
  build.list_length = 3;
  build.values_per_elem = 1;
  core::Heap heap;
  SynthWorkload workload(heap, build);
  SynthShapes shapes = SynthShapes::make();
  SynthConfig declared = build;
  declared.list_length = 5;
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();
  auto generic = generic_bytes(workload, 0);
  workload.restore_flags(flags);
  Plan plan = compile_synth_plan(shapes, declared, SpecLevel::kStructure);
  PlanExecutor exec(plan);
  EXPECT_EQ(plan_bytes(workload, exec, 0), generic);
}

TEST(PlanExecutorTest, DryRunWritesNothingAndKeepsFlags) {
  SynthConfig config;
  config.num_structures = 4;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();
  Plan plan = compile_synth_plan(shapes, config, SpecLevel::kStructure);
  PlanExecutor exec(plan);
  for (void* root : workload.root_ptrs()) exec.run_dry(root);
  EXPECT_EQ(workload.save_flags(), flags);
}

TEST(PlanTest, DisassembleNamesOps) {
  SynthShapes shapes = SynthShapes::make();
  SynthConfig config;
  Plan plan = compile_synth_plan(shapes, config, SpecLevel::kPositions,
                                 CompileOptions{});
  std::string text = plan.disassemble();
  EXPECT_NE(text.find("push_child"), std::string::npos);
  EXPECT_NE(text.find("write_header"), std::string::npos);
  EXPECT_NE(text.find("assert_null"), std::string::npos);
  EXPECT_NE(text.find("synth.Compound"), std::string::npos);
}

TEST(AblationTest, DisabledPruningStaysByteIdentical) {
  SynthConfig config;
  config.num_structures = 32;
  config.modified_lists = 2;
  config.last_element_only = true;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();
  auto generic = generic_bytes(workload, 0);

  for (bool prune_tests : {false, true}) {
    for (bool prune_traversal : {false, true}) {
      CompileOptions opts;
      opts.prune_tests = prune_tests;
      opts.prune_traversal = prune_traversal;
      workload.restore_flags(flags);
      Plan plan =
          compile_synth_plan(shapes, config, SpecLevel::kPositions, opts);
      PlanExecutor exec(plan);
      EXPECT_EQ(plan_bytes(workload, exec, 0), generic)
          << "prune_tests=" << prune_tests
          << " prune_traversal=" << prune_traversal;
    }
  }
}

TEST(AblationTest, AblatedPlansAreLarger) {
  SynthConfig config;
  config.modified_lists = 1;
  config.last_element_only = true;
  SynthShapes shapes = SynthShapes::make();
  CompileOptions full;
  CompileOptions no_traversal_pruning;
  no_traversal_pruning.prune_traversal = false;
  CompileOptions no_test_pruning;
  no_test_pruning.prune_tests = false;
  auto size_with = [&](const CompileOptions& opts) {
    return compile_synth_plan(shapes, config, SpecLevel::kPositions, opts)
        .size();
  };
  EXPECT_LT(size_with(full), size_with(no_traversal_pruning));
  EXPECT_LE(size_with(full), size_with(no_test_pruning));
}

TEST(AblationTest, VarintScalarsShrinkSmallValues) {
  SynthConfig config;
  config.num_structures = 16;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();

  CompileOptions varint;
  varint.varint_scalars = true;
  Plan vplan = compile_synth_plan(shapes, config, SpecLevel::kStructure, varint);
  PlanExecutor vexec(vplan);
  auto vbytes = plan_bytes(workload, vexec, 0);

  workload.restore_flags(flags);
  Plan fplan = compile_synth_plan(shapes, config, SpecLevel::kStructure);
  PlanExecutor fexec(fplan);
  auto fbytes = plan_bytes(workload, fexec, 0);

  EXPECT_LT(vbytes.size(), fbytes.size());
}

TEST(ValidateShapeTest, AcceptsMatchingStructure) {
  SynthConfig config;
  config.num_structures = 2;
  core::Heap heap;
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  for (void* root : workload.root_ptrs())
    EXPECT_NO_THROW(spec::validate_shape(*shapes.compound, root));
}

TEST(ValidateShapeTest, RejectsWrongRootType) {
  core::Heap heap;
  synth::ListElem* elem = heap.make<synth::ListElem>();
  SynthShapes shapes = SynthShapes::make();
  EXPECT_THROW(spec::validate_shape(*shapes.compound, elem), SpecError);
}

TEST(ValidateShapeTest, NullRootRejected) {
  SynthShapes shapes = SynthShapes::make();
  EXPECT_THROW(spec::validate_shape(*shapes.compound, nullptr), SpecError);
}

}  // namespace
}  // namespace ickpt::testing
