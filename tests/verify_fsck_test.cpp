// Offline stream fsck: clean on every chain the rest of the system produces
// (manager chains, compacted logs, analysis-engine and synth-workload runs),
// and each corruption class yields its documented finding code.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/engine.hpp"
#include "analysis/parser.hpp"
#include "core/manager.hpp"
#include "io/stable_storage.hpp"
#include "synth/workload.hpp"
#include "tests/test_types.hpp"
#include "verify/fsck.hpp"
#include "verify/pattern_check.hpp"

namespace ickpt::testing {
namespace {

std::string temp_log(const char* name) {
  std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

core::TypeRegistry test_registry() {
  core::TypeRegistry registry;
  register_test_types(registry);
  return registry;
}

/// A small full+incremental chain over an Inner/Leaf tree.
std::string make_chain(const char* name, unsigned full_interval = 4,
                       int epochs = 6) {
  std::string path = temp_log(name);
  core::Heap heap;
  Inner* root = heap.make<Inner>();
  Leaf* leaf = heap.make<Leaf>();
  Inner* mid = heap.make<Inner>();
  root->set_left(leaf);
  root->set_right(mid);
  mid->set_left(heap.make<Leaf>());
  core::CheckpointManager manager(path, {.full_interval = full_interval});
  for (int i = 0; i < epochs; ++i) {
    leaf->set_i32(i);
    mid->set_tag(i);
    manager.take(*root);
  }
  return path;
}

TEST(Fsck, MissingFileIsCleanEmptyChain) {
  auto registry = test_registry();
  auto report = verify::fsck_log(temp_log("fsck_missing.log"), registry);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(report.findings.empty());
}

TEST(Fsck, ManagerChainIsCleanAlsoAfterCompaction) {
  std::string path = make_chain("fsck_chain.log");
  auto registry = test_registry();
  auto report = verify::fsck_log(path, registry);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
  EXPECT_NE(report.summary.find("2 full-checkpoint window(s)"),
            std::string::npos)
      << report.summary;

  core::CheckpointManager::compact(path, registry);
  report = verify::fsck_log(path, registry);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_NE(report.summary.find("1 full-checkpoint window(s)"),
            std::string::npos)
      << report.summary;
  std::remove(path.c_str());
}

TEST(Fsck, AnalysisEngineChainIsClean) {
  // Checkpoint the annotation graph after every fixpoint iteration of all
  // three phases — the paper's own workload — then fsck the log.
  std::string path = temp_log("fsck_analysis.log");
  auto program = analysis::parse_program(verify::phase_model_source());
  core::Heap heap;
  analysis::AnalysisEngine engine(*program, heap);
  core::CheckpointManager manager(path, {.full_interval = 3});
  auto hook = [&](int) { manager.take(engine.attr_bases()); };
  engine.run_side_effect(hook);
  engine.run_binding_time({.dynamic_globals = {"attr"}}, hook);
  engine.run_eval_time(hook);

  core::TypeRegistry registry;
  analysis::register_types(registry);
  auto report = verify::fsck_log(path, registry);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
  std::remove(path.c_str());
}

TEST(Fsck, SynthWorkloadChainIsClean) {
  std::string path = temp_log("fsck_synth.log");
  core::Heap heap;
  synth::SynthConfig config;
  config.num_structures = 40;
  synth::SynthWorkload workload(heap, config);
  core::CheckpointManager manager(path, {.full_interval = 3});
  for (int i = 0; i < 5; ++i) {
    manager.take(workload.root_bases());
    workload.mutate();
  }
  core::TypeRegistry registry;
  synth::register_types(registry);
  auto report = verify::fsck_log(path, registry);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
  std::remove(path.c_str());
}

TEST(Fsck, CorruptedByteIsError) {
  std::string path = make_chain("fsck_corrupt.log");
  auto bytes = read_file(path);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(path, bytes);
  auto registry = test_registry();
  auto report = verify::fsck_log(path, registry);
  EXPECT_FALSE(report.clean()) << report.to_string();
  EXPECT_GE(report.errors(), 1u);
  EXPECT_NE(report.first("log-tail"), nullptr) << report.to_string();
  std::remove(path.c_str());
}

// -- hand-crafted payloads for the chain/closure checks ----------------------

std::vector<std::uint8_t> header_only(Epoch epoch, core::Mode mode,
                                      std::vector<ObjectId> roots) {
  io::VectorSink sink;
  io::DataWriter w(sink);
  w.write_u8(core::kStreamMagic);
  w.write_u8(core::kFormatVersion);
  w.write_u8(static_cast<std::uint8_t>(mode));
  w.write_u64(epoch);
  w.write_varint(roots.size());
  for (ObjectId id : roots) w.write_varint(id);
  w.flush();
  return sink.take();  // caller appends records + end tag via continuation
}

void append_leaf_record(io::VectorSink& sink, ObjectId id) {
  io::DataWriter w(sink);
  w.write_u8(core::kRecordTag);
  w.write_varint(Leaf::kTypeId);
  w.write_varint(id);
  w.write_i32(0);
  w.write_i64(0);
  w.write_f64(0.0);
  w.write_bool(false);
  w.flush();
}

void append_inner_record(io::VectorSink& sink, ObjectId id, ObjectId left,
                         ObjectId right) {
  io::DataWriter w(sink);
  w.write_u8(core::kRecordTag);
  w.write_varint(Inner::kTypeId);
  w.write_varint(id);
  w.write_i32(0);
  w.write_varint(left);
  w.write_varint(right);
  w.flush();
}

void append_end(io::VectorSink& sink) {
  io::DataWriter w(sink);
  w.write_u8(core::kEndTag);
  w.flush();
}

std::vector<std::uint8_t> as_log(
    const std::vector<std::vector<std::uint8_t>>& payloads, const char* name) {
  std::string path = temp_log(name);
  {
    io::StableStorage storage(path);
    for (const auto& payload : payloads) storage.append(payload);
  }
  auto bytes = read_file(path);
  std::remove(path.c_str());
  return bytes;
}

TEST(Fsck, DuplicateRecordInOneFrameIsWarning) {
  io::VectorSink sink;
  auto header = header_only(0, core::Mode::kFull, {7});
  sink.write(header.data(), header.size());
  append_leaf_record(sink, 7);
  append_leaf_record(sink, 7);  // shared-subobject double-record signature
  append_end(sink);
  auto registry = test_registry();
  auto report =
      verify::fsck_bytes(as_log({sink.take()}, "fsck_dup.log"), registry);
  EXPECT_TRUE(report.clean()) << report.to_string();  // warning, not error
  EXPECT_EQ(report.count("dup-record"), 1u) << report.to_string();
  const verify::Finding* finding = report.first("dup-record");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->object_id, 7u);
}

TEST(Fsck, DanglingChildIsError) {
  io::VectorSink sink;
  auto header = header_only(0, core::Mode::kFull, {7});
  sink.write(header.data(), header.size());
  append_inner_record(sink, 7, 8, 999);  // 999 never defined
  append_leaf_record(sink, 8);
  append_end(sink);
  auto registry = test_registry();
  auto report =
      verify::fsck_bytes(as_log({sink.take()}, "fsck_dangle.log"), registry);
  EXPECT_FALSE(report.clean()) << report.to_string();
  const verify::Finding* finding = report.first("dangling-child");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->object_id, 999u);
}

TEST(Fsck, DanglingChildSatisfiedByEarlierWindowFrame) {
  // An incremental frame may reference ids defined by any frame in the same
  // recovery window — that is exactly what recovery replays.
  auto full = [&] {
    io::VectorSink sink;
    auto header = header_only(0, core::Mode::kFull, {7});
    sink.write(header.data(), header.size());
    append_inner_record(sink, 7, 8, 0);
    append_leaf_record(sink, 8);
    append_end(sink);
    return sink.take();
  }();
  auto incr = [&] {
    io::VectorSink sink;
    auto header = header_only(1, core::Mode::kIncremental, {7});
    sink.write(header.data(), header.size());
    append_inner_record(sink, 7, 8, 0);  // 8 defined by the full frame
    append_end(sink);
    return sink.take();
  }();
  auto registry = test_registry();
  auto report =
      verify::fsck_bytes(as_log({full, incr}, "fsck_window.log"), registry);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

TEST(Fsck, MissingRootIsError) {
  io::VectorSink sink;
  auto header = header_only(0, core::Mode::kFull, {7, 12});
  sink.write(header.data(), header.size());
  append_leaf_record(sink, 7);  // 12 never defined
  append_end(sink);
  auto registry = test_registry();
  auto report =
      verify::fsck_bytes(as_log({sink.take()}, "fsck_root.log"), registry);
  EXPECT_FALSE(report.clean()) << report.to_string();
  const verify::Finding* finding = report.first("missing-root");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->object_id, 12u);
}

TEST(Fsck, EpochRegressionIsError) {
  auto frame_at = [&](Epoch epoch) {
    io::VectorSink sink;
    auto header = header_only(epoch, core::Mode::kFull, {7});
    sink.write(header.data(), header.size());
    append_leaf_record(sink, 7);
    append_end(sink);
    return sink.take();
  };
  auto registry = test_registry();
  auto report = verify::fsck_bytes(
      as_log({frame_at(5), frame_at(3)}, "fsck_epoch.log"), registry);
  EXPECT_FALSE(report.clean()) << report.to_string();
  EXPECT_EQ(report.count("epoch-order"), 1u) << report.to_string();
}

TEST(Fsck, IncrementalFirstChainIsWarning) {
  io::VectorSink sink;
  auto header = header_only(0, core::Mode::kIncremental, {7});
  sink.write(header.data(), header.size());
  append_leaf_record(sink, 7);
  append_end(sink);
  auto registry = test_registry();
  auto report =
      verify::fsck_bytes(as_log({sink.take()}, "fsck_start.log"), registry);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.count("chain-start"), 1u) << report.to_string();
}

TEST(Fsck, TypeChangeWithinWindowIsError) {
  auto full = [&] {
    io::VectorSink sink;
    auto header = header_only(0, core::Mode::kFull, {7});
    sink.write(header.data(), header.size());
    append_leaf_record(sink, 7);
    append_end(sink);
    return sink.take();
  }();
  auto incr = [&] {
    io::VectorSink sink;
    auto header = header_only(1, core::Mode::kIncremental, {7});
    sink.write(header.data(), header.size());
    append_inner_record(sink, 7, 0, 0);  // id 7 was a Leaf
    append_end(sink);
    return sink.take();
  }();
  auto registry = test_registry();
  auto report =
      verify::fsck_bytes(as_log({full, incr}, "fsck_type.log"), registry);
  EXPECT_FALSE(report.clean()) << report.to_string();
  EXPECT_EQ(report.count("type-change"), 1u) << report.to_string();
}

TEST(Fsck, UnknownTypeIdIsFrameDecodeError) {
  io::VectorSink sink;
  auto header = header_only(0, core::Mode::kFull, {7});
  sink.write(header.data(), header.size());
  {
    io::DataWriter w(sink);
    w.write_u8(core::kRecordTag);
    w.write_varint(7777);  // not registered
    w.write_varint(7);
    w.flush();
  }
  append_end(sink);
  auto registry = test_registry();
  auto report =
      verify::fsck_bytes(as_log({sink.take()}, "fsck_unknown.log"), registry);
  EXPECT_FALSE(report.clean()) << report.to_string();
  EXPECT_GE(report.count("frame-decode"), 1u) << report.to_string();
}

}  // namespace
}  // namespace ickpt::testing
