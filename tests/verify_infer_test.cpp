// Static pattern inference: patterns constructed from the phase model's
// write sets are sound by construction (the independent checker finds
// nothing to say), at least as tight as the paper's hand declarations, and
// the constructor refuses what write sets cannot bound.
#include <gtest/gtest.h>

#include "analysis/parser.hpp"
#include "analysis/shapes.hpp"
#include "spec/compiler.hpp"
#include "tests/test_types.hpp"
#include "verify/infer.hpp"

namespace ickpt::testing {
namespace {

using analysis::Phase;
using spec::ModStatus;
using spec::OpCode;
using spec::PatternNode;
using verify::StaticPattern;

std::size_t tests_in(const spec::Plan& plan) {
  std::size_t n = 0;
  for (const spec::Op& op : plan.ops)
    if (op.code == OpCode::kTestSkip) ++n;
  return n;
}

std::size_t elided_tests(const spec::Plan& plan) {
  return plan.nodes_covered - tests_in(plan);
}

spec::Plan compile_verified(const spec::ShapeDescriptor& shape,
                            const PatternNode& pattern) {
  spec::CompileOptions opts;
  opts.verify_pattern = true;
  return spec::PlanCompiler(opts).compile(shape, pattern);
}

TEST(StaticInfer, BindingTimePatternHasExpectedShape) {
  StaticPattern inferred =
      verify::infer_attributes_pattern(Phase::kBindingTime);
  const PatternNode& p = inferred.pattern;

  // The BTA phase writes only the BT annotation: the skeleton and both
  // sibling subtrees are provably clean, the annotation keeps its test.
  EXPECT_FALSE(p.skip);
  EXPECT_EQ(p.self, ModStatus::kUnmodified);
  ASSERT_EQ(p.children.size(), 3u);
  EXPECT_TRUE(p.children[0].skip);  // SE subtree untouched
  EXPECT_FALSE(p.children[1].skip);
  EXPECT_EQ(p.children[1].self, ModStatus::kUnmodified);
  ASSERT_EQ(p.children[1].children.size(), 1u);
  EXPECT_EQ(p.children[1].children[0].self, ModStatus::kMaybeModified);
  EXPECT_TRUE(p.children[2].skip);  // ET subtree untouched

  // Accounting: all six bound positions judged, one in the write set.
  EXPECT_EQ(inferred.bound_positions, 6u);
  EXPECT_EQ(inferred.unbound_positions, 0u);
  EXPECT_EQ(inferred.written_positions, 1u);
  EXPECT_EQ(inferred.clean_positions, 5u);
  EXPECT_GE(inferred.skipped_subtrees, 2u);
}

TEST(StaticInfer, AllPhasesPassCheckerWithNoFindings) {
  // Sound by construction means the independent checker has nothing to say:
  // no errors (unsound claims), but also no notes (the constructor never
  // keeps a test on a provably clean bound position).
  for (Phase phase : {Phase::kStructureOnly, Phase::kSideEffect,
                      Phase::kBindingTime, Phase::kEvalTime}) {
    StaticPattern inferred = verify::infer_attributes_pattern(phase);
    auto report = verify::check_attributes_pattern(phase, inferred.pattern);
    EXPECT_TRUE(report.findings.empty())
        << "phase " << static_cast<int>(phase) << ":\n"
        << report.to_string();
  }
}

TEST(StaticInfer, CompilesThroughVerifyGateAndElidesTests) {
  auto shapes = analysis::AnalysisShapes::make();
  for (Phase phase :
       {Phase::kSideEffect, Phase::kBindingTime, Phase::kEvalTime}) {
    StaticPattern inferred = verify::infer_attributes_pattern(phase);
    spec::Plan plan = compile_verified(*shapes.attributes, inferred.pattern);
    EXPECT_GT(elided_tests(plan), 0u)
        << "phase " << static_cast<int>(phase);
  }
}

TEST(StaticInfer, AtLeastAsTightAsPaperDeclarations) {
  // The paper's hand-declared phase patterns are the quality bar: the
  // inferred pattern must elide at least as many per-run tests.
  auto shapes = analysis::AnalysisShapes::make();
  for (Phase phase :
       {Phase::kSideEffect, Phase::kBindingTime, Phase::kEvalTime}) {
    StaticPattern inferred = verify::infer_attributes_pattern(phase);
    spec::Plan static_plan =
        compile_verified(*shapes.attributes, inferred.pattern);
    spec::Plan paper_plan = compile_verified(
        *shapes.attributes, analysis::make_phase_pattern(phase));
    EXPECT_GE(elided_tests(static_plan), elided_tests(paper_plan))
        << "phase " << static_cast<int>(phase);
  }
}

TEST(StaticInfer, StructureOnlyPhaseKeepsEveryTest) {
  // main() transitively writes every global: nothing can be proven clean,
  // so the static pattern degenerates to the generic all-tests one.
  StaticPattern inferred =
      verify::infer_attributes_pattern(Phase::kStructureOnly);
  EXPECT_EQ(inferred.written_positions, 6u);
  EXPECT_EQ(inferred.clean_positions, 0u);
  EXPECT_EQ(inferred.skipped_subtrees, 0u);
  auto shapes = analysis::AnalysisShapes::make();
  spec::Plan plan = compile_verified(*shapes.attributes, inferred.pattern);
  EXPECT_EQ(elided_tests(plan), 0u);
}

TEST(StaticInfer, UnboundPositionsStayGeneric) {
  // No binding -> no claims: every position keeps the generic test.
  auto program = analysis::parse_program(verify::phase_model_source());
  auto shapes = analysis::AnalysisShapes::make();
  StaticPattern inferred = verify::infer_pattern(
      *program, "run_binding_time", *shapes.attributes, {});
  EXPECT_EQ(inferred.bound_positions, 0u);
  EXPECT_EQ(inferred.unbound_positions, 6u);
  spec::Plan plan = compile_verified(*shapes.attributes, inferred.pattern);
  EXPECT_EQ(elided_tests(plan), 0u);
}

TEST(StaticInfer, UnresolvableGlobalIsConservative) {
  // A binding naming an unknown global must not produce claims: the
  // position is treated as unbound, never as clean.
  auto program = analysis::parse_program(verify::phase_model_source());
  auto shapes = analysis::AnalysisShapes::make();
  verify::PatternBinding binding;
  binding.bind({0}, "no_such_global");
  StaticPattern inferred = verify::infer_pattern(
      *program, "run_binding_time", *shapes.attributes, binding);
  EXPECT_EQ(inferred.bound_positions, 0u);
  EXPECT_EQ(inferred.unbound_positions, 6u);
  EXPECT_FALSE(inferred.pattern.children[0].skip);
  EXPECT_EQ(inferred.pattern.children[0].self, ModStatus::kMaybeModified);
}

TEST(StaticInfer, MissingPhaseFunctionThrows) {
  auto program = analysis::parse_program(verify::phase_model_source());
  auto shapes = analysis::AnalysisShapes::make();
  EXPECT_THROW(verify::infer_pattern(*program, "no_such_phase",
                                     *shapes.attributes,
                                     verify::attributes_binding()),
               SpecError);
}

TEST(StaticInfer, RecursiveShapeRefused) {
  // Write sets speak about mutation, not structure: a recursive shape has
  // no static bound, so inference must refuse instead of diverging.
  Inner sample;
  spec::ShapeBuilder<Inner> builder("test.Inner", sample);
  builder.i32(&Inner::tag).self_child(&Inner::right);
  auto shape = builder.build();

  auto program = analysis::parse_program(verify::phase_model_source());
  verify::InferStaticOptions opts;
  opts.max_depth = 8;
  EXPECT_THROW(verify::infer_pattern(*program, "run_binding_time", *shape,
                                     {}, opts),
               SpecError);
}

}  // namespace
}  // namespace ickpt::testing
