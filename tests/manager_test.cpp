// CheckpointManager tests: full/incremental policy, recovery from a log,
// torn-tail recovery, and error paths.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/manager.hpp"
#include "io/file_io.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

using core::CheckpointManager;
using core::ManagerOptions;
using core::Mode;
using core::TypeRegistry;

class ManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ickpt_manager_test.log";
    std::remove(path_.c_str());
    register_test_types(registry_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  TypeRegistry registry_;
};

TEST_F(ManagerTest, PolicyTakesFullEveryInterval) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  ManagerOptions opts;
  opts.full_interval = 3;
  CheckpointManager manager(path_, opts);
  std::vector<Mode> modes;
  for (int i = 0; i < 7; ++i) {
    leaf->set_i32(i);
    modes.push_back(manager.take(*leaf).mode);
  }
  EXPECT_EQ(modes, (std::vector<Mode>{Mode::kFull, Mode::kIncremental,
                                      Mode::kIncremental, Mode::kFull,
                                      Mode::kIncremental, Mode::kIncremental,
                                      Mode::kFull}));
}

TEST_F(ManagerTest, ZeroIntervalRejected) {
  ManagerOptions opts;
  opts.full_interval = 0;
  EXPECT_THROW(CheckpointManager(path_, opts), Error);
}

TEST_F(ManagerTest, RecoverReplaysLatestFullPlusDeltas) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  Inner* root = heap.make<Inner>();
  root->set_left(leaf);
  ManagerOptions opts;
  opts.full_interval = 4;
  CheckpointManager manager(path_, opts);
  for (int i = 1; i <= 10; ++i) {
    leaf->set_i32(i);
    root->set_tag(100 + i);
    manager.take(*root);
  }
  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_TRUE(result.log_clean);
  // Epochs 0..9; last full at epoch 8, so 8..9 applied: 2 checkpoints.
  EXPECT_EQ(result.checkpoints_applied, 2u);
  Inner* recovered = result.state.root_as<Inner>();
  EXPECT_EQ(recovered->tag, 110);
  EXPECT_EQ(recovered->left->i32, 10);
}

TEST_F(ManagerTest, RecoverAfterTornTailDropsLastCheckpoint) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  {
    ManagerOptions opts;
    opts.full_interval = 100;  // one full + incrementals
    CheckpointManager manager(path_, opts);
    for (int i = 1; i <= 5; ++i) {
      leaf->set_i32(i);
      manager.take(*leaf);
    }
  }
  // Tear the final frame.
  auto bytes = io::read_file(path_);
  bytes.resize(bytes.size() - 7);
  io::write_file(path_, bytes);

  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_FALSE(result.log_clean);
  EXPECT_EQ(result.state.root_as<Leaf>()->i32, 4);
}

TEST_F(ManagerTest, RecoverEmptyLogThrows) {
  EXPECT_THROW(CheckpointManager::recover(path_, registry_), CorruptionError);
}

TEST_F(ManagerTest, RecoverWithoutFullCheckpointThrows) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  {
    CheckpointManager manager(path_);
    std::vector<core::Checkpointable*> roots{leaf};
    manager.take_with_mode(roots, Mode::kIncremental);
  }
  EXPECT_THROW(CheckpointManager::recover(path_, registry_), CorruptionError);
}

TEST_F(ManagerTest, TakeReportsBytesAndStats) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  CheckpointManager manager(path_);
  auto result = manager.take(*leaf);
  EXPECT_EQ(result.mode, Mode::kFull);
  EXPECT_EQ(result.stats.objects_recorded, 1u);
  EXPECT_GT(result.bytes, 0u);
  EXPECT_EQ(result.epoch, 0u);
  EXPECT_EQ(manager.next_epoch(), 1u);
}

TEST_F(ManagerTest, IncrementalAfterNoChangesIsTiny) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  CheckpointManager manager(path_);
  auto full = manager.take(*leaf);
  auto incr = manager.take(*leaf);  // nothing changed
  EXPECT_EQ(incr.mode, Mode::kIncremental);
  EXPECT_EQ(incr.stats.objects_recorded, 0u);
  EXPECT_LT(incr.bytes, full.bytes);
}

TEST_F(ManagerTest, RecoverStreamsInsteadOfMaterializing) {
  // Regression: recover() used to materialize every frame payload up front
  // via StableStorage::scan. It now streams — one payload-free indexing
  // pass plus one re-streaming pass per replay attempt, so a clean log
  // recovers in exactly two passes no matter how many windows it holds.
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  ManagerOptions opts;
  opts.full_interval = 3;
  CheckpointManager manager(path_, opts);
  for (int i = 1; i <= 11; ++i) {  // several full/incremental windows
    leaf->set_i32(i);
    manager.take(*leaf);
  }
  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_TRUE(result.log_clean);
  EXPECT_EQ(result.stream_passes, 2u);
  EXPECT_EQ(result.state.root_as<Leaf>()->i32, 11);
}

TEST_F(ManagerTest, RecoverAfterTornTailStillStreams) {
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  {
    ManagerOptions opts;
    opts.full_interval = 4;
    CheckpointManager manager(path_, opts);
    for (int i = 1; i <= 9; ++i) {
      leaf->set_i32(i);
      manager.take(*leaf);
    }
  }
  auto bytes = io::read_file(path_);
  bytes.resize(bytes.size() - 5);
  io::write_file(path_, bytes);

  auto result = CheckpointManager::recover(path_, registry_);
  EXPECT_FALSE(result.log_clean);
  EXPECT_EQ(result.state.root_as<Leaf>()->i32, 8);
  // One indexing pass plus at least one replay pass — and replays stay
  // bounded by the number of frames the index admitted.
  EXPECT_GE(result.stream_passes, 2u);
  EXPECT_LE(result.stream_passes, 10u);
}

TEST_F(ManagerTest, RecoverZeroLengthLogThrowsActionable) {
  // A zero-length file is what a crash right after open leaves behind. It
  // must be refused with a structured, actionable error — not a crash and
  // not a partial graph.
  io::write_file(path_, {});
  try {
    CheckpointManager::recover(path_, registry_);
    FAIL() << "recover() must throw on a zero-length log";
  } catch (const CorruptionError& e) {
    EXPECT_NE(std::string(e.what()).find("no recoverable checkpoint"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(path_), std::string::npos)
        << e.what();
  }
}

TEST_F(ManagerTest, RecoverHeaderOnlyLogThrowsCorruption) {
  // A log holding exactly one valid frame *header* and none of its payload:
  // the torn-final-write worst case. The scan must classify it as a torn
  // tail (zero complete frames), and recovery must refuse.
  std::vector<std::uint8_t> bytes;
  auto be32 = [&](std::uint32_t v) {
    for (int s = 24; s >= 0; s -= 8)
      bytes.push_back(static_cast<std::uint8_t>(v >> s));
  };
  be32(0x49434B46);            // frame magic
  for (int i = 0; i < 8; ++i)  // seq 0
    bytes.push_back(0);
  be32(64);          // claimed payload length, never written
  be32(0xDEADBEEF);  // crc (unverifiable without the payload)
  io::write_file(path_, bytes);

  EXPECT_THROW(CheckpointManager::recover(path_, registry_), CorruptionError);
}

TEST_F(ManagerTest, RecoverEmptyWindowFramesThrowActionable) {
  // Frames that decode fine but carry no object records (a checkpoint of an
  // empty root set): nothing to recover, and the error must say so rather
  // than hand back an empty graph as if it were state.
  {
    CheckpointManager manager(path_);
    std::vector<core::Checkpointable*> no_roots;
    manager.take(no_roots);
    manager.take(no_roots);
  }
  try {
    CheckpointManager::recover(path_, registry_);
    FAIL() << "recover() must refuse a record-free log";
  } catch (const CorruptionError& e) {
    EXPECT_NE(std::string(e.what()).find("empty checkpoint frames"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ManagerTest, RecoverSurvivesProcessRestartSimulation) {
  // "Crash" = destroy manager and heap; recover into a fresh heap and keep
  // checkpointing from there.
  ObjectId root_id;
  {
    core::Heap heap;
    Inner* root = heap.make<Inner>();
    Leaf* leaf = heap.make<Leaf>();
    root->set_left(leaf);
    leaf->set_i32(41);
    root_id = root->info().id();
    CheckpointManager manager(path_);
    manager.take(*root);
    leaf->set_i32(42);
    manager.take(*root);
  }  // crash

  auto result = CheckpointManager::recover(path_, registry_);
  Inner* root = result.state.root_as<Inner>();
  EXPECT_EQ(root->info().id(), root_id);
  EXPECT_EQ(root->left->i32, 42);

  // Continue checkpointing post-recovery; ids must not collide.
  core::Heap& heap = result.state.heap;
  Leaf* extra = heap.make<Leaf>();
  EXPECT_GT(extra->info().id(), root_id);
  root->set_right(nullptr);
  CheckpointManager manager(path_);
  auto take = manager.take(*root);
  EXPECT_GT(take.epoch, 0u);
}

}  // namespace
}  // namespace ickpt::testing
