// Metrics registry: concurrent-increment exactness, snapshot-under-load,
// name/kind collision behavior, histogram quantiles, exposition formats,
// and the null-handle zero-cost contract.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/metrics.hpp"

using namespace ickpt;

namespace {

/// Installs a registry for the test body and uninstalls on exit, so the
/// process-global slot never leaks between tests.
struct ScopedInstall {
  explicit ScopedInstall(obs::Registry& r) { obs::Registry::install(&r); }
  ~ScopedInstall() { obs::Registry::install(nullptr); }
};

TEST(ObsRegistry, NullHandlesAreInertAndFree) {
  ASSERT_EQ(obs::Registry::installed(), nullptr);
  obs::Counter c = obs::counter("ickpt_test_nowhere");
  obs::Gauge g = obs::gauge("ickpt_test_nowhere_g");
  obs::Histogram h = obs::histogram("ickpt_test_nowhere_h");
  EXPECT_FALSE(c.live());
  EXPECT_FALSE(g.live());
  EXPECT_FALSE(h.live());
  c.inc(5);       // all no-ops, must not crash
  g.set(7);
  g.add(1);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsRegistry, CounterAndGaugeBasics) {
  obs::Registry reg;
  obs::Counter c = reg.counter("requests_total");
  obs::Gauge g = reg.gauge("depth");
  c.inc();
  c.inc(41);
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(g.value(), 12);

  // Same (name, labels) -> same cell, from either the registry or the free
  // function while installed.
  ScopedInstall scoped(reg);
  obs::counter("requests_total").inc(8);
  EXPECT_EQ(c.value(), 50u);
}

TEST(ObsRegistry, LabelsSeparateCellsAndOrderDoesNot) {
  obs::Registry reg;
  obs::Counter ab = reg.counter("ops", {{"a", "1"}, {"b", "2"}});
  obs::Counter ba = reg.counter("ops", {{"b", "2"}, {"a", "1"}});
  obs::Counter other = reg.counter("ops", {{"a", "1"}, {"b", "3"}});
  ab.inc(3);
  ba.inc(4);  // same logical series: labels are sorted before keying
  other.inc(5);
  EXPECT_EQ(ab.value(), 7u);
  EXPECT_EQ(other.value(), 5u);

  obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_sum("ops"), 12u);
  const obs::MetricSnapshot* m =
      snap.find("ops", {{"a", "1"}, {"b", "2"}});
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->counter_value, 7u);
}

TEST(ObsRegistry, KindCollisionThrows) {
  obs::Registry reg;
  (void)reg.counter("mixed_up");
  EXPECT_THROW((void)reg.gauge("mixed_up"), Error);
  EXPECT_THROW((void)reg.histogram("mixed_up"), Error);
  // Same name under the same kind is fine (it is the same metric).
  EXPECT_NO_THROW((void)reg.counter("mixed_up"));
  // Distinct label sets of one name must still agree on the kind.
  EXPECT_THROW((void)reg.gauge("mixed_up", {{"l", "v"}}), Error);
}

TEST(ObsRegistry, ConcurrentIncrementsAreExact) {
  obs::Registry reg;
  obs::Counter c = reg.counter("hot");
  constexpr int kThreads = 8;
  constexpr int kIncs = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(ObsRegistry, SnapshotUnderLoadNeverGoesBackwards) {
  obs::Registry reg;
  obs::Counter c = reg.counter("load");
  obs::Histogram h = reg.histogram("load_seconds");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        h.observe(0.001);
      }
    });

  // Registration of *new* metrics while snapshots run must also be safe.
  std::thread registrar([&reg, &stop] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed))
      reg.counter("registered_live", {{"i", std::to_string(i++ % 16)}})
          .inc();
  });

  std::uint64_t last = 0;
  std::uint64_t last_hist = 0;
  for (int i = 0; i < 200; ++i) {
    obs::Snapshot snap = reg.snapshot();
    const obs::MetricSnapshot* m = snap.find("load");
    ASSERT_NE(m, nullptr);
    EXPECT_GE(m->counter_value, last);
    last = m->counter_value;
    const obs::MetricSnapshot* hist = snap.find("load_seconds");
    ASSERT_NE(hist, nullptr);
    // Bucket cells and the count are separate relaxed atomics, so a
    // snapshot racing an observe() may see them skewed by the writers that
    // are mid-flight — but never going backwards.
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : hist->bucket_counts) bucket_total += b;
    EXPECT_GE(bucket_total, last_hist);
    last_hist = bucket_total;
  }
  // 200 snapshots can finish before the OS even schedules the writers —
  // don't stop them until they have demonstrably run.
  while (c.value() == 0) std::this_thread::yield();
  stop.store(true);
  for (std::thread& t : writers) t.join();
  registrar.join();
  EXPECT_GT(c.value(), 0u);

  // At quiescence the invariant is exact.
  obs::Snapshot final_snap = reg.snapshot();
  const obs::MetricSnapshot* hist = final_snap.find("load_seconds");
  ASSERT_NE(hist, nullptr);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : hist->bucket_counts) bucket_total += b;
  EXPECT_EQ(bucket_total, hist->count);
  EXPECT_EQ(hist->count, c.value());
}

TEST(ObsRegistry, HistogramBucketsAndQuantiles) {
  obs::Registry reg;
  obs::Histogram h =
      reg.histogram("sizes", {}, {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 50; ++i) h.observe(0.5);   // bucket le=1
  for (int i = 0; i < 40; ++i) h.observe(3.0);   // bucket le=4
  for (int i = 0; i < 10; ++i) h.observe(100.0); // +Inf bucket

  obs::Snapshot snap = reg.snapshot();
  const obs::MetricSnapshot* m = snap.find("sizes");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->bucket_counts.size(), 5u);  // 4 finite + Inf
  EXPECT_EQ(m->bucket_counts[0], 50u);
  EXPECT_EQ(m->bucket_counts[2], 40u);
  EXPECT_EQ(m->bucket_counts[4], 10u);
  EXPECT_EQ(m->count, 100u);
  EXPECT_DOUBLE_EQ(m->sum, 50 * 0.5 + 40 * 3.0 + 10 * 100.0);

  // p50 falls in the first bucket (rank 50 of 100), p95 in +Inf, which
  // reports the largest finite bound.
  EXPECT_LE(m->quantile(0.25), 1.0);
  EXPECT_GT(m->quantile(0.75), 1.0);
  EXPECT_LE(m->quantile(0.75), 4.0);
  EXPECT_DOUBLE_EQ(m->quantile(0.99), 8.0);
}

TEST(ObsRegistry, HistogramConcurrentObserveKeepsCountConsistent) {
  obs::Registry reg;
  obs::Histogram h = reg.histogram("conc_seconds");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 20000; ++i)
        h.observe(1e-6 * static_cast<double>((t + 1) * (i % 100 + 1)));
    });
  for (std::thread& t : threads) t.join();
  obs::Snapshot snap = reg.snapshot();
  const obs::MetricSnapshot* m = snap.find("conc_seconds");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 80000u);
  std::uint64_t total = 0;
  for (std::uint64_t b : m->bucket_counts) total += b;
  EXPECT_EQ(total, 80000u);
  EXPECT_GT(m->sum, 0.0);
}

TEST(ObsRegistry, PrometheusExposition) {
  obs::Registry reg;
  reg.counter("ickpt_things_total", {{"kind", "a\"b"}}).inc(3);
  reg.gauge("ickpt_depth").set(-2);
  reg.histogram("ickpt_lat", {}, {0.5, 1.0}).observe(0.7);
  std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE ickpt_things_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ickpt_things_total{kind=\"a\\\"b\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ickpt_depth -2"), std::string::npos);
  // Cumulative buckets: le=1 includes the le=0.5 count.
  EXPECT_NE(text.find("ickpt_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ickpt_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("ickpt_lat_count 1"), std::string::npos);
}

TEST(ObsRegistry, JsonExposition) {
  obs::Registry reg;
  reg.counter("a_total").inc(7);
  reg.gauge("g").set(9);
  std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), '\n');
}

TEST(ObsRegistry, DestructorUninstallsItself) {
  {
    obs::Registry reg;
    obs::Registry::install(&reg);
    EXPECT_EQ(obs::Registry::installed(), &reg);
  }
  EXPECT_EQ(obs::Registry::installed(), nullptr);
}

}  // namespace
