// Fault-injected I/O: every FaultKind exercised against FileSink /
// StableStorage / the async manager path, asserting the write-path
// contract — transient failures are retried with backoff, torn writes are
// rolled back to a frame boundary, bit flips are silent until the CRC,
// crashes leave the torn bytes on disk, and a failed background append
// surfaces from flush() with the lost frame's seq in the message.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/manager.hpp"
#include "io/fault.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

using io::FaultKind;
using io::ScriptedFaultPolicy;
using io::StableStorage;
using io::StorageOptions;

// 16-byte payloads => every frame is exactly 20 + 16 = 36 bytes.
constexpr std::size_t kFrameBytes = 36;

std::vector<std::uint8_t> payload_of(std::uint8_t fill) {
  return std::vector<std::uint8_t>(16, fill);
}

class FaultIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ickpt_fault_io_test.log";
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".bak").c_str());
  }

  std::string path_;
};

TEST_F(FaultIoTest, TornWriteRollsBackToFrameBoundary) {
  ScriptedFaultPolicy policy(FaultKind::kTornWrite, kFrameBytes + 4);
  StableStorage storage(path_, StorageOptions{.fault = &policy});
  storage.append(payload_of(0xA0));

  try {
    storage.append(payload_of(0xA1));
    FAIL() << "torn write must surface as IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("torn write"), std::string::npos);
  }
  EXPECT_TRUE(policy.fired());

  // The partial frame was truncated away: the log is clean and the next
  // append lands on the frame boundary with the *retried* seq.
  auto scan = StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 1u);

  EXPECT_EQ(storage.append(payload_of(0xA2)), 1u);
  scan = StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 2u);
  EXPECT_EQ(scan.frames[1].payload, payload_of(0xA2));
  EXPECT_EQ(scan.frames[1].offset, kFrameBytes);
}

TEST_F(FaultIoTest, TransientFailureIsRetriedWithBackoff) {
  // Two consecutive EINTR-style failures, well under max_attempts.
  ScriptedFaultPolicy policy(FaultKind::kTransient, 0, EINTR,
                             /*transient_count=*/2);
  StableStorage storage(path_, StorageOptions{.fault = &policy});
  EXPECT_EQ(storage.append(payload_of(0xB0)), 0u);
  EXPECT_TRUE(policy.fired());

  auto scan = StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0].payload, payload_of(0xB0));
}

TEST_F(FaultIoTest, TransientFailureExhaustsBoundedRetries) {
  ScriptedFaultPolicy policy(FaultKind::kTransient, 0, ENOSPC,
                             /*transient_count=*/100);
  io::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = std::chrono::microseconds(1);
  retry.max_backoff = std::chrono::microseconds(4);
  StableStorage storage(path_,
                        StorageOptions{.fault = &policy, .retry = retry});

  try {
    storage.append(payload_of(0xC0));
    FAIL() << "exhausted retries must surface as IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("attempt"), std::string::npos)
        << e.what();
  }
  // Nothing was ever written; the log is empty and clean, and the seq was
  // not consumed.
  auto scan = StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  EXPECT_TRUE(scan.frames.empty());
  EXPECT_EQ(storage.next_seq(), 0u);
}

TEST_F(FaultIoTest, ShortWriteContinuesWithRemainder) {
  // 10 bytes land, then the sink re-consults the (now spent) policy and
  // writes the rest; the caller never notices.
  ScriptedFaultPolicy policy(FaultKind::kShortWrite, 10);
  StableStorage storage(path_, StorageOptions{.fault = &policy});
  EXPECT_EQ(storage.append(payload_of(0xD0)), 0u);
  EXPECT_TRUE(policy.fired());

  auto scan = StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.frames[0].payload, payload_of(0xD0));
}

TEST_F(FaultIoTest, BitFlipIsSilentUntilTheCrc) {
  // Flip a bit inside frame 0's payload: the append succeeds (silent
  // corruption), the plain scan stops at byte 0, and a salvage scan
  // resynchronizes on frame 1.
  ScriptedFaultPolicy policy(FaultKind::kBitFlip, 20 + 3);
  StableStorage storage(path_, StorageOptions{.fault = &policy});
  EXPECT_EQ(storage.append(payload_of(0xE0)), 0u);  // no throw
  EXPECT_EQ(storage.append(payload_of(0xE1)), 1u);
  EXPECT_TRUE(policy.fired());

  auto scan = StableStorage::scan(path_);
  EXPECT_FALSE(scan.clean);
  EXPECT_TRUE(scan.frames.empty());
  EXPECT_EQ(scan.stop_offset, 0u);
  EXPECT_NE(scan.stop_reason.find("CRC"), std::string::npos)
      << scan.stop_reason;

  auto salvaged = StableStorage::scan(path_, {.salvage = true});
  ASSERT_EQ(salvaged.frames.size(), 1u);
  EXPECT_EQ(salvaged.frames[0].seq, 1u);
  EXPECT_TRUE(salvaged.frames[0].resync);
  EXPECT_EQ(salvaged.regions_skipped, 1u);
  EXPECT_EQ(salvaged.bytes_skipped, kFrameBytes);
}

TEST_F(FaultIoTest, CrashFaultLeavesTornBytesOnDisk) {
  ScriptedFaultPolicy policy(FaultKind::kCrash, kFrameBytes + 4);
  {
    StableStorage storage(path_, StorageOptions{.fault = &policy});
    storage.append(payload_of(0xF0));
    try {
      storage.append(payload_of(0xF1));
      FAIL() << "crash fault must surface as CrashFault";
    } catch (const io::CrashFault& e) {
      EXPECT_NE(std::string(e.what()).find("crash"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos);
    }
  }
  // Unlike a torn write, nothing is rolled back: the file holds one clean
  // frame plus 4 torn bytes — exactly the state recovery has to handle.
  auto bytes = io::read_file(path_);
  EXPECT_EQ(bytes.size(), kFrameBytes + 4);
  auto scan = StableStorage::scan(path_);
  EXPECT_FALSE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 1u);
  EXPECT_EQ(scan.stop_offset, kFrameBytes);
  EXPECT_EQ(scan.valid_prefix_bytes, kFrameBytes);
}

TEST_F(FaultIoTest, CrashFaultIsNotAnIoError) {
  // Rollback/retry paths key on IoError; a simulated crash must never be
  // caught by them.
  try {
    throw io::CrashFault("boom");
  } catch (const IoError&) {
    FAIL() << "CrashFault must not convert to IoError";
  } catch (const Error&) {
    SUCCEED();
  }
}

TEST_F(FaultIoTest, ReopenAfterCrashRepairsTornTail) {
  ScriptedFaultPolicy policy(FaultKind::kCrash, kFrameBytes + 4);
  {
    StableStorage storage(path_, StorageOptions{.fault = &policy});
    storage.append(payload_of(0x10));
    EXPECT_THROW(storage.append(payload_of(0x11)), io::CrashFault);
  }
  // Reopening truncates the torn tail (saving it to .bak) so the next
  // append starts on a frame boundary.
  StableStorage reopened(path_);
  EXPECT_EQ(reopened.next_seq(), 1u);
  EXPECT_EQ(reopened.append(payload_of(0x12)), 1u);

  auto scan = StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  ASSERT_EQ(scan.frames.size(), 2u);
  EXPECT_EQ(scan.frames[1].payload, payload_of(0x12));
  EXPECT_EQ(io::read_file(path_ + ".bak").size(), 4u);
}

TEST_F(FaultIoTest, BackoffDelayNeverOverflowsAtHighAttempts) {
  // Regression guard: the exponential used to be computed as
  // initial << attempt before the max_backoff cap, which is undefined
  // behavior from attempt 32 onwards. The delay must saturate instead.
  io::RetryPolicy retry;
  retry.initial_backoff = std::chrono::microseconds{100};
  retry.max_backoff = std::chrono::microseconds{250'000};
  EXPECT_EQ(io::backoff_delay(retry, 0).count(), 100);
  EXPECT_EQ(io::backoff_delay(retry, 1).count(), 200);
  // 100 * 2^11 = 204800 still fits; 2^12 crosses the cap.
  EXPECT_EQ(io::backoff_delay(retry, 11).count(), 204'800);
  EXPECT_EQ(io::backoff_delay(retry, 12).count(), 250'000);
  for (unsigned attempt = 0; attempt < 80; ++attempt) {
    const auto delay = io::backoff_delay(retry, attempt);
    EXPECT_GE(delay.count(), 100) << "attempt " << attempt;
    EXPECT_LE(delay.count(), 250'000) << "attempt " << attempt;
  }
  // Degenerate policies stay sane too.
  retry.max_backoff = std::chrono::microseconds{0};  // cap below initial
  EXPECT_EQ(io::backoff_delay(retry, 70).count(), 100);
  retry.initial_backoff = std::chrono::microseconds{0};
  EXPECT_EQ(io::backoff_delay(retry, 70).count(), 0);
}

TEST_F(FaultIoTest, SixtyFourRetryAttemptsExhaustWithoutOverflow) {
  // max_attempts = 64 drives the backoff shift far past the width of the
  // delay type; the append must fail cleanly after the 65th consultation,
  // not hit undefined behavior (UBSan is the real assertion here).
  ScriptedFaultPolicy policy(FaultKind::kTransient, 0, ENOSPC,
                             /*transient_count=*/1000);
  io::RetryPolicy retry;
  retry.max_attempts = 64;
  retry.initial_backoff = std::chrono::microseconds(1);
  retry.max_backoff = std::chrono::microseconds(8);
  StableStorage storage(path_,
                        StorageOptions{.fault = &policy, .retry = retry});
  EXPECT_THROW(storage.append(payload_of(0xC1)), IoError);
  auto scan = StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  EXPECT_TRUE(scan.frames.empty());
  EXPECT_EQ(storage.next_seq(), 0u);
}

TEST_F(FaultIoTest, BackoffJitterIsDeterministicPerSeedAndBounded) {
  io::RetryPolicy plain;
  plain.initial_backoff = std::chrono::microseconds{100};
  plain.max_backoff = std::chrono::microseconds{250'000};
  io::RetryPolicy seeded = plain;
  seeded.jitter_seed = 42;
  io::RetryPolicy other = plain;
  other.jitter_seed = 43;

  bool seeds_diverge = false;
  for (unsigned attempt = 0; attempt < 40; ++attempt) {
    const auto base = io::backoff_delay(plain, attempt);
    const auto jittered = io::backoff_delay(seeded, attempt);
    // Decorrelated into [base/2, base]: never longer than the classic
    // schedule (liveness bounds hold), never below half (backoff still
    // backs off).
    EXPECT_LE(jittered.count(), base.count()) << "attempt " << attempt;
    EXPECT_GE(jittered.count(), base.count() / 2) << "attempt " << attempt;
    // Same seed, same attempt => same delay, every time.
    EXPECT_EQ(jittered.count(), io::backoff_delay(seeded, attempt).count());
    if (io::backoff_delay(other, attempt) != jittered) seeds_diverge = true;
  }
  EXPECT_TRUE(seeds_diverge) << "distinct seeds must decorrelate";
}

TEST_F(FaultIoTest, ManagerPlumbsJitterSeedIntoRetries) {
  // retry_jitter_seed reaches the storage retry path: two transient
  // failures are absorbed exactly as with the classic schedule (the jitter
  // only shortens the waits — it must never turn a retryable failure into
  // a hard one).
  core::TypeRegistry registry;
  register_test_types(registry);
  ScriptedFaultPolicy policy(FaultKind::kTransient, 0, EINTR,
                             /*transient_count=*/2);
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  core::ManagerOptions opts;
  opts.fault_policy = &policy;
  opts.retry.initial_backoff = std::chrono::microseconds{1};
  opts.retry_jitter_seed = 0x5EED;
  core::CheckpointManager manager(path_, opts);
  leaf->set_i32(7);
  EXPECT_EQ(manager.take(*leaf).seq, 0u);
  EXPECT_TRUE(policy.fired());
  EXPECT_EQ(core::CheckpointManager::recover(path_, registry).state.epoch,
            0u);
}

// Acceptance criterion: with async_io, an injected append failure surfaces
// as an exception from flush() carrying the failed frame's seq.
TEST_F(FaultIoTest, AsyncManagerAppendFailureSurfacesFromFlush) {
  core::TypeRegistry registry;
  register_test_types(registry);

  // Dry run to learn the deterministic frame layout (fresh heap => same
  // object ids => identical bytes).
  std::uint64_t second_frame_offset = 0;
  {
    core::Heap heap;
    Leaf* leaf = heap.make<Leaf>();
    core::CheckpointManager manager(path_);
    leaf->set_i32(1);
    manager.take(*leaf);
    leaf->set_i32(2);
    manager.take(*leaf);
    auto scan = io::StableStorage::scan(path_);
    ASSERT_EQ(scan.frames.size(), 2u);
    second_frame_offset = scan.frames[1].offset;
  }
  std::remove(path_.c_str());

  ScriptedFaultPolicy policy(FaultKind::kTornWrite, second_frame_offset + 4);
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  core::ManagerOptions opts;
  opts.async_io = true;
  opts.fault_policy = &policy;
  core::CheckpointManager manager(path_, opts);
  leaf->set_i32(1);
  manager.take(*leaf);
  leaf->set_i32(2);
  manager.take(*leaf);

  try {
    manager.flush();
    FAIL() << "flush() must rethrow the background append failure";
  } catch (const IoError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("seq 1"), std::string::npos) << what;
    EXPECT_NE(what.find("torn write"), std::string::npos) << what;
  }
  // The failed append was rolled back by StableStorage, so the surviving
  // log is the clean one-frame prefix.
  auto scan = io::StableStorage::scan(path_);
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.frames.size(), 1u);
}

}  // namespace
}  // namespace ickpt::testing
