// Residualizer tests: folding, branch resolution, loop removal, call
// folding via the interpreter, and the central soundness property —
// interp(residual, inputs) == interp(original, inputs) for any inputs.
#include <gtest/gtest.h>

#include "analysis/interp.hpp"
#include "analysis/parser.hpp"
#include "analysis/printer.hpp"
#include "analysis/program_gen.hpp"
#include "analysis/residualize.hpp"
#include "common/error.hpp"

namespace ickpt::analysis {
namespace {

ResidualProgram specialize(const char* src,
                           std::vector<std::string> dynamic = {}) {
  auto program = parse_program(src);
  ResidualizeOptions opts;
  // Convention for these tests: a global named `d` is the dynamic input.
  if (dynamic.empty() && program->find_global("d") >= 0) dynamic = {"d"};
  opts.dynamic_globals = std::move(dynamic);
  return residualize(*program, opts);
}

std::int32_t interp_value(const Program& program,
                          std::int32_t dynamic_input = 0,
                          const char* input_name = nullptr) {
  Interpreter interp(program);
  if (input_name != nullptr) interp.set_global(input_name, dynamic_input);
  return interp.run().exit_value;
}

TEST(Residualize, FoldsConstantGlobalExpressions) {
  auto result = specialize(
      "int k = 6;\n"
      "int d;\n"
      "int main() { return k * 7 + d; }");
  EXPECT_GE(result.stats.expressions_folded, 1u);
  // The residual return is `42 + d`-shaped: still correct for any d.
  auto original = parse_program("int k = 6; int d;\n"
                                "int main() { return k * 7 + d; }");
  for (std::int32_t d : {0, -3, 1000}) {
    EXPECT_EQ(interp_value(*result.program, d, "d"),
              interp_value(*original, d, "d"));
  }
}

TEST(Residualize, SingleAssignmentLocalsFold) {
  auto result = specialize(
      "int d;\n"
      "int main() { int base = 10 * 10; int x = base + 1; "
      "return x + d; }");
  EXPECT_GE(result.stats.expressions_folded, 2u);
  EXPECT_EQ(interp_value(*result.program, 5, "d"), 106);
}

TEST(Residualize, ReassignedLocalsDoNotFold) {
  auto result = specialize(
      "int d;\n"
      "int main() { int x = 1; x = x + d; return x; }");
  EXPECT_EQ(interp_value(*result.program, 9, "d"), 10);
}

TEST(Residualize, WrittenGlobalsDoNotFold) {
  auto result = specialize(
      "int g = 3;\n"
      "int main() { g = g + 1; return g * 2; }");
  EXPECT_EQ(interp_value(*result.program), 8);
}

TEST(Residualize, ConstantBranchesResolve) {
  auto result = specialize(
      "int mode = 2; int d;\n"
      "int main() {\n"
      "  if (mode == 1) { return d; }\n"
      "  if (mode == 2) { return d * 2; }\n"
      "  return 0 - 1;\n"
      "}");
  EXPECT_GE(result.stats.branches_resolved, 2u);
  EXPECT_LT(result.stats.statements_out, result.stats.statements_in);
  EXPECT_EQ(interp_value(*result.program, 21, "d"), 42);
}

TEST(Residualize, BranchWithLocalsKeptToPreserveScoping) {
  auto result = specialize(
      "int main() { if (1 == 1) { int t = 5; return t; } return 0; }");
  // Not spliced (the branch declares a local), but still correct.
  EXPECT_EQ(result.stats.branches_resolved, 0u);
  EXPECT_EQ(interp_value(*result.program), 5);
}

TEST(Residualize, DeadWhileLoopsDisappear) {
  auto result = specialize(
      "int enabled = 0; int d;\n"
      "int main() { int s; s = 0;\n"
      "  while (enabled != 0) { s = s + d; }\n"
      "  return s; }");
  EXPECT_EQ(result.stats.loops_removed, 1u);
  EXPECT_EQ(interp_value(*result.program, 7, "d"), 0);
}

TEST(Residualize, PureCallsOverConstantsFold) {
  auto result = specialize(
      "int d;\n"
      "int cube(int v) { return v * v * v; }\n"
      "int main() { return cube(4) + d; }");
  EXPECT_GE(result.stats.calls_folded, 1u);
  EXPECT_EQ(interp_value(*result.program, 1, "d"), 65);
}

TEST(Residualize, EffectfulCallsStayResidual) {
  auto result = specialize(
      "int counter = 0;\n"
      "int bump() { counter = counter + 1; return counter; }\n"
      "int main() { return bump() + bump(); }");
  EXPECT_EQ(result.stats.calls_folded, 0u);
  EXPECT_EQ(interp_value(*result.program), 3);  // 1 + 2
}

TEST(Residualize, CallsReadingDynamicGlobalsStayResidual) {
  auto result = specialize(
      "int d;\n"
      "int peek() { return d; }\n"
      "int main() { d = 5; return peek(); }");
  EXPECT_EQ(result.stats.calls_folded, 0u);
  EXPECT_EQ(interp_value(*result.program), 5);
}

TEST(Residualize, ShortCircuitFoldsWithUnfoldableRight) {
  auto result = specialize(
      "int off = 0; int d;\n"
      "int main() { if (off != 0 && d / 1 > 0) { return 1; } return 2; }");
  EXPECT_GE(result.stats.branches_resolved, 1u);
  EXPECT_EQ(interp_value(*result.program, 3, "d"), 2);
}

TEST(Residualize, DivisionByZeroIsNotFolded) {
  // 1/0 must fault at run time in the residual exactly as in the original.
  auto result = specialize(
      "int zero = 0;\n"
      "int main() { return 1 / zero; }");
  EXPECT_THROW(interp_value(*result.program), AnalysisError);
}

TEST(Residualize, ResidualProgramPrintsAndReparses) {
  auto result = specialize(
      "int k = 2; int d;\n"
      "int twice(int v) { return v * 2; }\n"
      "int main() { int c = twice(k); if (k > 0) { d = d + c; } "
      "return d; }");
  std::string printed = print_program(*result.program);
  auto reparsed = parse_program(printed);
  Interpreter a(*result.program);
  a.set_global("d", 11);
  Interpreter b(*reparsed);
  b.set_global("d", 11);
  EXPECT_EQ(a.run().exit_value, b.run().exit_value);
}

TEST(Residualize, ImageProgramEquivalentAcrossSeeds) {
  auto original = parse_program(generate_image_program(1, /*dim=*/8));
  ResidualizeOptions opts;
  opts.dynamic_globals = default_bta_config().dynamic_globals;
  auto result = residualize(*original, opts);
  EXPECT_GT(result.stats.expressions_folded, 50u);

  for (std::int32_t seed : {12345, 777, -1}) {
    Interpreter a(*original);
    a.set_global("seed", seed);
    Interpreter b(*result.program);
    b.set_global("seed", seed);
    EXPECT_EQ(a.run().exit_value, b.run().exit_value) << "seed " << seed;
  }
}

TEST(Residualize, StatsAccountForStatementCounts) {
  auto program = parse_program(generate_image_program(1, /*dim=*/8));
  ResidualizeOptions opts;
  opts.dynamic_globals = default_bta_config().dynamic_globals;
  auto result = residualize(*program, opts);
  EXPECT_EQ(result.stats.statements_in, program->statements.size());
  EXPECT_EQ(result.stats.statements_out,
            result.program->statements.size());
  EXPECT_LE(result.stats.statements_out, result.stats.statements_in);
}

}  // namespace
}  // namespace ickpt::analysis
