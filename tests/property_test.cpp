// Randomized property tests over the DESIGN.md §6 invariants:
//
//   1. recover(full(G)) is isomorphic to G, for random object graphs.
//   2. full(t0) + incrementals(t1..tn) recovers the same state as a direct
//      full(tn), for random mutation sequences.
//   3. A plan compiled from any valid (over-approximating) random pattern
//      emits byte-identical output to the generic driver.
//   4. After any checkpoint, every visited object is clean.
#include <gtest/gtest.h>

#include <random>

#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "tests/synth_helpers.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

using core::Mode;

// --- random tree graphs over the test classes -------------------------------

struct RandomGraph {
  core::Heap heap;
  std::vector<Inner*> inners;
  std::vector<Leaf*> leaves;
  Inner* root = nullptr;

  static RandomGraph make(std::mt19937_64& rng, int n_inner, int n_leaf) {
    RandomGraph g;
    for (int i = 0; i < n_leaf; ++i) {
      Leaf* leaf = g.heap.make<Leaf>();
      leaf->set_i32(static_cast<std::int32_t>(rng()));
      leaf->set_i64(static_cast<std::int64_t>(rng()));
      leaf->set_f64(static_cast<double>(rng() % 1000) / 7.0);
      leaf->set_flag((rng() & 1) != 0);
      g.leaves.push_back(leaf);
    }
    for (int i = 0; i < n_inner; ++i) {
      Inner* inner = g.heap.make<Inner>();
      inner->set_tag(static_cast<std::int32_t>(rng() % 1000));
      g.inners.push_back(inner);
    }
    // Wire a strict tree: inner i may point to a later inner (right) and any
    // leaf used at most once (left), guaranteeing acyclic, unshared shape.
    std::size_t next_leaf = 0;
    for (std::size_t i = 0; i < g.inners.size(); ++i) {
      if (i + 1 < g.inners.size() && (rng() % 4) != 0)
        g.inners[i]->set_right(g.inners[i + 1]);
      if (next_leaf < g.leaves.size() && (rng() % 3) != 0)
        g.inners[i]->set_left(g.leaves[next_leaf++]);
    }
    g.root = g.inners.front();
    return g;
  }

  void mutate(std::mt19937_64& rng) {
    for (Leaf* leaf : leaves) {
      if (rng() % 3 == 0) leaf->set_i32(static_cast<std::int32_t>(rng()));
    }
    for (Inner* inner : inners) {
      if (rng() % 5 == 0) inner->set_tag(static_cast<std::int32_t>(rng()));
    }
  }

  /// Objects reachable from root (those a checkpoint can see).
  void reachable(const Inner* node, std::vector<const Leaf*>& leaves_out,
                 std::vector<const Inner*>& inners_out) const {
    if (node == nullptr) return;
    inners_out.push_back(node);
    if (node->left != nullptr) leaves_out.push_back(node->left);
    reachable(node->right, leaves_out, inners_out);
  }
};

void expect_isomorphic(const Inner* a, const Inner* b) {
  ASSERT_EQ(a == nullptr, b == nullptr);
  if (a == nullptr) return;
  EXPECT_EQ(a->info().id(), b->info().id());
  EXPECT_EQ(a->tag, b->tag);
  ASSERT_EQ(a->left == nullptr, b->left == nullptr);
  if (a->left != nullptr) {
    EXPECT_EQ(a->left->info().id(), b->left->info().id());
    EXPECT_TRUE(a->left->state_equals(*b->left));
  }
  expect_isomorphic(a->right, b->right);
}

class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripProperty, FullCheckpointRecoversIsomorphicGraph) {
  std::mt19937_64 rng(GetParam());
  RandomGraph g = RandomGraph::make(rng, 20, 15);
  std::vector<core::Checkpointable*> roots{g.root};
  auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);

  core::TypeRegistry registry;
  register_test_types(registry);
  core::Recovery recovery(registry);
  io::DataReader reader(bytes);
  recovery.apply(reader);
  auto state = recovery.finish();
  expect_isomorphic(g.root, state.root_as<Inner>());
}

TEST_P(RoundTripProperty, IncrementalChainEqualsDirectFull) {
  std::mt19937_64 rng(GetParam() ^ 0xABCD);
  RandomGraph g = RandomGraph::make(rng, 16, 12);
  std::vector<core::Checkpointable*> roots{g.root};

  core::TypeRegistry registry;
  register_test_types(registry);
  core::Recovery chain(registry);
  {
    auto bytes = checkpoint_bytes(roots, 0, Mode::kFull);
    io::DataReader reader(bytes);
    chain.apply(reader);
  }
  const int epochs = 1 + static_cast<int>(GetParam() % 6);
  for (int e = 1; e <= epochs; ++e) {
    g.mutate(rng);
    auto bytes = checkpoint_bytes(roots, static_cast<Epoch>(e),
                                  Mode::kIncremental);
    io::DataReader reader(bytes);
    chain.apply(reader);
  }
  auto chained = chain.finish();

  // Direct full checkpoint of the final live state.
  auto final_bytes = checkpoint_bytes(roots, 99, Mode::kFull);
  core::Recovery direct(registry);
  io::DataReader reader(final_bytes);
  direct.apply(reader);
  auto direct_state = direct.finish();

  expect_isomorphic(direct_state.root_as<Inner>(), chained.root_as<Inner>());
}

TEST_P(RoundTripProperty, CheckpointLeavesVisitedObjectsClean) {
  std::mt19937_64 rng(GetParam() ^ 0x1234);
  RandomGraph g = RandomGraph::make(rng, 12, 10);
  g.mutate(rng);
  std::vector<core::Checkpointable*> roots{g.root};
  checkpoint_bytes(roots, 0, Mode::kIncremental);
  std::vector<const Leaf*> leaves;
  std::vector<const Inner*> inners;
  g.reachable(g.root, leaves, inners);
  for (const Inner* inner : inners) EXPECT_FALSE(inner->info().modified());
  for (const Leaf* leaf : leaves) EXPECT_FALSE(leaf->info().modified());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// --- random valid patterns over the synthetic shapes -------------------------

/// Build a random pattern that over-approximates the actual mutation
/// behaviour: positions the workload may modify get random non-skip
/// statuses; positions it cannot modify randomly choose between skip,
/// kUnmodified, and (sound but wasteful) kMaybeModified.
spec::PatternNode random_valid_pattern(std::mt19937_64& rng,
                                       const synth::SynthConfig& config) {
  using spec::ModStatus;
  using spec::PatternNode;

  auto chain = [&](auto&& self, int remaining, bool may_modify) -> PatternNode {
    PatternNode node;
    const bool is_tail = remaining == 1;
    const bool dirtyable =
        may_modify && (!config.last_element_only || is_tail);
    if (dirtyable) {
      node.self = ModStatus::kMaybeModified;
    } else {
      node.self =
          (rng() % 2 == 0) ? ModStatus::kUnmodified : ModStatus::kMaybeModified;
    }
    if (rng() % 2 == 0)
      node.array_count = static_cast<std::uint32_t>(config.values_per_elem);
    if (remaining > 1) {
      node.children.push_back(self(self, remaining - 1, may_modify));
    } else if (rng() % 2 == 0) {
      node.children.push_back(PatternNode::absent());
    } else {
      // A skipped child also bounds the recursion and is sound here: there
      // is nothing beyond the tail element.
      node.children.push_back(PatternNode::skipped());
    }
    return node;
  };

  PatternNode root;
  root.self = (rng() % 2 == 0) ? spec::ModStatus::kUnmodified
                               : spec::ModStatus::kMaybeModified;
  for (int i = 0; i < synth::Compound::kLists; ++i) {
    const bool may_modify = i < config.modified_lists;
    PatternNode list = chain(chain, config.list_length, may_modify);
    if (!may_modify && rng() % 2 == 0) list.skip = true;
    root.children.push_back(std::move(list));
  }
  return root;
}

class RandomPatternProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomPatternProperty, ValidPatternsAreByteExact) {
  std::mt19937_64 rng(GetParam() * 7919);
  synth::SynthConfig config;
  config.num_structures = 24;
  config.list_length = 1 + static_cast<int>(rng() % 5);
  config.values_per_elem = 1 + static_cast<int>(rng() % 10);
  config.modified_lists = static_cast<int>(rng() % 6);
  config.last_element_only = (rng() & 1) != 0;
  config.percent_modified = static_cast<int>(rng() % 101);
  config.seed = GetParam();

  core::Heap heap;
  synth::SynthWorkload workload(heap, config);
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();
  auto generic = generic_bytes(workload, 5);

  synth::SynthShapes shapes = synth::SynthShapes::make();
  for (int trial = 0; trial < 4; ++trial) {
    spec::PatternNode pattern = random_valid_pattern(rng, config);
    spec::Plan plan = spec::PlanCompiler().compile(*shapes.compound, pattern);
    spec::PlanExecutor exec(plan);
    workload.restore_flags(flags);
    EXPECT_EQ(plan_bytes(workload, exec, 5), generic)
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPatternProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace ickpt::testing
