// Lexer and parser tests for the simplified-C front end.
#include <gtest/gtest.h>

#include "analysis/lexer.hpp"
#include "analysis/parser.hpp"
#include "analysis/program_gen.hpp"
#include "common/error.hpp"

namespace ickpt::analysis {
namespace {

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  Lexer lexer("int x = 1 + 2 * 3; if (x <= 7 && x != 0) { return !x; }");
  auto tokens = lexer.tokenize();
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kKwInt);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kLe),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kAndAnd),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kNot),
            kinds.end());
}

TEST(Lexer, SkipsLineAndBlockComments) {
  Lexer lexer("// line\nint /* block\nspanning */ x;");
  auto tokens = lexer.tokenize();
  ASSERT_EQ(tokens.size(), 4u);  // int, x, ;, eof
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[1].line, 3);
}

TEST(Lexer, TracksLineNumbers) {
  Lexer lexer("int a;\nint b;\n\nint c;");
  auto tokens = lexer.tokenize();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[3].line, 2);
  EXPECT_EQ(tokens[6].line, 4);
}

TEST(Lexer, RejectsStrayCharacters) {
  Lexer lexer("int a @ b;");
  EXPECT_THROW(lexer.tokenize(), ParseError);
}

TEST(Lexer, RejectsUnterminatedComment) {
  Lexer lexer("int a; /* never closed");
  EXPECT_THROW(lexer.tokenize(), ParseError);
}

TEST(Lexer, RejectsOverflowingLiteral) {
  Lexer lexer("int a = 99999999999;");
  EXPECT_THROW(lexer.tokenize(), ParseError);
}

TEST(Lexer, SingleAmpersandRejected) {
  Lexer lexer("int a = 1 & 2;");
  EXPECT_THROW(lexer.tokenize(), ParseError);
}

TEST(Parser, GlobalsAndArrays) {
  auto program = parse_program("int a; int b = -5; int buf[100];");
  ASSERT_EQ(program->globals.size(), 3u);
  EXPECT_EQ(program->symbols.at(program->globals[1]).init_value, -5);
  EXPECT_TRUE(program->symbols.at(program->globals[2]).is_array);
  EXPECT_EQ(program->symbols.at(program->globals[2]).array_size, 100);
}

TEST(Parser, FunctionWithParamsAndCalls) {
  auto program = parse_program(
      "int add(int a, int b) { return a + b; }\n"
      "int main() { return add(1, add(2, 3)); }");
  ASSERT_EQ(program->functions.size(), 2u);
  EXPECT_EQ(program->functions[0].params.size(), 2u);
  EXPECT_EQ(program->find_function("main"), 1);
}

TEST(Parser, ForwardCallsResolve) {
  auto program = parse_program(
      "int main() { return helper(); }\n"
      "int helper() { return 7; }");
  const Stmt* ret = program->functions[0].body[0].get();
  EXPECT_EQ(ret->expr1->kind, ExprKind::kCall);
  EXPECT_EQ(ret->expr1->callee_index, 1);
}

TEST(Parser, StatementsAreIndexedInParseOrder) {
  auto program = parse_program(
      "int g;\n"
      "int main() { int x = 1; if (x) { g = 2; } return g; }");
  ASSERT_EQ(program->statements.size(), 4u);
  for (std::size_t i = 0; i < program->statements.size(); ++i)
    EXPECT_EQ(program->statements[i]->index, static_cast<int>(i));
}

TEST(Parser, ArrayAssignmentVsIndexedRead) {
  auto program = parse_program(
      "int buf[4];\n"
      "int g;\n"
      "int main() { buf[1] = 2; g = buf[1]; return g; }");
  const auto& body = program->functions[0].body;
  EXPECT_EQ(body[0]->kind, StmtKind::kAssign);
  EXPECT_TRUE(body[0]->is_array_target);
  EXPECT_EQ(body[1]->kind, StmtKind::kAssign);
  EXPECT_FALSE(body[1]->is_array_target);
  EXPECT_EQ(body[1]->expr1->kind, ExprKind::kIndex);
}

TEST(Parser, ForLoopsDesugarToClauses) {
  auto program = parse_program(
      "int main() { int i; int s; s = 0;\n"
      "  for (i = 0; i < 10; i = i + 1) { s = s + i; }\n"
      "  return s; }");
  const Stmt* loop = program->functions[0].body[3].get();
  ASSERT_EQ(loop->kind, StmtKind::kFor);
  EXPECT_EQ(loop->init_stmt->kind, StmtKind::kAssign);
  EXPECT_EQ(loop->step_stmt->kind, StmtKind::kAssign);
  EXPECT_EQ(loop->body.size(), 1u);
}

TEST(Parser, BlockScopingAllowsShadowing) {
  EXPECT_NO_THROW(parse_program(
      "int x;\n"
      "int main() { int x = 1; if (x) { int x = 2; x = 3; } return x; }"));
}

TEST(Parser, OperatorPrecedence) {
  auto program = parse_program("int main() { return 1 + 2 * 3; }");
  const Expr* e = program->functions[0].body[0]->expr1.get();
  ASSERT_EQ(e->kind, ExprKind::kBinary);
  EXPECT_EQ(e->bin_op, BinOp::kAdd);
  EXPECT_EQ(e->operands[1]->bin_op, BinOp::kMul);
}

TEST(Parser, ErrorPaths) {
  EXPECT_THROW(parse_program("int main() { return y; }"), ParseError);
  EXPECT_THROW(parse_program("int main() { return nofn(); }"), ParseError);
  EXPECT_THROW(parse_program("int f(int a) { return a; }\n"
                             "int main() { return f(1, 2); }"),
               ParseError);
  EXPECT_THROW(parse_program("int a; int a;"), ParseError);
  EXPECT_THROW(parse_program("int f() { return 1; } int f() { return 2; }"),
               ParseError);
  EXPECT_THROW(parse_program("int buf[0];"), ParseError);
  EXPECT_THROW(parse_program("int a; int main() { a[0] = 1; return 0; }"),
               ParseError);
  EXPECT_THROW(parse_program("int buf[4]; int main() { buf = 1; return 0; }"),
               ParseError);
  EXPECT_THROW(parse_program("int buf[4]; int main() { return buf; }"),
               ParseError);
  EXPECT_THROW(parse_program("int main() { int x = x; return 0; }"),
               ParseError);
  EXPECT_THROW(parse_program("int main() { return 1 }"), ParseError);
}

TEST(ProgramGen, GeneratesParsableProgramOfPaperScale) {
  std::string source = generate_image_program();
  // Paper: "a 750-line image manipulation program".
  std::size_t lines = static_cast<std::size_t>(
      std::count(source.begin(), source.end(), '\n'));
  EXPECT_GE(lines, 600u);
  EXPECT_LE(lines, 1100u);
  auto program = parse_program(source);
  EXPECT_GE(program->functions.size(), 25u);
  EXPECT_GE(program->statements.size(), 200u);
  EXPECT_GE(program->find_function("main"), 0);
  EXPECT_GE(program->find_global("img"), 0);
}

TEST(ProgramGen, StagesScaleTheProgram) {
  auto small = parse_program(generate_image_program(1));
  auto large = parse_program(generate_image_program(3));
  EXPECT_GT(large->statements.size(), small->statements.size());
}

TEST(ProgramGen, DefaultBtaConfigNamesRealGlobals) {
  auto program = parse_program(generate_image_program());
  for (const std::string& name : default_bta_config().dynamic_globals)
    EXPECT_GE(program->find_global(name), 0) << name;
}

}  // namespace
}  // namespace ickpt::analysis
