// Tests for the production-hardening extensions: pattern serialization,
// the adaptive self-specializing checkpointer, asynchronous stable-storage
// appends, and checkpoint-log compaction.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/async_log.hpp"
#include "core/manager.hpp"
#include "spec/adaptive.hpp"
#include "spec/pattern_io.hpp"
#include "tests/synth_helpers.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

using spec::AdaptiveCheckpointer;
using spec::PatternNode;
using synth::SynthConfig;
using synth::SynthShapes;
using synth::SynthWorkload;

// --- pattern serialization ----------------------------------------------------

TEST(PatternIo, RoundTripPreservesStructure) {
  SynthShapes shapes = SynthShapes::make();
  PatternNode original = synth::make_synth_pattern(
      synth::SpecLevel::kPositions, 5, 10, 3);

  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    spec::save_pattern(writer, original, *shapes.compound);
    writer.flush();
  }
  io::DataReader reader(sink.bytes());
  PatternNode loaded = spec::load_pattern(reader, *shapes.compound);

  // Equivalence check: both compile to identical plans.
  spec::PlanCompiler compiler;
  auto a = compiler.compile(*shapes.compound, original);
  auto b = compiler.compile(*shapes.compound, loaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].code, b.ops[i].code);
    EXPECT_EQ(a.ops[i].a, b.ops[i].a);
    EXPECT_EQ(a.ops[i].b, b.ops[i].b);
    EXPECT_EQ(a.ops[i].imm, b.ops[i].imm);
  }
}

TEST(PatternIo, WrongShapeRejected) {
  SynthShapes shapes = SynthShapes::make();
  PatternNode pattern = synth::make_synth_pattern(
      synth::SpecLevel::kStructure, 5, 1, 5);
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    spec::save_pattern(writer, pattern, *shapes.compound);
    writer.flush();
  }
  io::DataReader reader(sink.bytes());
  EXPECT_THROW(spec::load_pattern(reader, *shapes.elem), SpecError);
}

TEST(PatternIo, FingerprintsStableAcrossBuilds) {
  SynthShapes a = SynthShapes::make();
  SynthShapes b = SynthShapes::make();
  EXPECT_EQ(spec::shape_fingerprint(*a.compound),
            spec::shape_fingerprint(*b.compound));
  EXPECT_NE(spec::shape_fingerprint(*a.compound),
            spec::shape_fingerprint(*a.elem));
}

TEST(PatternIo, GarbageRejected) {
  SynthShapes shapes = SynthShapes::make();
  std::vector<std::uint8_t> garbage{1, 2, 3, 4};
  io::DataReader reader(garbage);
  EXPECT_THROW(spec::load_pattern(reader, *shapes.compound),
               CorruptionError);
}

// --- adaptive checkpointer ------------------------------------------------------

struct AdaptiveFixture {
  SynthConfig config;
  core::Heap heap;
  std::unique_ptr<SynthWorkload> workload;
  SynthShapes shapes = SynthShapes::make();

  explicit AdaptiveFixture(int mod_lists = 2, bool last_only = true) {
    config.num_structures = 32;
    config.list_length = 5;
    config.values_per_elem = 4;
    config.modified_lists = mod_lists;
    config.last_element_only = last_only;
    config.percent_modified = 70;
    workload = std::make_unique<SynthWorkload>(heap, config);
    workload->reset_flags();
  }

  AdaptiveCheckpointer::Roots roots() {
    return {workload->root_bases(), workload->root_ptrs()};
  }
};

TEST(Adaptive, SwitchesToSpecializedAfterObservation) {
  AdaptiveFixture fx;
  AdaptiveCheckpointer::Options opts;
  opts.observe_epochs = 3;
  AdaptiveCheckpointer adaptive(*fx.shapes.compound, opts);

  for (int epoch = 0; epoch < 6; ++epoch) {
    fx.workload->mutate();
    io::VectorSink sink;
    io::DataWriter writer(sink);
    auto result = adaptive.checkpoint(writer, epoch, fx.roots());
    writer.flush();
    EXPECT_FALSE(result.fell_back);
    if (epoch < 3) {
      EXPECT_EQ(result.stage_used, AdaptiveCheckpointer::Stage::kObserving);
    } else {
      EXPECT_EQ(result.stage_used,
                AdaptiveCheckpointer::Stage::kSpecialized);
    }
  }
  ASSERT_NE(adaptive.plan(), nullptr);
  EXPECT_GT(adaptive.plan()->size(), 0u);
}

TEST(Adaptive, SpecializedOutputMatchesGeneric) {
  AdaptiveFixture fx;
  AdaptiveCheckpointer::Options opts;
  opts.observe_epochs = 2;
  AdaptiveCheckpointer adaptive(*fx.shapes.compound, opts);

  // Warm up through observation.
  for (int epoch = 0; epoch < 2; ++epoch) {
    fx.workload->mutate();
    io::VectorSink sink;
    io::DataWriter writer(sink);
    adaptive.checkpoint(writer, epoch, fx.roots());
    writer.flush();
  }
  ASSERT_EQ(adaptive.stage(), AdaptiveCheckpointer::Stage::kSpecialized);

  fx.workload->mutate();
  auto flags = fx.workload->save_flags();
  auto generic = generic_bytes(*fx.workload, 7);

  fx.workload->restore_flags(flags);
  io::VectorSink sink;
  io::DataWriter writer(sink);
  auto result = adaptive.checkpoint(writer, 7, fx.roots());
  writer.flush();
  EXPECT_EQ(result.stage_used, AdaptiveCheckpointer::Stage::kSpecialized);
  EXPECT_EQ(sink.bytes(), generic);
}

TEST(Adaptive, StructuralDriftFallsBackAndRelearns) {
  AdaptiveFixture fx;
  AdaptiveCheckpointer::Options opts;
  opts.observe_epochs = 2;
  AdaptiveCheckpointer adaptive(*fx.shapes.compound, opts);
  for (int epoch = 0; epoch < 2; ++epoch) {
    fx.workload->mutate();
    io::VectorSink sink;
    io::DataWriter writer(sink);
    adaptive.checkpoint(writer, epoch, fx.roots());
    writer.flush();
  }
  ASSERT_EQ(adaptive.stage(), AdaptiveCheckpointer::Stage::kSpecialized);

  // Drift: grow list 0 of the first structure past the learned length.
  synth::Compound* first = fx.workload->roots()[0];
  synth::ListElem* tail = first->list(0);
  while (tail->next() != nullptr) tail = tail->next();
  synth::ListElem* extra = fx.heap.make<synth::ListElem>(4);
  tail->set_next(extra);

  io::VectorSink sink;
  io::DataWriter writer(sink);
  auto result = adaptive.checkpoint(writer, 9, fx.roots());
  writer.flush();
  EXPECT_TRUE(result.fell_back);
  EXPECT_EQ(adaptive.stage(), AdaptiveCheckpointer::Stage::kObserving);
  EXPECT_EQ(adaptive.fallbacks(), 1u);

  // The fallback checkpoint is a complete, recoverable full checkpoint.
  core::TypeRegistry registry;
  synth::register_types(registry);
  core::Recovery recovery(registry);
  io::DataReader reader(sink.bytes());
  auto header = recovery.apply(reader);
  EXPECT_EQ(header.mode, core::Mode::kFull);
  auto state = recovery.finish();
  EXPECT_EQ(state.by_id.size(), fx.workload->total_objects() + 1);
}

TEST(Adaptive, ZeroObservationEpochsRejected) {
  SynthShapes shapes = SynthShapes::make();
  AdaptiveCheckpointer::Options opts;
  opts.observe_epochs = 0;
  EXPECT_THROW(AdaptiveCheckpointer(*shapes.compound, opts), SpecError);
}

TEST(Adaptive, MismatchedRootSpansRejected) {
  AdaptiveFixture fx;
  AdaptiveCheckpointer adaptive(*fx.shapes.compound);
  AdaptiveCheckpointer::Roots roots{fx.workload->root_bases(), {}};
  io::VectorSink sink;
  io::DataWriter writer(sink);
  EXPECT_THROW(adaptive.checkpoint(writer, 0, roots), SpecError);
}

// --- async log -------------------------------------------------------------------

TEST(AsyncLog, AppendsInSubmissionOrder) {
  std::string path = ::testing::TempDir() + "/ickpt_async.log";
  std::remove(path.c_str());
  {
    io::StableStorage storage(path);
    core::AsyncLog log(storage);
    for (int i = 0; i < 50; ++i)
      log.submit(std::vector<std::uint8_t>(static_cast<std::size_t>(i + 1),
                                           static_cast<std::uint8_t>(i)));
    log.drain();
    EXPECT_EQ(log.pending(), 0u);
  }
  auto scan = io::StableStorage::scan(path);
  ASSERT_EQ(scan.frames.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(scan.frames[static_cast<std::size_t>(i)].seq,
              static_cast<std::uint64_t>(i));
    EXPECT_EQ(scan.frames[static_cast<std::size_t>(i)].payload.size(),
              static_cast<std::size_t>(i + 1));
  }
  std::remove(path.c_str());
}

TEST(AsyncLog, DestructorDrains) {
  std::string path = ::testing::TempDir() + "/ickpt_async2.log";
  std::remove(path.c_str());
  {
    io::StableStorage storage(path);
    core::AsyncLog log(storage);
    for (int i = 0; i < 10; ++i)
      log.submit(std::vector<std::uint8_t>(8, 0x11));
  }  // no explicit drain
  auto scan = io::StableStorage::scan(path);
  EXPECT_EQ(scan.frames.size(), 10u);
  std::remove(path.c_str());
}

TEST(AsyncManager, TakeAndRecoverMatchSynchronous) {
  std::string path = ::testing::TempDir() + "/ickpt_async_mgr.log";
  std::remove(path.c_str());
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  Inner* root = heap.make<Inner>();
  root->set_left(leaf);
  {
    core::ManagerOptions opts;
    opts.async_io = true;
    core::CheckpointManager manager(path, opts);
    for (int i = 1; i <= 5; ++i) {
      leaf->set_i32(i);
      auto take = manager.take(*root);
      EXPECT_EQ(take.seq, take.epoch);
    }
    manager.flush();
  }
  core::TypeRegistry registry;
  register_test_types(registry);
  auto recovered = core::CheckpointManager::recover(path, registry);
  EXPECT_EQ(recovered.state.root_as<Inner>()->left->i32, 5);
  std::remove(path.c_str());
}

// --- compaction -------------------------------------------------------------------

TEST(Compaction, ShrinksLogAndPreservesState) {
  std::string path = ::testing::TempDir() + "/ickpt_compact.log";
  std::remove(path.c_str());
  core::Heap heap;
  Inner* root = heap.make<Inner>();
  Leaf* leaf = heap.make<Leaf>();
  root->set_left(leaf);
  {
    core::ManagerOptions opts;
    opts.full_interval = 2;  // lots of full checkpoints -> bloated log
    core::CheckpointManager manager(path, opts);
    for (int i = 1; i <= 20; ++i) {
      leaf->set_i32(i);
      manager.take(*root);
    }
  }
  core::TypeRegistry registry;
  register_test_types(registry);
  auto result = core::CheckpointManager::compact(path, registry);
  EXPECT_EQ(result.objects, 2u);
  EXPECT_LT(result.bytes_after, result.bytes_before);

  auto scan = io::StableStorage::scan(path);
  EXPECT_EQ(scan.frames.size(), 1u);

  auto recovered = core::CheckpointManager::recover(path, registry);
  EXPECT_EQ(recovered.state.root_as<Inner>()->left->i32, 20);

  // The compacted log accepts further checkpoints.
  {
    core::CheckpointManager manager(path);
    Inner* r = recovered.state.root_as<Inner>();
    r->left->set_i32(21);
    manager.take(*r);
  }
  auto again = core::CheckpointManager::recover(path, registry);
  EXPECT_EQ(again.state.root_as<Inner>()->left->i32, 21);
  std::remove(path.c_str());
}

TEST(Compaction, EmptyLogThrows) {
  std::string path = ::testing::TempDir() + "/ickpt_compact_empty.log";
  std::remove(path.c_str());
  core::TypeRegistry registry;
  EXPECT_THROW(core::CheckpointManager::compact(path, registry),
               CorruptionError);
}

}  // namespace
}  // namespace ickpt::testing
