// Page-protection dirty tracking: SIGSEGV-driven page marking, protect/
// unprotect cycles, dirty-page serialization, and the object-vs-page
// granularity comparison that motivates the paper's approach.
#include <gtest/gtest.h>

#include <cstring>

#include "pagetrack/arena.hpp"

namespace ickpt::pagetrack {
namespace {

TEST(PageArena, AllocatesAlignedWithinCapacity) {
  PageArena arena(kPageSize * 4);
  EXPECT_EQ(arena.page_count(), 4u);
  void* a = arena.allocate(100, 8);
  void* b = arena.allocate(100, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_TRUE(arena.contains(a));
  EXPECT_TRUE(arena.contains(b));
  EXPECT_FALSE(arena.contains(&arena));
}

TEST(PageArena, ExhaustionThrows) {
  PageArena arena(kPageSize);
  arena.allocate(kPageSize - 8, 8);
  EXPECT_THROW(arena.allocate(64, 8), Error);
}

TEST(PageArena, RoundsUpToWholePages) {
  PageArena arena(1);
  EXPECT_EQ(arena.capacity(), kPageSize);
}

TEST(PageTracker, StartsAllDirtyThenCleansOnProtect) {
  PageArena arena(kPageSize * 8);
  PageTracker tracker(arena);
  EXPECT_EQ(tracker.dirty_count(), 8u);
  tracker.protect();
  EXPECT_EQ(tracker.dirty_count(), 0u);
  tracker.unprotect();
}

TEST(PageTracker, WriteFaultMarksExactlyThatPage) {
  PageArena arena(kPageSize * 8);
  auto* ints = static_cast<std::int32_t*>(
      arena.allocate(kPageSize * 8 - 64, alignof(std::int32_t)));
  PageTracker tracker(arena);
  tracker.protect();

  // Touch one word in page 3.
  ints[(3 * kPageSize) / 4 + 7] = 42;
  EXPECT_EQ(tracker.dirty_pages(), (std::vector<std::size_t>{3}));

  // Repeated writes to the same page fault only once (page unprotected).
  for (int i = 0; i < 100; ++i) ints[(3 * kPageSize) / 4 + i] = i;
  EXPECT_EQ(tracker.dirty_count(), 1u);

  // A write to another page adds it.
  ints[(6 * kPageSize) / 4] = 1;
  EXPECT_EQ(tracker.dirty_pages(), (std::vector<std::size_t>{3, 6}));
  tracker.unprotect();
}

TEST(PageTracker, ReadsDoNotDirty) {
  PageArena arena(kPageSize * 4);
  auto* ints = static_cast<std::int32_t*>(
      arena.allocate(kPageSize * 4 - 64, alignof(std::int32_t)));
  ints[0] = 5;
  PageTracker tracker(arena);
  tracker.protect();
  std::int32_t sum = 0;
  for (std::size_t i = 0; i < kPageSize; ++i) sum += ints[i];
  EXPECT_EQ(tracker.dirty_count(), 0u);
  EXPECT_GE(sum, 5);
  tracker.unprotect();
}

TEST(PageTracker, ProtectCyclesTrackEachEpoch) {
  PageArena arena(kPageSize * 4);
  auto* bytes = static_cast<std::uint8_t*>(
      arena.allocate(kPageSize * 4 - 64, 8));
  PageTracker tracker(arena);
  tracker.protect();
  bytes[0] = 1;
  EXPECT_EQ(tracker.dirty_count(), 1u);
  tracker.protect();  // next epoch
  EXPECT_EQ(tracker.dirty_count(), 0u);
  bytes[kPageSize * 2] = 1;
  EXPECT_EQ(tracker.dirty_pages(), (std::vector<std::size_t>{2}));
  tracker.unprotect();
}

TEST(PageTracker, WriteDirtyPagesSerializesIndexAndContent) {
  PageArena arena(kPageSize * 4);
  auto* bytes = static_cast<std::uint8_t*>(
      arena.allocate(kPageSize * 4 - 64, 8));
  PageTracker tracker(arena);
  tracker.protect();
  bytes[kPageSize + 5] = 0xAB;
  std::vector<std::uint8_t> out;
  std::size_t n = tracker.write_dirty_pages(out);
  EXPECT_EQ(n, 1 + kPageSize);  // varint(1) + one page
  EXPECT_EQ(out[0], 1);         // page index
  EXPECT_EQ(out[1 + 5], 0xAB);
  tracker.unprotect();
}

TEST(PageTracker, TwoTrackersCoexist) {
  PageArena arena_a(kPageSize * 2);
  PageArena arena_b(kPageSize * 2);
  auto* pa = static_cast<std::uint8_t*>(arena_a.allocate(64, 8));
  auto* pb = static_cast<std::uint8_t*>(arena_b.allocate(64, 8));
  PageTracker ta(arena_a);
  PageTracker tb(arena_b);
  ta.protect();
  tb.protect();
  pa[0] = 1;
  pb[1] = 2;
  EXPECT_EQ(ta.dirty_count(), 1u);
  EXPECT_EQ(tb.dirty_count(), 1u);
  ta.unprotect();
  tb.unprotect();
}

TEST(Granularity, PageLevelCapturesFarMoreThanObjectLevel) {
  // The paper's motivating argument (§1): scattered small-object updates
  // make page-granularity incremental checkpoints balloon. One 4-byte
  // write per page vs a ~30-byte object record.
  constexpr std::size_t kPages = 64;
  PageArena arena(kPageSize * kPages);
  auto* ints = static_cast<std::int32_t*>(
      arena.allocate(kPageSize * kPages - 64, alignof(std::int32_t)));
  PageTracker tracker(arena);
  tracker.protect();
  for (std::size_t page = 0; page < kPages; ++page)
    ints[(page * kPageSize) / 4] = static_cast<std::int32_t>(page);
  std::vector<std::uint8_t> payload;
  tracker.write_dirty_pages(payload);
  tracker.unprotect();

  const std::size_t page_level_bytes = payload.size();
  // Object-level equivalent: 64 modified "objects" of ~48 record bytes.
  const std::size_t object_level_bytes = 64 * 48;
  EXPECT_GT(page_level_bytes, object_level_bytes * 50);
}

}  // namespace
}  // namespace ickpt::pagetrack
