// Semantic tests for the three analyses: side-effect sets, binding-time
// propagation (including control dependence and interprocedural flow), and
// evaluation-time degradation.
#include <gtest/gtest.h>

#include "analysis/binding_time.hpp"
#include "analysis/eval_time.hpp"
#include "analysis/parser.hpp"
#include "analysis/program_gen.hpp"
#include "analysis/side_effect.hpp"
#include "analysis/attributes.hpp"
#include "common/error.hpp"

namespace ickpt::analysis {
namespace {

std::unique_ptr<Program> parse(const char* src) { return parse_program(src); }

void run_to_fixpoint(SideEffectAnalysis& sea, int limit = 50) {
  int i = 0;
  while (sea.iterate()) ASSERT_LT(++i, limit);
}

int run_to_fixpoint(BindingTimeAnalysis& bta, int limit = 100) {
  int i = 0;
  while (bta.iterate()) {
    ++i;
    EXPECT_LT(i, limit);
    if (i >= limit) break;
  }
  return i + 1;
}

TEST(SideEffect, DirectReadsAndWrites) {
  auto program = parse(
      "int g; int h;\n"
      "int main() { g = h + 1; return g; }");
  SideEffectAnalysis sea(*program);
  run_to_fixpoint(sea);
  const Stmt* assign = program->functions[0].body[0].get();
  VarSet reads;
  VarSet writes;
  sea.statement_effect(*assign, reads, writes);
  int g = program->find_global("g");
  int h = program->find_global("h");
  EXPECT_EQ(writes, VarSet{g});
  EXPECT_EQ(reads, VarSet{h});
}

TEST(SideEffect, LocalsAreInvisible) {
  auto program = parse("int main() { int x = 1; x = x + 1; return x; }");
  SideEffectAnalysis sea(*program);
  run_to_fixpoint(sea);
  for (const Stmt* stmt : program->statements) {
    VarSet reads;
    VarSet writes;
    sea.statement_effect(*stmt, reads, writes);
    EXPECT_TRUE(reads.empty());
    EXPECT_TRUE(writes.empty());
  }
}

TEST(SideEffect, CallsInheritCalleeEffects) {
  auto program = parse(
      "int g;\n"
      "int bump() { g = g + 1; return g; }\n"
      "int main() { return bump(); }");
  SideEffectAnalysis sea(*program);
  run_to_fixpoint(sea);
  const Stmt* ret = program->functions[1].body[0].get();
  VarSet reads;
  VarSet writes;
  sea.statement_effect(*ret, reads, writes);
  int g = program->find_global("g");
  EXPECT_EQ(reads, VarSet{g});
  EXPECT_EQ(writes, VarSet{g});
}

TEST(SideEffect, TransitiveCallChainsConverge) {
  auto program = parse(
      "int a; int b;\n"
      "int f3() { a = 1; return 0; }\n"
      "int f2() { return f3(); }\n"
      "int f1() { b = f2(); return b; }\n"
      "int main() { return f1(); }");
  SideEffectAnalysis sea(*program);
  run_to_fixpoint(sea);
  int a = program->find_global("a");
  int b = program->find_global("b");
  const FnSummary& main_summary =
      sea.summary(program->find_function("main"));
  EXPECT_EQ(main_summary.writes, (VarSet{a, b}));
}

TEST(SideEffect, RecursionReachesFixpoint) {
  auto program = parse(
      "int g;\n"
      "int rec(int n) { if (n > 0) { g = g + rec(n - 1); } return g; }\n"
      "int main() { return rec(3); }");
  SideEffectAnalysis sea(*program);
  run_to_fixpoint(sea);
  int g = program->find_global("g");
  EXPECT_EQ(sea.summary(0).writes, VarSet{g});
  EXPECT_EQ(sea.summary(0).reads, VarSet{g});
}

TEST(SideEffect, CompoundStatementsAggregateBodies) {
  auto program = parse(
      "int g; int h; int k;\n"
      "int main() { int i;\n"
      "  for (i = 0; i < k; i = i + 1) { g = h; }\n"
      "  return 0; }");
  SideEffectAnalysis sea(*program);
  run_to_fixpoint(sea);
  const Stmt* loop = program->functions[0].body[1].get();
  ASSERT_EQ(loop->kind, StmtKind::kFor);
  VarSet reads;
  VarSet writes;
  sea.statement_effect(*loop, reads, writes);
  EXPECT_EQ(writes, VarSet{program->find_global("g")});
  VarSet expected_reads{program->find_global("h"),
                        program->find_global("k")};
  std::sort(expected_reads.begin(), expected_reads.end());
  EXPECT_EQ(reads, expected_reads);
}

TEST(BindingTime, DivisionSeedsDynamic) {
  auto program = parse(
      "int s; int d;\n"
      "int main() { int x = s; int y = d; return x + y; }");
  BtaConfig config;
  config.dynamic_globals = {"d"};
  BindingTimeAnalysis bta(*program, config);
  run_to_fixpoint(bta);
  EXPECT_EQ(bta.symbol_bt(program->find_global("s")), kStatic);
  EXPECT_EQ(bta.symbol_bt(program->find_global("d")), kDynamic);
  // x static, y dynamic.
  const Stmt* decl_x = program->functions[0].body[0].get();
  const Stmt* decl_y = program->functions[0].body[1].get();
  EXPECT_EQ(bta.statement_bt(decl_x->index), kStatic);
  EXPECT_EQ(bta.statement_bt(decl_y->index), kDynamic);
}

TEST(BindingTime, DynamismFlowsThroughAssignment) {
  auto program = parse(
      "int d; int g;\n"
      "int main() { g = d; return g; }");
  BtaConfig config;
  config.dynamic_globals = {"d"};
  BindingTimeAnalysis bta(*program, config);
  run_to_fixpoint(bta);
  EXPECT_EQ(bta.symbol_bt(program->find_global("g")), kDynamic);
}

TEST(BindingTime, ControlDependenceMakesTargetsDynamic) {
  auto program = parse(
      "int d; int g;\n"
      "int main() { if (d) { g = 1; } return g; }");
  BtaConfig config;
  config.dynamic_globals = {"d"};
  BindingTimeAnalysis bta(*program, config);
  run_to_fixpoint(bta);
  // g assigned a static value, but under dynamic control.
  EXPECT_EQ(bta.symbol_bt(program->find_global("g")), kDynamic);
}

TEST(BindingTime, InterproceduralParamAndReturnFlow) {
  auto program = parse(
      "int d;\n"
      "int id(int v) { return v; }\n"
      "int main() { int a = id(1); int b = id(d); return a + b; }");
  BtaConfig config;
  config.dynamic_globals = {"d"};
  BindingTimeAnalysis bta(*program, config);
  run_to_fixpoint(bta);
  // Context-insensitive: one dynamic call site poisons the parameter, and
  // through the return, both results.
  const Function& id_fn = program->functions[0];
  EXPECT_EQ(bta.symbol_bt(id_fn.params[0]), kDynamic);
  const Stmt* decl_a = program->functions[1].body[0].get();
  EXPECT_EQ(bta.statement_bt(decl_a->index), kDynamic);
}

TEST(BindingTime, DeepCallChainTakesOnePassPerLevel) {
  auto program = parse(
      "int d;\n"
      "int f4(int v) { return v; }\n"
      "int f3(int v) { return f4(v); }\n"
      "int f2(int v) { return f3(v); }\n"
      "int f1(int v) { return f2(v); }\n"
      "int main() { return f1(d); }");
  BtaConfig config;
  config.dynamic_globals = {"d"};
  BindingTimeAnalysis bta(*program, config);
  int iterations = run_to_fixpoint(bta);
  // Return binding times flow callee->caller one level per pass, so the
  // fixpoint takes several iterations — the behaviour that gives the paper
  // its nine BTA checkpoints.
  EXPECT_GE(iterations, 3);
  EXPECT_EQ(bta.symbol_bt(program->functions[0].params[0]), kDynamic);
}

TEST(BindingTime, UnknownDynamicGlobalRejected) {
  auto program = parse("int g; int main() { return g; }");
  BtaConfig config;
  config.dynamic_globals = {"nope"};
  EXPECT_THROW(BindingTimeAnalysis(*program, config), AnalysisError);
}

TEST(EvalTime, StaticStatementsStartEvaluable) {
  auto program = parse(
      "int s;\n"
      "int main() { int x = s + 1; return x; }");
  BtaConfig config;
  BindingTimeAnalysis bta(*program, config);
  run_to_fixpoint(bta);
  EvalTimeAnalysis eta(*program, bta);
  while (eta.iterate()) {
  }
  for (const Stmt* stmt : program->statements)
    EXPECT_EQ(eta.statement_et(stmt->index), kEvaluable);
}

TEST(EvalTime, ResidualDefinitionPoisonsReaders) {
  auto program = parse(
      "int d; int g; int h;\n"
      "int main() { g = d; h = g + 1; return h; }");
  BtaConfig config;
  config.dynamic_globals = {"d"};
  BindingTimeAnalysis bta(*program, config);
  run_to_fixpoint(bta);
  EvalTimeAnalysis eta(*program, bta);
  while (eta.iterate()) {
  }
  EXPECT_EQ(eta.symbol_et(program->find_global("g")), kResidual);
  EXPECT_EQ(eta.symbol_et(program->find_global("h")), kResidual);
  const Stmt* second = program->functions[0].body[1].get();
  EXPECT_EQ(eta.statement_et(second->index), kResidual);
}

TEST(EvalTime, ConvergesFasterThanBta) {
  auto program = parse_program(generate_image_program());
  BindingTimeAnalysis bta(*program, default_bta_config());
  int bta_iters = run_to_fixpoint(bta);
  EvalTimeAnalysis eta(*program, bta);
  int eta_iters = 0;
  while (eta.iterate()) ASSERT_LT(++eta_iters, 50);
  ++eta_iters;
  // Paper: BTA needs nine iterations, ETA only three.
  EXPECT_LT(eta_iters, bta_iters);
  EXPECT_GE(bta_iters, 4);
}

}  // namespace
}  // namespace ickpt::analysis
