// Chaos soak: a seeded PRNG schedules continuous random faults — transient
// EINTR, short writes, torn writes, bit flips, ENOSPC bursts, and crash
// points — against a long mutating workload across the sync, async, and
// parallel capture pipelines, with the self-healing ladder enabled.
//
// After every epoch the harness asserts liveness and recoverability:
//
//   liveness        — the manager either completes the epoch or rotates
//                     within its bounded ladder; any exception other than
//                     the injected CrashFault is a wedge and fails the
//                     test. The fault schedule caps injected faults per
//                     epoch below the ladder's append capacity, so a
//                     non-crash wedge is always a product bug.
//   recoverability  — at every (simulated) process death and every planned
//                     restart, CheckpointManager::recover over the
//                     generation chain must return some epoch E whose
//                     recovered values equal the shadow history the
//                     harness kept for E, with E at or above the settled
//                     watermark (bit flips freeze the watermark until the
//                     next clean full-checkpoint window, because silent
//                     corruption can strand the epochs behind it).
//
// The run is deterministic: one mt19937_64 seed drives every fault
// decision, so a pass is reproducible and a failure replays exactly.
// ICKPT_CHAOS_ITERS scales the per-mode epoch count for long soaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/manager.hpp"
#include "io/fault.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"
#include "obs/metrics.hpp"
#include "tests/test_types.hpp"
#include "verify/fsck.hpp"

namespace ickpt::testing {
namespace {

using core::CheckpointManager;
using core::Health;
using core::ManagerOptions;
using core::Mode;
using core::TypeRegistry;
using io::FaultDecision;
using io::FaultKind;
using io::StableStorage;

constexpr int kLeaves = 8;

/// The ladder's per-epoch append capacity with the options below: the
/// initial append + 1 in-place retry + 6 rotation rebases, each absorbing
/// retry.max_attempts+1 = 4 transient decisions. The chaos schedule caps
/// injected faults per epoch safely below this, so the ladder can always
/// finish an epoch (a torn/short/flip fault costs at most one append
/// attempt; a transient costs one decision).
constexpr unsigned kMaxFaultsPerEpoch = 26;

/// Seeded random fault schedule. on_write may run on the AsyncLog worker
/// thread while the harness polls the counters from the test thread, so
/// every counter is an atomic (the PRNG itself is only touched inside
/// on_write, and only one thread appends at a time).
class ChaosPolicy final : public io::FaultPolicy {
 public:
  ChaosPolicy(std::uint64_t seed, bool allow_crash)
      : rng_(seed), allow_crash_(allow_crash) {}

  FaultDecision on_write(std::uint64_t, std::size_t n) override {
    consults_.fetch_add(1, std::memory_order_relaxed);
    if (!armed_.load(std::memory_order_relaxed)) return {};
    if (faults_total_.load(std::memory_order_relaxed) -
            epoch_base_.load(std::memory_order_relaxed) >=
        kMaxFaultsPerEpoch)
      return {};
    // A pending ENOSPC burst ("device full") drains before anything else.
    if (enospc_left_.load(std::memory_order_relaxed) > 0) {
      enospc_left_.fetch_sub(1, std::memory_order_relaxed);
      return fault({FaultKind::kTransient, 0, ENOSPC});
    }
    const std::uint32_t roll = static_cast<std::uint32_t>(rng_() % 1000);
    if (roll < 120) return fault({FaultKind::kTransient, 0, EINTR});
    if (roll < 170 && n >= 2) return fault({FaultKind::kShortWrite, n / 2});
    if (roll < 200) return fault({FaultKind::kTornWrite, n / 3});
    if (roll < 220 && n > 0) {
      flips_.fetch_add(1, std::memory_order_relaxed);
      return fault({FaultKind::kBitFlip, rng_() % n});
    }
    if (roll < 235) {
      // Persistent ENOSPC: 3..24 consecutive failing decisions, below the
      // ladder capacity but often past the in-place retries => rotation.
      enospc_left_.store(2 + rng_() % 22, std::memory_order_relaxed);
      return fault({FaultKind::kTransient, 0, ENOSPC});
    }
    if (roll < 250 && allow_crash_)
      return fault({FaultKind::kCrash, rng_() % (n + 1)});
    return {};
  }

  /// Rebase the per-epoch budget on the cumulative count instead of
  /// resetting a counter: an AsyncLog-worker fault landing between the
  /// harness's post-take read and the next begin_epoch() is never lost — it
  /// stays in the cumulative total, which the harness consumes through a
  /// seen-cursor delta.
  void begin_epoch() {
    epoch_base_.store(faults_total_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  void arm(bool on) { armed_.store(on, std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t faults_total() const {
    return faults_total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t faults_this_epoch() const {
    return faults_total_.load(std::memory_order_relaxed) -
           epoch_base_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t flips_total() const {
    return flips_.load(std::memory_order_relaxed);
  }

 private:
  FaultDecision fault(FaultDecision d) {
    faults_total_.fetch_add(1, std::memory_order_relaxed);
    return d;
  }

  std::mt19937_64 rng_;
  const bool allow_crash_;
  std::atomic<bool> armed_{true};
  std::atomic<std::uint64_t> consults_{0};
  std::atomic<std::uint64_t> flips_{0};
  std::atomic<std::uint64_t> faults_total_{0};
  std::atomic<std::uint64_t> epoch_base_{0};
  std::atomic<std::uint64_t> enospc_left_{0};
};

int chaos_iters() {
  if (const char* env = std::getenv("ICKPT_CHAOS_ITERS")) {
    const int iters = std::atoi(env);
    if (iters > 0) return iters;
  }
  return 200;
}

struct SoakStats {
  int epochs = 0;
  int faulted_epochs = 0;
  int crashes = 0;
  int restarts = 0;
  int recover_checks = 0;
  int timetravel_checks = 0;
  int timetravel_damaged = 0;
};

class ChaosSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_test_types(registry_);
    obs::Registry::install(&metrics_);
  }
  void TearDown() override { obs::Registry::install(nullptr); }

  static void clean_chain(const std::string& path) {
    std::remove(path.c_str());
    std::remove((path + ".bak").c_str());
    for (unsigned n = 1;; ++n) {
      const std::string q = StableStorage::quarantine_path(path, n);
      const bool had = io::file_exists(q);
      std::remove(q.c_str());
      std::remove((q + ".bak").c_str());
      if (!had) break;
    }
  }

  static ManagerOptions chaos_opts(ChaosPolicy* policy, bool async_io,
                                   unsigned capture_threads) {
    ManagerOptions opts;
    opts.full_interval = 4;
    opts.async_io = async_io;
    opts.capture_threads = capture_threads;
    opts.fault_policy = policy;
    opts.retry.max_attempts = 3;
    opts.retry.initial_backoff = std::chrono::microseconds{0};
    opts.retry_jitter_seed = 0xC0FFEE;
    opts.heal.enabled = true;
    opts.heal.reheal_after = 2;
    opts.heal.append_retries = 1;
    opts.heal.rotate_attempts = 6;
    return opts;
  }

  /// One mode-run of the soak. `seed` fixes the fault schedule; crashes are
  /// only scheduled for the synchronous pipelines (a background "crash"
  /// would be absorbed as poison, which the torn-write class already
  /// covers).
  void soak(const char* mode_name, std::uint64_t seed, bool async_io,
            unsigned capture_threads, SoakStats& stats) {
    SCOPED_TRACE(mode_name);
    const std::string path = ::testing::TempDir() + "/ickpt_chaos_" +
                             mode_name + "_test.log";
    clean_chain(path);
    ChaosPolicy policy(seed, /*allow_crash=*/!async_io);

    // Shadow oracle: values[j] the workload holds now, history[e] the
    // snapshot checkpointed at epoch e. History entries are only ever
    // overwritten for epochs that never reached disk (the manager resumes
    // epoch numbering past everything on the generation chain), so any
    // recovered epoch E must match history[E] exactly.
    std::vector<int> values(kLeaves, 0);
    std::map<Epoch, std::vector<int>> history;
    Epoch watermark = 0;
    bool any_settled = false;
    std::uint64_t flips_at_window_start = 0;
    // Seen-cursor over the policy's cumulative fault count: every injected
    // fault is attributed to exactly one faulted epoch, including faults an
    // async worker lands after the harness's previous read.
    std::uint64_t faults_seen = 0;

    core::Heap heap;
    std::vector<Leaf*> leaves;
    std::vector<core::Checkpointable*> roots;
    std::unique_ptr<CheckpointManager> manager;

    auto build = [&] {
      policy.arm(false);  // construction-time repair never wedges
      heap = core::Heap();
      leaves.clear();
      roots.clear();
      for (int j = 0; j < kLeaves; ++j) {
        leaves.push_back(heap.make<Leaf>());
        leaves.back()->set_i32(values[j]);
        roots.push_back(leaves.back());
      }
      manager = std::make_unique<CheckpointManager>(
          path, chaos_opts(&policy, async_io, capture_threads));
      policy.arm(true);
    };

    // Recover the chain and check the core invariant: some epoch at or
    // above the watermark, whose values are exactly the shadow history's.
    auto check_recoverable = [&](const char* why) -> Epoch {
      ++stats.recover_checks;
      policy.arm(false);
      core::RecoverResult result;
      try {
        result = CheckpointManager::recover(path, registry_);
      } catch (const Error& e) {
        ADD_FAILURE() << why << ": chain not recoverable: " << e.what();
        return watermark;
      }
      const Epoch e = result.state.epoch;
      EXPECT_GE(e, watermark)
          << why << "\n"
          << verify::fsck_chain(path, registry_).to_string();
      auto it = history.find(e);
      if (it == history.end()) {
        ADD_FAILURE() << why << ": recovered unknown epoch " << e;
        return e;
      }
      EXPECT_EQ(result.state.roots.size(),
                static_cast<std::size_t>(kLeaves))
          << why;
      for (int j = 0; j < kLeaves; ++j)
        EXPECT_EQ(result.state.root_as<Leaf>(j)->i32, it->second[j])
            << why << ": epoch " << e << " leaf " << j;
      return e;
    };

    // Fuzz `recover --epoch` against the shadow oracle: a few random epochs
    // off the chain's history listing must time-travel to exactly the
    // shadow snapshot (or fail with CorruptionError under damage — never
    // succeed with some other epoch's state), and a target that is not on
    // the chain must fail with EpochNotRetainedError naming the nearest
    // present neighbors.
    std::mt19937_64 tt_rng(seed ^ 0x77AB3175ULL);
    auto check_time_travel = [&](const char* why) {
      policy.arm(false);
      const auto listing = CheckpointManager::history(path);
      std::vector<Epoch> present;
      for (const auto& entry : listing)
        if (present.empty() || present.back() != entry.epoch)
          present.push_back(entry.epoch);
      std::vector<Epoch> candidates;
      for (Epoch e : present)
        if (history.count(e) != 0) candidates.push_back(e);
      for (int k = 0; k < 3 && !candidates.empty(); ++k) {
        const Epoch e = candidates[tt_rng() % candidates.size()];
        ++stats.timetravel_checks;
        try {
          auto result =
              CheckpointManager::recover_to_epoch(path, registry_, e);
          ASSERT_EQ(result.state.epoch, e) << why;
          ASSERT_EQ(result.state.roots.size(),
                    static_cast<std::size_t>(kLeaves))
              << why << ": epoch " << e;
          const auto& shadow = history.at(e);
          for (int j = 0; j < kLeaves; ++j)
            EXPECT_EQ(result.state.root_as<Leaf>(j)->i32, shadow[j])
                << why << ": epoch " << e << " leaf " << j;
        } catch (const core::EpochNotRetainedError& err) {
          ADD_FAILURE() << why << ": epoch " << e
                        << " is on the history listing but recover_to_epoch"
                           " claims it is not retained: "
                        << err.what();
        } catch (const CorruptionError&) {
          // Acceptable: the epoch's window sits behind injected damage.
          // What would NOT be acceptable is returning some other state.
          ++stats.timetravel_damaged;
        }
      }
      // A target that was never on the chain: past the newest epoch, and —
      // when a crash left one — a gap inside the range. Both must name the
      // nearest present neighbors and must never "succeed".
      std::vector<Epoch> absent;
      if (!present.empty()) absent.push_back(present.back() + 100);
      for (Epoch e = 0; !present.empty() && e < present.back(); ++e)
        if (!std::binary_search(present.begin(), present.end(), e)) {
          absent.push_back(e);
          break;
        }
      for (Epoch target : absent) {
        ++stats.timetravel_checks;
        try {
          CheckpointManager::recover_to_epoch(path, registry_, target);
          ADD_FAILURE() << why << ": absent epoch " << target
                        << " recovered — wrong-state success";
        } catch (const core::EpochNotRetainedError& err) {
          EXPECT_EQ(err.target(), target) << why;
          auto above =
              std::upper_bound(present.begin(), present.end(), target);
          if (above != present.begin()) {
            ASSERT_TRUE(err.below().has_value()) << why << " " << err.what();
            EXPECT_EQ(*err.below(), *(above - 1)) << why;
          }
          if (above != present.end()) {
            ASSERT_TRUE(err.above().has_value()) << why << " " << err.what();
            EXPECT_EQ(*err.above(), *above) << why;
          }
          EXPECT_NE(std::string(err.what()).find("not retained"),
                    std::string::npos)
              << why << " " << err.what();
        }
      }
    };

    auto note_faults = [&] {
      const std::uint64_t total = policy.faults_total();
      if (total != faults_seen) {
        ++stats.faulted_epochs;
        faults_seen = total;
      }
    };

    // Simulated process death: recover, rewind the workload to the
    // recovered state, and continue with a fresh manager (which rebases
    // with a forced full checkpoint, so the incremental chain never spans
    // the restart).
    auto restart_from_chain = [&](const char* why) {
      manager.reset();
      const Epoch e = check_recoverable(why);
      check_time_travel(why);
      if (auto it = history.find(e); it != history.end()) values = it->second;
      build();
    };

    const int iters = chaos_iters();
    build();
    for (int i = 0; i < iters; ++i) {
      // Mutate a deterministic subset, always at least one leaf.
      for (int j = 0; j < kLeaves; ++j)
        if (j == i % kLeaves || (i * 31 + j) % 4 == 0) {
          values[j] = i * 100 + j;
          leaves[j]->set_i32(values[j]);
        }

      policy.begin_epoch();
      const std::uint64_t flips_before = policy.flips_total();
      core::TakeResult taken;
      try {
        taken = manager->take(roots);
      } catch (const io::CrashFault&) {
        ++stats.crashes;
        ++stats.epochs;
        note_faults();
        restart_from_chain("post-crash");
        continue;
      }
      // Liveness: anything else escaping take() — IoError included — means
      // the ladder wedged below its fault budget. There is deliberately no
      // catch-all: such an exception propagates and fails the test.
      ++stats.epochs;
      history[taken.epoch] = values;
      if (std::getenv("ICKPT_CHAOS_TRACE"))
        std::printf("take e=%llu mode=%d seq=%llu faults=%llu flips=%llu "
                    "health=%d\n",
                    (unsigned long long)taken.epoch, (int)taken.mode,
                    (unsigned long long)taken.seq,
                    (unsigned long long)policy.faults_this_epoch(),
                    (unsigned long long)policy.flips_total(),
                    (int)manager->health());
      if (taken.mode == Mode::kFull) flips_at_window_start = flips_before;
      note_faults();

      if (async_io) {
        if (i % 5 == 4) {
          manager->flush();  // absorbs poison via the ladder, never throws
          const auto status = manager->health_status();
          if (status.any_settled &&
              policy.flips_total() == flips_at_window_start) {
            watermark = status.last_settled_epoch;
            any_settled = true;
          }
        }
      } else if (policy.flips_total() == flips_at_window_start) {
        // Synchronous pipelines settle on return from take().
        watermark = taken.epoch;
        any_settled = true;
      }

      ASSERT_NE(manager->health(), Health::kFailed)
          << "ladder exhausted below its fault budget at epoch "
          << taken.epoch;

      // Planned (non-crash) restart: exercise recover-and-resume while the
      // pipeline is live and possibly degraded.
      if (i % 41 == 40) {
        manager->flush();
        ++stats.restarts;
        restart_from_chain("planned restart");
      }
    }
    manager->flush();
    // Faults the final flush absorbed land after the loop's last read;
    // attribute them to one last faulted epoch instead of dropping them.
    note_faults();
    manager.reset();
    (void)any_settled;
    check_recoverable("end of run");
    check_time_travel("end of run");

    // The chain the soak leaves behind must carry zero fsck errors
    // (quarantined generations may be damaged — that is what quarantine
    // means — so only chain-level structure is asserted here).
    auto chain = verify::fsck_chain(path, registry_);
    for (const auto& finding : chain.report.findings)
      EXPECT_NE(finding.code, "generation-order") << finding.message;

    clean_chain(path);
  }

  TypeRegistry registry_;
  obs::Registry metrics_;
};

TEST_F(ChaosSoakTest, SurvivesRandomFaultScheduleAcrossAllPipelines) {
  SoakStats stats;
  soak("sync", 0x5EED0001, /*async_io=*/false, /*capture_threads=*/1, stats);
  soak("async", 0x5EED0002, /*async_io=*/true, /*capture_threads=*/1, stats);
  soak("parallel", 0x5EED0003, /*async_io=*/false, /*capture_threads=*/3,
       stats);

  // The soak only proves something if the schedule actually bit: demand a
  // substantial share of fault-bearing epochs, at least one rotation, and
  // at least one reheal across the run.
  EXPECT_GE(stats.epochs, 3 * chaos_iters() - 3);
  EXPECT_GE(stats.faulted_epochs, stats.epochs / 3);
  EXPECT_GE(stats.faulted_epochs, std::min(200, stats.epochs * 2 / 3));
  const auto snapshot = metrics_.snapshot();
  EXPECT_GE(snapshot.counter_sum("ickpt_log_rotations_total"), 1u);
  EXPECT_GE(snapshot.counter_sum("ickpt_reheals_total"), 1u);
  // The time-travel fuzz only proves something if it actually sampled.
  EXPECT_GT(stats.timetravel_checks, 0);
  std::printf(
      "chaos soak: %d epochs, %d faulted, %d crashes, %d planned restarts, "
      "%d recover checks, %d time-travel probes (%d hit damage), "
      "%llu rotations, %llu reheals\n",
      stats.epochs, stats.faulted_epochs, stats.crashes, stats.restarts,
      stats.recover_checks, stats.timetravel_checks, stats.timetravel_damaged,
      (unsigned long long)snapshot.counter_sum("ickpt_log_rotations_total"),
      (unsigned long long)snapshot.counter_sum("ickpt_reheals_total"));
}

}  // namespace
}  // namespace ickpt::testing
