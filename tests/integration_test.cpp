// End-to-end integration: the analysis engine checkpointing each fixpoint
// iteration through the CheckpointManager to real stable storage, a
// mid-phase crash (torn log tail), recovery, and verification that the
// recovered annotation state matches the state at the surviving checkpoint.
#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/engine.hpp"
#include "analysis/parser.hpp"
#include "analysis/program_gen.hpp"
#include "core/manager.hpp"
#include "io/file_io.hpp"

namespace ickpt::analysis {
namespace {

struct Snapshot {
  std::vector<std::uint8_t> bt;
  std::vector<std::uint8_t> et;
  std::vector<std::vector<std::int32_t>> se_reads;

  static Snapshot of(std::span<Attributes* const> attrs) {
    Snapshot snap;
    for (const Attributes* a : attrs) {
      snap.bt.push_back(a->bt()->leaf()->annotation());
      snap.et.push_back(a->et()->leaf()->annotation());
      auto reads = a->se()->reads();
      snap.se_reads.emplace_back(reads.begin(), reads.end());
    }
    return snap;
  }

  static Snapshot of_recovered(const core::RecoveredState& state) {
    Snapshot snap;
    for (ObjectId root : state.roots) {
      const auto* a = dynamic_cast<const Attributes*>(state.find(root));
      snap.bt.push_back(a->bt()->leaf()->annotation());
      snap.et.push_back(a->et()->leaf()->annotation());
      auto reads = a->se()->reads();
      snap.se_reads.emplace_back(reads.begin(), reads.end());
    }
    return snap;
  }

  bool operator==(const Snapshot&) const = default;
};

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ickpt_integration.log";
    std::remove(path_.c_str());
    register_types(registry_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  core::TypeRegistry registry_;
};

TEST_F(IntegrationTest, CheckpointEveryIterationThenRecoverFinalState) {
  auto program = parse_program(generate_image_program());
  core::Heap heap;
  AnalysisEngine engine(*program, heap);

  core::ManagerOptions opts;
  opts.full_interval = 4;
  core::CheckpointManager manager(path_, opts);
  std::vector<core::Checkpointable*> roots(engine.attr_bases().begin(),
                                           engine.attr_bases().end());

  auto hook = [&](int) { manager.take(roots); };
  engine.run_side_effect(hook);
  engine.run_binding_time(default_bta_config(), hook);
  engine.run_eval_time(hook);

  Snapshot live = Snapshot::of(engine.attributes());
  auto result = core::CheckpointManager::recover(path_, registry_);
  EXPECT_TRUE(result.log_clean);
  Snapshot recovered = Snapshot::of_recovered(result.state);
  EXPECT_TRUE(live == recovered);
}

TEST_F(IntegrationTest, CrashMidPhaseRecoversLastDurableIteration) {
  auto program = parse_program(generate_image_program());
  core::Heap heap;
  AnalysisEngine engine(*program, heap);

  core::ManagerOptions opts;
  opts.full_interval = 3;
  core::CheckpointManager manager(path_, opts);
  std::vector<core::Checkpointable*> roots(engine.attr_bases().begin(),
                                           engine.attr_bases().end());

  // Snapshot the live annotation state at every checkpointed iteration.
  std::vector<Snapshot> per_iteration;
  auto hook = [&](int) {
    manager.take(roots);
    per_iteration.push_back(Snapshot::of(engine.attributes()));
  };
  engine.run_side_effect(hook);
  engine.run_binding_time(default_bta_config(), hook);
  ASSERT_GE(per_iteration.size(), 5u);

  // Crash: tear the final frame on disk.
  auto bytes = io::read_file(path_);
  bytes.resize(bytes.size() - 11);
  io::write_file(path_, bytes);

  auto result = core::CheckpointManager::recover(path_, registry_);
  EXPECT_FALSE(result.log_clean);
  Snapshot recovered = Snapshot::of_recovered(result.state);
  // The state must equal the second-to-last checkpointed iteration.
  EXPECT_TRUE(recovered == per_iteration[per_iteration.size() - 2]);
}

TEST_F(IntegrationTest, RecoveredEngineStateSupportsFurtherCheckpoints) {
  auto program = parse_program(generate_image_program());
  {
    core::Heap heap;
    AnalysisEngine engine(*program, heap);
    core::CheckpointManager manager(path_);
    std::vector<core::Checkpointable*> roots(engine.attr_bases().begin(),
                                             engine.attr_bases().end());
    engine.run_side_effect([&](int) { manager.take(roots); });
  }  // crash after SEA

  auto result = core::CheckpointManager::recover(path_, registry_);
  // Resume: recovered Attributes objects continue to be checkpointable.
  std::vector<core::Checkpointable*> roots;
  for (ObjectId id : result.state.roots)
    roots.push_back(result.state.find(id));
  core::CheckpointManager manager(path_);
  auto take = manager.take(roots);
  EXPECT_EQ(take.stats.objects_recorded, 0u);  // clean after recovery
  auto again = core::CheckpointManager::recover(path_, registry_);
  EXPECT_EQ(again.state.roots.size(), result.state.roots.size());
}

}  // namespace
}  // namespace ickpt::analysis
