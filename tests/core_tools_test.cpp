// Tests for the operational core tools: recovered-state reachability
// pruning and checkpoint-log inspection.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/inspect.hpp"
#include "io/file_io.hpp"
#include "core/manager.hpp"
#include "tests/test_types.hpp"

namespace ickpt::testing {
namespace {

TEST(PruneUnreachable, DropsUnlinkedObjects) {
  std::string path = ::testing::TempDir() + "/ickpt_prune.log";
  std::remove(path.c_str());
  core::Heap heap;
  Inner* root = heap.make<Inner>();
  Leaf* kept = heap.make<Leaf>();
  Leaf* doomed = heap.make<Leaf>();
  kept->set_i32(1);
  doomed->set_i32(2);
  root->set_left(doomed);

  core::CheckpointManager manager(path);
  manager.take(*root);  // full: records root + doomed
  root->set_left(kept);  // unlink doomed; link a new leaf
  manager.take(*root);   // incremental: root + kept

  core::TypeRegistry registry;
  register_test_types(registry);
  auto recovered = core::CheckpointManager::recover(path, registry);
  // The chain still carries the unlinked leaf's record.
  EXPECT_EQ(recovered.state.by_id.size(), 3u);
  EXPECT_NE(recovered.state.find(doomed->info().id()), nullptr);

  std::size_t dropped = recovered.state.prune_unreachable();
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(recovered.state.by_id.size(), 2u);
  EXPECT_EQ(recovered.state.find(doomed->info().id()), nullptr);
  EXPECT_EQ(recovered.state.root_as<Inner>()->left->i32, 1);
  std::remove(path.c_str());
}

TEST(PruneUnreachable, KeepsSharedAndChainedObjects) {
  std::string path = ::testing::TempDir() + "/ickpt_prune2.log";
  std::remove(path.c_str());
  core::Heap heap;
  Inner* a = heap.make<Inner>();
  Inner* b = heap.make<Inner>();
  Leaf* leaf = heap.make<Leaf>();
  a->set_right(b);
  b->set_left(leaf);
  core::CheckpointManager manager(path);
  std::vector<core::Checkpointable*> roots{a};
  manager.take(roots);

  core::TypeRegistry registry;
  register_test_types(registry);
  auto recovered = core::CheckpointManager::recover(path, registry);
  EXPECT_EQ(recovered.state.prune_unreachable(), 0u);
  EXPECT_EQ(recovered.state.by_id.size(), 3u);
  std::remove(path.c_str());
}

TEST(InspectLog, ReportsFramesModesAndRecordCounts) {
  std::string path = ::testing::TempDir() + "/ickpt_inspect.log";
  std::remove(path.c_str());
  core::Heap heap;
  Inner* root = heap.make<Inner>();
  Leaf* leaf = heap.make<Leaf>();
  root->set_left(leaf);
  {
    core::ManagerOptions opts;
    opts.full_interval = 2;
    core::CheckpointManager manager(path, opts);
    manager.take(*root);      // 0: full, 2 records
    leaf->set_i32(5);
    manager.take(*root);      // 1: incr, 1 Leaf record
    manager.take(*root);      // 2: full, 2 records
  }
  core::TypeRegistry registry;
  register_test_types(registry);
  auto report = core::inspect_log(path, registry);
  EXPECT_TRUE(report.clean);
  ASSERT_EQ(report.frames.size(), 3u);
  EXPECT_EQ(report.frames[0].mode, core::Mode::kFull);
  EXPECT_EQ(report.frames[0].records, 2u);
  EXPECT_EQ(report.frames[1].mode, core::Mode::kIncremental);
  EXPECT_EQ(report.frames[1].records, 1u);
  ASSERT_EQ(report.frames[1].records_by_type.size(), 1u);
  EXPECT_EQ(report.frames[1].records_by_type[0].first, "test.Leaf");
  EXPECT_EQ(report.frames[2].records, 2u);
  EXPECT_GT(report.total_bytes, 0u);

  std::string text = report.to_string();
  EXPECT_NE(text.find("test.Leaf:1"), std::string::npos);
  EXPECT_NE(text.find("full"), std::string::npos);
  EXPECT_NE(text.find("incr"), std::string::npos);
  std::remove(path.c_str());
}

TEST(InspectLog, TornTailReported) {
  std::string path = ::testing::TempDir() + "/ickpt_inspect_torn.log";
  std::remove(path.c_str());
  core::Heap heap;
  Leaf* leaf = heap.make<Leaf>();
  {
    core::CheckpointManager manager(path);
    manager.take(*leaf);
    leaf->set_i32(9);
    manager.take(*leaf);
  }
  auto bytes = io::read_file(path);
  bytes.resize(bytes.size() - 3);
  io::write_file(path, bytes);

  core::TypeRegistry registry;
  register_test_types(registry);
  auto report = core::inspect_log(path, registry);
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(report.frames.size(), 1u);
  EXPECT_NE(report.to_string().find("dropped"), std::string::npos);
  std::remove(path.c_str());
}

TEST(InspectLog, MissingFileYieldsEmptyReport) {
  core::TypeRegistry registry;
  auto report = core::inspect_log("/nonexistent/ickpt.log", registry);
  EXPECT_TRUE(report.frames.empty());
}

}  // namespace
}  // namespace ickpt::testing
