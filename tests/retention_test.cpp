// Property tests for the binomial retention schedule — pure arithmetic, no
// I/O. These pin the three invariants DURABILITY.md advertises and the
// compaction/recovery code relies on:
//
//   size         — |schedule(n)| <= 2*floor(log2(n)) + 3, asserted exactly
//                  for every n up to 10^6, and the bound is tight (reached).
//   monotonicity — advancing n only drops epochs: schedule(n+1) minus the
//                  new epoch n+1 is a subset of schedule(n), and an epoch
//                  once unretained never resurrects.
//   replay       — the distance from any target t back to its nearest
//                  retained ancestor is < 2*granularity(n - t), so
//                  recovering a moment of age d replays O(d) epochs with
//                  constant < 2.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/retention.hpp"

namespace ickpt::testing {
namespace {

using core::RetentionPolicy;
using Epoch = ickpt::Epoch;

// Brute-force retained set for small n, straight off the predicate.
std::vector<Epoch> brute_schedule(Epoch n) {
  std::vector<Epoch> out;
  for (Epoch e = 0; e <= n; ++e)
    if (RetentionPolicy::retained(e, n)) out.push_back(e);
  return out;
}

TEST(RetentionPolicy, GranularityIsBitFloor) {
  EXPECT_EQ(RetentionPolicy::granularity(1), 1u);
  EXPECT_EQ(RetentionPolicy::granularity(2), 2u);
  EXPECT_EQ(RetentionPolicy::granularity(3), 2u);
  EXPECT_EQ(RetentionPolicy::granularity(4), 4u);
  EXPECT_EQ(RetentionPolicy::granularity(1023), 512u);
  EXPECT_EQ(RetentionPolicy::granularity(1024), 1024u);
  EXPECT_EQ(RetentionPolicy::granularity((1ull << 40) + 7), 1ull << 40);
}

TEST(RetentionPolicy, KnownSchedules) {
  EXPECT_EQ(RetentionPolicy::schedule(0), (std::vector<Epoch>{0}));
  EXPECT_EQ(RetentionPolicy::schedule(1), (std::vector<Epoch>{0, 1}));
  EXPECT_EQ(RetentionPolicy::schedule(10),
            (std::vector<Epoch>{0, 4, 8, 9, 10}));
  EXPECT_EQ(RetentionPolicy::schedule(16),
            (std::vector<Epoch>{0, 8, 12, 14, 15, 16}));
}

TEST(RetentionPolicy, EndpointsAlwaysRetained) {
  for (Epoch n : {Epoch{0}, Epoch{1}, Epoch{7}, Epoch{100}, Epoch{999983},
                  Epoch{1} << 50}) {
    EXPECT_TRUE(RetentionPolicy::retained(0, n)) << "n=" << n;
    EXPECT_TRUE(RetentionPolicy::retained(n, n)) << "n=" << n;
    EXPECT_FALSE(RetentionPolicy::retained(n + 1, n)) << "n=" << n;
  }
}

// The O(log n) generator and the predicate are the same function.
TEST(RetentionPolicy, ScheduleMatchesPredicate) {
  for (Epoch n = 0; n <= 2048; ++n)
    ASSERT_EQ(RetentionPolicy::schedule(n), brute_schedule(n)) << "n=" << n;
  // A few large spot checks where brute force is still affordable enough.
  for (Epoch n : {Epoch{65535}, Epoch{65536}, Epoch{100000}})
    ASSERT_EQ(RetentionPolicy::schedule(n), brute_schedule(n)) << "n=" << n;
}

// |schedule(n)| <= 2*floor(log2(n)) + 3 for every n up to 10^6 — the
// closed-form O(log n) size bound, checked exhaustively. The bound must
// also be tight: some n reaches it exactly, otherwise max_retained is
// advertising slack.
TEST(RetentionPolicy, SizeBoundExhaustiveToOneMillion) {
  bool tight = false;
  for (Epoch n = 0; n <= 1000000; ++n) {
    const std::size_t size = RetentionPolicy::schedule(n).size();
    const std::size_t bound = RetentionPolicy::max_retained(n);
    ASSERT_LE(size, bound) << "n=" << n;
    if (size == bound) tight = true;
  }
  EXPECT_TRUE(tight) << "max_retained is never reached — bound has slack";
}

TEST(RetentionPolicy, MaxRetainedClosedForm) {
  EXPECT_EQ(RetentionPolicy::max_retained(0), 1u);
  EXPECT_EQ(RetentionPolicy::max_retained(1), 3u);
  // 2*floor(log2(n)) + 3.
  EXPECT_EQ(RetentionPolicy::max_retained(1024), 2u * 10 + 3);
  EXPECT_EQ(RetentionPolicy::max_retained(1000000), 2u * 19 + 3);
}

// Advancing the newest epoch never resurrects a dropped epoch. Two forms:
// the predicate is monotone nonincreasing in n for fixed e, and the
// schedule at n+1 (minus the new endpoint) is a subset of the schedule
// at n — which is what lets a policy compaction at n' trust that every
// epoch it wants survived the compaction at n < n'.
TEST(RetentionPolicy, MonotoneUnderEpochAdvance) {
  for (Epoch n = 0; n <= 2048; ++n) {
    for (Epoch e = 0; e <= n; ++e) {
      if (!RetentionPolicy::retained(e, n))
        ASSERT_FALSE(RetentionPolicy::retained(e, n + 1))
            << "epoch " << e << " resurrected at n=" << n + 1;
    }
  }
  Epoch prev_n = 99991;  // prime, so bands straddle awkwardly
  std::vector<Epoch> prev = RetentionPolicy::schedule(prev_n);
  for (Epoch n = prev_n + 1; n <= prev_n + 600; ++n) {
    std::vector<Epoch> cur = RetentionPolicy::schedule(n);
    for (Epoch e : cur) {
      if (e == n) continue;
      ASSERT_TRUE(std::binary_search(prev.begin(), prev.end(), e))
          << "epoch " << e << " resurrected at n=" << n;
    }
    prev = std::move(cur);
  }
}

// Worst-case replay depth: for every target t <= n, the nearest retained
// epoch a <= t satisfies t - a < 2*granularity(n - t). Checked exhaustively
// for n up to 2048 (which covers the empirically worst ratio, 1.998 at
// n=1536, t=1023), using a per-n "last retained at or before" table so the
// whole sweep is O(n^2), not O(n^3).
TEST(RetentionPolicy, ReplayDepthWithinBinomialBound) {
  std::uint64_t worst_num = 0, worst_den = 1;
  for (Epoch n = 1; n <= 2048; ++n) {
    std::vector<Epoch> anchor(static_cast<std::size_t>(n) + 1);
    Epoch last = 0;
    for (Epoch e = 0; e <= n; ++e) {
      if (RetentionPolicy::retained(e, n)) last = e;
      anchor[static_cast<std::size_t>(e)] = last;
    }
    for (Epoch t = 0; t < n; ++t) {
      const Epoch dist = t - anchor[static_cast<std::size_t>(t)];
      const Epoch bound = RetentionPolicy::replay_bound(t, n);
      ASSERT_LE(dist, bound) << "t=" << t << " n=" << n;
      if (dist > 0) {
        const std::uint64_t gran = RetentionPolicy::granularity(n - t);
        ASSERT_LT(dist, 2 * gran) << "t=" << t << " n=" << n;
        if (dist * worst_den > worst_num * gran) {
          worst_num = dist;
          worst_den = gran;
        }
      }
    }
  }
  // The bound is nearly tight: the sweep must actually get close to 2x,
  // otherwise the test is vacuous (e.g. the predicate retains everything).
  EXPECT_GT(worst_num * 100, worst_den * 190)
      << "worst replay/granularity ratio " << worst_num << "/" << worst_den
      << " is suspiciously far below 2";
}

// replay_bound is zero exactly on retained targets.
TEST(RetentionPolicy, ReplayBoundZeroOnlyWhenRetained) {
  for (Epoch n : {Epoch{17}, Epoch{256}, Epoch{1536}}) {
    for (Epoch t = 0; t <= n; ++t) {
      if (RetentionPolicy::retained(t, n))
        EXPECT_EQ(RetentionPolicy::replay_bound(t, n), 0u)
            << "t=" << t << " n=" << n;
      else
        EXPECT_GT(RetentionPolicy::replay_bound(t, n), 0u)
            << "t=" << t << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace ickpt::testing
