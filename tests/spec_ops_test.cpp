// Op-level tests of the plan compiler's fusion peepholes: contiguous i32
// writes fuse into runs, pass-through chains fuse into follow hops, and the
// fused plans stay byte- and flag-equivalent to unfused execution.
#include <gtest/gtest.h>

#include "tests/synth_helpers.hpp"

namespace ickpt::testing {
namespace {

using spec::OpCode;
using spec::Plan;
using spec::PlanCompiler;

std::size_t count_ops(const Plan& plan, OpCode code) {
  std::size_t n = 0;
  for (const spec::Op& op : plan.ops)
    if (op.code == code) ++n;
  return n;
}

TEST(OpFusion, ContiguousI32FieldsFuseIntoOneRun) {
  // ListElem records nvals (i32) then vals[] (contiguous i32s): with a
  // fixed count the compiler must fuse them into a single run of 1+V.
  synth::SynthShapes shapes = synth::SynthShapes::make();
  Plan plan = PlanCompiler().compile(
      *shapes.elem,
      synth::make_synth_pattern(synth::SpecLevel::kStructure, 1, 10, 5)
          .children[0]);  // the head-element pattern of list 0
  ASSERT_EQ(count_ops(plan, OpCode::kWriteI32Run), 1u);
  EXPECT_EQ(count_ops(plan, OpCode::kWriteI32), 0u);
  EXPECT_EQ(count_ops(plan, OpCode::kWriteI32ArrayFixed), 0u);
  for (const spec::Op& op : plan.ops) {
    if (op.code == OpCode::kWriteI32Run) {
      EXPECT_EQ(op.b, 11u);  // nvals + 10
    }
  }
}

TEST(OpFusion, RuntimeCountedArrayDoesNotFuse) {
  // Without the pattern's fixed count, the array length is only known at
  // run time, so the scalar and the array stay separate ops.
  synth::SynthShapes shapes = synth::SynthShapes::make();
  spec::PatternNode pattern;  // MaybeModified, no array_count
  pattern.children.push_back(spec::PatternNode::absent());
  Plan plan = PlanCompiler().compile(*shapes.elem, pattern);
  EXPECT_EQ(count_ops(plan, OpCode::kWriteI32Run), 0u);
  EXPECT_EQ(count_ops(plan, OpCode::kWriteI32), 1u);
  EXPECT_EQ(count_ops(plan, OpCode::kWriteI32ArrayRuntime), 1u);
}

TEST(OpFusion, PassThroughChainsFuseIntoFollow) {
  synth::SynthShapes shapes = synth::SynthShapes::make();
  // Positions pattern, L=5: four interior pass-through hops per list.
  Plan plan = PlanCompiler().compile(
      *shapes.compound,
      synth::make_synth_pattern(synth::SpecLevel::kPositions, 5, 10, 3));
  // One follow op per possibly-modified list, each with 4 hops.
  ASSERT_EQ(count_ops(plan, OpCode::kFollow), 3u);
  for (const spec::Op& op : plan.ops) {
    if (op.code == OpCode::kFollow) {
      EXPECT_EQ(op.b, 4u);
    }
  }
  // Exactly one push/pop pair per traversed list (the head).
  EXPECT_EQ(count_ops(plan, OpCode::kPushChild), 3u);
  EXPECT_EQ(count_ops(plan, OpCode::kPop), 3u);
}

TEST(OpFusion, TestedChainsDoNotFuse) {
  synth::SynthShapes shapes = synth::SynthShapes::make();
  // Structure-level pattern keeps every test -> no node is pass-through.
  Plan plan = PlanCompiler().compile(
      *shapes.compound,
      synth::make_synth_pattern(synth::SpecLevel::kStructure, 5, 10, 5));
  EXPECT_EQ(count_ops(plan, OpCode::kFollow), 0u);
  EXPECT_EQ(count_ops(plan, OpCode::kPushChild), 25u);
}

TEST(OpFusion, FollowThrowsOnMidChainNull) {
  synth::SynthShapes shapes = synth::SynthShapes::make();
  synth::SynthConfig build;
  build.num_structures = 1;
  build.list_length = 3;  // shorter than the declared 5
  build.values_per_elem = 1;
  core::Heap heap;
  synth::SynthWorkload workload(heap, build);

  Plan plan = PlanCompiler().compile(
      *shapes.compound,
      synth::make_synth_pattern(synth::SpecLevel::kPositions, 5, 1, 5));
  spec::PlanExecutor exec(plan);
  io::VectorSink sink;
  io::DataWriter writer(sink);
  EXPECT_THROW(exec.run(workload.roots()[0], writer), SpecError);
}

TEST(DataWriterRun, MatchesIndividualWrites) {
  std::vector<std::int32_t> values(1000);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<std::int32_t>(i * 2654435761u);

  io::VectorSink a;
  {
    io::DataWriter w(a, 256);  // force many buffer spills
    w.write_i32_run(values.data(), values.size());
    w.flush();
  }
  io::VectorSink b;
  {
    io::DataWriter w(b);
    for (std::int32_t v : values) w.write_i32(v);
    w.flush();
  }
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(DataWriterRun, EmptyAndSingleRuns) {
  io::VectorSink sink;
  io::DataWriter w(sink);
  w.write_i32_run(nullptr, 0);
  std::int32_t one = -7;
  w.write_i32_run(&one, 1);
  w.flush();
  ASSERT_EQ(sink.size(), 4u);
  io::DataReader r(sink.bytes());
  EXPECT_EQ(r.read_i32(), -7);
}

TEST(ExecutorGuard, RejectsPlansDeeperThanStack) {
  synth::SynthShapes shapes = synth::SynthShapes::make();
  // Build a pattern 300 levels deep (tested nodes, so no follow fusion).
  spec::PatternNode pattern;
  spec::PatternNode* tip = &pattern;
  for (int i = 0; i < 300; ++i) {
    tip->children.push_back(spec::PatternNode{});
    tip = &tip->children.back();
  }
  tip->children.push_back(spec::PatternNode::absent());
  Plan plan = PlanCompiler().compile(*shapes.elem, pattern);
  EXPECT_THROW(spec::PlanExecutor{plan}, SpecError);
}

TEST(ExecutorGuard, RejectsPlanWithoutEnd) {
  Plan plan;
  plan.ops.push_back(spec::Op{OpCode::kPop, 0, 0, 0});
  EXPECT_THROW(spec::PlanExecutor{plan}, SpecError);
  Plan empty;
  EXPECT_THROW(spec::PlanExecutor{empty}, SpecError);
}

}  // namespace
}  // namespace ickpt::testing
