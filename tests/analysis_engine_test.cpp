// AnalysisEngine tests: phase orchestration, the phase-separation invariant
// that licenses the paper's specialization (each phase only dirties its own
// entries), shrinking incremental checkpoints across fixpoint iterations,
// and byte-equivalence of the generic driver, the phase plans, and the
// Fig. 5/6 residual code.
#include <gtest/gtest.h>

#include "analysis/engine.hpp"
#include "analysis/parser.hpp"
#include "analysis/program_gen.hpp"
#include "analysis/residual.hpp"
#include "analysis/shapes.hpp"
#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "tests/test_types.hpp"

namespace ickpt::analysis {
namespace {

struct EngineFixture : public ::testing::Test {
  void SetUp() override {
    program = parse_program(generate_image_program());
    engine = std::make_unique<AnalysisEngine>(*program, heap);
  }

  std::vector<std::uint8_t> generic_incremental(Epoch epoch) {
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      core::CheckpointOptions opts;
      opts.mode = core::Mode::kIncremental;
      core::Checkpoint::run(writer, epoch, engine->attr_bases(), opts);
      writer.flush();
    }
    return sink.take();
  }

  core::Heap heap;
  std::unique_ptr<Program> program;
  std::unique_ptr<AnalysisEngine> engine;
};

TEST_F(EngineFixture, AttachesAttributesToEveryStatement) {
  EXPECT_EQ(engine->attributes().size(), program->statements.size());
  for (const Stmt* stmt : program->statements) {
    ASSERT_NE(stmt->attrs, nullptr);
    EXPECT_NE(stmt->attrs->se(), nullptr);
    EXPECT_NE(stmt->attrs->bt()->leaf(), nullptr);
    EXPECT_NE(stmt->attrs->et()->leaf(), nullptr);
  }
}

TEST_F(EngineFixture, PhasesRunInOrderWithExpectedShape) {
  int sea = engine->run_side_effect();
  int bta = engine->run_binding_time(default_bta_config());
  int eta = engine->run_eval_time();
  EXPECT_GE(sea, 1);
  // Paper: BTA requires several iterations (nine there), ETA fewer (three).
  EXPECT_GE(bta, 4);
  EXPECT_LT(eta, bta);
}

TEST_F(EngineFixture, EvalTimeWithoutBindingTimeThrows) {
  EXPECT_THROW(engine->run_eval_time(), AnalysisError);
}

TEST_F(EngineFixture, PhaseSeparationInvariantHolds) {
  // After SEA, later phases never dirty SE entries; after BTA, ETA never
  // dirties BT entries — this is what makes the paper's phase
  // specialization sound (§4.2).
  engine->run_side_effect();
  engine->reset_flags();

  engine->run_binding_time(default_bta_config());
  for (Attributes* attrs : engine->attributes()) {
    EXPECT_FALSE(attrs->se()->info().modified());
    EXPECT_FALSE(attrs->et()->info().modified());
    EXPECT_FALSE(attrs->et()->leaf()->info().modified());
  }
  engine->reset_flags();

  engine->run_eval_time();
  for (Attributes* attrs : engine->attributes()) {
    EXPECT_FALSE(attrs->se()->info().modified());
    EXPECT_FALSE(attrs->bt()->info().modified());
    EXPECT_FALSE(attrs->bt()->leaf()->info().modified());
  }
}

TEST_F(EngineFixture, IncrementalCheckpointsShrinkAsBtaConverges) {
  engine->run_side_effect();
  engine->reset_flags();
  std::vector<std::size_t> sizes;
  engine->run_binding_time(default_bta_config(), [&](int) {
    sizes.push_back(generic_incremental(sizes.size()).size());
  });
  ASSERT_GE(sizes.size(), 4u);
  // Early iterations change many annotations; the final (fixpoint-
  // confirming) iteration changes none.
  EXPECT_GT(sizes.front(), sizes.back());
  EXPECT_LT(sizes.back(), sizes[1]);
}

TEST_F(EngineFixture, PhasePlansMatchGenericBytes) {
  AnalysisShapes shapes = AnalysisShapes::make();
  engine->run_side_effect();
  engine->reset_flags();

  struct PhaseCase {
    Phase phase;
    int which;  // 0 = bta, 1 = eta
  };
  for (const PhaseCase& pc :
       {PhaseCase{Phase::kBindingTime, 0}, PhaseCase{Phase::kEvalTime, 1}}) {
    // Run one phase iteration worth of mutation, then compare engines.
    if (pc.which == 0) {
      engine->run_binding_time(default_bta_config());
    } else {
      engine->run_eval_time();
    }
    // The fixpoint loop reset nothing (no checkpoints were taken), so flags
    // reflect everything the phase changed since the last reset.
    auto flags = engine->save_flags();
    auto generic = generic_incremental(42);

    engine->restore_flags(flags);
    spec::Plan plan =
        spec::PlanCompiler().compile(*shapes.attributes,
                                     make_phase_pattern(pc.phase));
    spec::PlanExecutor exec(plan);
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      spec::run_plan_checkpoint(writer, 42, engine->attr_ptrs(), exec);
      writer.flush();
    }
    EXPECT_EQ(sink.bytes(), generic) << "phase " << pc.which;

    engine->restore_flags(flags);
    io::VectorSink rsink;
    {
      io::DataWriter writer(rsink);
      auto fn = pc.which == 0 ? residual::checkpoint_attr_btmodif
                              : residual::checkpoint_attr_etmodif;
      residual::run_residual_checkpoint(
          writer, 42, engine->attributes(),
          [&](Attributes& attr, io::DataWriter& d) { fn(attr, d); });
      writer.flush();
    }
    EXPECT_EQ(rsink.bytes(), generic) << "residual phase " << pc.which;
    engine->reset_flags();
  }
}

TEST_F(EngineFixture, StructureResidualMatchesGenericInAnyPhase) {
  AnalysisShapes shapes = AnalysisShapes::make();
  engine->run_side_effect();  // dirties SE entries and Attributes
  auto flags = engine->save_flags();
  auto generic = generic_incremental(7);

  engine->restore_flags(flags);
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    residual::run_residual_checkpoint(
        writer, 7, engine->attributes(),
        [](Attributes& attr, io::DataWriter& d) {
          residual::checkpoint_attr(attr, d);
        });
    writer.flush();
  }
  EXPECT_EQ(sink.bytes(), generic);

  // And the structure-only plan agrees too.
  engine->restore_flags(flags);
  spec::Plan plan = spec::PlanCompiler().compile(
      *shapes.attributes, make_phase_pattern(Phase::kStructureOnly));
  spec::PlanExecutor exec(plan);
  io::VectorSink psink;
  {
    io::DataWriter writer(psink);
    spec::run_plan_checkpoint(writer, 7, engine->attr_ptrs(), exec);
    writer.flush();
  }
  EXPECT_EQ(psink.bytes(), generic);
}

TEST_F(EngineFixture, PhasePlanIsSmallerThanStructurePlan) {
  AnalysisShapes shapes = AnalysisShapes::make();
  spec::PlanCompiler compiler;
  auto structure = compiler.compile(*shapes.attributes,
                                    make_phase_pattern(Phase::kStructureOnly));
  auto bta = compiler.compile(*shapes.attributes,
                              make_phase_pattern(Phase::kBindingTime));
  EXPECT_LT(bta.size(), structure.size());
}

TEST_F(EngineFixture, AttributesRoundTripThroughRecovery) {
  engine->run_side_effect();
  engine->run_binding_time(default_bta_config());
  engine->run_eval_time();

  auto bytes = ickpt::testing::checkpoint_bytes(engine->attr_bases(), 0,
                                                core::Mode::kFull);
  core::TypeRegistry registry;
  register_types(registry);
  core::Recovery recovery(registry);
  io::DataReader reader(bytes);
  recovery.apply(reader);
  auto state = recovery.finish();

  ASSERT_EQ(state.roots.size(), engine->attributes().size());
  for (std::size_t i = 0; i < state.roots.size(); ++i) {
    const Attributes* original = engine->attributes()[i];
    const auto* restored = state.root_as<Attributes>(i);
    EXPECT_EQ(restored->bt()->leaf()->annotation(),
              original->bt()->leaf()->annotation());
    EXPECT_EQ(restored->et()->leaf()->annotation(),
              original->et()->leaf()->annotation());
    ASSERT_EQ(restored->se()->reads().size(), original->se()->reads().size());
    for (std::size_t k = 0; k < original->se()->reads().size(); ++k)
      EXPECT_EQ(restored->se()->reads()[k], original->se()->reads()[k]);
  }
}

TEST_F(EngineFixture, ValidateShapeAcceptsAttributesTrees) {
  AnalysisShapes shapes = AnalysisShapes::make();
  for (void* attr : engine->attr_ptrs())
    EXPECT_NO_THROW(spec::validate_shape(*shapes.attributes, attr));
}

}  // namespace
}  // namespace ickpt::analysis
