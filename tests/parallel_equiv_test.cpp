// Serial-equivalence harness for sharded parallel capture: the correctness
// contract of core::ParallelCheckpoint is enforced here, not by review.
//
// Two tiers of equivalence, per the cycle_guard contract:
//  - guard off (paper assumption: acyclic, unshared): the merged parallel
//    stream must be BYTE-IDENTICAL to the serial stream for every thread
//    count — shard segments are serial record runs and the merge is
//    shard-ordered.
//  - guard on, with cross-root sharing and cycles: record placement may
//    differ (the claim table awards a shared object to whichever shard
//    claims it first), so the assertion is observational — the parallel
//    stream must RECOVER to a graph value-identical to the serial stream's,
//    and per-shard CheckpointStats must sum to the serial totals.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <vector>

#include "core/parallel_checkpoint.hpp"
#include "core/recovery.hpp"
#include "core/type_registry.hpp"
#include "core/manager.hpp"
#include "io/data_reader.hpp"
#include "spec/adaptive.hpp"
#include "tests/synth_helpers.hpp"

namespace ickpt::testing {
namespace {

using core::ParallelCheckpoint;
using core::ParallelOptions;
using core::ParallelStats;

constexpr unsigned kMaxThreads = 8;

std::vector<std::uint8_t> parallel_bytes(
    std::span<core::Checkpointable* const> roots, Epoch epoch,
    const ParallelOptions& popts, ParallelStats* out = nullptr) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    ParallelStats stats = ParallelCheckpoint::run(writer, epoch, roots, popts);
    writer.flush();
    if (out != nullptr) *out = stats;
  }
  return sink.take();
}

std::vector<std::uint8_t> serial_bytes(
    std::span<core::Checkpointable* const> roots, Epoch epoch, core::Mode mode,
    bool cycle_guard, core::CheckpointStats* out = nullptr) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = mode;
    opts.cycle_guard = cycle_guard;
    core::CheckpointStats stats =
        core::Checkpoint::run(writer, epoch, roots, opts);
    writer.flush();
    if (out != nullptr) *out = stats;
  }
  return sink.take();
}

/// Replay one or more checkpoint payloads (full first) into a fresh graph.
core::RecoveredState recover_payloads(
    const std::vector<std::vector<std::uint8_t>>& payloads,
    const core::TypeRegistry& registry) {
  core::Recovery recovery(registry);
  for (const auto& payload : payloads) {
    io::DataReader reader(payload);
    recovery.apply(reader);
  }
  return recovery.finish();
}

ObjectId id_or_null(const core::Checkpointable* obj) {
  return obj != nullptr ? obj->info().id() : kNullObjectId;
}

/// Value-and-topology identity of two recovered synth graphs: same roots,
/// same id set, and per id the same scalars and the same child ids. Ids are
/// preserved by recovery, so this is exactly "the serial stream and the
/// parallel stream describe the same state".
void expect_states_identical(const core::RecoveredState& a,
                             const core::RecoveredState& b,
                             const std::string& context) {
  ASSERT_EQ(a.epoch, b.epoch) << context;
  ASSERT_EQ(a.roots, b.roots) << context;
  ASSERT_EQ(a.by_id.size(), b.by_id.size()) << context;
  for (const auto& [id, obj] : a.by_id) {
    core::Checkpointable* other = b.find(id);
    ASSERT_NE(other, nullptr) << context << ": id " << id << " missing";
    ASSERT_EQ(obj->type_id(), other->type_id()) << context << ": id " << id;
    if (const auto* ea = dynamic_cast<const synth::ListElem*>(obj)) {
      const auto* eb = dynamic_cast<const synth::ListElem*>(other);
      ASSERT_NE(eb, nullptr) << context;
      ASSERT_EQ(ea->nvals(), eb->nvals()) << context << ": id " << id;
      for (std::int32_t i = 0; i < ea->nvals(); ++i)
        ASSERT_EQ(ea->value(i), eb->value(i))
            << context << ": id " << id << " value " << i;
      ASSERT_EQ(id_or_null(ea->next()), id_or_null(eb->next()))
          << context << ": id " << id << " next";
    } else if (const auto* ca = dynamic_cast<const synth::Compound*>(obj)) {
      const auto* cb = dynamic_cast<const synth::Compound*>(other);
      ASSERT_NE(cb, nullptr) << context;
      for (int i = 0; i < synth::Compound::kLists; ++i)
        ASSERT_EQ(id_or_null(ca->list(i)), id_or_null(cb->list(i)))
            << context << ": id " << id << " list " << i;
    } else {
      FAIL() << context << ": unexpected type in recovered synth graph";
    }
  }
}

core::CheckpointStats sum_shards(const ParallelStats& stats) {
  core::CheckpointStats sum;
  for (const core::ShardStats& s : stats.shard_stats) {
    sum.objects_visited += s.stats.objects_visited;
    sum.objects_recorded += s.stats.objects_recorded;
  }
  return sum;
}

/// Randomized tree-shaped workloads (the paper's assumption): the merged
/// parallel stream must equal the serial stream byte for byte, and the
/// per-shard stats must sum to the serial stats, for 1..8 threads.
TEST(ParallelEquivalence, ByteIdenticalOnUnsharedGraphs) {
  std::mt19937_64 rng(20260806);
  for (int trial = 0; trial < 4; ++trial) {
    synth::SynthConfig config;
    config.num_structures = 37 + static_cast<std::size_t>(rng() % 400);
    config.list_length = 1 + static_cast<int>(rng() % 6);
    config.values_per_elem = 1 + static_cast<int>(rng() % 10);
    config.modified_lists = 1 + static_cast<int>(rng() % synth::Compound::kLists);
    config.percent_modified = static_cast<int>(rng() % 101);
    config.seed = rng();
    core::Heap heap;
    synth::SynthWorkload workload(heap, config);
    workload.reset_flags();
    workload.mutate();
    auto flags = workload.save_flags();

    for (core::Mode mode : {core::Mode::kIncremental, core::Mode::kFull}) {
      workload.restore_flags(flags);
      core::CheckpointStats serial_stats;
      auto serial = serial_bytes(workload.root_bases(), 7, mode,
                                 /*cycle_guard=*/false, &serial_stats);
      for (unsigned threads = 1; threads <= kMaxThreads; ++threads) {
        const std::string context =
            "trial " + std::to_string(trial) + " mode " +
            std::to_string(static_cast<int>(mode)) + " threads " +
            std::to_string(threads);
        ParallelOptions popts;
        popts.mode = mode;
        popts.threads = threads;
        workload.restore_flags(flags);
        ParallelStats pstats;
        auto parallel = parallel_bytes(workload.root_bases(), 7, popts,
                                       &pstats);
        EXPECT_EQ(parallel, serial) << context;
        EXPECT_EQ(pstats.totals.objects_visited, serial_stats.objects_visited)
            << context;
        EXPECT_EQ(pstats.totals.objects_recorded,
                  serial_stats.objects_recorded)
            << context;
        if (threads > 1) {
          core::CheckpointStats sum = sum_shards(pstats);
          EXPECT_EQ(sum.objects_visited, serial_stats.objects_visited)
              << context;
          EXPECT_EQ(sum.objects_recorded, serial_stats.objects_recorded)
              << context;
          EXPECT_EQ(pstats.threads_used, threads) << context;
          EXPECT_GE(pstats.shards, static_cast<std::size_t>(threads))
              << context;
        }
      }
    }
  }
}

/// Workload with cross-root sharing and cycles, captured under cycle_guard:
/// a full checkpoint plus an incremental delta from each engine must recover
/// to value-identical graphs, and shard stats must sum to serial stats.
TEST(ParallelEquivalence, RecoversIdenticallyOnSharedCyclicGraphs) {
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 3; ++trial) {
    synth::SynthConfig config;
    config.num_structures = 61 + static_cast<std::size_t>(rng() % 200);
    config.list_length = 2 + static_cast<int>(rng() % 4);
    config.values_per_elem = 1 + static_cast<int>(rng() % 6);
    config.percent_modified = 40;
    // mutate() walks lists 0..modified_lists-1 by next-pointer; keep it off
    // list 2, which the surgery below turns cyclic.
    config.modified_lists = 2;
    config.seed = rng();
    core::Heap heap;
    synth::SynthWorkload workload(heap, config);
    auto roots = workload.roots();
    const std::size_t n = roots.size();
    // Cross-root sharing: every 5th compound adopts a list owned by a
    // compound in a *different* shard neighborhood (far index), so shards
    // race for the shared chains through the claim table.
    for (std::size_t i = 0; i < n; i += 5) {
      const std::size_t j = (i + n / 2 + 1) % n;
      roots[i]->set_list(0, roots[j]->list(1));
    }
    // Cycles: every 7th compound's list 2 loops back onto its own head.
    for (std::size_t i = 0; i < n; i += 7) {
      synth::ListElem* head = roots[i]->list(2);
      synth::ListElem* tail = head;
      while (tail->next() != nullptr) tail = tail->next();
      tail->set_next(head);
    }
    auto flags_full = workload.save_flags();
    workload.reset_flags();
    workload.mutate();
    auto flags_incr = workload.save_flags();

    core::TypeRegistry registry;
    synth::register_types(registry);

    // Serial reference: full (all flags as saved) + incremental delta.
    workload.restore_flags(flags_full);
    core::CheckpointStats serial_full_stats;
    auto serial_full = serial_bytes(workload.root_bases(), 0,
                                    core::Mode::kFull, true,
                                    &serial_full_stats);
    workload.restore_flags(flags_incr);
    core::CheckpointStats serial_incr_stats;
    auto serial_incr = serial_bytes(workload.root_bases(), 1,
                                    core::Mode::kIncremental, true,
                                    &serial_incr_stats);
    auto serial_state = recover_payloads({serial_full, serial_incr}, registry);

    for (unsigned threads = 1; threads <= kMaxThreads; ++threads) {
      const std::string context = "trial " + std::to_string(trial) +
                                  " threads " + std::to_string(threads);
      ParallelOptions popts;
      popts.cycle_guard = true;
      popts.threads = threads;
      popts.mode = core::Mode::kFull;
      workload.restore_flags(flags_full);
      ParallelStats full_stats;
      auto par_full = parallel_bytes(workload.root_bases(), 0, popts,
                                     &full_stats);
      popts.mode = core::Mode::kIncremental;
      workload.restore_flags(flags_incr);
      ParallelStats incr_stats;
      auto par_incr = parallel_bytes(workload.root_bases(), 1, popts,
                                     &incr_stats);

      EXPECT_EQ(full_stats.totals.objects_visited,
                serial_full_stats.objects_visited)
          << context;
      EXPECT_EQ(full_stats.totals.objects_recorded,
                serial_full_stats.objects_recorded)
          << context;
      EXPECT_EQ(incr_stats.totals.objects_visited,
                serial_incr_stats.objects_visited)
          << context;
      EXPECT_EQ(incr_stats.totals.objects_recorded,
                serial_incr_stats.objects_recorded)
          << context;
      if (threads > 1) {
        core::CheckpointStats sum = sum_shards(full_stats);
        EXPECT_EQ(sum.objects_visited, serial_full_stats.objects_visited)
            << context;
        EXPECT_EQ(sum.objects_recorded, serial_full_stats.objects_recorded)
            << context;
      }

      auto parallel_state = recover_payloads({par_full, par_incr}, registry);
      expect_states_identical(serial_state, parallel_state, context);
    }
  }
}

/// The specialized engine's sharded runner: plans describe trees, so the
/// parallel plan stream must be byte-identical to the serial plan stream —
/// which the existing property suite already ties to the generic stream.
TEST(ParallelEquivalence, PlanExecutorShardedIsByteIdentical) {
  synth::SynthConfig config;
  config.num_structures = 300;
  config.list_length = 4;
  config.values_per_elem = 6;
  config.modified_lists = 3;
  config.percent_modified = 50;
  core::Heap heap;
  synth::SynthWorkload workload(heap, config);
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();

  synth::SynthShapes shapes = synth::SynthShapes::make();
  spec::Plan plan = compile_synth_plan(shapes, config,
                                       synth::SpecLevel::kModifiedLists);
  spec::PlanExecutor exec(plan);
  workload.restore_flags(flags);
  auto serial = plan_bytes(workload, exec, 3);

  for (unsigned threads = 1; threads <= kMaxThreads; ++threads) {
    workload.restore_flags(flags);
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      spec::run_plan_checkpoint_parallel(writer, 3, workload.root_ptrs(),
                                         exec, threads);
      writer.flush();
    }
    EXPECT_EQ(sink.bytes(), serial) << "threads " << threads;
  }
}

/// AdaptiveCheckpointer with sharded specialized capture: the staged stream
/// stays byte-identical to the serial adaptive stream across the
/// observe -> specialize transition, and structural drift still falls back.
TEST(ParallelEquivalence, AdaptiveShardedMatchesSerialAndFallsBack) {
  synth::SynthConfig config;
  config.num_structures = 120;
  config.list_length = 3;
  config.values_per_elem = 4;
  core::Heap heap, heap2;
  synth::SynthWorkload workload(heap, config);
  synth::SynthWorkload mirror(heap2, config);
  synth::SynthShapes shapes = synth::SynthShapes::make();

  spec::AdaptiveCheckpointer::Options serial_opts;
  spec::AdaptiveCheckpointer::Options parallel_opts;
  parallel_opts.capture_threads = 4;
  spec::AdaptiveCheckpointer serial_ckpt(*shapes.compound, serial_opts);
  spec::AdaptiveCheckpointer parallel_ckpt(*shapes.compound, parallel_opts);

  // The two workloads hold distinct object ids, so compare per-epoch stream
  // *shapes* via stage/fallback bookkeeping and self-consistency: each
  // engine's stream must equal its own generic driver's stream.
  for (Epoch epoch = 0; epoch < 8; ++epoch) {
    for (auto* w : {&workload, &mirror}) {
      w->reset_flags();
      w->mutate();
    }
    auto run_one = [epoch](spec::AdaptiveCheckpointer& ckpt,
                           synth::SynthWorkload& w) {
      auto flags = w.save_flags();
      auto generic = generic_bytes(w, epoch);
      w.restore_flags(flags);
      io::VectorSink sink;
      {
        io::DataWriter writer(sink);
        spec::AdaptiveCheckpointer::Roots roots{w.root_bases(),
                                                w.root_ptrs()};
        ckpt.checkpoint(writer, epoch, roots);
        writer.flush();
      }
      EXPECT_EQ(sink.bytes(), generic) << "epoch " << epoch;
      return sink.take();
    };
    run_one(serial_ckpt, workload);
    run_one(parallel_ckpt, mirror);
    EXPECT_EQ(serial_ckpt.stage(), parallel_ckpt.stage())
        << "epoch " << epoch;
  }
  EXPECT_EQ(parallel_ckpt.stage(),
            spec::AdaptiveCheckpointer::Stage::kSpecialized);

  // Structural drift: grow a list beyond the declared length — the sharded
  // plan must abort cleanly (no partial caller stream) and fall back.
  synth::ListElem* extra = heap2.make<synth::ListElem>(2);
  synth::ListElem* head = mirror.roots()[5]->list(0);
  while (head->next() != nullptr) head = head->next();
  head->set_next(extra);
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    spec::AdaptiveCheckpointer::Roots roots{mirror.root_bases(),
                                            mirror.root_ptrs()};
    auto result = parallel_ckpt.checkpoint(writer, 99, roots);
    writer.flush();
    EXPECT_TRUE(result.fell_back);
  }
  EXPECT_EQ(parallel_ckpt.stage(),
            spec::AdaptiveCheckpointer::Stage::kObserving);
}

/// End to end through the manager: capture_threads=4 takes over several
/// epochs land frames whose recovery matches the live graph.
TEST(ParallelEquivalence, ManagerCaptureThreadsRecoversLiveState) {
  const std::string path =
      ::testing::TempDir() + "/ickpt_parallel_equiv_manager.log";
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());

  synth::SynthConfig config;
  config.num_structures = 150;
  config.list_length = 3;
  config.values_per_elem = 5;
  config.percent_modified = 30;
  core::Heap heap;
  synth::SynthWorkload workload(heap, config);

  core::ManagerOptions mopts;
  mopts.full_interval = 3;
  mopts.capture_threads = 4;
  core::CheckpointManager manager(path, mopts);
  for (int epoch = 0; epoch < 7; ++epoch) {
    if (epoch > 0) workload.mutate();
    auto result = manager.take(workload.root_bases());
    EXPECT_EQ(result.stats.objects_visited, workload.total_objects());
  }

  core::TypeRegistry registry;
  synth::register_types(registry);
  auto recovered = core::CheckpointManager::recover(path, registry);
  EXPECT_TRUE(recovered.log_clean);
  ASSERT_EQ(recovered.state.roots.size(), workload.roots().size());
  for (std::size_t i = 0; i < workload.roots().size(); ++i) {
    const synth::Compound* live = workload.roots()[i];
    ASSERT_EQ(recovered.state.roots[i], live->info().id());
    const auto* rec = dynamic_cast<const synth::Compound*>(
        recovered.state.find(live->info().id()));
    ASSERT_NE(rec, nullptr);
    for (int l = 0; l < synth::Compound::kLists; ++l) {
      const synth::ListElem* le = live->list(l);
      const synth::ListElem* re = rec->list(l);
      while (le != nullptr) {
        ASSERT_NE(re, nullptr);
        ASSERT_EQ(le->info().id(), re->info().id());
        ASSERT_EQ(le->nvals(), re->nvals());
        for (std::int32_t v = 0; v < le->nvals(); ++v)
          ASSERT_EQ(le->value(v), re->value(v));
        le = le->next();
        re = re->next();
      }
      ASSERT_EQ(re, nullptr);
    }
  }
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

}  // namespace
}  // namespace ickpt::testing
