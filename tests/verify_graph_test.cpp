// Object-graph shape checker: trees pass, cycles are errors with the id path
// of the loop, shared subobjects are warnings with both reaching paths, and
// the dry-run walk neither writes bytes nor perturbs modified flags.
#include <gtest/gtest.h>

#include "tests/test_types.hpp"
#include "verify/graph_check.hpp"

namespace ickpt::testing {
namespace {

std::string id_str(const core::Checkpointable& o) {
  return std::to_string(o.info().id());
}

TEST(GraphCheck, CleanTreeHasNoFindings) {
  core::Heap heap;
  Inner* root = heap.make<Inner>();
  Inner* mid = heap.make<Inner>();
  root->set_right(mid);
  root->set_left(heap.make<Leaf>());
  mid->set_left(heap.make<Leaf>());
  std::vector<core::Checkpointable*> roots{root};
  auto report = verify::check_graph(roots);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_TRUE(report.findings.empty()) << report.to_string();
}

TEST(GraphCheck, CycleIsErrorWithLoopPath) {
  core::Heap heap;
  Inner* a = heap.make<Inner>();
  Inner* b = heap.make<Inner>();
  a->set_right(b);
  b->set_right(a);  // back edge: a -> b -> a
  std::vector<core::Checkpointable*> roots{a};
  auto report = verify::check_graph(roots);
  EXPECT_FALSE(report.clean()) << report.to_string();
  const verify::Finding* finding = report.first("cycle");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->severity, verify::Severity::kError);
  EXPECT_EQ(finding->object_id, a->info().id());
  // The loop path names both participants.
  EXPECT_NE(finding->position.find(id_str(*a)), std::string::npos);
  EXPECT_NE(finding->position.find(id_str(*b)), std::string::npos);
}

TEST(GraphCheck, SelfLoopIsCycle) {
  core::Heap heap;
  Inner* a = heap.make<Inner>();
  a->set_right(a);
  std::vector<core::Checkpointable*> roots{a};
  auto report = verify::check_graph(roots);
  EXPECT_EQ(report.count("cycle"), 1u) << report.to_string();
}

TEST(GraphCheck, SharedSubobjectIsWarningWithBothPaths) {
  core::Heap heap;
  Inner* a = heap.make<Inner>();
  Inner* b = heap.make<Inner>();
  Leaf* shared = heap.make<Leaf>();
  a->set_left(shared);
  b->set_left(shared);
  std::vector<core::Checkpointable*> roots{a, b};
  auto report = verify::check_graph(roots);
  EXPECT_TRUE(report.clean()) << report.to_string();  // warning, not error
  const verify::Finding* finding = report.first("shared");
  ASSERT_NE(finding, nullptr) << report.to_string();
  EXPECT_EQ(finding->severity, verify::Severity::kWarning);
  EXPECT_EQ(finding->object_id, shared->info().id());
  // position carries the revisit path (under b); the message names the
  // first-seen path (under a) too.
  EXPECT_NE(finding->position.find(id_str(*b)), std::string::npos);
  EXPECT_NE(finding->message.find(id_str(*a) + "->" + id_str(*shared)),
            std::string::npos)
      << finding->message;
  EXPECT_EQ(report.count("cycle"), 0u);
}

TEST(GraphCheck, DiamondWithinOneRootIsShared) {
  core::Heap heap;
  Inner* root = heap.make<Inner>();
  Inner* mid = heap.make<Inner>();
  Leaf* shared = heap.make<Leaf>();
  root->set_left(shared);
  root->set_right(mid);
  mid->set_left(shared);
  std::vector<core::Checkpointable*> roots{root};
  auto report = verify::check_graph(roots);
  EXPECT_EQ(report.count("shared"), 1u) << report.to_string();
  EXPECT_EQ(report.count("cycle"), 0u);
}

TEST(GraphCheck, WalkIsSideEffectFree) {
  core::Heap heap;
  Inner* root = heap.make<Inner>();
  Leaf* leaf = heap.make<Leaf>();
  root->set_left(leaf);
  leaf->set_i32(5);
  ASSERT_TRUE(leaf->info().modified());
  std::vector<core::Checkpointable*> roots{root};
  (void)verify::check_graph(roots);
  // A real checkpoint would have reset the flag; the dry-run walk must not.
  EXPECT_TRUE(leaf->info().modified());
  EXPECT_TRUE(root->info().modified());
}

TEST(GraphCheck, FindingsAreCappedWithSuppressedCount) {
  core::Heap heap;
  Leaf* shared = heap.make<Leaf>();
  std::vector<core::Checkpointable*> roots;
  Inner* first = heap.make<Inner>();
  first->set_left(shared);
  roots.push_back(first);
  for (int i = 0; i < 4; ++i) {
    Inner* parent = heap.make<Inner>();
    parent->set_left(shared);
    roots.push_back(parent);
  }
  verify::GraphCheckOptions options;
  options.max_findings = 2;
  auto report = verify::check_graph(roots, options);
  EXPECT_EQ(report.findings.size(), 2u) << report.to_string();
  EXPECT_NE(report.summary.find("suppressed"), std::string::npos)
      << report.summary;
}

}  // namespace
}  // namespace ickpt::testing
