// Randomized stable-storage properties:
//   * prefix property: for ANY byte-truncation of ANY log, scan returns a
//     prefix of the untruncated scan's frames (never a wrong frame, never a
//     later frame without its predecessors);
//   * corruption property: flipping ANY single byte never yields a frame
//     sequence that disagrees with the original on the frames it keeps;
//   * AsyncLog sticky-error property: a failing append surfaces on drain.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/error.hpp"
#include "core/async_log.hpp"
#include "io/file_io.hpp"
#include "io/stable_storage.hpp"

namespace ickpt::io {
namespace {

std::vector<std::uint8_t> random_log(std::mt19937_64& rng, int frames,
                                     std::vector<std::vector<std::uint8_t>>&
                                         payloads_out) {
  std::string path = ::testing::TempDir() + "/ickpt_fuzzlog_" +
                     std::to_string(rng()) + ".log";
  std::remove(path.c_str());
  {
    StableStorage storage(path);
    for (int i = 0; i < frames; ++i) {
      std::vector<std::uint8_t> payload(rng() % 200);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
      storage.append(payload);
      payloads_out.push_back(std::move(payload));
    }
  }
  auto bytes = read_file(path);
  std::remove(path.c_str());
  return bytes;
}

class StorageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageFuzz, TruncationYieldsPrefix) {
  std::mt19937_64 rng(GetParam() * 7 + 1);
  std::vector<std::vector<std::uint8_t>> payloads;
  auto bytes = random_log(rng, 2 + static_cast<int>(rng() % 6), payloads);

  // Frame boundaries: a cut exactly at one yields a clean, shorter log —
  // indistinguishable by design from a log that simply has fewer frames.
  std::vector<std::size_t> boundaries{0};
  for (const auto& payload : payloads)
    boundaries.push_back(boundaries.back() + 20 + payload.size());

  for (int trial = 0; trial < 32; ++trial) {
    std::size_t cut = rng() % (bytes.size() + 1);
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(cut));
    ScanResult scan = StableStorage::scan_bytes(truncated);
    ASSERT_LE(scan.frames.size(), payloads.size());
    for (std::size_t i = 0; i < scan.frames.size(); ++i) {
      EXPECT_EQ(scan.frames[i].seq, i);
      EXPECT_EQ(scan.frames[i].payload, payloads[i]) << "cut=" << cut;
    }
    const bool on_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    EXPECT_EQ(scan.clean, on_boundary) << "cut=" << cut;
  }
}

TEST_P(StorageFuzz, SingleByteFlipNeverForgesFrames) {
  std::mt19937_64 rng(GetParam() * 13 + 5);
  std::vector<std::vector<std::uint8_t>> payloads;
  auto bytes = random_log(rng, 3, payloads);

  for (int trial = 0; trial < 64; ++trial) {
    auto corrupted = bytes;
    std::size_t pos = rng() % corrupted.size();
    corrupted[pos] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    ScanResult scan = StableStorage::scan_bytes(corrupted);
    // Whatever survives must be a prefix of the true frames, except that a
    // flip inside payload bytes is caught by the CRC, and a flip in a
    // header is caught by magic/CRC/length checks.
    ASSERT_LE(scan.frames.size(), payloads.size());
    for (std::size_t i = 0; i < scan.frames.size(); ++i)
      EXPECT_EQ(scan.frames[i].payload, payloads[i]) << "pos=" << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFuzz,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(AsyncLogErrors, FailedAppendSurfacesOnDrain) {
  std::string path = ::testing::TempDir() + "/ickpt_async_err.log";
  std::remove(path.c_str());
  StableStorage storage(path);
  core::AsyncLog log(storage);
  // Oversized payload: the worker's append throws; the error must be
  // sticky, surface on drain, and carry the seq of the lost frame.
  log.submit(std::vector<std::uint8_t>((1u << 30) + 1));
  try {
    log.drain();
    FAIL() << "drain() must rethrow the background append failure";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("seq 0"), std::string::npos)
        << e.what();
  }
  // A lost append would leave a hole in the frame/epoch correspondence, so
  // the log is poisoned: further submits rethrow instead of writing frames
  // under the wrong sequence numbers.
  EXPECT_TRUE(log.poisoned());
  EXPECT_THROW(log.submit(std::vector<std::uint8_t>(16, 0x42)), IoError);
  auto scan = StableStorage::scan(path);
  EXPECT_TRUE(scan.frames.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ickpt::io
