// Capture profiler: stage attribution across every layer that can feed it.
//
// The invariant under test everywhere: the mark-based attribution makes the
// per-stage times sum to the busy time (the root-walk stage is the
// residual), so `stage_total_ns()` lands within 10% of `busy_ns` for the
// serial walker, the sharded driver, the plan executor, and the full
// manager pipeline — and a profiled capture emits byte-identical output to
// an unprofiled one (the profiler observes, never steers). The
// handle-lifetime regression tests pin the rebind_metrics() contract: obs
// handles bind at construction, a registry installed later sees nothing
// until rebind.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "core/parallel_checkpoint.hpp"
#include "io/byte_sink.hpp"
#include "io/data_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "tests/synth_helpers.hpp"

namespace ickpt::testing {
namespace {

using obs::CaptureProfile;
using P = CaptureProfile;

/// |sum(stages) - busy| <= 10% busy — the acceptance tolerance; in practice
/// the residual construction keeps it near exact.
void expect_stages_cover_busy(const CaptureProfile& p, const char* what) {
  ASSERT_GT(p.busy_ns, 0u) << what;
  const auto sum = static_cast<double>(p.stage_total_ns());
  const auto busy = static_cast<double>(p.busy_ns);
  EXPECT_NEAR(sum / busy, 1.0, 0.10)
      << what << ": stages " << p.stage_total_ns() << "ns vs busy "
      << p.busy_ns << "ns";
}

synth::SynthConfig small_config() {
  synth::SynthConfig config;
  config.num_structures = 64;
  config.percent_modified = 50;
  return config;
}

TEST(CaptureProfileTest, SerialWalkerAttributesEveryStage) {
  core::Heap heap;
  synth::SynthWorkload workload(heap, small_config());

  CaptureProfile prof;
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = core::Mode::kIncremental;
    opts.profile = &prof;
    core::Checkpoint::run(writer, 0, workload.root_bases(), opts);
    writer.flush();
  }

  expect_stages_cover_busy(prof, "serial incremental");
  EXPECT_GT(prof.stage_ns[P::kDirtyTest], 0u);
  EXPECT_GT(prof.stage_ns[P::kSerialize], 0u);
  EXPECT_GT(prof.objects, 0u);
  EXPECT_GT(prof.records, 0u);
  EXPECT_GT(prof.cpu_ns, 0u);
  EXPECT_EQ(prof.epochs, 1u);
  // No sharded machinery engaged on the serial path: one walk, no merge,
  // no claim arbitration.
  EXPECT_EQ(prof.stage_ns[P::kMerge], 0u);
  EXPECT_EQ(prof.stage_ns[P::kClaim], 0u);
  EXPECT_EQ(prof.shards, 1u);
}

TEST(CaptureProfileTest, ProfiledCaptureIsByteIdenticalToUnprofiled) {
  core::Heap heap;
  synth::SynthWorkload workload(heap, small_config());
  auto flags = workload.save_flags();

  std::vector<std::uint8_t> plain = generic_bytes(workload, 0);
  workload.restore_flags(flags);

  CaptureProfile prof;
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = core::Mode::kIncremental;
    opts.profile = &prof;
    core::Checkpoint::run(writer, 0, workload.root_bases(), opts);
    writer.flush();
  }
  EXPECT_EQ(sink.take(), plain);
  EXPECT_GT(prof.busy_ns, 0u);

  // Same property for the sharded driver against its own unprofiled run.
  workload.restore_flags(flags);
  io::VectorSink par_plain;
  {
    io::DataWriter writer(par_plain);
    core::ParallelOptions opts;
    opts.mode = core::Mode::kIncremental;
    opts.threads = 3;
    core::ParallelCheckpoint::run(writer, 0, workload.root_bases(), opts);
    writer.flush();
  }
  workload.restore_flags(flags);
  CaptureProfile par_prof;
  io::VectorSink par_sink;
  {
    io::DataWriter writer(par_sink);
    core::ParallelOptions opts;
    opts.mode = core::Mode::kIncremental;
    opts.threads = 3;
    opts.profile = &par_prof;
    core::ParallelCheckpoint::run(writer, 0, workload.root_bases(), opts);
    writer.flush();
  }
  EXPECT_EQ(par_sink.take(), par_plain.take());
  EXPECT_GT(par_prof.busy_ns, 0u);
}

TEST(CaptureProfileTest, ShardedCaptureFoldsShardProfilesAndMerge) {
  core::Heap heap;
  synth::SynthConfig config = small_config();
  config.num_structures = 256;
  synth::SynthWorkload workload(heap, config);

  CaptureProfile prof;
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    core::ParallelOptions opts;
    opts.mode = core::Mode::kFull;
    opts.threads = 4;
    opts.profile = &prof;
    core::ParallelCheckpoint::run(writer, 0, workload.root_bases(), opts);
    writer.flush();
  }

  expect_stages_cover_busy(prof, "sharded full");
  EXPECT_GT(prof.shards, 1u) << "shard profiles were folded in";
  EXPECT_GT(prof.stage_ns[P::kMerge], 0u);
  // Shard-private sinks held the full stream body between them.
  EXPECT_GT(prof.shard_sink_bytes, 0u);
  EXPECT_LE(prof.shard_sink_bytes, sink.size());
  EXPECT_GT(prof.objects, 0u);
  EXPECT_EQ(prof.epochs, 1u);
}

TEST(CaptureProfileTest, CycleGuardAccountsClaimArbitration) {
  core::Heap heap;
  synth::SynthConfig config = small_config();
  config.num_structures = 256;
  synth::SynthWorkload workload(heap, config);

  CaptureProfile prof;
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    core::ParallelOptions opts;
    opts.mode = core::Mode::kFull;
    opts.threads = 4;
    opts.cycle_guard = true;
    opts.profile = &prof;
    core::ParallelCheckpoint::run(writer, 0, workload.root_bases(), opts);
    writer.flush();
  }

  expect_stages_cover_busy(prof, "sharded cycle-guard");
  EXPECT_GT(prof.claim_attempts, 0u);
  // Synth structures are disjoint trees: every claim is won.
  EXPECT_EQ(prof.claims_lost, 0u);
  EXPECT_GT(prof.visited_probes, 0u);
}

TEST(CaptureProfileTest, PlanExecutorAttributesSerializeAndCounts) {
  core::Heap heap;
  synth::SynthConfig config = small_config();
  synth::SynthWorkload workload(heap, config);
  synth::SynthShapes shapes = synth::SynthShapes::make();
  spec::Plan plan =
      compile_synth_plan(shapes, config, synth::SpecLevel::kStructure);
  spec::PlanExecutor exec(plan);
  // The plan resets modified flags as it serializes; snapshot them so the
  // sharded run below sees the identical dirty state.
  auto flags = workload.save_flags();

  CaptureProfile prof;
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    spec::run_plan_checkpoint(writer, 0, workload.root_ptrs(), exec,
                              core::Mode::kIncremental, &prof);
    writer.flush();
  }
  expect_stages_cover_busy(prof, "plan serial");
  EXPECT_GT(prof.stage_ns[P::kSerialize], 0u);
  EXPECT_GT(prof.plan_tests, 0u);
  EXPECT_GT(prof.objects, 0u);
  EXPECT_EQ(prof.epochs, 1u);

  // The sharded plan driver folds shard profiles plus the merge stage.
  workload.restore_flags(flags);
  CaptureProfile par;
  io::VectorSink par_sink;
  {
    io::DataWriter writer(par_sink);
    spec::run_plan_checkpoint_parallel(writer, 0, workload.root_ptrs(), exec,
                                       /*threads=*/4,
                                       core::Mode::kIncremental, &par);
    writer.flush();
  }
  expect_stages_cover_busy(par, "plan sharded");
  EXPECT_GT(par.shards, 1u);
  EXPECT_GT(par.stage_ns[P::kMerge], 0u);
  EXPECT_GT(par.shard_sink_bytes, 0u);
  EXPECT_EQ(par_sink.take(), sink.take())
      << "profiled sharded plan output stays byte-identical to serial";
}

class ManagerProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ickpt_profile_mgr_test.log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(ManagerProfileTest, SyncTakeAttributesWriteAndFsync) {
  core::Heap heap;
  synth::SynthWorkload workload(heap, small_config());
  core::ManagerOptions mopts;
  mopts.profile = true;
  mopts.durable = true;  // fsync per append, so the kFsync stage engages
  core::CheckpointManager manager(path_, mopts);

  manager.take(workload.root_bases());
  const CaptureProfile& prof = manager.last_capture_profile();
  expect_stages_cover_busy(prof, "manager sync durable");
  EXPECT_GT(prof.stage_ns[P::kSerialize], 0u);
  EXPECT_GT(prof.stage_ns[P::kWrite], 0u);
#ifdef __unix__
  EXPECT_GT(prof.stage_ns[P::kFsync], 0u);
#endif
  EXPECT_EQ(prof.epochs, 1u);

  // Each take resets the accumulator: the next profile is one epoch's, not
  // a running total.
  workload.mutate();
  manager.take(workload.root_bases());
  EXPECT_EQ(manager.last_capture_profile().epochs, 1u);
}

TEST_F(ManagerProfileTest, AsyncWriteSlicesLandAtFlush) {
  core::Heap heap;
  synth::SynthWorkload workload(heap, small_config());
  core::ManagerOptions mopts;
  mopts.profile = true;
  mopts.async_io = true;
  core::CheckpointManager manager(path_, mopts);

  manager.take(workload.root_bases());
  // The background append may still be in flight at take() return; after
  // flush() the worker's write attribution has been merged in.
  manager.flush();
  const CaptureProfile& prof = manager.last_capture_profile();
  EXPECT_GT(prof.stage_ns[P::kWrite], 0u);
  expect_stages_cover_busy(prof, "manager async after flush");
}

TEST_F(ManagerProfileTest, ProfiledTakePublishesStageHistograms) {
  obs::Registry registry;
  obs::Registry::install(&registry);
  {
    core::Heap heap;
    synth::SynthWorkload workload(heap, small_config());
    core::ManagerOptions mopts;
    mopts.profile = true;
    core::CheckpointManager manager(path_, mopts);
    manager.take(workload.root_bases());
  }
  obs::Snapshot snap = registry.snapshot();
  obs::Registry::install(nullptr);

  const obs::MetricSnapshot* serialize = snap.find(
      "ickpt_capture_stage_seconds", {{"stage", "serialize"}});
  ASSERT_NE(serialize, nullptr);
  EXPECT_GT(serialize->count, 0u);
  const obs::MetricSnapshot* walk = snap.find(
      "ickpt_capture_stage_seconds", {{"stage", "root_walk"}});
  ASSERT_NE(walk, nullptr);
  EXPECT_GT(walk->count, 0u);
}

TEST_F(ManagerProfileTest, ProfileOffLeavesLastProfileUntouched) {
  core::Heap heap;
  synth::SynthWorkload workload(heap, small_config());
  core::CheckpointManager manager(path_, {});
  manager.take(workload.root_bases());
  const CaptureProfile& prof = manager.last_capture_profile();
  EXPECT_EQ(prof.busy_ns, 0u);
  EXPECT_EQ(prof.stage_total_ns(), 0u);
  EXPECT_EQ(prof.epochs, 0u);
}

// --- the handle-lifetime footgun (rebind_metrics) --------------------------

TEST_F(ManagerProfileTest, LateRegistrySeesNothingUntilRebind) {
  // The footgun: hot components bind their metric handles at construction.
  // A registry installed afterwards silently observes nothing — rebind is
  // the explicit, fail-loud fix.
  ASSERT_EQ(obs::Registry::installed(), nullptr);
  core::Heap heap;
  synth::SynthWorkload workload(heap, small_config());
  core::ManagerOptions mopts;
  mopts.async_io = true;
  core::CheckpointManager manager(path_, mopts);

  obs::Registry late;
  obs::Registry::install(&late);
  manager.take(workload.root_bases());
  manager.flush();
  // Construction-bound handles were null when the manager was built.
  EXPECT_EQ(late.snapshot().counter_sum("ickpt_storage_appends_total"), 0u);
  EXPECT_EQ(late.snapshot().counter_sum("ickpt_async_appends_total"), 0u);

  manager.rebind_metrics();
  workload.mutate();
  manager.take(workload.root_bases());
  manager.flush();
  obs::Snapshot snap = late.snapshot();
  obs::Registry::install(nullptr);
  EXPECT_GT(snap.counter_sum("ickpt_storage_appends_total"), 0u);
  EXPECT_GT(snap.counter_sum("ickpt_storage_bytes_written_total"), 0u);
  EXPECT_GT(snap.counter_sum("ickpt_async_appends_total"), 0u);
}

TEST(PlanExecutorRebindTest, LateRegistrySeesNothingUntilRebind) {
  ASSERT_EQ(obs::Registry::installed(), nullptr);
  core::Heap heap;
  synth::SynthConfig config;
  config.num_structures = 8;
  synth::SynthWorkload workload(heap, config);
  synth::SynthShapes shapes = synth::SynthShapes::make();
  spec::Plan plan =
      compile_synth_plan(shapes, config, synth::SpecLevel::kStructure);
  spec::PlanExecutor exec(plan);

  obs::Registry late;
  obs::Registry::install(&late);
  {
    io::VectorSink sink;
    io::DataWriter writer(sink);
    spec::run_plan_checkpoint(writer, 0, workload.root_ptrs(), exec);
    writer.flush();
  }
  EXPECT_EQ(late.snapshot().counter_sum("ickpt_plan_runs_total"), 0u);

  exec.rebind_metrics();
  {
    io::VectorSink sink;
    io::DataWriter writer(sink);
    spec::run_plan_checkpoint(writer, 1, workload.root_ptrs(), exec);
    writer.flush();
  }
  obs::Snapshot snap = late.snapshot();
  obs::Registry::install(nullptr);
  EXPECT_GT(snap.counter_sum("ickpt_plan_runs_total"), 0u);
  EXPECT_GT(snap.counter_sum("ickpt_plan_tests_performed_total"), 0u);
}

TEST(CaptureProfileTest, RenderAndJsonCarryTheAttribution) {
  CaptureProfile p;
  p.stage_ns[P::kRootWalk] = 1000;
  p.stage_ns[P::kSerialize] = 3000;
  p.busy_ns = 4000;
  p.objects = 42;
  const std::string text = p.render();
  EXPECT_NE(text.find("root_walk"), std::string::npos);
  EXPECT_NE(text.find("serialize"), std::string::npos);
  const std::string json = p.to_json();
  EXPECT_NE(json.find("\"busy_ns\""), std::string::npos);
  EXPECT_NE(json.find("root_walk"), std::string::npos);

  CaptureProfile q;
  q.stage_ns[P::kRootWalk] = 500;
  q.busy_ns = 500;
  q.objects = 8;
  q.epochs = 1;
  p.add(q);
  EXPECT_EQ(p.stage_ns[P::kRootWalk], 1500u);
  EXPECT_EQ(p.busy_ns, 4500u);
  EXPECT_EQ(p.objects, 50u);
  p.reset();
  EXPECT_EQ(p.stage_total_ns(), 0u);
  EXPECT_EQ(p.objects, 0u);
}

}  // namespace
}  // namespace ickpt::testing
