// Pattern-inference tests: observed modification behaviour must yield
// patterns that are sound (byte-identical plans) and as tight as the
// observations justify.
#include <gtest/gtest.h>

#include "spec/inference.hpp"
#include "tests/synth_helpers.hpp"

namespace ickpt::testing {
namespace {

using spec::InferOptions;
using spec::ModStatus;
using spec::PatternInferencer;
using spec::PatternNode;
using spec::Plan;
using spec::PlanCompiler;
using spec::PlanExecutor;
using synth::SynthConfig;
using synth::SynthShapes;
using synth::SynthWorkload;

SynthConfig config_for(int mod_lists, bool last_only) {
  SynthConfig config;
  config.num_structures = 48;
  config.list_length = 5;
  config.values_per_elem = 10;
  config.modified_lists = mod_lists;
  config.last_element_only = last_only;
  config.percent_modified = 60;
  config.seed = 99;
  return config;
}

/// Observe `epochs` mutation rounds of the workload.
PatternNode observe_epochs(SynthWorkload& workload,
                           const SynthShapes& shapes, int epochs,
                           const InferOptions& opts = {}) {
  PatternInferencer inferencer(*shapes.compound);
  for (int e = 0; e < epochs; ++e) {
    workload.reset_flags();
    workload.mutate();
    for (const void* root : workload.root_ptrs()) inferencer.observe(root);
  }
  return inferencer.infer(opts);
}

TEST(Inference, SkipsNeverModifiedLists) {
  core::Heap heap;
  SynthWorkload workload(heap, config_for(2, false));
  SynthShapes shapes = SynthShapes::make();
  PatternNode pattern = observe_epochs(workload, shapes, 4);
  ASSERT_EQ(pattern.children.size(), 5u);
  // Lists 0 and 1 may be modified; 2..4 never were.
  EXPECT_FALSE(pattern.children[0].skip);
  EXPECT_FALSE(pattern.children[1].skip);
  EXPECT_TRUE(pattern.children[2].skip);
  EXPECT_TRUE(pattern.children[3].skip);
  EXPECT_TRUE(pattern.children[4].skip);
  // The compound skeleton itself was never dirtied.
  EXPECT_TRUE(pattern.self == ModStatus::kUnmodified || pattern.skip);
}

TEST(Inference, LastOnlyWorkloadDropsInteriorTests) {
  core::Heap heap;
  SynthWorkload workload(heap, config_for(3, true));
  SynthShapes shapes = SynthShapes::make();
  PatternNode pattern = observe_epochs(workload, shapes, 6);
  // Walk list 0's chain: interior elements observed clean, tail tested.
  const PatternNode* node = &pattern.children[0];
  for (int depth = 0; depth < 4; ++depth) {
    EXPECT_EQ(node->self, ModStatus::kUnmodified) << "depth " << depth;
    ASSERT_EQ(node->children.size(), 1u);
    node = &node->children[0];
  }
  EXPECT_EQ(node->self, ModStatus::kMaybeModified);
}

TEST(Inference, AssertsAbsentBeyondListEnd) {
  core::Heap heap;
  SynthWorkload workload(heap, config_for(5, false));
  SynthShapes shapes = SynthShapes::make();
  PatternNode pattern = observe_epochs(workload, shapes, 2);
  const PatternNode* node = &pattern.children[0];
  for (int depth = 0; depth < 4; ++depth) node = &node->children[0];
  ASSERT_EQ(node->children.size(), 1u);
  EXPECT_TRUE(node->children[0].expect_absent);
}

TEST(Inference, InferredPlanMatchesGenericBytes) {
  core::Heap heap;
  SynthConfig config = config_for(2, true);
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  PatternNode pattern = observe_epochs(workload, shapes, 5);

  // A fresh epoch with the same constraints: the inferred pattern holds.
  workload.reset_flags();
  workload.mutate();
  auto flags = workload.save_flags();
  auto generic = generic_bytes(workload, 10);
  workload.restore_flags(flags);
  Plan plan = PlanCompiler().compile(*shapes.compound, pattern);
  PlanExecutor exec(plan);
  EXPECT_EQ(plan_bytes(workload, exec, 10), generic);
}

TEST(Inference, MarkAlwaysModifiedUpgradesStatus) {
  core::Heap heap;
  SynthConfig config = config_for(1, true);
  config.percent_modified = 100;  // the tail of list 0 is dirty every epoch
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  InferOptions opts;
  opts.mark_always_modified = true;
  PatternNode pattern = observe_epochs(workload, shapes, 3, opts);
  const PatternNode* node = &pattern.children[0];
  for (int depth = 0; depth < 4; ++depth) node = &node->children[0];
  EXPECT_EQ(node->self, ModStatus::kModified);
}

TEST(Inference, NoObservationsThrows) {
  SynthShapes shapes = SynthShapes::make();
  PatternInferencer inferencer(*shapes.compound);
  EXPECT_THROW(inferencer.infer(), SpecError);
}

TEST(Inference, NullRootRejected) {
  SynthShapes shapes = SynthShapes::make();
  PatternInferencer inferencer(*shapes.compound);
  EXPECT_THROW(inferencer.observe(nullptr), SpecError);
}

TEST(Inference, ObservationCountTracks) {
  core::Heap heap;
  SynthConfig config = config_for(1, false);
  config.num_structures = 3;
  SynthWorkload workload(heap, config);
  SynthShapes shapes = SynthShapes::make();
  PatternInferencer inferencer(*shapes.compound);
  for (const void* root : workload.root_ptrs()) inferencer.observe(root);
  EXPECT_EQ(inferencer.observations(), 3u);
}

}  // namespace
}  // namespace ickpt::testing
