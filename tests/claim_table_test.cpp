// Unit tests for the lock-free ClaimTable: the exactly-once contract under
// both sequential and racing claimers, overflow-segment chaining when the
// capacity estimate is wrong, and the round_up_pow2 boundary clamp (the
// regression for the `p <<= 1` shift-out-to-zero infinite loop).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "core/claim_table.hpp"

namespace ickpt::core {
namespace {

TEST(ClaimTable, RoundUpPow2Boundaries) {
  EXPECT_EQ(ClaimTable::round_up_pow2(0), 1u);
  EXPECT_EQ(ClaimTable::round_up_pow2(1), 1u);
  EXPECT_EQ(ClaimTable::round_up_pow2(2), 2u);
  EXPECT_EQ(ClaimTable::round_up_pow2(3), 4u);
  EXPECT_EQ(ClaimTable::round_up_pow2(5), 8u);
  EXPECT_EQ(ClaimTable::round_up_pow2(1024), 1024u);
  EXPECT_EQ(ClaimTable::round_up_pow2(1025), 2048u);

  // The regression: any n above the largest representable power of two used
  // to make `p <<= 1` wrap to 0 and spin forever. The clamp returns the top
  // power instead.
  constexpr std::size_t kTop = (SIZE_MAX >> 1) + 1;
  EXPECT_EQ(ClaimTable::round_up_pow2(kTop - 1), kTop);
  EXPECT_EQ(ClaimTable::round_up_pow2(kTop), kTop);
  EXPECT_EQ(ClaimTable::round_up_pow2(kTop + 1), kTop);
  EXPECT_EQ(ClaimTable::round_up_pow2(SIZE_MAX), kTop);
}

TEST(ClaimTable, SequentialClaimsAreExactlyOnce) {
  ClaimTable table(64);
  for (ObjectId id = 1; id <= 100; ++id) {
    EXPECT_TRUE(table.claim(id)) << "first claim of id " << id;
    EXPECT_FALSE(table.claim(id)) << "second claim of id " << id;
  }
  EXPECT_EQ(table.size(), 100u);
  std::vector<ObjectId> ids = table.ids();
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 100u);
  for (ObjectId id = 1; id <= 100; ++id) EXPECT_EQ(ids[id - 1], id);
}

TEST(ClaimTable, UnderestimatedCapacitySpillsToOverflowSegments) {
  // expected_ids=1 sizes the head at the 64-slot minimum; 5000 distinct ids
  // must overflow into chained segments and still claim exactly once.
  ClaimTable table(1);
  constexpr ObjectId kCount = 5000;
  for (ObjectId id = 1; id <= kCount; ++id)
    ASSERT_TRUE(table.claim(id)) << "id " << id;
  EXPECT_GT(table.segments(), 1u);
  EXPECT_EQ(table.size(), kCount);
  for (ObjectId id = 1; id <= kCount; ++id)
    EXPECT_FALSE(table.claim(id)) << "re-claim of id " << id;
}

TEST(ClaimTable, RacingThreadsWinEachIdExactlyOnce) {
  // Every thread claims the full id set in its own shuffled order, so every
  // id is contended by all threads; total wins must equal the id count and
  // each id must be won exactly once. Undersized on purpose so the race also
  // covers overflow-segment installation.
  constexpr std::size_t kThreads = 4;
  constexpr ObjectId kIds = 2000;
  ClaimTable table(128);
  std::atomic<std::uint64_t> total_wins{0};
  std::vector<std::atomic<int>> wins_per_id(kIds + 1);
  for (auto& w : wins_per_id) w.store(0, std::memory_order_relaxed);
  std::vector<std::uint64_t> retries(kThreads, 0);

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      std::vector<ObjectId> order(kIds);
      for (ObjectId id = 1; id <= kIds; ++id) order[id - 1] = id;
      std::mt19937_64 rng(20260809 + t);
      std::shuffle(order.begin(), order.end(), rng);
      std::uint64_t wins = 0;
      for (ObjectId id : order) {
        // Alternate the plain and profiled entry points; both must keep the
        // exactly-once contract.
        const bool won = (t % 2 == 0) ? table.claim(id)
                                      : table.claim(id, &retries[t]);
        if (won) {
          ++wins;
          wins_per_id[id].fetch_add(1, std::memory_order_relaxed);
        }
      }
      total_wins.fetch_add(wins, std::memory_order_relaxed);
    });
  }
  for (auto& t : pool) t.join();

  EXPECT_EQ(total_wins.load(), kIds);
  for (ObjectId id = 1; id <= kIds; ++id)
    EXPECT_EQ(wins_per_id[id].load(), 1) << "id " << id;
  EXPECT_EQ(table.size(), kIds);
  // cas_retries only counts genuine CAS losses; on a single-core box the
  // race may never materialize, so assert nothing beyond "did not corrupt".
  for (std::uint64_t r : retries) EXPECT_LE(r, static_cast<std::uint64_t>(kIds) * ClaimTable::kProbeWindow);
}

}  // namespace
}  // namespace ickpt::core
