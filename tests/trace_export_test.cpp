// Exporter-format tests: the Chrome trace_event JSON and the stats JSON
// exposition are parsed with an independent JSON parser (tests/json_lite.hpp)
// instead of substring checks, so a malformed document cannot pass. Covers
// the satellite guarantees: concurrent spans from multiple threads export
// with correct per-thread begin/end pairing and nesting, ring drops surface
// as ickpt_trace_dropped_total, and histogram JSON carries interpolated
// p50/p95/p99.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tests/json_lite.hpp"

namespace ickpt::testing {
namespace {

using obs::Span;
using obs::TraceCollector;
using obs::TraceEvent;

/// Busy-wait so a span/gap is orders of magnitude longer than the
/// exporter's 0.001us timestamp rounding — strict containment checks then
/// cannot be tipped by rounding.
void spin_ns(std::uint64_t ns) {
  const std::uint64_t until = obs::trace_now_ns() + ns;
  while (obs::trace_now_ns() < until) {
  }
}

struct ExportedSpan {
  std::string name;
  double ts_us = 0;
  double dur_us = 0;
};

/// Parse a Chrome trace document and return the complete ('X') spans per
/// exported tid, sorted by start time.
std::map<int, std::vector<ExportedSpan>> spans_by_tid(
    const std::string& json) {
  testjson::ValuePtr doc = testjson::parse(json);
  EXPECT_TRUE(doc->is_object());
  const testjson::Value& events = doc->at("traceEvents");
  EXPECT_TRUE(events.is_array());
  std::map<int, std::vector<ExportedSpan>> out;
  for (const testjson::ValuePtr& ev : events.array) {
    EXPECT_TRUE(ev->is_object());
    // Every event, span or instant, carries the required Chrome fields.
    (void)ev->at("name").str();
    (void)ev->at("cat").str();
    (void)ev->at("pid").num();
    (void)ev->at("ts").num();
    if (ev->at("ph").str() != "X") continue;
    ExportedSpan s;
    s.name = ev->at("name").str();
    s.ts_us = ev->at("ts").num();
    s.dur_us = ev->at("dur").num();
    out[static_cast<int>(ev->at("tid").num())].push_back(s);
  }
  for (auto& [tid, spans] : out)
    std::sort(spans.begin(), spans.end(),
              [](const ExportedSpan& a, const ExportedSpan& b) {
                return a.ts_us < b.ts_us;
              });
  return out;
}

TEST(TraceExportTest, ChromeJsonParsesWithRequiredFields) {
  TraceCollector collector;
  TraceCollector::install(&collector);
  {
    Span outer("outer", "test");
    outer.note("with a \"quoted\" note\nand a newline");
    Span inner("inner", "test");
  }
  obs::instant("point", "test", "instant note");
  std::vector<TraceEvent> events = collector.drain();
  TraceCollector::install(nullptr);
  ASSERT_EQ(events.size(), 3u);

  const std::string json = TraceCollector::to_chrome_json(events);
  testjson::ValuePtr doc = testjson::parse(json);  // throws on malformed
  EXPECT_EQ(doc->at("displayTimeUnit").str(), "ms");
  const testjson::Value& trace_events = doc->at("traceEvents");
  ASSERT_TRUE(trace_events.is_array());
  ASSERT_EQ(trace_events.array.size(), 3u);

  std::size_t complete = 0, instants = 0;
  for (const testjson::ValuePtr& ev : trace_events.array) {
    const std::string& ph = ev->at("ph").str();
    if (ph == "X") {
      ++complete;
      EXPECT_GE(ev->at("dur").num(), 0.0);
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(ev->at("s").str(), "t");
      EXPECT_FALSE(ev->has("dur"));
    }
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(instants, 1u);
  // The escaped note survives the round trip intact.
  bool note_found = false;
  for (const testjson::ValuePtr& ev : trace_events.array)
    if (ev->has("args") &&
        ev->at("args").at("note").str() ==
            "with a \"quoted\" note\nand a newline")
      note_found = true;
  EXPECT_TRUE(note_found);
}

TEST(TraceExportTest, ConcurrentSpansPairAndNestPerThread) {
  // Several threads each record a deterministic outer/inner span pattern.
  // After export, every thread's spans must pair begin/end correctly:
  // dur >= 0, inner spans contained in their outer span's [ts, ts+dur), and
  // spans of the same depth disjoint — regardless of interleaving across
  // threads.
  constexpr int kThreads = 4;
  constexpr int kOuterPerThread = 8;
  TraceCollector collector;
  TraceCollector::install(&collector);
  {
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      pool.emplace_back([] {
        for (int i = 0; i < kOuterPerThread; ++i) {
          {
            Span outer("outer", "test");
            {
              Span inner("inner", "test");
              spin_ns(2000);
            }
            {
              Span inner2("inner", "test");
              spin_ns(2000);
            }
          }
          spin_ns(2000);  // keep consecutive outer spans clearly apart
        }
      });
    for (std::thread& t : pool) t.join();
  }
  std::vector<TraceEvent> events = collector.drain();
  TraceCollector::install(nullptr);
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kOuterPerThread * 3);

  const std::string json = TraceCollector::to_chrome_json(events);
  std::map<int, std::vector<ExportedSpan>> by_tid = spans_by_tid(json);
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));

  for (const auto& [tid, spans] : by_tid) {
    ASSERT_EQ(spans.size(),
              static_cast<std::size_t>(kOuterPerThread) * 3)
        << "tid " << tid;
    std::vector<ExportedSpan> outers, inners;
    for (const ExportedSpan& s : spans) {
      EXPECT_GE(s.dur_us, 0.0);
      (s.name == "outer" ? outers : inners).push_back(s);
    }
    ASSERT_EQ(outers.size(), static_cast<std::size_t>(kOuterPerThread));
    ASSERT_EQ(inners.size(), static_cast<std::size_t>(kOuterPerThread) * 2);
    // Outer spans never overlap each other on one thread.
    for (std::size_t i = 1; i < outers.size(); ++i)
      EXPECT_GE(outers[i].ts_us, outers[i - 1].ts_us + outers[i - 1].dur_us)
          << "tid " << tid << " outer " << i;
    // Every inner span nests inside exactly one outer span.
    for (const ExportedSpan& in : inners) {
      int containers = 0;
      for (const ExportedSpan& out : outers)
        if (in.ts_us >= out.ts_us &&
            in.ts_us + in.dur_us <= out.ts_us + out.dur_us)
          ++containers;
      EXPECT_EQ(containers, 1)
          << "tid " << tid << " inner at " << in.ts_us << "us";
    }
  }
}

TEST(TraceExportTest, RingDropsSurfaceAsTheDropMetric) {
  // An 8-slot ring and many more spans than that: the overflow must be
  // counted both by the collector and by ickpt_trace_dropped_total, and the
  // two views must agree.
  obs::Registry registry;
  obs::Registry::install(&registry);
  TraceCollector::Options opts;
  opts.ring_capacity = 8;
  TraceCollector collector(opts);
  TraceCollector::install(&collector);
  constexpr int kSpans = 100;
  // Burst from a fresh thread: a thread's ring is sized by the collector
  // installed at its first span, and this process's main thread already has
  // a full-size ring from the earlier tests.
  std::thread burst([] {
    for (int i = 0; i < kSpans; ++i) {
      Span span("burst", "test");
    }
  });
  burst.join();
  const std::uint64_t dropped = collector.dropped();
  std::vector<TraceEvent> events = collector.drain();
  TraceCollector::install(nullptr);
  obs::Snapshot snap = registry.snapshot();
  obs::Registry::install(nullptr);

  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(dropped, static_cast<std::uint64_t>(kSpans) - 8u);
  EXPECT_EQ(snap.counter_sum("ickpt_trace_dropped_total"), dropped);
  const obs::MetricSnapshot* overwritten = snap.find(
      "ickpt_trace_dropped_total", {{"reason", "overwritten"}});
  ASSERT_NE(overwritten, nullptr);
  EXPECT_EQ(overwritten->counter_value, dropped);
}

TEST(StatsJsonTest, HistogramJsonCarriesInterpolatedPercentiles) {
  obs::Registry registry;
  obs::Histogram hist = registry.histogram(
      "test_latency_seconds", {{"op", "append"}},
      obs::Histogram::exponential_bounds(1e-6, 2.0, 24));
  // A skewed distribution: most observations fast, a slow tail.
  for (int i = 0; i < 90; ++i) hist.observe(1e-4);
  for (int i = 0; i < 9; ++i) hist.observe(1e-3);
  hist.observe(1e-1);

  const std::string json = registry.snapshot().to_json();
  testjson::ValuePtr doc = testjson::parse(json);
  ASSERT_TRUE(doc->is_array());
  const testjson::Value* metric = nullptr;
  for (const testjson::ValuePtr& m : doc->array)
    if (m->at("name").str() == "test_latency_seconds") metric = m.get();
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->at("type").str(), "histogram");
  EXPECT_EQ(metric->at("labels").at("op").str(), "append");
  EXPECT_EQ(metric->at("count").num(), 100.0);

  const double p50 = metric->at("p50").num();
  const double p95 = metric->at("p95").num();
  const double p99 = metric->at("p99").num();
  // Interpolated estimates: ordered, and each within its bucket's decade.
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 1e-5);
  EXPECT_LT(p50, 1e-3);
  EXPECT_GT(p95, 1e-4);
  EXPECT_LT(p95, 1e-2);
  // The bucket array is parseable and its counts sum to the observations.
  const testjson::Value& buckets = metric->at("buckets");
  ASSERT_TRUE(buckets.is_array());
  double total = 0;
  for (const testjson::ValuePtr& b : buckets.array) total += b->at("n").num();
  EXPECT_EQ(total, 100.0);
}

}  // namespace
}  // namespace ickpt::testing
