// Checkpointable classes used only by the test suite: a scalar-rich leaf, a
// two-child inner node, and a string-carrying node (exercising variable-
// length records, which the spec subsystem deliberately does not cover).
#pragma once

#include <string>

#include "core/checkpoint.hpp"
#include "core/checkpointable.hpp"
#include "core/recovery.hpp"
#include "core/type_registry.hpp"

namespace ickpt::testing {

class Leaf final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 901;
  static constexpr const char* kTypeName = "test.Leaf";

  Leaf() = default;
  Leaf(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  std::int32_t i32 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  bool flag = false;

  void set_i32(std::int32_t v) {
    i32 = v;
    info_.set_modified();
  }
  void set_i64(std::int64_t v) {
    i64 = v;
    info_.set_modified();
  }
  void set_f64(double v) {
    f64 = v;
    info_.set_modified();
  }
  void set_flag(bool v) {
    flag = v;
    info_.set_modified();
  }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    d.write_i32(i32);
    d.write_i64(i64);
    d.write_f64(f64);
    d.write_bool(flag);
  }

  void fold(core::Checkpoint&) override {}

  void restore_record(io::DataReader& d, core::Recovery&) override {
    i32 = d.read_i32();
    i64 = d.read_i64();
    f64 = d.read_f64();
    flag = d.read_bool();
  }

  bool state_equals(const Leaf& other) const {
    return i32 == other.i32 && i64 == other.i64 && f64 == other.f64 &&
           flag == other.flag;
  }
};

class Inner final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 902;
  static constexpr const char* kTypeName = "test.Inner";

  Inner() = default;
  Inner(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  std::int32_t tag = 0;
  Leaf* left = nullptr;
  Inner* right = nullptr;

  void set_tag(std::int32_t v) {
    tag = v;
    info_.set_modified();
  }
  void set_left(Leaf* v) {
    left = v;
    info_.set_modified();
  }
  void set_right(Inner* v) {
    right = v;
    info_.set_modified();
  }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override {
    d.write_i32(tag);
    core::write_child_id(d, left);
    core::write_child_id(d, right);
  }

  void fold(core::Checkpoint& c) override {
    if (left != nullptr) c.checkpoint(*left);
    if (right != nullptr) c.checkpoint(*right);
  }

  void restore_record(io::DataReader& d, core::Recovery& r) override {
    tag = d.read_i32();
    r.link(d, left);
    r.link(d, right);
  }
};

class Named final : public core::WithCheckpointInfo {
 public:
  static constexpr TypeId kTypeId = 903;
  static constexpr const char* kTypeName = "test.Named";

  Named() = default;
  Named(core::RestoreTag, ObjectId id) : WithCheckpointInfo(id) {}

  std::string name;

  void set_name(std::string v) {
    name = std::move(v);
    info_.set_modified();
  }

  [[nodiscard]] TypeId type_id() const noexcept override { return kTypeId; }

  void record(io::DataWriter& d) const override { d.write_string(name); }
  void fold(core::Checkpoint&) override {}
  void restore_record(io::DataReader& d, core::Recovery&) override {
    name = d.read_string();
  }
};

inline void register_test_types(core::TypeRegistry& registry) {
  registry.register_type<Leaf>();
  registry.register_type<Inner>();
  registry.register_type<Named>();
}

/// Serialize one incremental (or full) checkpoint of `roots` to bytes using
/// the generic driver.
inline std::vector<std::uint8_t> checkpoint_bytes(
    std::span<core::Checkpointable* const> roots, Epoch epoch,
    core::Mode mode) {
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    core::CheckpointOptions opts;
    opts.mode = mode;
    core::Checkpoint::run(writer, epoch, roots, opts);
    writer.flush();
  }
  return sink.take();
}

}  // namespace ickpt::testing
