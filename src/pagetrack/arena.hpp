// Page-granularity dirty tracking: the system-level incremental
// checkpointing the paper contrasts with (§1: "incremental checkpointing,
// which uses system-level facilities to identify modified virtual-memory
// pages").
//
// PageArena carves objects out of an mmap'd region; PageTracker
// write-protects the region after each checkpoint and marks pages dirty from
// a SIGSEGV handler on first write. A page-level incremental checkpoint is
// then the set of dirty pages, raw.
//
// This exists to *reproduce the paper's motivating comparison*: for
// object-oriented heaps — many small objects, hot fields scattered across
// pages — page-level checkpoints capture far more bytes than object-level
// ones (bench_pagelevel). It is deliberately not wired into Recovery: a raw
// memory image is process-specific (vtable pointers, addresses), which is
// itself one of the paper's arguments for the language-level approach.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace ickpt::pagetrack {

inline constexpr std::size_t kPageSize = 4096;

class PageArena {
 public:
  /// Reserve `bytes` (rounded up to whole pages) of private anonymous
  /// memory. Throws IoError if mmap fails.
  explicit PageArena(std::size_t bytes);
  ~PageArena();

  PageArena(const PageArena&) = delete;
  PageArena& operator=(const PageArena&) = delete;

  /// Bump-allocate `size` bytes aligned to `align`. Throws Error when full.
  void* allocate(std::size_t size, std::size_t align);

  template <class T, class... Args>
  T* make(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  [[nodiscard]] std::uint8_t* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t page_count() const noexcept {
    return capacity_ / kPageSize;
  }

  [[nodiscard]] bool contains(const void* p) const noexcept {
    const auto* b = static_cast<const std::uint8_t*>(p);
    return b >= base_ && b < base_ + capacity_;
  }

 private:
  std::uint8_t* base_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

/// SIGSEGV-based dirty-page tracker over one arena. At most a small fixed
/// number of trackers may be live at once (they share the signal handler).
class PageTracker {
 public:
  explicit PageTracker(PageArena& arena);
  ~PageTracker();

  PageTracker(const PageTracker&) = delete;
  PageTracker& operator=(const PageTracker&) = delete;

  /// Write-protect every page; subsequent first-writes mark pages dirty.
  /// Call after taking a checkpoint.
  void protect();

  /// Drop protection without recording dirt (e.g. before bulk setup).
  void unprotect();

  /// Indices of pages written since the last protect().
  [[nodiscard]] std::vector<std::size_t> dirty_pages() const;
  [[nodiscard]] std::size_t dirty_count() const;
  [[nodiscard]] std::size_t dirty_bytes() const {
    return dirty_count() * kPageSize;
  }

  /// A page-level incremental checkpoint: for each dirty page, varint page
  /// index followed by the raw 4 KiB. Returns payload size.
  std::size_t write_dirty_pages(std::vector<std::uint8_t>& out) const;

  [[nodiscard]] const PageArena& arena() const noexcept { return *arena_; }

 private:
  friend struct TrackerRegistry;
  bool handle_fault(void* addr);

  PageArena* arena_;
  std::vector<std::uint8_t> dirty_;  // one flag per page
  bool protected_ = false;
};

}  // namespace ickpt::pagetrack
