#include "pagetrack/arena.hpp"

#include <csignal>
#include <cstring>
#include <mutex>

#include <sys/mman.h>

namespace ickpt::pagetrack {

// ---------------------------------------------------------------------------
// PageArena

PageArena::PageArena(std::size_t bytes) {
  capacity_ = (bytes + kPageSize - 1) / kPageSize * kPageSize;
  if (capacity_ == 0) capacity_ = kPageSize;
  void* mem = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) throw IoError("mmap failed for page arena");
  base_ = static_cast<std::uint8_t*>(mem);
}

PageArena::~PageArena() {
  if (base_ != nullptr) ::munmap(base_, capacity_);
}

void* PageArena::allocate(std::size_t size, std::size_t align) {
  std::size_t offset = (used_ + align - 1) & ~(align - 1);
  if (offset + size > capacity_)
    throw Error("page arena exhausted (" + std::to_string(capacity_) +
                " bytes)");
  used_ = offset + size;
  return base_ + offset;
}

// ---------------------------------------------------------------------------
// Signal plumbing: a process-wide registry of live trackers. The SIGSEGV
// handler walks it; faults outside any tracked arena re-raise with the
// previous disposition so real crashes still crash.

struct TrackerRegistry {
  static constexpr int kMaxTrackers = 16;

  std::mutex mutex;
  PageTracker* trackers[kMaxTrackers] = {};
  int live = 0;
  struct sigaction previous {};
  bool installed = false;

  static TrackerRegistry& instance() {
    static TrackerRegistry registry;
    return registry;
  }

  static void handler(int signo, siginfo_t* info, void* context) {
    TrackerRegistry& registry = instance();
    // Async-signal context: no locks, no allocation. The trackers array is
    // only mutated while no protected arena can fault (add/remove protect
    // nothing), so a racy read is benign for this use.
    for (PageTracker* tracker : registry.trackers) {
      if (tracker != nullptr && tracker->handle_fault(info->si_addr)) return;
    }
    // Not ours: restore and re-raise so the default action fires.
    ::sigaction(SIGSEGV, &registry.previous, nullptr);
    (void)signo;
    (void)context;
    ::raise(SIGSEGV);
  }

  void add(PageTracker* tracker) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!installed) {
      struct sigaction action {};
      action.sa_sigaction = &handler;
      action.sa_flags = SA_SIGINFO | SA_NODEFER;
      sigemptyset(&action.sa_mask);
      if (::sigaction(SIGSEGV, &action, &previous) != 0)
        throw IoError("sigaction(SIGSEGV) failed");
      installed = true;
    }
    for (PageTracker*& slot : trackers) {
      if (slot == nullptr) {
        slot = tracker;
        ++live;
        return;
      }
    }
    throw Error("too many live PageTrackers");
  }

  void remove(PageTracker* tracker) {
    std::lock_guard<std::mutex> lock(mutex);
    for (PageTracker*& slot : trackers) {
      if (slot == tracker) {
        slot = nullptr;
        --live;
        break;
      }
    }
    if (live == 0 && installed) {
      ::sigaction(SIGSEGV, &previous, nullptr);
      installed = false;
    }
  }
};

// ---------------------------------------------------------------------------
// PageTracker

PageTracker::PageTracker(PageArena& arena)
    : arena_(&arena), dirty_(arena.page_count(), 1) {
  // All pages start dirty (everything is new), like a fresh CheckpointInfo.
  TrackerRegistry::instance().add(this);
}

PageTracker::~PageTracker() {
  if (protected_) unprotect();
  TrackerRegistry::instance().remove(this);
}

void PageTracker::protect() {
  std::fill(dirty_.begin(), dirty_.end(), 0);
  if (::mprotect(arena_->base(), arena_->capacity(), PROT_READ) != 0)
    throw IoError("mprotect(PROT_READ) failed");
  protected_ = true;
}

void PageTracker::unprotect() {
  if (::mprotect(arena_->base(), arena_->capacity(),
                 PROT_READ | PROT_WRITE) != 0)
    throw IoError("mprotect(PROT_READ|PROT_WRITE) failed");
  protected_ = false;
}

bool PageTracker::handle_fault(void* addr) {
  if (!protected_ || !arena_->contains(addr)) return false;
  const std::size_t page =
      static_cast<std::size_t>(static_cast<std::uint8_t*>(addr) -
                               arena_->base()) /
      kPageSize;
  dirty_[page] = 1;
  // Unprotect just this page: later writes to it fault no more.
  ::mprotect(arena_->base() + page * kPageSize, kPageSize,
             PROT_READ | PROT_WRITE);
  return true;
}

std::vector<std::size_t> PageTracker::dirty_pages() const {
  std::vector<std::size_t> pages;
  for (std::size_t i = 0; i < dirty_.size(); ++i)
    if (dirty_[i] != 0) pages.push_back(i);
  return pages;
}

std::size_t PageTracker::dirty_count() const {
  std::size_t n = 0;
  for (std::uint8_t flag : dirty_)
    if (flag != 0) ++n;
  return n;
}

std::size_t PageTracker::write_dirty_pages(
    std::vector<std::uint8_t>& out) const {
  const std::size_t before = out.size();
  for (std::size_t i = 0; i < dirty_.size(); ++i) {
    if (dirty_[i] == 0) continue;
    // varint page index
    std::uint64_t v = i;
    while (v >= 0x80) {
      out.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
    const std::uint8_t* page = arena_->base() + i * kPageSize;
    out.insert(out.end(), page, page + kPageSize);
  }
  return out.size() - before;
}

}  // namespace ickpt::pagetrack
