// FlightRecorder: an always-on, bounded, lock-free ring of structured epoch
// events — the post-mortem half of src/obs/.
//
// Metrics say how much and spans say when, but both are pull-based and
// process-local: when a pipeline dies at 3am, the counters die with it. The
// flight recorder keeps the last N *epoch-level* events (epoch begin/end
// with a profile summary, health transitions, faults, retries, rotations,
// rebases, poisonings, fallbacks) in a fixed ring that costs a few relaxed
// atomic stores per event, and serializes next to the checkpoint log —
// automatically on terminal kFailed, on demand via `ickptctl flightrec` —
// so the last N epochs' timeline survives the process.
//
// Concurrency: record() is lock-free and multi-producer (manager thread,
// async-log worker, capture workers). Each slot is a seqlock — version odd
// while a writer is mid-copy, bumped even when done — and the event payload
// is copied word-by-word through relaxed atomics, so a torn slot is
// *detected and skipped* by readers rather than returned, and the whole
// protocol is clean under ThreadSanitizer. Under extreme contention two
// writers a full ring apart can collide on one slot; the loser's event is
// dropped (total_recorded() still counts it), never corrupted.
//
// The ring is always on: at ~128 bytes/slot and 256 slots the whole
// recorder is one malloc and recording is far off the per-object hot path
// (events are per *epoch*, not per object), so there is no off switch to
// forget in production.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ickpt::obs {

enum class FlightEventType : std::uint8_t {
  kEpochBegin = 0,  ///< take() entered; aux = mode (0 full, 1 incremental)
  kEpochEnd,        ///< take() returned; v0 = bytes, v1 = objects recorded
  kHealthTransition,///< v0 = from, v1 = to (core::Health values)
  kFault,           ///< injected or real I/O fault; detail = kind/errno
  kRetry,           ///< append retried in place; v0 = attempt
  kRotation,        ///< log quarantined; detail = quarantine path
  kRebase,          ///< fresh generation rebased with a full; v0 = seq
  kPoison,          ///< async log poisoned; v0 = epochs lost
  kReheal,          ///< pipeline re-armed; v0 = clean epochs counted
  kFallback,        ///< spec layer dropped a plan / recovery walked a
                    ///< generation; detail says which
  kDump,            ///< recorder serialized to disk; detail = path
  kNote,            ///< free-form annotation
};

/// One fixed-size event; trivially copyable so ring slots can shuttle it
/// through word-wise atomic copies.
struct FlightEvent {
  static constexpr std::size_t kDetailCap = 88;

  std::uint64_t ts_ns = 0;  ///< trace_now_ns() at record time
  std::uint64_t epoch = 0;
  std::uint64_t v0 = 0;
  std::uint64_t v1 = 0;
  FlightEventType type = FlightEventType::kNote;
  std::uint8_t aux = 0;
  char detail[kDetailCap] = {};
};

class FlightRecorder {
 public:
  /// `capacity` (rounded up to a power of two) events are retained;
  /// older ones are overwritten.
  explicit FlightRecorder(std::size_t capacity = 256);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record one event. Lock-free, multi-producer, never blocks or throws.
  void record(FlightEventType type, std::uint64_t epoch, std::uint64_t v0 = 0,
              std::uint64_t v1 = 0, const char* detail = nullptr,
              std::uint8_t aux = 0) noexcept;
  void record(FlightEventType type, std::uint64_t epoch, std::uint64_t v0,
              std::uint64_t v1, const std::string& detail,
              std::uint8_t aux = 0) noexcept {
    record(type, epoch, v0, v1, detail.c_str(), aux);
  }

  /// Torn-safe snapshot of the retained events, oldest first. Slots a
  /// writer is mid-copy in (or overwrote during the read) are skipped.
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// Events ever recorded (retained + overwritten + collided).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return ticket_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Versioned binary image of events() (format: docs/FORMAT.md).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Parse a serialized image; throws ickpt::CorruptionError on a malformed
  /// one. `total_recorded` (optional) receives the writer's event total.
  static std::vector<FlightEvent> deserialize(
      const std::uint8_t* data, std::size_t size,
      std::uint64_t* total_recorded = nullptr);

  /// Serialize to `path` (fsynced). Throws ickpt::IoError on failure; the
  /// kFailed auto-dump wraps this so a dump failure never masks the
  /// original error.
  void dump_to_file(const std::string& path) const;
  static std::vector<FlightEvent> load_file(
      const std::string& path, std::uint64_t* total_recorded = nullptr);

  /// Where a recorder for the log at `log_path` dumps: `<log>.flightrec`.
  [[nodiscard]] static std::string default_path(const std::string& log_path) {
    return log_path + ".flightrec";
  }

  /// Human-readable timeline (relative timestamps, one event per line).
  static std::string render_timeline(const std::vector<FlightEvent>& events,
                                     std::uint64_t total_recorded = 0);

  static const char* type_name(FlightEventType type) noexcept;

 private:
  /// Seqlock slot: version is odd while a writer copies, and lands at
  /// 2*(ticket+1) once the event for `ticket` is fully in place. The
  /// payload travels through relaxed atomic words so readers and writers
  /// never race on non-atomic memory.
  static constexpr std::size_t kWords =
      (sizeof(FlightEvent) + sizeof(std::uint64_t) - 1) /
      sizeof(std::uint64_t);
  struct Slot {
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> words[kWords];
  };

  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> ticket_{0};
};

}  // namespace ickpt::obs
