#include "obs/profile.hpp"

#include <cstdio>

#include "obs/trace.hpp"

#ifdef __unix__
#include <time.h>
#endif

namespace ickpt::obs {

void CaptureProfile::add(const CaptureProfile& o) noexcept {
  for (std::size_t i = 0; i < kStageCount; ++i) stage_ns[i] += o.stage_ns[i];
  visited_probes += o.visited_probes;
  claim_attempts += o.claim_attempts;
  claims_lost += o.claims_lost;
  claim_cas_retries += o.claim_cas_retries;
  steal_attempts += o.steal_attempts;
  steal_failures += o.steal_failures;
  shard_sink_bytes += o.shard_sink_bytes;
  direct_stream_bytes += o.direct_stream_bytes;
  // High-water, not a sum: merging two captures' peaks reports the worst
  // single moment, which is what the memory bound claims.
  if (o.merge_buffered_peak_bytes > merge_buffered_peak_bytes)
    merge_buffered_peak_bytes = o.merge_buffered_peak_bytes;
  plan_tests += o.plan_tests;
  objects += o.objects;
  records += o.records;
  epochs += o.epochs;
  shards += o.shards;
  busy_ns += o.busy_ns;
  cpu_ns += o.cpu_ns;
}

std::uint64_t CaptureProfile::stage_total_ns() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kStageCount; ++i) total += stage_ns[i];
  return total;
}

const char* CaptureProfile::stage_name(Stage s) noexcept {
  switch (s) {
    case kRootWalk:
      return "root_walk";
    case kDirtyTest:
      return "dirty_test";
    case kSerialize:
      return "serialize";
    case kClaim:
      return "claim";
    case kMerge:
      return "merge";
    case kMergeWait:
      return "merge_wait";
    case kWrite:
      return "write";
    case kFsync:
      return "fsync";
    case kStageCount:
      break;
  }
  return "?";
}

namespace {

void append_kv_u64(std::string& out, const char* key, std::uint64_t v,
                   bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

std::string fmt_ns(std::uint64_t ns) {
  char buf[48];
  if (ns >= 1000000000ull)
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
  else if (ns >= 1000000ull)
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  else
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace

std::string CaptureProfile::render() const {
  const std::uint64_t total = stage_total_ns();
  std::string out;
  out += "capture profile: " + std::to_string(epochs) + " epoch(s), " +
         std::to_string(shards) + " shard walk(s), " +
         std::to_string(records) + "/" + std::to_string(objects) +
         " object(s) recorded\n";
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const double pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(stage_ns[i]) /
                         static_cast<double>(total);
    char line[128];
    std::snprintf(line, sizeof(line), "  %-10s %12s  %5.1f%%\n",
                  stage_name(static_cast<Stage>(i)),
                  fmt_ns(stage_ns[i]).c_str(), pct);
    out += line;
  }
  out += "  busy " + fmt_ns(busy_ns) + ", cpu " + fmt_ns(cpu_ns) +
         " (stage sum " + fmt_ns(total) + ")\n";
  out += "  contention: " + std::to_string(claim_attempts) + " claim(s), " +
         std::to_string(claims_lost) + " lost, " +
         std::to_string(claim_cas_retries) + " cas retr(ies); " +
         std::to_string(steal_attempts) + " steal attempt(s), " +
         std::to_string(steal_failures) + " empty; " +
         std::to_string(visited_probes) + " visited probe(s)\n";
  out += "  merge: " + std::to_string(shard_sink_bytes) +
         " buffered byte(s), " + std::to_string(direct_stream_bytes) +
         " direct byte(s), peak backlog " +
         std::to_string(merge_buffered_peak_bytes) + " byte(s)\n";
  return out;
}

std::string CaptureProfile::to_json() const {
  std::string out = "{\"stages_ns\":{";
  bool first = true;
  for (std::size_t i = 0; i < kStageCount; ++i)
    append_kv_u64(out, stage_name(static_cast<Stage>(i)), stage_ns[i], first);
  out += "},\"counters\":{";
  first = true;
  append_kv_u64(out, "visited_probes", visited_probes, first);
  append_kv_u64(out, "claim_attempts", claim_attempts, first);
  append_kv_u64(out, "claims_lost", claims_lost, first);
  append_kv_u64(out, "claim_cas_retries", claim_cas_retries, first);
  append_kv_u64(out, "steal_attempts", steal_attempts, first);
  append_kv_u64(out, "steal_failures", steal_failures, first);
  append_kv_u64(out, "shard_sink_bytes", shard_sink_bytes, first);
  append_kv_u64(out, "direct_stream_bytes", direct_stream_bytes, first);
  append_kv_u64(out, "merge_buffered_peak_bytes", merge_buffered_peak_bytes,
                first);
  append_kv_u64(out, "plan_tests", plan_tests, first);
  append_kv_u64(out, "objects", objects, first);
  append_kv_u64(out, "records", records, first);
  out += "},";
  first = true;
  append_kv_u64(out, "epochs", epochs, first);
  append_kv_u64(out, "shards", shards, first);
  append_kv_u64(out, "busy_ns", busy_ns, first);
  append_kv_u64(out, "cpu_ns", cpu_ns, first);
  append_kv_u64(out, "stage_total_ns", stage_total_ns(), first);
  out += '}';
  return out;
}

std::uint64_t thread_cpu_now_ns() noexcept {
#if defined(__unix__) && defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

ScopedWalk::ScopedWalk(CaptureProfile* p) noexcept : p_(p) {
  if (p_ == nullptr) return;
  inner0_ = p_->stage_ns[CaptureProfile::kDirtyTest] +
            p_->stage_ns[CaptureProfile::kSerialize] +
            p_->stage_ns[CaptureProfile::kClaim];
  cpu0_ = thread_cpu_now_ns();
  t0_ = trace_now_ns();
}

ScopedWalk::~ScopedWalk() {
  if (p_ == nullptr) return;
  const std::uint64_t elapsed = trace_now_ns() - t0_;
  const std::uint64_t inner = p_->stage_ns[CaptureProfile::kDirtyTest] +
                              p_->stage_ns[CaptureProfile::kSerialize] +
                              p_->stage_ns[CaptureProfile::kClaim] -
                              inner0_;
  // Inner stages can (rarely) exceed the walk wall because each stage pays
  // its own clock-read quantization; clamp so the residual never underflows.
  p_->stage_ns[CaptureProfile::kRootWalk] +=
      elapsed > inner ? elapsed - inner : 0;
  p_->busy_ns += elapsed;
  const std::uint64_t cpu = thread_cpu_now_ns();
  if (cpu > cpu0_) p_->cpu_ns += cpu - cpu0_;
  p_->shards += 1;
}

}  // namespace ickpt::obs
