// CaptureProfile: per-capture stage attribution for checkpoint profiling.
//
// The paper's argument is a cost model — which parts of a checkpoint are
// worth skipping — and BENCH_parallel.json showed sharded capture losing to
// serial with nobody able to say where the time went. This accumulator
// attributes capture wall/CPU time to stages (root walk, dirty test,
// serialize, claim-table arbitration, merge, write, fsync) and counts the
// contention events the parallel path pays for (claim-stripe lock misses,
// lost claims, steal attempts/failures, visited-set probes, shard-private
// sink bytes).
//
// Threading model: a CaptureProfile is a plain, non-atomic struct. Exactly
// one thread writes a given instance at a time — the serial walker writes
// the caller's profile directly; sharded capture gives every shard its own
// instance and merges them with add() after the pool joins. Passing the
// same instance to two concurrent walkers is a data race by contract.
//
// Cost model: every hook is gated on a nullable CaptureProfile* — when no
// profile is attached the hot paths pay one pointer test (the same
// zero-cost rule as the metric handles, docs/OBSERVABILITY.md). When a
// profile is attached, the walker pays 2-4 steady_clock reads per object;
// profiling is a diagnosis mode, not an always-on tax.
//
// The sum invariant (checked by bench_profile and tests/profile_test.cpp):
// stage_total_ns() == busy_ns up to clock-read noise, by construction —
// ScopedWalk attributes every walked nanosecond either to an inner stage
// (dirty test / serialize / claim) or to the kRootWalk residual, and the
// write/fsync/merge stages are added together with their busy interval.
// busy_ns is *attributable* time: serial sections plus the sum of
// per-worker busy wall. For a sharded capture on real cores it exceeds the
// coordinator's elapsed wall — per-shard walks overlap — which is exactly
// why the invariant is stated against busy_ns and not wall clock.
#pragma once

#include <cstdint>
#include <string>

namespace ickpt::obs {

struct CaptureProfile {
  enum Stage : std::uint8_t {
    kRootWalk = 0,   ///< traversal residual: fold loop, virtual dispatch
    kDirtyTest,      ///< modified-flag tests
    kSerialize,      ///< record() field writes (and whole plan runs)
    kClaim,          ///< visited-set insert + cross-shard claim arbitration
    kMerge,          ///< in-order streaming of completed segments into the
                     ///< caller's writer (lock hold time inside the cursor)
    kMergeWait,      ///< coordinator wall waiting for the last workers to
                     ///< finish after its own work ran dry
    kWrite,          ///< stable-storage append minus its fsync
    kFsync,          ///< durable_flush fsync wall
    kStageCount
  };

  std::uint64_t stage_ns[kStageCount] = {};

  // Contention and volume counters.
  std::uint64_t visited_probes = 0;   ///< cycle-guard visited-set lookups
  std::uint64_t claim_attempts = 0;   ///< cross-shard ClaimTable::claim calls
  std::uint64_t claims_lost = 0;      ///< claims another shard won
  std::uint64_t claim_cas_retries = 0;  ///< claim CASes that lost their race
                                        ///< (a real cross-shard collision on
                                        ///< one slot); replaces the striped
                                        ///< table's lock-wait counter
  std::uint64_t steal_attempts = 0;   ///< cursor bumps on other workers
  std::uint64_t steal_failures = 0;   ///< steal attempts that found the
                                      ///< victim's block exhausted
  std::uint64_t shard_sink_bytes = 0; ///< bytes buffered in shard-private
                                      ///< sinks before streaming out
  std::uint64_t direct_stream_bytes = 0;  ///< bytes a frontier worker wrote
                                          ///< straight into the caller's
                                          ///< writer, never buffered
  std::uint64_t merge_buffered_peak_bytes = 0;  ///< high-water of bytes
                                                ///< buffered behind the merge
                                                ///< frontier (out-of-order
                                                ///< volume); add() takes max
  std::uint64_t plan_tests = 0;       ///< flag tests performed by plan runs
  std::uint64_t objects = 0;          ///< objects visited under profiling
  std::uint64_t records = 0;          ///< objects recorded under profiling
  std::uint64_t epochs = 0;           ///< captures merged into this profile
  std::uint64_t shards = 0;           ///< shard walks merged in

  /// Attributable busy wall: serial sections plus the sum of per-worker walk
  /// intervals (overlapping wall counted once per worker; see header).
  std::uint64_t busy_ns = 0;
  /// Thread CPU time (CLOCK_THREAD_CPUTIME_ID) inside walks; 0 where the
  /// platform has no thread CPU clock.
  std::uint64_t cpu_ns = 0;

  /// Merge another profile in (shard into capture, capture into session).
  void add(const CaptureProfile& o) noexcept;
  void reset() noexcept { *this = CaptureProfile{}; }

  [[nodiscard]] std::uint64_t stage_total_ns() const noexcept;

  [[nodiscard]] static const char* stage_name(Stage s) noexcept;

  /// Human-readable per-stage table (ickptctl / test diagnostics).
  [[nodiscard]] std::string render() const;
  /// One JSON object: {"stages":{...},"counters":{...},...}.
  [[nodiscard]] std::string to_json() const;
};

/// CLOCK_THREAD_CPUTIME_ID in nanoseconds; 0 when unsupported.
std::uint64_t thread_cpu_now_ns() noexcept;

/// RAII residual attribution for one walk (one serial capture or one shard):
/// on destruction, adds the elapsed wall to busy_ns, the elapsed thread CPU
/// to cpu_ns, and the portion of the elapsed wall that no inner stage
/// (dirty test / serialize / claim) claimed to the kRootWalk residual — so
/// the stage sum stays exact by construction. Inert when `p` is null.
class ScopedWalk {
 public:
  explicit ScopedWalk(CaptureProfile* p) noexcept;
  ~ScopedWalk();
  ScopedWalk(const ScopedWalk&) = delete;
  ScopedWalk& operator=(const ScopedWalk&) = delete;

 private:
  CaptureProfile* p_;
  std::uint64_t t0_ = 0;
  std::uint64_t cpu0_ = 0;
  std::uint64_t inner0_ = 0;
};

}  // namespace ickpt::obs
