#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace ickpt::obs {

// --- Histogram cells --------------------------------------------------------

struct Histogram::Impl {
  std::vector<double> bounds;            // ascending upper bounds
  std::unique_ptr<Cell[]> buckets;       // bounds.size() + 1 (+Inf at back)
  Cell sum_bits;                         // bit pattern of a double
  Cell count;
};

void Histogram::observe(double v) const noexcept {
  if (impl_ == nullptr) return;
  const auto& bounds = impl_->bounds;
  std::size_t i = static_cast<std::size_t>(
      std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  // upper_bound gives the first bound > v; Prometheus buckets are `le`, so
  // land v == bound in that bucket.
  if (i > 0 && v <= bounds[i - 1]) i -= 1;
  impl_->buckets[i].v.fetch_add(1, std::memory_order_relaxed);
  impl_->count.v.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old = impl_->sum_bits.v.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t next =
        std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v);
    if (impl_->sum_bits.v.compare_exchange_weak(old, next,
                                                std::memory_order_relaxed))
      break;
  }
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::latency_seconds_bounds() {
  return exponential_bounds(1e-6, 2.0, 24);  // 1us .. ~8.4s
}

// --- Registry ---------------------------------------------------------------

namespace {

struct Metric {
  std::string name;
  LabelSet labels;
  MetricKind kind;
  Cell cell;  // counter / gauge
  Histogram::Impl hist;
};

std::string metric_key(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

LabelSet sorted(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::atomic<Registry*> g_registry{nullptr};

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;  // guards the maps, never the cells
  std::map<std::string, std::unique_ptr<Metric>> metrics;
  // A metric name has one kind across every label set (Prometheus contract),
  // so the collision check is keyed on the bare name.
  std::map<std::string, MetricKind, std::less<>> kinds;

  Metric& get(std::string_view name, const LabelSet& labels,
              MetricKind kind) {
    std::lock_guard<std::mutex> lock(mu);
    auto kind_it = kinds.find(name);
    if (kind_it != kinds.end()) {
      if (kind_it->second != kind)
        throw Error("obs: metric '" + std::string(name) +
                    "' already registered as " + kind_name(kind_it->second) +
                    ", requested as " + kind_name(kind));
    } else {
      kinds.emplace(std::string(name), kind);
    }
    LabelSet norm = sorted(labels);
    std::string key = metric_key(name, norm);
    auto it = metrics.find(key);
    if (it != metrics.end()) return *it->second;
    auto metric = std::make_unique<Metric>();
    metric->name = std::string(name);
    metric->labels = std::move(norm);
    metric->kind = kind;
    Metric& ref = *metric;
    metrics.emplace(std::move(key), std::move(metric));
    return ref;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}

Registry::~Registry() {
  // Leaving a destroyed registry installed would hand out dangling handles.
  Registry* self = this;
  g_registry.compare_exchange_strong(self, nullptr);
}

Counter Registry::counter(std::string_view name, const LabelSet& labels) {
  return Counter(&impl_->get(name, labels, MetricKind::kCounter).cell);
}

Gauge Registry::gauge(std::string_view name, const LabelSet& labels) {
  return Gauge(&impl_->get(name, labels, MetricKind::kGauge).cell);
}

Histogram Registry::histogram(std::string_view name, const LabelSet& labels,
                              std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  Metric& metric = impl_->get(name, labels, MetricKind::kHistogram);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (metric.hist.buckets == nullptr) {
      metric.hist.bounds = std::move(bounds);
      metric.hist.buckets =
          std::make_unique<Cell[]>(metric.hist.bounds.size() + 1);
    }
    // else: first registration's bounds win (documented).
  }
  return Histogram(&metric.hist);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  snap.metrics.reserve(impl_->metrics.size());
  for (const auto& [key, metric] : impl_->metrics) {
    MetricSnapshot m;
    m.name = metric->name;
    m.labels = metric->labels;
    m.kind = metric->kind;
    switch (metric->kind) {
      case MetricKind::kCounter:
        m.counter_value = metric->cell.v.load(std::memory_order_relaxed);
        break;
      case MetricKind::kGauge:
        m.gauge_value = static_cast<std::int64_t>(
            metric->cell.v.load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        m.bounds = metric->hist.bounds;
        m.bucket_counts.resize(m.bounds.size() + 1);
        for (std::size_t i = 0; i < m.bucket_counts.size(); ++i)
          m.bucket_counts[i] =
              metric->hist.buckets[i].v.load(std::memory_order_relaxed);
        m.sum = std::bit_cast<double>(
            metric->hist.sum_bits.v.load(std::memory_order_relaxed));
        m.count = metric->hist.count.v.load(std::memory_order_relaxed);
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

void Registry::install(Registry* r) noexcept {
  g_registry.store(r, std::memory_order_release);
}

Registry* Registry::installed() noexcept {
  return g_registry.load(std::memory_order_acquire);
}

Counter counter(std::string_view name, const LabelSet& labels) {
  Registry* r = Registry::installed();
  return r == nullptr ? Counter() : r->counter(name, labels);
}

Gauge gauge(std::string_view name, const LabelSet& labels) {
  Registry* r = Registry::installed();
  return r == nullptr ? Gauge() : r->gauge(name, labels);
}

Histogram histogram(std::string_view name, const LabelSet& labels,
                    std::vector<double> bounds) {
  Registry* r = Registry::installed();
  return r == nullptr ? Histogram()
                      : r->histogram(name, labels, std::move(bounds));
}

// --- Snapshot queries and exposition ---------------------------------------

double MetricSnapshot::quantile(double q) const {
  if (kind != MetricKind::kHistogram || count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    seen += bucket_counts[i];
    if (static_cast<double>(seen) < rank) continue;
    if (i >= bounds.size())  // +Inf bucket: best estimate is the last bound
      return bounds.empty() ? 0 : bounds.back();
    const double hi = bounds[i];
    const double lo = i == 0 ? 0 : bounds[i - 1];
    const std::uint64_t in_bucket = bucket_counts[i];
    if (in_bucket == 0) return hi;
    const double into =
        rank - static_cast<double>(seen - in_bucket);
    return lo + (hi - lo) * (into / static_cast<double>(in_bucket));
  }
  return bounds.empty() ? 0 : bounds.back();
}

const MetricSnapshot* Snapshot::find(std::string_view name,
                                     const LabelSet& labels) const {
  LabelSet norm = sorted(labels);
  for (const MetricSnapshot& m : metrics)
    if (m.name == name && m.labels == norm) return &m;
  return nullptr;
}

std::uint64_t Snapshot::counter_sum(std::string_view name) const {
  std::uint64_t total = 0;
  for (const MetricSnapshot& m : metrics)
    if (m.name == name && m.kind == MetricKind::kCounter)
      total += m.counter_value;
  return total;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string label_block(const LabelSet& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    append_escaped(out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    append_escaped(out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : metrics) {
    if (m.name != last_family) {
      out += "# TYPE " + m.name + " " + kind_name(m.kind) + "\n";
      last_family = m.name;
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out += m.name + label_block(m.labels) + " " +
               std::to_string(m.counter_value) + "\n";
        break;
      case MetricKind::kGauge:
        out += m.name + label_block(m.labels) + " " +
               std::to_string(m.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
          cumulative += m.bucket_counts[i];
          const std::string le =
              i < m.bounds.size() ? fmt_double(m.bounds[i]) : "+Inf";
          out += m.name + "_bucket" + label_block(m.labels, "le", le) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += m.name + "_sum" + label_block(m.labels) + " " +
               fmt_double(m.sum) + "\n";
        out += m.name + "_count" + label_block(m.labels) + " " +
               std::to_string(m.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Snapshot::to_json() const {
  std::string out = "[";
  bool first_metric = true;
  for (const MetricSnapshot& m : metrics) {
    if (!first_metric) out += ',';
    first_metric = false;
    out += "\n  {\"name\":\"";
    append_escaped(out, m.name);
    out += "\",\"type\":\"";
    out += kind_name(m.kind);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out += ',';
      first_label = false;
      out += '"';
      append_escaped(out, k);
      out += "\":\"";
      append_escaped(out, v);
      out += '"';
    }
    out += '}';
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(m.counter_value);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + std::to_string(m.gauge_value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":" + std::to_string(m.count) +
               ",\"sum\":" + fmt_double(m.sum) +
               // Interpolated from the buckets (same estimator as
               // histogram_quantile); dashboards get percentiles without
               // re-deriving them from the raw bucket array.
               ",\"p50\":" + fmt_double(m.quantile(0.50)) +
               ",\"p95\":" + fmt_double(m.quantile(0.95)) +
               ",\"p99\":" + fmt_double(m.quantile(0.99)) + ",\"buckets\":[";
        for (std::size_t i = 0; i < m.bucket_counts.size(); ++i) {
          if (i != 0) out += ',';
          out += "{\"le\":";
          out += i < m.bounds.size() ? ("\"" + fmt_double(m.bounds[i]) + "\"")
                                     : std::string("\"+Inf\"");
          out += ",\"n\":" + std::to_string(m.bucket_counts[i]) + "}";
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

}  // namespace ickpt::obs
