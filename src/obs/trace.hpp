// Span tracing: the time-dimension half of src/obs/.
//
// RAII Span objects record [start, end) intervals (and instant() records
// point events) into a bounded per-thread ring buffer. The hot path never
// blocks: each ring is guarded by a try_lock — if the collector happens to
// be draining the ring at that instant the event is counted as dropped
// instead of waiting — and a full ring overwrites its oldest event
// (drop-oldest), so a burst of spans costs memory bounded by
// ring_capacity * sizeof(TraceEvent) per thread, never a stall.
//
// Cost when disabled: a Span constructed while no TraceCollector is
// installed is inert — one atomic load, no clock read, no ring write — so
// instrumentation can stay compiled into the checkpoint hot paths.
//
// The TraceCollector drains every thread's ring (rings of exited threads
// included: they stay registered until drained) and renders the events as
// Chrome trace_event JSON, loadable in chrome://tracing or Perfetto.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ickpt::obs {

/// One fixed-size trace record; PODs only so ring slots never allocate.
struct TraceEvent {
  static constexpr std::size_t kNameCap = 48;
  static constexpr std::size_t kCatCap = 16;
  static constexpr std::size_t kNoteCap = 112;

  char name[kNameCap] = {};
  char cat[kCatCap] = {};
  /// Free-form annotation, emitted as args.note in the Chrome JSON.
  char note[kNoteCap] = {};
  std::uint64_t ts_ns = 0;   // start, relative to the process trace epoch
  std::uint64_t dur_ns = 0;  // 0 for instants
  std::uint32_t tid = 0;     // small per-thread ordinal, stable per thread
  char phase = 'X';          // 'X' complete span, 'i' instant
};

class TraceCollector {
 public:
  struct Options {
    /// Events retained per thread between drains (drop-oldest beyond it).
    std::size_t ring_capacity = 4096;
  };

  TraceCollector();
  explicit TraceCollector(Options opts);
  ~TraceCollector();  // uninstalls itself if still installed
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Install `c` as the process-wide collector; spans record only while one
  /// is installed (nullptr uninstalls).
  static void install(TraceCollector* c) noexcept;
  [[nodiscard]] static TraceCollector* installed() noexcept;

  /// Collect and clear every thread's ring; events sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> drain();

  /// Events lost so far: ring overwrites (drop-oldest) plus try_lock misses.
  [[nodiscard]] std::uint64_t dropped() const;

  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  /// Render events as a Chrome trace_event JSON document.
  static std::string to_chrome_json(const std::vector<TraceEvent>& events);

 private:
  Options opts_;
};

/// RAII interval: construction stamps the start, destruction stamps the end
/// and pushes the event into this thread's ring. Inert (single atomic load)
/// when no collector is installed.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "ickpt");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach/replace the free-form note (truncated to TraceEvent::kNoteCap).
  void note(const std::string& text) noexcept;
  void note(const char* text) noexcept;

  [[nodiscard]] bool active() const noexcept { return active_; }

 private:
  TraceEvent ev_;
  bool active_ = false;
};

/// Record a point event ('i' phase) — salvage hits, poisonings, faults.
void instant(const char* name, const char* cat = "ickpt",
             const char* note = nullptr);
void instant(const char* name, const char* cat, const std::string& note);

/// Monotonic nanoseconds since the process trace epoch (first obs use).
std::uint64_t trace_now_ns() noexcept;

}  // namespace ickpt::obs
