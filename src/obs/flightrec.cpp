#include "obs/flightrec.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "obs/trace.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

namespace ickpt::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Big-endian scalar helpers; the recorder serializes without depending on
// io/ (obs must stay the bottom of the library graph).
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int s = 24; s >= 0; s -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> s));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> s));
}

struct ByteReader {
  const std::uint8_t* p;
  const std::uint8_t* end;

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n)
      throw CorruptionError("flight-recorder image truncated");
  }
  std::uint8_t u8() {
    need(1);
    return *p++;
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>((p[0] << 8) | p[1]);
    p += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
    p += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
    p += 8;
    return v;
  }
};

constexpr std::uint32_t kFlightMagic = 0x49465231;  // "IFR1"
constexpr std::uint16_t kFlightVersion = 1;
constexpr std::uint8_t kMaxEventType =
    static_cast<std::uint8_t>(FlightEventType::kNote);

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : mask_(round_up_pow2(capacity == 0 ? 1 : capacity) - 1),
      slots_(new Slot[mask_ + 1]) {}

void FlightRecorder::record(FlightEventType type, std::uint64_t epoch,
                            std::uint64_t v0, std::uint64_t v1,
                            const char* detail, std::uint8_t aux) noexcept {
  FlightEvent ev;
  ev.ts_ns = trace_now_ns();
  ev.epoch = epoch;
  ev.v0 = v0;
  ev.v1 = v1;
  ev.type = type;
  ev.aux = aux;
  if (detail != nullptr) {
    std::size_t n = std::strlen(detail);
    if (n >= FlightEvent::kDetailCap) n = FlightEvent::kDetailCap - 1;
    std::memcpy(ev.detail, detail, n);
  }

  std::uint64_t words[kWords] = {};
  std::memcpy(words, &ev, sizeof(ev));

  const std::uint64_t t = ticket_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[t & mask_];
  // Seqlock write: odd while copying, then the ticket-stamped even value.
  slot.version.store(2 * t + 1, std::memory_order_release);
  for (std::size_t i = 0; i < kWords; ++i)
    slot.words[i].store(words[i], std::memory_order_relaxed);
  slot.version.store(2 * (t + 1), std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::events() const {
  const std::uint64_t end = ticket_.load(std::memory_order_acquire);
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t begin = end > cap ? end - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t t = begin; t < end; ++t) {
    const Slot& slot = slots_[t & mask_];
    const std::uint64_t want = 2 * (t + 1);
    if (slot.version.load(std::memory_order_acquire) != want) continue;
    std::uint64_t words[kWords];
    for (std::size_t i = 0; i < kWords; ++i)
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    // Re-check: a writer that lapped us mid-copy bumped the version.
    if (slot.version.load(std::memory_order_acquire) != want) continue;
    FlightEvent ev;
    std::memcpy(&ev, words, sizeof(ev));
    out.push_back(ev);
  }
  return out;
}

std::vector<std::uint8_t> FlightRecorder::serialize() const {
  const std::vector<FlightEvent> evs = events();
  std::vector<std::uint8_t> out;
  out.reserve(16 + evs.size() * (sizeof(FlightEvent) + 4));
  put_u32(out, kFlightMagic);
  put_u16(out, kFlightVersion);
  put_u64(out, total_recorded());
  put_u32(out, static_cast<std::uint32_t>(evs.size()));
  for (const FlightEvent& ev : evs) {
    put_u64(out, ev.ts_ns);
    put_u64(out, ev.epoch);
    put_u64(out, ev.v0);
    put_u64(out, ev.v1);
    out.push_back(static_cast<std::uint8_t>(ev.type));
    out.push_back(ev.aux);
    const std::size_t n = std::strlen(ev.detail);
    out.push_back(static_cast<std::uint8_t>(n));
    out.insert(out.end(), ev.detail, ev.detail + n);
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::deserialize(
    const std::uint8_t* data, std::size_t size,
    std::uint64_t* total_recorded) {
  ByteReader r{data, data + size};
  if (r.u32() != kFlightMagic)
    throw CorruptionError("flight-recorder image: bad magic");
  const std::uint16_t version = r.u16();
  if (version != kFlightVersion)
    throw CorruptionError("flight-recorder image: unsupported version " +
                          std::to_string(version));
  const std::uint64_t total = r.u64();
  if (total_recorded != nullptr) *total_recorded = total;
  const std::uint32_t count = r.u32();
  std::vector<FlightEvent> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FlightEvent ev;
    ev.ts_ns = r.u64();
    ev.epoch = r.u64();
    ev.v0 = r.u64();
    ev.v1 = r.u64();
    const std::uint8_t type = r.u8();
    if (type > kMaxEventType)
      throw CorruptionError("flight-recorder image: unknown event type " +
                            std::to_string(type));
    ev.type = static_cast<FlightEventType>(type);
    ev.aux = r.u8();
    const std::uint8_t n = r.u8();
    if (n >= FlightEvent::kDetailCap)
      throw CorruptionError("flight-recorder image: oversized detail");
    r.need(n);
    std::memcpy(ev.detail, r.p, n);
    r.p += n;
    out.push_back(ev);
  }
  return out;
}

void FlightRecorder::dump_to_file(const std::string& path) const {
  const std::vector<std::uint8_t> image = serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw IoError("open '" + path + "': " + std::strerror(errno));
  const bool wrote =
      std::fwrite(image.data(), 1, image.size(), f) == image.size() &&
      std::fflush(f) == 0;
#ifdef __unix__
  if (wrote) ::fsync(::fileno(f));
#endif
  std::fclose(f);
  if (!wrote)
    throw IoError("write '" + path + "': " + std::strerror(errno));
}

std::vector<FlightEvent> FlightRecorder::load_file(
    const std::string& path, std::uint64_t* total_recorded) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw IoError("open '" + path + "': " + std::strerror(errno));
  std::vector<std::uint8_t> image;
  std::uint8_t buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    image.insert(image.end(), buf, buf + n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw IoError("read '" + path + "': " + std::strerror(errno));
  return deserialize(image.data(), image.size(), total_recorded);
}

const char* FlightRecorder::type_name(FlightEventType type) noexcept {
  switch (type) {
    case FlightEventType::kEpochBegin:
      return "epoch_begin";
    case FlightEventType::kEpochEnd:
      return "epoch_end";
    case FlightEventType::kHealthTransition:
      return "health";
    case FlightEventType::kFault:
      return "fault";
    case FlightEventType::kRetry:
      return "retry";
    case FlightEventType::kRotation:
      return "rotation";
    case FlightEventType::kRebase:
      return "rebase";
    case FlightEventType::kPoison:
      return "poison";
    case FlightEventType::kReheal:
      return "reheal";
    case FlightEventType::kFallback:
      return "fallback";
    case FlightEventType::kDump:
      return "dump";
    case FlightEventType::kNote:
      return "note";
  }
  return "?";
}

std::string FlightRecorder::render_timeline(
    const std::vector<FlightEvent>& events, std::uint64_t total_recorded) {
  std::string out = "flight recorder: " + std::to_string(events.size()) +
                    " event(s) retained";
  if (total_recorded > events.size())
    out += " of " + std::to_string(total_recorded) + " recorded";
  out += '\n';
  if (events.empty()) return out;
  const std::uint64_t t0 = events.front().ts_ns;
  for (const FlightEvent& ev : events) {
    char line[64];
    std::snprintf(line, sizeof(line), "  [%+12.3fms] epoch %-6llu %-12s",
                  (static_cast<double>(ev.ts_ns) -
                   static_cast<double>(t0)) /
                      1e6,
                  static_cast<unsigned long long>(ev.epoch),
                  type_name(ev.type));
    out += line;
    switch (ev.type) {
      case FlightEventType::kEpochBegin:
        out += ev.aux == 0 ? "full" : "incremental";
        break;
      case FlightEventType::kEpochEnd:
        out += std::to_string(ev.v0) + " byte(s), " + std::to_string(ev.v1) +
               " record(s)";
        break;
      case FlightEventType::kHealthTransition:
        out += std::to_string(ev.v0) + " -> " + std::to_string(ev.v1);
        break;
      case FlightEventType::kRetry:
        out += "attempt " + std::to_string(ev.v0);
        break;
      case FlightEventType::kRebase:
        out += "seq " + std::to_string(ev.v0);
        break;
      case FlightEventType::kPoison:
        out += std::to_string(ev.v0) + " epoch(s) lost";
        break;
      case FlightEventType::kReheal:
        out += std::to_string(ev.v0) + " clean epoch(s)";
        break;
      default:
        break;
    }
    if (ev.detail[0] != '\0') {
      if (out.back() != ' ') out += ' ';
      out += "— ";
      out += ev.detail;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ickpt::obs
