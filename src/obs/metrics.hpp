// Process-wide metrics registry: the quantitative half of src/obs/.
//
// The paper's argument is quantitative — specialization pays because it
// deletes per-object tests, dispatches, and traversals — and this registry
// is what lets the runtime report those quantities live instead of only
// inside bench harnesses. Three instrument kinds, all backed by
// cache-line-padded atomics so concurrent writers never share a line and
// never take a lock:
//
//   Counter    monotonically increasing u64 (events, bytes, objects)
//   Gauge      settable i64 (queue depth, current epoch)
//   Histogram  fixed-bucket distribution of doubles (latencies, sizes)
//
// Handles are cheap POD-ish values pointing at registry-owned cells. The
// *null handle* is the zero-cost switch: a default-constructed handle (or
// one obtained from the free functions while no registry is installed)
// carries a null cell pointer, and every operation on it is a single
// pointer test — so instrumented code pays one predictable branch when
// observability is off. Handles must not outlive the Registry that issued
// them; install the registry before constructing instrumented components
// (CheckpointManager, FileSink, PlanExecutor, ...), which capture their
// handles at construction.
//
// snapshot() reads the atomic cells without stopping writers: it locks out
// concurrent *registration* only, so a snapshot taken under load sees a
// consistent set of metrics whose values are each atomically read (the
// snapshot is not a cross-metric transaction, which exposition formats do
// not require).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ickpt::obs {

/// Sorted key/value metric labels, Prometheus-style.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// One atomic on its own cache line: two hot counters updated by different
/// threads never false-share.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};

class Registry;

class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) const noexcept {
    if (cell_ != nullptr) cell_->v.fetch_add(n, std::memory_order_relaxed);
  }
  /// True when bound to a live registry cell.
  [[nodiscard]] bool live() const noexcept { return cell_ != nullptr; }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0 : cell_->v.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Counter(Cell* cell) : cell_(cell) {}
  Cell* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) const noexcept {
    if (cell_ != nullptr)
      cell_->v.store(static_cast<std::uint64_t>(v),
                     std::memory_order_relaxed);
  }
  void add(std::int64_t d) const noexcept {
    if (cell_ != nullptr)
      cell_->v.fetch_add(static_cast<std::uint64_t>(d),
                         std::memory_order_relaxed);
  }
  void sub(std::int64_t d) const noexcept { add(-d); }
  [[nodiscard]] bool live() const noexcept { return cell_ != nullptr; }
  [[nodiscard]] std::int64_t value() const noexcept {
    return cell_ == nullptr
               ? 0
               : static_cast<std::int64_t>(
                     cell_->v.load(std::memory_order_relaxed));
  }

 private:
  friend class Registry;
  explicit Gauge(Cell* cell) : cell_(cell) {}
  Cell* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;

  /// Record one observation. Lock-free: one bucket fetch_add, one count
  /// fetch_add, one CAS loop for the (double) sum.
  void observe(double v) const noexcept;
  [[nodiscard]] bool live() const noexcept { return impl_ != nullptr; }

  /// Bucket upper bounds start, start*factor, start*factor^2, ... (`count`
  /// finite buckets; an implicit +Inf bucket is always appended).
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  /// Default layout for second-denominated latencies: 1us .. ~8s, 2x steps.
  static std::vector<double> latency_seconds_bounds();

  /// Registry-owned cells; opaque to users (public only so the registry's
  /// internal metric table can embed it).
  struct Impl;

 private:
  friend class Registry;
  explicit Histogram(Impl* impl) : impl_(impl) {}
  Impl* impl_ = nullptr;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time value of one registered metric.
struct MetricSnapshot {
  std::string name;
  LabelSet labels;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter_value = 0;  // kCounter
  std::int64_t gauge_value = 0;     // kGauge
  // kHistogram: per-bucket (non-cumulative) counts aligned with `bounds`,
  // plus the +Inf bucket at the back.
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  double sum = 0;
  std::uint64_t count = 0;

  /// Approximate quantile (0..1) by linear interpolation inside the bucket
  /// that crosses the target rank (Prometheus histogram_quantile rules; the
  /// +Inf bucket reports the largest finite bound). 0 when empty.
  [[nodiscard]] double quantile(double q) const;
};

struct Snapshot {
  std::vector<MetricSnapshot> metrics;

  /// nullptr when the metric is absent.
  [[nodiscard]] const MetricSnapshot* find(std::string_view name,
                                           const LabelSet& labels = {}) const;
  /// Sum of counter_value over every label combination of `name`.
  [[nodiscard]] std::uint64_t counter_sum(std::string_view name) const;

  /// Prometheus text exposition format (one # TYPE line per family).
  [[nodiscard]] std::string to_prometheus() const;
  /// JSON array of {name, labels, type, value...} objects.
  [[nodiscard]] std::string to_json() const;
};

/// Owns the metric cells. Handle getters register on first use and return
/// the same cell for the same (name, labels) afterwards, so independent
/// components feed one logical metric. Re-registering a name under a
/// different kind throws ickpt::Error; re-registering a histogram keeps the
/// first registration's bucket bounds.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter counter(std::string_view name, const LabelSet& labels = {});
  Gauge gauge(std::string_view name, const LabelSet& labels = {});
  Histogram histogram(std::string_view name, const LabelSet& labels = {},
                      std::vector<double> bounds =
                          Histogram::latency_seconds_bounds());

  [[nodiscard]] Snapshot snapshot() const;

  /// Install `r` as the process-wide registry consulted by the free handle
  /// getters below (nullptr uninstalls). The caller keeps ownership and
  /// must uninstall before destroying the registry; handles bound to it
  /// must not be used past its lifetime.
  static void install(Registry* r) noexcept;
  [[nodiscard]] static Registry* installed() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Handle from the installed registry; the null (no-op) handle when none is
/// installed. Instrumentation sites call these at component construction.
Counter counter(std::string_view name, const LabelSet& labels = {});
Gauge gauge(std::string_view name, const LabelSet& labels = {});
Histogram histogram(std::string_view name, const LabelSet& labels = {},
                    std::vector<double> bounds =
                        Histogram::latency_seconds_bounds());

}  // namespace ickpt::obs
