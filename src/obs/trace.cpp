#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/metrics.hpp"

namespace ickpt::obs {

namespace {

/// Silent span loss must be visible in the Prometheus export, not only via
/// TraceCollector::dropped(). Looked up per drop: drops are exceptional by
/// design, and rings outlive registries (they are process-lifetime
/// thread_locals), so a cached handle here would dangle after a test-scoped
/// registry is destroyed.
void count_dropped(const char* reason) {
  obs::counter("ickpt_trace_dropped_total", {{"reason", reason}}).inc();
}

void copy_capped(char* dst, std::size_t cap, const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  std::size_t n = std::strlen(src);
  if (n >= cap) n = cap - 1;
  std::memcpy(dst, src, n);
  dst[n] = '\0';
}

/// Fixed-capacity drop-oldest ring. The owning thread pushes with try_lock
/// (a miss means the collector holds the lock; the event is dropped, the
/// thread never waits). The collector locks to drain.
struct TraceRing {
  explicit TraceRing(std::size_t capacity, std::uint32_t tid_)
      : slots(capacity), tid(tid_) {}

  void push(const TraceEvent& ev) {
    if (!mu.try_lock()) {
      dropped_contended.fetch_add(1, std::memory_order_relaxed);
      count_dropped("contended");
      return;
    }
    bool overwrote = false;
    if (size == slots.size()) {
      // Overwrite the oldest event: head is the oldest slot when full.
      dropped_overwritten += 1;
      overwrote = true;
      slots[head] = ev;
      head = (head + 1) % slots.size();
    } else {
      slots[(head + size) % slots.size()] = ev;
      size += 1;
    }
    mu.unlock();
    // Metric registration takes the registry mutex; keep it off the ring
    // lock so a draining collector is never made to wait on it.
    if (overwrote) count_dropped("overwritten");
  }

  std::mutex mu;
  std::vector<TraceEvent> slots;
  std::size_t head = 0;        // oldest event when size > 0
  std::size_t size = 0;
  std::uint64_t dropped_overwritten = 0;  // guarded by mu
  std::atomic<std::uint64_t> dropped_contended{0};
  const std::uint32_t tid;
};

/// Every ring ever created, so the collector can drain threads that have
/// since exited. Rings are shared_ptr-owned jointly by this registry and
/// the creating thread's thread_local.
struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceRing>> rings;
  std::uint32_t next_tid = 1;
};

RingRegistry& ring_registry() {
  static RingRegistry* reg = new RingRegistry();  // leaked: threads may
  return *reg;                                    // outlive static dtors
}

std::atomic<TraceCollector*> g_collector{nullptr};

TraceRing& ring_for_thread() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    RingRegistry& reg = ring_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    TraceCollector* c = g_collector.load(std::memory_order_acquire);
    const std::size_t capacity =
        c != nullptr ? c->options().ring_capacity : 4096;
    auto r = std::make_shared<TraceRing>(capacity, reg.next_tid++);
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

// --- TraceCollector ---------------------------------------------------------

TraceCollector::TraceCollector() : TraceCollector(Options{}) {}

TraceCollector::TraceCollector(Options opts) : opts_(opts) {
  trace_epoch();  // pin the epoch before the first span
}

TraceCollector::~TraceCollector() {
  TraceCollector* self = this;
  g_collector.compare_exchange_strong(self, nullptr);
}

void TraceCollector::install(TraceCollector* c) noexcept {
  g_collector.store(c, std::memory_order_release);
}

TraceCollector* TraceCollector::installed() noexcept {
  return g_collector.load(std::memory_order_acquire);
}

std::vector<TraceEvent> TraceCollector::drain() {
  std::vector<TraceEvent> out;
  RingRegistry& reg = ring_registry();
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    for (std::size_t i = 0; i < ring->size; ++i)
      out.push_back(ring->slots[(ring->head + i) % ring->slots.size()]);
    ring->head = 0;
    ring->size = 0;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

std::uint64_t TraceCollector::dropped() const {
  std::uint64_t total = 0;
  RingRegistry& reg = ring_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) {
    total += ring->dropped_contended.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped_overwritten;
  }
  return total;
}

std::string TraceCollector::to_chrome_json(
    const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    char head[160];
    // Chrome wants microseconds; keep ns precision via fractions.
    std::snprintf(head, sizeof(head),
                  "\n {\"ph\":\"%c\",\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                  ev.phase, ev.tid, static_cast<double>(ev.ts_ns) / 1e3);
    out += head;
    if (ev.phase == 'X') {
      std::snprintf(head, sizeof(head), ",\"dur\":%.3f",
                    static_cast<double>(ev.dur_ns) / 1e3);
      out += head;
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    out += ",\"name\":\"";
    append_json_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, ev.cat);
    out += '"';
    if (ev.note[0] != '\0') {
      out += ",\"args\":{\"note\":\"";
      append_json_escaped(out, ev.note);
      out += "\"}";
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

// --- Span / instant ---------------------------------------------------------

Span::Span(const char* name, const char* cat) {
  if (TraceCollector::installed() == nullptr) return;
  active_ = true;
  copy_capped(ev_.name, TraceEvent::kNameCap, name);
  copy_capped(ev_.cat, TraceEvent::kCatCap, cat);
  ev_.phase = 'X';
  ev_.ts_ns = trace_now_ns();
}

Span::~Span() {
  if (!active_) return;
  ev_.dur_ns = trace_now_ns() - ev_.ts_ns;
  TraceRing& ring = ring_for_thread();
  ev_.tid = ring.tid;
  ring.push(ev_);
}

void Span::note(const std::string& text) noexcept { note(text.c_str()); }

void Span::note(const char* text) noexcept {
  if (active_) copy_capped(ev_.note, TraceEvent::kNoteCap, text);
}

void instant(const char* name, const char* cat, const char* note) {
  if (TraceCollector::installed() == nullptr) return;
  TraceEvent ev;
  copy_capped(ev.name, TraceEvent::kNameCap, name);
  copy_capped(ev.cat, TraceEvent::kCatCap, cat);
  copy_capped(ev.note, TraceEvent::kNoteCap, note);
  ev.phase = 'i';
  ev.ts_ns = trace_now_ns();
  TraceRing& ring = ring_for_thread();
  ev.tid = ring.tid;
  ring.push(ev);
}

void instant(const char* name, const char* cat, const std::string& note) {
  instant(name, cat, note.c_str());
}

}  // namespace ickpt::obs
