// Error hierarchy for the ickpt libraries.
//
// All ickpt errors derive from ickpt::Error so callers can catch the whole
// family; the concrete subclasses distinguish the failing subsystem.
#pragma once

#include <stdexcept>
#include <string>

namespace ickpt {

/// Root of the ickpt exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Failure of an underlying byte sink/source (file open, short read, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io: " + what) {}
};

/// A checkpoint stream or stable-storage frame failed validation
/// (bad magic, CRC mismatch, truncated payload, impossible lengths).
class CorruptionError : public Error {
 public:
  explicit CorruptionError(const std::string& what)
      : Error("corrupt checkpoint: " + what) {}
};

/// Recovery met an object whose recorded type contradicts the type expected
/// by a parent link, or an unregistered TypeId.
class TypeError : public Error {
 public:
  explicit TypeError(const std::string& what) : Error("type: " + what) {}
};

/// The specializer was given an inconsistent shape or modification pattern.
class SpecError : public Error {
 public:
  explicit SpecError(const std::string& what) : Error("spec: " + what) {}
};

/// The simplified-C front end rejected its input.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse: " + what) {}
};

/// A program analysis met an internal inconsistency (missing symbol, ...).
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& what)
      : Error("analysis: " + what) {}
};

}  // namespace ickpt
