// Fundamental identifier types shared by every ickpt library.
#pragma once

#include <cstdint>

namespace ickpt {

/// Unique identifier of a checkpointable object, stable across checkpoints.
/// Mirrors the paper's CheckpointInfo.id (allocated by newId()).
using ObjectId = std::uint64_t;

/// Identifier of a registered checkpointable class; written in every object
/// record so that recovery (which has no reflection) can pick a factory.
using TypeId = std::uint32_t;

/// Monotonically increasing checkpoint sequence number. Epoch 0 is the first
/// checkpoint taken; an incremental checkpoint at epoch e contains exactly
/// the objects modified since epoch e-1.
using Epoch = std::uint64_t;

/// Reserved: never assigned to a live object; encodes a null child pointer.
inline constexpr ObjectId kNullObjectId = 0;

}  // namespace ickpt
