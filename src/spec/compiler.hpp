// PlanCompiler: shape + modification pattern -> residual Plan.
//
// This is the automatic step the paper performs with JSCC + Tempo: given the
// programmer-declared structure (ShapeDescriptor) and the phase's
// modification pattern (PatternNode), generate the specialized checkpointing
// routine. Compilation happens once per (shape, pattern); the plan is then
// executed for every structure instance at every checkpoint.
#pragma once

#include <string>
#include <vector>

#include "spec/pattern.hpp"
#include "spec/plan.hpp"
#include "spec/shape.hpp"

namespace ickpt::spec {

/// Structural consistency check of a pattern against a shape, usable without
/// compiling: child-pattern arity at every populated level, expect_absent
/// nodes carrying contradictory knowledge, and array_count declarations on
/// shapes with no runtime-counted array. Returns one human-readable line per
/// issue, each prefixed with the offending position path ("/1/0"); empty
/// means structurally valid. (Soundness against a program's actual write
/// sets is the deeper check — verify::check_pattern.)
std::vector<std::string> validate_pattern(const ShapeDescriptor& shape,
                                          const PatternNode& pattern);

struct CompileOptions {
  /// Refuse to unroll deeper than this many child levels; recursive shapes
  /// must be bounded by explicit pattern depth before hitting the limit.
  std::uint32_t max_depth = 4096;
  /// Emit LEB128 zigzag ops for i32 scalars instead of fixed-width
  /// (encoding ablation; output is NOT byte-compatible with the generic
  /// driver).
  bool varint_scalars = false;
  /// Ablation switches (DESIGN.md §5.1): when disabled, the corresponding
  /// pattern knowledge is ignored and generic behaviour is emitted.
  bool prune_tests = true;      // honor kUnmodified / kModified statuses
  bool prune_traversal = true;  // honor skip subtrees
  /// Gate compilation behind validate_pattern(): refuse (SpecError naming
  /// every offending position) to compile a structurally inconsistent
  /// pattern instead of surfacing the problem mid-unroll or at run time.
  bool verify_pattern = false;
};

class PlanCompiler {
 public:
  explicit PlanCompiler(CompileOptions opts = {}) : opts_(opts) {}

  /// Compile a plan for structures of `shape` under `pattern`.
  /// The pattern tree must cover recursive shapes to their full depth.
  [[nodiscard]] Plan compile(const ShapeDescriptor& shape,
                             const PatternNode& pattern) const;

  /// Pattern that keeps every test but inlines the whole traversal —
  /// "specialization with respect to the structure" only (paper Fig. 8).
  /// `depth_limit` bounds the unrolling of recursive shapes; traversal stops
  /// (with a SpecError) if the shape recurses past it without a null.
  [[nodiscard]] static PatternNode uniform_pattern(const ShapeDescriptor& shape,
                                                   std::uint32_t depth_limit);

 private:
  CompileOptions opts_;
};

}  // namespace ickpt::spec
