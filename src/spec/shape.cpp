#include "spec/shape.hpp"

namespace ickpt::spec {

namespace {

void validate_node(const ShapeDescriptor& shape, const void* obj,
                   std::size_t depth) {
  if (depth > 1u << 20)
    throw SpecError("shape validation exceeded depth bound (cycle?)");
  const core::Checkpointable* base = shape.to_base(obj);
  if (base->type_id() != shape.type_id)
    throw SpecError("object of type id " + std::to_string(base->type_id()) +
                    " where shape '" + shape.name + "' expects " +
                    std::to_string(shape.type_id));
  for (const Field& field : shape.fields) {
    const auto* child = std::get_if<ChildField>(&field);
    if (child == nullptr) continue;
    const void* child_obj = *reinterpret_cast<const void* const*>(
        static_cast<const char*>(obj) + child->offset);
    if (child_obj != nullptr)
      validate_node(*child->shape, child_obj, depth + 1);
  }
}

}  // namespace

void validate_shape(const ShapeDescriptor& shape, const void* root) {
  if (shape.to_base == nullptr)
    throw SpecError("shape '" + shape.name + "' has no base adjuster");
  if (root == nullptr) throw SpecError("validate_shape: null root");
  validate_node(shape, root, 0);
}

}  // namespace ickpt::spec
