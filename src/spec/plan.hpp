// Plan: the residual checkpointing program produced by the PlanCompiler.
//
// A plan is a flat op sequence over one concrete root type. Executing it
// performs zero virtual calls: every access is a direct offset into the
// current object, child traversal is an explicit pointer push/pop, and every
// test or traversal the pattern proved unnecessary simply is not in the op
// stream. This is the runtime analog of the monolithic specialized methods
// of paper Fig. 5/6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ickpt::spec {

enum class OpCode : std::uint8_t {
  /// if !modified(cur.info@a) then ip += b  (skips the record block only).
  kTestSkip,
  /// write kRecordTag, varint(imm = type_id), varint(id of cur.info@a).
  kWriteHeader,
  kWriteU8,    // a = offset
  kWriteBool,  // a = offset
  kWriteI32,   // a = offset
  kWriteI32Var,  // a = offset; LEB128 zigzag (encoding ablation)
  kWriteI64,   // a = offset
  kWriteU64,   // a = offset
  kWriteF32,   // a = offset
  kWriteF64,   // a = offset
  /// write b int32s starting at offset a.
  kWriteI32ArrayFixed,
  /// fused run: write b contiguous int32 fields starting at offset a
  /// (compiler peephole over adjacent i32 scalars/fixed arrays).
  kWriteI32Run,
  /// write *(i32*)(cur+b) int32s starting at offset a.
  kWriteI32ArrayRuntime,
  /// write varint(child id) for child pointer at offset a (null -> 0).
  kWriteChildId,
  /// reset modified flag of cur.info@a.
  kResetFlag,
  /// push cur; cur = *(void**)(cur+a); if cur == null, don't push, ip += b.
  kPushChild,
  kPop,
  /// follow b hops: cur = *(void**)(cur+a) per hop, no stack traffic.
  /// Compiled for pure pass-through chain prefixes (interior elements that
  /// are provably unmodified and carry nothing else); a null mid-chain is a
  /// structure violation and throws.
  kFollow,
  /// throw SpecError if *(void**)(cur+a) != null (structure assertion).
  kAssertNull,
  kEnd,
};

struct Op {
  OpCode code;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t imm = 0;
};

struct Plan {
  std::vector<Op> ops;
  /// Deepest kPushChild nesting; the executor sizes its stack from this.
  std::uint32_t max_depth = 0;
  /// Structure nodes the pattern covers per instance — including
  /// skip-pruned subtrees and fused follow hops, i.e. the nodes the generic
  /// driver would have to test. nodes_covered minus the plan's kTestSkip
  /// count is the per-run number of modification tests specialization
  /// elided (paper Table 1's argument, observable at runtime).
  std::size_t nodes_covered = 0;
  /// info offset of the root object (for writing root ids in the header).
  std::size_t root_info_offset = 0;
  std::string shape_name;

  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }

  /// Human-readable disassembly, for debugging and the docs.
  [[nodiscard]] std::string disassemble() const;
};

}  // namespace ickpt::spec
