// Pattern serialization: persist modification patterns (hand-written or
// inferred) so a phase's specialization can be learned once and shipped as
// data — the declarative role the paper's specialization classes play.
//
// The encoding is versioned and carries a structural fingerprint of the
// shape the pattern was built against; loading validates the fingerprint so
// a pattern cannot silently be applied to a class whose recorded layout
// changed (the paper's "program evolution" hazard).
#pragma once

#include "io/data_reader.hpp"
#include "io/data_writer.hpp"
#include "spec/pattern.hpp"
#include "spec/shape.hpp"

namespace ickpt::spec {

/// Order-sensitive structural hash of a shape tree: name-independent, but
/// any change to field kinds, offsets-in-record-order, child wiring, or
/// type ids changes the fingerprint.
std::uint64_t shape_fingerprint(const ShapeDescriptor& shape);

/// Serialize `pattern`, stamped with `shape`'s fingerprint.
void save_pattern(io::DataWriter& d, const PatternNode& pattern,
                  const ShapeDescriptor& shape);

/// Deserialize a pattern; throws SpecError if it was saved against a shape
/// whose fingerprint differs from `expected`'s, and CorruptionError on a
/// malformed stream.
PatternNode load_pattern(io::DataReader& d, const ShapeDescriptor& expected);

}  // namespace ickpt::spec
