#include "spec/compiler.hpp"

#include <optional>
#include <sstream>
#include <utility>

namespace ickpt::spec {

namespace {

OpCode scalar_op(ScalarKind kind, bool varint_scalars) {
  switch (kind) {
    case ScalarKind::kU8:
      return OpCode::kWriteU8;
    case ScalarKind::kBool:
      return OpCode::kWriteBool;
    case ScalarKind::kI32:
      return varint_scalars ? OpCode::kWriteI32Var : OpCode::kWriteI32;
    case ScalarKind::kI64:
      return OpCode::kWriteI64;
    case ScalarKind::kU64:
      return OpCode::kWriteU64;
    case ScalarKind::kF32:
      return OpCode::kWriteF32;
    case ScalarKind::kF64:
      return OpCode::kWriteF64;
  }
  throw SpecError("unknown scalar kind");
}

/// Nodes a pattern subtree spans: the subtree root plus every present
/// descendant the pattern describes. This is how many nodes the generic
/// driver would test when visiting the subtree — the currency of the
/// plan's nodes_covered accounting.
std::size_t pattern_extent(const PatternNode& pattern) {
  std::size_t n = 1;
  for (const PatternNode& child : pattern.children)
    if (!child.expect_absent) n += pattern_extent(child);
  return n;
}

class Compiler {
 public:
  Compiler(const CompileOptions& opts) : opts_(opts) {}

  Plan run(const ShapeDescriptor& shape, const PatternNode& pattern) {
    compile_node(shape, pattern, 0);
    ops_.push_back(Op{OpCode::kEnd, 0, 0, 0});
    Plan plan;
    plan.ops = std::move(ops_);
    plan.max_depth = max_depth_;
    plan.root_info_offset = shape.info_offset;
    plan.shape_name = shape.name;
    plan.nodes_covered = nodes_covered_;
    return plan;
  }

 private:
  void emit(OpCode code, std::uint32_t a = 0, std::uint32_t b = 0,
            std::uint64_t imm = 0) {
    ops_.push_back(Op{code, a, b, imm});
  }

  /// Emit `count` int32 writes starting at `offset`, fusing with an
  /// immediately preceding contiguous i32 write into one run op — the
  /// peephole a compiler would apply to the unrolled residual code.
  void emit_i32s(std::uint32_t offset, std::uint32_t count) {
    if (!ops_.empty()) {
      Op& last = ops_.back();
      std::uint32_t last_count = 0;
      if (last.code == OpCode::kWriteI32)
        last_count = 1;
      else if (last.code == OpCode::kWriteI32ArrayFixed ||
               last.code == OpCode::kWriteI32Run)
        last_count = last.b;
      if (last_count != 0 && last.a + 4 * last_count == offset) {
        last.code = OpCode::kWriteI32Run;
        last.b = last_count + count;
        return;
      }
    }
    if (count == 1)
      emit(OpCode::kWriteI32, offset);
    else
      emit(OpCode::kWriteI32ArrayFixed, offset, count);
  }

  void compile_node(const ShapeDescriptor& shape, const PatternNode& pattern,
                    std::uint32_t depth) {
    if (depth > opts_.max_depth)
      throw SpecError("shape '" + shape.name +
                      "' recurses past the pattern depth; supply an explicit "
                      "pattern that bounds the structure");
    max_depth_ = std::max(max_depth_, depth);

    // Ablation semantics: with traversal pruning disabled, a skipped subtree
    // degrades to a provably-unmodified node whose children are likewise
    // degraded skips; with test pruning disabled, every status degrades to
    // the generic MaybeModified test.
    bool skip = pattern.skip;
    if (skip && opts_.prune_traversal) {
      // The whole subtree is pruned from the op stream but still covered:
      // the pattern proves it unmodified, tests and all.
      nodes_covered_ += pattern_extent(pattern);
      return;
    }
    ++nodes_covered_;

    ModStatus self = pattern.self;
    if (skip) self = ModStatus::kUnmodified;  // prune_traversal off
    if (!opts_.prune_tests && !skip) self = ModStatus::kMaybeModified;
    if (!opts_.prune_tests && skip) self = ModStatus::kMaybeModified;

    const std::uint32_t info = static_cast<std::uint32_t>(shape.info_offset);

    std::size_t test_ip = SIZE_MAX;
    if (self != ModStatus::kUnmodified) {
      if (self == ModStatus::kMaybeModified) {
        test_ip = ops_.size();
        emit(OpCode::kTestSkip, info, 0);
      }
      emit(OpCode::kWriteHeader, info, 0, shape.type_id);
      for (const Field& field : shape.fields) {
        if (const auto* s = std::get_if<ScalarField>(&field)) {
          if (s->kind == ScalarKind::kI32 && !opts_.varint_scalars) {
            emit_i32s(static_cast<std::uint32_t>(s->offset), 1);
          } else {
            emit(scalar_op(s->kind, opts_.varint_scalars),
                 static_cast<std::uint32_t>(s->offset));
          }
        } else if (const auto* arr = std::get_if<I32ArrayField>(&field)) {
          if (pattern.array_count.has_value()) {
            emit_i32s(static_cast<std::uint32_t>(arr->offset),
                      *pattern.array_count);
          } else if (arr->count_offset == I32ArrayField::kNoCountField) {
            emit_i32s(static_cast<std::uint32_t>(arr->offset),
                      arr->fixed_count);
          } else {
            emit(OpCode::kWriteI32ArrayRuntime,
                 static_cast<std::uint32_t>(arr->offset),
                 static_cast<std::uint32_t>(arr->count_offset));
          }
        } else {
          // The child's id lives at its own shape's info offset; stash that
          // offset in b so the executor can read the id without dispatch.
          const auto& child = std::get<ChildField>(field);
          emit(OpCode::kWriteChildId, static_cast<std::uint32_t>(child.offset),
               static_cast<std::uint32_t>(child.shape->info_offset));
        }
      }
      emit(OpCode::kResetFlag, info);
      if (test_ip != SIZE_MAX)
        ops_[test_ip].b =
            static_cast<std::uint32_t>(ops_.size() - test_ip - 1);
    }

    // Child traversal (fold order == field order).
    std::size_t child_index = 0;
    const std::size_t n_children = shape.child_count();
    if (!pattern.children.empty() && pattern.children.size() != n_children)
      throw SpecError("pattern for '" + shape.name + "' supplies " +
                      std::to_string(pattern.children.size()) +
                      " child patterns, shape has " +
                      std::to_string(n_children));
    for (const Field& field : shape.fields) {
      const auto* child = std::get_if<ChildField>(&field);
      if (child == nullptr) continue;
      PatternNode synthesized;  // default MaybeModified, children implicit
      const PatternNode* child_pattern =
          pattern.children.empty() ? &synthesized
                                   : &pattern.children[child_index];
      ++child_index;
      // Skipped parents imply skipped children when traversal pruning is
      // ablated away (the subtree is still provably unmodified).
      PatternNode degraded;
      if (skip) {
        degraded = *child_pattern;
        degraded.skip = true;
        child_pattern = &degraded;
      }
      if (child_pattern->expect_absent) {
        emit(OpCode::kAssertNull, static_cast<std::uint32_t>(child->offset));
        continue;
      }
      if (child_pattern->skip && opts_.prune_traversal) {
        nodes_covered_ += pattern_extent(*child_pattern);
        continue;
      }
      const std::size_t push_ip = ops_.size();
      emit(OpCode::kPushChild, static_cast<std::uint32_t>(child->offset), 0);

      // Chain fusion: while the target node is a pure pass-through
      // (provably unmodified, nothing to assert, exactly one traversed
      // child), replace its push/pop pair with a stackless follow hop —
      // the specialized code just chases the pointer, as in paper Fig. 10.
      const ShapeDescriptor* node_shape = child->shape;
      const PatternNode* node_pattern = child_pattern;
      std::uint32_t hops = 0;
      while (true) {
        const auto hop = pass_through_hop(*node_shape, *node_pattern);
        if (!hop.has_value()) break;
        const auto [next_field, next_pattern] = *hop;
        if (hops != 0 &&
            ops_.back().a != static_cast<std::uint32_t>(next_field->offset))
          break;  // different link offset; start a new follow op instead
        if (hops == 0)
          emit(OpCode::kFollow,
               static_cast<std::uint32_t>(next_field->offset), 0);
        ops_.back().b += 1;
        ++hops;
        // The hopped-through node is covered test-free, and so are any
        // sibling subtrees its pattern proved skippable.
        ++nodes_covered_;
        if (!node_pattern->children.empty()) {
          std::size_t hop_index = 0;
          for (const Field& hop_field : node_shape->fields) {
            if (std::get_if<ChildField>(&hop_field) == nullptr) continue;
            const PatternNode& cp = node_pattern->children[hop_index++];
            if (cp.skip) nodes_covered_ += pattern_extent(cp);
          }
        }
        node_shape = next_field->shape;
        node_pattern = next_pattern;
        ++depth;
        if (depth > opts_.max_depth)
          throw SpecError("shape '" + node_shape->name +
                          "' recurses past the pattern depth; supply an "
                          "explicit pattern that bounds the structure");
      }

      compile_node(*node_shape, *node_pattern, depth + 1);
      emit(OpCode::kPop);
      ops_[push_ip].b =
          static_cast<std::uint32_t>(ops_.size() - push_ip - 1);
    }
  }

  /// If (shape, pattern) describes a node the compiled code can hop straight
  /// through — no tests, no records, no assertions, exactly one traversed
  /// child — return that child's field and pattern.
  std::optional<std::pair<const ChildField*, const PatternNode*>>
  pass_through_hop(const ShapeDescriptor& shape,
                   const PatternNode& pattern) const {
    if (pattern.skip || pattern.expect_absent) return std::nullopt;
    if (!opts_.prune_tests) return std::nullopt;
    if (pattern.self != ModStatus::kUnmodified) return std::nullopt;
    if (!pattern.children.empty() &&
        pattern.children.size() != shape.child_count())
      return std::nullopt;  // arity error surfaces in compile_node
    const ChildField* traversed = nullptr;
    const PatternNode* traversed_pattern = nullptr;
    std::size_t index = 0;
    for (const Field& field : shape.fields) {
      const auto* child = std::get_if<ChildField>(&field);
      if (child == nullptr) continue;
      static const PatternNode kDefault;
      const PatternNode* cp = pattern.children.empty()
                                  ? &kDefault
                                  : &pattern.children[index];
      ++index;
      if (cp->expect_absent) return std::nullopt;  // needs an assert op
      if (cp->skip) {
        if (!opts_.prune_traversal) return std::nullopt;
        continue;
      }
      if (traversed != nullptr) return std::nullopt;  // more than one child
      traversed = child;
      traversed_pattern = cp;
    }
    if (traversed == nullptr) return std::nullopt;
    return std::make_pair(traversed, traversed_pattern);
  }

  const CompileOptions& opts_;
  std::vector<Op> ops_;
  std::uint32_t max_depth_ = 0;
  std::size_t nodes_covered_ = 0;
};

void validate_node(const ShapeDescriptor& shape, const PatternNode& pattern,
                   const std::string& path, std::vector<std::string>& issues) {
  const std::string at = path.empty() ? std::string("/") : path;
  if (pattern.expect_absent) {
    if (pattern.skip)
      issues.push_back("position " + at +
                       ": expect_absent contradicts skip (an absent child "
                       "has nothing to skip)");
    if (pattern.self == ModStatus::kModified)
      issues.push_back("position " + at +
                       ": expect_absent contradicts kModified (an absent "
                       "child cannot be provably modified)");
    if (!pattern.children.empty())
      issues.push_back("position " + at +
                       ": expect_absent node declares child patterns");
    if (pattern.array_count.has_value())
      issues.push_back("position " + at +
                       ": expect_absent node declares an array_count");
    return;
  }
  if (pattern.array_count.has_value()) {
    bool has_runtime_array = false;
    for (const Field& field : shape.fields) {
      const auto* arr = std::get_if<I32ArrayField>(&field);
      if (arr != nullptr && arr->count_offset != I32ArrayField::kNoCountField)
        has_runtime_array = true;
    }
    if (!has_runtime_array)
      issues.push_back("position " + at + ": array_count declared but '" +
                       shape.name + "' has no runtime-counted array field");
  }
  if (pattern.children.empty()) return;
  if (pattern.children.size() != shape.child_count()) {
    issues.push_back("position " + at + ": " +
                     std::to_string(pattern.children.size()) +
                     " child pattern(s) for '" + shape.name + "', which has " +
                     std::to_string(shape.child_count()) + " child field(s)");
    return;
  }
  std::size_t index = 0;
  for (const Field& field : shape.fields) {
    const auto* child = std::get_if<ChildField>(&field);
    if (child == nullptr) continue;
    validate_node(*child->shape, pattern.children[index],
                  path + "/" + std::to_string(index), issues);
    ++index;
  }
}

PatternNode uniform(const ShapeDescriptor& shape, std::uint32_t depth) {
  PatternNode node;  // MaybeModified
  node.children.reserve(shape.child_count());
  for (const Field& field : shape.fields) {
    const auto* child = std::get_if<ChildField>(&field);
    if (child == nullptr) continue;
    if (depth == 0)
      node.children.push_back(PatternNode::absent());
    else
      node.children.push_back(uniform(*child->shape, depth - 1));
  }
  return node;
}

}  // namespace

std::vector<std::string> validate_pattern(const ShapeDescriptor& shape,
                                          const PatternNode& pattern) {
  std::vector<std::string> issues;
  validate_node(shape, pattern, "", issues);
  return issues;
}

Plan PlanCompiler::compile(const ShapeDescriptor& shape,
                           const PatternNode& pattern) const {
  if (opts_.verify_pattern) {
    std::vector<std::string> issues = validate_pattern(shape, pattern);
    if (!issues.empty()) {
      std::ostringstream out;
      out << "pattern for '" << shape.name << "' rejected by verify gate:";
      for (const std::string& issue : issues) out << "\n  " << issue;
      throw SpecError(out.str());
    }
  }
  Compiler compiler(opts_);
  return compiler.run(shape, pattern);
}

PatternNode PlanCompiler::uniform_pattern(const ShapeDescriptor& shape,
                                          std::uint32_t depth_limit) {
  return uniform(shape, depth_limit);
}

std::string Plan::disassemble() const {
  static constexpr const char* kNames[] = {
      "test_skip",  "write_header", "write_u8",        "write_bool",
      "write_i32",  "write_i32v",   "write_i64",       "write_u64",
      "write_f32",  "write_f64",    "write_i32arr_fx", "write_i32run",
      "write_i32arr_rt", "write_cid", "reset_flag",    "push_child",
      "pop",        "follow",       "assert_null",     "end"};
  std::ostringstream out;
  out << "plan for " << shape_name << " (" << ops.size()
      << " ops, depth " << max_depth << ")\n";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    out << "  " << i << ": " << kNames[static_cast<int>(op.code)] << " a="
        << op.a << " b=" << op.b;
    if (op.imm != 0) out << " imm=" << op.imm;
    out << "\n";
  }
  return out.str();
}

}  // namespace ickpt::spec
