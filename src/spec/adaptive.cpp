#include "spec/adaptive.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ickpt::spec {

AdaptiveCheckpointer::AdaptiveCheckpointer(const ShapeDescriptor& shape,
                                           Options opts)
    : shape_(&shape),
      opts_(std::move(opts)),
      inferencer_(std::make_unique<PatternInferencer>(shape)),
      obs_reobserve_epochs_(obs::counter("ickpt_reobservation_epochs_total",
                                         {{"shape", shape.name}})) {
  if (opts_.observe_epochs == 0)
    throw SpecError("AdaptiveCheckpointer needs at least one observation "
                    "epoch");
  if (opts_.static_pattern.has_value()) {
    // A statically inferred pattern carries stronger claims than learned
    // ones, so it never bypasses the verifying gate: a pattern that cannot
    // survive verification has no business replacing learning.
    CompileOptions gated = opts_.compile;
    gated.verify_pattern = true;
    plan_ = PlanCompiler(gated).compile(*shape_, *opts_.static_pattern);
    executor_ = std::make_unique<PlanExecutor>(plan_);
    active_pattern_ = *opts_.static_pattern;
    stage_ = Stage::kStatic;
    obs::counter("ickpt_adaptive_static_plans_total",
                 {{"shape", shape_->name}})
        .inc();
  }
}

void AdaptiveCheckpointer::run_generic(io::DataWriter& d, Epoch epoch,
                                       const Roots& roots) {
  core::CheckpointOptions copts;
  copts.mode = core::Mode::kIncremental;
  core::Checkpoint::run(d, epoch, roots.bases, copts);
}

void AdaptiveCheckpointer::relearn() {
  stage_ = Stage::kObserving;
  inferencer_ = std::make_unique<PatternInferencer>(*shape_);
  epochs_observed_ = 0;
  executor_.reset();
  // A static pattern that drifted structurally is as stale as a learned
  // one: dynamic observation is the fallback for both.
  opts_.static_pattern.reset();
  crosschecked_ = false;
  reobserving_ = false;
  reobserver_.reset();
  reobserve_epochs_seen_ = 0;
  epochs_since_reobserve_ = 0;
}

AdaptiveCheckpointer::Result AdaptiveCheckpointer::checkpoint(
    io::DataWriter& d, Epoch epoch, Roots roots) {
  if (roots.bases.size() != roots.concretes.size())
    throw SpecError("adaptive checkpoint: root span size mismatch");

  Result result;
  const std::size_t before = d.bytes_written();

  if (stage_ != Stage::kObserving) {
    // Cross-check a static plan for its first observe_epochs epochs: sample
    // the flags before the plan resets them, then compare the learned
    // pattern against the proven one. A disagreement means the workload
    // under-exercises a position the write set proves writable — the
    // learned pattern would have been unsound.
    if (stage_ == Stage::kStatic && !crosschecked_) {
      for (void* root : roots.concretes) inferencer_->observe(root);
      ++epochs_observed_;
      if (epochs_observed_ >= opts_.observe_epochs) {
        crosschecked_ = true;
        PatternNode learned = inferencer_->infer(opts_.infer);
        disagreements_ =
            pattern_disagreements(*shape_, *opts_.static_pattern, learned);
        obs::counter("ickpt_static_dynamic_disagreements_total",
                     {{"shape", shape_->name}})
            .inc(disagreements_);
        obs::instant("adaptive.crosscheck", "spec",
                     shape_->name + ": learned pattern disagrees with "
                                    "static one at " +
                         std::to_string(disagreements_) + " position(s)");
      }
    } else if (opts_.reobserve_interval > 0) {
      // Rolling re-observation: the one-shot cross-check above only proves
      // the pattern against the workload as it behaved *then*. Periodically
      // re-enter a counted observation window so behavioural drift — the
      // workload dirtying positions the active plan neither tests nor
      // records — trips a fallback instead of silently losing records
      // forever.
      if (!reobserving_ &&
          ++epochs_since_reobserve_ >= opts_.reobserve_interval) {
        reobserving_ = true;
        reobserver_ = std::make_unique<PatternInferencer>(*shape_);
        reobserve_epochs_seen_ = 0;
        epochs_since_reobserve_ = 0;
      }
      if (reobserving_) {
        // Sample flags before the plan run resets them.
        for (void* root : roots.concretes) reobserver_->observe(root);
        ++reobserve_epochs_seen_;
        obs_reobserve_epochs_.inc();
        if (reobserve_epochs_seen_ >= opts_.observe_epochs) {
          PatternNode learned = reobserver_->infer(opts_.infer);
          const std::size_t unsafe =
              pattern_unsafe_disagreements(*shape_, active_pattern_, learned);
          reobserving_ = false;
          reobserver_.reset();
          ++reobservations_;
          if (unsafe > 0) {
            // The active plan silently drops dirt at `unsafe` position(s):
            // fall back *before* running it. Flags are intact (the plan has
            // not run this epoch), so the observing path below can issue a
            // sound generic incremental checkpoint.
            ++fallbacks_;
            obs::counter("ickpt_adaptive_fallbacks_total",
                         {{"shape", shape_->name}})
                .inc();
            obs::instant("adaptive.fallback", "spec",
                         shape_->name +
                             ": behaviour drifted from active pattern at " +
                             std::to_string(unsafe) +
                             " position(s), re-learning");
            relearn();
            result.fell_back = true;
          }
        }
      }
    }
  }

  if (stage_ != Stage::kObserving) {
    // Stage the specialized stream in the reusable scratch buffer: if the
    // structure violates the pattern mid-run we must not leave a partial
    // checkpoint in the caller's stream. Writing through to the caller
    // directly would be faster but unsafe — a mid-run SpecError after N
    // records would leave an unterminated stream the reader cannot
    // distinguish from truncation. clear() keeps the capacity from the
    // previous epoch, so steady state allocates nothing.
    scratch_.clear();
    bool ok = true;
    {
      io::DataWriter scratch_writer(scratch_);
      try {
        run_plan_checkpoint_parallel(scratch_writer, epoch, roots.concretes,
                                     *executor_, opts_.capture_threads);
        scratch_writer.flush();
      } catch (const SpecError&) {
        ok = false;
      }
    }
    if (ok) {
      d.write_bytes(scratch_.bytes().data(), scratch_.size());
      result.stage_used = stage_;
      result.bytes = d.bytes_written() - before;
      return result;
    }
    // Structure drifted: fall back for this checkpoint and re-learn.
    // The aborted plan run may have reset some flags already — they were
    // reset exactly for objects whose records are in the scratch buffer,
    // which we are discarding. Restore them so the generic pass records
    // those objects again. We cannot know which they were, so conservative
    // recovery is to re-mark every object the plan *could* have recorded:
    // simplest sound choice is to re-run generically over a full-mode
    // checkpoint for this epoch.
    ++fallbacks_;
    obs::counter("ickpt_adaptive_fallbacks_total", {{"shape", shape_->name}})
        .inc();
    obs::instant("adaptive.fallback", "spec",
                 shape_->name + ": structure drifted from " +
                     (stage_ == Stage::kStatic ? "static" : "learned") +
                     " pattern, re-learning");
    relearn();
    core::CheckpointOptions copts;
    copts.mode = core::Mode::kFull;  // sound despite half-reset flags
    core::Checkpoint::run(d, epoch, roots.bases, copts);
    result.stage_used = Stage::kObserving;
    result.fell_back = true;
    result.bytes = d.bytes_written() - before;
    return result;
  }

  // Observing: sample flags before the generic pass resets them.
  for (void* root : roots.concretes) inferencer_->observe(root);
  ++epochs_observed_;
  run_generic(d, epoch, roots);
  result.stage_used = Stage::kObserving;
  result.bytes = d.bytes_written() - before;

  if (epochs_observed_ >= opts_.observe_epochs) {
    PatternNode pattern = inferencer_->infer(opts_.infer);
    plan_ = PlanCompiler(opts_.compile).compile(*shape_, pattern);
    executor_ = std::make_unique<PlanExecutor>(plan_);
    active_pattern_ = std::move(pattern);
    epochs_since_reobserve_ = 0;
    stage_ = Stage::kSpecialized;
    obs::counter("ickpt_adaptive_specializations_total",
                 {{"shape", shape_->name}})
        .inc();
    obs::instant("adaptive.specialize", "spec",
                 shape_->name + ": plan of " +
                     std::to_string(plan_.ops.size()) + " op(s) after " +
                     std::to_string(epochs_observed_) + " epoch(s)");
  }
  return result;
}

}  // namespace ickpt::spec
