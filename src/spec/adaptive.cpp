#include "spec/adaptive.hpp"

#include "io/byte_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ickpt::spec {

AdaptiveCheckpointer::AdaptiveCheckpointer(const ShapeDescriptor& shape,
                                           Options opts)
    : shape_(&shape),
      opts_(opts),
      inferencer_(std::make_unique<PatternInferencer>(shape)) {
  if (opts_.observe_epochs == 0)
    throw SpecError("AdaptiveCheckpointer needs at least one observation "
                    "epoch");
}

void AdaptiveCheckpointer::run_generic(io::DataWriter& d, Epoch epoch,
                                       const Roots& roots) {
  core::CheckpointOptions copts;
  copts.mode = core::Mode::kIncremental;
  core::Checkpoint::run(d, epoch, roots.bases, copts);
}

void AdaptiveCheckpointer::relearn() {
  stage_ = Stage::kObserving;
  inferencer_ = std::make_unique<PatternInferencer>(*shape_);
  epochs_observed_ = 0;
  executor_.reset();
}

AdaptiveCheckpointer::Result AdaptiveCheckpointer::checkpoint(
    io::DataWriter& d, Epoch epoch, Roots roots) {
  if (roots.bases.size() != roots.concretes.size())
    throw SpecError("adaptive checkpoint: root span size mismatch");

  Result result;
  const std::size_t before = d.bytes_written();

  if (stage_ == Stage::kSpecialized) {
    // Stage the specialized stream in a scratch buffer: if the structure
    // violates the learned pattern mid-run we must not leave a partial
    // checkpoint in the caller's stream.
    io::VectorSink scratch;
    bool ok = true;
    {
      io::DataWriter scratch_writer(scratch);
      try {
        run_plan_checkpoint(scratch_writer, epoch, roots.concretes,
                            *executor_);
        scratch_writer.flush();
      } catch (const SpecError&) {
        ok = false;
      }
    }
    if (ok) {
      d.write_bytes(scratch.bytes().data(), scratch.size());
      result.stage_used = Stage::kSpecialized;
      result.bytes = d.bytes_written() - before;
      return result;
    }
    // Structure drifted: fall back for this checkpoint and re-learn.
    // The aborted plan run may have reset some flags already — they were
    // reset exactly for objects whose records are in the scratch buffer,
    // which we are discarding. Restore them so the generic pass records
    // those objects again. We cannot know which they were, so conservative
    // recovery is to re-mark every object the plan *could* have recorded:
    // simplest sound choice is to re-run generically over a full-mode
    // checkpoint for this epoch.
    ++fallbacks_;
    obs::counter("ickpt_adaptive_fallbacks_total", {{"shape", shape_->name}})
        .inc();
    obs::instant("adaptive.fallback", "spec",
                 shape_->name + ": structure drifted from learned pattern, "
                                "re-learning");
    relearn();
    core::CheckpointOptions copts;
    copts.mode = core::Mode::kFull;  // sound despite half-reset flags
    core::Checkpoint::run(d, epoch, roots.bases, copts);
    result.stage_used = Stage::kObserving;
    result.fell_back = true;
    result.bytes = d.bytes_written() - before;
    return result;
  }

  // Observing: sample flags before the generic pass resets them.
  for (void* root : roots.concretes) inferencer_->observe(root);
  ++epochs_observed_;
  run_generic(d, epoch, roots);
  result.stage_used = Stage::kObserving;
  result.bytes = d.bytes_written() - before;

  if (epochs_observed_ >= opts_.observe_epochs) {
    PatternNode pattern = inferencer_->infer(opts_.infer);
    plan_ = PlanCompiler(opts_.compile).compile(*shape_, pattern);
    executor_ = std::make_unique<PlanExecutor>(plan_);
    stage_ = Stage::kSpecialized;
    obs::counter("ickpt_adaptive_specializations_total",
                 {{"shape", shape_->name}})
        .inc();
    obs::instant("adaptive.specialize", "spec",
                 shape_->name + ": plan of " +
                     std::to_string(plan_.ops.size()) + " op(s) after " +
                     std::to_string(epochs_observed_) + " epoch(s)");
  }
  return result;
}

}  // namespace ickpt::spec
