// Modification patterns: the phase-specific half of a specialization class.
//
// A PatternNode tree mirrors a shape instance tree and states, for each
// position, what the current program phase may do to the object there
// (paper §3.2, §4.2):
//
//   * skip == true          — the whole subtree is provably unmodified; the
//                             specialized code contains no trace of it
//                             (neither tests nor traversal).
//   * self == kUnmodified   — this object itself is provably unmodified
//                             (no test, no record), but children may be.
//   * self == kMaybeModified— keep the runtime test (generic behaviour).
//   * self == kModified     — provably modified: record without testing.
//
// Soundness: a pattern is valid for a workload iff it over-approximates the
// actual mutations (nothing marked skip/kUnmodified is ever dirtied, and
// nothing marked kModified is ever clean at checkpoint time — the latter
// only matters for byte-level equivalence with the generic driver, not for
// recoverability, since recording a clean object is merely redundant).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace ickpt::spec {

enum class ModStatus : std::uint8_t {
  kUnmodified,
  kMaybeModified,
  kModified,
};

struct PatternNode {
  ModStatus self = ModStatus::kMaybeModified;
  bool skip = false;
  /// Structural assertion: this child pointer is null (e.g. "lists have
  /// length exactly 5" terminates the unrolled chain). The compiled plan
  /// verifies the assertion at run time, so declaring a too-short structure
  /// fails loudly instead of silently dropping modified tail objects.
  bool expect_absent = false;
  /// One entry per ChildField of the corresponding shape, in field order.
  /// Must be fully populated down recursive shapes (the compiler refuses to
  /// unroll a recursive shape without explicit pattern depth).
  std::vector<PatternNode> children;
  /// When set, specializes every runtime-counted I32ArrayField of this node
  /// to a fixed element count (structure knowledge, e.g. "10 ints/element").
  std::optional<std::uint32_t> array_count;

  static PatternNode skipped() {
    PatternNode n;
    n.skip = true;
    return n;
  }

  static PatternNode leaf(ModStatus status) {
    PatternNode n;
    n.self = status;
    return n;
  }

  static PatternNode absent() {
    PatternNode n;
    n.expect_absent = true;
    return n;
  }
};

}  // namespace ickpt::spec
