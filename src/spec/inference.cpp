#include "spec/inference.hpp"

#include <vector>

#include "core/checkpoint_info.hpp"
#include "obs/metrics.hpp"

namespace ickpt::spec {

/// Statistics for one position in the shape instance tree, merged across all
/// observed instances.
struct PatternInferencer::Node {
  const ShapeDescriptor* shape;
  std::size_t reached = 0;       // times the position held an object
  std::size_t absent = 0;        // times the position held null
  std::size_t self_dirty = 0;    // object's own flag was set
  std::size_t subtree_dirty = 0; // any flag in the subtree was set
  std::vector<std::unique_ptr<Node>> children;  // one per ChildField

  explicit Node(const ShapeDescriptor& s) : shape(&s) {
    children.resize(s.child_count());
  }
};

namespace {

const core::CheckpointInfo& info_of(const void* obj, std::size_t offset) {
  return *reinterpret_cast<const core::CheckpointInfo*>(
      static_cast<const char*>(obj) + offset);
}

}  // namespace

PatternInferencer::PatternInferencer(const ShapeDescriptor& shape)
    : shape_(&shape),
      root_(std::make_unique<Node>(shape)),
      obs_observations_(obs::counter("ickpt_infer_observations_total",
                                     {{"shape", shape.name}})) {}

PatternInferencer::~PatternInferencer() = default;

std::size_t PatternInferencer::observations() const noexcept {
  return observations_;
}

namespace {

/// Returns true when any flag in the subtree was set.
bool observe_node(PatternInferencer::Node& node, const void* obj) {
  ++node.reached;
  bool dirty = info_of(obj, node.shape->info_offset).modified();
  if (dirty) ++node.self_dirty;
  bool subtree_dirty = dirty;
  std::size_t child_index = 0;
  for (const Field& field : node.shape->fields) {
    const auto* child = std::get_if<ChildField>(&field);
    if (child == nullptr) continue;
    auto& slot = node.children[child_index++];
    if (slot == nullptr) slot = std::make_unique<PatternInferencer::Node>(*child->shape);
    const void* child_obj = *reinterpret_cast<const void* const*>(
        static_cast<const char*>(obj) + child->offset);
    if (child_obj == nullptr) {
      ++slot->absent;
      continue;
    }
    if (observe_node(*slot, child_obj)) subtree_dirty = true;
  }
  if (subtree_dirty) ++node.subtree_dirty;
  return subtree_dirty;
}

PatternNode infer_node(const PatternInferencer::Node& node,
                       const InferOptions& opts) {
  PatternNode out;
  if (node.reached == 0) {
    // Position never held an object across all observations.
    if (opts.assert_absent) return PatternNode::absent();
    return PatternNode::skipped();
  }
  if (node.subtree_dirty == 0) return PatternNode::skipped();
  if (node.self_dirty == 0) {
    out.self = ModStatus::kUnmodified;
  } else if (node.self_dirty == node.reached && opts.mark_always_modified) {
    out.self = ModStatus::kModified;
  } else {
    out.self = ModStatus::kMaybeModified;
  }
  out.children.reserve(node.children.size());
  for (const auto& child : node.children) {
    if (child == nullptr) {
      // ChildField never even examined (parent position never reached with
      // an object) — cannot happen when node.reached > 0, but stay safe.
      out.children.push_back(PatternNode::skipped());
    } else {
      out.children.push_back(infer_node(*child, opts));
    }
  }
  return out;
}

}  // namespace

void PatternInferencer::observe(const void* root) {
  if (root == nullptr) throw SpecError("observe: null root");
  observe_node(*root_, root);
  ++observations_;
  obs_observations_.inc();
}

PatternNode PatternInferencer::infer(const InferOptions& opts) const {
  if (observations_ == 0)
    throw SpecError("infer: no observations recorded");
  return infer_node(*root_, opts);
}

namespace {

/// Compares the effective claims of two pattern cursors at one shape
/// position and recurses. A null cursor is the compiler's default node
/// (kMaybeModified, no skip, no assertion); an ancestor skip covers the
/// whole subtree. Once both cursors are exhausted (or both subtrees
/// skipped) nothing below can differ, which also bounds recursive shapes.
std::size_t count_disagreements(const ShapeDescriptor& shape,
                                const PatternNode* a, bool a_covered,
                                const PatternNode* b, bool b_covered) {
  static const PatternNode kDefault{};
  const PatternNode& na = a != nullptr ? *a : kDefault;
  const PatternNode& nb = b != nullptr ? *b : kDefault;
  const bool sa = a_covered || na.skip;
  const bool sb = b_covered || nb.skip;

  bool disagree;
  if (sa != sb) {
    disagree = true;
  } else if (sa) {
    disagree = false;  // both inside a skipped subtree: claims coincide
  } else if (na.expect_absent != nb.expect_absent) {
    disagree = true;
  } else if (na.expect_absent) {
    disagree = false;  // both assert the position away
  } else {
    disagree = na.self != nb.self;
  }
  std::size_t n = disagree ? 1 : 0;

  if (sa && sb) return n;
  if (a == nullptr && b == nullptr) return n;
  if (!sa && !sb && na.expect_absent && nb.expect_absent) return n;

  std::size_t child_index = 0;
  for (const Field& field : shape.fields) {
    const auto* child = std::get_if<ChildField>(&field);
    if (child == nullptr) continue;
    const PatternNode* ca =
        child_index < na.children.size() ? &na.children[child_index] : nullptr;
    const PatternNode* cb =
        child_index < nb.children.size() ? &nb.children[child_index] : nullptr;
    n += count_disagreements(*child->shape, ca, sa, cb, sb);
    ++child_index;
  }
  return n;
}

/// Like count_disagreements, but one-sided and safety-focused: count only
/// positions where `active` neither tests nor records (ancestor skip, own
/// skip, or kUnmodified) while `observed` reports dirt. The observed cursor
/// is infer() output — fully populated wherever an object was reached, with
/// childless skip/absent leaves elsewhere — so recursion stops whenever the
/// observed side can no longer carry dirt, which also bounds recursive
/// shapes.
std::size_t count_unsafe(const ShapeDescriptor& shape,
                         const PatternNode* active, bool active_covered,
                         const PatternNode* observed, bool observed_covered) {
  static const PatternNode kDefault{};
  const PatternNode& na = active != nullptr ? *active : kDefault;
  const PatternNode& no = observed != nullptr ? *observed : kDefault;
  const bool sa = active_covered || na.skip;
  const bool so = observed_covered || no.skip;

  if (!sa && na.expect_absent) {
    // The plan asserts this subtree away; any object here trips kAssertNull
    // loudly, so nothing below can be *silently* dropped.
    return 0;
  }
  const bool drops = sa || na.self == ModStatus::kUnmodified;
  const bool dirty = !so && !no.expect_absent && no.self != ModStatus::kUnmodified;
  std::size_t n = (drops && dirty) ? 1 : 0;

  if (so || no.expect_absent || observed == nullptr) return n;

  std::size_t child_index = 0;
  for (const Field& field : shape.fields) {
    const auto* child = std::get_if<ChildField>(&field);
    if (child == nullptr) continue;
    const PatternNode* ca =
        child_index < na.children.size() ? &na.children[child_index] : nullptr;
    const PatternNode* co =
        child_index < no.children.size() ? &no.children[child_index] : nullptr;
    n += count_unsafe(*child->shape, ca, sa, co, so);
    ++child_index;
  }
  return n;
}

}  // namespace

std::size_t pattern_disagreements(const ShapeDescriptor& shape,
                                  const PatternNode& a, const PatternNode& b) {
  return count_disagreements(shape, &a, false, &b, false);
}

std::size_t pattern_unsafe_disagreements(const ShapeDescriptor& shape,
                                         const PatternNode& active,
                                         const PatternNode& observed) {
  return count_unsafe(shape, &active, false, &observed, false);
}

}  // namespace ickpt::spec
