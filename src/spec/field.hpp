// Field metadata: how the specializer sees a checkpointable class.
//
// A ShapeDescriptor plays the role of the paper's *specialization class*
// (§3.1): programmer-supplied structural facts about a class — which scalar
// fields record() writes, in which order, and which fields are checkpointable
// children — expressed as byte offsets into the concrete object. The plan
// compiler turns these facts plus a modification pattern into straight-line
// code with direct field access, exactly what JSpec produced from
// specialization classes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace ickpt::spec {

enum class ScalarKind : std::uint8_t {
  kU8,
  kBool,
  kI32,
  kI64,
  kU64,
  kF32,
  kF64,
};

/// One base-type field written by record() at `offset` into the object.
struct ScalarField {
  ScalarKind kind;
  std::size_t offset;
};

/// A contiguous run of int32 values at `offset`. The element count is either
/// fixed by the shape (count_offset == kNoCountField) or read at runtime from
/// an int32 field of the object. record() writes the count-bearing field
/// itself separately if it needs to.
struct I32ArrayField {
  static constexpr std::size_t kNoCountField = static_cast<std::size_t>(-1);
  std::size_t offset;
  std::size_t count_offset = kNoCountField;
  std::uint32_t fixed_count = 0;
};

struct ShapeDescriptor;

/// A checkpointable child stored as a concrete raw pointer at `offset`.
/// record() writes the child's id (varint); fold() traverses into it.
struct ChildField {
  std::size_t offset;
  const ShapeDescriptor* shape;
};

using Field = std::variant<ScalarField, I32ArrayField, ChildField>;

}  // namespace ickpt::spec
