// AdaptiveCheckpointer: the paper's full pipeline, run online.
//
// The paper derives specialized checkpointing routines from declarations a
// programmer writes per phase. This component closes the loop instead:
// it checkpoints generically while *observing* the dirty flags for a few
// epochs, infers the modification pattern, compiles the residual plan, and
// switches to it. If the structure later violates the learned pattern (a
// list grows, a skipped subtree gets dirtied into view structurally — any
// kAssertNull/kFollow failure), the checkpoint transparently falls back to
// the generic driver and re-enters the learning stage, so adaptation is
// never a correctness risk.
//
// A *statically inferred* pattern (verify::infer_pattern, built from the
// phase's interprocedural write set) can be supplied up front: the
// checkpointer then compiles it through the verifying gate and starts in
// Stage::kStatic — specialized from epoch one, no learning window. Dynamic
// observation still runs for the first observe_epochs as a cross-check; the
// number of positions where the learned pattern disagrees with the proven
// one is counted into the obs metrics (a disagreement means the workload
// under-exercises a position the analysis proves writable — exactly the
// unsound-learning hazard static inference removes). Structural drift from
// a static plan falls back the same way as from a learned one.
//
// Specialized output is byte-identical to generic output (the plan keeps
// every test the observations could not discharge), so consumers of the
// checkpoint stream cannot tell which stage wrote it.
#pragma once

#include <optional>
#include <span>

#include "core/checkpoint.hpp"
#include "io/byte_sink.hpp"
#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "spec/inference.hpp"

namespace ickpt::spec {

class AdaptiveCheckpointer {
 public:
  struct Options {
    /// Epochs observed before inferring and specializing (and, when a
    /// static pattern is supplied, epochs cross-checked against it).
    std::size_t observe_epochs = 4;
    InferOptions infer;
    CompileOptions compile;
    /// Worker threads for specialized capture: the compiled plan executes
    /// per-shard (run_plan_checkpoint_parallel) with segments merged in
    /// shard order, so the staged stream stays byte-identical to the
    /// serial plan run. 1 = serial. Observation/generic epochs always run
    /// serially (the inferencer is not concurrent).
    unsigned capture_threads = 1;
    /// Rolling re-observation: after this many specialized (or static)
    /// epochs, re-enter a counted observation window of observe_epochs
    /// epochs — flags are sampled before each plan run, so the window costs
    /// one extra flag walk per epoch, never a generic checkpoint. At the end
    /// of the window the freshly learned pattern is compared against the
    /// active one with pattern_unsafe_disagreements: nonzero means the
    /// workload has drifted *behaviourally* (the plan silently drops dirt
    /// that no kAssertNull would catch) and the checkpointer falls back to
    /// generic capture and re-learns, exactly as for structural drift.
    /// 0 disables rolling re-observation.
    std::size_t reobserve_interval = 0;
    /// A sound pattern constructed offline (verify::infer_pattern). The
    /// checkpointer takes a pre-built pattern, not a program + binding:
    /// spec cannot depend on verify (verify links against spec), so the
    /// caller runs the analysis and hands the result down. When set, the
    /// pattern is compiled at construction with CompileOptions::
    /// verify_pattern forced on and the checkpointer starts in
    /// Stage::kStatic.
    std::optional<PatternNode> static_pattern;
  };

  enum class Stage : std::uint8_t { kObserving, kSpecialized, kStatic };

  struct Roots {
    /// The structure roots as Checkpointable pointers (generic path) and as
    /// concrete pointers matching the shape (specialized path), same order.
    std::span<core::Checkpointable* const> bases;
    std::span<void* const> concretes;
  };

  struct Result {
    Stage stage_used = Stage::kObserving;
    /// True when the specialized plan hit a structure violation and the
    /// checkpoint was re-issued through the generic driver.
    bool fell_back = false;
    std::size_t bytes = 0;
  };

  explicit AdaptiveCheckpointer(const ShapeDescriptor& shape)
      : AdaptiveCheckpointer(shape, Options{}) {}
  AdaptiveCheckpointer(const ShapeDescriptor& shape, Options opts);

  /// Write one incremental checkpoint of `roots` at `epoch` into `d`.
  Result checkpoint(io::DataWriter& d, Epoch epoch, Roots roots);

  [[nodiscard]] Stage stage() const noexcept { return stage_; }
  /// Compiled plan, or nullptr while still observing.
  [[nodiscard]] const Plan* plan() const noexcept {
    return stage_ == Stage::kObserving ? nullptr : &plan_;
  }
  [[nodiscard]] std::size_t epochs_observed() const noexcept {
    return epochs_observed_;
  }
  /// Times the specialized plan was abandoned for a generic fallback.
  [[nodiscard]] std::size_t fallbacks() const noexcept { return fallbacks_; }
  /// True once the static pattern has been cross-checked against
  /// observe_epochs of dynamic observation.
  [[nodiscard]] bool crosschecked() const noexcept { return crosschecked_; }
  /// Positions where the dynamically learned pattern disagreed with the
  /// static one (0 until crosschecked(), and 0 forever without a static
  /// pattern).
  [[nodiscard]] std::size_t disagreements() const noexcept {
    return disagreements_;
  }
  /// Completed rolling re-observation windows (0 with reobserve_interval
  /// of 0).
  [[nodiscard]] std::size_t reobservations() const noexcept {
    return reobservations_;
  }

  /// Discard the learned (or supplied static) pattern and start observing
  /// afresh.
  void relearn();

 private:
  void run_generic(io::DataWriter& d, Epoch epoch, const Roots& roots);

  const ShapeDescriptor* shape_;
  Options opts_;
  Stage stage_ = Stage::kObserving;
  std::unique_ptr<PatternInferencer> inferencer_;
  std::size_t epochs_observed_ = 0;
  std::size_t fallbacks_ = 0;
  bool crosschecked_ = false;
  std::size_t disagreements_ = 0;
  /// The pattern the active plan was compiled from — what rolling
  /// re-observation windows compare freshly learned behaviour against.
  PatternNode active_pattern_;
  std::size_t epochs_since_reobserve_ = 0;
  bool reobserving_ = false;
  std::unique_ptr<PatternInferencer> reobserver_;
  std::size_t reobserve_epochs_seen_ = 0;
  std::size_t reobservations_ = 0;
  /// Captured at construction (same idiom as PatternInferencer): the
  /// re-observation window runs on the checkpoint hot path.
  obs::Counter obs_reobserve_epochs_;
  Plan plan_;
  std::unique_ptr<PlanExecutor> executor_;
  /// Reused staging buffer for specialized runs: clear() keeps capacity, so
  /// steady-state specialized epochs allocate nothing.
  io::VectorSink scratch_;
};

}  // namespace ickpt::spec
