// AdaptiveCheckpointer: the paper's full pipeline, run online.
//
// The paper derives specialized checkpointing routines from declarations a
// programmer writes per phase. This component closes the loop instead:
// it checkpoints generically while *observing* the dirty flags for a few
// epochs, infers the modification pattern, compiles the residual plan, and
// switches to it. If the structure later violates the learned pattern (a
// list grows, a skipped subtree gets dirtied into view structurally — any
// kAssertNull/kFollow failure), the checkpoint transparently falls back to
// the generic driver and re-enters the learning stage, so adaptation is
// never a correctness risk.
//
// Specialized output is byte-identical to generic output (the plan keeps
// every test the observations could not discharge), so consumers of the
// checkpoint stream cannot tell which stage wrote it.
#pragma once

#include <span>

#include "core/checkpoint.hpp"
#include "spec/compiler.hpp"
#include "spec/executor.hpp"
#include "spec/inference.hpp"

namespace ickpt::spec {

class AdaptiveCheckpointer {
 public:
  struct Options {
    /// Epochs observed before inferring and specializing.
    std::size_t observe_epochs = 4;
    InferOptions infer;
    CompileOptions compile;
  };

  enum class Stage : std::uint8_t { kObserving, kSpecialized };

  struct Roots {
    /// The structure roots as Checkpointable pointers (generic path) and as
    /// concrete pointers matching the shape (specialized path), same order.
    std::span<core::Checkpointable* const> bases;
    std::span<void* const> concretes;
  };

  struct Result {
    Stage stage_used = Stage::kObserving;
    /// True when the specialized plan hit a structure violation and the
    /// checkpoint was re-issued through the generic driver.
    bool fell_back = false;
    std::size_t bytes = 0;
  };

  explicit AdaptiveCheckpointer(const ShapeDescriptor& shape)
      : AdaptiveCheckpointer(shape, Options{}) {}
  AdaptiveCheckpointer(const ShapeDescriptor& shape, Options opts);

  /// Write one incremental checkpoint of `roots` at `epoch` into `d`.
  Result checkpoint(io::DataWriter& d, Epoch epoch, Roots roots);

  [[nodiscard]] Stage stage() const noexcept { return stage_; }
  /// Compiled plan, or nullptr while still observing.
  [[nodiscard]] const Plan* plan() const noexcept {
    return stage_ == Stage::kSpecialized ? &plan_ : nullptr;
  }
  [[nodiscard]] std::size_t epochs_observed() const noexcept {
    return epochs_observed_;
  }
  /// Times the specialized plan was abandoned for a generic fallback.
  [[nodiscard]] std::size_t fallbacks() const noexcept { return fallbacks_; }

  /// Discard the learned pattern and start observing afresh.
  void relearn();

 private:
  void run_generic(io::DataWriter& d, Epoch epoch, const Roots& roots);

  const ShapeDescriptor* shape_;
  Options opts_;
  Stage stage_ = Stage::kObserving;
  std::unique_ptr<PatternInferencer> inferencer_;
  std::size_t epochs_observed_ = 0;
  std::size_t fallbacks_ = 0;
  Plan plan_;
  std::unique_ptr<PlanExecutor> executor_;
};

}  // namespace ickpt::spec
