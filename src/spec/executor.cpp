#include "spec/executor.hpp"

#include <atomic>
#include <cstring>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/checkpoint_info.hpp"
#include "core/segment_merge.hpp"
#include "io/byte_sink.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace ickpt::spec {

namespace {

constexpr std::size_t kMaxStack = 256;

template <class T>
T load(const char* base, std::uint32_t offset) {
  T v;
  std::memcpy(&v, base + offset, sizeof(T));
  return v;
}

core::CheckpointInfo& info_at(char* base, std::uint32_t offset) {
  return *reinterpret_cast<core::CheckpointInfo*>(base + offset);
}

}  // namespace

PlanExecutor::PlanExecutor(const Plan& plan)
    : plan_(&plan),
      obs_runs_(obs::counter("ickpt_plan_runs_total",
                             {{"plan", plan.shape_name}})),
      obs_tests_performed_(obs::counter("ickpt_plan_tests_performed_total",
                                        {{"plan", plan.shape_name}})),
      obs_tests_elided_(obs::counter("ickpt_plan_tests_elided_total",
                                     {{"plan", plan.shape_name}})) {
  if (plan.max_depth + 1 >= kMaxStack)
    throw SpecError("plan nests deeper than the executor stack (" +
                    std::to_string(plan.max_depth) + ")");
  if (plan.ops.empty() || plan.ops.back().code != OpCode::kEnd)
    throw SpecError("malformed plan: missing end op");
  for (const Op& op : plan.ops)
    if (op.code == OpCode::kTestSkip) ++tests_per_run_;
  if (plan.nodes_covered > tests_per_run_)
    elided_per_run_ = plan.nodes_covered - tests_per_run_;
}

void PlanExecutor::run(void* root, io::DataWriter& d) const {
  const Op* ops = plan_->ops.data();
  char* cur = static_cast<char*>(root);
  char* stack[kMaxStack];
  std::size_t sp = 0;
  std::size_t ip = 0;
  for (;;) {
    const Op& op = ops[ip++];
    switch (op.code) {
      case OpCode::kTestSkip:
        if (!info_at(cur, op.a).modified()) ip += op.b;
        break;
      case OpCode::kWriteHeader: {
        d.write_u8(core::kRecordTag);
        d.write_varint(op.imm);
        d.write_varint(info_at(cur, op.a).id());
        break;
      }
      case OpCode::kWriteU8:
        d.write_u8(load<std::uint8_t>(cur, op.a));
        break;
      case OpCode::kWriteBool:
        d.write_bool(load<bool>(cur, op.a));
        break;
      case OpCode::kWriteI32:
        d.write_i32(load<std::int32_t>(cur, op.a));
        break;
      case OpCode::kWriteI32Var:
        d.write_varint_i64(load<std::int32_t>(cur, op.a));
        break;
      case OpCode::kWriteI64:
        d.write_i64(load<std::int64_t>(cur, op.a));
        break;
      case OpCode::kWriteU64:
        d.write_u64(load<std::uint64_t>(cur, op.a));
        break;
      case OpCode::kWriteF32:
        d.write_f32(load<float>(cur, op.a));
        break;
      case OpCode::kWriteF64:
        d.write_f64(load<double>(cur, op.a));
        break;
      case OpCode::kWriteI32ArrayFixed: {
        const char* base = cur + op.a;
        for (std::uint32_t i = 0; i < op.b; ++i)
          d.write_i32(load<std::int32_t>(base, i * 4));
        break;
      }
      case OpCode::kWriteI32Run:
        d.write_i32_run(reinterpret_cast<const std::int32_t*>(cur + op.a),
                        op.b);
        break;
      case OpCode::kWriteI32ArrayRuntime: {
        const std::int32_t count = load<std::int32_t>(cur, op.b);
        const char* base = cur + op.a;
        for (std::int32_t i = 0; i < count; ++i)
          d.write_i32(load<std::int32_t>(base,
                                         static_cast<std::uint32_t>(i) * 4));
        break;
      }
      case OpCode::kWriteChildId: {
        char* child = load<char*>(cur, op.a);
        d.write_varint(child != nullptr ? info_at(child, op.b).id()
                                        : kNullObjectId);
        break;
      }
      case OpCode::kResetFlag:
        info_at(cur, op.a).reset_modified();
        break;
      case OpCode::kPushChild: {
        char* child = load<char*>(cur, op.a);
        if (child == nullptr) {
          ip += op.b;
        } else {
          stack[sp++] = cur;
          cur = child;
        }
        break;
      }
      case OpCode::kPop:
        cur = stack[--sp];
        break;
      case OpCode::kFollow:
        for (std::uint32_t i = 0; i < op.b; ++i) {
          cur = load<char*>(cur, op.a);
          if (cur == nullptr)
            throw SpecError(
                "structure violates pattern: chain shorter than declared "
                "(plan for " +
                plan_->shape_name + ")");
        }
        break;
      case OpCode::kAssertNull:
        if (load<void*>(cur, op.a) != nullptr)
          throw SpecError(
              "structure violates pattern: child declared absent is present "
              "(plan for " +
              plan_->shape_name + ")");
        break;
      case OpCode::kEnd:
        obs_runs_.inc();
        obs_tests_performed_.inc(tests_per_run_);
        obs_tests_elided_.inc(elided_per_run_);
        return;
    }
  }
}

void PlanExecutor::run(void* root, io::DataWriter& d,
                       obs::CaptureProfile* prof) const {
  if (prof == nullptr) {
    run(root, d);
    return;
  }
  using P = obs::CaptureProfile;
  const std::uint64_t t0 = obs::trace_now_ns();
  run(root, d);
  const std::uint64_t elapsed = obs::trace_now_ns() - t0;
  prof->stage_ns[P::kSerialize] += elapsed;
  prof->busy_ns += elapsed;
  prof->plan_tests += tests_per_run_;
  prof->objects += plan_->nodes_covered;
}

void PlanExecutor::rebind_metrics() noexcept {
  obs_runs_ =
      obs::counter("ickpt_plan_runs_total", {{"plan", plan_->shape_name}});
  obs_tests_performed_ = obs::counter("ickpt_plan_tests_performed_total",
                                      {{"plan", plan_->shape_name}});
  obs_tests_elided_ = obs::counter("ickpt_plan_tests_elided_total",
                                   {{"plan", plan_->shape_name}});
}

void PlanExecutor::run_dry(void* root) const {
  const Op* ops = plan_->ops.data();
  char* cur = static_cast<char*>(root);
  char* stack[kMaxStack];
  std::size_t sp = 0;
  std::size_t ip = 0;
  for (;;) {
    const Op& op = ops[ip++];
    switch (op.code) {
      case OpCode::kTestSkip:
        if (!info_at(cur, op.a).modified()) ip += op.b;
        break;
      case OpCode::kPushChild: {
        char* child = load<char*>(cur, op.a);
        if (child == nullptr) {
          ip += op.b;
        } else {
          stack[sp++] = cur;
          cur = child;
        }
        break;
      }
      case OpCode::kPop:
        cur = stack[--sp];
        break;
      case OpCode::kFollow:
        for (std::uint32_t i = 0; i < op.b; ++i) {
          cur = load<char*>(cur, op.a);
          if (cur == nullptr)
            throw SpecError("structure violates pattern: chain shorter than "
                            "declared (dry run)");
        }
        break;
      case OpCode::kEnd:
        return;
      default:
        break;  // writes and resets are suppressed in a dry run
    }
  }
}

void run_plan_checkpoint(io::DataWriter& d, Epoch epoch,
                         std::span<void* const> roots,
                         const PlanExecutor& exec, core::Mode mode,
                         obs::CaptureProfile* profile) {
  const Plan& plan = exec.plan();
  d.write_u8(core::kStreamMagic);
  d.write_u8(core::kFormatVersion);
  d.write_u8(static_cast<std::uint8_t>(mode));
  d.write_u64(epoch);
  d.write_varint(roots.size());
  for (void* root : roots) {
    const auto* info = reinterpret_cast<const core::CheckpointInfo*>(
        static_cast<const char*>(root) + plan.root_info_offset);
    d.write_varint(info->id());
  }
  for (void* root : roots) exec.run(root, d, profile);
  d.write_u8(core::kEndTag);
  if (profile != nullptr) profile->epochs += 1;
}

void run_plan_checkpoint_parallel(io::DataWriter& d, Epoch epoch,
                                  std::span<void* const> roots,
                                  const PlanExecutor& exec, unsigned threads,
                                  core::Mode mode,
                                  obs::CaptureProfile* profile) {
  const std::size_t nroots = roots.size();
  if (static_cast<std::size_t>(threads) > nroots)
    threads = static_cast<unsigned>(nroots == 0 ? 1 : nroots);
  if (threads <= 1) {
    run_plan_checkpoint(d, epoch, roots, exec, mode, profile);
    return;
  }

  const Plan& plan = exec.plan();

  // Work items finer than the worker count so a skewed root range cannot
  // strand one worker with most of the records; item 0 is a single root so
  // the deferred header (emitted by the merge cursor just before the first
  // streamed byte) is unblocked almost immediately. Item-order
  // concatenation reproduces the serial layout byte for byte.
  const std::size_t nitems =
      std::min(nroots, static_cast<std::size_t>(threads) * 4);
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(nitems);
  ranges.emplace_back(0, 1);
  const std::size_t rest = nroots - 1;
  const std::size_t nrest = nitems - 1;
  for (std::size_t i = 0; i < nrest; ++i)
    ranges.emplace_back(1 + i * rest / nrest, 1 + (i + 1) * rest / nrest);

  // Per-item profiles (single writer each: whichever worker claims the
  // item), folded into *profile after the join — same discipline as
  // core::ParallelCheckpoint.
  std::vector<obs::CaptureProfile> item_profiles(
      profile != nullptr ? nitems : 0);

  auto emit_header = [&](io::DataWriter& w) {
    w.write_u8(core::kStreamMagic);
    w.write_u8(core::kFormatVersion);
    w.write_u8(static_cast<std::uint8_t>(mode));
    w.write_u64(epoch);
    w.write_varint(nroots);
    for (void* root : roots) {
      const auto* info = reinterpret_cast<const core::CheckpointInfo*>(
          static_cast<const char*>(root) + plan.root_info_offset);
      w.write_varint(info->id());
    }
  };
  core::SegmentMerge merge(d, nitems, emit_header);

  auto execute_item = [&](std::size_t i, std::size_t,
                          io::DataWriter& writer) -> std::size_t {
    obs::CaptureProfile* sp = profile != nullptr ? &item_profiles[i] : nullptr;
    const std::size_t before = writer.bytes_written();
    for (std::size_t r = ranges[i].first; r < ranges[i].second; ++r)
      exec.run(roots[r], writer, sp);
    return writer.bytes_written() - before;
  };

  core::StreamingShardRunner::Options ropts;
  ropts.threads = threads;
  ropts.backlog_budget =
      core::StreamingShardRunner::auto_backlog_budget(threads);
  const core::MergeRunResult rr =
      core::StreamingShardRunner::run(merge, nitems, ropts, execute_item);

  merge.finish();
  d.write_u8(core::kEndTag);

  if (profile != nullptr) {
    using P = obs::CaptureProfile;
    for (std::size_t i = 0; i < nitems; ++i) {
      item_profiles[i].shards = 1;
      if (rr.items[i].direct)
        item_profiles[i].direct_stream_bytes = rr.items[i].bytes;
      else
        item_profiles[i].shard_sink_bytes = rr.items[i].bytes;
      profile->add(item_profiles[i]);
    }
    profile->steal_attempts += rr.steal_attempts;
    profile->steal_failures += rr.steal_failures;
    profile->stage_ns[P::kMerge] += rr.merge_ns;
    profile->stage_ns[P::kMergeWait] += rr.wait_ns;
    profile->busy_ns += rr.merge_ns + rr.wait_ns;
    if (rr.buffered_peak_bytes > profile->merge_buffered_peak_bytes)
      profile->merge_buffered_peak_bytes = rr.buffered_peak_bytes;
    profile->epochs += 1;
  }
}

}  // namespace ickpt::spec
