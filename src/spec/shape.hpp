// ShapeDescriptor and its type-safe builder.
#pragma once

#include <array>
#include <memory>

#include "common/error.hpp"
#include "core/checkpointable.hpp"
#include "spec/field.hpp"

namespace ickpt::spec {

/// Structural description of one checkpointable class. Field order MUST
/// match the class's record() order (and the ChildField order must match
/// fold() order); the executors rely on it to emit byte-identical streams.
struct ShapeDescriptor {
  std::string name;
  TypeId type_id = 0;
  /// Offset of the embedded CheckpointInfo inside the concrete object.
  std::size_t info_offset = 0;
  std::vector<Field> fields;
  /// Adjust a concrete object pointer to its Checkpointable base (used only
  /// by structural validation, never on the hot path).
  const core::Checkpointable* (*to_base)(const void*) = nullptr;

  [[nodiscard]] std::size_t child_count() const noexcept {
    std::size_t n = 0;
    for (const Field& f : fields)
      if (std::holds_alternative<ChildField>(f)) ++n;
    return n;
  }
};

/// Builds a ShapeDescriptor from member pointers, computing offsets against
/// a caller-provided sample instance (portable: no offsetof on non-standard-
/// layout types, no fake objects).
template <class T>
class ShapeBuilder {
 public:
  /// `sample` is only used for address arithmetic during building.
  ShapeBuilder(std::string name, const T& sample)
      : sample_(&sample), shape_(std::make_unique<ShapeDescriptor>()) {
    shape_->name = std::move(name);
    shape_->type_id = T::kTypeId;
    shape_->info_offset = offset_of_bytes(&sample.info());
    shape_->to_base = +[](const void* p) -> const core::Checkpointable* {
      return static_cast<const core::Checkpointable*>(
          reinterpret_cast<const T*>(p));
    };
  }

  template <class M>
  ShapeBuilder& scalar(ScalarKind kind, M T::* member) {
    shape_->fields.push_back(
        ScalarField{kind, offset_of_bytes(&(sample_->*member))});
    return *this;
  }

  ShapeBuilder& i32(std::int32_t T::* member) {
    return scalar(ScalarKind::kI32, member);
  }
  ShapeBuilder& i64(std::int64_t T::* member) {
    return scalar(ScalarKind::kI64, member);
  }
  ShapeBuilder& u8(std::uint8_t T::* member) {
    return scalar(ScalarKind::kU8, member);
  }
  ShapeBuilder& boolean(bool T::* member) {
    return scalar(ScalarKind::kBool, member);
  }
  ShapeBuilder& f64(double T::* member) {
    return scalar(ScalarKind::kF64, member);
  }

  /// int32 array with element count read from `count_member` at runtime.
  template <std::size_t N>
  ShapeBuilder& i32_array(std::int32_t (T::*member)[N],
                          std::int32_t T::* count_member) {
    shape_->fields.push_back(
        I32ArrayField{offset_of_bytes(&(sample_->*member)[0]),
                      offset_of_bytes(&(sample_->*count_member)), 0});
    return *this;
  }

  template <std::size_t N>
  ShapeBuilder& i32_array(std::array<std::int32_t, N> T::* member,
                          std::int32_t T::* count_member) {
    shape_->fields.push_back(
        I32ArrayField{offset_of_bytes((sample_->*member).data()),
                      offset_of_bytes(&(sample_->*count_member)), 0});
    return *this;
  }

  /// Checkpointable child pointer; `shape` describes the child's class.
  template <class C>
  ShapeBuilder& child(C* T::* member, const ShapeDescriptor& shape) {
    if (shape.to_base == nullptr)
      throw SpecError("child shape '" + shape.name + "' is unfinished");
    shape_->fields.push_back(
        ChildField{offset_of_bytes(&(sample_->*member)), &shape});
    return *this;
  }

  /// Child pointer at an explicit byte offset (for children held in arrays,
  /// where no member pointer can name one slot). The caller computes the
  /// offset against the same sample instance passed to the constructor.
  ShapeBuilder& child_at(std::size_t offset, const ShapeDescriptor& shape) {
    if (shape.to_base == nullptr)
      throw SpecError("child shape '" + shape.name + "' is unfinished");
    shape_->fields.push_back(ChildField{offset, &shape});
    return *this;
  }

  /// Child pointer of the class's own type (recursive shapes: list next
  /// links, tree children). Resolved to the built descriptor in build().
  ShapeBuilder& self_child(T* T::* member) {
    self_fields_.push_back(shape_->fields.size());
    shape_->fields.push_back(
        ChildField{offset_of_bytes(&(sample_->*member)), nullptr});
    return *this;
  }

  [[nodiscard]] std::unique_ptr<ShapeDescriptor> build() {
    for (std::size_t index : self_fields_)
      std::get<ChildField>(shape_->fields[index]).shape = shape_.get();
    self_fields_.clear();
    return std::move(shape_);
  }

 private:
  template <class P>
  std::size_t offset_of_bytes(const P* member_addr) const {
    return static_cast<std::size_t>(
        reinterpret_cast<const char*>(member_addr) -
        reinterpret_cast<const char*>(sample_));
  }

  const T* sample_;
  std::unique_ptr<ShapeDescriptor> shape_;
  std::vector<std::size_t> self_fields_;
};

/// Walk the actual object graph under `root` (a concrete pointer matching
/// `shape`) and verify every reachable object's dynamic type matches the
/// shape tree. Throws SpecError on the first mismatch. Run this once before
/// trusting a compiled plan on a structure.
void validate_shape(const ShapeDescriptor& shape, const void* root);

}  // namespace ickpt::spec
