#include "spec/pattern_io.hpp"

#include <unordered_map>

namespace ickpt::spec {

namespace {

constexpr std::uint8_t kPatternMagic = 0x50;  // 'P'
constexpr std::uint8_t kPatternVersion = 1;
// Guard against absurd recursion from corrupt child counts.
constexpr std::uint32_t kMaxPatternDepth = 1 << 16;

class Fingerprinter {
 public:
  std::uint64_t run(const ShapeDescriptor& shape) {
    visit(shape);
    return hash_;
  }

 private:
  void mix(std::uint64_t v) {
    // FNV-1a over 8-byte words.
    hash_ ^= v;
    hash_ *= 0x100000001B3ull;
  }

  void visit(const ShapeDescriptor& shape) {
    auto [it, inserted] = seen_.emplace(&shape, seen_.size());
    if (!inserted) {
      // Recursive shape: mix a back-reference instead of recursing.
      mix(0xBACC0000u + it->second);
      return;
    }
    mix(shape.type_id);
    mix(shape.info_offset);
    mix(shape.fields.size());
    for (const Field& field : shape.fields) {
      if (const auto* s = std::get_if<ScalarField>(&field)) {
        mix(1);
        mix(static_cast<std::uint64_t>(s->kind));
        mix(s->offset);
      } else if (const auto* arr = std::get_if<I32ArrayField>(&field)) {
        mix(2);
        mix(arr->offset);
        mix(arr->count_offset);
        mix(arr->fixed_count);
      } else {
        const auto& child = std::get<ChildField>(field);
        mix(3);
        mix(child.offset);
        visit(*child.shape);
      }
    }
  }

  std::uint64_t hash_ = 0xCBF29CE484222325ull;
  std::unordered_map<const ShapeDescriptor*, std::size_t> seen_;
};

void save_node(io::DataWriter& d, const PatternNode& node) {
  std::uint8_t flags = 0;
  if (node.skip) flags |= 1;
  if (node.expect_absent) flags |= 2;
  if (node.array_count.has_value()) flags |= 4;
  d.write_u8(flags);
  d.write_u8(static_cast<std::uint8_t>(node.self));
  if (node.array_count.has_value()) d.write_varint(*node.array_count);
  d.write_varint(node.children.size());
  for (const PatternNode& child : node.children) save_node(d, child);
}

PatternNode load_node(io::DataReader& d, std::uint32_t depth) {
  if (depth > kMaxPatternDepth)
    throw CorruptionError("pattern nests implausibly deep");
  PatternNode node;
  std::uint8_t flags = d.read_u8();
  if ((flags & ~0x07u) != 0)
    throw CorruptionError("unknown pattern flags");
  node.skip = (flags & 1) != 0;
  node.expect_absent = (flags & 2) != 0;
  std::uint8_t self = d.read_u8();
  if (self > static_cast<std::uint8_t>(ModStatus::kModified))
    throw CorruptionError("invalid pattern status byte");
  node.self = static_cast<ModStatus>(self);
  if ((flags & 4) != 0)
    node.array_count = static_cast<std::uint32_t>(d.read_varint());
  std::uint64_t n = d.read_varint();
  if (n > 4096) throw CorruptionError("implausible pattern child count");
  node.children.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    node.children.push_back(load_node(d, depth + 1));
  return node;
}

}  // namespace

std::uint64_t shape_fingerprint(const ShapeDescriptor& shape) {
  return Fingerprinter().run(shape);
}

void save_pattern(io::DataWriter& d, const PatternNode& pattern,
                  const ShapeDescriptor& shape) {
  d.write_u8(kPatternMagic);
  d.write_u8(kPatternVersion);
  d.write_u64(shape_fingerprint(shape));
  save_node(d, pattern);
}

PatternNode load_pattern(io::DataReader& d, const ShapeDescriptor& expected) {
  if (d.read_u8() != kPatternMagic)
    throw CorruptionError("not a serialized pattern");
  std::uint8_t version = d.read_u8();
  if (version != kPatternVersion)
    throw CorruptionError("unsupported pattern version " +
                          std::to_string(version));
  std::uint64_t fp = d.read_u64();
  if (fp != shape_fingerprint(expected))
    throw SpecError(
        "pattern was saved against a different shape of '" + expected.name +
        "' — the class layout changed; re-infer or re-declare the pattern");
  return load_node(d, 0);
}

}  // namespace ickpt::spec
