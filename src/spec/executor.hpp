// PlanExecutor: run a compiled plan over concrete structure roots.
//
// The hot loop performs no virtual dispatch and no hashing: direct offset
// loads, an explicit pointer stack, and only the tests the pattern kept.
// Output is byte-identical to the generic driver for the same state
// (given a valid pattern), so recovery is oblivious to which path wrote a
// checkpoint — verified by the spec property tests.
#pragma once

#include <span>

#include "common/types.hpp"
#include "core/checkpoint_format.hpp"
#include "io/data_writer.hpp"
#include "obs/metrics.hpp"
#include "spec/plan.hpp"

namespace ickpt::obs {
struct CaptureProfile;
}

namespace ickpt::spec {

class PlanExecutor {
 public:
  explicit PlanExecutor(const Plan& plan);

  /// Emit the records of one structure instance. `root` must be a pointer to
  /// the concrete type the plan's shape describes.
  void run(void* root, io::DataWriter& d) const;

  /// Profiled variant: the whole run's wall accrues to kSerialize (a plan
  /// run IS serialization — the pattern already removed the per-object
  /// dispatch the other stages would measure), plan_tests advances by the
  /// plan's per-run test count, objects by its node cover. `prof == nullptr`
  /// falls through to the unprofiled run.
  void run(void* root, io::DataWriter& d, obs::CaptureProfile* prof) const;

  /// Traverse without writing or resetting flags (traversal-time metric,
  /// paper Table 1 last row).
  void run_dry(void* root) const;

  /// Re-resolve the per-plan metric handles against the currently installed
  /// registry (handles bind at construction; see docs/OBSERVABILITY.md).
  void rebind_metrics() noexcept;

  [[nodiscard]] const Plan& plan() const noexcept { return *plan_; }

 private:
  const Plan* plan_;
  /// Per-plan telemetry, labeled {plan=shape_name}; null no-op handles when
  /// no obs::Registry is installed. The per-run deltas are computed once
  /// here so run() pays three relaxed adds, not a walk of the op stream.
  obs::Counter obs_runs_;
  obs::Counter obs_tests_performed_;
  obs::Counter obs_tests_elided_;
  std::uint64_t tests_per_run_ = 0;
  std::uint64_t elided_per_run_ = 0;
};

/// Full specialized checkpoint: stream header + plan over every root + end
/// tag. Roots are concrete pointers matching the plan's shape.
void run_plan_checkpoint(io::DataWriter& d, Epoch epoch,
                         std::span<void* const> roots,
                         const PlanExecutor& exec,
                         core::Mode mode = core::Mode::kIncremental,
                         obs::CaptureProfile* profile = nullptr);

/// Sharded variant: partition the roots into contiguous shards, execute the
/// plan per shard on `threads` workers into private segments, and merge the
/// segments in shard order behind one stream header. Plans describe trees
/// (no cross-root sharing), so the output is byte-identical to
/// run_plan_checkpoint for every thread count — property-tested alongside
/// the generic parallel driver. A SpecError raised by any shard (structure
/// violating the pattern) is rethrown after the pool drains; as in the
/// serial case the caller must then discard the stream and fall back.
/// threads <= 1 is exactly run_plan_checkpoint.
void run_plan_checkpoint_parallel(io::DataWriter& d, Epoch epoch,
                                  std::span<void* const> roots,
                                  const PlanExecutor& exec, unsigned threads,
                                  core::Mode mode = core::Mode::kIncremental,
                                  obs::CaptureProfile* profile = nullptr);

}  // namespace ickpt::spec
