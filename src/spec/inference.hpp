// PatternInferencer: derive a modification pattern from observed behaviour.
//
// The paper's conclusion proposes "automatically construct[ing]
// specialization classes based on an analysis of the data modification
// pattern of the program". This module implements the dynamic variant:
// observe the modified flags of structure instances just before each
// checkpoint over several epochs, merge per shape position, and emit a
// PatternNode that (a) skips subtrees never seen modified, (b) drops tests
// on positions always/never seen modified, and (c) asserts absent children.
//
// Soundness caveat (same as any phase-based specialization): the inferred
// pattern is valid only while the program keeps behaving as observed. The
// compiled plan's kAssertNull ops catch structural drift; modification
// drift is the caller's contract, as it is for the paper's hand-declared
// specialization classes.
#pragma once

#include <memory>

#include "spec/pattern.hpp"
#include "spec/shape.hpp"

namespace ickpt::spec {

struct InferOptions {
  /// Emit kModified (record without testing) for positions dirty in every
  /// observation. Off = such positions keep their runtime test, which keeps
  /// the plan byte-identical to the generic driver even if behaviour drifts.
  bool mark_always_modified = false;
  /// Emit expect_absent assertions for child positions never seen present.
  bool assert_absent = true;
};

class PatternInferencer {
 public:
  explicit PatternInferencer(const ShapeDescriptor& shape);
  ~PatternInferencer();

  PatternInferencer(const PatternInferencer&) = delete;
  PatternInferencer& operator=(const PatternInferencer&) = delete;

  /// Record the dirty-flag state of one structure instance. Call before the
  /// checkpoint resets the flags. May be called for many instances per epoch
  /// and across many epochs; statistics accumulate per shape position.
  void observe(const void* root);

  /// Number of observe() calls so far.
  [[nodiscard]] std::size_t observations() const noexcept;

  /// Produce the pattern implied by every observation so far.
  [[nodiscard]] PatternNode infer(const InferOptions& opts = {}) const;

  /// Per-position accumulator; public for the implementation's free
  /// functions, not part of the supported API.
  struct Node;

 private:
  const ShapeDescriptor* shape_;
  std::unique_ptr<Node> root_;
  std::size_t observations_ = 0;
};

}  // namespace ickpt::spec
