// PatternInferencer: derive a modification pattern from observed behaviour.
//
// The paper's conclusion proposes "automatically construct[ing]
// specialization classes based on an analysis of the data modification
// pattern of the program". This module implements the dynamic variant:
// observe the modified flags of structure instances just before each
// checkpoint over several epochs, merge per shape position, and emit a
// PatternNode that (a) skips subtrees never seen modified, (b) drops tests
// on positions always/never seen modified, and (c) asserts absent children.
//
// Soundness caveat (same as any phase-based specialization): the inferred
// pattern is valid only while the program keeps behaving as observed. The
// compiled plan's kAssertNull ops catch structural drift; modification
// drift is the caller's contract, as it is for the paper's hand-declared
// specialization classes.
#pragma once

#include <memory>

#include "obs/metrics.hpp"
#include "spec/pattern.hpp"
#include "spec/shape.hpp"

namespace ickpt::spec {

struct InferOptions {
  /// Emit kModified (record without testing) for positions dirty in every
  /// observation. Off = such positions keep their runtime test, which keeps
  /// the plan byte-identical to the generic driver even if behaviour drifts.
  bool mark_always_modified = false;
  /// Emit expect_absent assertions for child positions never seen present.
  bool assert_absent = true;
};

class PatternInferencer {
 public:
  explicit PatternInferencer(const ShapeDescriptor& shape);
  ~PatternInferencer();

  PatternInferencer(const PatternInferencer&) = delete;
  PatternInferencer& operator=(const PatternInferencer&) = delete;

  /// Record the dirty-flag state of one structure instance. Call before the
  /// checkpoint resets the flags. May be called for many instances per epoch
  /// and across many epochs; statistics accumulate per shape position.
  void observe(const void* root);

  /// Number of observe() calls so far.
  [[nodiscard]] std::size_t observations() const noexcept;

  /// Produce the pattern implied by every observation so far.
  [[nodiscard]] PatternNode infer(const InferOptions& opts = {}) const;

  /// Per-position accumulator; public for the implementation's free
  /// functions, not part of the supported API.
  struct Node;

 private:
  const ShapeDescriptor* shape_;
  std::unique_ptr<Node> root_;
  std::size_t observations_ = 0;
  /// Captured at construction (manager/async_log idiom): observe() is on
  /// the learning-epoch hot path and must not pay a registry lookup per
  /// call.
  obs::Counter obs_observations_;
};

/// Number of shape-tree positions where two patterns for `shape` disagree
/// under the compiler's semantics: a position counts once when its
/// effective claim differs — in-a-skipped-subtree / asserted-absent /
/// self-status, with missing children defaulting to kMaybeModified and an
/// ancestor skip covering its subtree. This is the quantity
/// AdaptiveCheckpointer reports when cross-checking a statically inferred
/// pattern against the dynamically observed one.
[[nodiscard]] std::size_t pattern_disagreements(const ShapeDescriptor& shape,
                                                const PatternNode& a,
                                                const PatternNode& b);

/// Number of positions where the `active` pattern would *silently drop*
/// modifications that `observed` (a freshly inferred pattern) reports: the
/// active claim is covered by a skip or is kUnmodified — the two claims a
/// compiled plan neither tests nor records — while the observed pattern saw
/// the position dirty. Positions the active pattern asserts absent are not
/// counted: the plan's kAssertNull fails loudly there, so drift surfaces as
/// a structural fallback, not silent loss. This is the quantity
/// AdaptiveCheckpointer's rolling re-observation epochs act on: nonzero
/// means behavioural drift has made the active plan unsound.
[[nodiscard]] std::size_t pattern_unsafe_disagreements(
    const ShapeDescriptor& shape, const PatternNode& active,
    const PatternNode& observed);

}  // namespace ickpt::spec
