// The generic checkpoint driver (paper Fig. 1, class Checkpoint).
//
// This is the unspecialized implementation whose costs the paper's
// specialization removes: per object it performs virtual calls (info, record,
// fold), tests the modified flag, and traverses children even when the whole
// subtree is unmodified. Keep it this way — the benchmarks measure exactly
// this code against the specialized executors.
#pragma once

#include <functional>
#include <span>
#include <unordered_set>
#include <vector>

#include "core/checkpoint_format.hpp"
#include "core/checkpointable.hpp"
#include "core/claim_table.hpp"
#include "io/data_writer.hpp"

namespace ickpt::obs {
struct CaptureProfile;
}

namespace ickpt::core {

class ParallelCheckpoint;

struct CheckpointStats {
  std::uint64_t objects_visited = 0;
  std::uint64_t objects_recorded = 0;
};

/// Observation hooks for graph-walking tools (verify::check_graph): `enter`
/// fires before an object's children are folded, `leave` after, and
/// `revisit` when the cycle guard suppresses re-entry into an already
/// visited object — the event that distinguishes sharing and cycles from
/// tree traversal. Unset hooks cost one pointer test per object.
struct VisitHooks {
  std::function<void(Checkpointable&)> enter;
  std::function<void(Checkpointable&)> leave;
  std::function<void(Checkpointable&)> revisit;
};

struct CheckpointOptions {
  Mode mode = Mode::kIncremental;
  /// Traverse and test but write nothing and reset no flags. Used to measure
  /// pure traversal time (paper Table 1, last row).
  bool dry_run = false;
  /// Track visited ids and skip re-entry. The paper assumes acyclic,
  /// unshared structures; enable this when that is not guaranteed. Off by
  /// default because the set insertion would distort the benchmarks.
  /// The visited set lives for the whole checkpoint session, not per root:
  /// an object reachable from two roots is recorded under the first root
  /// only, and recovery re-links both parents to the single record.
  bool cycle_guard = false;
  /// Traversal observation hooks; must outlive the Checkpoint. revisit only
  /// fires when cycle_guard is on.
  const VisitHooks* hooks = nullptr;
  /// Stage-attribution accumulator (obs/profile.hpp); must outlive the
  /// Checkpoint and be written by one thread at a time. Null (the default)
  /// keeps the paper-faithful hot loop: the only cost is one pointer test
  /// per visit. Non-null routes every visit through the out-of-line
  /// profiled walker, which pays 2-4 clock reads per object.
  obs::CaptureProfile* profile = nullptr;
};

class Checkpoint {
 public:
  /// Writes the stream header for a checkpoint of `roots` at `epoch`.
  /// The caller must then invoke checkpoint() on each root, in order,
  /// and finally end().
  Checkpoint(io::DataWriter& d, Epoch epoch,
             std::span<Checkpointable* const> roots, CheckpointOptions opts);

  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  /// Paper Fig. 1: test, record, reset, fold.
  void checkpoint(Checkpointable& o) {
    if (collect_ != nullptr) {
      // Collect mode (collect_children): don't walk, just report the child.
      collect_->push_back(&o);
      return;
    }
    if (prof_ != nullptr) {
      checkpoint_profiled(o);
      return;
    }
    if (guard_) {
      // Local visited set first (a revisit within this walker is the common
      // case and stays lock-free); on a genuinely new id, a shard walker
      // additionally races for the cross-shard claim — losing it means
      // another shard already owns the object.
      if (!visited_.insert(o.info().id()).second ||
          (claims_ != nullptr && !claims_->claim(o.info().id()))) {
        if (revisit_ != nullptr) (*revisit_)(o);
        return;
      }
    }
    ++stats_.objects_visited;
    CheckpointInfo& info = o.info();
    if (mode_ == Mode::kFull || info.modified()) {
      ++stats_.objects_recorded;
      if (!dry_) {
        d_.write_u8(kRecordTag);
        d_.write_varint(o.type_id());
        d_.write_varint(info.id());
        o.record(d_);
        info.reset_modified();
      }
    }
    if (enter_ != nullptr) (*enter_)(o);
    o.fold(*this);
    if (leave_ != nullptr) (*leave_)(o);
  }

  /// Terminate the record stream. Must be called exactly once.
  void end();

  [[nodiscard]] const CheckpointStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// Ids seen so far; populated only when cycle_guard is enabled. Used by
  /// reachability queries (RecoveredState::prune_unreachable).
  [[nodiscard]] const std::unordered_set<ObjectId>& visited_ids()
      const noexcept {
    return visited_;
  }

  /// Convenience: header + every root + end, in one call.
  static CheckpointStats run(io::DataWriter& d, Epoch epoch,
                             std::span<Checkpointable* const> roots,
                             CheckpointOptions opts);

  /// Enumerate `o`'s direct fold targets without visiting them: runs
  /// o.fold() against a collect-mode walker that appends each child to
  /// `out` instead of recording or recursing. Used by ParallelCheckpoint
  /// to split a giant root's fold into per-child work items. Writes
  /// nothing, tests no flags, touches no visited state.
  static void collect_children(Checkpointable& o,
                               std::vector<Checkpointable*>& out);

 private:
  friend class ParallelCheckpoint;

  /// Internal (ParallelCheckpoint): a records-only shard walker. Writes no
  /// stream header at construction and no end tag from end() — the parallel
  /// merge stage frames the shard segments itself — and defers cross-shard
  /// visited decisions to `claims` (may be null when cycle_guard is off).
  Checkpoint(io::DataWriter& d, CheckpointOptions opts, ClaimTable* claims);

  /// Internal (ParallelCheckpoint): the records-only half of checkpoint() —
  /// guard/claim, dirty test, record, reset — without folding children.
  /// A split root's record and its per-child subtrees become separate work
  /// items; this entry point emits the root's own record for the first item
  /// while the children ride their own walkers.
  void checkpoint_record_only(Checkpointable& o);

  /// Out-of-line visit with stage attribution (only reached when
  /// opts.profile is set); recurses back through checkpoint() for children,
  /// so the dispatch costs one extra pointer test per object while
  /// profiling and nothing when not. `fold_children = false` is the
  /// profiled checkpoint_record_only.
  void checkpoint_profiled(Checkpointable& o, bool fold_children = true);

  /// Hoist the per-hook null checks out of the visit loop: each unset hook
  /// is a null pointer here, so a visit pays one pointer test per hook
  /// instead of re-deriving `hooks_ != nullptr && hooks_->x` every object.
  void bind_hooks(const VisitHooks* hooks) noexcept {
    if (hooks == nullptr) return;
    if (hooks->enter) enter_ = &hooks->enter;
    if (hooks->leave) leave_ = &hooks->leave;
    if (hooks->revisit) revisit_ = &hooks->revisit;
  }

  io::DataWriter& d_;
  Mode mode_;
  bool dry_;
  bool guard_;
  /// False for shard walkers: end() then emits no end tag.
  bool framing_ = true;
  /// Collect mode (collect_children): non-null diverts every checkpoint()
  /// call into this list. Tested first in the inline fast path — the same
  /// one-pointer-test cost rule as the hooks.
  std::vector<Checkpointable*>* collect_ = nullptr;
  const std::function<void(Checkpointable&)>* enter_ = nullptr;
  const std::function<void(Checkpointable&)>* leave_ = nullptr;
  const std::function<void(Checkpointable&)>* revisit_ = nullptr;
  ClaimTable* claims_ = nullptr;
  obs::CaptureProfile* prof_ = nullptr;
  bool ended_ = false;
  CheckpointStats stats_;
  std::unordered_set<ObjectId> visited_;
};

}  // namespace ickpt::core
