// CheckpointManager: the paper's checkpointing protocol attached to real
// stable storage.
//
// Policy: the first checkpoint and every `full_interval`-th one are full;
// the rest are incremental. recover() locates the most recent *usable* full
// checkpoint and replays it plus every incremental after it, streaming the
// log: one pass builds a payload-free index (seq, mode, segment
// boundaries), then each replay attempt re-streams to decode the chosen
// window's frames one at a time — peak memory is O(largest frame), not
// O(log size). With salvage
// enabled (the default) a mid-log corrupt frame no longer truncates the
// whole suffix: the scan resynchronizes past the damage, and recovery picks
// the newest checkpoint window that is contiguous (no corrupt region
// between its full checkpoint and its last incremental) — so damage costs
// at most one window, never checkpoints that a later full supersedes.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/async_log.hpp"
#include "core/checkpoint.hpp"
#include "core/health.hpp"
#include "core/recovery.hpp"
#include "io/byte_sink.hpp"
#include "io/stable_storage.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace ickpt::core {

struct ManagerOptions {
  /// Take a full checkpoint every N checkpoints (1 = always full).
  unsigned full_interval = 16;
  /// fsync each frame.
  bool durable = false;
  /// Forwarded to the generic driver.
  bool cycle_guard = false;
  /// Defer disk appends to a background thread (the paper's copy-on-write
  /// analog: construction still blocks, the copy to stable storage does
  /// not). Call flush() to make every taken checkpoint durable; take()
  /// reports the seq the frame *will* receive. A failed background append
  /// poisons the log: flush() and the next take() rethrow it with the
  /// failed seq in the message.
  bool async_io = false;
  /// Fault injection hook threaded into stable storage (tests).
  io::FaultPolicy* fault_policy = nullptr;
  /// Transient write-failure retry policy for stable storage.
  io::RetryPolicy retry{};
  /// Worker threads for checkpoint capture. 1 (default) keeps today's
  /// serial paper-faithful driver; N>1 shards the root set across N
  /// workers (core::ParallelCheckpoint) and merges the segments behind one
  /// stream header — the payload format and recovery are unchanged, and
  /// with cycle_guard off the merged stream is byte-identical to the
  /// serial one (tests/parallel_equiv_test.cpp).
  unsigned capture_threads = 1;
  /// Self-healing ladder (core/health.hpp). Off by default: every failure
  /// keeps today's fail-stop semantics. With heal.enabled the manager
  /// degrades to synchronous durable writes on AsyncLog poisoning, rotates
  /// the log to a quarantine file on persistent append failure, and re-arms
  /// the configured pipeline after heal.reheal_after clean epochs.
  HealPolicy heal{};
  /// Nonzero: seed for deterministic retry-backoff jitter, copied into
  /// retry.jitter_seed unless that is already set (io::backoff_delay).
  /// Give parallel shards / future tenants distinct seeds so congested
  /// devices don't see lockstep retry storms.
  std::uint64_t retry_jitter_seed = 0;
  /// Attribute every take()'s wall time to capture stages (root walk, dirty
  /// test, serialize, claim, merge, write, fsync) plus contention counters;
  /// read the result with last_capture_profile(). Off by default: the hot
  /// paths then pay exactly one pointer test per object/flush (the null
  /// profile rule, docs/OBSERVABILITY.md). Profiled captures additionally
  /// feed the ickpt_capture_stage_seconds{stage=...} histograms.
  bool profile = false;
  /// Slots in the always-on epoch flight recorder (rounded up to a power of
  /// two). The recorder itself cannot be disabled: recording one event per
  /// epoch boundary/health transition is a handful of relaxed atomic writes.
  std::size_t flightrec_capacity = 256;
};

struct TakeResult {
  Epoch epoch = 0;
  Mode mode = Mode::kFull;
  std::uint64_t seq = 0;
  std::size_t bytes = 0;
  CheckpointStats stats;
};

struct RecoverOptions {
  /// Resynchronize past mid-log corruption instead of truncating the log at
  /// the first bad byte.
  bool salvage = true;
  /// When the live log yields no usable window, fall back across the
  /// quarantined generations (`<path>.quarantine.<n>`, newest first) that
  /// rotation left behind, instead of failing immediately.
  bool walk_generations = true;
  /// Time-travel target: recover the state as of exactly this epoch instead
  /// of the newest one — the newest full checkpoint <= target anchors the
  /// window and the deltas replay up to (and including) the target's frame.
  /// A target not present on the log (chain) fails with
  /// EpochNotRetainedError naming the nearest retained neighbors; recovery
  /// never silently returns a different epoch's state.
  std::optional<Epoch> target_epoch;
};

/// Thrown when a requested target epoch is not on the log (or anywhere on
/// its generation chain): either the retention policy dropped it or it was
/// never taken. Carries the nearest epochs that *are* present so callers
/// (and the CLI) can offer them — a wrong-state success is never an option.
class EpochNotRetainedError : public CorruptionError {
 public:
  EpochNotRetainedError(const std::string& path, Epoch target,
                        std::optional<Epoch> below,
                        std::optional<Epoch> above);

  [[nodiscard]] Epoch target() const noexcept { return target_; }
  /// Largest retained epoch < target, if any.
  [[nodiscard]] std::optional<Epoch> below() const noexcept { return below_; }
  /// Smallest retained epoch > target, if any.
  [[nodiscard]] std::optional<Epoch> above() const noexcept { return above_; }

 private:
  Epoch target_;
  std::optional<Epoch> below_;
  std::optional<Epoch> above_;
};

struct RecoverResult {
  RecoveredState state;
  /// The file the state actually came from: the live log, or a quarantined
  /// generation when the live one had no usable window.
  std::string recovered_path;
  /// Files consulted before one yielded a usable window (1 = live log).
  std::size_t generations_tried = 1;
  std::size_t checkpoints_applied = 0;
  /// False when the log carried damage (torn tail or mid-log corruption).
  bool log_clean = true;
  /// Structured description of the damage and what salvage did (empty when
  /// the log is clean).
  std::string log_note;
  /// Valid frames the scan produced (including ones outside the applied
  /// window).
  std::size_t frames_total = 0;
  /// Valid frames that could not be applied: stranded behind a corrupt
  /// region without a usable full checkpoint, superseded trims, etc.
  std::size_t frames_dropped = 0;
  /// Corrupt regions salvage skipped, and the bytes inside them.
  std::size_t corrupt_regions = 0;
  std::uint64_t bytes_skipped = 0;
  /// Byte offset where the first damage begins (valid when !log_clean).
  std::uint64_t damage_offset = 0;
  /// Times the log was streamed end to end: one indexing pass plus one per
  /// replay attempt (a clean log recovers in exactly 2). Recovery memory is
  /// O(largest frame) regardless of log size — frame payloads are never
  /// materialized together.
  std::size_t stream_passes = 0;
};

/// What a compaction keeps. kSquashAll is the original garbage collection:
/// one full checkpoint of the newest state, history gone. kBinomial rewrites
/// the log to the RetentionPolicy schedule — every retained epoch
/// materialized as a full frame (seq == epoch), O(log n) frames total — and
/// declares the result in a `<log>.retain` manifest for fsck to audit.
enum class CompactPolicy : std::uint8_t { kSquashAll, kBinomial };

struct CompactOptions {
  CompactPolicy policy = CompactPolicy::kSquashAll;
  /// Fault injection for the replacement log's writes (tests).
  io::FaultPolicy* fault = nullptr;
};

struct CompactResult {
  /// Objects in the newest surviving full checkpoint.
  std::size_t objects = 0;
  std::size_t bytes_before = 0;
  std::size_t bytes_after = 0;
  /// Epochs the rewritten log carries, ascending ({newest} for kSquashAll).
  std::vector<Epoch> retained;
  /// kBinomial: scheduled epochs that could not be recovered (damaged
  /// windows) and were therefore dropped from the rewrite.
  std::size_t epochs_dropped = 0;
};

/// One epoch visible on a log's generation chain (CheckpointManager::
/// history): where its newest frame lives and how it was written.
struct HistoryEntry {
  Epoch epoch = 0;
  Mode mode = Mode::kFull;
  std::uint64_t seq = 0;
  std::size_t bytes = 0;
  /// The file holding the frame (live log or a quarantined generation).
  std::string file;
  bool live = true;
  /// A corrupt region precedes this frame (its window may be damaged).
  bool resync = false;
};

class CheckpointManager {
 public:
  CheckpointManager(std::string path, ManagerOptions opts = {});

  /// Checkpoint `roots`, choosing full/incremental per policy.
  TakeResult take(std::span<Checkpointable* const> roots);
  TakeResult take(Checkpointable& root);

  /// Force the mode regardless of policy (still advances the epoch).
  TakeResult take_with_mode(std::span<Checkpointable* const> roots, Mode mode);

  [[nodiscard]] Epoch next_epoch() const noexcept { return epoch_; }

  /// Current rung of the degradation ladder (kHealthy unless heal.enabled
  /// and something went wrong).
  [[nodiscard]] Health health() const noexcept { return health_; }

  /// Full point-in-time ladder state (rotations, reheals, lost epochs, the
  /// settled-epoch watermark, ...).
  [[nodiscard]] HealthStatus health_status() const;

  /// Stage attribution of the most recent take() (all-zero unless
  /// ManagerOptions::profile). In async mode the background write/fsync
  /// slices land here at the next flush(), not at take() return.
  [[nodiscard]] const obs::CaptureProfile& last_capture_profile()
      const noexcept {
    return last_profile_;
  }

  /// The always-on epoch flight recorder: one structured event per epoch
  /// boundary, health transition, fault, retry, rotation, rebase, poison,
  /// and reheal. Dumped automatically to flightrec_path() when the ladder
  /// reaches kFailed; dump it on demand with dump_flight_recorder().
  [[nodiscard]] const obs::FlightRecorder& flight_recorder() const noexcept {
    return flightrec_;
  }

  /// `<log>.flightrec` — where the recorder serializes on terminal failure.
  [[nodiscard]] std::string flightrec_path() const {
    return obs::FlightRecorder::default_path(storage_.path());
  }

  /// Serialize the flight recorder next to the log (flightrec_path()).
  void dump_flight_recorder() const;

  /// Re-resolve every cached metric handle (the manager's, stable
  /// storage's, the live sink's, and the async worker's) against the
  /// currently installed registry. Call while no take()/flush() is in
  /// flight. See docs/OBSERVABILITY.md, "Handle lifetime".
  void rebind_metrics();

  /// Drain any asynchronous appends; afterwards every taken checkpoint is
  /// on stable storage. No-op in synchronous mode. Rethrows a deferred
  /// background append failure (never swallowed).
  void flush();

  /// Recover the latest consistent state from a log file. When the live
  /// log has no usable window and opts.walk_generations is set, falls back
  /// across the quarantined generations rotation left behind (newest
  /// first). Throws CorruptionError when no file on the chain yields a
  /// usable full checkpoint — never returns a partial graph.
  static RecoverResult recover(const std::string& path,
                               const TypeRegistry& registry,
                               RecoverOptions opts = {});

  /// Time-travel: recover the state as of exactly epoch `target`.
  /// Equivalent to recover() with opts.target_epoch set — the newest full
  /// checkpoint <= target anchors the window, deltas replay up to the
  /// target's frame, and the generation chain is walked when the live log
  /// does not hold the target. Throws EpochNotRetainedError (naming the
  /// nearest retained neighbors) when no file on the chain carries the
  /// target, CorruptionError when it is present but its window is damaged.
  static RecoverResult recover_to_epoch(const std::string& path,
                                        const TypeRegistry& registry,
                                        Epoch target, RecoverOptions opts = {});

  /// Every epoch visible on the chain of `path` (live log first, then
  /// quarantined generations), ascending by epoch; within an epoch the live
  /// log's frame is listed first. This is the candidate list for
  /// recover_to_epoch — entries from damaged windows (resync) may still
  /// fail to recover.
  static std::vector<HistoryEntry> history(const std::string& path);

  /// Rewrite `path` per CompactOptions::policy: kSquashAll keeps one full
  /// checkpoint of the newest state (checkpoint-log garbage collection,
  /// removing any `<path>.retain` manifest); kBinomial keeps the
  /// RetentionPolicy schedule — each retained epoch recovered and rewritten
  /// as a full frame with seq == epoch — and publishes the `<path>.retain`
  /// manifest. Crash-atomic either way: the replacement is built in
  /// `<path>.compact`, fsynced, and renamed over the log (with a directory
  /// fsync) — a crash at any point loses at most the compaction, never the
  /// original log. Must not be called while a manager has the log open.
  static CompactResult compact(const std::string& path,
                               const TypeRegistry& registry,
                               CompactOptions opts);

  /// Back-compat shorthand for the kSquashAll policy.
  static CompactResult compact(const std::string& path,
                               const TypeRegistry& registry,
                               io::FaultPolicy* fault = nullptr);

 private:
  /// Handles into the installed obs::Registry, captured at construction
  /// (null no-op handles when none is installed — the whole struct then
  /// costs one pointer test per use). recover()/compact() are static and
  /// look their handles up per call instead.
  struct Metrics {
    Metrics();
    obs::Counter checkpoints_full;
    obs::Counter checkpoints_incremental;
    obs::Counter objects_visited;
    obs::Counter objects_recorded;
    obs::Counter objects_skipped;
    obs::Counter bytes_full;
    obs::Counter bytes_incremental;
    obs::Histogram build_seconds;
    obs::Gauge epoch;
    obs::Gauge health;
    obs::Counter degraded_epochs;
    obs::Counter reheals;
    obs::Counter lost_epochs;
  };

  /// Run one capture of `roots` into `sink` (clearing it first), serial or
  /// parallel per capture_threads. Factored out because healing re-captures
  /// (rebase fulls) for the same epoch after epoch_ has already advanced.
  /// `prof` (nullable) receives stage attribution for the walk.
  CheckpointStats capture(Epoch epoch, std::span<Checkpointable* const> roots,
                          Mode mode, io::VectorSink& sink,
                          obs::CaptureProfile* prof = nullptr);

  /// Synchronous append with the healing ladder behind it: in-place
  /// retries, then rotation + rebase, then kFailed. With heal.enabled off
  /// the first IoError rethrows untouched. `mode`/`stats` are updated when
  /// a rebase forces a full re-capture. Returns the frame's seq.
  std::uint64_t append_healed(std::span<Checkpointable* const> roots,
                              Epoch epoch, Mode& mode, io::VectorSink& sink,
                              CheckpointStats& stats);
  std::uint64_t heal_append_failure(std::span<Checkpointable* const> roots,
                                    Epoch epoch, Mode& mode,
                                    io::VectorSink& sink,
                                    CheckpointStats& stats,
                                    const std::string& first_error);

  /// AsyncLog poisoning absorbed: disarm async, force synchronous durable
  /// writes, account the lost epochs, enter kDegraded.
  void heal_poison(const std::string& what);

  void set_health(Health next);
  void note_settled(Epoch epoch);
  /// Degraded-rung bookkeeping at the end of every successful take().
  void on_epoch_complete();
  /// Return to the configured pipeline after reheal_after clean epochs.
  void reheal();

  ManagerOptions opts_;
  /// Declared before storage_/async_: the sink (and through it the async
  /// worker thread) records fault events into the recorder, so it must be
  /// destroyed only after the worker has joined and the sink is gone.
  /// Mutable so the const on-demand dump can record itself on the
  /// timeline; record() is lock-free and logically non-mutating (pure
  /// observability, like bumping a metric).
  mutable obs::FlightRecorder flightrec_;
  io::StableStorage storage_;
  std::unique_ptr<AsyncLog> async_;
  Epoch epoch_ = 0;
  Metrics metrics_;
  obs::CaptureProfile last_profile_;

  // Degradation-ladder state (all quiescent while heal.enabled is off).
  Health health_ = Health::kHealthy;
  bool needs_rebase_ = false;      ///< next take must be a full checkpoint
  bool healed_this_take_ = false;  ///< current take needed the ladder
  unsigned rotations_ = 0;
  unsigned reheals_ = 0;
  std::uint64_t degraded_epochs_ = 0;
  std::uint64_t lost_epochs_ = 0;
  unsigned clean_epochs_ = 0;
  bool any_settled_ = false;
  Epoch last_settled_ = 0;
  bool any_submitted_ = false;  ///< async: a submit succeeded since open
  Epoch last_submitted_ = 0;
  std::string last_error_;
};

}  // namespace ickpt::core
