// CheckpointManager: the paper's checkpointing protocol attached to real
// stable storage.
//
// Policy: the first checkpoint and every `full_interval`-th one are full;
// the rest are incremental. recover() locates the most recent full
// checkpoint in the longest valid log prefix and replays it plus every
// incremental after it.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "core/async_log.hpp"
#include "core/checkpoint.hpp"
#include "core/recovery.hpp"
#include "io/stable_storage.hpp"

namespace ickpt::core {

struct ManagerOptions {
  /// Take a full checkpoint every N checkpoints (1 = always full).
  unsigned full_interval = 16;
  /// fsync each frame.
  bool durable = false;
  /// Forwarded to the generic driver.
  bool cycle_guard = false;
  /// Defer disk appends to a background thread (the paper's copy-on-write
  /// analog: construction still blocks, the copy to stable storage does
  /// not). Call flush() to make every taken checkpoint durable; take()
  /// reports the seq the frame *will* receive.
  bool async_io = false;
};

struct TakeResult {
  Epoch epoch = 0;
  Mode mode = Mode::kFull;
  std::uint64_t seq = 0;
  std::size_t bytes = 0;
  CheckpointStats stats;
};

struct RecoverResult {
  RecoveredState state;
  std::size_t checkpoints_applied = 0;
  /// False when the log had a torn/corrupt tail that was dropped.
  bool log_clean = true;
  std::string log_note;
};

struct CompactResult {
  /// Objects in the surviving full checkpoint.
  std::size_t objects = 0;
  std::size_t bytes_before = 0;
  std::size_t bytes_after = 0;
};

class CheckpointManager {
 public:
  CheckpointManager(std::string path, ManagerOptions opts = {});

  /// Checkpoint `roots`, choosing full/incremental per policy.
  TakeResult take(std::span<Checkpointable* const> roots);
  TakeResult take(Checkpointable& root);

  /// Force the mode regardless of policy (still advances the epoch).
  TakeResult take_with_mode(std::span<Checkpointable* const> roots, Mode mode);

  [[nodiscard]] Epoch next_epoch() const noexcept { return epoch_; }

  /// Drain any asynchronous appends; afterwards every taken checkpoint is
  /// on stable storage. No-op in synchronous mode.
  void flush();

  /// Recover the latest consistent state from a log file.
  static RecoverResult recover(const std::string& path,
                               const TypeRegistry& registry);

  /// Rewrite `path` to a single full checkpoint of its recovered state,
  /// dropping the incremental history (checkpoint-log garbage collection).
  /// Must not be called while a manager has the log open.
  static CompactResult compact(const std::string& path,
                               const TypeRegistry& registry);

 private:
  ManagerOptions opts_;
  io::StableStorage storage_;
  std::unique_ptr<AsyncLog> async_;
  Epoch epoch_ = 0;
};

}  // namespace ickpt::core
