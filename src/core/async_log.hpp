// AsyncLog: non-blocking stable-storage appends.
//
// The paper notes that with a mechanism like copy-on-write "the application
// need not be blocked, at the expense of deferring the copy task to the
// system". The language-level analog: checkpoint construction snapshots the
// state into an in-memory buffer (fast, still blocking — it must be
// consistent), and the *disk append* is deferred to a background thread.
// Appends happen strictly in submission order, so the on-disk log is
// identical to what synchronous operation would produce.
//
// Errors from the background append are sticky: they re-throw on the next
// drain()/submit() so a failed write cannot be silently lost.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "io/stable_storage.hpp"

namespace ickpt::core {

class AsyncLog {
 public:
  explicit AsyncLog(io::StableStorage& storage);

  AsyncLog(const AsyncLog&) = delete;
  AsyncLog& operator=(const AsyncLog&) = delete;

  /// Drains outstanding appends, then stops the worker. Errors discovered
  /// during the final drain are swallowed here (call drain() beforehand to
  /// observe them).
  ~AsyncLog();

  /// Enqueue one checkpoint payload for appending. Returns immediately.
  /// Throws a previously deferred append error, if any.
  void submit(std::vector<std::uint8_t> payload);

  /// Block until every submitted payload is durably appended; rethrows the
  /// first deferred append error.
  void drain();

  [[nodiscard]] std::size_t pending() const;

 private:
  void worker();
  void rethrow_locked(std::unique_lock<std::mutex>& lock);

  io::StableStorage& storage_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::vector<std::uint8_t>> queue_;
  std::exception_ptr error_;
  bool in_flight_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace ickpt::core
