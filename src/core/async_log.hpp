// AsyncLog: non-blocking stable-storage appends.
//
// The paper notes that with a mechanism like copy-on-write "the application
// need not be blocked, at the expense of deferring the copy task to the
// system". The language-level analog: checkpoint construction snapshots the
// state into an in-memory buffer (fast, still blocking — it must be
// consistent), and the *disk append* is deferred to a background thread.
// Appends happen strictly in submission order, so the on-disk log is
// identical to what synchronous operation would produce.
//
// Error contract: a failed background append poisons the log. The error —
// tagged with the sequence number of the frame that failed — is rethrown
// from drain() and from every subsequent submit(), and stays sticky: once
// an append has been lost, silently continuing would punch a hole in the
// frame/epoch correspondence (later checkpoints would land under earlier
// sequence numbers), so the queued payloads are discarded and the caller
// must recover/reopen the log. An error that was never observed is
// reported on stderr from the destructor — it is never silently dropped.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "io/stable_storage.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace ickpt::core {

class AsyncLog {
 public:
  explicit AsyncLog(io::StableStorage& storage);

  AsyncLog(const AsyncLog&) = delete;
  AsyncLog& operator=(const AsyncLog&) = delete;

  /// Drains outstanding appends, then stops the worker. A pending append
  /// error that no drain()/submit() ever observed is printed to stderr.
  ~AsyncLog();

  /// Enqueue one checkpoint payload for appending. Returns immediately.
  /// Throws the deferred append error if the log is poisoned.
  void submit(std::vector<std::uint8_t> payload);

  /// Block until every submitted payload is durably appended; rethrows the
  /// deferred append error (with the failed frame's seq in the message).
  void drain();

  [[nodiscard]] std::size_t pending() const;

  /// True once a background append has failed; the log accepts no further
  /// payloads and every drain()/submit() rethrows the error.
  [[nodiscard]] bool poisoned() const;

  /// Queued payloads discarded when the log was poisoned (0 while healthy).
  /// The in-flight payload whose append failed is not counted. The healing
  /// manager adds 1 for it when accounting lost epochs.
  [[nodiscard]] std::size_t dropped() const;

  /// Toggle per-append stage attribution on the worker thread. While on,
  /// each background append accrues kWrite/kFsync (fsync split measured via
  /// the storage's FileSink profile hook) into an internal accumulator;
  /// collect it with take_profile() after drain(). While profiling, the
  /// worker temporarily points the storage's profile hook at a stack-local
  /// accumulator per append — the caller must not install its own storage
  /// profile concurrently.
  void set_profiling(bool on);

  /// Return and reset the accumulated background-append profile. Call after
  /// drain() for a consistent cut (otherwise an in-flight append's cost
  /// lands in the next take).
  [[nodiscard]] obs::CaptureProfile take_profile();

  /// Re-resolve metric handles against the currently installed registry
  /// (handles bind at construction). See docs/OBSERVABILITY.md.
  void rebind_metrics();

 private:
  void worker();
  void rethrow_locked(std::unique_lock<std::mutex>& lock);

  io::StableStorage& storage_;
  /// Null no-op handles when no obs::Registry is installed (one pointer
  /// test per use). Captured at construction.
  obs::Gauge obs_depth_;
  obs::Counter obs_appends_;
  obs::Histogram obs_append_seconds_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::vector<std::uint8_t>> queue_;
  bool profiling_ = false;
  obs::CaptureProfile worker_profile_;
  std::exception_ptr error_;
  bool error_observed_ = false;
  std::size_t dropped_ = 0;
  bool in_flight_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace ickpt::core
