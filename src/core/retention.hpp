// Binomial retention schedule for checkpoint history (time-travel recovery).
//
// Recovery used to treat the log as a crash artifact: only the newest
// consistent window mattered, and compact() squashed everything else. The
// retention policy turns the log into a bounded queryable history instead,
// following the spacing of binomial checkpointing (Siskind & Pearlmutter
// 2016/2017): keep a set of epochs whose density halves with age, so that
//
//   size    — at most 2*floor(log2(n)) + 3 epochs are retained when the
//             newest epoch is n (RetentionPolicy::max_retained, asserted
//             exactly by tests/retention_test.cpp up to n = 10^6);
//   replay  — restoring *any* epoch t (retained or not) from its nearest
//             retained ancestor replays fewer than 2*granularity(n - t)
//             epochs, i.e. the cost of reaching a moment of age d is O(d)
//             with constant < 2, and retained epochs cost one frame;
//   monotonicity — the schedule only ever *drops* epochs as n advances: an
//             epoch dropped at n is never retained again at any n' > n, so
//             successive policy compactions always find the epochs they
//             want still present.
//
// The rule: epoch e is retained while the newest epoch is n iff e == n or
// e is a multiple of granularity(n - e), where granularity(d) is the
// largest power of two <= d. Epoch 0 (genesis) is always retained.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ickpt::core {

class RetentionPolicy {
 public:
  /// Largest power of two <= d. Requires d >= 1.
  static std::uint64_t granularity(std::uint64_t d) noexcept;

  /// True when epoch e is retained while the newest epoch is n. False for
  /// e > n. Monotone in n: once false for some n, false for every n' > n.
  static bool retained(Epoch e, Epoch n) noexcept;

  /// Every retained epoch for newest epoch n, ascending (always contains 0
  /// and n). O(log n) time and space — never enumerates [0, n].
  static std::vector<Epoch> schedule(Epoch n);

  /// Closed-form bound on schedule(n).size(): 2*floor(log2(n)) + 3 for
  /// n >= 1, and 1 for n == 0. Tight (reached for some n).
  static std::size_t max_retained(Epoch n) noexcept;

  /// Upper bound on the replay distance from the nearest retained epoch
  /// <= t to t itself: strictly fewer than 2*granularity(n - t) epochs
  /// (0 when t == n or t is retained). This is the "bounded worst-case
  /// replay" half of the binomial trade: reaching a moment of age d costs
  /// less than 2*bit_floor(d) <= 2d replays.
  static Epoch replay_bound(Epoch t, Epoch n) noexcept;
};

/// Sidecar declaration a policy compaction leaves next to the log
/// (`<log>.retain`): which epochs the rewrite kept and what the newest
/// epoch was when the schedule was computed. The checkpoint byte format is
/// untouched — retention only selects frames — so this file is how fsck
/// can tell a deliberately thinned history from a damaged one: any epoch
/// <= `newest` present in the log but absent from `epochs` is a
/// half-applied policy, and any declared epoch missing from the log is
/// lost history. Schedule monotonicity makes a stale manifest (from an
/// older compaction that crashed before updating it) conservative rather
/// than wrong: later schedules only ever drop epochs the stale manifest
/// already declared.
struct RetentionManifest {
  /// Newest epoch on the log when the schedule was computed.
  Epoch newest = 0;
  /// The epochs the compaction actually wrote, ascending.
  std::vector<Epoch> epochs;

  [[nodiscard]] bool declares(Epoch e) const;

  /// `<log>.retain`.
  static std::string path_for(const std::string& log_path);

  /// Load the manifest next to `log_path`; nullopt when none exists.
  /// Throws CorruptionError on an unparseable manifest.
  static std::optional<RetentionManifest> load(const std::string& log_path);

  /// Atomically publish this manifest next to `log_path` (temp + rename +
  /// directory fsync, the same publish step the compacted log uses).
  void save(const std::string& log_path) const;

  /// Delete the manifest next to `log_path` (squash compactions drop the
  /// history, so the declaration must go with it). Missing file is fine.
  static void remove(const std::string& log_path);
};

}  // namespace ickpt::core
