#include "core/segment_merge.hpp"

#include <exception>
#include <thread>

#include "io/byte_sink.hpp"
#include "obs/trace.hpp"

namespace ickpt::core {

SegmentMerge::SegmentMerge(io::DataWriter& d, std::size_t nitems,
                           std::function<void(io::DataWriter&)> emit_header)
    : d_(d), emit_header_(std::move(emit_header)), items_(nitems) {}

void SegmentMerge::publish(std::size_t i, std::vector<std::uint8_t>&& bytes) {
  Item& it = items_[i];
  const std::size_t n = bytes.size();
  reserve_hint_.store(n, std::memory_order_relaxed);
  segment_bytes_.fetch_add(n, std::memory_order_relaxed);
  const std::size_t backlog =
      backlog_.fetch_add(n, std::memory_order_acq_rel) + n;
  it.bytes = std::move(bytes);
  it.state.store(kPublished, std::memory_order_release);
  // Sample the backlog high-water on publish — its maximum is only ever
  // attained right after an add. The frontier item is excluded: its bytes
  // are about to stream, so they are not out-of-order volume.
  if (i != frontier_.load(std::memory_order_acquire)) {
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (backlog > peak && !peak_.compare_exchange_weak(
                                 peak, backlog, std::memory_order_relaxed)) {
    }
  }
}

void SegmentMerge::drain_locked() {
  std::size_t f = frontier_.load(std::memory_order_relaxed);
  if (f >= items_.size() ||
      items_[f].state.load(std::memory_order_acquire) != kPublished) {
    return;
  }
  const std::uint64_t t0 = obs::trace_now_ns();
  do {
    Item& it = items_[f];
    if (!header_written_) {
      emit_header_(d_);
      header_written_ = true;
    }
    if (!it.bytes.empty()) {
      d_.write_bytes(it.bytes.data(), it.bytes.size());
      backlog_.fetch_sub(it.bytes.size(), std::memory_order_acq_rel);
      std::vector<std::uint8_t>().swap(it.bytes);
    }
    it.state.store(kStreamed, std::memory_order_release);
    frontier_.store(++f, std::memory_order_release);
  } while (f < items_.size() &&
           items_[f].state.load(std::memory_order_acquire) == kPublished);
  merge_ns_.fetch_add(obs::trace_now_ns() - t0, std::memory_order_relaxed);
}

void SegmentMerge::try_drain() {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  drain_locked();
}

std::optional<SegmentMerge::Direct> SegmentMerge::try_direct(std::size_t i) {
  // Cheap pre-checks without the lock; re-validated under it.
  if (frontier_.load(std::memory_order_acquire) != i) return std::nullopt;
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return std::nullopt;
  // header_written_ implies item 0 already streamed, so i > 0 here: item 0
  // always takes the buffered path, which is what keeps a pre-header worker
  // throw byte-free in the caller's sink.
  if (!header_written_ || frontier_.load(std::memory_order_relaxed) != i) {
    return std::nullopt;
  }
  Direct grant(*this, i, std::move(lock));
  grant.d_ = &d_;
  return std::optional<Direct>(std::move(grant));
}

void SegmentMerge::Direct::commit() {
  m_->items_[item_].state.store(kStreamed, std::memory_order_release);
  m_->frontier_.store(item_ + 1, std::memory_order_release);
  m_->direct_items_.fetch_add(1, std::memory_order_relaxed);
  m_->drain_locked();  // stream whatever this item was blocking
  lock_.unlock();
}

void SegmentMerge::finish() {
  std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
  if (!header_written_) {
    emit_header_(d_);
    header_written_ = true;
  }
}

std::size_t StreamingShardRunner::auto_backlog_budget(
    std::size_t threads) noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0 || threads <= hw) return SIZE_MAX;
  return 0;
}

MergeRunResult StreamingShardRunner::run(SegmentMerge& merge,
                                         std::size_t nitems,
                                         const Options& opts,
                                         const Execute& execute) {
  MergeRunResult out;
  out.items.resize(nitems);
  if (nitems == 0) return out;
  const std::size_t nthreads =
      opts.threads == 0 ? 1 : (opts.threads < nitems ? opts.threads : nitems);

  struct alignas(64) Cursor {
    std::atomic<std::size_t> next{0};
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  std::vector<Cursor> cursors(nthreads);
  const std::size_t base = nitems / nthreads;
  const std::size_t extra = nitems % nthreads;
  std::size_t at = 0;
  for (std::size_t w = 0; w < nthreads; ++w) {
    const std::size_t len = base + (w < extra ? 1 : 0);
    cursors[w].begin = at;
    cursors[w].next.store(at, std::memory_order_relaxed);
    cursors[w].end = at + len;
    at += len;
  }

  auto taken = std::make_unique<std::atomic<bool>[]>(nitems);
  for (std::size_t i = 0; i < nitems; ++i)
    taken[i].store(false, std::memory_order_relaxed);
  std::atomic<std::size_t> remaining{nitems};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto try_take = [&](std::size_t i) {
    bool expected = false;
    if (taken[i].compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      remaining.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    return false;
  };

  // Scan a cursor's block for the next unclaimed item. The cursor only
  // moves forward past items that are already taken (possibly out-of-band
  // by the frontier preference), so an unclaimed item is never skipped.
  auto take_from = [&](Cursor& c) -> std::size_t {
    for (;;) {
      if (c.next.load(std::memory_order_relaxed) >= c.end) return SIZE_MAX;
      const std::size_t i = c.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= c.end) return SIZE_MAX;
      if (try_take(i)) return i;
    }
  };

  struct Tally {
    std::uint64_t steals = 0, attempts = 0, failures = 0;
  };
  std::vector<Tally> tallies(nthreads);

  auto worker_fn = [&](std::size_t w) {
    Tally& tally = tallies[w];
    io::VectorSink sink;
    try {
      for (;;) {
        if (failed.load(std::memory_order_acquire)) break;
        std::size_t item = SIZE_MAX;
        bool stolen = false;
        // Priority 1: the frontier item — getting it done is the only way
        // the stream (and everyone's direct path) moves forward.
        const std::size_t f = merge.frontier();
        if (f < nitems && !taken[f].load(std::memory_order_acquire) &&
            try_take(f)) {
          item = f;
          stolen = f < cursors[w].begin || f >= cursors[w].end;
          if (stolen) ++tally.steals;
        }
        if (item == SIZE_MAX) {
          if (remaining.load(std::memory_order_acquire) == 0) break;
          // Priority 2: over budget — recording further ahead of the
          // frontier only grows memory; help drain and let the frontier
          // owner run (the oversubscribed-box policy).
          if (merge.backlog_bytes() > opts.backlog_budget) {
            merge.try_drain();
            std::this_thread::yield();
            continue;
          }
          // Priority 3: own block, then steal.
          item = take_from(cursors[w]);
          if (item == SIZE_MAX) {
            for (std::size_t v = 1; v < nthreads && item == SIZE_MAX; ++v) {
              Cursor& victim = cursors[(w + v) % nthreads];
              ++tally.attempts;
              item = take_from(victim);
              if (item == SIZE_MAX) ++tally.failures;
            }
            if (item == SIZE_MAX) {
              if (remaining.load(std::memory_order_acquire) == 0) break;
              std::this_thread::yield();  // lost a race; re-scan
              continue;
            }
            stolen = true;
            ++tally.steals;
          }
        }

        bool direct = false;
        std::size_t bytes = 0;
        if (auto grant = merge.try_direct(item)) {
          bytes = execute(item, w, grant->writer());
          grant->commit();
          direct = true;
        } else {
          sink.clear();
          std::size_t hint = merge.reserve_hint();
          if (hint < opts.reserve_floor) hint = opts.reserve_floor;
          if (hint != 0) sink.reserve(hint);
          {
            io::DataWriter dw(sink);
            bytes = execute(item, w, dw);
            dw.flush();
          }
          merge.publish(item, sink.take());
        }
        out.items[item] = MergeItemResult{w, stolen, direct, bytes};
        if (opts.item_hook) opts.item_hook(item);
        if (!direct) merge.try_drain();
      }
    } catch (...) {
      failed.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lock(err_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  for (std::size_t w = 1; w < nthreads; ++w) pool.emplace_back(worker_fn, w);
  worker_fn(0);
  // kMergeWait: the coordinator ran dry; everything from here to the join
  // is waiting on the slowest workers.
  const std::uint64_t wait0 = obs::trace_now_ns();
  for (auto& t : pool) t.join();
  out.wait_ns = obs::trace_now_ns() - wait0;
  if (first_error) std::rethrow_exception(first_error);

  for (const Tally& t : tallies) {
    out.steals += t.steals;
    out.steal_attempts += t.attempts;
    out.steal_failures += t.failures;
  }
  out.merge_ns = merge.merge_ns();
  out.direct_items = merge.direct_items();
  out.segment_bytes = merge.segment_bytes();
  out.buffered_peak_bytes = merge.buffered_peak_bytes();
  for (const MergeItemResult& r : out.items)
    if (r.direct) out.direct_bytes += r.bytes;
  return out;
}

}  // namespace ickpt::core
