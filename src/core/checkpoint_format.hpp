// On-the-wire layout of one checkpoint payload (the bytes inside one
// stable-storage frame). Shared by the generic driver (core/checkpoint.hpp),
// recovery (core/recovery.hpp), and both specialized executors (src/spec/),
// which must emit byte-identical streams for the same state.
//
//   header:  [u8 kStreamMagic][u8 version][u8 mode][u64 epoch]
//            [varint nroots][varint root id]*
//   records: ([u8 kRecordTag][varint type_id][varint object_id]
//             <record() payload, format defined by the class>)*
//   end:     [u8 kEndTag]
//
// Record payloads carry no length prefix: restore_record() mirrors record()
// exactly, and the frame CRC already guards integrity. This matches the
// paper's raw DataOutputStream encoding.
#pragma once

#include <cstdint>

namespace ickpt::core {

inline constexpr std::uint8_t kStreamMagic = 0xC5;
inline constexpr std::uint8_t kFormatVersion = 1;

enum class Mode : std::uint8_t {
  kFull = 0,         // record every object (paper: "full checkpointing")
  kIncremental = 1,  // record only objects whose modified flag is set
};

inline constexpr std::uint8_t kRecordTag = 0x01;
inline constexpr std::uint8_t kEndTag = 0x00;

}  // namespace ickpt::core
