// TypeRegistry: recovery's substitute for reflection.
//
// C++ cannot discover a class from a byte stream, so every checkpointable
// class registers a TypeId and a factory that reconstructs an empty instance
// with a preserved ObjectId (via the RestoreTag constructor). The TypeId is
// written in every record header; recovery looks up the factory here.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/checkpointable.hpp"

namespace ickpt::core {

class TypeRegistry {
 public:
  using Factory = std::unique_ptr<Checkpointable> (*)(ObjectId);

  struct Entry {
    std::string name;
    Factory factory = nullptr;
  };

  /// Register with an explicit factory.
  void register_type(TypeId id, std::string name, Factory factory) {
    auto [it, inserted] = types_.emplace(id, Entry{std::move(name), factory});
    if (!inserted)
      throw TypeError("TypeId " + std::to_string(id) +
                      " registered twice (existing: " + it->second.name + ")");
  }

  /// Register a class providing `T(RestoreTag, ObjectId)` and a static
  /// `kTypeId`/`kTypeName`.
  template <class T>
  void register_type() {
    register_type(T::kTypeId, T::kTypeName, [](ObjectId oid) {
      return std::unique_ptr<Checkpointable>(new T(RestoreTag{}, oid));
    });
  }

  [[nodiscard]] const Entry& lookup(TypeId id) const {
    auto it = types_.find(id);
    if (it == types_.end())
      throw TypeError("unregistered TypeId " + std::to_string(id));
    return it->second;
  }

  [[nodiscard]] bool contains(TypeId id) const noexcept {
    return types_.count(id) != 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return types_.size(); }

 private:
  std::unordered_map<TypeId, Entry> types_;
};

}  // namespace ickpt::core
