#include "core/async_log.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace ickpt::core {

AsyncLog::AsyncLog(io::StableStorage& storage) : storage_(storage) {
  thread_ = std::thread([this] { worker(); });
}

AsyncLog::~AsyncLog() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Destructors cannot throw; an append failure nobody drained must still
  // not vanish silently.
  if (error_ != nullptr && !error_observed_) {
    try {
      std::rethrow_exception(error_);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "ickpt: AsyncLog destroyed with an unobserved append "
                   "failure (%zu queued payload(s) dropped): %s\n",
                   dropped_, e.what());
    } catch (...) {
      std::fprintf(stderr,
                   "ickpt: AsyncLog destroyed with an unobserved append "
                   "failure (%zu queued payload(s) dropped)\n",
                   dropped_);
    }
  }
}

void AsyncLog::rethrow_locked(std::unique_lock<std::mutex>&) {
  // The error stays sticky: a lost append leaves a hole in the frame/epoch
  // correspondence that appending more frames would silently paper over.
  if (error_ != nullptr) {
    error_observed_ = true;
    std::rethrow_exception(error_);
  }
}

void AsyncLog::submit(std::vector<std::uint8_t> payload) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    rethrow_locked(lock);
    queue_.push_back(std::move(payload));
  }
  work_cv_.notify_one();
}

void AsyncLog::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && !in_flight_) || error_ != nullptr;
  });
  rethrow_locked(lock);
}

std::size_t AsyncLog::pending() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size() + (in_flight_ ? 1 : 0);
}

bool AsyncLog::poisoned() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return error_ != nullptr;
}

void AsyncLog::worker() {
  for (;;) {
    std::vector<std::uint8_t> payload;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      payload = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
    }
    // The seq this frame will carry; appends are FIFO so nothing else can
    // claim it first.
    const std::uint64_t seq = storage_.next_seq();
    std::exception_ptr error;
    try {
      storage_.append(payload);
    } catch (const std::exception& e) {
      error = std::make_exception_ptr(
          IoError("async append of frame seq " + std::to_string(seq) +
                  " failed: " + e.what()));
    } catch (...) {
      error = std::make_exception_ptr(IoError(
          "async append of frame seq " + std::to_string(seq) + " failed"));
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      in_flight_ = false;
      if (error != nullptr && error_ == nullptr) {
        error_ = error;
        // Appending the rest would assign them earlier seqs than the
        // epochs they were taken for; drop them and fail stop.
        dropped_ = queue_.size();
        queue_.clear();
      }
    }
    idle_cv_.notify_all();
  }
}

}  // namespace ickpt::core
