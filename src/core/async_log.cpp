#include "core/async_log.hpp"

#include <chrono>
#include <cstdio>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace ickpt::core {

AsyncLog::AsyncLog(io::StableStorage& storage)
    : storage_(storage),
      obs_depth_(obs::gauge("ickpt_async_queue_depth")),
      obs_appends_(obs::counter("ickpt_async_appends_total")),
      obs_append_seconds_(obs::histogram("ickpt_async_append_seconds")) {
  thread_ = std::thread([this] { worker(); });
}

AsyncLog::~AsyncLog() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Destructors cannot throw; an append failure nobody drained must still
  // not vanish silently. It is counted and traced for the telemetry
  // pipeline *and* printed to stderr — an operator without a registry
  // installed still sees it.
  if (error_ != nullptr && !error_observed_) {
    obs::counter("ickpt_async_unobserved_errors_total").inc();
    try {
      std::rethrow_exception(error_);
    } catch (const std::exception& e) {
      obs::instant("async.unobserved_error", "async", e.what());
      std::fprintf(stderr,
                   "ickpt: AsyncLog destroyed with an unobserved append "
                   "failure (%zu queued payload(s) dropped): %s\n",
                   dropped_, e.what());
    } catch (...) {
      obs::instant("async.unobserved_error", "async");
      std::fprintf(stderr,
                   "ickpt: AsyncLog destroyed with an unobserved append "
                   "failure (%zu queued payload(s) dropped)\n",
                   dropped_);
    }
  }
}

void AsyncLog::rethrow_locked(std::unique_lock<std::mutex>&) {
  // The error stays sticky: a lost append leaves a hole in the frame/epoch
  // correspondence that appending more frames would silently paper over.
  if (error_ != nullptr) {
    error_observed_ = true;
    std::rethrow_exception(error_);
  }
}

void AsyncLog::submit(std::vector<std::uint8_t> payload) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    rethrow_locked(lock);
    queue_.push_back(std::move(payload));
    obs_depth_.set(static_cast<std::int64_t>(queue_.size() +
                                             (in_flight_ ? 1 : 0)));
  }
  work_cv_.notify_one();
}

void AsyncLog::drain() {
  obs::Span span("async.drain", "async");
  // drain() is a cold synchronization point, so the flush-latency histogram
  // is looked up per call (also correct under late registry install).
  obs::Histogram flush_seconds = obs::histogram("ickpt_async_flush_seconds");
  const bool timed = flush_seconds.live();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && !in_flight_) || error_ != nullptr;
  });
  if (timed)
    flush_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  rethrow_locked(lock);
}

std::size_t AsyncLog::pending() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size() + (in_flight_ ? 1 : 0);
}

bool AsyncLog::poisoned() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return error_ != nullptr;
}

std::size_t AsyncLog::dropped() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return dropped_;
}

void AsyncLog::set_profiling(bool on) {
  std::unique_lock<std::mutex> lock(mutex_);
  profiling_ = on;
}

obs::CaptureProfile AsyncLog::take_profile() {
  std::unique_lock<std::mutex> lock(mutex_);
  obs::CaptureProfile out = worker_profile_;
  worker_profile_.reset();
  return out;
}

void AsyncLog::rebind_metrics() {
  std::unique_lock<std::mutex> lock(mutex_);
  obs_depth_ = obs::gauge("ickpt_async_queue_depth");
  obs_appends_ = obs::counter("ickpt_async_appends_total");
  obs_append_seconds_ = obs::histogram("ickpt_async_append_seconds");
}

void AsyncLog::worker() {
  for (;;) {
    std::vector<std::uint8_t> payload;
    bool profiling = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      payload = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
      profiling = profiling_;
    }
    // The seq this frame will carry; appends are FIFO so nothing else can
    // claim it first.
    const std::uint64_t seq = storage_.next_seq();
    std::exception_ptr error;
    const bool timed = obs_append_seconds_.live();
    std::chrono::steady_clock::time_point t0;
    if (timed) t0 = std::chrono::steady_clock::now();
    // Stage attribution for this one append: the storage's FileSink accrues
    // the fsync slice into `local` (hook installed just below), and the
    // write slice is the append wall minus that. Stack-local, so the only
    // synchronization is the add() under mutex_ afterwards.
    obs::CaptureProfile local;
    std::uint64_t prof_t0 = 0;
    if (profiling) {
      storage_.set_profile(&local);
      prof_t0 = obs::trace_now_ns();
    }
    try {
      storage_.append(payload);
      obs_appends_.inc();
    } catch (const std::exception& e) {
      error = std::make_exception_ptr(
          IoError("async append of frame seq " + std::to_string(seq) +
                  " failed: " + e.what()));
    } catch (...) {
      error = std::make_exception_ptr(IoError(
          "async append of frame seq " + std::to_string(seq) + " failed"));
    }
    if (timed)
      obs_append_seconds_.observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    if (profiling) {
      const std::uint64_t elapsed = obs::trace_now_ns() - prof_t0;
      storage_.set_profile(nullptr);
      using P = obs::CaptureProfile;
      const std::uint64_t fsync_ns = local.stage_ns[P::kFsync];
      local.stage_ns[P::kWrite] += elapsed > fsync_ns ? elapsed - fsync_ns : 0;
      local.busy_ns += elapsed;
    }
    bool poisoned_now = false;
    std::size_t dropped_now = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      in_flight_ = false;
      if (profiling) worker_profile_.add(local);
      if (error != nullptr && error_ == nullptr) {
        error_ = error;
        // Appending the rest would assign them earlier seqs than the
        // epochs they were taken for; drop them and fail stop.
        dropped_ = queue_.size();
        queue_.clear();
        poisoned_now = true;
        dropped_now = dropped_;
      }
      obs_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
    if (poisoned_now) {
      // Poisoning is a once-per-log event; per-call lookups keep the hot
      // path free of it.
      obs::counter("ickpt_async_poisoned_total").inc();
      if (dropped_now > 0)
        obs::counter("ickpt_async_dropped_payloads_total").inc(dropped_now);
      obs::instant("async.poisoned", "async",
                   "frame seq " + std::to_string(seq) + ", " +
                       std::to_string(dropped_now) +
                       " queued payload(s) dropped");
    }
    idle_cv_.notify_all();
  }
}

}  // namespace ickpt::core
