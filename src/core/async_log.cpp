#include "core/async_log.hpp"

namespace ickpt::core {

AsyncLog::AsyncLog(io::StableStorage& storage) : storage_(storage) {
  thread_ = std::thread([this] { worker(); });
}

AsyncLog::~AsyncLog() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void AsyncLog::rethrow_locked(std::unique_lock<std::mutex>&) {
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void AsyncLog::submit(std::vector<std::uint8_t> payload) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    rethrow_locked(lock);
    queue_.push_back(std::move(payload));
  }
  work_cv_.notify_one();
}

void AsyncLog::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] {
    return (queue_.empty() && !in_flight_) || error_ != nullptr;
  });
  rethrow_locked(lock);
}

std::size_t AsyncLog::pending() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size() + (in_flight_ ? 1 : 0);
}

void AsyncLog::worker() {
  for (;;) {
    std::vector<std::uint8_t> payload;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      payload = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
    }
    std::exception_ptr error;
    try {
      storage_.append(payload);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      in_flight_ = false;
      if (error != nullptr && error_ == nullptr) error_ = error;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace ickpt::core
