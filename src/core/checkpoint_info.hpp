// CheckpointInfo: per-object checkpoint bookkeeping (paper Fig. 1).
//
// Every checkpointable object owns one CheckpointInfo holding a process-wide
// unique identifier and the `modified` flag used by incremental
// checkpointing. As in the paper, a freshly constructed object is marked
// modified so the next incremental checkpoint records it.
//
// The paper relies on the JVM for id allocation; here IdAllocator is a
// lock-free global counter that recovery bumps past every id it re-creates,
// so post-recovery allocations never collide with restored objects.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace ickpt::core {

class IdAllocator {
 public:
  /// Next unused id. Never returns kNullObjectId.
  static ObjectId next() noexcept {
    return counter().fetch_add(1, std::memory_order_relaxed);
  }

  /// Ensure future next() calls return ids strictly greater than `id`.
  static void bump_past(ObjectId id) noexcept {
    auto& c = counter();
    ObjectId cur = c.load(std::memory_order_relaxed);
    while (cur <= id &&
           !c.compare_exchange_weak(cur, id + 1, std::memory_order_relaxed)) {
    }
  }

 private:
  static std::atomic<ObjectId>& counter() noexcept {
    static std::atomic<ObjectId> counter{1};
    return counter;
  }
};

class CheckpointInfo {
 public:
  /// Live construction: allocate a fresh id; object starts modified so the
  /// next incremental checkpoint picks it up (paper Fig. 1 constructor).
  CheckpointInfo() noexcept : id_(IdAllocator::next()) {}

  /// Recovery construction: reuse the recorded id.
  explicit CheckpointInfo(ObjectId id) noexcept : id_(id) {
    IdAllocator::bump_past(id);
  }

  [[nodiscard]] ObjectId id() const noexcept { return id_; }
  [[nodiscard]] bool modified() const noexcept { return modified_; }

  /// Called by every mutator of the owning object (intrusive tracking; this
  /// is the paper's "flag updated on assignment").
  void set_modified() noexcept { modified_ = true; }

  /// Called by the checkpointer after recording the object.
  void reset_modified() noexcept { modified_ = false; }

 private:
  ObjectId id_;
  bool modified_ = true;
};

}  // namespace ickpt::core
