// ParallelCheckpoint: sharded checkpoint capture over a bounded worker pool.
//
// The paper's driver (Fig. 1) walks the object graph serially, so capture
// latency scales with graph size regardless of cores. This component
// partitions the *root set* into contiguous shards, captures each shard's
// records into a private in-memory segment on a work-stealing worker pool,
// and deterministically merges the segments — in shard order, behind a
// single stream header — so the emitted payload obeys the exact format of
// docs/FORMAT.md and Recovery/fsck need no new cases.
//
// Determinism contract (enforced by tests/parallel_equiv_test.cpp, not by
// review):
//  - cycle_guard off (the paper's acyclic/unshared assumption): shard
//    segments are exactly the record runs the serial driver would emit for
//    those roots, and shard-order concatenation reproduces the serial
//    stream BYTE-IDENTICALLY for every thread count.
//  - cycle_guard on: each shard walks with its own private visited-set
//    epoch and cross-shard sharing is resolved through a striped ClaimTable
//    keyed on CheckpointInfo ids — every shared object is recorded by
//    exactly one shard (whichever claims it first), so the stream carries
//    the same record set, possibly placed in a different segment than the
//    serial walk would choose. Recovery resolves records by id, so the
//    recovered graph is VALUE-IDENTICAL to the serial stream's, and
//    per-shard CheckpointStats still sum to the serial totals.
//
// Failure semantics match the serial driver: a throw from record()/fold()
// (or out-of-memory in a segment) propagates to the caller after the pool
// drains, and the caller must discard the stream — exactly as it must when
// the serial Checkpoint throws mid-record. Flags reset before the failure
// stay reset, which is why CheckpointManager only appends fully merged
// payloads to stable storage.
//
// VisitHooks are not threaded through: hooks observe a single traversal
// order, which sharded capture deliberately does not have.
#pragma once

#include <span>
#include <vector>

#include "core/checkpoint.hpp"
#include "io/data_writer.hpp"
#include "obs/profile.hpp"

namespace ickpt::core {

struct ParallelOptions {
  Mode mode = Mode::kIncremental;
  /// Traverse and test but write nothing and reset no flags.
  bool dry_run = false;
  /// Per-shard visited epochs + cross-shard ClaimTable (see header comment).
  bool cycle_guard = false;
  /// Worker pool size. <= 1 delegates to the serial Checkpoint::run — the
  /// paper-faithful path, byte-for-byte and cost-for-cost.
  unsigned threads = 1;
  /// Shards per worker: the work-stealing granularity. More shards balance
  /// skewed root subtrees better at the cost of more (cheap) segment
  /// merges; shard count never exceeds the root count.
  unsigned shards_per_thread = 4;
  /// Stripes in the cross-shard claim table (cycle_guard only).
  std::size_t claim_stripes = 64;
  /// Stage-attribution accumulator. Null (the default) keeps every worker on
  /// the unprofiled hot loop. Non-null: each shard walks with a private
  /// CaptureProfile (no cross-worker synchronization on the hot path), and
  /// after the pool joins the shard profiles, steal counters, sink bytes and
  /// merge time are folded into *profile. Written by the caller's thread
  /// only outside the walk; must outlive run().
  obs::CaptureProfile* profile = nullptr;
};

/// Capture accounting for one shard (one contiguous root range).
struct ShardStats {
  std::size_t shard = 0;
  std::size_t root_begin = 0;
  std::size_t root_end = 0;
  /// Worker that executed the shard; `stolen` when that is not the worker
  /// the shard was initially dealt to.
  unsigned worker = 0;
  bool stolen = false;
  CheckpointStats stats;
  std::size_t bytes = 0;
  /// Per-shard stage attribution; all-zero unless ParallelOptions::profile
  /// was set for the capture.
  obs::CaptureProfile profile;
};

struct ParallelStats {
  /// Sum over shards; equals the serial CheckpointStats for the same state.
  CheckpointStats totals;
  std::size_t shards = 1;
  unsigned threads_used = 1;
  std::size_t steals = 0;
  /// max/mean objects visited per worker (1.0 = perfectly balanced).
  double imbalance = 1.0;
  /// Wall time of the deterministic merge stage (segment concatenation).
  double merge_seconds = 0.0;
  /// Per-shard breakdown; empty when the serial path ran.
  std::vector<ShardStats> shard_stats;
};

class ParallelCheckpoint {
 public:
  /// Write one checkpoint payload of `roots` at `epoch` into `d`:
  /// header + sharded records (merged in shard order) + end tag.
  static ParallelStats run(io::DataWriter& d, Epoch epoch,
                           std::span<Checkpointable* const> roots,
                           const ParallelOptions& opts);
};

}  // namespace ickpt::core
