// ParallelCheckpoint: sharded checkpoint capture over a bounded worker pool.
//
// The paper's driver (Fig. 1) walks the object graph serially, so capture
// latency scales with graph size regardless of cores. This component
// partitions the capture into ordered work items, records each item on a
// work-stealing worker pool, and streams the results into the caller's
// DataWriter through an ordered merge frontier (core/segment_merge.hpp):
//
//  - An item at the merge frontier writes *directly* into the caller's
//    writer — those bytes are never buffered. Items ahead of the frontier
//    record into private segments that the frontier drains in order, so
//    extra memory is bounded by out-of-order segments only (the high-water
//    mark is tracked in ParallelStats, the profile, and a gauge).
//  - The stream header is emitted by the merge cursor just before the
//    first byte of item 0 — never earlier — so a worker throw before any
//    segment streams leaves the caller's writer untouched (the serial path
//    would already have written its header; see Failure semantics).
//  - Work items are root ranges, except when the root set is too small to
//    feed the pool (fewer roots than threads x shards_per_thread): then a
//    compound root is split into its record (a records-only visit) plus
//    per-child ranges of its top-level fold targets, so one giant root no
//    longer serializes the walk.
//
// The emitted payload obeys the exact format of docs/FORMAT.md — item-order
// concatenation reproduces the serial layout — and Recovery/fsck need no
// new cases.
//
// Determinism contract (enforced by tests/parallel_equiv_test.cpp and
// tests/parallel_stream_test.cpp, not by review):
//  - cycle_guard off (the paper's acyclic/unshared assumption): item
//    segments are exactly the record runs the serial driver would emit for
//    those roots (a split root's record followed by its children's walks is
//    the same byte sequence the root's own fold would have produced), and
//    item-order concatenation reproduces the serial stream BYTE-IDENTICALLY
//    for every thread count.
//  - cycle_guard on: each item walks with its own private visited-set epoch
//    and cross-shard sharing is resolved through a lock-free CAS ClaimTable
//    keyed on CheckpointInfo ids — every shared object is recorded by
//    exactly one item (whichever claims it first), so the stream carries
//    the same record set, possibly placed in a different segment than the
//    serial walk would choose. Recovery resolves records by id, so the
//    recovered graph is VALUE-IDENTICAL to the serial stream's, and
//    per-item CheckpointStats still sum to the serial totals.
//
// Failure semantics: a throw from record()/fold() propagates to the caller
// after the pool drains. If nothing had streamed yet the caller's writer is
// untouched (strictly cleaner than a serial throw, which leaves header +
// record prefix); once streaming has begun a torn prefix is possible,
// exactly as with the serial walker. Flags reset before the failure stay
// reset, which is why CheckpointManager only appends fully merged payloads
// to stable storage.
//
// VisitHooks are not threaded through: hooks observe a single traversal
// order, which sharded capture deliberately does not have.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/checkpoint.hpp"
#include "io/data_writer.hpp"
#include "obs/profile.hpp"

namespace ickpt::core {

struct ParallelOptions {
  /// Backlog sentinel: pick the budget from the thread/core ratio (see
  /// merge_backlog_bytes).
  static constexpr std::size_t kAutoBacklog = SIZE_MAX;

  Mode mode = Mode::kIncremental;
  /// Traverse and test but write nothing and reset no flags.
  bool dry_run = false;
  /// Per-shard visited epochs + cross-shard ClaimTable (see header comment).
  bool cycle_guard = false;
  /// Worker pool size. <= 1 delegates to the serial Checkpoint::run — the
  /// paper-faithful path, byte-for-byte and cost-for-cost.
  unsigned threads = 1;
  /// Work items per worker: the work-stealing granularity. More items
  /// balance skewed root subtrees better at the cost of more (cheap)
  /// frontier advances.
  unsigned shards_per_thread = 4;
  /// Capacity hint for the lock-free claim table (cycle_guard only):
  /// expected distinct object ids. 0 = derive from the root count.
  /// Underestimates cost overflow-segment probing, never correctness.
  std::size_t claim_capacity = 0;
  /// Published-segment backlog (bytes) beyond which workers stop recording
  /// ahead of the merge frontier and yield instead. kAutoBacklog resolves
  /// to: unbounded when threads <= hardware cores (recording ahead is the
  /// parallelism win), 0 when oversubscribed (buffering ahead of a frontier
  /// that shares your core only grows memory). Explicit values pass
  /// through; tests pin large budgets to force concurrent buffering.
  std::size_t merge_backlog_bytes = kAutoBacklog;
  /// Stage-attribution accumulator. Null (the default) keeps every worker on
  /// the unprofiled hot loop. Non-null: each item walks with a private
  /// CaptureProfile (no cross-worker synchronization on the hot path), and
  /// after the pool joins the item profiles, steal counters, sink bytes and
  /// merge/wait time are folded into *profile. Written by the caller's
  /// thread only outside the walk; must outlive run().
  obs::CaptureProfile* profile = nullptr;
  /// Test-only: fires on the executing worker after each work item is
  /// published to (or committed through) the merge cursor, with the item
  /// index. Used to force out-of-order completion deterministically.
  std::function<void(std::size_t)> test_item_hook;
};

/// Capture accounting for one work item (a contiguous root range, a split
/// root's record, or a split root's child range).
struct ShardStats {
  std::size_t shard = 0;
  std::size_t root_begin = 0;
  std::size_t root_end = 0;
  /// Worker that executed the item; `stolen` when that is not the worker
  /// the item was initially dealt to.
  unsigned worker = 0;
  bool stolen = false;
  /// The item was at the merge frontier and streamed straight into the
  /// caller's writer — its bytes were never buffered.
  bool streamed_direct = false;
  CheckpointStats stats;
  std::size_t bytes = 0;
  /// Per-item stage attribution; all-zero unless ParallelOptions::profile
  /// was set for the capture.
  obs::CaptureProfile profile;
};

struct ParallelStats {
  /// Sum over items; equals the serial CheckpointStats for the same state.
  CheckpointStats totals;
  std::size_t shards = 1;
  unsigned threads_used = 1;
  std::size_t steals = 0;
  /// max/mean objects visited per worker (1.0 = perfectly balanced).
  double imbalance = 1.0;
  /// Wall time spent inside the merge cursor streaming segments.
  double merge_seconds = 0.0;
  /// Coordinator wall spent waiting for the last workers after its own
  /// work ran dry.
  double merge_wait_seconds = 0.0;
  /// High-water mark of bytes buffered behind the merge frontier — the
  /// streaming merge's memory bound, observed.
  std::size_t merge_buffered_peak_bytes = 0;
  /// Items that streamed directly into the caller's writer.
  std::size_t direct_items = 0;
  /// Per-item breakdown; empty when the serial path ran.
  std::vector<ShardStats> shard_stats;
};

class ParallelCheckpoint {
 public:
  /// Write one checkpoint payload of `roots` at `epoch` into `d`:
  /// header + sharded records (streamed in item order) + end tag.
  static ParallelStats run(io::DataWriter& d, Epoch epoch,
                           std::span<Checkpointable* const> roots,
                           const ParallelOptions& opts);
};

}  // namespace ickpt::core
