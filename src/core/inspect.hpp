// Checkpoint-log inspection: decode a log into per-frame summaries (mode,
// epoch, bytes, record counts by class). Operational tooling — answers
// "why is my log this big" and "which classes dominate my incremental
// checkpoints" without recovering into live objects.
#pragma once

#include <string>
#include <vector>

#include "core/recovery.hpp"

namespace ickpt::core {

struct FrameInfo {
  std::uint64_t seq = 0;
  Epoch epoch = 0;
  Mode mode = Mode::kFull;
  std::size_t bytes = 0;
  std::size_t records = 0;
  /// Class name -> record count (names from the registry).
  std::vector<std::pair<std::string, std::size_t>> records_by_type;
};

struct LogReport {
  std::vector<FrameInfo> frames;
  bool clean = true;
  std::string note;
  std::size_t total_bytes = 0;

  /// Human-readable multi-line rendering.
  [[nodiscard]] std::string to_string() const;
};

/// Decode every valid frame of the log at `path`. Frames must decode
/// against `registry` (TypeError propagates for unregistered classes).
LogReport inspect_log(const std::string& path, const TypeRegistry& registry);

}  // namespace ickpt::core
