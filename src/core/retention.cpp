#include "core/retention.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "io/file_io.hpp"

namespace ickpt::core {

std::uint64_t RetentionPolicy::granularity(std::uint64_t d) noexcept {
  return std::bit_floor(d);
}

bool RetentionPolicy::retained(Epoch e, Epoch n) noexcept {
  if (e > n) return false;
  if (e == n) return true;
  return e % granularity(n - e) == 0;
}

std::vector<Epoch> RetentionPolicy::schedule(Epoch n) {
  // Walk ages d = n - e by power-of-two bands. Within band
  // [2^k, 2^(k+1) - 1] the granularity is constant 2^k, so the retained
  // epochs of that band are exactly the multiples of 2^k inside the epoch
  // range [n - dhi, n - 2^k] — at most two of them. O(log n) total.
  std::vector<Epoch> out;
  out.push_back(n);
  for (std::uint64_t g = 1; g <= n; g <<= 1) {
    const Epoch dhi = std::min<Epoch>(n, (g << 1) - 1);
    const Epoch lo = n - dhi;
    const Epoch hi = n - g;
    for (Epoch e = ((lo + g - 1) / g) * g; e <= hi; e += g) out.push_back(e);
    if (g > n - g) break;  // next shift would overflow past n
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t RetentionPolicy::max_retained(Epoch n) noexcept {
  if (n == 0) return 1;
  return 2 * static_cast<std::size_t>(std::bit_width(n) - 1) + 3;
}

Epoch RetentionPolicy::replay_bound(Epoch t, Epoch n) noexcept {
  if (t >= n || retained(t, n)) return 0;
  return 2 * granularity(n - t);
}

bool RetentionManifest::declares(Epoch e) const {
  return std::binary_search(epochs.begin(), epochs.end(), e);
}

std::string RetentionManifest::path_for(const std::string& log_path) {
  return log_path + ".retain";
}

std::optional<RetentionManifest> RetentionManifest::load(
    const std::string& log_path) {
  const std::string path = path_for(log_path);
  if (!io::file_exists(path)) return std::nullopt;
  const auto bytes = io::read_file(path);
  std::istringstream in(std::string(bytes.begin(), bytes.end()));
  std::string magic;
  in >> magic;
  if (magic != "ickpt-retain") {
    throw CorruptionError("retention manifest " + path + ": bad magic");
  }
  unsigned version = 0;
  in >> version;
  if (!in || version != 1) {
    throw CorruptionError("retention manifest " + path +
                          ": unsupported version");
  }
  RetentionManifest m;
  std::size_t count = 0;
  if (!(in >> m.newest >> count)) {
    throw CorruptionError("retention manifest " + path + ": truncated header");
  }
  m.epochs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Epoch e = 0;
    if (!(in >> e)) {
      throw CorruptionError("retention manifest " + path +
                            ": truncated epoch list");
    }
    if (!m.epochs.empty() && e <= m.epochs.back()) {
      throw CorruptionError("retention manifest " + path +
                            ": epoch list not strictly ascending");
    }
    m.epochs.push_back(e);
  }
  return m;
}

void RetentionManifest::save(const std::string& log_path) const {
  std::ostringstream out;
  out << "ickpt-retain 1\n" << newest << ' ' << epochs.size() << '\n';
  for (Epoch e : epochs) out << e << '\n';
  const std::string text = out.str();
  const std::string path = path_for(log_path);
  const std::string tmp = path + ".tmp";
  io::write_file(tmp, std::vector<std::uint8_t>(text.begin(), text.end()));
  io::rename_durable(tmp, path);
}

void RetentionManifest::remove(const std::string& log_path) {
  const std::string path = path_for(log_path);
  if (std::remove(path.c_str()) == 0) io::fsync_parent_dir(path);
}

}  // namespace ickpt::core
