#include "core/inspect.hpp"

#include <algorithm>
#include <sstream>

#include "io/stable_storage.hpp"

namespace ickpt::core {

LogReport inspect_log(const std::string& path, const TypeRegistry& registry) {
  io::ScanResult scan = io::StableStorage::scan(path);
  LogReport report;
  report.clean = scan.clean;
  report.note = scan.stop_reason;

  // One Recovery accumulates objects across frames so incremental records
  // type-check against their earlier definitions, exactly as real recovery
  // would; finish() is never called.
  Recovery recovery(registry);
  for (const io::Frame& frame : scan.frames) {
    ApplyStats stats;
    io::DataReader reader(frame.payload);
    StreamHeader header = recovery.apply(reader, &stats);
    FrameInfo info;
    info.seq = frame.seq;
    info.epoch = header.epoch;
    info.mode = header.mode;
    info.bytes = frame.payload.size();
    info.records = stats.records;
    for (const auto& [type, count] : stats.records_by_type)
      info.records_by_type.emplace_back(registry.lookup(type).name, count);
    std::sort(info.records_by_type.begin(), info.records_by_type.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    report.total_bytes += info.bytes;
    report.frames.push_back(std::move(info));
  }
  return report;
}

std::string LogReport::to_string() const {
  std::ostringstream out;
  out << frames.size() << " checkpoint(s), " << total_bytes << " bytes"
      << (clean ? "" : " (log tail dropped: " + note + ")") << "\n";
  for (const FrameInfo& frame : frames) {
    out << "  seq " << frame.seq << " epoch " << frame.epoch << " "
        << (frame.mode == Mode::kFull ? "full" : "incr") << " "
        << frame.bytes << "B " << frame.records << " records";
    if (!frame.records_by_type.empty()) {
      out << " [";
      for (std::size_t i = 0; i < frame.records_by_type.size(); ++i) {
        if (i != 0) out << ", ";
        out << frame.records_by_type[i].first << ":"
            << frame.records_by_type[i].second;
      }
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace ickpt::core
