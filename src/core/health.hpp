// Health model of the self-healing checkpoint pipeline.
//
// The paper's protocol treats the stable-storage path as fail-stop; the
// long-lived daemon the roadmap targets cannot. This file defines the
// degradation ladder the manager walks instead of dying (documented in
// docs/DURABILITY.md, "Degradation ladder"):
//
//   kHealthy   — the configured pipeline (async, non-durable, ...)
//   kDegraded  — async I/O disarmed; every append synchronous and fsynced
//   kRebasing  — the live log is being quarantined and a fresh generation
//                rebased with a forced full checkpoint
//   kFailed    — the rotation ladder was exhausted; take() refuses work
//
// Healing is opt-in (HealPolicy::enabled): with it off, every failure mode
// keeps the fail-stop semantics the crash-matrix tests pin down.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "io/stable_storage.hpp"

namespace ickpt::core {

enum class Health : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kRebasing = 2,
  kFailed = 3,
};

[[nodiscard]] constexpr const char* to_string(Health health) noexcept {
  switch (health) {
    case Health::kHealthy:
      return "healthy";
    case Health::kDegraded:
      return "degraded";
    case Health::kRebasing:
      return "rebasing";
    case Health::kFailed:
      return "failed";
  }
  return "?";
}

/// Policy knobs for the degradation ladder. All healing is off by default.
struct HealPolicy {
  /// Master switch. Off: AsyncLog poisoning and append failures rethrow
  /// exactly as before this layer existed.
  bool enabled = false;
  /// Clean epochs (takes that needed no healing) in the degraded state
  /// before the manager re-arms its configured pipeline (async I/O,
  /// configured durability). 0 re-heals on the first clean epoch.
  unsigned reheal_after = 4;
  /// In-place append retries (the failed append rolled back, the log is
  /// still valid) before reaching for rotation.
  unsigned append_retries = 1;
  /// Rotation attempts (quarantine + fresh generation + rebase) before the
  /// manager gives up and enters kFailed.
  unsigned rotate_attempts = 3;
  /// Test hook: called at each io::RotateStage during a rotation, plus
  /// kAfterRebase once the fresh generation holds its full checkpoint. The
  /// crash-matrix tests throw CrashFault from it.
  io::RotateHook rotate_hook;
};

/// Point-in-time view of the ladder, for operators and tests
/// (`ickptctl health`, chaos soak invariants).
struct HealthStatus {
  Health health = Health::kHealthy;
  /// True while an AsyncLog is armed (submits go to the background thread).
  bool async_armed = false;
  /// Rotations this manager performed (== generations it quarantined).
  unsigned rotations = 0;
  /// Times the manager returned from degraded to healthy.
  unsigned reheals = 0;
  /// Epochs taken while on a degraded rung.
  std::uint64_t degraded_epochs = 0;
  /// Epochs reported taken whose frames were lost to poisoning (the failed
  /// in-flight append plus queued payloads dropped with it).
  std::uint64_t lost_epochs = 0;
  /// Clean epochs accumulated toward reheal_after.
  unsigned clean_epochs = 0;
  /// True once any epoch of this manager reached the log (the watermark
  /// below is meaningless before that).
  bool any_settled = false;
  /// Newest epoch whose frame append completed (synchronously, or observed
  /// via flush()). Everything up to the window containing it is expected to
  /// be recoverable from the generation chain.
  Epoch last_settled_epoch = 0;
  /// Most recent failure the ladder absorbed (empty when none).
  std::string last_error;
};

}  // namespace ickpt::core
