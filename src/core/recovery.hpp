// Recovery: rebuild an object graph from a full checkpoint plus the
// incremental deltas that follow it.
//
// Records are applied in stream order with last-writer-wins semantics per
// ObjectId: the full checkpoint materializes every object, and each
// incremental checkpoint overwrites the local state of the objects it
// contains (and materializes objects created since the previous checkpoint).
// Child references, recorded as ids, are resolved in a final pass once every
// object exists, so forward references inside a checkpoint are fine.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "core/checkpoint_format.hpp"
#include "core/checkpointable.hpp"
#include "core/type_registry.hpp"
#include "io/data_reader.hpp"
#include "io/frame_index.hpp"

namespace ickpt::core {

/// Everything recovery produces: an owning heap, the id index, and the roots
/// named by the most recent checkpoint header.
struct RecoveredState {
  Heap heap;
  std::unordered_map<ObjectId, Checkpointable*> by_id;
  std::vector<ObjectId> roots;
  Epoch epoch = 0;

  [[nodiscard]] Checkpointable* find(ObjectId id) const {
    auto it = by_id.find(id);
    return it == by_id.end() ? nullptr : it->second;
  }

  /// Drop every object not reachable from the roots (the "objects awaiting
  /// garbage collection" the paper notes can bloat checkpoints: an
  /// incremental chain happily carries records of objects the program has
  /// since unlinked). Returns the number of objects discarded.
  std::size_t prune_unreachable();

  /// Typed access to the i-th root. Throws TypeError on a type mismatch and
  /// CorruptionError if the root is missing.
  template <class T>
  [[nodiscard]] T* root_as(std::size_t i = 0) const {
    if (i >= roots.size())
      throw CorruptionError("checkpoint names no root #" + std::to_string(i));
    Checkpointable* obj = find(roots[i]);
    if (obj == nullptr)
      throw CorruptionError("root object " + std::to_string(roots[i]) +
                            " absent from recovered heap");
    T* typed = dynamic_cast<T*>(obj);
    if (typed == nullptr)
      throw TypeError("root object " + std::to_string(roots[i]) +
                      " has unexpected dynamic type");
    return typed;
  }
};

/// Header of one applied checkpoint payload.
struct StreamHeader {
  Mode mode = Mode::kFull;
  Epoch epoch = 0;
  std::vector<ObjectId> roots;
};

/// Parse just the header of a checkpoint payload (cheap; used to locate the
/// most recent full checkpoint in a log without decoding records).
StreamHeader peek_header(const std::vector<std::uint8_t>& payload);

/// peek_header wrapped as an io::HeaderProbe: the adapter that lets the
/// storage layer's epoch-addressed frame index (io::index_frames) read
/// stream headers without knowing the checkpoint format. Returns false for
/// payloads that are not parseable checkpoint streams.
io::HeaderProbe stream_header_probe();

/// Per-checkpoint record statistics (filled by Recovery::apply on request;
/// the basis of the log-inspection tooling).
struct ApplyStats {
  std::size_t records = 0;
  std::unordered_map<TypeId, std::size_t> records_by_type;
};

/// One record's facts as surfaced by a scan-mode apply (verify::fsck): the
/// record's type and id plus every non-null child id its payload references.
struct RecordEvent {
  TypeId type = 0;
  ObjectId id = kNullObjectId;
  std::vector<ObjectId> children;
};

class Recovery {
 public:
  /// kMaterialize (the default) accumulates the object graph across applied
  /// checkpoints — normal recovery. kScan validates the same byte streams
  /// without materializing a graph: each record is parsed through a
  /// transient factory instance that is discarded immediately (O(1) live
  /// objects regardless of log size) and reported to the record observer;
  /// finish() is invalid.
  enum class ApplyMode : std::uint8_t { kMaterialize, kScan };

  using RecordObserver = std::function<void(const RecordEvent&)>;

  explicit Recovery(const TypeRegistry& registry,
                    ApplyMode mode = ApplyMode::kMaterialize)
      : registry_(&registry), mode_(mode) {}

  Recovery(const Recovery&) = delete;
  Recovery& operator=(const Recovery&) = delete;

  /// Scan mode only: called once per record, after its payload parsed.
  void set_record_observer(RecordObserver observer) {
    observer_ = std::move(observer);
  }

  /// Apply one checkpoint payload (full or incremental), in log order.
  /// `stats`, when given, receives this payload's record counts.
  StreamHeader apply(io::DataReader& r, ApplyStats* stats = nullptr);

  /// Called from restore_record() implementations: read a child id from the
  /// stream and schedule `slot` to be pointed at that object (or nullptr).
  template <class T>
  void link(io::DataReader& d, T*& slot) {
    ObjectId id = d.read_varint();
    slot = nullptr;
    if (id == kNullObjectId) return;
    if (mode_ == ApplyMode::kScan) {
      event_children_.push_back(id);
      return;
    }
    fixups_.push_back(Fixup{id, [&slot](Checkpointable& obj) {
                              T* typed = dynamic_cast<T*>(&obj);
                              if (typed == nullptr)
                                throw TypeError(
                                    "child link resolves to object of "
                                    "unexpected dynamic type");
                              slot = typed;
                            }});
  }

  /// Resolve all child links, clear modified flags, and hand the graph over.
  /// The Recovery object is spent afterwards.
  RecoveredState finish();

  [[nodiscard]] std::size_t objects_materialized() const noexcept {
    return objects_.size();
  }

 private:
  struct Fixup {
    ObjectId id;
    std::function<void(Checkpointable&)> set;
  };

  const TypeRegistry* registry_;
  ApplyMode mode_ = ApplyMode::kMaterialize;
  RecordObserver observer_;
  std::vector<ObjectId> event_children_;  // scan mode, current record
  std::unordered_map<ObjectId, std::unique_ptr<Checkpointable>> objects_;
  std::vector<Fixup> fixups_;
  StreamHeader last_header_;
  bool has_header_ = false;
};

}  // namespace ickpt::core
