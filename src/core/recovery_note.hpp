// RecoveryNote: structured description of what recovery found wrong and
// what salvage did about it.
//
// CheckpointManager::recover used to assemble its human-readable log_note
// by string concatenation in three separate places; the observability work
// needs the same facts a second time (as trace-event annotations and
// counter increments), so the facts now live in one struct and both the
// note text and the trace note are rendered from it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ickpt::core {

struct RecoveryNote {
  /// First damage met by the scan ("" when the log was clean).
  std::string stop_reason;
  std::uint64_t damage_offset = 0;
  /// Corrupt regions salvage skipped, and the bytes inside them.
  std::size_t regions_skipped = 0;
  std::uint64_t bytes_skipped = 0;
  /// Readable frames outside the recovered window (stranded, superseded).
  std::size_t frames_outside_window = 0;

  /// One window trim: a frame that decoded but could not be applied, plus
  /// the trailing checkpoints dropped with it.
  struct Trim {
    std::uint64_t seq = 0;
    std::string what;
    std::size_t dropped = 0;
  };
  std::vector<Trim> trims;

  [[nodiscard]] bool empty() const {
    return stop_reason.empty() && frames_outside_window == 0 && trims.empty();
  }

  /// The RecoverResult::log_note text ("" when there is nothing to say).
  [[nodiscard]] std::string render() const {
    std::string out;
    if (!stop_reason.empty()) {
      out += stop_reason + " at byte " + std::to_string(damage_offset);
      if (regions_skipped > 0)
        out += "; salvage skipped " + std::to_string(regions_skipped) +
               " corrupt region(s) (" + std::to_string(bytes_skipped) +
               " byte(s))";
    }
    if (frames_outside_window > 0) {
      if (!out.empty()) out += "; ";
      out += std::to_string(frames_outside_window) +
             " readable checkpoint(s) outside the recovered window";
    }
    for (const Trim& trim : trims)
      out += "; frame seq " + std::to_string(trim.seq) + " undecodable (" +
             trim.what + "), dropped " + std::to_string(trim.dropped) +
             " trailing checkpoint(s)";
    return out;
  }

  /// Compact single-line form for a trace-event annotation.
  [[nodiscard]] std::string trace_note() const {
    if (empty()) return "clean";
    std::string out = stop_reason.empty() ? "clean scan" : stop_reason;
    if (regions_skipped > 0)
      out += ", " + std::to_string(regions_skipped) + " region(s)/" +
             std::to_string(bytes_skipped) + "B salvaged";
    if (frames_outside_window > 0)
      out += ", " + std::to_string(frames_outside_window) +
             " frame(s) outside window";
    if (!trims.empty())
      out += ", " + std::to_string(trims.size()) + " trim(s)";
    return out;
  }
};

}  // namespace ickpt::core
