#include "core/parallel_checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <string>
#include <thread>

#include "io/byte_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ickpt::core {

namespace {

/// One contiguous root range with its private output segment. Workers touch
/// disjoint Shard objects, so no field here needs synchronization.
struct Shard {
  std::size_t begin = 0;
  std::size_t end = 0;
  unsigned home = 0;  // worker the shard was dealt to
  io::VectorSink sink;
  CheckpointStats stats;
};

/// Per-worker claim cursor over that worker's contiguous block of shard
/// indices. The owner and thieves race on the same fetch_add, so a shard is
/// executed exactly once no matter who grabs it; padding keeps cursors of
/// different workers off each other's cache lines.
struct alignas(64) Cursor {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

}  // namespace

ParallelStats ParallelCheckpoint::run(io::DataWriter& d, Epoch epoch,
                                      std::span<Checkpointable* const> roots,
                                      const ParallelOptions& opts) {
  const std::size_t nroots = roots.size();
  unsigned threads = opts.threads;
  if (static_cast<std::size_t>(threads) > nroots)
    threads = static_cast<unsigned>(nroots == 0 ? 1 : nroots);

  if (threads <= 1) {
    // The serial paper-faithful path, untouched: byte-identical output and
    // identical cost profile to calling Checkpoint::run directly.
    CheckpointOptions copts;
    copts.mode = opts.mode;
    copts.dry_run = opts.dry_run;
    copts.cycle_guard = opts.cycle_guard;
    copts.profile = opts.profile;
    ParallelStats p;
    p.totals = Checkpoint::run(d, epoch, roots, copts);
    return p;
  }

  obs::Span span("checkpoint.parallel", "checkpoint");

  // The stream header is written serially by the caller's thread; shard
  // segments carry records only, so the on-disk format is unchanged.
  if (!opts.dry_run) {
    d.write_u8(kStreamMagic);
    d.write_u8(kFormatVersion);
    d.write_u8(static_cast<std::uint8_t>(opts.mode));
    d.write_u64(epoch);
    d.write_varint(nroots);
    for (const Checkpointable* root : roots)
      d.write_varint(root != nullptr ? root->info().id() : kNullObjectId);
  }

  const std::size_t nshards =
      std::min(nroots, static_cast<std::size_t>(threads) *
                           std::max(1u, opts.shards_per_thread));
  std::vector<Shard> shards(nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    shards[i].begin = i * nroots / nshards;
    shards[i].end = (i + 1) * nroots / nshards;
  }

  std::unique_ptr<ClaimTable> claims;
  if (opts.cycle_guard)
    claims = std::make_unique<ClaimTable>(opts.claim_stripes);

  // Deal each worker a contiguous block of shard indices; idle workers
  // steal from other blocks through the victims' cursors.
  std::unique_ptr<Cursor[]> cursors(new Cursor[threads]);
  for (unsigned w = 0; w < threads; ++w) {
    const std::size_t begin = static_cast<std::size_t>(w) * nshards / threads;
    cursors[w].next.store(begin, std::memory_order_relaxed);
    cursors[w].end = static_cast<std::size_t>(w + 1) * nshards / threads;
    for (std::size_t i = begin; i < cursors[w].end; ++i) shards[i].home = w;
  }

  std::vector<std::exception_ptr> errors(threads);
  std::vector<ShardStats> shard_stats(nshards);
  std::vector<std::uint64_t> worker_visited(threads, 0);
  std::atomic<std::size_t> steals{0};
  std::atomic<bool> failed{false};
  // Steal-probe accounting, touched only when profiling: a probe is one
  // fetch_add on a victim's cursor, a failure is a probe that found the
  // victim's block already drained.
  const bool profiling = opts.profile != nullptr;
  std::atomic<std::uint64_t> steal_attempts{0};
  std::atomic<std::uint64_t> steal_failures{0};

  CheckpointOptions shard_opts;
  shard_opts.mode = opts.mode;
  shard_opts.dry_run = opts.dry_run;
  shard_opts.cycle_guard = opts.cycle_guard;

  auto execute_shard = [&](std::size_t si, unsigned w) {
    Shard& shard = shards[si];
    obs::Span shard_span("checkpoint.shard", "checkpoint");
    {
      io::DataWriter writer(shard.sink);
      // A fresh walker per shard = a fresh visited-set epoch: revisits
      // inside the shard stay lock-free, cross-shard sharing goes through
      // the claim table. When profiling, the shard walks with a private
      // CaptureProfile (single writer: whichever worker executes the
      // shard), folded into the caller's profile after the pool joins.
      CheckpointOptions so = shard_opts;
      if (profiling) so.profile = &shard_stats[si].profile;
      Checkpoint walker(writer, so, claims.get());
      {
        obs::ScopedWalk walk(so.profile);
        for (std::size_t r = shard.begin; r < shard.end; ++r)
          if (roots[r] != nullptr) walker.checkpoint(*roots[r]);
      }
      walker.end();
      writer.flush();
      shard.stats = walker.stats();
    }
    ShardStats& out = shard_stats[si];
    out.shard = si;
    out.root_begin = shard.begin;
    out.root_end = shard.end;
    out.worker = w;
    out.stolen = w != shard.home;
    out.stats = shard.stats;
    out.bytes = shard.sink.size();
    if (profiling) out.profile.shard_sink_bytes = out.bytes;
    worker_visited[w] += shard.stats.objects_visited;
    if (shard_span.active())
      shard_span.note("shard " + std::to_string(si) + ": roots [" +
                      std::to_string(shard.begin) + ", " +
                      std::to_string(shard.end) + "), " +
                      std::to_string(shard.stats.objects_recorded) + "/" +
                      std::to_string(shard.stats.objects_visited) +
                      " recorded, " + std::to_string(out.bytes) + " byte(s)" +
                      (out.stolen ? ", stolen" : ""));
  };

  auto worker_fn = [&](unsigned w) {
    obs::Span worker_span("checkpoint.worker", "checkpoint");
    std::size_t executed = 0;
    try {
      // Own block first (cache-friendly: contiguous root ranges) ...
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t si =
            cursors[w].next.fetch_add(1, std::memory_order_relaxed);
        if (si >= cursors[w].end) break;
        execute_shard(si, w);
        ++executed;
      }
      // ... then steal whole shards from the other workers' blocks.
      for (unsigned off = 1; off < threads; ++off) {
        const unsigned victim = (w + off) % threads;
        for (;;) {
          if (failed.load(std::memory_order_relaxed)) return;
          if (profiling) steal_attempts.fetch_add(1, std::memory_order_relaxed);
          const std::size_t si =
              cursors[victim].next.fetch_add(1, std::memory_order_relaxed);
          if (si >= cursors[victim].end) {
            if (profiling)
              steal_failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          steals.fetch_add(1, std::memory_order_relaxed);
          execute_shard(si, w);
          ++executed;
        }
      }
    } catch (...) {
      errors[w] = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
    if (worker_span.active())
      worker_span.note("worker " + std::to_string(w) + ": " +
                       std::to_string(executed) + " shard(s)");
  };

  {
    std::vector<std::thread> pool;
    pool.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w) pool.emplace_back(worker_fn, w);
    worker_fn(0);  // the caller's thread is worker 0
    for (std::thread& t : pool) t.join();
  }
  for (unsigned w = 0; w < threads; ++w)
    if (errors[w]) std::rethrow_exception(errors[w]);

  // Deterministic merge: segments concatenated in shard (= root-range)
  // order regardless of which worker captured them, then the end tag.
  const auto merge_t0 = std::chrono::steady_clock::now();
  if (!opts.dry_run) {
    for (const Shard& shard : shards)
      d.write_bytes(shard.sink.bytes().data(), shard.sink.size());
    d.write_u8(kEndTag);
  }
  const double merge_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    merge_t0)
          .count();

  ParallelStats result;
  result.shards = nshards;
  result.threads_used = threads;
  result.steals = steals.load(std::memory_order_relaxed);
  result.merge_seconds = merge_seconds;
  result.shard_stats = std::move(shard_stats);
  std::uint64_t max_visited = 0;
  std::uint64_t sum_visited = 0;
  for (const ShardStats& s : result.shard_stats) {
    result.totals.objects_visited += s.stats.objects_visited;
    result.totals.objects_recorded += s.stats.objects_recorded;
  }
  for (unsigned w = 0; w < threads; ++w) {
    max_visited = std::max(max_visited, worker_visited[w]);
    sum_visited += worker_visited[w];
  }
  if (sum_visited > 0)
    result.imbalance = static_cast<double>(max_visited) * threads /
                       static_cast<double>(sum_visited);

  if (profiling) {
    // Fold the per-shard profiles into the caller's accumulator. busy_ns
    // becomes the sum of per-shard walk intervals plus the serial merge —
    // attributable time, deliberately larger than coordinator wall when
    // shards overlap.
    using P = obs::CaptureProfile;
    for (const ShardStats& s : result.shard_stats)
      opts.profile->add(s.profile);
    opts.profile->steal_attempts +=
        steal_attempts.load(std::memory_order_relaxed);
    opts.profile->steal_failures +=
        steal_failures.load(std::memory_order_relaxed);
    const auto merge_ns = static_cast<std::uint64_t>(merge_seconds * 1e9);
    opts.profile->stage_ns[P::kMerge] += merge_ns;
    opts.profile->busy_ns += merge_ns;
    opts.profile->epochs += 1;
  }

  // Once-per-capture telemetry; per-call lookups are fine off the worker
  // hot path (same budget recover() spends).
  obs::gauge("ickpt_capture_shards").set(static_cast<std::int64_t>(nshards));
  obs::gauge("ickpt_capture_threads").set(threads);
  if (result.steals > 0)
    obs::counter("ickpt_capture_steals_total").inc(result.steals);
  obs::histogram("ickpt_capture_merge_seconds").observe(merge_seconds);
  obs::histogram("ickpt_capture_imbalance_ratio", {},
                 obs::Histogram::exponential_bounds(1.0, 1.25, 16))
      .observe(result.imbalance);
  if (span.active())
    span.note(std::to_string(threads) + " worker(s) x " +
              std::to_string(nshards) + " shard(s), " +
              std::to_string(result.steals) + " steal(s), " +
              std::to_string(result.totals.objects_recorded) + "/" +
              std::to_string(result.totals.objects_visited) + " recorded");
  return result;
}

}  // namespace ickpt::core
