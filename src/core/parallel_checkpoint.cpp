#include "core/parallel_checkpoint.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <thread>

#include "core/segment_merge.hpp"
#include "io/byte_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ickpt::core {

namespace {

/// One ordered unit of capture work. Items concatenate in index order to
/// reproduce the serial stream: a plain contiguous root range, or — when a
/// small root set is split to feed the pool — a single root's record
/// followed by ranges over its top-level fold children.
struct WorkItem {
  enum Kind : std::uint8_t { kRootRange, kRootRecord, kChildRange };
  Kind kind = kRootRange;
  std::size_t begin = 0;  ///< first root index (the root, for split kinds)
  std::size_t end = 0;    ///< one past the last root index
  const std::vector<Checkpointable*>* kids = nullptr;  ///< kChildRange only
  std::size_t child_begin = 0;
  std::size_t child_end = 0;
};

std::size_t resolve_backlog_budget(std::size_t requested, unsigned threads) {
  if (requested != ParallelOptions::kAutoBacklog) return requested;
  return StreamingShardRunner::auto_backlog_budget(threads);
}

}  // namespace

ParallelStats ParallelCheckpoint::run(io::DataWriter& d, Epoch epoch,
                                      std::span<Checkpointable* const> roots,
                                      const ParallelOptions& opts) {
  const std::size_t nroots = roots.size();

  auto run_serial = [&] {
    // The serial paper-faithful path, untouched: byte-identical output and
    // identical cost profile to calling Checkpoint::run directly.
    CheckpointOptions copts;
    copts.mode = opts.mode;
    copts.dry_run = opts.dry_run;
    copts.cycle_guard = opts.cycle_guard;
    copts.profile = opts.profile;
    ParallelStats p;
    p.totals = Checkpoint::run(d, epoch, roots, copts);
    return p;
  };
  if (opts.threads <= 1 || nroots == 0) return run_serial();

  // ---- Build the ordered work-item list. ----------------------------------
  const std::size_t target = static_cast<std::size_t>(opts.threads) *
                             std::max(1u, opts.shards_per_thread);
  std::vector<WorkItem> items;
  std::deque<std::vector<Checkpointable*>> kid_store;  // stable references
  if (nroots >= target) {
    // Range mode: item 0 is a single root so the stream header (which the
    // merge cursor emits just before item 0's bytes) is unblocked almost
    // immediately; the rest of the roots split evenly.
    items.reserve(target);
    items.push_back(WorkItem{WorkItem::kRootRange, 0, 1, nullptr, 0, 0});
    const std::size_t rest = nroots - 1;
    const std::size_t nrest = target - 1;
    for (std::size_t i = 0; i < nrest; ++i) {
      const std::size_t b = 1 + i * rest / nrest;
      const std::size_t e = 1 + (i + 1) * rest / nrest;
      if (b < e)
        items.push_back(WorkItem{WorkItem::kRootRange, b, e, nullptr, 0, 0});
    }
  } else {
    // Split mode: too few roots to feed the pool, so a compound root's fold
    // is broken into its own record plus per-child ranges behind the shared
    // claim epoch. Concatenating record-then-children in fold order is the
    // exact byte sequence the root's serial visit would have produced.
    const std::size_t per_root =
        std::max<std::size_t>(1, (target + nroots - 1) / nroots);
    for (std::size_t r = 0; r < nroots; ++r) {
      if (roots[r] == nullptr) continue;  // serial emits nothing for nulls
      kid_store.emplace_back();
      std::vector<Checkpointable*>& kids = kid_store.back();
      Checkpoint::collect_children(*roots[r], kids);
      if (kids.empty()) {
        items.push_back(WorkItem{WorkItem::kRootRange, r, r + 1, nullptr, 0, 0});
        continue;
      }
      items.push_back(WorkItem{WorkItem::kRootRecord, r, r + 1, nullptr, 0, 0});
      const std::size_t chunk =
          std::max<std::size_t>(1, (kids.size() + per_root - 1) / per_root);
      for (std::size_t cb = 0; cb < kids.size(); cb += chunk) {
        const std::size_t ce = std::min(kids.size(), cb + chunk);
        items.push_back(WorkItem{WorkItem::kChildRange, r, r + 1, &kids, cb, ce});
      }
    }
  }

  const std::size_t nitems = items.size();
  const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
      opts.threads, nitems == 0 ? 1 : nitems));
  if (threads <= 1 || nitems == 0) return run_serial();

  obs::Span span("checkpoint.parallel", "checkpoint");

  std::unique_ptr<ClaimTable> claims;
  if (opts.cycle_guard) {
    const std::size_t capacity =
        opts.claim_capacity != 0 ? opts.claim_capacity : nroots * 8 + 1024;
    claims = std::make_unique<ClaimTable>(capacity);
  }

  std::vector<ShardStats> shard_stats(nitems);
  const bool profiling = opts.profile != nullptr;

  CheckpointOptions shard_opts;
  shard_opts.mode = opts.mode;
  shard_opts.dry_run = opts.dry_run;
  shard_opts.cycle_guard = opts.cycle_guard;

  auto execute_item = [&](std::size_t i, std::size_t w,
                          io::DataWriter& writer) -> std::size_t {
    const WorkItem& item = items[i];
    ShardStats& out = shard_stats[i];
    obs::Span shard_span("checkpoint.shard", "checkpoint");
    const std::size_t before = writer.bytes_written();
    {
      // A fresh walker per item = a fresh visited-set epoch: revisits
      // inside the item stay lock-free, cross-item sharing goes through
      // the claim table. When profiling, the item walks with a private
      // CaptureProfile (single writer: whichever worker executes the
      // item), folded into the caller's profile after the pool joins.
      CheckpointOptions so = shard_opts;
      if (profiling) so.profile = &out.profile;
      Checkpoint walker(writer, so, claims.get());
      {
        obs::ScopedWalk walk(so.profile);
        switch (item.kind) {
          case WorkItem::kRootRange:
            for (std::size_t r = item.begin; r < item.end; ++r)
              if (roots[r] != nullptr) walker.checkpoint(*roots[r]);
            break;
          case WorkItem::kRootRecord:
            walker.checkpoint_record_only(*roots[item.begin]);
            break;
          case WorkItem::kChildRange:
            for (std::size_t c = item.child_begin; c < item.child_end; ++c)
              walker.checkpoint(*(*item.kids)[c]);
            break;
        }
      }
      walker.end();
      out.stats = walker.stats();
    }
    out.shard = i;
    out.root_begin = item.begin;
    out.root_end = item.end;
    out.worker = static_cast<unsigned>(w);
    const std::size_t bytes = writer.bytes_written() - before;
    if (shard_span.active())
      shard_span.note("item " + std::to_string(i) + ": roots [" +
                      std::to_string(item.begin) + ", " +
                      std::to_string(item.end) + "), " +
                      std::to_string(out.stats.objects_recorded) + "/" +
                      std::to_string(out.stats.objects_visited) +
                      " recorded, " + std::to_string(bytes) + " byte(s)");
    return bytes;
  };

  // ---- Stream through the merge frontier. ---------------------------------
  auto emit_header = [&](io::DataWriter& writer) {
    if (opts.dry_run) return;
    writer.write_u8(kStreamMagic);
    writer.write_u8(kFormatVersion);
    writer.write_u8(static_cast<std::uint8_t>(opts.mode));
    writer.write_u64(epoch);
    writer.write_varint(nroots);
    for (const Checkpointable* root : roots)
      writer.write_varint(root != nullptr ? root->info().id() : kNullObjectId);
  };
  SegmentMerge merge(d, nitems, emit_header);

  StreamingShardRunner::Options ropts;
  ropts.threads = threads;
  ropts.backlog_budget =
      resolve_backlog_budget(opts.merge_backlog_bytes, threads);
  ropts.item_hook = opts.test_item_hook;
  const MergeRunResult rr =
      StreamingShardRunner::run(merge, nitems, ropts, execute_item);

  merge.finish();
  if (!opts.dry_run) d.write_u8(kEndTag);

  // ---- Fold results. ------------------------------------------------------
  ParallelStats result;
  result.shards = nitems;
  result.threads_used = threads;
  result.steals = rr.steals;
  result.merge_seconds = static_cast<double>(rr.merge_ns) / 1e9;
  result.merge_wait_seconds = static_cast<double>(rr.wait_ns) / 1e9;
  result.merge_buffered_peak_bytes = rr.buffered_peak_bytes;
  result.direct_items = rr.direct_items;
  result.shard_stats = std::move(shard_stats);

  std::vector<std::uint64_t> worker_visited(threads, 0);
  for (std::size_t i = 0; i < nitems; ++i) {
    ShardStats& s = result.shard_stats[i];
    const MergeItemResult& ir = rr.items[i];
    s.stolen = ir.stolen;
    s.streamed_direct = ir.direct;
    s.bytes = ir.bytes;
    result.totals.objects_visited += s.stats.objects_visited;
    result.totals.objects_recorded += s.stats.objects_recorded;
    worker_visited[ir.worker] += s.stats.objects_visited;
  }
  std::uint64_t max_visited = 0;
  std::uint64_t sum_visited = 0;
  for (unsigned w = 0; w < threads; ++w) {
    max_visited = std::max(max_visited, worker_visited[w]);
    sum_visited += worker_visited[w];
  }
  if (sum_visited > 0)
    result.imbalance = static_cast<double>(max_visited) * threads /
                       static_cast<double>(sum_visited);

  if (profiling) {
    // Fold the per-item profiles into the caller's accumulator. busy_ns
    // becomes the sum of per-item walk intervals plus the merge-cursor and
    // join-wait time — attributable time, deliberately larger than
    // coordinator wall when items overlap.
    using P = obs::CaptureProfile;
    for (std::size_t i = 0; i < nitems; ++i) {
      ShardStats& s = result.shard_stats[i];
      if (s.streamed_direct)
        s.profile.direct_stream_bytes = s.bytes;
      else
        s.profile.shard_sink_bytes = s.bytes;
      opts.profile->add(s.profile);
    }
    opts.profile->steal_attempts += rr.steal_attempts;
    opts.profile->steal_failures += rr.steal_failures;
    opts.profile->stage_ns[P::kMerge] += rr.merge_ns;
    opts.profile->stage_ns[P::kMergeWait] += rr.wait_ns;
    opts.profile->busy_ns += rr.merge_ns + rr.wait_ns;
    if (rr.buffered_peak_bytes > opts.profile->merge_buffered_peak_bytes)
      opts.profile->merge_buffered_peak_bytes = rr.buffered_peak_bytes;
    opts.profile->epochs += 1;
  }

  // Once-per-capture telemetry; per-call lookups are fine off the worker
  // hot path (same budget recover() spends).
  obs::gauge("ickpt_capture_shards").set(static_cast<std::int64_t>(nitems));
  obs::gauge("ickpt_capture_threads").set(threads);
  obs::gauge("ickpt_capture_merge_buffered_peak_bytes")
      .set(static_cast<std::int64_t>(result.merge_buffered_peak_bytes));
  if (result.steals > 0)
    obs::counter("ickpt_capture_steals_total").inc(result.steals);
  obs::histogram("ickpt_capture_merge_seconds").observe(result.merge_seconds);
  // Skip the imbalance sample when nothing was visited (all-null roots):
  // max/mean is undefined there, and the bounds start at ratio 1.0.
  if (sum_visited > 0)
    obs::histogram("ickpt_capture_imbalance_ratio", {},
                   obs::Histogram::exponential_bounds(1.0, 1.25, 16))
        .observe(result.imbalance);
  if (span.active())
    span.note(std::to_string(threads) + " worker(s) x " +
              std::to_string(nitems) + " item(s), " +
              std::to_string(result.steals) + " steal(s), " +
              std::to_string(result.direct_items) + " direct, peak backlog " +
              std::to_string(result.merge_buffered_peak_bytes) + " byte(s), " +
              std::to_string(result.totals.objects_recorded) + "/" +
              std::to_string(result.totals.objects_visited) + " recorded");
  return result;
}

}  // namespace ickpt::core
