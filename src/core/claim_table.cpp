#include "core/claim_table.hpp"

namespace ickpt::core {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Fibonacci mixing so consecutive ids (the common allocation pattern)
/// spread across stripes instead of marching through one.
std::size_t mix(ObjectId id) noexcept {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ull) >> 32);
}

}  // namespace

ClaimTable::ClaimTable(std::size_t stripes)
    : mask_(round_up_pow2(stripes == 0 ? 1 : stripes) - 1),
      stripes_(new Stripe[mask_ + 1]) {}

bool ClaimTable::claim(ObjectId id) {
  Stripe& s = stripes_[mix(id) & mask_];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.ids.insert(id).second;
}

bool ClaimTable::claim(ObjectId id, std::uint64_t* contended) {
  if (contended == nullptr) return claim(id);
  Stripe& s = stripes_[mix(id) & mask_];
  if (!s.mu.try_lock()) {
    // The stripe is held by another shard right now: this claim is going to
    // wait. Count it, then take the lock for real.
    ++*contended;
    s.mu.lock();
  }
  std::lock_guard<std::mutex> lock(s.mu, std::adopt_lock);
  return s.ids.insert(id).second;
}

std::vector<ObjectId> ClaimTable::ids() const {
  std::vector<ObjectId> out;
  for (std::size_t i = 0; i <= mask_; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    out.insert(out.end(), stripes_[i].ids.begin(), stripes_[i].ids.end());
  }
  return out;
}

std::size_t ClaimTable::size() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i <= mask_; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    n += stripes_[i].ids.size();
  }
  return n;
}

}  // namespace ickpt::core
