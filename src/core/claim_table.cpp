#include "core/claim_table.hpp"

#include <utility>

namespace ickpt::core {

std::size_t ClaimTable::round_up_pow2(std::size_t n) noexcept {
  constexpr std::size_t kTop = (SIZE_MAX >> 1) + 1;  // largest size_t power of two
  if (n >= kTop) return kTop;
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

ClaimTable::Segment::Segment(std::size_t capacity)
    : mask(capacity - 1),
      slots(std::make_unique<std::atomic<ObjectId>[]>(capacity)) {
  for (std::size_t i = 0; i <= mask; ++i) {
    slots[i].store(kNullObjectId, std::memory_order_relaxed);
  }
}

namespace {
// Head capacity: twice the estimate so the common case stays in one segment
// at <= 50% load, floored so tiny estimates don't thrash overflow segments.
std::size_t head_capacity(std::size_t expected_ids) {
  constexpr std::size_t kMinCapacity = 64;
  if (expected_ids < kMinCapacity / 2) return kMinCapacity;
  if (expected_ids > (SIZE_MAX >> 2)) return ClaimTable::round_up_pow2(expected_ids);
  return ClaimTable::round_up_pow2(expected_ids * 2);
}

// Fibonacci mixing so consecutive ids (the common allocation pattern)
// spread across the table instead of clustering into one probe window.
std::size_t slot_hash(ObjectId id) noexcept {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(id) * 0x9E3779B97F4A7C15ull) >> 32);
}
}  // namespace

ClaimTable::ClaimTable(std::size_t expected_ids)
    : head_(head_capacity(expected_ids)) {}

ClaimTable::~ClaimTable() {
  Segment* seg = head_.next.load(std::memory_order_acquire);
  while (seg != nullptr) {
    Segment* next = seg->next.load(std::memory_order_acquire);
    delete seg;
    seg = next;
  }
}

ClaimTable::Probe ClaimTable::probe(Segment& seg, ObjectId id,
                                    std::uint64_t* cas_retries) {
  const std::size_t window =
      kProbeWindow <= seg.mask ? kProbeWindow : seg.mask + 1;
  std::size_t idx = slot_hash(id) & seg.mask;
  for (std::size_t i = 0; i < window; ++i, idx = (idx + 1) & seg.mask) {
    std::atomic<ObjectId>& slot = seg.slots[idx];
    ObjectId cur = slot.load(std::memory_order_acquire);
    if (cur == id) return Probe::kLost;
    if (cur != kNullObjectId) continue;
    // Slot transitions are monotonic (empty -> one id, never back), so a
    // single strong CAS decides the race: success is the unique claim of
    // this id's first free slot, failure reloads whatever beat us.
    ObjectId expected = kNullObjectId;
    if (slot.compare_exchange_strong(expected, id, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      return Probe::kWon;
    }
    if (cas_retries != nullptr) ++*cas_retries;
    if (expected == id) return Probe::kLost;
    // A different id landed here first; keep probing the window.
  }
  return Probe::kFull;
}

ClaimTable::Segment* ClaimTable::next_segment(Segment& seg) {
  Segment* next = seg.next.load(std::memory_order_acquire);
  if (next != nullptr) return next;
  const std::size_t capacity = seg.mask + 1;
  const std::size_t grown =
      capacity <= (SIZE_MAX >> 1) ? capacity * 2 : capacity;
  auto* fresh = new Segment(grown);
  Segment* expected = nullptr;
  if (seg.next.compare_exchange_strong(expected, fresh,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;  // another thread installed the overflow first
  return expected;
}

bool ClaimTable::claim(ObjectId id) { return claim(id, nullptr); }

bool ClaimTable::claim(ObjectId id, std::uint64_t* cas_retries) {
  Segment* seg = &head_;
  for (;;) {
    switch (probe(*seg, id, cas_retries)) {
      case Probe::kWon:
        return true;
      case Probe::kLost:
        return false;
      case Probe::kFull:
        seg = next_segment(*seg);
        break;
    }
  }
}

std::vector<ObjectId> ClaimTable::ids() const {
  std::vector<ObjectId> out;
  for (const Segment* seg = &head_; seg != nullptr;
       seg = seg->next.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i <= seg->mask; ++i) {
      ObjectId id = seg->slots[i].load(std::memory_order_acquire);
      if (id != kNullObjectId) out.push_back(id);
    }
  }
  return out;
}

std::size_t ClaimTable::size() const { return ids().size(); }

std::size_t ClaimTable::segments() const {
  std::size_t n = 0;
  for (const Segment* seg = &head_; seg != nullptr;
       seg = seg->next.load(std::memory_order_acquire)) {
    ++n;
  }
  return n;
}

}  // namespace ickpt::core
