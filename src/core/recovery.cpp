#include "core/recovery.hpp"

#include "core/checkpoint.hpp"
#include "io/byte_sink.hpp"

namespace ickpt::core {

std::size_t RecoveredState::prune_unreachable() {
  // Reachability = what a cycle-guarded dry traversal from the roots visits.
  io::VectorSink sink;
  io::DataWriter writer(sink);
  CheckpointOptions opts;
  opts.dry_run = true;
  opts.cycle_guard = true;
  std::vector<Checkpointable*> root_objs;
  root_objs.reserve(roots.size());
  for (ObjectId id : roots) {
    Checkpointable* obj = find(id);
    if (obj != nullptr) root_objs.push_back(obj);
  }
  Checkpoint walker(writer, 0, root_objs, opts);
  for (Checkpointable* root : root_objs) walker.checkpoint(*root);
  walker.end();
  const auto& live = walker.visited_ids();

  std::size_t dropped = heap.retain_if(
      [&](const Checkpointable& obj) { return live.count(obj.info().id()) != 0; });
  for (auto it = by_id.begin(); it != by_id.end();) {
    if (live.count(it->first) == 0)
      it = by_id.erase(it);
    else
      ++it;
  }
  return dropped;
}

namespace {

StreamHeader read_header(io::DataReader& r) {
  if (r.read_u8() != kStreamMagic)
    throw CorruptionError("bad checkpoint stream magic");
  std::uint8_t version = r.read_u8();
  if (version != kFormatVersion)
    throw CorruptionError("unsupported checkpoint format version " +
                          std::to_string(version));
  std::uint8_t mode_byte = r.read_u8();
  if (mode_byte > static_cast<std::uint8_t>(Mode::kIncremental))
    throw CorruptionError("invalid checkpoint mode byte");
  StreamHeader header;
  header.mode = static_cast<Mode>(mode_byte);
  header.epoch = r.read_u64();
  std::uint64_t nroots = r.read_varint();
  header.roots.reserve(nroots);
  for (std::uint64_t i = 0; i < nroots; ++i)
    header.roots.push_back(r.read_varint());
  return header;
}

}  // namespace

StreamHeader peek_header(const std::vector<std::uint8_t>& payload) {
  io::DataReader r(payload);
  return read_header(r);
}

io::HeaderProbe stream_header_probe() {
  return [](const std::vector<std::uint8_t>& payload, std::uint64_t& epoch,
            std::uint8_t& mode) {
    try {
      const StreamHeader h = peek_header(payload);
      epoch = h.epoch;
      mode = static_cast<std::uint8_t>(h.mode);
      return true;
    } catch (const Error&) {
      return false;
    }
  };
}

StreamHeader Recovery::apply(io::DataReader& r, ApplyStats* stats) {
  StreamHeader header = read_header(r);
  for (;;) {
    std::uint8_t tag = r.read_u8();
    if (tag == kEndTag) break;
    if (tag != kRecordTag)
      throw CorruptionError("unknown record tag " + std::to_string(tag));
    TypeId type = static_cast<TypeId>(r.read_varint());
    ObjectId oid = r.read_varint();
    if (stats != nullptr) {
      ++stats->records;
      ++stats->records_by_type[type];
    }
    if (oid == kNullObjectId)
      throw CorruptionError("record carries null object id");
    if (mode_ == ApplyMode::kScan) {
      // Parse through a transient instance: full payload validation, no
      // graph. The instance dies here; link() collected the child ids.
      const TypeRegistry::Entry& entry = registry_->lookup(type);
      auto scratch = entry.factory(oid);
      event_children_.clear();
      scratch->restore_record(r, *this);
      if (observer_)
        observer_(RecordEvent{type, oid, std::move(event_children_)});
      event_children_.clear();
      continue;
    }
    Checkpointable* obj;
    auto it = objects_.find(oid);
    if (it == objects_.end()) {
      const TypeRegistry::Entry& entry = registry_->lookup(type);
      auto created = entry.factory(oid);
      obj = created.get();
      objects_.emplace(oid, std::move(created));
    } else {
      obj = it->second.get();
      if (obj->type_id() != type)
        throw TypeError("object " + std::to_string(oid) +
                        " changes type across checkpoints");
    }
    obj->restore_record(r, *this);
  }
  if (!r.at_end())
    throw CorruptionError("trailing bytes after checkpoint end tag");
  last_header_ = header;
  has_header_ = true;
  return header;
}

RecoveredState Recovery::finish() {
  if (mode_ == ApplyMode::kScan)
    throw Error("Recovery::finish() is invalid in scan mode");
  if (!has_header_) throw Error("Recovery::finish() with no checkpoint applied");
  for (const Fixup& fixup : fixups_) {
    auto it = objects_.find(fixup.id);
    if (it == objects_.end())
      throw CorruptionError("dangling child reference to object " +
                            std::to_string(fixup.id));
    fixup.set(*it->second);
  }
  fixups_.clear();

  RecoveredState state;
  state.roots = last_header_.roots;
  state.epoch = last_header_.epoch;
  state.by_id.reserve(objects_.size());
  for (auto& [oid, obj] : objects_) {
    // Recovered state corresponds to a moment just after a checkpoint, when
    // every recorded object's flag had been reset.
    obj->info().reset_modified();
    state.by_id.emplace(oid, obj.get());
    state.heap.adopt(std::move(obj));
  }
  objects_.clear();
  return state;
}

}  // namespace ickpt::core
