// ClaimTable: lock-free first-claim table over object ids, the cross-shard
// half of cycle_guard semantics for parallel capture.
//
// Serial cycle_guard keeps one visited set for the whole checkpoint session:
// an object reachable from two roots is recorded under the first root only.
// Parallel capture gives each shard its own private visited set (a fresh
// epoch per shard, no synchronization on the hot revisit path) and resolves
// *cross-shard* sharing here: the first shard to claim() an id records and
// traverses the object, every other shard treats it as already visited.
//
// The table is an open-addressed array of atomic slots claimed by CAS —
// no mutexes, no resizing. A slot only ever makes one transition, empty
// (kNullObjectId) to a claimed id, which is what makes first-claim exact:
// two threads racing the same id probe the same deterministic slot sequence,
// so whichever CAS lands first is observed by the other as a lost claim.
// A probe that finds its whole window occupied by *other* ids moves to the
// next overflow segment (CAS-installed, geometrically growing), so a bad
// capacity estimate degrades to extra probing instead of failing or
// stalling — the table is sized from a root-count estimate, not an object
// count nobody has before the walk.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace ickpt::core {

class ClaimTable {
 public:
  /// `expected_ids` is a capacity hint (typically roots x branching guess);
  /// the head segment is sized to twice that, rounded up to a power of two.
  /// Underestimates cost overflow segments, never correctness.
  explicit ClaimTable(std::size_t expected_ids = 256);
  ~ClaimTable();
  ClaimTable(const ClaimTable&) = delete;
  ClaimTable& operator=(const ClaimTable&) = delete;

  /// True exactly once per id across all threads: the caller that gets true
  /// owns the object — it records and traverses it; everyone else skips.
  /// `id` must not be kNullObjectId (it marks an empty slot).
  bool claim(ObjectId id);

  /// Profiled variant: when `cas_retries` is non-null, each compare-exchange
  /// that loses its race (the slot changed under us — a real cross-shard
  /// collision on one cache line) increments it. This replaces the striped
  /// table's lock-wait counter: there is nothing left to wait on, only
  /// retried CASes. Semantics identical to claim(id).
  bool claim(ObjectId id, std::uint64_t* cas_retries);

  /// Every id claimed so far. Not linearizable against concurrent claim();
  /// meant for post-join inspection and tests.
  [[nodiscard]] std::vector<ObjectId> ids() const;
  [[nodiscard]] std::size_t size() const;
  /// Number of segments allocated (1 = the estimate held).
  [[nodiscard]] std::size_t segments() const;

  /// Round up to a power of two, clamped to the largest representable one —
  /// `p <<= 1` must never shift out to 0 and loop forever (same guard as the
  /// backoff_delay clamp). Exposed for the boundary unit test.
  [[nodiscard]] static std::size_t round_up_pow2(std::size_t n) noexcept;

  /// Slots probed within one segment before spilling to the next.
  static constexpr std::size_t kProbeWindow = 32;

 private:
  struct Segment {
    explicit Segment(std::size_t capacity);
    const std::size_t mask;  // capacity - 1 (capacity is a power of two)
    std::unique_ptr<std::atomic<ObjectId>[]> slots;  // kNullObjectId = empty
    std::atomic<Segment*> next{nullptr};
  };

  enum class Probe : std::uint8_t { kWon, kLost, kFull };

  Probe probe(Segment& seg, ObjectId id, std::uint64_t* cas_retries);
  /// The segment after `seg`, installing a fresh (doubled) one if none.
  Segment* next_segment(Segment& seg);

  Segment head_;
};

}  // namespace ickpt::core
