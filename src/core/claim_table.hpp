// ClaimTable: striped first-claim table over object ids, the cross-shard
// half of cycle_guard semantics for parallel capture.
//
// Serial cycle_guard keeps one visited set for the whole checkpoint session:
// an object reachable from two roots is recorded under the first root only.
// Parallel capture gives each shard its own private visited set (a fresh
// epoch per shard, no synchronization on the hot revisit path) and resolves
// *cross-shard* sharing here: the first shard to claim() an id records and
// traverses the object, every other shard treats it as already visited. The
// table is striped — ids hash onto independently locked buckets — so claims
// from different shards contend only when they hash onto the same stripe.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace ickpt::core {

class ClaimTable {
 public:
  /// `stripes` is rounded up to a power of two.
  explicit ClaimTable(std::size_t stripes = 64);
  ClaimTable(const ClaimTable&) = delete;
  ClaimTable& operator=(const ClaimTable&) = delete;

  /// True exactly once per id across all threads: the caller that gets true
  /// owns the object — it records and traverses it; everyone else skips.
  bool claim(ObjectId id);

  /// Profiled variant: when `contended` is non-null, each claim that finds
  /// its stripe already locked (a try_lock miss, i.e. a real cross-shard
  /// lock wait) increments it — the contention signal the parallel-capture
  /// profiler ranks stripe counts by. Semantics identical to claim(id).
  bool claim(ObjectId id, std::uint64_t* contended);

  /// Every id claimed so far. Not for use concurrently with claim().
  [[nodiscard]] std::vector<ObjectId> ids() const;
  [[nodiscard]] std::size_t size() const;

 private:
  /// One lock + id set per stripe, padded so stripes never share a line.
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_set<ObjectId> ids;
  };

  std::size_t mask_;
  std::unique_ptr<Stripe[]> stripes_;
};

}  // namespace ickpt::core
