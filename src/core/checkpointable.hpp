// The Checkpointable interface (paper Fig. 1) and the object heap.
//
// A checkpointable class must expose its CheckpointInfo, know its registered
// TypeId, record its local state (scalars directly, children by id), fold the
// checkpointer over its children, and mirror record() during recovery.
//
// Ownership: as in Java, the object graph does not own its members — a Heap
// arena owns every checkpointable object and links between objects are plain
// non-owning pointers. Recovery materializes a fresh Heap.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/checkpoint_info.hpp"
#include "io/data_reader.hpp"
#include "io/data_writer.hpp"

namespace ickpt::core {

class Checkpoint;
class Recovery;

/// Tag selecting the "reconstruct with a preserved id" constructor that every
/// checkpointable class provides for the TypeRegistry factory.
struct RestoreTag {};

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  [[nodiscard]] virtual CheckpointInfo& info() noexcept = 0;
  [[nodiscard]] virtual const CheckpointInfo& info() const noexcept = 0;

  /// The TypeId this class registered with the TypeRegistry.
  [[nodiscard]] virtual TypeId type_id() const noexcept = 0;

  /// Write the local state: base-type fields directly, each checkpointable
  /// child as its unique id (paper §2.1).
  virtual void record(io::DataWriter& d) const = 0;

  /// Apply the checkpointer to each checkpointable child (paper §2.1).
  virtual void fold(Checkpoint& c) = 0;

  /// Exact mirror of record(): read the local state back, resolving child
  /// ids through the Recovery context.
  virtual void restore_record(io::DataReader& d, Recovery& r) = 0;
};

/// Convenience base that stores the CheckpointInfo, as the paper factors it
/// out of each class.
class WithCheckpointInfo : public Checkpointable {
 public:
  WithCheckpointInfo() = default;
  explicit WithCheckpointInfo(ObjectId id) : info_(id) {}

  [[nodiscard]] CheckpointInfo& info() noexcept final { return info_; }
  [[nodiscard]] const CheckpointInfo& info() const noexcept final {
    return info_;
  }

 protected:
  CheckpointInfo info_;
};

/// Arena that owns every live checkpointable object (the Java heap analog).
class Heap {
 public:
  Heap() = default;
  Heap(Heap&&) noexcept = default;
  Heap& operator=(Heap&&) noexcept = default;
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  template <class T, class... Args>
  T* make(Args&&... args) {
    auto obj = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = obj.get();
    objects_.push_back(std::move(obj));
    return raw;
  }

  /// Take ownership of an object constructed elsewhere (recovery path).
  Checkpointable* adopt(std::unique_ptr<Checkpointable> obj) {
    Checkpointable* raw = obj.get();
    objects_.push_back(std::move(obj));
    return raw;
  }

  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }

  void clear() noexcept { objects_.clear(); }

  /// Destroy every object for which `keep` returns false; returns how many
  /// were destroyed. Used by recovery's reachability pruning.
  template <class Pred>
  std::size_t retain_if(Pred keep) {
    const std::size_t before = objects_.size();
    std::erase_if(objects_,
                  [&](const std::unique_ptr<Checkpointable>& obj) {
                    return !keep(*obj);
                  });
    return before - objects_.size();
  }

 private:
  std::vector<std::unique_ptr<Checkpointable>> objects_;
};

/// Record a child reference as its unique id (null child -> kNullObjectId).
inline void write_child_id(io::DataWriter& d, const Checkpointable* child) {
  d.write_varint(child != nullptr ? child->info().id() : kNullObjectId);
}

}  // namespace ickpt::core
