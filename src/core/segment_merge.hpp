// SegmentMerge + StreamingShardRunner: the streaming ordered merge behind
// parallel capture (core::ParallelCheckpoint and spec's sharded plan path).
//
// The old sharded path buffered every shard's whole segment in memory and
// concatenated them after a full barrier — the merge cost was serial,
// the memory cost was the entire stream, and on one core the buffering
// alone made parallel capture slower than serial. This module replaces the
// barrier with a merge *frontier*:
//
//   - Work items are ordered; the on-disk stream is the concatenation of
//     their segments in item order (byte-identical to serial by
//     construction).
//   - The frontier is the lowest item index not yet streamed to the
//     caller's DataWriter. A worker whose item IS the frontier can acquire
//     the merge cursor and write straight into the caller's writer — those
//     bytes are never buffered at all. Any other item records into a
//     private VectorSink and publishes it; whoever advances the frontier
//     drains published segments in order.
//   - Extra memory is therefore bounded by out-of-order segments only,
//     and the high-water mark of that backlog is tracked (profile counter
//     + gauge) so the bound is observable, not asserted.
//
// Header deferral (torn-stream fix): the stream header is emitted by the
// merge cursor immediately before the first segment bytes leave, never at
// construction. Item 0 is kept tiny by the callers (a single root / the
// plan header), so a worker exception before any segment drains leaves the
// caller's writer with zero bytes written — same as a serial throw at the
// first record... except serial has already written its header; parallel
// is now strictly cleaner.
//
// Threading: item states advance pending -> published -> streamed with
// release/acquire pairs on the state atomic, so segment bytes written by
// one thread are visible to the drainer. The cursor mutex serializes only
// frontier advancement and caller-writer access; claim arbitration and
// work claiming are lock-free (see claim_table.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "io/data_writer.hpp"

namespace ickpt::core {

/// Ordered merge cursor over `nitems` segments feeding one DataWriter.
class SegmentMerge {
 public:
  /// `emit_header` runs under the cursor lock immediately before the first
  /// streamed byte (stream header / nothing for dry runs).
  SegmentMerge(io::DataWriter& d, std::size_t nitems,
               std::function<void(io::DataWriter&)> emit_header);

  SegmentMerge(const SegmentMerge&) = delete;
  SegmentMerge& operator=(const SegmentMerge&) = delete;

  /// Hand item `i`'s recorded bytes to the cursor (out-of-order path).
  /// After this the segment belongs to the merge; the worker moves on.
  void publish(std::size_t i, std::vector<std::uint8_t>&& bytes);

  /// Opportunistically advance the frontier: stream every contiguous
  /// published segment starting at the frontier. Returns without blocking
  /// if another thread holds the cursor. Safe to call from any worker.
  void try_drain();

  /// RAII grant to write item `i` directly into the caller's writer.
  /// Holding it holds the cursor lock — keep the critical section to the
  /// item's own recording. commit() marks the item streamed, advances the
  /// frontier, and drains any segments it unblocked.
  class Direct {
   public:
    Direct(Direct&&) noexcept = default;
    ~Direct() = default;
    Direct(const Direct&) = delete;
    Direct& operator=(const Direct&) = delete;

    [[nodiscard]] io::DataWriter& writer() noexcept { return *d_; }
    void commit();

   private:
    friend class SegmentMerge;
    Direct(SegmentMerge& m, std::size_t item,
           std::unique_lock<std::mutex> lock) noexcept
        : m_(&m), item_(item), lock_(std::move(lock)) {}
    SegmentMerge* m_;
    io::DataWriter* d_ = nullptr;
    std::size_t item_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Try to claim direct-streaming rights for item `i`. Succeeds only when
  /// `i` is the current frontier, the header is already out (item 0 always
  /// buffers, so a pre-header throw leaves the writer untouched), and the
  /// cursor lock is free right now. nullopt means: record into a private
  /// sink and publish() instead.
  [[nodiscard]] std::optional<Direct> try_direct(std::size_t i);

  /// Blocking final drain: streams everything still published, and emits
  /// the header even for an empty item set (nitems == 0). Called once by
  /// the coordinator after a successful join; NOT called on failure, which
  /// is what keeps a failed capture byte-free.
  void finish();

  [[nodiscard]] std::size_t frontier() const noexcept {
    return frontier_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t backlog_bytes() const noexcept {
    return backlog_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t buffered_peak_bytes() const noexcept {
    return peak_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t merge_ns() const noexcept {
    return merge_ns_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t direct_items() const noexcept {
    return direct_items_.load(std::memory_order_acquire);
  }
  /// Bytes that went through published (buffered) segments.
  [[nodiscard]] std::uint64_t segment_bytes() const noexcept {
    return segment_bytes_.load(std::memory_order_acquire);
  }
  /// Last published segment's size — a reserve() hint for the next
  /// private sink, killing the realloc ramp on steady-state captures.
  [[nodiscard]] std::size_t reserve_hint() const noexcept {
    return reserve_hint_.load(std::memory_order_relaxed);
  }

 private:
  enum : std::uint8_t { kPending = 0, kPublished = 1, kStreamed = 2 };

  struct Item {
    std::atomic<std::uint8_t> state{kPending};
    std::vector<std::uint8_t> bytes;  // valid only in kPublished
  };

  /// Requires mu_ held. Streams contiguous published segments from the
  /// frontier, emitting the header before the first byte, then samples the
  /// backlog high-water — after streaming, so only genuinely
  /// frontier-blocked bytes count toward the peak.
  void drain_locked();

  io::DataWriter& d_;
  std::function<void(io::DataWriter&)> emit_header_;
  std::vector<Item> items_;
  std::mutex mu_;
  bool header_written_ = false;  // guarded by mu_
  std::atomic<std::size_t> frontier_{0};
  std::atomic<std::size_t> backlog_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> reserve_hint_{0};
  std::atomic<std::uint64_t> merge_ns_{0};
  std::atomic<std::uint64_t> direct_items_{0};
  std::atomic<std::uint64_t> segment_bytes_{0};
};

/// One work item's outcome, in item order.
struct MergeItemResult {
  std::size_t worker = 0;   ///< worker index that executed it
  bool stolen = false;      ///< executed outside its home block
  bool direct = false;      ///< streamed directly, never buffered
  std::size_t bytes = 0;    ///< segment size (buffered or direct)
};

struct MergeRunResult {
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_failures = 0;
  std::uint64_t merge_ns = 0;        ///< cursor lock-hold time (kMerge)
  std::uint64_t wait_ns = 0;         ///< coordinator join wait (kMergeWait)
  std::uint64_t direct_items = 0;
  std::uint64_t segment_bytes = 0;   ///< buffered (published) bytes
  std::uint64_t direct_bytes = 0;    ///< direct-streamed bytes
  std::size_t buffered_peak_bytes = 0;
  std::vector<MergeItemResult> items;
};

/// Frontier-preferring work-stealing scheduler shared by ParallelCheckpoint
/// and spec's sharded plan executor.
///
/// Scheduling policy, in priority order for each worker iteration:
///   1. the frontier item, if unclaimed — try to stream it directly
///      (zero-copy) or at least get it recorded so the frontier can move;
///   2. when the published backlog exceeds `backlog_budget`, yield instead
///      of buffering more (oversubscribed boxes: recording ahead of the
///      frontier only grows memory without any wall-clock win);
///   3. the worker's own home block, then stealing from the busiest
///      remaining block.
///
/// `execute(item, worker, writer)` records item `item` into `writer` and
/// returns the number of bytes it wrote. The runner decides whether that
/// writer targets the caller's stream (direct) or a private sink (publish).
class StreamingShardRunner {
 public:
  struct Options {
    std::size_t threads = 1;
    /// Published-backlog bytes beyond which non-frontier work yields.
    /// SIZE_MAX = unbounded (real parallelism: buffering ahead is the win);
    /// 0 = strict streaming (oversubscribed: never buffer more than the
    /// segment in flight).
    std::size_t backlog_budget = SIZE_MAX;
    /// Shard-sink reserve floor (bytes); the live reserve hint can raise it.
    std::size_t reserve_floor = 0;
    /// Test-only: fires after each item is published or committed, with the
    /// item index. Used to force out-of-order completion deterministically.
    std::function<void(std::size_t)> item_hook;
  };

  using Execute =
      std::function<std::size_t(std::size_t item, std::size_t worker,
                                io::DataWriter& writer)>;

  /// Run `nitems` items over `opts.threads` workers (the calling thread is
  /// worker 0), streaming segments into `merge` in item order. Rethrows the
  /// first worker exception after all workers stop; in that case merge is
  /// left unfinished (no end tag, possibly no header). On success the
  /// caller still owns finish() + end-tag framing.
  static MergeRunResult run(SegmentMerge& merge, std::size_t nitems,
                            const Options& opts, const Execute& execute);

  /// Default backlog budget: unbounded when every worker has a core behind
  /// it (recording ahead of the frontier is the parallelism win), 0 when
  /// oversubscribed (buffering ahead of a frontier that shares your core
  /// only grows memory).
  [[nodiscard]] static std::size_t auto_backlog_budget(
      std::size_t threads) noexcept;
};

}  // namespace ickpt::core
