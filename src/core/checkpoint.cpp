#include "core/checkpoint.hpp"

#include "common/error.hpp"

namespace ickpt::core {

Checkpoint::Checkpoint(io::DataWriter& d, Epoch epoch,
                       std::span<Checkpointable* const> roots,
                       CheckpointOptions opts)
    : d_(d), mode_(opts.mode), dry_(opts.dry_run), guard_(opts.cycle_guard) {
  bind_hooks(opts.hooks);
  if (dry_) return;
  d_.write_u8(kStreamMagic);
  d_.write_u8(kFormatVersion);
  d_.write_u8(static_cast<std::uint8_t>(mode_));
  d_.write_u64(epoch);
  d_.write_varint(roots.size());
  for (const Checkpointable* root : roots)
    d_.write_varint(root != nullptr ? root->info().id() : kNullObjectId);
}

Checkpoint::Checkpoint(io::DataWriter& d, CheckpointOptions opts,
                       ClaimTable* claims)
    : d_(d),
      mode_(opts.mode),
      dry_(opts.dry_run),
      guard_(opts.cycle_guard),
      framing_(false),
      claims_(claims) {
  bind_hooks(opts.hooks);
}

void Checkpoint::end() {
  if (ended_) throw Error("Checkpoint::end() called twice");
  ended_ = true;
  if (!dry_ && framing_) d_.write_u8(kEndTag);
}

CheckpointStats Checkpoint::run(io::DataWriter& d, Epoch epoch,
                                std::span<Checkpointable* const> roots,
                                CheckpointOptions opts) {
  Checkpoint c(d, epoch, roots, opts);
  for (Checkpointable* root : roots)
    if (root != nullptr) c.checkpoint(*root);
  c.end();
  return c.stats();
}

}  // namespace ickpt::core
