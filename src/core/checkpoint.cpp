#include "core/checkpoint.hpp"

#include "common/error.hpp"
#include "io/byte_sink.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace ickpt::core {

Checkpoint::Checkpoint(io::DataWriter& d, Epoch epoch,
                       std::span<Checkpointable* const> roots,
                       CheckpointOptions opts)
    : d_(d),
      mode_(opts.mode),
      dry_(opts.dry_run),
      guard_(opts.cycle_guard),
      prof_(opts.profile) {
  bind_hooks(opts.hooks);
  if (dry_) return;
  d_.write_u8(kStreamMagic);
  d_.write_u8(kFormatVersion);
  d_.write_u8(static_cast<std::uint8_t>(mode_));
  d_.write_u64(epoch);
  d_.write_varint(roots.size());
  for (const Checkpointable* root : roots)
    d_.write_varint(root != nullptr ? root->info().id() : kNullObjectId);
}

Checkpoint::Checkpoint(io::DataWriter& d, CheckpointOptions opts,
                       ClaimTable* claims)
    : d_(d),
      mode_(opts.mode),
      dry_(opts.dry_run),
      guard_(opts.cycle_guard),
      framing_(false),
      claims_(claims),
      prof_(opts.profile) {
  bind_hooks(opts.hooks);
}

void Checkpoint::checkpoint_record_only(Checkpointable& o) {
  if (prof_ != nullptr) {
    checkpoint_profiled(o, /*fold_children=*/false);
    return;
  }
  if (guard_) {
    if (!visited_.insert(o.info().id()).second ||
        (claims_ != nullptr && !claims_->claim(o.info().id()))) {
      if (revisit_ != nullptr) (*revisit_)(o);
      return;
    }
  }
  ++stats_.objects_visited;
  CheckpointInfo& info = o.info();
  if (mode_ == Mode::kFull || info.modified()) {
    ++stats_.objects_recorded;
    if (!dry_) {
      d_.write_u8(kRecordTag);
      d_.write_varint(o.type_id());
      d_.write_varint(info.id());
      o.record(d_);
      info.reset_modified();
    }
  }
}

void Checkpoint::checkpoint_profiled(Checkpointable& o, bool fold_children) {
  // Mark-based attribution: `mark` advances past each measured segment, so
  // every nanosecond between entry and the start of fold() lands in exactly
  // one stage. The fold interval itself is accounted by the children's own
  // visits plus the enclosing ScopedWalk's kRootWalk residual.
  using P = obs::CaptureProfile;
  std::uint64_t mark = obs::trace_now_ns();
  if (guard_) {
    prof_->visited_probes += 1;
    const bool fresh = visited_.insert(o.info().id()).second;
    bool claimed = true;
    if (fresh && claims_ != nullptr) {
      prof_->claim_attempts += 1;
      claimed = claims_->claim(o.info().id(), &prof_->claim_cas_retries);
      if (!claimed) prof_->claims_lost += 1;
    }
    const std::uint64_t now = obs::trace_now_ns();
    prof_->stage_ns[P::kClaim] += now - mark;
    mark = now;
    if (!fresh || !claimed) {
      if (revisit_ != nullptr) (*revisit_)(o);
      return;
    }
  }
  ++stats_.objects_visited;
  prof_->objects += 1;
  CheckpointInfo& info = o.info();
  const bool record = mode_ == Mode::kFull || info.modified();
  {
    const std::uint64_t now = obs::trace_now_ns();
    prof_->stage_ns[P::kDirtyTest] += now - mark;
    mark = now;
  }
  if (record) {
    ++stats_.objects_recorded;
    prof_->records += 1;
    if (!dry_) {
      d_.write_u8(kRecordTag);
      d_.write_varint(o.type_id());
      d_.write_varint(info.id());
      o.record(d_);
      info.reset_modified();
    }
    prof_->stage_ns[P::kSerialize] += obs::trace_now_ns() - mark;
  }
  if (!fold_children) return;
  if (enter_ != nullptr) (*enter_)(o);
  o.fold(*this);
  if (leave_ != nullptr) (*leave_)(o);
}

void Checkpoint::end() {
  if (ended_) throw Error("Checkpoint::end() called twice");
  ended_ = true;
  if (!dry_ && framing_) d_.write_u8(kEndTag);
}

void Checkpoint::collect_children(Checkpointable& o,
                                  std::vector<Checkpointable*>& out) {
  io::CountingSink sink;
  io::DataWriter d(sink, 16);
  CheckpointOptions opts;
  opts.dry_run = true;
  Checkpoint collector(d, opts, nullptr);
  collector.collect_ = &out;
  o.fold(collector);
}

CheckpointStats Checkpoint::run(io::DataWriter& d, Epoch epoch,
                                std::span<Checkpointable* const> roots,
                                CheckpointOptions opts) {
  Checkpoint c(d, epoch, roots, opts);
  {
    // Residual attribution: the walk wall not claimed by dirty-test /
    // serialize / claim becomes kRootWalk (no-op when profile is null).
    obs::ScopedWalk walk(opts.profile);
    for (Checkpointable* root : roots)
      if (root != nullptr) c.checkpoint(*root);
  }
  if (opts.profile != nullptr) opts.profile->epochs += 1;
  c.end();
  return c.stats();
}

}  // namespace ickpt::core
