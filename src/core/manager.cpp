#include "core/manager.hpp"

#include <chrono>
#include <cstdio>
#include <optional>

#include "common/error.hpp"
#include "core/recovery_note.hpp"
#include "io/byte_sink.hpp"
#include "io/file_io.hpp"
#include "io/data_writer.hpp"
#include "obs/trace.hpp"

namespace ickpt::core {

CheckpointManager::Metrics::Metrics()
    : checkpoints_full(
          obs::counter("ickpt_checkpoints_total", {{"mode", "full"}})),
      checkpoints_incremental(
          obs::counter("ickpt_checkpoints_total", {{"mode", "incremental"}})),
      objects_visited(obs::counter("ickpt_checkpoint_objects_total",
                                   {{"result", "visited"}})),
      objects_recorded(obs::counter("ickpt_checkpoint_objects_total",
                                    {{"result", "recorded"}})),
      objects_skipped(obs::counter("ickpt_checkpoint_objects_total",
                                   {{"result", "skipped"}})),
      bytes_full(
          obs::counter("ickpt_checkpoint_bytes_total", {{"mode", "full"}})),
      bytes_incremental(obs::counter("ickpt_checkpoint_bytes_total",
                                     {{"mode", "incremental"}})),
      build_seconds(obs::histogram("ickpt_checkpoint_build_seconds")),
      epoch(obs::gauge("ickpt_epoch")) {}

CheckpointManager::CheckpointManager(std::string path, ManagerOptions opts)
    : opts_(opts),
      storage_(std::move(path),
               io::StorageOptions{.durable = opts.durable,
                                  .fault = opts.fault_policy,
                                  .retry = opts.retry}) {
  if (opts_.full_interval == 0)
    throw Error("ManagerOptions.full_interval must be >= 1");
  // Resume epoch numbering after a restart: frames and epochs are appended
  // 1:1, so the next epoch is the next storage sequence number.
  epoch_ = storage_.next_seq();
  if (opts_.async_io) async_ = std::make_unique<AsyncLog>(storage_);
}

void CheckpointManager::flush() {
  if (async_ != nullptr) async_->drain();
}

TakeResult CheckpointManager::take(std::span<Checkpointable* const> roots) {
  Mode mode = (epoch_ % opts_.full_interval == 0) ? Mode::kFull
                                                  : Mode::kIncremental;
  return take_with_mode(roots, mode);
}

TakeResult CheckpointManager::take(Checkpointable& root) {
  Checkpointable* roots[] = {&root};
  return take(std::span<Checkpointable* const>(roots));
}

TakeResult CheckpointManager::take_with_mode(
    std::span<Checkpointable* const> roots, Mode mode) {
  obs::Span span("checkpoint.take", "checkpoint");
  io::VectorSink sink;
  CheckpointStats stats;
  // The clock costs nothing unless a histogram cell is actually installed.
  const bool timed = metrics_.build_seconds.live();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();
  {
    io::DataWriter writer(sink);
    CheckpointOptions copts;
    copts.mode = mode;
    copts.cycle_guard = opts_.cycle_guard;
    stats = Checkpoint::run(writer, epoch_, roots, copts);
    writer.flush();
  }
  if (timed)
    metrics_.build_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  (mode == Mode::kFull ? metrics_.checkpoints_full
                       : metrics_.checkpoints_incremental)
      .inc();
  (mode == Mode::kFull ? metrics_.bytes_full : metrics_.bytes_incremental)
      .inc(sink.size());
  metrics_.objects_visited.inc(stats.objects_visited);
  metrics_.objects_recorded.inc(stats.objects_recorded);
  metrics_.objects_skipped.inc(stats.objects_visited -
                               stats.objects_recorded);
  metrics_.epoch.set(static_cast<std::int64_t>(epoch_));
  TakeResult result;
  result.epoch = epoch_++;
  result.mode = mode;
  result.bytes = sink.size();
  result.stats = stats;
  if (span.active())
    span.note(std::string(mode == Mode::kFull ? "full" : "incremental") +
              " epoch " + std::to_string(result.epoch) + ", " +
              std::to_string(result.bytes) + " byte(s), " +
              std::to_string(stats.objects_recorded) + "/" +
              std::to_string(stats.objects_visited) + " recorded");
  if (async_ != nullptr) {
    // Appends are FIFO and 1:1 with epochs, so the frame will carry the
    // epoch as its sequence number.
    result.seq = result.epoch;
    async_->submit(sink.take());
  } else {
    result.seq = storage_.append(sink.bytes());
  }
  return result;
}

namespace {

/// Replay frames [begin, end) of `frames` into a fresh Recovery. On a
/// decode failure *after* the full checkpoint, trims the window at the
/// failing frame and replays — the surviving prefix is still consistent
/// (recovery applies frames in order, so frames before the bad one are
/// unaffected by it). Returns false when the full checkpoint itself is
/// undecodable. Trims are collected into `note`; `records` receives the
/// record count of the finally-applied window.
bool apply_window(const std::vector<io::Frame>& frames, std::size_t begin,
                  std::size_t end_limit, const TypeRegistry& registry,
                  RecoveredState& out, std::size_t& applied,
                  RecoveryNote& note, std::size_t& records) {
  std::size_t end = end_limit;
  while (end > begin) {
    Recovery recovery(registry);
    std::size_t at = begin;
    std::string what;
    bool failed = false;
    ApplyStats window_stats;
    for (; at < end; ++at) {
      try {
        io::DataReader reader(frames[at].payload);
        ApplyStats frame_stats;
        recovery.apply(reader, &frame_stats);
        window_stats.records += frame_stats.records;
      } catch (const Error& e) {
        failed = true;
        what = e.what();
        break;
      }
    }
    if (!failed) {
      try {
        out = recovery.finish();
        applied = end - begin;
        records = window_stats.records;
        return true;
      } catch (const Error& e) {
        // A dangling link etc. — dropping the last frame may close the
        // window again.
        failed = true;
        what = e.what();
        at = end - 1;
      }
    }
    if (at == begin) return false;
    note.trims.push_back(RecoveryNote::Trim{
        frames[at].seq, what, end_limit - at});
    end = at;
  }
  return false;
}

std::optional<Mode> frame_mode(const io::Frame& frame) {
  try {
    return peek_header(frame.payload).mode;
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace

RecoverResult CheckpointManager::recover(const std::string& path,
                                         const TypeRegistry& registry,
                                         RecoverOptions opts) {
  obs::Span span("checkpoint.recover", "recovery");
  io::ScanResult scan =
      io::StableStorage::scan(path, {.salvage = opts.salvage});
  if (scan.frames.empty())
    throw CorruptionError("no recoverable checkpoint in '" + path + "'" +
                          (scan.clean ? "" : " (" + scan.stop_reason + ")"));

  RecoverResult result;
  result.log_clean = scan.clean;
  result.frames_total = scan.frames.size();
  result.corrupt_regions = scan.regions_skipped;
  result.bytes_skipped = scan.bytes_skipped;
  result.damage_offset = scan.stop_offset;

  RecoveryNote note;
  if (!scan.clean) {
    note.stop_reason = scan.stop_reason;
    note.damage_offset = scan.stop_offset;
    note.regions_skipped = scan.regions_skipped;
    note.bytes_skipped = scan.bytes_skipped;
    obs::instant("recover.salvage", "recovery",
                 scan.stop_reason + " at byte " +
                     std::to_string(scan.stop_offset) + ", " +
                     std::to_string(scan.regions_skipped) +
                     " region(s) skipped");
  }

  // Contiguous runs of frames: a corrupt region (resync frame) starts a new
  // segment. Incrementals can only be applied onto a full checkpoint from
  // the *same* segment — across a gap, deltas may be missing.
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 1; i < scan.frames.size(); ++i)
    if (scan.frames[i].resync) starts.push_back(i);
  starts.push_back(scan.frames.size());

  bool recovered = false;
  std::size_t records_applied = 0;
  // Newest usable window wins: walk segments from the back, and inside a
  // segment prefer the latest full checkpoint.
  for (std::size_t s = starts.size() - 1; s-- > 0 && !recovered;) {
    const std::size_t seg_begin = starts[s];
    const std::size_t seg_end = starts[s + 1];
    for (std::size_t i = seg_end; i-- > seg_begin && !recovered;) {
      if (frame_mode(scan.frames[i]) != Mode::kFull) continue;
      std::size_t applied = 0;
      obs::Span apply_span("recover.apply_window", "recovery");
      if (apply_window(scan.frames, i, seg_end, registry, result.state,
                       applied, note, records_applied)) {
        result.checkpoints_applied = applied;
        recovered = true;
      }
    }
  }
  if (!recovered)
    throw CorruptionError("log '" + path +
                          "' contains no usable full checkpoint" +
                          (scan.clean ? "" : " (" + scan.stop_reason + ")"));

  result.frames_dropped = result.frames_total - result.checkpoints_applied;
  note.frames_outside_window = result.frames_dropped;
  result.log_note = note.render();

  obs::counter("ickpt_recoveries_total",
               {{"log", scan.clean ? "clean" : "damaged"}})
      .inc();
  obs::counter("ickpt_recover_frames_total", {{"result", "applied"}})
      .inc(result.checkpoints_applied);
  obs::counter("ickpt_recover_frames_total", {{"result", "dropped"}})
      .inc(result.frames_dropped);
  obs::counter("ickpt_recover_records_total").inc(records_applied);
  if (result.corrupt_regions > 0) {
    obs::counter("ickpt_recover_salvage_regions_total")
        .inc(result.corrupt_regions);
    obs::counter("ickpt_recover_salvage_bytes_total")
        .inc(result.bytes_skipped);
  }
  if (span.active())
    span.note(std::to_string(result.checkpoints_applied) +
              " checkpoint(s) applied, " +
              std::to_string(result.state.by_id.size()) + " object(s); " +
              note.trace_note());
  return result;
}

CompactResult CheckpointManager::compact(const std::string& path,
                                         const TypeRegistry& registry,
                                         io::FaultPolicy* fault) {
  obs::Span span("checkpoint.compact", "checkpoint");
  obs::Histogram compact_seconds = obs::histogram("ickpt_compact_seconds");
  const bool timed = compact_seconds.live();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();

  RecoverResult recovered = recover(path, registry);

  CompactResult result;
  result.objects = recovered.state.by_id.size();
  try {
    result.bytes_before = io::read_file(path).size();
  } catch (const IoError&) {
    result.bytes_before = 0;
  }

  // One full checkpoint of the recovered state, built in a sibling file and
  // atomically published over the log: temp write + fsync + rename +
  // directory fsync. A crash anywhere in here loses only the compaction;
  // the original log is not touched until the rename.
  std::vector<Checkpointable*> roots;
  roots.reserve(recovered.state.roots.size());
  for (ObjectId id : recovered.state.roots) {
    Checkpointable* obj = recovered.state.find(id);
    if (obj == nullptr)
      throw CorruptionError("compaction: root vanished during recovery");
    roots.push_back(obj);
  }

  const std::string tmp_path = path + ".compact";
  std::remove(tmp_path.c_str());  // stale leftover of a crashed compaction
  {
    io::StableStorage fresh(tmp_path,
                            io::StorageOptions{.durable = true,
                                               .fault = fault});
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      CheckpointOptions copts;
      copts.mode = Mode::kFull;
      Checkpoint::run(writer, recovered.state.epoch, roots, copts);
      writer.flush();
    }
    result.bytes_after = sink.size();
    fresh.append(sink.bytes());
  }
  io::rename_durable(tmp_path, path);
  obs::counter("ickpt_compacts_total").inc();
  if (timed)
    compact_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  if (span.active())
    span.note(std::to_string(result.objects) + " object(s), " +
              std::to_string(result.bytes_before) + " -> " +
              std::to_string(result.bytes_after) + " byte(s)");
  return result;
}

}  // namespace ickpt::core
