#include "core/manager.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "io/byte_sink.hpp"
#include "io/file_io.hpp"
#include "io/data_writer.hpp"

namespace ickpt::core {

CheckpointManager::CheckpointManager(std::string path, ManagerOptions opts)
    : opts_(opts), storage_(std::move(path), opts.durable) {
  if (opts_.full_interval == 0)
    throw Error("ManagerOptions.full_interval must be >= 1");
  // Resume epoch numbering after a restart: frames and epochs are appended
  // 1:1, so the next epoch is the next storage sequence number.
  epoch_ = storage_.next_seq();
  if (opts_.async_io) async_ = std::make_unique<AsyncLog>(storage_);
}

void CheckpointManager::flush() {
  if (async_ != nullptr) async_->drain();
}

TakeResult CheckpointManager::take(std::span<Checkpointable* const> roots) {
  Mode mode = (epoch_ % opts_.full_interval == 0) ? Mode::kFull
                                                  : Mode::kIncremental;
  return take_with_mode(roots, mode);
}

TakeResult CheckpointManager::take(Checkpointable& root) {
  Checkpointable* roots[] = {&root};
  return take(std::span<Checkpointable* const>(roots));
}

TakeResult CheckpointManager::take_with_mode(
    std::span<Checkpointable* const> roots, Mode mode) {
  io::VectorSink sink;
  CheckpointStats stats;
  {
    io::DataWriter writer(sink);
    CheckpointOptions copts;
    copts.mode = mode;
    copts.cycle_guard = opts_.cycle_guard;
    stats = Checkpoint::run(writer, epoch_, roots, copts);
    writer.flush();
  }
  TakeResult result;
  result.epoch = epoch_++;
  result.mode = mode;
  result.bytes = sink.size();
  result.stats = stats;
  if (async_ != nullptr) {
    // Appends are FIFO and 1:1 with epochs, so the frame will carry the
    // epoch as its sequence number.
    result.seq = result.epoch;
    async_->submit(sink.take());
  } else {
    result.seq = storage_.append(sink.bytes());
  }
  return result;
}

RecoverResult CheckpointManager::recover(const std::string& path,
                                         const TypeRegistry& registry) {
  io::ScanResult scan = io::StableStorage::scan(path);
  if (scan.frames.empty())
    throw CorruptionError("no recoverable checkpoint in '" + path + "'" +
                          (scan.clean ? "" : " (" + scan.stop_reason + ")"));

  // Locate the most recent full checkpoint.
  std::optional<std::size_t> full_index;
  for (std::size_t i = scan.frames.size(); i-- > 0;) {
    if (peek_header(scan.frames[i].payload).mode == Mode::kFull) {
      full_index = i;
      break;
    }
  }
  if (!full_index)
    throw CorruptionError("log '" + path + "' contains no full checkpoint");

  Recovery recovery(registry);
  std::size_t applied = 0;
  for (std::size_t i = *full_index; i < scan.frames.size(); ++i) {
    io::DataReader reader(scan.frames[i].payload);
    recovery.apply(reader);
    ++applied;
  }

  RecoverResult result;
  result.state = recovery.finish();
  result.checkpoints_applied = applied;
  result.log_clean = scan.clean;
  result.log_note = scan.stop_reason;
  return result;
}

CompactResult CheckpointManager::compact(const std::string& path,
                                         const TypeRegistry& registry) {
  RecoverResult recovered = recover(path, registry);

  CompactResult result;
  result.objects = recovered.state.by_id.size();
  try {
    result.bytes_before = io::read_file(path).size();
  } catch (const IoError&) {
    result.bytes_before = 0;
  }

  // One full checkpoint of the recovered state, into a sibling file that
  // atomically replaces the log. Roots keep their recorded order.
  std::vector<Checkpointable*> roots;
  roots.reserve(recovered.state.roots.size());
  for (ObjectId id : recovered.state.roots) {
    Checkpointable* obj = recovered.state.find(id);
    if (obj == nullptr)
      throw CorruptionError("compaction: root vanished during recovery");
    roots.push_back(obj);
  }

  const std::string tmp_path = path + ".compact";
  {
    io::StableStorage fresh(tmp_path);
    fresh.reset();  // in case a previous compaction crashed midway
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      CheckpointOptions copts;
      copts.mode = Mode::kFull;
      Checkpoint::run(writer, recovered.state.epoch, roots, copts);
      writer.flush();
    }
    result.bytes_after = sink.size();
    fresh.append(sink.bytes());
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0)
    throw IoError("compaction: rename over '" + path + "' failed");
  return result;
}

}  // namespace ickpt::core
