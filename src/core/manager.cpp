#include "core/manager.hpp"

#include <chrono>
#include <cstdio>
#include <optional>

#include "common/error.hpp"
#include "core/parallel_checkpoint.hpp"
#include "core/recovery_note.hpp"
#include "io/byte_sink.hpp"
#include "io/file_io.hpp"
#include "io/data_writer.hpp"
#include "obs/trace.hpp"

namespace ickpt::core {

CheckpointManager::Metrics::Metrics()
    : checkpoints_full(
          obs::counter("ickpt_checkpoints_total", {{"mode", "full"}})),
      checkpoints_incremental(
          obs::counter("ickpt_checkpoints_total", {{"mode", "incremental"}})),
      objects_visited(obs::counter("ickpt_checkpoint_objects_total",
                                   {{"result", "visited"}})),
      objects_recorded(obs::counter("ickpt_checkpoint_objects_total",
                                    {{"result", "recorded"}})),
      objects_skipped(obs::counter("ickpt_checkpoint_objects_total",
                                   {{"result", "skipped"}})),
      bytes_full(
          obs::counter("ickpt_checkpoint_bytes_total", {{"mode", "full"}})),
      bytes_incremental(obs::counter("ickpt_checkpoint_bytes_total",
                                     {{"mode", "incremental"}})),
      build_seconds(obs::histogram("ickpt_checkpoint_build_seconds")),
      epoch(obs::gauge("ickpt_epoch")) {}

CheckpointManager::CheckpointManager(std::string path, ManagerOptions opts)
    : opts_(opts),
      storage_(std::move(path),
               io::StorageOptions{.durable = opts.durable,
                                  .fault = opts.fault_policy,
                                  .retry = opts.retry}) {
  if (opts_.full_interval == 0)
    throw Error("ManagerOptions.full_interval must be >= 1");
  if (opts_.capture_threads == 0)
    throw Error("ManagerOptions.capture_threads must be >= 1");
  // Resume epoch numbering after a restart: frames and epochs are appended
  // 1:1, so the next epoch is the next storage sequence number.
  epoch_ = storage_.next_seq();
  if (opts_.async_io) async_ = std::make_unique<AsyncLog>(storage_);
}

void CheckpointManager::flush() {
  if (async_ != nullptr) async_->drain();
}

TakeResult CheckpointManager::take(std::span<Checkpointable* const> roots) {
  Mode mode = (epoch_ % opts_.full_interval == 0) ? Mode::kFull
                                                  : Mode::kIncremental;
  return take_with_mode(roots, mode);
}

TakeResult CheckpointManager::take(Checkpointable& root) {
  Checkpointable* roots[] = {&root};
  return take(std::span<Checkpointable* const>(roots));
}

TakeResult CheckpointManager::take_with_mode(
    std::span<Checkpointable* const> roots, Mode mode) {
  obs::Span span("checkpoint.take", "checkpoint");
  io::VectorSink sink;
  CheckpointStats stats;
  // The clock costs nothing unless a histogram cell is actually installed.
  const bool timed = metrics_.build_seconds.live();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();
  {
    io::DataWriter writer(sink);
    if (opts_.capture_threads > 1) {
      ParallelOptions popts;
      popts.mode = mode;
      popts.cycle_guard = opts_.cycle_guard;
      popts.threads = opts_.capture_threads;
      stats = ParallelCheckpoint::run(writer, epoch_, roots, popts).totals;
    } else {
      CheckpointOptions copts;
      copts.mode = mode;
      copts.cycle_guard = opts_.cycle_guard;
      stats = Checkpoint::run(writer, epoch_, roots, copts);
    }
    writer.flush();
  }
  if (timed)
    metrics_.build_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  (mode == Mode::kFull ? metrics_.checkpoints_full
                       : metrics_.checkpoints_incremental)
      .inc();
  (mode == Mode::kFull ? metrics_.bytes_full : metrics_.bytes_incremental)
      .inc(sink.size());
  metrics_.objects_visited.inc(stats.objects_visited);
  metrics_.objects_recorded.inc(stats.objects_recorded);
  metrics_.objects_skipped.inc(stats.objects_visited -
                               stats.objects_recorded);
  metrics_.epoch.set(static_cast<std::int64_t>(epoch_));
  TakeResult result;
  result.epoch = epoch_++;
  result.mode = mode;
  result.bytes = sink.size();
  result.stats = stats;
  if (span.active())
    span.note(std::string(mode == Mode::kFull ? "full" : "incremental") +
              " epoch " + std::to_string(result.epoch) + ", " +
              std::to_string(result.bytes) + " byte(s), " +
              std::to_string(stats.objects_recorded) + "/" +
              std::to_string(stats.objects_visited) + " recorded");
  if (async_ != nullptr) {
    // Appends are FIFO and 1:1 with epochs, so the frame will carry the
    // epoch as its sequence number.
    result.seq = result.epoch;
    async_->submit(sink.take());
  } else {
    result.seq = storage_.append(sink.bytes());
  }
  return result;
}

namespace {

/// Payload-free record of one frame, built by the indexing pass. Holding
/// only these (16-ish bytes each) instead of io::Frame payloads is what
/// bounds recovery memory by the largest frame rather than the log size.
struct FrameMeta {
  std::uint64_t seq = 0;
  bool resync = false;
  /// Mode peeked from the payload while it was streaming past; nullopt when
  /// even the stream header is undecodable (such a frame cannot anchor a
  /// window).
  std::optional<Mode> mode;
};

/// End-of-scan state of the indexing pass (mirrors io::ScanResult minus the
/// frames).
struct LogIndex {
  std::vector<FrameMeta> frames;
  bool clean = true;
  std::string stop_reason;
  std::uint64_t stop_offset = 0;
  std::size_t regions_skipped = 0;
  std::uint64_t bytes_skipped = 0;
};

LogIndex index_log(const std::string& path, const io::ScanOptions& sopts) {
  obs::Span span("storage.scan", "io");
  LogIndex index;
  io::FrameIterator it(path, sopts);
  io::Frame frame;
  while (it.next(frame)) {
    FrameMeta meta;
    meta.seq = frame.seq;
    meta.resync = frame.resync;
    try {
      meta.mode = peek_header(frame.payload).mode;
    } catch (const Error&) {
      meta.mode = std::nullopt;
    }
    index.frames.push_back(meta);
  }
  index.clean = it.clean();
  index.stop_reason = it.stop_reason();
  index.stop_offset = it.stop_offset();
  index.regions_skipped = it.regions_skipped();
  index.bytes_skipped = it.bytes_skipped();
  // recover() used to obtain its frames through StableStorage::scan, which
  // feeds the scan counters; keep feeding them now that it streams the log
  // itself (ickptctl stats --self-test checks these stay live). Cold path:
  // per-call lookups are fine.
  obs::counter("ickpt_scans_total",
               {{"result", index.clean ? "clean" : "damaged"}})
      .inc();
  obs::counter("ickpt_scan_frames_total").inc(index.frames.size());
  if (index.regions_skipped > 0)
    obs::counter("ickpt_scan_corrupt_regions_total")
        .inc(index.regions_skipped);
  if (index.bytes_skipped > 0)
    obs::counter("ickpt_scan_bytes_skipped_total").inc(index.bytes_skipped);
  return index;
}

/// Replay frames [begin, end) of the log at `path` into a fresh Recovery,
/// re-streaming the file for each attempt (the log is closed and static
/// during recovery) and decoding one payload at a time. On a decode failure
/// *after* the full checkpoint, trims the window at the failing frame and
/// replays — the surviving prefix is still consistent (recovery applies
/// frames in order, so frames before the bad one are unaffected by it).
/// Returns false when the full checkpoint itself is undecodable. Trims are
/// collected into `note`; `records` receives the record count of the
/// finally-applied window; `passes` counts the re-streams.
bool apply_window(const std::string& path, const io::ScanOptions& sopts,
                  const std::vector<FrameMeta>& meta, std::size_t begin,
                  std::size_t end_limit, const TypeRegistry& registry,
                  RecoveredState& out, std::size_t& applied,
                  RecoveryNote& note, std::size_t& records,
                  std::size_t& passes) {
  std::size_t end = end_limit;
  while (end > begin) {
    Recovery recovery(registry);
    std::size_t at = begin;
    std::string what;
    bool failed = false;
    ApplyStats window_stats;
    {
      io::FrameIterator it(path, sopts);
      ++passes;
      io::Frame frame;
      // Frames before the window stream past without being decoded (the
      // iterator reuses one payload buffer, so skipping costs no memory).
      for (std::size_t skip = 0; skip < begin; ++skip) {
        if (!it.next(frame))
          throw CorruptionError("log '" + path +
                                "' shrank while recovering from it");
      }
      for (; at < end; ++at) {
        if (!it.next(frame))
          throw CorruptionError("log '" + path +
                                "' shrank while recovering from it");
        try {
          io::DataReader reader(frame.payload);
          ApplyStats frame_stats;
          recovery.apply(reader, &frame_stats);
          window_stats.records += frame_stats.records;
        } catch (const Error& e) {
          failed = true;
          what = e.what();
          break;
        }
      }
    }
    if (!failed) {
      try {
        out = recovery.finish();
        applied = end - begin;
        records = window_stats.records;
        return true;
      } catch (const Error& e) {
        // A dangling link etc. — dropping the last frame may close the
        // window again.
        failed = true;
        what = e.what();
        at = end - 1;
      }
    }
    if (at == begin) return false;
    note.trims.push_back(RecoveryNote::Trim{
        meta[at].seq, what, end_limit - at});
    end = at;
  }
  return false;
}

}  // namespace

RecoverResult CheckpointManager::recover(const std::string& path,
                                         const TypeRegistry& registry,
                                         RecoverOptions opts) {
  obs::Span span("checkpoint.recover", "recovery");
  const io::ScanOptions sopts{.salvage = opts.salvage};

  // Pass 1: index the log without materializing payloads.
  LogIndex index = index_log(path, sopts);
  std::size_t passes = 1;
  if (index.frames.empty())
    throw CorruptionError("no recoverable checkpoint in '" + path + "'" +
                          (index.clean ? "" : " (" + index.stop_reason + ")"));

  RecoverResult result;
  result.log_clean = index.clean;
  result.frames_total = index.frames.size();
  result.corrupt_regions = index.regions_skipped;
  result.bytes_skipped = index.bytes_skipped;
  result.damage_offset = index.stop_offset;

  RecoveryNote note;
  if (!index.clean) {
    note.stop_reason = index.stop_reason;
    note.damage_offset = index.stop_offset;
    note.regions_skipped = index.regions_skipped;
    note.bytes_skipped = index.bytes_skipped;
    obs::instant("recover.salvage", "recovery",
                 index.stop_reason + " at byte " +
                     std::to_string(index.stop_offset) + ", " +
                     std::to_string(index.regions_skipped) +
                     " region(s) skipped");
  }

  // Contiguous runs of frames: a corrupt region (resync frame) starts a new
  // segment. Incrementals can only be applied onto a full checkpoint from
  // the *same* segment — across a gap, deltas may be missing.
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 1; i < index.frames.size(); ++i)
    if (index.frames[i].resync) starts.push_back(i);
  starts.push_back(index.frames.size());

  bool recovered = false;
  std::size_t records_applied = 0;
  // Newest usable window wins: walk segments from the back, and inside a
  // segment prefer the latest full checkpoint. Pass 2..n: each candidate
  // window re-streams the log (frame payloads decoded one at a time).
  for (std::size_t s = starts.size() - 1; s-- > 0 && !recovered;) {
    const std::size_t seg_begin = starts[s];
    const std::size_t seg_end = starts[s + 1];
    for (std::size_t i = seg_end; i-- > seg_begin && !recovered;) {
      if (index.frames[i].mode != Mode::kFull) continue;
      std::size_t applied = 0;
      obs::Span apply_span("recover.apply_window", "recovery");
      if (apply_window(path, sopts, index.frames, i, seg_end, registry,
                       result.state, applied, note, records_applied,
                       passes)) {
        result.checkpoints_applied = applied;
        recovered = true;
      }
    }
  }
  result.stream_passes = passes;
  if (!recovered)
    throw CorruptionError("log '" + path +
                          "' contains no usable full checkpoint" +
                          (index.clean ? "" : " (" + index.stop_reason + ")"));

  result.frames_dropped = result.frames_total - result.checkpoints_applied;
  note.frames_outside_window = result.frames_dropped;
  result.log_note = note.render();

  obs::counter("ickpt_recoveries_total",
               {{"log", index.clean ? "clean" : "damaged"}})
      .inc();
  obs::counter("ickpt_recover_frames_total", {{"result", "applied"}})
      .inc(result.checkpoints_applied);
  obs::counter("ickpt_recover_frames_total", {{"result", "dropped"}})
      .inc(result.frames_dropped);
  obs::counter("ickpt_recover_records_total").inc(records_applied);
  if (result.corrupt_regions > 0) {
    obs::counter("ickpt_recover_salvage_regions_total")
        .inc(result.corrupt_regions);
    obs::counter("ickpt_recover_salvage_bytes_total")
        .inc(result.bytes_skipped);
  }
  if (span.active())
    span.note(std::to_string(result.checkpoints_applied) +
              " checkpoint(s) applied, " +
              std::to_string(result.state.by_id.size()) + " object(s); " +
              note.trace_note());
  return result;
}

CompactResult CheckpointManager::compact(const std::string& path,
                                         const TypeRegistry& registry,
                                         io::FaultPolicy* fault) {
  obs::Span span("checkpoint.compact", "checkpoint");
  obs::Histogram compact_seconds = obs::histogram("ickpt_compact_seconds");
  const bool timed = compact_seconds.live();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();

  RecoverResult recovered = recover(path, registry);

  CompactResult result;
  result.objects = recovered.state.by_id.size();
  try {
    result.bytes_before = io::read_file(path).size();
  } catch (const IoError&) {
    result.bytes_before = 0;
  }

  // One full checkpoint of the recovered state, built in a sibling file and
  // atomically published over the log: temp write + fsync + rename +
  // directory fsync. A crash anywhere in here loses only the compaction;
  // the original log is not touched until the rename.
  std::vector<Checkpointable*> roots;
  roots.reserve(recovered.state.roots.size());
  for (ObjectId id : recovered.state.roots) {
    Checkpointable* obj = recovered.state.find(id);
    if (obj == nullptr)
      throw CorruptionError("compaction: root vanished during recovery");
    roots.push_back(obj);
  }

  const std::string tmp_path = path + ".compact";
  std::remove(tmp_path.c_str());  // stale leftover of a crashed compaction
  {
    io::StableStorage fresh(tmp_path,
                            io::StorageOptions{.durable = true,
                                               .fault = fault});
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      CheckpointOptions copts;
      copts.mode = Mode::kFull;
      Checkpoint::run(writer, recovered.state.epoch, roots, copts);
      writer.flush();
    }
    result.bytes_after = sink.size();
    fresh.append(sink.bytes());
  }
  io::rename_durable(tmp_path, path);
  obs::counter("ickpt_compacts_total").inc();
  if (timed)
    compact_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  if (span.active())
    span.note(std::to_string(result.objects) + " object(s), " +
              std::to_string(result.bytes_before) + " -> " +
              std::to_string(result.bytes_after) + " byte(s)");
  return result;
}

}  // namespace ickpt::core
