#include "core/manager.hpp"

#include <cstdio>
#include <optional>

#include "common/error.hpp"
#include "io/byte_sink.hpp"
#include "io/file_io.hpp"
#include "io/data_writer.hpp"

namespace ickpt::core {

CheckpointManager::CheckpointManager(std::string path, ManagerOptions opts)
    : opts_(opts),
      storage_(std::move(path),
               io::StorageOptions{.durable = opts.durable,
                                  .fault = opts.fault_policy,
                                  .retry = opts.retry}) {
  if (opts_.full_interval == 0)
    throw Error("ManagerOptions.full_interval must be >= 1");
  // Resume epoch numbering after a restart: frames and epochs are appended
  // 1:1, so the next epoch is the next storage sequence number.
  epoch_ = storage_.next_seq();
  if (opts_.async_io) async_ = std::make_unique<AsyncLog>(storage_);
}

void CheckpointManager::flush() {
  if (async_ != nullptr) async_->drain();
}

TakeResult CheckpointManager::take(std::span<Checkpointable* const> roots) {
  Mode mode = (epoch_ % opts_.full_interval == 0) ? Mode::kFull
                                                  : Mode::kIncremental;
  return take_with_mode(roots, mode);
}

TakeResult CheckpointManager::take(Checkpointable& root) {
  Checkpointable* roots[] = {&root};
  return take(std::span<Checkpointable* const>(roots));
}

TakeResult CheckpointManager::take_with_mode(
    std::span<Checkpointable* const> roots, Mode mode) {
  io::VectorSink sink;
  CheckpointStats stats;
  {
    io::DataWriter writer(sink);
    CheckpointOptions copts;
    copts.mode = mode;
    copts.cycle_guard = opts_.cycle_guard;
    stats = Checkpoint::run(writer, epoch_, roots, copts);
    writer.flush();
  }
  TakeResult result;
  result.epoch = epoch_++;
  result.mode = mode;
  result.bytes = sink.size();
  result.stats = stats;
  if (async_ != nullptr) {
    // Appends are FIFO and 1:1 with epochs, so the frame will carry the
    // epoch as its sequence number.
    result.seq = result.epoch;
    async_->submit(sink.take());
  } else {
    result.seq = storage_.append(sink.bytes());
  }
  return result;
}

namespace {

/// Replay frames [begin, end) of `frames` into a fresh Recovery. On a
/// decode failure *after* the full checkpoint, trims the window at the
/// failing frame and replays — the surviving prefix is still consistent
/// (recovery applies frames in order, so frames before the bad one are
/// unaffected by it). Returns false when the full checkpoint itself is
/// undecodable. `note` collects what was dropped.
bool apply_window(const std::vector<io::Frame>& frames, std::size_t begin,
                  std::size_t end_limit, const TypeRegistry& registry,
                  RecoveredState& out, std::size_t& applied,
                  std::string& note) {
  std::size_t end = end_limit;
  while (end > begin) {
    Recovery recovery(registry);
    std::size_t at = begin;
    std::string what;
    bool failed = false;
    for (; at < end; ++at) {
      try {
        io::DataReader reader(frames[at].payload);
        recovery.apply(reader);
      } catch (const Error& e) {
        failed = true;
        what = e.what();
        break;
      }
    }
    if (!failed) {
      try {
        out = recovery.finish();
        applied = end - begin;
        return true;
      } catch (const Error& e) {
        // A dangling link etc. — dropping the last frame may close the
        // window again.
        failed = true;
        what = e.what();
        at = end - 1;
      }
    }
    if (at == begin) return false;
    note += "; frame seq " + std::to_string(frames[at].seq) +
            " undecodable (" + what + "), dropped " +
            std::to_string(end_limit - at) + " trailing checkpoint(s)";
    end = at;
  }
  return false;
}

std::optional<Mode> frame_mode(const io::Frame& frame) {
  try {
    return peek_header(frame.payload).mode;
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace

RecoverResult CheckpointManager::recover(const std::string& path,
                                         const TypeRegistry& registry,
                                         RecoverOptions opts) {
  io::ScanResult scan =
      io::StableStorage::scan(path, {.salvage = opts.salvage});
  if (scan.frames.empty())
    throw CorruptionError("no recoverable checkpoint in '" + path + "'" +
                          (scan.clean ? "" : " (" + scan.stop_reason + ")"));

  RecoverResult result;
  result.log_clean = scan.clean;
  result.frames_total = scan.frames.size();
  result.corrupt_regions = scan.regions_skipped;
  result.bytes_skipped = scan.bytes_skipped;
  result.damage_offset = scan.stop_offset;

  // Contiguous runs of frames: a corrupt region (resync frame) starts a new
  // segment. Incrementals can only be applied onto a full checkpoint from
  // the *same* segment — across a gap, deltas may be missing.
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 1; i < scan.frames.size(); ++i)
    if (scan.frames[i].resync) starts.push_back(i);
  starts.push_back(scan.frames.size());

  std::string trim_note;
  bool recovered = false;
  // Newest usable window wins: walk segments from the back, and inside a
  // segment prefer the latest full checkpoint.
  for (std::size_t s = starts.size() - 1; s-- > 0 && !recovered;) {
    const std::size_t seg_begin = starts[s];
    const std::size_t seg_end = starts[s + 1];
    for (std::size_t i = seg_end; i-- > seg_begin && !recovered;) {
      if (frame_mode(scan.frames[i]) != Mode::kFull) continue;
      std::size_t applied = 0;
      if (apply_window(scan.frames, i, seg_end, registry, result.state,
                       applied, trim_note)) {
        result.checkpoints_applied = applied;
        recovered = true;
      }
    }
  }
  if (!recovered)
    throw CorruptionError("log '" + path +
                          "' contains no usable full checkpoint" +
                          (scan.clean ? "" : " (" + scan.stop_reason + ")"));

  result.frames_dropped = result.frames_total - result.checkpoints_applied;
  if (!scan.clean) {
    result.log_note = scan.stop_reason + " at byte " +
                      std::to_string(scan.stop_offset);
    if (scan.regions_skipped > 0)
      result.log_note += "; salvage skipped " +
                         std::to_string(scan.regions_skipped) +
                         " corrupt region(s) (" +
                         std::to_string(scan.bytes_skipped) + " byte(s))";
  }
  if (result.frames_dropped > 0) {
    if (!result.log_note.empty()) result.log_note += "; ";
    result.log_note += std::to_string(result.frames_dropped) +
                       " readable checkpoint(s) outside the recovered window";
  }
  result.log_note += trim_note;
  return result;
}

CompactResult CheckpointManager::compact(const std::string& path,
                                         const TypeRegistry& registry,
                                         io::FaultPolicy* fault) {
  RecoverResult recovered = recover(path, registry);

  CompactResult result;
  result.objects = recovered.state.by_id.size();
  try {
    result.bytes_before = io::read_file(path).size();
  } catch (const IoError&) {
    result.bytes_before = 0;
  }

  // One full checkpoint of the recovered state, built in a sibling file and
  // atomically published over the log: temp write + fsync + rename +
  // directory fsync. A crash anywhere in here loses only the compaction;
  // the original log is not touched until the rename.
  std::vector<Checkpointable*> roots;
  roots.reserve(recovered.state.roots.size());
  for (ObjectId id : recovered.state.roots) {
    Checkpointable* obj = recovered.state.find(id);
    if (obj == nullptr)
      throw CorruptionError("compaction: root vanished during recovery");
    roots.push_back(obj);
  }

  const std::string tmp_path = path + ".compact";
  std::remove(tmp_path.c_str());  // stale leftover of a crashed compaction
  {
    io::StableStorage fresh(tmp_path,
                            io::StorageOptions{.durable = true,
                                               .fault = fault});
    io::VectorSink sink;
    {
      io::DataWriter writer(sink);
      CheckpointOptions copts;
      copts.mode = Mode::kFull;
      Checkpoint::run(writer, recovered.state.epoch, roots, copts);
      writer.flush();
    }
    result.bytes_after = sink.size();
    fresh.append(sink.bytes());
  }
  io::rename_durable(tmp_path, path);
  return result;
}

}  // namespace ickpt::core
