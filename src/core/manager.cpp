#include "core/manager.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>

#include "common/error.hpp"
#include "core/parallel_checkpoint.hpp"
#include "core/recovery_note.hpp"
#include "core/retention.hpp"
#include "io/byte_sink.hpp"
#include "io/file_io.hpp"
#include "io/data_writer.hpp"
#include "obs/trace.hpp"

namespace ickpt::core {

CheckpointManager::Metrics::Metrics()
    : checkpoints_full(
          obs::counter("ickpt_checkpoints_total", {{"mode", "full"}})),
      checkpoints_incremental(
          obs::counter("ickpt_checkpoints_total", {{"mode", "incremental"}})),
      objects_visited(obs::counter("ickpt_checkpoint_objects_total",
                                   {{"result", "visited"}})),
      objects_recorded(obs::counter("ickpt_checkpoint_objects_total",
                                    {{"result", "recorded"}})),
      objects_skipped(obs::counter("ickpt_checkpoint_objects_total",
                                   {{"result", "skipped"}})),
      bytes_full(
          obs::counter("ickpt_checkpoint_bytes_total", {{"mode", "full"}})),
      bytes_incremental(obs::counter("ickpt_checkpoint_bytes_total",
                                     {{"mode", "incremental"}})),
      build_seconds(obs::histogram("ickpt_checkpoint_build_seconds")),
      epoch(obs::gauge("ickpt_epoch")),
      health(obs::gauge("ickpt_health")),
      degraded_epochs(obs::counter("ickpt_degraded_epochs_total")),
      reheals(obs::counter("ickpt_reheals_total")),
      lost_epochs(obs::counter("ickpt_heal_lost_epochs_total")) {}

namespace {

io::StorageOptions storage_options(const ManagerOptions& opts) {
  io::StorageOptions sopts{.durable = opts.durable,
                           .fault = opts.fault_policy,
                           .retry = opts.retry};
  if (opts.retry_jitter_seed != 0 && sopts.retry.jitter_seed == 0)
    sopts.retry.jitter_seed = opts.retry_jitter_seed;
  return sopts;
}

/// Highest stream-header epoch visible anywhere on the generation chain,
/// plus one. Epochs can run ahead of sequence numbers once async poisoning
/// has dropped frames, so a restarting healing manager must resume above
/// the epochs recorded in headers, not just above next_seq().
Epoch chain_next_epoch(const std::string& path) {
  Epoch next = 0;
  auto peek_all = [&next](const std::string& p) {
    io::FrameIterator it(p, {.salvage = true});
    io::Frame frame;
    while (it.next(frame)) {
      try {
        const Epoch e = peek_header(frame.payload).epoch;
        if (e + 1 > next) next = e + 1;
      } catch (const Error&) {
      }
    }
  };
  peek_all(path);
  peek_all(path + ".bak");
  for (const std::string& gen : io::StableStorage::generation_chain(path)) {
    peek_all(gen);
    peek_all(gen + ".bak");
    break;  // newest first; older generations hold older epochs
  }
  return next;
}

std::string not_retained_message(const std::string& path, Epoch target,
                                 std::optional<Epoch> below,
                                 std::optional<Epoch> above) {
  std::string msg = "epoch " + std::to_string(target) +
                    " is not retained on '" + path + "'";
  if (below.has_value() && above.has_value()) {
    msg += "; nearest retained epochs: " + std::to_string(*below) +
           " (below) and " + std::to_string(*above) + " (above)";
  } else if (below.has_value()) {
    msg += "; nearest retained epoch: " + std::to_string(*below) +
           " (below), none above";
  } else if (above.has_value()) {
    msg += "; nearest retained epoch: " + std::to_string(*above) +
           " (above), none below";
  } else {
    msg += "; the log holds no parseable epochs at all";
  }
  return msg + " — run `ickptctl history` for the full retained set";
}

}  // namespace

EpochNotRetainedError::EpochNotRetainedError(const std::string& path,
                                             Epoch target,
                                             std::optional<Epoch> below,
                                             std::optional<Epoch> above)
    : CorruptionError(not_retained_message(path, target, below, above)),
      target_(target),
      below_(below),
      above_(above) {}

CheckpointManager::CheckpointManager(std::string path, ManagerOptions opts)
    : opts_(std::move(opts)),
      flightrec_(opts_.flightrec_capacity),
      storage_(std::move(path), storage_options(opts_)) {
  if (opts_.full_interval == 0)
    throw Error("ManagerOptions.full_interval must be >= 1");
  if (opts_.capture_threads == 0)
    throw Error("ManagerOptions.capture_threads must be >= 1");
  if (opts_.heal.enabled && opts_.heal.rotate_attempts == 0)
    throw Error(
        "ManagerOptions.heal.rotate_attempts must be >= 1 when healing is "
        "enabled");
  // Resume epoch numbering after a restart: frames and epochs are appended
  // 1:1, so the next epoch is the next storage sequence number.
  epoch_ = storage_.next_seq();
  if (opts_.heal.enabled) {
    epoch_ = std::max(epoch_, chain_next_epoch(storage_.path()));
    // Restarting on an existing log: the in-memory modified bits that drove
    // its last incrementals are gone (and the caller's state may come from
    // a salvaged window older than the log's tail), so the first checkpoint
    // of this manager must restart the chain with a full.
    if (epoch_ > 0) needs_rebase_ = true;
  }
  metrics_.health.set(static_cast<std::int64_t>(health_));
  // Fault decisions inside the sink become kFault events; the wiring
  // survives rotation (StableStorage re-applies it to reopened sinks).
  storage_.set_flightrec(&flightrec_);
  if (opts_.async_io) {
    async_ = std::make_unique<AsyncLog>(storage_);
    async_->set_profiling(opts_.profile);
  }
}

void CheckpointManager::dump_flight_recorder() const {
  const std::string path = flightrec_path();
  flightrec_.record(obs::FlightEventType::kDump,
                    epoch_ > 0 ? epoch_ - 1 : 0, 0, 0, path);
  flightrec_.dump_to_file(path);
}

void CheckpointManager::rebind_metrics() {
  metrics_ = Metrics();
  metrics_.health.set(static_cast<std::int64_t>(health_));
  metrics_.epoch.set(epoch_ > 0 ? static_cast<std::int64_t>(epoch_ - 1) : 0);
  storage_.rebind_metrics();
  if (async_ != nullptr) async_->rebind_metrics();
}

void CheckpointManager::flush() {
  if (async_ == nullptr) return;
  try {
    async_->drain();
    // The background appends' write/fsync slices, measured on the worker
    // thread; merged here so last_capture_profile() covers the whole
    // pipeline once the epochs it describes are durable.
    if (opts_.profile) last_profile_.add(async_->take_profile());
    if (any_submitted_) note_settled(last_submitted_);
  } catch (const IoError& e) {
    if (!opts_.heal.enabled) throw;
    heal_poison(e.what());
    // No roots in hand to rebase with; the next take() restarts the chain.
    needs_rebase_ = true;
  }
}

HealthStatus CheckpointManager::health_status() const {
  HealthStatus status;
  status.health = health_;
  status.async_armed = async_ != nullptr;
  status.rotations = rotations_;
  status.reheals = reheals_;
  status.degraded_epochs = degraded_epochs_;
  status.lost_epochs = lost_epochs_;
  status.clean_epochs = clean_epochs_;
  status.any_settled = any_settled_;
  status.last_settled_epoch = last_settled_;
  status.last_error = last_error_;
  return status;
}

void CheckpointManager::set_health(Health next) {
  if (next == health_) return;
  obs::instant("manager.health", "checkpoint",
               std::string(to_string(health_)) + " -> " + to_string(next));
  flightrec_.record(obs::FlightEventType::kHealthTransition,
                    epoch_ > 0 ? epoch_ - 1 : 0,
                    static_cast<std::uint64_t>(health_),
                    static_cast<std::uint64_t>(next),
                    std::string(to_string(health_)) + " -> " +
                        to_string(next));
  health_ = next;
  metrics_.health.set(static_cast<std::int64_t>(next));
}

void CheckpointManager::note_settled(Epoch epoch) {
  any_settled_ = true;
  if (epoch >= last_settled_) last_settled_ = epoch;
}

void CheckpointManager::heal_poison(const std::string& what) {
  healed_this_take_ = true;
  last_error_ = what;
  const std::uint64_t lost =
      1 + (async_ != nullptr ? async_->dropped() : 0);
  lost_epochs_ += lost;
  metrics_.lost_epochs.inc(lost);
  async_.reset();  // the poison was observed by the submit/drain that threw
  storage_.set_durable(true);
  clean_epochs_ = 0;
  flightrec_.record(obs::FlightEventType::kPoison, epoch_ > 0 ? epoch_ - 1 : 0,
                    lost, 0, what);
  flightrec_.record(obs::FlightEventType::kFallback,
                    epoch_ > 0 ? epoch_ - 1 : 0, 0, 0,
                    "async disarmed -> synchronous durable appends");
  set_health(Health::kDegraded);
  obs::instant("manager.degrade", "checkpoint",
               "async log poisoned (" + std::to_string(lost) +
                   " epoch(s) lost): " + what);
}

void CheckpointManager::on_epoch_complete() {
  if (!opts_.heal.enabled || health_ == Health::kHealthy) return;
  ++degraded_epochs_;
  metrics_.degraded_epochs.inc();
  if (healed_this_take_) {
    clean_epochs_ = 0;
    return;
  }
  if (++clean_epochs_ >= opts_.heal.reheal_after) reheal();
}

void CheckpointManager::reheal() {
  obs::Span span("manager.reheal", "checkpoint");
  storage_.set_durable(opts_.durable);
  if (opts_.async_io && async_ == nullptr)
    async_ = std::make_unique<AsyncLog>(storage_);
  if (async_ != nullptr) async_->set_profiling(opts_.profile);
  ++reheals_;
  metrics_.reheals.inc();
  const unsigned clean = clean_epochs_;
  clean_epochs_ = 0;
  flightrec_.record(obs::FlightEventType::kReheal,
                    epoch_ > 0 ? epoch_ - 1 : 0, clean);
  set_health(Health::kHealthy);
  if (span.active())
    span.note("pipeline re-armed after " + std::to_string(clean) +
              " clean epoch(s)");
}

TakeResult CheckpointManager::take(std::span<Checkpointable* const> roots) {
  Mode mode = (epoch_ % opts_.full_interval == 0) ? Mode::kFull
                                                  : Mode::kIncremental;
  return take_with_mode(roots, mode);
}

TakeResult CheckpointManager::take(Checkpointable& root) {
  Checkpointable* roots[] = {&root};
  return take(std::span<Checkpointable* const>(roots));
}

CheckpointStats CheckpointManager::capture(
    Epoch epoch, std::span<Checkpointable* const> roots, Mode mode,
    io::VectorSink& sink, obs::CaptureProfile* prof) {
  sink.clear();
  CheckpointStats stats;
  io::DataWriter writer(sink);
  if (opts_.capture_threads > 1) {
    ParallelOptions popts;
    popts.mode = mode;
    popts.cycle_guard = opts_.cycle_guard;
    popts.threads = opts_.capture_threads;
    popts.profile = prof;
    stats = ParallelCheckpoint::run(writer, epoch, roots, popts).totals;
  } else {
    CheckpointOptions copts;
    copts.mode = mode;
    copts.cycle_guard = opts_.cycle_guard;
    copts.profile = prof;
    stats = Checkpoint::run(writer, epoch, roots, copts);
  }
  writer.flush();
  return stats;
}

namespace {

/// Feed one profiled capture into the per-stage latency histograms. Cold:
/// once per profiled take, per-call lookups by design (a profiled session
/// may install its registry late).
void publish_stage_histograms(const obs::CaptureProfile& p) {
  using P = obs::CaptureProfile;
  for (int s = 0; s < P::kStageCount; ++s) {
    if (p.stage_ns[s] == 0) continue;
    obs::histogram("ickpt_capture_stage_seconds",
                   {{"stage", P::stage_name(static_cast<P::Stage>(s))}})
        .observe(static_cast<double>(p.stage_ns[s]) / 1e9);
  }
}

}  // namespace

TakeResult CheckpointManager::take_with_mode(
    std::span<Checkpointable* const> roots, Mode mode) {
  if (health_ == Health::kFailed)
    throw Error("checkpoint pipeline is in the failed state (" + last_error_ +
                "); recover from the generation chain and construct a new "
                "manager");
  if (needs_rebase_) mode = Mode::kFull;
  healed_this_take_ = false;
  obs::Span span("checkpoint.take", "checkpoint");
  io::VectorSink sink;
  // The clock costs nothing unless a histogram cell is actually installed.
  const bool timed = metrics_.build_seconds.live();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();
  const Epoch epoch = epoch_++;
  obs::CaptureProfile* prof = nullptr;
  if (opts_.profile) {
    // One profile per take: the walk writes it during capture(), the sink
    // adds the fsync slice during the synchronous append (async appends
    // accrue on the worker and merge in at flush()).
    last_profile_.reset();
    prof = &last_profile_;
  }
  flightrec_.record(obs::FlightEventType::kEpochBegin, epoch, roots.size(), 0,
                    nullptr, static_cast<std::uint8_t>(mode));
  CheckpointStats stats = capture(epoch, roots, mode, sink, prof);
  if (timed)
    metrics_.build_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  TakeResult result;
  result.epoch = epoch;
  result.bytes = sink.size();
  // Synchronous append with kWrite/kFsync attribution: the sink accrues the
  // fsync slice into `prof` while the hook is installed, and the remainder
  // of the append wall is the write stage. A healed append attributes the
  // whole episode (retries, rotation, rebase re-capture) to kWrite — heal
  // episodes are rare and the time is genuinely spent getting bytes down.
  auto append_sync = [&]() {
    if (prof == nullptr) {
      result.seq = append_healed(roots, result.epoch, mode, sink, stats);
      return;
    }
    using P = obs::CaptureProfile;
    storage_.set_profile(prof);
    const std::uint64_t fsync0 = prof->stage_ns[P::kFsync];
    const std::uint64_t a0 = obs::trace_now_ns();
    try {
      result.seq = append_healed(roots, result.epoch, mode, sink, stats);
    } catch (...) {
      storage_.set_profile(nullptr);
      throw;
    }
    storage_.set_profile(nullptr);
    const std::uint64_t elapsed = obs::trace_now_ns() - a0;
    const std::uint64_t fsync_ns = prof->stage_ns[P::kFsync] - fsync0;
    prof->stage_ns[P::kWrite] +=
        elapsed > fsync_ns ? elapsed - fsync_ns : 0;
    prof->busy_ns += elapsed;
  };
  if (async_ != nullptr) {
    // Appends are FIFO and 1:1 with epochs, so the frame will carry the
    // epoch as its sequence number.
    result.seq = result.epoch;
    bool poisoned = false;
    try {
      async_->submit(sink.take());
      any_submitted_ = true;
      last_submitted_ = result.epoch;
    } catch (const IoError& e) {
      if (!opts_.heal.enabled) throw;
      heal_poison(e.what());
      poisoned = true;
    }
    if (poisoned) {
      // The poison punched a hole in the incremental chain (frames were
      // lost); this epoch must restart it with a synchronous full.
      mode = Mode::kFull;
      stats = capture(epoch, roots, mode, sink, prof);
      result.bytes = sink.size();
      append_sync();
    }
  } else {
    append_sync();
  }
  (mode == Mode::kFull ? metrics_.checkpoints_full
                       : metrics_.checkpoints_incremental)
      .inc();
  (mode == Mode::kFull ? metrics_.bytes_full : metrics_.bytes_incremental)
      .inc(result.bytes);
  metrics_.objects_visited.inc(stats.objects_visited);
  metrics_.objects_recorded.inc(stats.objects_recorded);
  metrics_.objects_skipped.inc(stats.objects_visited -
                               stats.objects_recorded);
  metrics_.epoch.set(static_cast<std::int64_t>(result.epoch));
  result.mode = mode;
  result.stats = stats;
  needs_rebase_ = false;
  if (prof != nullptr) {
    publish_stage_histograms(*prof);
    using P = obs::CaptureProfile;
    flightrec_.record(
        obs::FlightEventType::kEpochEnd, result.epoch, result.bytes,
        stats.objects_recorded,
        "busy " + std::to_string(prof->busy_ns / 1000) + "us, walk " +
            std::to_string(prof->stage_ns[P::kRootWalk] / 1000) +
            "us, write " +
            std::to_string((prof->stage_ns[P::kWrite] +
                            prof->stage_ns[P::kFsync]) /
                           1000) +
            "us",
        static_cast<std::uint8_t>(mode));
  } else {
    flightrec_.record(obs::FlightEventType::kEpochEnd, result.epoch,
                      result.bytes, stats.objects_recorded, nullptr,
                      static_cast<std::uint8_t>(mode));
  }
  on_epoch_complete();
  if (span.active())
    span.note(std::string(mode == Mode::kFull ? "full" : "incremental") +
              " epoch " + std::to_string(result.epoch) + ", " +
              std::to_string(result.bytes) + " byte(s), " +
              std::to_string(stats.objects_recorded) + "/" +
              std::to_string(stats.objects_visited) + " recorded" +
              (healed_this_take_ ? ", healed" : ""));
  return result;
}

std::uint64_t CheckpointManager::append_healed(
    std::span<Checkpointable* const> roots, Epoch epoch, Mode& mode,
    io::VectorSink& sink, CheckpointStats& stats) {
  try {
    const std::uint64_t seq = storage_.append(sink.bytes());
    note_settled(epoch);
    return seq;
  } catch (const io::CrashFault&) {
    throw;  // simulated process death: never healed, never rolled back
  } catch (const IoError& e) {
    if (!opts_.heal.enabled) throw;
    return heal_append_failure(roots, epoch, mode, sink, stats, e.what());
  }
}

std::uint64_t CheckpointManager::heal_append_failure(
    std::span<Checkpointable* const> roots, Epoch epoch, Mode& mode,
    io::VectorSink& sink, CheckpointStats& stats,
    const std::string& first_error) {
  healed_this_take_ = true;
  last_error_ = first_error;
  clean_epochs_ = 0;
  set_health(Health::kDegraded);
  // Degraded writes are synchronous *and* durable: while the device is
  // suspect, an epoch is only reported taken once it is fsynced.
  storage_.set_durable(true);
  obs::instant("manager.degrade", "checkpoint",
               "append failed: " + first_error);
  // In-place retries first: the failed append rolled itself back, so the
  // log is still valid and the failure may have been a burst.
  for (unsigned i = 0; i < opts_.heal.append_retries; ++i) {
    flightrec_.record(obs::FlightEventType::kRetry, epoch, i + 1, 0,
                      last_error_);
    try {
      const std::uint64_t seq = storage_.append(sink.bytes());
      note_settled(epoch);
      return seq;
    } catch (const io::CrashFault&) {
      throw;
    } catch (const IoError& e) {
      last_error_ = e.what();
    }
  }
  // Rotation ladder: quarantine the generation the device keeps refusing
  // and rebase a fresh one with a full checkpoint, so no incremental chain
  // ever spans generations.
  set_health(Health::kRebasing);
  for (unsigned attempt = 0; attempt < opts_.heal.rotate_attempts;
       ++attempt) {
    obs::Span span("manager.rotate", "checkpoint");
    try {
      io::RotateResult rotated = storage_.rotate(opts_.heal.rotate_hook);
      ++rotations_;
      flightrec_.record(obs::FlightEventType::kRotation, epoch,
                        rotated.generation, rotated.bytes_quarantined,
                        rotated.quarantine_path);
      if (mode != Mode::kFull) {
        mode = Mode::kFull;
        stats = capture(epoch, roots, mode, sink);
      }
      const std::uint64_t seq = storage_.append(sink.bytes());
      if (opts_.heal.rotate_hook)
        opts_.heal.rotate_hook(io::RotateStage::kAfterRebase);
      note_settled(epoch);
      needs_rebase_ = false;
      flightrec_.record(obs::FlightEventType::kRebase, epoch, seq, 0,
                        rotated.quarantine_path);
      set_health(Health::kDegraded);
      obs::instant("manager.rebase", "checkpoint",
                   "epoch " + std::to_string(epoch) +
                       " rebased a fresh generation after quarantining " +
                       rotated.quarantine_path);
      if (span.active())
        span.note("quarantined " + rotated.quarantine_path +
                  ", rebase seq " + std::to_string(seq));
      return seq;
    } catch (const io::CrashFault&) {
      throw;
    } catch (const IoError& e) {
      last_error_ = e.what();
    }
  }
  set_health(Health::kFailed);
  // Terminal rung: serialize the event timeline next to the log before
  // throwing — the counters die with the process, the flight recording does
  // not. A dump failure must never mask the append failure being reported.
  try {
    const std::string dump_path = flightrec_path();
    flightrec_.record(obs::FlightEventType::kDump, epoch, 0, 0, dump_path);
    flightrec_.dump_to_file(dump_path);
  } catch (const Error&) {
  }
  throw IoError("checkpoint pipeline failed: append retries and " +
                std::to_string(opts_.heal.rotate_attempts) +
                " rotation attempt(s) exhausted (last error: " + last_error_ +
                ")");
}

namespace {

/// Payload-free record of one frame, built by the indexing pass. Holding
/// only these (24-ish bytes each) instead of io::Frame payloads is what
/// bounds recovery memory by the largest frame rather than the log size.
struct FrameMeta {
  std::uint64_t seq = 0;
  bool resync = false;
  /// Mode peeked from the payload while it was streaming past; nullopt when
  /// even the stream header is undecodable (such a frame cannot anchor a
  /// window or be addressed by epoch).
  std::optional<Mode> mode;
  /// Stream-header epoch; meaningful iff mode is set.
  Epoch epoch = 0;
};

/// End-of-scan state of the indexing pass (mirrors io::ScanResult minus the
/// frames).
struct LogIndex {
  std::vector<FrameMeta> frames;
  bool clean = true;
  std::string stop_reason;
  std::uint64_t stop_offset = 0;
  std::size_t regions_skipped = 0;
  std::uint64_t bytes_skipped = 0;
};

LogIndex index_log(const std::string& path, const io::ScanOptions& sopts) {
  obs::Span span("storage.scan", "io");
  io::FrameIndex raw = io::index_frames(path, sopts, stream_header_probe());
  LogIndex index;
  index.frames.reserve(raw.frames.size());
  for (const io::IndexedFrame& f : raw.frames) {
    FrameMeta meta;
    meta.seq = f.seq;
    meta.resync = f.resync;
    if (f.header_ok) {
      meta.mode = static_cast<Mode>(f.mode);
      meta.epoch = f.epoch;
    }
    index.frames.push_back(meta);
  }
  index.clean = raw.clean;
  index.stop_reason = raw.stop_reason;
  index.stop_offset = raw.stop_offset;
  index.regions_skipped = raw.regions_skipped;
  index.bytes_skipped = raw.bytes_skipped;
  // recover() used to obtain its frames through StableStorage::scan, which
  // feeds the scan counters; keep feeding them now that it streams the log
  // itself (ickptctl stats --self-test checks these stay live). Cold path:
  // per-call lookups are fine.
  obs::counter("ickpt_scans_total",
               {{"result", index.clean ? "clean" : "damaged"}})
      .inc();
  obs::counter("ickpt_scan_frames_total").inc(index.frames.size());
  if (index.regions_skipped > 0)
    obs::counter("ickpt_scan_corrupt_regions_total")
        .inc(index.regions_skipped);
  if (index.bytes_skipped > 0)
    obs::counter("ickpt_scan_bytes_skipped_total").inc(index.bytes_skipped);
  return index;
}

/// Replay frames [begin, end) of the log at `path` into a fresh Recovery,
/// re-streaming the file for each attempt (the log is closed and static
/// during recovery) and decoding one payload at a time. On a decode failure
/// *after* the full checkpoint, trims the window at the failing frame and
/// replays — the surviving prefix is still consistent (recovery applies
/// frames in order, so frames before the bad one are unaffected by it).
/// Returns false when the full checkpoint itself is undecodable. Trims are
/// collected into `note`; `records` receives the record count of the
/// finally-applied window; `passes` counts the re-streams.
bool apply_window(const std::string& path, const io::ScanOptions& sopts,
                  const std::vector<FrameMeta>& meta, std::size_t begin,
                  std::size_t end_limit, const TypeRegistry& registry,
                  RecoveredState& out, std::size_t& applied,
                  RecoveryNote& note, std::size_t& records,
                  std::size_t& passes) {
  std::size_t end = end_limit;
  while (end > begin) {
    Recovery recovery(registry);
    std::size_t at = begin;
    std::string what;
    bool failed = false;
    ApplyStats window_stats;
    {
      io::FrameIterator it(path, sopts);
      ++passes;
      io::Frame frame;
      // Frames before the window stream past without being decoded (the
      // iterator reuses one payload buffer, so skipping costs no memory).
      for (std::size_t skip = 0; skip < begin; ++skip) {
        if (!it.next(frame))
          throw CorruptionError("log '" + path +
                                "' shrank while recovering from it");
      }
      for (; at < end; ++at) {
        if (!it.next(frame))
          throw CorruptionError("log '" + path +
                                "' shrank while recovering from it");
        try {
          io::DataReader reader(frame.payload);
          ApplyStats frame_stats;
          recovery.apply(reader, &frame_stats);
          window_stats.records += frame_stats.records;
        } catch (const Error& e) {
          failed = true;
          what = e.what();
          break;
        }
      }
    }
    if (!failed) {
      try {
        out = recovery.finish();
        applied = end - begin;
        records = window_stats.records;
        return true;
      } catch (const Error& e) {
        // A dangling link etc. — dropping the last frame may close the
        // window again.
        failed = true;
        what = e.what();
        at = end - 1;
      }
    }
    if (at == begin) return false;
    note.trims.push_back(RecoveryNote::Trim{
        meta[at].seq, what, end_limit - at});
    end = at;
  }
  return false;
}

}  // namespace

namespace {

/// Recover from one log file (no generation walking); the member recover()
/// wraps this with the fall-back across quarantined generations.
RecoverResult recover_one(const std::string& path,
                          const TypeRegistry& registry, RecoverOptions opts) {
  obs::Span span("checkpoint.recover", "recovery");
  const io::ScanOptions sopts{.salvage = opts.salvage};

  // Pass 1: index the log without materializing payloads.
  LogIndex index = index_log(path, sopts);
  std::size_t passes = 1;
  if (index.frames.empty()) {
    if (opts.target_epoch.has_value())
      throw EpochNotRetainedError(path, *opts.target_epoch, std::nullopt,
                                  std::nullopt);
    throw CorruptionError("no recoverable checkpoint in '" + path + "'" +
                          (index.clean ? "" : " (" + index.stop_reason + ")"));
  }

  // Time-travel: locate the newest parseable frame carrying the target
  // epoch. Its absence is an EpochNotRetainedError naming the nearest
  // parseable neighbors — never a silent fall-forward to different state.
  std::optional<std::size_t> target_at;
  if (opts.target_epoch.has_value()) {
    const Epoch target = *opts.target_epoch;
    for (std::size_t i = index.frames.size(); i-- > 0;) {
      if (index.frames[i].mode.has_value() &&
          index.frames[i].epoch == target) {
        target_at = i;
        break;
      }
    }
    if (!target_at.has_value()) {
      std::optional<Epoch> below;
      std::optional<Epoch> above;
      for (const FrameMeta& f : index.frames) {
        if (!f.mode.has_value()) continue;
        if (f.epoch < target && (!below || f.epoch > *below)) below = f.epoch;
        if (f.epoch > target && (!above || f.epoch < *above)) above = f.epoch;
      }
      throw EpochNotRetainedError(path, target, below, above);
    }
  }

  RecoverResult result;
  result.recovered_path = path;
  result.log_clean = index.clean;
  result.frames_total = index.frames.size();
  result.corrupt_regions = index.regions_skipped;
  result.bytes_skipped = index.bytes_skipped;
  result.damage_offset = index.stop_offset;

  RecoveryNote note;
  if (!index.clean) {
    note.stop_reason = index.stop_reason;
    note.damage_offset = index.stop_offset;
    note.regions_skipped = index.regions_skipped;
    note.bytes_skipped = index.bytes_skipped;
    obs::instant("recover.salvage", "recovery",
                 index.stop_reason + " at byte " +
                     std::to_string(index.stop_offset) + ", " +
                     std::to_string(index.regions_skipped) +
                     " region(s) skipped");
  }

  // Contiguous runs of frames: a corrupt region (resync frame) starts a new
  // segment. Incrementals can only be applied onto a full checkpoint from
  // the *same* segment — across a gap, deltas may be missing.
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 1; i < index.frames.size(); ++i)
    if (index.frames[i].resync) starts.push_back(i);
  starts.push_back(index.frames.size());

  bool recovered = false;
  bool saw_empty_window = false;
  std::size_t records_applied = 0;
  if (target_at.has_value()) {
    // Time-travel window: anchored on a full checkpoint at or before the
    // target, ending right after the target's frame, inside the target's
    // contiguous segment (across a corrupt gap, deltas may be missing).
    std::size_t seg_begin = 0;
    for (std::size_t s = 0; s + 1 < starts.size(); ++s)
      if (starts[s] <= *target_at && *target_at < starts[s + 1])
        seg_begin = starts[s];
    const std::size_t end_limit = *target_at + 1;
    for (std::size_t i = end_limit; i-- > seg_begin && !recovered;) {
      if (index.frames[i].mode != Mode::kFull) continue;
      std::size_t applied = 0;
      obs::Span apply_span("recover.apply_window", "recovery");
      if (apply_window(path, sopts, index.frames, i, end_limit, registry,
                       result.state, applied, note, records_applied,
                       passes)) {
        // apply_window trims damaged tails; a trimmed window no longer
        // reaches the target, and time-travel must never report success
        // with a different epoch's state.
        if (result.state.epoch != *opts.target_epoch ||
            (result.state.by_id.empty() && result.state.roots.empty())) {
          saw_empty_window = result.state.by_id.empty();
          result.state = RecoveredState{};
          continue;
        }
        result.checkpoints_applied = applied;
        recovered = true;
      }
    }
    result.stream_passes = passes;
    if (!recovered)
      throw CorruptionError(
          "epoch " + std::to_string(*opts.target_epoch) + " is on log '" +
          path +
          "' but no undamaged window reaches it (its full-checkpoint anchor "
          "or an intervening delta is unreadable)");
  } else {
    // Newest usable window wins: walk segments from the back, and inside a
    // segment prefer the latest full checkpoint. Pass 2..n: each candidate
    // window re-streams the log (frame payloads decoded one at a time).
    for (std::size_t s = starts.size() - 1; s-- > 0 && !recovered;) {
      const std::size_t seg_begin = starts[s];
      const std::size_t seg_end = starts[s + 1];
      for (std::size_t i = seg_end; i-- > seg_begin && !recovered;) {
        if (index.frames[i].mode != Mode::kFull) continue;
        std::size_t applied = 0;
        obs::Span apply_span("recover.apply_window", "recovery");
        if (apply_window(path, sopts, index.frames, i, seg_end, registry,
                         result.state, applied, note, records_applied,
                         passes)) {
          if (result.state.by_id.empty() && result.state.roots.empty()) {
            // The window's frames decode but hold no object records (e.g. a
            // bare stream header). Never return an empty graph as recovered
            // state; keep searching older windows.
            saw_empty_window = true;
            result.state = RecoveredState{};
            continue;
          }
          result.checkpoints_applied = applied;
          recovered = true;
        }
      }
    }
    result.stream_passes = passes;
    if (!recovered) {
      if (saw_empty_window)
        throw CorruptionError(
            "log '" + path +
            "' contains only empty checkpoint frames (stream headers with no "
            "object records) — nothing to recover; restore the log or recover "
            "from an older generation");
      throw CorruptionError("log '" + path +
                            "' contains no usable full checkpoint" +
                            (index.clean ? "" : " (" + index.stop_reason +
                                                ")"));
    }
  }

  result.frames_dropped = result.frames_total - result.checkpoints_applied;
  note.frames_outside_window = result.frames_dropped;
  result.log_note = note.render();

  obs::counter("ickpt_recoveries_total",
               {{"log", index.clean ? "clean" : "damaged"}})
      .inc();
  // Deltas replayed on top of the window's full-checkpoint anchor. For
  // time-travel recoveries this is the quantity RetentionPolicy bounds
  // (strictly below 2*granularity(age)); for newest-state recoveries it
  // tracks full_interval. Cold path, per-call lookup.
  if (result.checkpoints_applied > 0)
    obs::histogram("ickpt_recover_replay_depth")
        .observe(static_cast<double>(result.checkpoints_applied - 1));
  obs::counter("ickpt_recover_frames_total", {{"result", "applied"}})
      .inc(result.checkpoints_applied);
  obs::counter("ickpt_recover_frames_total", {{"result", "dropped"}})
      .inc(result.frames_dropped);
  obs::counter("ickpt_recover_records_total").inc(records_applied);
  if (result.corrupt_regions > 0) {
    obs::counter("ickpt_recover_salvage_regions_total")
        .inc(result.corrupt_regions);
    obs::counter("ickpt_recover_salvage_bytes_total")
        .inc(result.bytes_skipped);
  }
  if (span.active())
    span.note(std::to_string(result.checkpoints_applied) +
              " checkpoint(s) applied, " +
              std::to_string(result.state.by_id.size()) + " object(s); " +
              note.trace_note());
  return result;
}

}  // namespace

RecoverResult CheckpointManager::recover(const std::string& path,
                                         const TypeRegistry& registry,
                                         RecoverOptions opts) {
  // Neighbor knowledge accumulated across the chain while a target epoch is
  // being hunted: the best lower neighbor is the max over files, the best
  // upper the min — so the final EpochNotRetainedError names the tightest
  // bracket any file can offer.
  std::optional<Epoch> below;
  std::optional<Epoch> above;
  bool target_found_damaged = false;
  std::exception_ptr damaged_failure;
  auto note_failure = [&](const CorruptionError& e) {
    if (const auto* missing = dynamic_cast<const EpochNotRetainedError*>(&e)) {
      if (missing->below() && (!below || *missing->below() > *below))
        below = missing->below();
      if (missing->above() && (!above || *missing->above() < *above))
        above = missing->above();
    } else if (opts.target_epoch.has_value()) {
      // The file carried the target but its window is damaged: if nothing
      // recovers, report the damage, not "not retained".
      target_found_damaged = true;
      damaged_failure = std::current_exception();
    }
  };
  std::exception_ptr live_failure;
  std::string live_error;
  try {
    return recover_one(path, registry, opts);
  } catch (const CorruptionError& e) {
    if (!opts.walk_generations) throw;
    note_failure(e);
    live_failure = std::current_exception();
    live_error = e.what();
  }
  // The live log yielded nothing usable. Rotation preserves damaged
  // generations as `<path>.quarantine.<n>`; walk them newest first — the
  // newest one that still holds a usable full window wins.
  const std::vector<std::string> chain =
      io::StableStorage::generation_chain(path);
  std::size_t tried = 1;
  for (const std::string& gen : chain) {
    ++tried;
    try {
      RecoverResult result = recover_one(gen, registry, opts);
      result.recovered_path = gen;
      result.generations_tried = tried;
      result.log_clean = false;  // the chain as a whole carried damage
      result.log_note = "live log unusable (" + live_error +
                        "); recovered from quarantined generation '" + gen +
                        "'" +
                        (result.log_note.empty() ? ""
                                                 : "; " + result.log_note);
      obs::counter("ickpt_recover_generation_fallbacks_total").inc();
      obs::instant("recover.generation_fallback", "recovery", gen);
      return result;
    } catch (const CorruptionError& e) {
      // Fall through to the next (older) generation.
      note_failure(e);
    }
  }
  if (opts.target_epoch.has_value()) {
    // The whole chain was consulted. Damage outranks absence: a file that
    // held the target but could not replay it is the actionable failure.
    if (target_found_damaged) std::rethrow_exception(damaged_failure);
    throw EpochNotRetainedError(path, *opts.target_epoch, below, above);
  }
  if (chain.empty()) std::rethrow_exception(live_failure);
  throw CorruptionError(
      "no recoverable checkpoint on the generation chain of '" + path +
      "' (" + std::to_string(tried) + " file(s) tried; live log: " +
      live_error + ")");
}

RecoverResult CheckpointManager::recover_to_epoch(const std::string& path,
                                                  const TypeRegistry& registry,
                                                  Epoch target,
                                                  RecoverOptions opts) {
  opts.target_epoch = target;
  return recover(path, registry, opts);
}

std::vector<HistoryEntry> CheckpointManager::history(const std::string& path) {
  std::vector<HistoryEntry> out;
  auto list_file = [&out](const std::string& file, bool live) {
    const io::FrameIndex index =
        io::index_frames(file, {.salvage = true}, stream_header_probe());
    // Newest frame per epoch within a file wins (a rebase can rewrite an
    // epoch); walk backwards and keep first-seen.
    std::vector<Epoch> seen;
    for (std::size_t i = index.frames.size(); i-- > 0;) {
      const io::IndexedFrame& f = index.frames[i];
      if (!f.header_ok) continue;
      if (std::find(seen.begin(), seen.end(), f.epoch) != seen.end())
        continue;
      seen.push_back(f.epoch);
      HistoryEntry entry;
      entry.epoch = f.epoch;
      entry.mode = static_cast<Mode>(f.mode);
      entry.seq = f.seq;
      entry.bytes = f.payload_bytes;
      entry.file = file;
      entry.live = live;
      entry.resync = f.resync;
      out.push_back(entry);
    }
  };
  list_file(path, true);
  for (const std::string& gen : io::StableStorage::generation_chain(path))
    list_file(gen, false);
  std::stable_sort(out.begin(), out.end(),
                   [](const HistoryEntry& a, const HistoryEntry& b) {
                     if (a.epoch != b.epoch) return a.epoch < b.epoch;
                     return a.live && !b.live;
                   });
  return out;
}

namespace {

/// Serialize `state` as one full-checkpoint payload carrying its epoch.
std::vector<std::uint8_t> full_payload_of(RecoveredState& state) {
  std::vector<Checkpointable*> roots;
  roots.reserve(state.roots.size());
  for (ObjectId id : state.roots) {
    Checkpointable* obj = state.find(id);
    if (obj == nullptr)
      throw CorruptionError("compaction: root vanished during recovery");
    roots.push_back(obj);
  }
  io::VectorSink sink;
  {
    io::DataWriter writer(sink);
    CheckpointOptions copts;
    copts.mode = Mode::kFull;
    Checkpoint::run(writer, state.epoch, roots, copts);
    writer.flush();
  }
  return sink.take();
}

}  // namespace

CompactResult CheckpointManager::compact(const std::string& path,
                                         const TypeRegistry& registry,
                                         CompactOptions opts) {
  obs::Span span("checkpoint.compact", "checkpoint");
  const bool binomial = opts.policy == CompactPolicy::kBinomial;
  obs::Histogram compact_seconds = obs::histogram("ickpt_compact_seconds");
  const bool timed = compact_seconds.live();
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();

  CompactResult result;
  try {
    result.bytes_before = io::read_file(path).size();
  } catch (const IoError&) {
    result.bytes_before = 0;
  }

  // The replacement log is built in a sibling file and atomically published
  // over the original: temp write + fsync + rename + directory fsync. A
  // crash anywhere before the rename loses only the compaction; the
  // original log is not touched until then (recovery reads it while the
  // replacement grows).
  const std::string tmp_path = path + ".compact";
  std::remove(tmp_path.c_str());  // stale leftover of a crashed compaction
  Epoch newest = 0;
  {
    io::StableStorage fresh(tmp_path,
                            io::StorageOptions{.durable = true,
                                               .fault = opts.fault});
    if (binomial) {
      // Which epochs does the schedule want, of the ones actually here?
      // Only the live log is rewritten — quarantined generations are
      // post-mortem artifacts, not subject to retention.
      const io::FrameIndex index =
          io::index_frames(path, {.salvage = true}, stream_header_probe());
      const std::vector<Epoch> present = index.epochs();
      if (present.empty())
        throw CorruptionError("no parseable epochs on '" + path +
                              "' to retain");
      newest = present.back();
      std::vector<Epoch> targets;
      for (Epoch e : RetentionPolicy::schedule(newest)) {
        if (std::binary_search(present.begin(), present.end(), e))
          targets.push_back(e);
      }
      // Materialize each retained epoch as a full frame with seq == epoch:
      // every retained epoch then recovers in one frame, and epoch
      // numbering (epoch_ = next_seq()) resumes correctly past the rewrite.
      // O(log n) recoveries of the unchanged original log, oldest first.
      for (Epoch e : targets) {
        RecoverOptions ropts;
        ropts.walk_generations = false;
        ropts.target_epoch = e;
        RecoveredState state;
        try {
          state = recover(path, registry, ropts).state;
        } catch (const CorruptionError&) {
          // A scheduled epoch whose window is damaged cannot be carried
          // forward; drop it rather than fail the whole compaction.
          ++result.epochs_dropped;
          continue;
        }
        const std::vector<std::uint8_t> payload = full_payload_of(state);
        result.objects = state.by_id.size();  // newest survives the loop
        fresh.set_next_seq(e);
        fresh.append(payload);
        result.retained.push_back(e);
      }
      if (result.retained.empty())
        throw CorruptionError("policy compaction of '" + path +
                              "': no scheduled epoch is recoverable");
      result.bytes_after = result.bytes_before;  // placeholder; fixed below
    } else {
      RecoverResult recovered = recover(path, registry);
      result.objects = recovered.state.by_id.size();
      newest = recovered.state.epoch;
      const std::vector<std::uint8_t> payload =
          full_payload_of(recovered.state);
      result.bytes_after = payload.size();
      fresh.set_next_seq(newest);
      fresh.append(payload);
      result.retained.push_back(newest);
    }
  }
  io::rename_durable(tmp_path, path);
  if (binomial) {
    try {
      result.bytes_after = io::read_file(path).size();
    } catch (const IoError&) {
      result.bytes_after = 0;
    }
    // Declare what was kept. Published after the log so a crash between the
    // two leaves a *stale* manifest — safe by schedule monotonicity (a
    // newer schedule only drops epochs the stale one already declared), and
    // exactly what fsck's retention audit checks for.
    RetentionManifest manifest;
    manifest.newest = newest;
    manifest.epochs = result.retained;
    manifest.save(path);
    obs::gauge("ickpt_retained_epochs")
        .set(static_cast<std::int64_t>(result.retained.size()));
  } else {
    // A squashed log has no history; a leftover declaration would make
    // fsck audit the fresh single-frame log against a dead schedule.
    RetentionManifest::remove(path);
  }
  obs::counter("ickpt_compacts_total",
               {{"policy", binomial ? "binomial" : "squash"}})
      .inc();
  if (timed)
    compact_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  if (span.active())
    span.note(std::to_string(result.objects) + " object(s), " +
              std::to_string(result.bytes_before) + " -> " +
              std::to_string(result.bytes_after) + " byte(s), " +
              std::to_string(result.retained.size()) +
              " epoch(s) retained");
  return result;
}

CompactResult CheckpointManager::compact(const std::string& path,
                                         const TypeRegistry& registry,
                                         io::FaultPolicy* fault) {
  return compact(path, registry,
                 CompactOptions{.policy = CompactPolicy::kSquashAll,
                                .fault = fault});
}

}  // namespace ickpt::core
