// Epoch-addressed index of a checkpoint log.
//
// The storage layer frames opaque payloads; which epoch a frame carries is
// written by the core stream encoder inside the payload. Time-travel
// recovery and fsck's retention audit both need to answer "which epochs are
// on this log, and where" without materializing any payload — so this scan
// streams every frame (salvage-aware, O(largest frame) memory) and asks a
// caller-supplied HeaderProbe to read the epoch/mode out of each payload's
// first bytes. The probe keeps the layering honest: io stays ignorant of
// the checkpoint stream format, core (which owns peek_header) supplies the
// few lines that understand it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "io/stable_storage.hpp"

namespace ickpt::io {

struct IndexedFrame {
  std::uint64_t seq = 0;
  /// Byte offset of the frame header within the log.
  std::uint64_t offset = 0;
  std::size_t payload_bytes = 0;
  /// A corrupt region lies between this frame and the previous one.
  bool resync = false;
  /// The HeaderProbe accepted this payload; epoch/mode are meaningful.
  bool header_ok = false;
  std::uint64_t epoch = 0;
  /// Stream mode byte as written (core::Mode); meaningful iff header_ok.
  std::uint8_t mode = 0;
};

/// Reads epoch + mode from the leading bytes of a frame payload; returns
/// false (leaving the outputs alone) when the payload is not a parseable
/// checkpoint stream header.
using HeaderProbe = std::function<bool(
    const std::vector<std::uint8_t>& payload, std::uint64_t& epoch,
    std::uint8_t& mode)>;

struct FrameIndex {
  std::vector<IndexedFrame> frames;
  // End-of-scan state, mirroring ScanResult.
  bool clean = true;
  std::string stop_reason;
  std::uint64_t stop_offset = 0;
  std::size_t regions_skipped = 0;
  std::uint64_t bytes_skipped = 0;

  /// Index (into frames) of the newest parseable frame carrying `epoch`;
  /// nullopt when the epoch is not on this log.
  [[nodiscard]] std::optional<std::size_t> find_epoch(
      std::uint64_t epoch) const;

  /// Largest parseable epoch < `epoch` on this log (nearest retained
  /// neighbor below a missing target), and smallest parseable epoch >
  /// `epoch`. Used to make "epoch not retained" errors actionable.
  [[nodiscard]] std::optional<std::uint64_t> nearest_below(
      std::uint64_t epoch) const;
  [[nodiscard]] std::optional<std::uint64_t> nearest_above(
      std::uint64_t epoch) const;

  /// Every distinct parseable epoch on this log, ascending.
  [[nodiscard]] std::vector<std::uint64_t> epochs() const;
};

/// Stream the log at `path` into an index. A missing file indexes as an
/// empty, clean log. Payloads are probed and discarded — memory stays
/// O(largest frame) plus the index itself.
FrameIndex index_frames(const std::string& path, ScanOptions opts,
                        const HeaderProbe& probe);

}  // namespace ickpt::io
