// Fault injection and retry policy for the stable-storage write path.
//
// Every physical write issued by FileSink first consults an optional
// FaultPolicy, which can decide to tear the write (partial bytes then an
// error), shorten it (partial bytes, caller retries the remainder), flip a
// bit (silent corruption — caught later by the frame CRC), fail transiently
// (EINTR/ENOSPC; FileSink retries with bounded exponential backoff), or
// crash the "process" at an exact byte offset (CrashFault: the file keeps
// whatever was flushed, nothing is rolled back — exactly the state a real
// crash would leave behind).
//
// The crash-matrix tests sweep a ScriptedFaultPolicy across every byte
// offset of an append/compact run and assert that recovery + fsck always
// yield a consistent prefix. Production code pays one branch per write when
// no policy is installed.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/error.hpp"

namespace ickpt::io {

enum class FaultKind : std::uint8_t {
  kNone,        ///< no fault; perform the write normally
  kTornWrite,   ///< write `byte_limit` bytes, then fail with IoError
  kShortWrite,  ///< write only `byte_limit` bytes; caller must retry the rest
  kBitFlip,     ///< flip one bit of byte `byte_limit`, then write all bytes
  kTransient,   ///< fail with `transient_errno` without writing (retryable)
  kCrash,       ///< write `byte_limit` bytes, flush, then throw CrashFault
};

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Byte index within the current write the fault applies to (see kinds).
  std::size_t byte_limit = 0;
  /// kTransient: the errno to report (EINTR, ENOSPC, ...).
  int transient_errno = EINTR;
};

/// Thrown to simulate process death at a fault point. Deliberately *not* an
/// IoError: rollback/retry paths must never treat a crash as a recoverable
/// write failure — the post-crash file state is what recovery gets.
class CrashFault : public Error {
 public:
  explicit CrashFault(const std::string& what) : Error("crash: " + what) {}
};

/// Injection hook consulted before every physical write.
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;

  /// `offset` is the absolute file offset the write would start at; `n` is
  /// the number of bytes the caller wants written.
  virtual FaultDecision on_write(std::uint64_t offset, std::size_t n) = 0;
};

/// Bounded retry with exponential backoff for the transient fault class
/// (injected kTransient decisions and real EINTR short writes).
struct RetryPolicy {
  unsigned max_attempts = 8;
  std::chrono::microseconds initial_backoff{100};
  std::chrono::microseconds max_backoff{100'000};
  /// Nonzero: derive a deterministic per-attempt jitter from this seed so
  /// parallel shards / multi-tenant sessions sharing a congested device do
  /// not retry in lockstep. Zero keeps the classic deterministic schedule.
  std::uint64_t jitter_seed = 0;
};

/// Delay before retrying after `attempt` prior failures (0-based): the
/// exponential initial_backoff * 2^attempt, saturating at max_backoff with
/// no intermediate overflow even for attempt >= 64. With a nonzero
/// jitter_seed the delay is decorrelated into [delay/2, delay] using a hash
/// of (seed, attempt) — deterministic per seed, different across seeds.
[[nodiscard]] std::chrono::microseconds backoff_delay(const RetryPolicy& retry,
                                                      unsigned attempt);

/// Deterministic one-shot policy for tests and the crash-matrix harness:
/// arms a single fault of `kind` that fires on the write covering cumulative
/// file offset `trigger_offset`. kTransient instead fires `transient_count`
/// consecutive times starting at the first write at/after the trigger.
class ScriptedFaultPolicy final : public FaultPolicy {
 public:
  ScriptedFaultPolicy(FaultKind kind, std::uint64_t trigger_offset,
                      int transient_errno = EINTR,
                      unsigned transient_count = 1);

  FaultDecision on_write(std::uint64_t offset, std::size_t n) override;

  /// True once the scripted fault has been delivered (transients: at least
  /// once). The matrix uses this to detect trigger offsets past end-of-run.
  [[nodiscard]] bool fired() const noexcept { return fired_; }

  /// Total bytes the policy saw flow past (faulted or not).
  [[nodiscard]] std::uint64_t bytes_seen() const noexcept {
    return bytes_seen_;
  }

 private:
  FaultKind kind_;
  std::uint64_t trigger_;
  int transient_errno_;
  unsigned transients_left_;
  bool fired_ = false;
  std::uint64_t bytes_seen_ = 0;
};

}  // namespace ickpt::io
