// Byte-sink abstraction: where checkpoint bytes go.
//
// This is the analog of the paper's java.io OutputStream family. The hot
// checkpoint path writes through a buffering DataWriter (data_writer.hpp), so
// a ByteSink only sees large flushes; per-value virtual-call overhead is paid
// once per buffer, as with Java's BufferedOutputStream/ByteArrayOutputStream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ickpt::io {

/// Destination for raw checkpoint bytes.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// Append `n` bytes. Throws IoError on failure.
  virtual void write(const std::uint8_t* data, std::size_t n) = 0;

  /// Push buffered bytes toward stable storage. Default: no-op.
  virtual void flush() {}
};

/// In-memory sink (the ByteArrayOutputStream analog).
class VectorSink final : public ByteSink {
 public:
  void write(const std::uint8_t* data, std::size_t n) override {
    bytes_.insert(bytes_.end(), data, data + n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(bytes_);
  }
  void clear() noexcept { bytes_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  /// Pre-size the backing store; shard walkers pass the previous segment's
  /// size so steady-state captures skip the realloc-and-copy ramp.
  void reserve(std::size_t n) { bytes_.reserve(n); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Discards bytes but counts them; used to measure checkpoint *size* and
/// pure traversal cost without paying for storage.
class CountingSink final : public ByteSink {
 public:
  void write(const std::uint8_t*, std::size_t n) override { count_ += n; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  void reset() noexcept { count_ = 0; }

 private:
  std::size_t count_ = 0;
};

}  // namespace ickpt::io
