// File-backed byte sink plus whole-file loading.
//
// FileSink is the path to stable storage: append-only, explicit flush
// (fflush + fsync on durable_flush). Checkpoint *construction* benchmarks
// use VectorSink/CountingSink so that disk speed does not pollute the
// traversal measurements, exactly as the paper defers the copy task.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "io/byte_sink.hpp"

namespace ickpt::io {

class FileSink final : public ByteSink {
 public:
  enum class Mode { kTruncate, kAppend };

  explicit FileSink(const std::string& path, Mode mode = Mode::kTruncate);
  ~FileSink() override;

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void write(const std::uint8_t* data, std::size_t n) override;
  void flush() override;

  /// flush() + fsync: the frame is on stable storage when this returns.
  void durable_flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

/// Read an entire file into memory. Throws IoError if unreadable.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Write a buffer to a file (truncating). Throws IoError on failure.
void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes);

}  // namespace ickpt::io
