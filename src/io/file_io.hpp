// File-backed byte sink plus whole-file loading.
//
// FileSink is the path to stable storage: append-only, explicit flush
// (fflush + fsync on durable_flush). Checkpoint *construction* benchmarks
// use VectorSink/CountingSink so that disk speed does not pollute the
// traversal measurements, exactly as the paper defers the copy task.
//
// Crash-consistency hooks: every physical write consults an optional
// io::FaultPolicy (fault.hpp), transient failures (injected EINTR/ENOSPC
// and real EINTR short writes) are retried with bounded exponential
// backoff, and truncate_to() lets StableStorage roll a failed append back
// to the previous frame boundary.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "io/byte_sink.hpp"
#include "io/fault.hpp"
#include "obs/metrics.hpp"

namespace ickpt::obs {
struct CaptureProfile;
class FlightRecorder;
}

namespace ickpt::io {

class FileSink final : public ByteSink {
 public:
  enum class Mode { kTruncate, kAppend };

  explicit FileSink(const std::string& path, Mode mode = Mode::kTruncate);
  ~FileSink() override;

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void write(const std::uint8_t* data, std::size_t n) override;
  void flush() override;

  /// flush() + fsync: the frame is on stable storage when this returns.
  void durable_flush();

  /// Fault injection hook (not owned; nullptr disables). Tests only.
  void set_fault_policy(FaultPolicy* policy) noexcept { fault_ = policy; }
  void set_retry_policy(const RetryPolicy& retry) noexcept { retry_ = retry; }

  /// Stage-attribution accumulator (not owned; nullptr disables): each
  /// durable_flush adds its fsync wall time to kFsync, letting the capture
  /// profiler split append cost into write vs. device sync. One pointer
  /// test per flush when unset.
  void set_profile(obs::CaptureProfile* profile) noexcept { prof_ = profile; }

  /// Flight recorder (not owned; nullptr disables): every injected fault
  /// decision is recorded as a kFault event carrying the byte offset,
  /// request size, and fault kind.
  void set_flightrec(obs::FlightRecorder* rec) noexcept { flightrec_ = rec; }

  /// Re-resolve metric handles against the currently installed registry.
  /// Handles bind at construction; a sink that outlives the registry it was
  /// built under (or was built before install) holds stale/null handles
  /// until this is called. See docs/OBSERVABILITY.md, "Handle lifetime".
  void rebind_metrics() noexcept;

  /// Bytes in the file including buffered-but-unflushed ones; the file
  /// offset the next write() starts at.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

  /// Shrink the file to `size` bytes (rollback of a partially written
  /// frame). Flushes first; throws IoError on failure.
  void truncate_to(std::uint64_t size);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  /// Write exactly `n` bytes, retrying real EINTR short writes.
  void write_raw(const std::uint8_t* data, std::size_t n);
  void backoff(unsigned attempt) const;

  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;
  FaultPolicy* fault_ = nullptr;
  RetryPolicy retry_;
  obs::CaptureProfile* prof_ = nullptr;
  obs::FlightRecorder* flightrec_ = nullptr;
  // Null handles (one pointer test per op) unless a registry is installed
  // when the sink is constructed; see docs/OBSERVABILITY.md.
  obs::Counter obs_bytes_;
  obs::Counter obs_fsyncs_;
};

/// Read an entire file into memory. Throws IoError if unreadable.
std::vector<std::uint8_t> read_file(const std::string& path);

/// Write a buffer to a file (truncating). Throws IoError on failure.
void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes);

/// True if `path` exists and is openable for reading.
[[nodiscard]] bool file_exists(const std::string& path);

/// fsync the directory containing `path`, persisting a rename/create/unlink
/// of that entry. No-op on platforms without directory fsync.
void fsync_parent_dir(const std::string& path);

/// rename(from, to) + fsync of to's directory: the atomic publish step of
/// write-to-temp + rename. Throws IoError on failure.
void rename_durable(const std::string& from, const std::string& to);

/// Shrink the file at `path` to `size` bytes and persist the new length.
void truncate_file(const std::string& path, std::uint64_t size);

}  // namespace ickpt::io
