// Buffered typed writer: the DataOutputStream analog.
//
// Values are encoded big-endian (Java serialization convention) into an
// internal buffer that is flushed to the underlying ByteSink in large chunks.
// All hot-path methods are inline and branch-free apart from the buffer-full
// check, so the cost profile matches what the paper's record() methods pay.
#pragma once

#include <cstring>
#include <string_view>

#include "common/error.hpp"
#include "io/byte_sink.hpp"

namespace ickpt::io {

class DataWriter {
 public:
  static constexpr std::size_t kDefaultBufferSize = 1 << 16;

  explicit DataWriter(ByteSink& sink,
                      std::size_t buffer_size = kDefaultBufferSize)
      : sink_(&sink) {
    buf_.resize(buffer_size < 16 ? 16 : buffer_size);
  }

  DataWriter(const DataWriter&) = delete;
  DataWriter& operator=(const DataWriter&) = delete;

  ~DataWriter() {
    // Best effort on destruction; call flush() explicitly to observe errors.
    try {
      flush();
    } catch (...) {
    }
  }

  void write_u8(std::uint8_t v) {
    need(1);
    buf_[pos_++] = v;
  }

  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  void write_u16(std::uint16_t v) {
    need(2);
    buf_[pos_++] = static_cast<std::uint8_t>(v >> 8);
    buf_[pos_++] = static_cast<std::uint8_t>(v);
  }

  void write_u32(std::uint32_t v) {
    need(4);
    buf_[pos_++] = static_cast<std::uint8_t>(v >> 24);
    buf_[pos_++] = static_cast<std::uint8_t>(v >> 16);
    buf_[pos_++] = static_cast<std::uint8_t>(v >> 8);
    buf_[pos_++] = static_cast<std::uint8_t>(v);
  }

  void write_u64(std::uint64_t v) {
    need(8);
    for (int s = 56; s >= 0; s -= 8)
      buf_[pos_++] = static_cast<std::uint8_t>(v >> s);
  }

  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }

  void write_f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write_u32(bits);
  }

  void write_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write_u64(bits);
  }

  /// Unsigned LEB128; used for ids, lengths, and the varint-encoding
  /// ablation (DESIGN.md §5.2).
  void write_varint(std::uint64_t v) {
    need(10);
    while (v >= 0x80) {
      buf_[pos_++] = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    buf_[pos_++] = static_cast<std::uint8_t>(v);
  }

  /// Zigzag-encoded signed LEB128.
  void write_varint_i64(std::int64_t v) {
    write_varint((static_cast<std::uint64_t>(v) << 1) ^
                 static_cast<std::uint64_t>(v >> 63));
  }

  /// Write `n` contiguous int32 values big-endian. Equivalent to n calls of
  /// write_i32 but with one buffer check per chunk; the specialized
  /// executors use this for fused field runs.
  void write_i32_run(const std::int32_t* values, std::size_t n) {
    while (n != 0) {
      std::size_t fit = (buf_.size() - pos_) / 4;
      if (fit == 0) {
        need(4);
        fit = (buf_.size() - pos_) / 4;
      }
      std::size_t chunk = n < fit ? n : fit;
      std::uint8_t* out = buf_.data() + pos_;
      for (std::size_t i = 0; i < chunk; ++i) {
        std::uint32_t v = static_cast<std::uint32_t>(values[i]);
        out[0] = static_cast<std::uint8_t>(v >> 24);
        out[1] = static_cast<std::uint8_t>(v >> 16);
        out[2] = static_cast<std::uint8_t>(v >> 8);
        out[3] = static_cast<std::uint8_t>(v);
        out += 4;
      }
      pos_ += chunk * 4;
      values += chunk;
      n -= chunk;
    }
  }

  void write_bytes(const std::uint8_t* data, std::size_t n) {
    if (n >= buf_.size() / 2) {
      flush();
      sink_->write(data, n);
      written_ += n;
      return;
    }
    need(n);
    std::memcpy(buf_.data() + pos_, data, n);
    pos_ += n;
  }

  /// Length-prefixed UTF-8 string (varint length + bytes).
  void write_string(std::string_view s) {
    write_varint(s.size());
    write_bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  void flush() {
    if (pos_ != 0) {
      sink_->write(buf_.data(), pos_);
      written_ += pos_;
      pos_ = 0;
    }
    sink_->flush();
  }

  /// Total bytes handed to this writer (flushed or still buffered).
  [[nodiscard]] std::size_t bytes_written() const noexcept {
    return written_ + pos_;
  }

 private:
  void need(std::size_t n) {
    if (pos_ + n > buf_.size()) {
      sink_->write(buf_.data(), pos_);
      written_ += pos_;
      pos_ = 0;
    }
  }

  ByteSink* sink_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::size_t written_ = 0;
};

}  // namespace ickpt::io
