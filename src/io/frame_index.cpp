#include "io/frame_index.hpp"

#include <algorithm>

namespace ickpt::io {

std::optional<std::size_t> FrameIndex::find_epoch(std::uint64_t epoch) const {
  // Newest wins: a policy compaction or a rebase can legitimately write an
  // epoch again; the most recent frame for it is the authoritative one.
  for (std::size_t i = frames.size(); i-- > 0;) {
    if (frames[i].header_ok && frames[i].epoch == epoch) return i;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> FrameIndex::nearest_below(
    std::uint64_t epoch) const {
  std::optional<std::uint64_t> best;
  for (const IndexedFrame& f : frames) {
    if (f.header_ok && f.epoch < epoch && (!best || f.epoch > *best))
      best = f.epoch;
  }
  return best;
}

std::optional<std::uint64_t> FrameIndex::nearest_above(
    std::uint64_t epoch) const {
  std::optional<std::uint64_t> best;
  for (const IndexedFrame& f : frames) {
    if (f.header_ok && f.epoch > epoch && (!best || f.epoch < *best))
      best = f.epoch;
  }
  return best;
}

std::vector<std::uint64_t> FrameIndex::epochs() const {
  std::vector<std::uint64_t> out;
  for (const IndexedFrame& f : frames) {
    if (f.header_ok) out.push_back(f.epoch);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

FrameIndex index_frames(const std::string& path, ScanOptions opts,
                        const HeaderProbe& probe) {
  FrameIndex index;
  FrameIterator it(path, opts);
  Frame frame;
  while (it.next(frame)) {
    IndexedFrame meta;
    meta.seq = frame.seq;
    meta.offset = frame.offset;
    meta.payload_bytes = frame.payload.size();
    meta.resync = frame.resync;
    if (probe) meta.header_ok = probe(frame.payload, meta.epoch, meta.mode);
    index.frames.push_back(meta);
  }
  index.clean = it.clean();
  index.stop_reason = it.stop_reason();
  index.stop_offset = it.stop_offset();
  index.regions_skipped = it.regions_skipped();
  index.bytes_skipped = it.bytes_skipped();
  return index;
}

}  // namespace ickpt::io
