#include "io/stable_storage.hpp"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "io/crc32.hpp"
#include "io/file_io.hpp"

namespace ickpt::io {

namespace {

constexpr std::uint32_t kMagic = 0x49434B46;  // "ICKF"
constexpr std::size_t kHeaderSize = 4 + 8 + 4 + 4;
// Backstop against absurd lengths from corrupt headers.
constexpr std::uint32_t kMaxPayload = 1u << 30;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> s));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

struct StableStorage::Impl {
  std::unique_ptr<FileSink> sink;
};

StableStorage::StableStorage(std::string path, bool durable)
    : path_(std::move(path)), durable_(durable), impl_(new Impl) {
  // Resume sequence numbering after any valid prefix already on disk.
  ScanResult existing = scan(path_);
  if (!existing.frames.empty()) next_seq_ = existing.frames.back().seq + 1;
  open_for_append();
}

StableStorage::~StableStorage() { delete impl_; }

void StableStorage::open_for_append() {
  impl_->sink = std::make_unique<FileSink>(path_, FileSink::Mode::kAppend);
}

std::uint64_t StableStorage::append(const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload)
    throw IoError("checkpoint payload exceeds 1 GiB frame limit");
  std::vector<std::uint8_t> header;
  header.reserve(kHeaderSize);
  put_u32(header, kMagic);
  const std::uint64_t seq = next_seq_++;
  put_u64(header, seq);
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  // The CRC covers seq, length, and payload, so a corrupted header field is
  // caught just like corrupted payload bytes.
  Crc32 crc;
  crc.update(header.data() + 4, 12);
  crc.update(payload.data(), payload.size());
  put_u32(header, crc.value());
  impl_->sink->write(header.data(), header.size());
  impl_->sink->write(payload.data(), payload.size());
  if (durable_)
    impl_->sink->durable_flush();
  else
    impl_->sink->flush();
  return seq;
}

void StableStorage::reset() {
  impl_->sink.reset();
  // Truncate by reopening in truncate mode, then switch back to append.
  { FileSink truncate(path_, FileSink::Mode::kTruncate); }
  open_for_append();
}

ScanResult StableStorage::scan(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_file(path);
  } catch (const IoError&) {
    return {};  // missing file == empty log
  }
  return scan_bytes(bytes);
}

ScanResult StableStorage::scan_bytes(const std::vector<std::uint8_t>& bytes) {
  ScanResult result;
  std::size_t off = 0;
  std::uint64_t prev_seq = 0;
  bool first = true;
  while (off < bytes.size()) {
    if (bytes.size() - off < kHeaderSize) {
      result.clean = false;
      result.stop_reason = "torn frame header";
      return result;
    }
    const std::uint8_t* p = bytes.data() + off;
    if (get_u32(p) != kMagic) {
      result.clean = false;
      result.stop_reason = "bad frame magic";
      return result;
    }
    std::uint64_t seq = get_u64(p + 4);
    std::uint32_t len = get_u32(p + 12);
    std::uint32_t crc = get_u32(p + 16);
    if (len > kMaxPayload) {
      result.clean = false;
      result.stop_reason = "implausible frame length";
      return result;
    }
    if (bytes.size() - off - kHeaderSize < len) {
      result.clean = false;
      result.stop_reason = "torn frame payload";
      return result;
    }
    const std::uint8_t* payload = p + kHeaderSize;
    Crc32 check;
    check.update(p + 4, 12);  // seq + length
    check.update(payload, len);
    if (check.value() != crc) {
      result.clean = false;
      result.stop_reason = "frame CRC mismatch";
      return result;
    }
    if (!first && seq <= prev_seq) {
      result.clean = false;
      result.stop_reason = "non-increasing sequence number";
      return result;
    }
    first = false;
    prev_seq = seq;
    result.frames.push_back(Frame{seq, {payload, payload + len}});
    off += kHeaderSize + len;
  }
  return result;
}

}  // namespace ickpt::io
