#include "io/stable_storage.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <utility>

#include "common/error.hpp"
#include "io/crc32.hpp"
#include "io/file_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ickpt::io {

namespace {

constexpr std::uint32_t kMagic = 0x49434B46;  // "ICKF"
constexpr std::size_t kHeaderSize = 4 + 8 + 4 + 4;
// Backstop against absurd lengths from corrupt headers.
constexpr std::uint32_t kMaxPayload = 1u << 30;
// Big-endian byte pattern of kMagic, for salvage resynchronization.
constexpr std::uint8_t kMagicBytes[4] = {0x49, 0x43, 0x4B, 0x46};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> s));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

// --- FrameIterator ----------------------------------------------------------

struct FrameIterator::Impl {
  ScanOptions opts;

  std::FILE* file = nullptr;          // file mode (nullptr once closed/missing)
  const std::uint8_t* mem = nullptr;  // memory mode
  std::size_t mem_size = 0;
  std::size_t mem_pos = 0;
  bool eof = false;

  // Sliding window of unconsumed bytes. buf[head] is at file offset
  // `base + head`; the window never exceeds one frame plus refill chunk.
  std::vector<std::uint8_t> buf;
  std::size_t head = 0;
  std::uint64_t base = 0;

  // Parse state.
  std::uint64_t prev_seq = 0;
  bool first_frame = true;
  std::uint64_t pending_skip = 0;  // bytes skipped since the last good frame

  // End-of-scan bookkeeping.
  bool done = false;
  bool damaged = false;
  std::string stop_reason;
  std::uint64_t stop_offset = 0;
  std::uint64_t valid_prefix = 0;
  std::size_t regions_skipped = 0;
  std::uint64_t bytes_skipped = 0;

  ~Impl() {
    if (file != nullptr) std::fclose(file);
  }

  [[nodiscard]] std::uint64_t offset() const { return base + head; }
  [[nodiscard]] std::size_t available() const { return buf.size() - head; }

  void consume(std::size_t n) { head += n; }

  void fill(std::size_t want) {
    if (eof || available() >= want) return;
    if (head > (1u << 20)) {
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(head));
      base += head;
      head = 0;
    }
    while (!eof && available() < want) {
      if (file != nullptr) {
        std::uint8_t tmp[1 << 16];
        std::size_t n = std::fread(tmp, 1, sizeof(tmp), file);
        if (n == 0) {
          // A read error mid-scan is damage, not a crash: report it as the
          // stop reason rather than throwing out of an integrity pass.
          if (std::ferror(file) != 0) record_damage("log read error");
          eof = true;
        } else {
          buf.insert(buf.end(), tmp, tmp + n);
        }
      } else {
        std::size_t n = mem_size - mem_pos;
        if (n > (1u << 16)) n = 1u << 16;
        if (n == 0) {
          eof = true;
        } else {
          buf.insert(buf.end(), mem + mem_pos, mem + mem_pos + n);
          mem_pos += n;
        }
      }
    }
  }

  void record_damage(const char* why) {
    if (damaged) return;
    damaged = true;
    stop_reason = why;
    stop_offset = offset();
  }

  /// Advance at least one byte, then position `head` on the next candidate
  /// magic sequence (or end of input). Skipped bytes accumulate into
  /// pending_skip.
  void seek_next_magic() {
    pending_skip += 1;
    consume(1);
    for (;;) {
      fill(sizeof(kMagicBytes));
      if (available() < sizeof(kMagicBytes)) {
        pending_skip += available();
        consume(available());
        return;
      }
      const std::uint8_t* begin = buf.data() + head;
      const std::uint8_t* end = buf.data() + buf.size();
      const std::uint8_t* hit = std::search(
          begin, end, std::begin(kMagicBytes), std::end(kMagicBytes));
      if (hit != end) {
        pending_skip += static_cast<std::uint64_t>(hit - begin);
        consume(static_cast<std::size_t>(hit - begin));
        return;
      }
      // No magic in the window; keep the last 3 bytes (a magic prefix may
      // straddle the chunk boundary) and read more.
      std::size_t drop = available() - (sizeof(kMagicBytes) - 1);
      pending_skip += drop;
      consume(drop);
      if (eof) {
        pending_skip += available();
        consume(available());
        return;
      }
    }
  }

  void finish() {
    done = true;
    if (pending_skip > 0) {
      ++regions_skipped;
      bytes_skipped += pending_skip;
      pending_skip = 0;
    }
  }

  bool next(Frame& out) {
    if (done) return false;
    for (;;) {
      fill(kHeaderSize);
      if (available() == 0) {
        finish();
        return false;
      }
      const char* why = nullptr;
      std::uint64_t seq = 0;
      std::uint32_t len = 0;
      if (available() < kHeaderSize) {
        why = "torn frame header";
      } else {
        const std::uint8_t* p = buf.data() + head;
        if (get_u32(p) != kMagic) {
          why = "bad frame magic";
        } else {
          seq = get_u64(p + 4);
          len = get_u32(p + 12);
          if (len > kMaxPayload) {
            why = "implausible frame length";
          } else {
            fill(kHeaderSize + len);
            if (available() < kHeaderSize + len) {
              why = "torn frame payload";
            } else {
              p = buf.data() + head;  // fill() may have reallocated
              Crc32 check;
              check.update(p + 4, 12);  // seq + length
              check.update(p + kHeaderSize, len);
              if (check.value() != get_u32(p + 16)) {
                why = "frame CRC mismatch";
              } else if (!first_frame && seq <= prev_seq) {
                why = "non-increasing sequence number";
              }
            }
          }
        }
      }

      if (why == nullptr) {
        const std::uint8_t* p = buf.data() + head;
        out.seq = seq;
        out.offset = offset();
        out.payload.assign(p + kHeaderSize, p + kHeaderSize + len);
        out.resync = pending_skip > 0;
        if (pending_skip > 0) {
          ++regions_skipped;
          bytes_skipped += pending_skip;
          pending_skip = 0;
        }
        first_frame = false;
        prev_seq = seq;
        consume(kHeaderSize + len);
        if (!damaged) valid_prefix = offset();
        return true;
      }

      record_damage(why);
      if (!opts.salvage) {
        done = true;
        return false;
      }
      seek_next_magic();
    }
  }
};

FrameIterator::FrameIterator(const std::string& path, ScanOptions opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->opts = opts;
  impl_->file = std::fopen(path.c_str(), "rb");
  if (impl_->file == nullptr) impl_->eof = true;  // missing file == empty log
}

FrameIterator::FrameIterator(const std::uint8_t* data, std::size_t size,
                             ScanOptions opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->opts = opts;
  impl_->mem = data;
  impl_->mem_size = size;
}

FrameIterator::~FrameIterator() = default;

bool FrameIterator::next(Frame& out) { return impl_->next(out); }
bool FrameIterator::clean() const { return !impl_->damaged; }
const std::string& FrameIterator::stop_reason() const {
  return impl_->stop_reason;
}
std::uint64_t FrameIterator::stop_offset() const {
  return impl_->damaged ? impl_->stop_offset : impl_->valid_prefix;
}
std::uint64_t FrameIterator::valid_prefix_bytes() const {
  return impl_->valid_prefix;
}
std::size_t FrameIterator::regions_skipped() const {
  return impl_->regions_skipped;
}
std::uint64_t FrameIterator::bytes_skipped() const {
  return impl_->bytes_skipped;
}

namespace {

ScanResult collect(FrameIterator& it) {
  ScanResult result;
  Frame frame;
  while (it.next(frame)) result.frames.push_back(frame);
  result.clean = it.clean();
  result.stop_reason = it.stop_reason();
  result.stop_offset = it.stop_offset();
  result.valid_prefix_bytes = it.valid_prefix_bytes();
  result.regions_skipped = it.regions_skipped();
  result.bytes_skipped = it.bytes_skipped();
  return result;
}

/// Feed a completed scan's counters into the installed registry — the
/// ScanResult fields stop being write-only the moment observability is on.
/// Cold path: scans happen at open/recover/fsck time, so per-call lookups
/// are fine (and stay correct under late registry installation).
void publish_scan(const ScanResult& result) {
  obs::counter("ickpt_scans_total",
               {{"result", result.clean ? "clean" : "damaged"}})
      .inc();
  obs::counter("ickpt_scan_frames_total").inc(result.frames.size());
  if (result.regions_skipped > 0)
    obs::counter("ickpt_scan_corrupt_regions_total")
        .inc(result.regions_skipped);
  if (result.bytes_skipped > 0)
    obs::counter("ickpt_scan_bytes_skipped_total").inc(result.bytes_skipped);
}

}  // namespace

// --- StableStorage ----------------------------------------------------------

struct StableStorage::Impl {
  std::unique_ptr<FileSink> sink;
  obs::Counter obs_appends = obs::counter("ickpt_storage_appends_total");
  obs::Counter obs_rollbacks = obs::counter("ickpt_storage_rollbacks_total");
};

StableStorage::StableStorage(std::string path, StorageOptions opts)
    : path_(std::move(path)), opts_(opts), impl_(new Impl) {
  // Never append behind an unreadable tail: truncate it back to the last
  // salvageable frame first (the removed bytes go to <path>.bak). Mid-log
  // corrupt regions with settled frames beyond them are preserved — every
  // reader of this log salvages over them.
  repair(path_);
  // Resume sequence numbering above anything a salvage scan can still see,
  // so frames beyond a corrupt region can never share a sequence number
  // with a new frame.
  ScanResult prefix = scan(path_, {.salvage = true});
  if (!prefix.frames.empty()) next_seq_ = prefix.frames.back().seq + 1;
  ScanResult salvaged = scan(path_ + ".bak", {.salvage = true});
  if (!salvaged.frames.empty())
    next_seq_ = std::max(next_seq_, salvaged.frames.back().seq + 1);
  // A crash between a rotation's quarantine rename and its rebase append
  // leaves the live log empty (or young); quarantined generations then hold
  // the highest sequence numbers, and numbering must continue above them.
  for (const std::string& gen : generation_chain(path_)) {
    bool found = false;
    for (const std::string& p : {gen, gen + ".bak"}) {
      ScanResult g = scan(p, {.salvage = true});
      if (g.frames.empty()) continue;
      next_seq_ = std::max(next_seq_, g.frames.back().seq + 1);
      found = true;
    }
    if (found) break;  // newest-first: older generations hold smaller seqs
  }
  open_for_append();
}

StableStorage::StableStorage(std::string path, bool durable)
    : StableStorage(std::move(path), StorageOptions{.durable = durable}) {}

StableStorage::~StableStorage() { delete impl_; }

void StableStorage::open_for_append() {
  impl_->sink = std::make_unique<FileSink>(path_, FileSink::Mode::kAppend);
  impl_->sink->set_fault_policy(opts_.fault);
  impl_->sink->set_retry_policy(opts_.retry);
  // Re-apply observation hooks: rotate()/reset() replace the sink, and the
  // profiler/flight-recorder wiring must survive the swap.
  impl_->sink->set_profile(prof_);
  impl_->sink->set_flightrec(flightrec_);
}

void StableStorage::set_profile(obs::CaptureProfile* profile) noexcept {
  prof_ = profile;
  if (impl_->sink != nullptr) impl_->sink->set_profile(profile);
}

void StableStorage::set_flightrec(obs::FlightRecorder* rec) noexcept {
  flightrec_ = rec;
  if (impl_->sink != nullptr) impl_->sink->set_flightrec(rec);
}

void StableStorage::rebind_metrics() noexcept {
  impl_->obs_appends = obs::counter("ickpt_storage_appends_total");
  impl_->obs_rollbacks = obs::counter("ickpt_storage_rollbacks_total");
  if (impl_->sink != nullptr) impl_->sink->rebind_metrics();
}

std::uint64_t StableStorage::append(const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayload)
    throw IoError("checkpoint payload exceeds 1 GiB frame limit");
  std::vector<std::uint8_t> header;
  header.reserve(kHeaderSize);
  put_u32(header, kMagic);
  const std::uint64_t seq = next_seq_;
  put_u64(header, seq);
  put_u32(header, static_cast<std::uint32_t>(payload.size()));
  // The CRC covers seq, length, and payload, so a corrupted header field is
  // caught just like corrupted payload bytes.
  Crc32 crc;
  crc.update(header.data() + 4, 12);
  crc.update(payload.data(), payload.size());
  put_u32(header, crc.value());
  const std::uint64_t frame_start = impl_->sink->offset();
  obs::Span span("storage.append", "io");
  try {
    impl_->sink->write(header.data(), header.size());
    impl_->sink->write(payload.data(), payload.size());
    if (opts_.durable)
      impl_->sink->durable_flush();
    else
      impl_->sink->flush();
  } catch (const CrashFault&) {
    // The "process" died mid-frame; leave the torn bytes exactly as a real
    // crash would. Recovery truncates them on the next open.
    throw;
  } catch (const IoError&) {
    // Roll the file back to the frame boundary so the log stays valid for
    // subsequent appends; if even that fails, the torn tail is repaired on
    // the next open.
    impl_->obs_rollbacks.inc();
    try {
      impl_->sink->truncate_to(frame_start);
    } catch (const IoError&) {
    }
    throw;
  }
  impl_->obs_appends.inc();
  if (span.active())
    span.note("seq " + std::to_string(seq) + ", " +
              std::to_string(payload.size()) + " payload byte(s)");
  return next_seq_++;
}

void StableStorage::reset() {
  impl_->sink.reset();
  // Truncate by reopening in truncate mode, then switch back to append.
  { FileSink truncate(path_, FileSink::Mode::kTruncate); }
  open_for_append();
}

std::string StableStorage::quarantine_path(const std::string& path,
                                           unsigned n) {
  return path + ".quarantine." + std::to_string(n);
}

std::vector<std::string> StableStorage::generation_chain(
    const std::string& path) {
  std::vector<std::string> chain;
  for (unsigned n = 1; file_exists(quarantine_path(path, n)); ++n)
    chain.push_back(quarantine_path(path, n));
  std::reverse(chain.begin(), chain.end());
  return chain;
}

RotateResult StableStorage::rotate(const RotateHook& hook) {
  obs::Span span("storage.rotate", "io");
  RotateResult result;
  unsigned n = 1;
  while (file_exists(quarantine_path(path_, n))) ++n;
  result.generation = n;
  result.quarantine_path = quarantine_path(path_, n);
  result.bytes_quarantined =
      impl_->sink != nullptr ? impl_->sink->offset() : 0;
  if (hook) hook(RotateStage::kBeforeQuarantine);
  impl_->sink.reset();
  try {
    rename_durable(path_, result.quarantine_path);
  } catch (const IoError&) {
    // The log never left its live path; restore the append invariant and
    // let the caller's ladder decide what happens next.
    open_for_append();
    throw;
  }
  // The .bak tail (if any) belongs to the quarantined generation; carry it
  // along so post-mortem fsck sees the whole picture. Best-effort: a .bak
  // is re-creatable damage, never primary data.
  if (file_exists(path_ + ".bak"))
    std::rename((path_ + ".bak").c_str(),
                (result.quarantine_path + ".bak").c_str());
  // Likewise the retention manifest: it declared the epochs of the log that
  // just moved, so it follows the log into quarantine (leaving it at the
  // live path would make fsck audit the fresh generation against the old
  // generation's schedule).
  if (file_exists(path_ + ".retain"))
    std::rename((path_ + ".retain").c_str(),
                (result.quarantine_path + ".retain").c_str());
  if (hook) hook(RotateStage::kAfterQuarantine);
  open_for_append();
  if (hook) hook(RotateStage::kAfterReopen);
  obs::counter("ickpt_log_rotations_total").inc();
  obs::instant("storage.rotate", "io",
               std::to_string(result.bytes_quarantined) +
                   " byte(s) quarantined to " + result.quarantine_path);
  if (span.active())
    span.note("generation " + std::to_string(n) + " opened, " +
              std::to_string(result.bytes_quarantined) +
              " byte(s) quarantined");
  return result;
}

ScanResult StableStorage::scan(const std::string& path, ScanOptions opts) {
  obs::Span span("storage.scan", "io");
  FrameIterator it(path, opts);
  ScanResult result = collect(it);
  publish_scan(result);
  return result;
}

ScanResult StableStorage::scan_bytes(const std::vector<std::uint8_t>& bytes,
                                     ScanOptions opts) {
  FrameIterator it(bytes.data(), bytes.size(), opts);
  ScanResult result = collect(it);
  publish_scan(result);
  return result;
}

RepairResult StableStorage::repair(const std::string& path) {
  RepairResult result;
  ScanResult scan_result = scan(path);
  if (scan_result.clean) {
    result.frames_kept = scan_result.frames.size();
    return result;
  }

  // A damaged log can hold settled frames BEYOND the first corrupt region
  // (a bit flip lands mid-log; later appends — including full checkpoints —
  // land fine after it). Truncating at the first damage would destroy them,
  // so repair only removes the genuinely unreadable tail: everything after
  // the last frame a salvage scan can still read. Mid-log damage stays in
  // place — every reader of a repaired log (recovery, fsck, seq resume)
  // already salvages over it, and new appends land after a clean boundary.
  ScanResult salvaged = scan(path, {/*salvage=*/true});
  std::uint64_t keep = 0;
  if (!salvaged.frames.empty()) {
    const Frame& last = salvaged.frames.back();
    keep = last.offset + kHeaderSize + last.payload.size();
  }
  result.frames_kept = salvaged.frames.size();

  std::vector<std::uint8_t> all = read_file(path);
  if (keep >= all.size()) {
    // The file ends exactly at a valid frame boundary: the damage is all
    // mid-log, and nothing after the last readable frame needs removing.
    result.reason =
        scan_result.stop_reason + " (mid-log, preserved for salvage)";
    return result;
  }
  result.reason = salvaged.frames.size() == scan_result.frames.size()
                      ? scan_result.stop_reason
                      : scan_result.stop_reason + " + damaged tail";

  // Save the bytes being removed before touching the log, so a crash during
  // repair can lose the .bak (re-creatable) but never log bytes.
  result.bytes_removed = all.size() - keep;
  result.bak_path = path + ".bak";
  {
    FileSink bak(result.bak_path, FileSink::Mode::kTruncate);
    bak.write(all.data() + keep, all.size() - keep);
    bak.durable_flush();
  }
  fsync_parent_dir(result.bak_path);
  truncate_file(path, keep);
  result.repaired = true;
  obs::counter("ickpt_storage_repairs_total").inc();
  obs::instant("storage.repair", "io",
               result.reason + ", " + std::to_string(result.bytes_removed) +
                   " byte(s) truncated");
  return result;
}

}  // namespace ickpt::io
