#include "io/file_io.hpp"

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "obs/flightrec.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace ickpt::io {

namespace {
[[noreturn]] void fail(const std::string& op, const std::string& path) {
  throw IoError(op + " '" + path + "': " + std::strerror(errno));
}

std::string errno_label(int err) {
  switch (err) {
    case EINTR:
      return "EINTR";
    case ENOSPC:
      return "ENOSPC";
    case EIO:
      return "EIO";
    default:
      return std::to_string(err);
  }
}

// Fault/retry paths are cold (injection and real transient errors only), so
// they look the counters up per event — correct even if the registry was
// installed after the sink was built.
void count_retry(int err) {
  obs::counter("ickpt_storage_retries_total", {{"errno", errno_label(err)}})
      .inc();
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kShortWrite:
      return "short_write";
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

}  // namespace

FileSink::FileSink(const std::string& path, Mode mode)
    : path_(path),
      obs_bytes_(obs::counter("ickpt_storage_bytes_written_total")),
      obs_fsyncs_(obs::counter("ickpt_storage_fsyncs_total")) {
  file_ = std::fopen(path.c_str(), mode == Mode::kAppend ? "ab" : "wb");
  if (file_ == nullptr) fail("open", path);
  if (mode == Mode::kAppend) {
    // "ab" leaves the position unspecified until the first write; the write
    // offset we report must be the current file size.
    if (std::fseek(file_, 0, SEEK_END) != 0) fail("seek", path);
    long at = std::ftell(file_);
    if (at < 0) fail("tell", path);
    offset_ = static_cast<std::uint64_t>(at);
  }
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::backoff(unsigned attempt) const {
  const auto delay = backoff_delay(retry_, attempt);
  if (delay.count() <= 0) return;
  std::this_thread::sleep_for(delay);
}

void FileSink::write_raw(const std::uint8_t* data, std::size_t n) {
  unsigned attempts = 0;
  while (n != 0) {
    std::size_t written = std::fwrite(data, 1, n, file_);
    offset_ += written;
    obs_bytes_.inc(written);
    data += written;
    n -= written;
    if (n == 0) break;
    // Short write: retry the remainder on EINTR (with backoff once the
    // write stops making progress), fail hard on anything else.
    if (errno != EINTR) fail("write", path_);
    count_retry(EINTR);
    std::clearerr(file_);
    if (written == 0) {
      if (++attempts > retry_.max_attempts)
        throw IoError("write '" + path_ + "' failed after " +
                      std::to_string(attempts) + " attempt(s): " +
                      std::strerror(EINTR));
      backoff(attempts - 1);
    } else {
      attempts = 0;
    }
  }
}

void FileSink::write(const std::uint8_t* data, std::size_t n) {
  unsigned transient_attempts = 0;
  while (n != 0) {
    FaultDecision d;
    if (fault_ != nullptr) d = fault_->on_write(offset_, n);
    if (d.kind != FaultKind::kNone) {
      obs::counter("ickpt_storage_faults_total",
                   {{"kind", fault_kind_name(d.kind)}})
          .inc();
      obs::instant("storage.fault", "io", fault_kind_name(d.kind));
      if (flightrec_ != nullptr)
        flightrec_->record(obs::FlightEventType::kFault, 0, offset_, n,
                           fault_kind_name(d.kind));
    }
    switch (d.kind) {
      case FaultKind::kNone:
        write_raw(data, n);
        return;
      case FaultKind::kTornWrite: {
        std::size_t k = d.byte_limit < n ? d.byte_limit : n;
        write_raw(data, k);
        flush();
        throw IoError("injected torn write: " + std::to_string(k) + " of " +
                      std::to_string(k + n) + " byte(s) reached '" + path_ +
                      "'");
      }
      case FaultKind::kShortWrite: {
        std::size_t k = d.byte_limit < n ? d.byte_limit : n;
        write_raw(data, k);
        data += k;
        n -= k;
        if (k == 0 && ++transient_attempts > retry_.max_attempts)
          throw IoError("write '" + path_ + "' made no progress after " +
                        std::to_string(transient_attempts) + " attempt(s)");
        break;  // re-consult the policy for the remainder
      }
      case FaultKind::kBitFlip: {
        // Silent corruption: the bytes land, one bit wrong. Only the frame
        // CRC can catch this later.
        std::vector<std::uint8_t> copy(data, data + n);
        std::size_t at = d.byte_limit < n ? d.byte_limit : n - 1;
        copy[at] ^= 0x01;
        write_raw(copy.data(), n);
        return;
      }
      case FaultKind::kTransient: {
        if (++transient_attempts > retry_.max_attempts)
          throw IoError("write '" + path_ + "' failed after " +
                        std::to_string(transient_attempts) +
                        " attempt(s): " + std::strerror(d.transient_errno));
        count_retry(d.transient_errno);
        backoff(transient_attempts - 1);
        break;  // retry: consult the policy again
      }
      case FaultKind::kCrash: {
        std::size_t k = d.byte_limit < n ? d.byte_limit : n;
        write_raw(data, k);
        flush();
        throw CrashFault("simulated crash at byte offset " +
                         std::to_string(offset_) + " of '" + path_ + "'");
      }
    }
  }
}

void FileSink::flush() {
  if (std::fflush(file_) != 0) fail("flush", path_);
}

void FileSink::durable_flush() {
  flush();
  if (prof_ != nullptr) {
    const std::uint64_t t0 = obs::trace_now_ns();
#ifdef __unix__
    if (::fsync(::fileno(file_)) != 0) fail("fsync", path_);
#endif
    prof_->stage_ns[obs::CaptureProfile::kFsync] += obs::trace_now_ns() - t0;
  } else {
#ifdef __unix__
    if (::fsync(::fileno(file_)) != 0) fail("fsync", path_);
#endif
  }
  obs_fsyncs_.inc();
}

void FileSink::rebind_metrics() noexcept {
  obs_bytes_ = obs::counter("ickpt_storage_bytes_written_total");
  obs_fsyncs_ = obs::counter("ickpt_storage_fsyncs_total");
}

void FileSink::truncate_to(std::uint64_t size) {
  flush();
#ifdef __unix__
  if (::ftruncate(::fileno(file_), static_cast<off_t>(size)) != 0)
    fail("truncate", path_);
#else
  if (size != offset_) fail("truncate unsupported", path_);
#endif
  offset_ = size;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail("open", path);
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    out.insert(out.end(), buf, buf + n);
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) fail("read", path);
  return out;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  FileSink sink(path);
  sink.write(bytes.data(), bytes.size());
  sink.flush();
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

void fsync_parent_dir(const std::string& path) {
#ifdef __unix__
  std::size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) fail("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail("fsync dir", dir);
#else
  (void)path;
#endif
}

void rename_durable(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) fail("rename", from);
  fsync_parent_dir(to);
}

void truncate_file(const std::string& path, std::uint64_t size) {
#ifdef __unix__
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0)
    fail("truncate", path);
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  auto bytes = read_file(path);
  if (size > bytes.size()) fail("truncate beyond end", path);
  bytes.resize(size);
  write_file(path, bytes);
#endif
}

}  // namespace ickpt::io
