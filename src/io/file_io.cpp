#include "io/file_io.hpp"

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

namespace ickpt::io {

namespace {
[[noreturn]] void fail(const std::string& op, const std::string& path) {
  throw IoError(op + " '" + path + "': " + std::strerror(errno));
}
}  // namespace

FileSink::FileSink(const std::string& path, Mode mode) : path_(path) {
  file_ = std::fopen(path.c_str(), mode == Mode::kAppend ? "ab" : "wb");
  if (file_ == nullptr) fail("open", path);
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::write(const std::uint8_t* data, std::size_t n) {
  if (n != 0 && std::fwrite(data, 1, n, file_) != n) fail("write", path_);
}

void FileSink::flush() {
  if (std::fflush(file_) != 0) fail("flush", path_);
}

void FileSink::durable_flush() {
  flush();
#ifdef __unix__
  if (::fsync(::fileno(file_)) != 0) fail("fsync", path_);
#endif
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail("open", path);
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
    out.insert(out.end(), buf, buf + n);
  bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) fail("read", path);
  return out;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  FileSink sink(path);
  sink.write(bytes.data(), bytes.size());
  sink.flush();
}

}  // namespace ickpt::io
