#include "io/crc32.hpp"

#include <array>

namespace ickpt::io {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < n; ++i)
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t Crc32::compute(const std::uint8_t* data, std::size_t n) noexcept {
  Crc32 crc;
  crc.update(data, n);
  return crc.value();
}

}  // namespace ickpt::io
