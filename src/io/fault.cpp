#include "io/fault.hpp"

namespace ickpt::io {

ScriptedFaultPolicy::ScriptedFaultPolicy(FaultKind kind,
                                         std::uint64_t trigger_offset,
                                         int transient_errno,
                                         unsigned transient_count)
    : kind_(kind),
      trigger_(trigger_offset),
      transient_errno_(transient_errno),
      transients_left_(transient_count) {}

FaultDecision ScriptedFaultPolicy::on_write(std::uint64_t offset,
                                            std::size_t n) {
  bytes_seen_ = offset + n > bytes_seen_ ? offset + n : bytes_seen_;
  if (kind_ == FaultKind::kNone) return {};

  if (kind_ == FaultKind::kTransient) {
    // Fire on every consultation at/after the trigger until the budget is
    // spent; the sink's retry loop consumes one decision per attempt.
    if (transients_left_ == 0 || offset + n <= trigger_) return {};
    --transients_left_;
    fired_ = true;
    return {FaultKind::kTransient, 0, transient_errno_};
  }

  if (fired_ || trigger_ < offset || trigger_ >= offset + n) return {};
  fired_ = true;
  FaultDecision decision;
  decision.kind = kind_;
  decision.byte_limit = static_cast<std::size_t>(trigger_ - offset);
  return decision;
}

}  // namespace ickpt::io
