#include "io/fault.hpp"

namespace ickpt::io {

namespace {
// splitmix64: tiny, stateless, well-distributed — enough to decorrelate
// retry schedules without dragging a PRNG object into RetryPolicy.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

std::chrono::microseconds backoff_delay(const RetryPolicy& retry,
                                        unsigned attempt) {
  const std::int64_t initial = retry.initial_backoff.count();
  if (initial <= 0) return std::chrono::microseconds{0};
  std::int64_t cap = retry.max_backoff.count();
  if (cap < initial) cap = initial;
  // Saturating exponential: initial << attempt overflows for attempt near
  // 64 (RetryPolicy::max_attempts is caller-chosen), so test against the
  // cap shifted the other way instead of computing the product first.
  // initial <= cap >> attempt implies initial << attempt <= cap.
  std::int64_t delay = cap;
  if (attempt < 63 && initial <= (cap >> attempt)) delay = initial << attempt;
  if (retry.jitter_seed != 0 && delay > 1) {
    const std::uint64_t h = mix64(retry.jitter_seed ^ (attempt + 1ULL));
    const std::int64_t half = delay / 2;
    delay -= static_cast<std::int64_t>(
        h % static_cast<std::uint64_t>(half + 1));
  }
  return std::chrono::microseconds{delay};
}

ScriptedFaultPolicy::ScriptedFaultPolicy(FaultKind kind,
                                         std::uint64_t trigger_offset,
                                         int transient_errno,
                                         unsigned transient_count)
    : kind_(kind),
      trigger_(trigger_offset),
      transient_errno_(transient_errno),
      transients_left_(transient_count) {}

FaultDecision ScriptedFaultPolicy::on_write(std::uint64_t offset,
                                            std::size_t n) {
  bytes_seen_ = offset + n > bytes_seen_ ? offset + n : bytes_seen_;
  if (kind_ == FaultKind::kNone) return {};

  if (kind_ == FaultKind::kTransient) {
    // Fire on every consultation at/after the trigger until the budget is
    // spent; the sink's retry loop consumes one decision per attempt.
    if (transients_left_ == 0 || offset + n <= trigger_) return {};
    --transients_left_;
    fired_ = true;
    return {FaultKind::kTransient, 0, transient_errno_};
  }

  if (fired_ || trigger_ < offset || trigger_ >= offset + n) return {};
  fired_ = true;
  FaultDecision decision;
  decision.kind = kind_;
  decision.byte_limit = static_cast<std::size_t>(trigger_ - offset);
  return decision;
}

}  // namespace ickpt::io
