// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Protects every stable-storage frame so recovery can distinguish a torn
// final write from a complete checkpoint (DESIGN.md §6, storage invariant).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ickpt::io {

class Crc32 {
 public:
  /// Incremental update: feed chunks, then call value().
  void update(const std::uint8_t* data, std::size_t n) noexcept;

  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

  void reset() noexcept { state_ = 0xFFFFFFFFu; }

  /// One-shot convenience.
  static std::uint32_t compute(const std::uint8_t* data, std::size_t n) noexcept;

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace ickpt::io
