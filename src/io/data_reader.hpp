// Typed reader over an in-memory byte range: the DataInputStream analog.
//
// Recovery loads one stable-storage frame at a time into memory and decodes
// it with a DataReader. Every method throws CorruptionError on underflow, so
// a truncated or garbled checkpoint can never silently yield wrong state.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ickpt::io {

class DataReader {
 public:
  DataReader(const std::uint8_t* data, std::size_t n)
      : data_(data), end_(data + n) {}

  explicit DataReader(const std::vector<std::uint8_t>& bytes)
      : DataReader(bytes.data(), bytes.size()) {}

  std::uint8_t read_u8() {
    need(1);
    return *data_++;
  }

  bool read_bool() { return read_u8() != 0; }

  std::uint16_t read_u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[0]) << 8) | data_[1]);
    data_ += 2;
    return v;
  }

  std::uint32_t read_u32() {
    need(4);
    std::uint32_t v = (static_cast<std::uint32_t>(data_[0]) << 24) |
                      (static_cast<std::uint32_t>(data_[1]) << 16) |
                      (static_cast<std::uint32_t>(data_[2]) << 8) |
                      static_cast<std::uint32_t>(data_[3]);
    data_ += 4;
    return v;
  }

  std::uint64_t read_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[i];
    data_ += 8;
    return v;
  }

  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }

  float read_f32() {
    std::uint32_t bits = read_u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  double read_f64() {
    std::uint64_t bits = read_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::uint64_t read_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      need(1);
      std::uint8_t b = *data_++;
      if (shift >= 64) throw CorruptionError("varint overflow");
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  std::int64_t read_varint_i64() {
    std::uint64_t z = read_varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  void read_bytes(std::uint8_t* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_, n);
    data_ += n;
  }

  std::string read_string() {
    std::uint64_t n = read_varint();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_), n);
    data_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - data_);
  }
  [[nodiscard]] bool at_end() const noexcept { return data_ == end_; }

 private:
  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end_ - data_) < n)
      throw CorruptionError("checkpoint stream underflow");
  }

  const std::uint8_t* data_;
  const std::uint8_t* end_;
};

}  // namespace ickpt::io
