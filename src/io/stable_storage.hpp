// Framed, CRC-protected checkpoint log on disk.
//
// Each checkpoint (full or incremental) is appended as one frame:
//
//   [u32 magic][u64 seq][u32 payload_len][u32 payload_crc][payload bytes]
//
// all integers big-endian. A plain scan stops at the first frame that is
// short, has a bad magic/CRC, or a non-increasing sequence number;
// everything before it is the longest valid prefix and is safe to recover
// from. A *salvage* scan (ScanOptions::salvage) additionally skips over the
// corrupt region and resynchronizes on the next valid [magic][seq] boundary,
// so a mid-log bad frame strands one checkpoint window instead of the whole
// suffix; frames found after a skip carry `resync = true` so recovery can
// tell which windows are contiguous.
//
// Crash consistency of the writer: a failed append is rolled back to the
// previous frame boundary (the log stays clean for later appends), except
// when the failure is a CrashFault — then the torn bytes stay, exactly as a
// real crash would leave them. Opening a log whose tail is torn truncates
// the tail to the longest valid prefix first (saving the removed bytes to
// `<path>.bak`), so post-crash appends never land behind unreadable bytes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/fault.hpp"

namespace ickpt::obs {
struct CaptureProfile;
class FlightRecorder;
}

namespace ickpt::io {

struct Frame {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
  /// Byte offset of the frame header within the log.
  std::uint64_t offset = 0;
  /// True when this frame was reached by salvage resynchronization (i.e. a
  /// corrupt region lies between it and the preceding frame).
  bool resync = false;
};

struct ScanOptions {
  /// Skip corrupt regions and resynchronize on the next valid frame instead
  /// of stopping at the first bad byte.
  bool salvage = false;
};

struct ScanResult {
  std::vector<Frame> frames;
  /// True when every byte of the file decoded as valid frames.
  bool clean = true;
  /// Human-readable reason for the *first* damage met (empty when clean).
  std::string stop_reason;
  /// Byte offset where the first damage begins (== valid_prefix_bytes; the
  /// file size when clean).
  std::uint64_t stop_offset = 0;
  /// Length of the longest valid prefix: every byte before this decoded as
  /// valid frames (repair() truncates only the tail after the *last*
  /// salvageable frame, which can lie beyond this).
  std::uint64_t valid_prefix_bytes = 0;
  /// Salvage only: corrupt regions skipped and the bytes inside them.
  std::size_t regions_skipped = 0;
  std::uint64_t bytes_skipped = 0;
};

/// Streaming frame reader: O(largest frame) memory regardless of log size.
/// Drive with next() until it returns false, then read the end-of-scan
/// state (clean()/stop_reason()/...). scan()/scan_bytes() are thin wrappers
/// that collect every frame into a ScanResult.
class FrameIterator {
 public:
  /// Stream from a file. A missing file reads as an empty, clean log.
  explicit FrameIterator(const std::string& path, ScanOptions opts = {});
  /// Read from an in-memory image (not copied; must outlive the iterator).
  FrameIterator(const std::uint8_t* data, std::size_t size,
                ScanOptions opts = {});
  ~FrameIterator();

  FrameIterator(const FrameIterator&) = delete;
  FrameIterator& operator=(const FrameIterator&) = delete;

  /// Produce the next frame into `out` (reusing its payload buffer).
  /// Returns false at end of log.
  bool next(Frame& out);

  // End-of-scan state; meaningful once next() has returned false.
  [[nodiscard]] bool clean() const;
  [[nodiscard]] const std::string& stop_reason() const;
  [[nodiscard]] std::uint64_t stop_offset() const;
  [[nodiscard]] std::uint64_t valid_prefix_bytes() const;
  [[nodiscard]] std::size_t regions_skipped() const;
  [[nodiscard]] std::uint64_t bytes_skipped() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct StorageOptions {
  /// fsync each appended frame before append() returns.
  bool durable = false;
  /// Fault injection hook threaded into the underlying FileSink (tests).
  FaultPolicy* fault = nullptr;
  /// Transient-failure retry policy for the underlying FileSink.
  RetryPolicy retry{};
};

/// Progress points inside rotate() (and, for kAfterRebase, in the manager's
/// rebase step that follows it). The crash-matrix tests install a hook that
/// throws CrashFault at each stage to prove a crash mid-rotation loses at
/// most the in-flight epoch.
enum class RotateStage : std::uint8_t {
  kBeforeQuarantine,  ///< sink still open, log still at its live path
  kAfterQuarantine,   ///< log renamed to the quarantine path; no live log yet
  kAfterReopen,       ///< fresh empty generation open at the live path
  kAfterRebase,       ///< manager-level: rebase full checkpoint appended
};
using RotateHook = std::function<void(RotateStage)>;

struct RotateResult {
  /// Where the damaged generation was preserved (`<path>.quarantine.<n>`).
  std::string quarantine_path;
  /// The quarantine slot used (the <n> in the file name).
  unsigned generation = 0;
  /// Size of the quarantined log at rotation time.
  std::uint64_t bytes_quarantined = 0;
};

struct RepairResult {
  /// False when nothing was changed: the log was already clean, or its
  /// damage is mid-log only (no unreadable tail to remove).
  bool repaired = false;
  std::size_t frames_kept = 0;
  std::uint64_t bytes_removed = 0;
  /// Where the removed bytes were saved ("" when nothing was removed).
  std::string bak_path;
  /// The scan's stop_reason for the damage that was truncated.
  std::string reason;
};

class StableStorage {
 public:
  /// Opens (creating if absent) the log at `path` for appending. If the
  /// log's tail is unreadable it is first truncated back to the last
  /// salvageable frame (removed bytes saved to `<path>.bak`; mid-log
  /// damage is preserved); sequence numbering resumes above every frame a
  /// salvage scan can see, so even stranded frames can never collide with
  /// new ones.
  explicit StableStorage(std::string path, StorageOptions opts);
  explicit StableStorage(std::string path, bool durable = false);

  StableStorage(const StableStorage&) = delete;
  StableStorage& operator=(const StableStorage&) = delete;
  ~StableStorage();

  /// Append one checkpoint payload; returns its sequence number. On a
  /// write failure the partial frame is rolled back (truncated away) and
  /// the error rethrown; the log remains valid. A CrashFault is never
  /// rolled back.
  std::uint64_t append(const std::vector<std::uint8_t>& payload);

  /// Delete all frames (restart the log). Sequence numbering continues.
  void reset();

  /// Quarantine the current log as `<path>.quarantine.<n>` (first free n,
  /// its `.bak` riding along as `<quarantine>.bak`) and reopen a fresh,
  /// empty generation at the live path. Sequence numbering continues across
  /// generations. `hook`, when set, is called at each RotateStage — the
  /// crash-matrix tests throw CrashFault from it. If the quarantine rename
  /// fails with IoError the live log is reopened and the error rethrown;
  /// a CrashFault propagates with whatever state the "crash" left.
  RotateResult rotate(const RotateHook& hook = {});

  /// Flip per-frame fsync on or off at runtime. The degraded rungs of the
  /// manager's health ladder force this on so healed epochs are durable.
  void set_durable(bool durable) noexcept { opts_.durable = durable; }
  [[nodiscard]] bool durable() const noexcept { return opts_.durable; }

  /// Stage-attribution accumulator, forwarded to the underlying FileSink
  /// (fsync time accrues to kFsync). Persists across rotate()/reset() —
  /// the pointer is re-applied to every reopened sink. nullptr disables.
  void set_profile(obs::CaptureProfile* profile) noexcept;

  /// Flight recorder, forwarded to the underlying FileSink (injected fault
  /// decisions become kFault events). Persists across rotate()/reset().
  void set_flightrec(obs::FlightRecorder* rec) noexcept;

  /// Re-resolve metric handles (this object's and the live sink's) against
  /// the currently installed registry. See FileSink::rebind_metrics().
  void rebind_metrics() noexcept;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// Raise the next sequence number (forward-only; a smaller value is
  /// ignored — sequence numbers never move backwards). The policy
  /// compaction uses this to write each retained epoch's frame with
  /// seq == epoch, so epoch numbering resumes correctly from next_seq()
  /// after the rewrite.
  void set_next_seq(std::uint64_t seq) noexcept {
    next_seq_ = std::max(next_seq_, seq);
  }

  /// The quarantine file name for slot `n`.
  static std::string quarantine_path(const std::string& path, unsigned n);

  /// Quarantined predecessors of the log at `path`, newest first (highest
  /// slot number first). Probes consecutive slots from 1; empty when the
  /// log has never rotated.
  static std::vector<std::string> generation_chain(const std::string& path);

  /// Scan a log file into frames, tolerating a torn tail (and, with
  /// opts.salvage, mid-log corruption). Streams: O(largest frame) memory
  /// plus the collected frames.
  static ScanResult scan(const std::string& path, ScanOptions opts = {});

  /// Scan an in-memory image of a log (used by fault-injection tests).
  static ScanResult scan_bytes(const std::vector<std::uint8_t>& bytes,
                               ScanOptions opts = {});

  /// Truncate a damaged log's unreadable tail — every byte after the last
  /// frame a salvage scan can read — saving the removed bytes to
  /// `<path>.bak` (overwriting a previous .bak). Mid-log corrupt regions
  /// with settled frames beyond them are left in place (salvage-aware
  /// readers step over them; truncating there would destroy settled
  /// state). The truncation is durable before repair() returns. A clean
  /// log, or one whose damage is mid-log only, is left untouched.
  static RepairResult repair(const std::string& path);

 private:
  void open_for_append();

  std::string path_;
  StorageOptions opts_;
  std::uint64_t next_seq_ = 0;
  obs::CaptureProfile* prof_ = nullptr;
  obs::FlightRecorder* flightrec_ = nullptr;
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace ickpt::io
