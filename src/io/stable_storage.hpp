// Framed, CRC-protected checkpoint log on disk.
//
// Each checkpoint (full or incremental) is appended as one frame:
//
//   [u32 magic][u64 seq][u32 payload_len][u32 payload_crc][payload bytes]
//
// all integers big-endian. The scan stops at the first frame that is short,
// has a bad magic/CRC, or a non-increasing sequence number; everything before
// it is the longest valid prefix and is safe to recover from. A torn final
// write therefore costs at most the checkpoint that was being written when
// the crash happened — never an earlier one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ickpt::io {

struct Frame {
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

struct ScanResult {
  std::vector<Frame> frames;
  /// True when the file ended exactly on a frame boundary.
  bool clean = true;
  /// Human-readable reason the scan stopped early (empty when clean).
  std::string stop_reason;
};

class StableStorage {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  /// `durable` controls whether append() fsyncs each frame.
  explicit StableStorage(std::string path, bool durable = false);

  StableStorage(const StableStorage&) = delete;
  StableStorage& operator=(const StableStorage&) = delete;
  ~StableStorage();

  /// Append one checkpoint payload; returns its sequence number.
  std::uint64_t append(const std::vector<std::uint8_t>& payload);

  /// Delete all frames (restart the log). Sequence numbering continues.
  void reset();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  /// Scan a log file into frames, tolerating a torn tail.
  static ScanResult scan(const std::string& path);

  /// Scan an in-memory image of a log (used by fault-injection tests).
  static ScanResult scan_bytes(const std::vector<std::uint8_t>& bytes);

 private:
  void open_for_append();

  std::string path_;
  bool durable_;
  std::uint64_t next_seq_ = 0;
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace ickpt::io
