// AST and symbol table of the simplified-C subset.
//
// Statements are the units the analyses annotate: each carries a pointer to
// its Attributes structure (paper Fig. 4), attached by the AnalysisEngine.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/token.hpp"

namespace ickpt::analysis {

class Attributes;  // attributes.hpp

// ---------------------------------------------------------------------------
// Symbols

enum class SymbolScope : std::uint8_t { kGlobal, kLocal, kParam };

struct Symbol {
  std::string name;
  SymbolScope scope = SymbolScope::kGlobal;
  bool is_array = false;
  std::int32_t array_size = 0;   // arrays only
  std::int32_t init_value = 0;   // global scalars only
  int function_index = -1;       // locals/params: owning function
};

class SymbolTable {
 public:
  /// Returns the new symbol's id.
  int add(Symbol symbol) {
    symbols_.push_back(std::move(symbol));
    return static_cast<int>(symbols_.size()) - 1;
  }

  [[nodiscard]] const Symbol& at(int id) const { return symbols_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] Symbol& at(int id) { return symbols_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(symbols_.size()); }

  [[nodiscard]] bool is_global(int id) const {
    return at(id).scope == SymbolScope::kGlobal;
  }

 private:
  std::vector<Symbol> symbols_;
};

// ---------------------------------------------------------------------------
// Expressions

enum class ExprKind : std::uint8_t {
  kIntLit,  // value
  kVar,     // symbol
  kIndex,   // symbol, operands[0] = index
  kUnary,   // op, operands[0]
  kBinary,  // op, operands[0], operands[1]
  kCall,    // callee_index, operands = arguments
};

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class UnOp : std::uint8_t { kNeg, kNot };

struct Expr {
  ExprKind kind = ExprKind::kIntLit;
  std::int32_t value = 0;        // kIntLit
  int symbol = -1;               // kVar / kIndex (resolved by the parser)
  int callee_index = -1;         // kCall: index into Program::functions
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  std::vector<std::unique_ptr<Expr>> operands;
  int line = 0;
};

// ---------------------------------------------------------------------------
// Statements

enum class StmtKind : std::uint8_t {
  kDecl,    // local: symbol, expr1 = optional initializer
  kAssign,  // symbol (+ expr3 index when is_array_target), expr1 = value
  kIf,      // expr1 = condition, body / else_body
  kWhile,   // expr1 = condition, body
  kFor,     // init_stmt, expr1 = condition, step_stmt, body
  kReturn,  // expr1
  kExpr,    // expr1 (call statement)
};

struct Stmt {
  StmtKind kind = StmtKind::kExpr;
  int symbol = -1;                 // kDecl / kAssign target
  bool is_array_target = false;    // kAssign: a[expr3] = expr1
  std::unique_ptr<Expr> expr1;     // value / condition
  std::unique_ptr<Expr> expr3;     // array index
  std::unique_ptr<Stmt> init_stmt; // kFor
  std::unique_ptr<Stmt> step_stmt; // kFor
  std::vector<std::unique_ptr<Stmt>> body;
  std::vector<std::unique_ptr<Stmt>> else_body;
  int line = 0;

  /// Dense index over all statements of the program (set by the parser) and
  /// the per-statement annotation record (attached by the AnalysisEngine).
  int index = -1;
  Attributes* attrs = nullptr;
};

struct Function {
  std::string name;
  std::vector<int> params;  // symbol ids
  std::vector<std::unique_ptr<Stmt>> body;
  int index = -1;
};

struct Program {
  SymbolTable symbols;
  std::vector<int> globals;  // symbol ids, in declaration order
  std::vector<Function> functions;
  /// Every statement in the program (including nested ones), in parse order.
  std::vector<Stmt*> statements;

  [[nodiscard]] int find_function(const std::string& name) const {
    for (const Function& f : functions)
      if (f.name == name) return f.index;
    return -1;
  }

  [[nodiscard]] int find_global(const std::string& name) const {
    for (int id : globals)
      if (symbols.at(id).name == name) return id;
    return -1;
  }
};

}  // namespace ickpt::analysis
